package fusion_test

// bench_test provides one testing.B target per evaluation artifact of the
// paper (Section 5) plus per-benchmark-per-system simulation benchmarks.
// Each regenerates its table or figure from scratch:
//
//	go test -bench=BenchmarkFigure6b -benchtime=1x
//
// prints nothing by itself (use cmd/fusionbench for the rows); the bench
// numbers report the wall-clock cost of regenerating each artifact.

import (
	"io"
	"testing"

	"fusion"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		exp := fusion.NewExperiments()
		if err := exp.Print(io.Discard, name); err != nil {
			b.Fatal(err)
		}
	}
}

// Table 1: accelerator characteristics (%time, op mix, MLP, %SHR).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table 3: per-function execution metrics and cache/compute ratios.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Figure 6a: dynamic energy breakdown across SCRATCH/SHARED/FUSION.
func BenchmarkFigure6a(b *testing.B) { benchExperiment(b, "fig6a") }

// Figure 6b: cycle time normalized to SCRATCH.
func BenchmarkFigure6b(b *testing.B) { benchExperiment(b, "fig6b") }

// Figure 6c: link traffic breakdown.
func BenchmarkFigure6c(b *testing.B) { benchExperiment(b, "fig6c") }

// Figure 6d: working set vs DMA traffic table.
func BenchmarkFigure6d(b *testing.B) { benchExperiment(b, "fig6d") }

// Table 4: write-through vs writeback L0X bandwidth.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Table 5: FUSION-Dx write forwarding.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// Figure 7: AXC-Large vs Small cache configurations.
func BenchmarkFigure7(b *testing.B) { benchExperiment(b, "fig7") }

// Table 6: AX-TLB and AX-RMAP lookup counts.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkAllArtifacts regenerates every artifact through one shared
// runner — the fusionbench default path — sequentially (j1) and with a
// GOMAXPROCS worker pool (jmax). The two must produce identical artifacts;
// only wall-clock may differ.
func BenchmarkAllArtifacts(b *testing.B) {
	for _, c := range []struct {
		name    string
		workers int
	}{{"j1", 1}, {"jmax", 0}} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp := fusion.NewExperiments()
				exp.SetWorkers(c.workers)
				if err := exp.Print(io.Discard, "all"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Per-benchmark x system simulation cost. The sub-benchmark names follow
// <benchmark>/<system>.
func BenchmarkSimulate(b *testing.B) {
	systems := map[string]fusion.System{
		"scratch":  fusion.ScratchSystem,
		"shared":   fusion.SharedSystem,
		"fusion":   fusion.FusionSystem,
		"fusiondx": fusion.FusionDxSystem,
	}
	for _, name := range fusion.Benchmarks() {
		for sysName, sys := range systems {
			b.Run(name+"/"+sysName, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bench := fusion.LoadBenchmark(name)
					res, err := fusion.Run(bench, fusion.DefaultConfig(sys))
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Cycles), "simcycles")
				}
			})
		}
	}
}

// BenchmarkTraceGeneration measures workload synthesis alone.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range fusion.Benchmarks() {
			fusion.LoadBenchmark(name)
		}
	}
}
