// Command fusionlint runs the simulator's determinism and
// protocol-discipline analyzers (internal/lint) over the module:
//
//	fusionlint ./...            # whole module
//	fusionlint ./internal/mesi  # one package
//
// It prints one "file:line: [analyzer] message" per finding and exits 1 if
// any finding survives waivers, 2 on load errors. Built on stdlib
// go/parser + go/types only: no go command invocation, no x/tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fusion/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list packages as they are checked")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fusionlint [-v] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, an := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-11s %s (waive: //lint:%s <reason>)\n",
				an.Name, an.Doc, an.Directive)
		}
	}
	flag.Parse()

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := lint.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(mod, cwd, args)
	if err != nil {
		fatal(err)
	}

	loader := lint.NewLoader(mod)
	var pkgs []*lint.Package
	loadErrs := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusionlint: %v\n", err)
			loadErrs++
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fusionlint: %s: %v\n", pkg.ImportPath, terr)
			loadErrs++
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "fusionlint: checking %s\n", pkg.ImportPath)
		}
		pkgs = append(pkgs, pkg)
	}
	if loadErrs > 0 {
		os.Exit(2)
	}

	findings := lint.Run(lint.Analyzers(), pkgs, mod)
	for _, f := range findings {
		fmt.Println(f.String(cwd))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fusionlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expand resolves package patterns to module-local directories. "..."
// suffixes walk the tree; plain arguments name single package directories.
func expand(mod *lint.Module, cwd string, args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			root := filepath.Join(cwd, rest)
			all, err := lint.ListPackageDirs(mod)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				if d == root || strings.HasPrefix(d, root+string(filepath.Separator)) {
					add(d)
				}
			}
			continue
		}
		if filepath.IsAbs(a) {
			add(filepath.Clean(a))
		} else {
			add(filepath.Join(cwd, a))
		}
	}
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fusionlint: %v\n", err)
	os.Exit(2)
}
