// Command fusionlint runs the simulator's determinism and
// protocol-discipline analyzers (internal/lint) over the module:
//
//	fusionlint ./...                 # whole module
//	fusionlint ./internal/mesi       # one package
//	fusionlint -format sarif ./...   # SARIF 2.1.0 for CI annotation
//	fusionlint -waivers ./...        # audit every //lint: suppression
//
// The default text mode prints one "file:line: [analyzer] message" per
// finding and exits 1 if any finding survives waivers, 2 on load errors;
// -format json|sarif emit the same findings machine-readably. -waivers
// switches to audit mode: every //lint: directive in scope is listed with
// its analyzer and justification (exit 0 — waiver debt is reviewed, not
// failed). Built on stdlib go/parser + go/types only: no go command
// invocation, no x/tools.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fusion/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list packages as they are checked")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	waivers := flag.Bool("waivers", false, "audit mode: list every //lint: waiver instead of running analyzers")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fusionlint [-v] [-format text|json|sarif] [-waivers] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, an := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s (waive: //lint:%s <reason>)\n",
				an.Name, an.Doc, an.Directive)
		}
	}
	flag.Parse()
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "fusionlint: unknown -format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := lint.FindModule(cwd)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	dirs, err := expand(mod, cwd, args)
	if err != nil {
		fatal(err)
	}

	loader := lint.NewLoader(mod)
	var pkgs []*lint.Package
	loadErrs := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fusionlint: %v\n", err)
			loadErrs++
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "fusionlint: %s: %v\n", pkg.ImportPath, terr)
			loadErrs++
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "fusionlint: checking %s\n", pkg.ImportPath)
		}
		pkgs = append(pkgs, pkg)
	}
	if loadErrs > 0 {
		os.Exit(2)
	}

	if *waivers {
		audit(cwd, pkgs, *format)
		return
	}

	findings := lint.Run(lint.Analyzers(), pkgs, mod)
	switch *format {
	case "json":
		out, err := lint.RenderJSON(findings, cwd)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
	case "sarif":
		out, err := lint.RenderSARIF(lint.Analyzers(), findings, cwd)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
	default:
		for _, f := range findings {
			fmt.Println(f.String(cwd))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fusionlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// audit implements -waivers: list every //lint: suppression in scope. Text
// mode prints "file:line: [analyzer] reason" plus a count; json emits the
// records as an array. (SARIF has no natural shape for suppressions-as-
// inventory, so -waivers -format sarif falls back to json.)
func audit(cwd string, pkgs []*lint.Package, format string) {
	records := lint.AuditWaivers(lint.Analyzers(), pkgs, cwd)
	if format != "text" {
		out, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	for _, w := range records {
		reason := w.Reason
		if reason == "" {
			reason = "(missing justification)"
		}
		fmt.Printf("%s:%d: [%s] %s\n", w.File, w.Line, w.Analyzer, reason)
	}
	fmt.Fprintf(os.Stderr, "fusionlint: %d waiver(s)\n", len(records))
}

// expand resolves package patterns to module-local directories. "..."
// suffixes walk the tree; plain arguments name single package directories.
func expand(mod *lint.Module, cwd string, args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			root := filepath.Join(cwd, rest)
			all, err := lint.ListPackageDirs(mod)
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				if d == root || strings.HasPrefix(d, root+string(filepath.Separator)) {
					add(d)
				}
			}
			continue
		}
		if filepath.IsAbs(a) {
			add(filepath.Clean(a))
		} else {
			add(filepath.Join(cwd, a))
		}
	}
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fusionlint: %v\n", err)
	os.Exit(2)
}
