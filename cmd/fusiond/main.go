// Command fusiond serves the Fusion simulator as a crash-safe sweep
// daemon: benchmark x system x config grids over HTTP/JSON, backed by a
// worker pool with singleflight coalescing, per-job budgets, load
// shedding, and a content-addressed on-disk result cache that survives
// crashes (see internal/service and the README's "Running fusiond").
//
// Usage:
//
//	fusiond [-addr host:port] [-cache dir] [-workers n] [-queue n] [-drain d]
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, running jobs
// finish (up to -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fusion/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7121", "listen address")
	cacheDir := flag.String("cache", ".fusiond-cache", "result cache directory")
	workers := flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before shedding with 429")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "fusiond: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "fusiond: ", log.LstdFlags)

	svc, err := service.New(service.Options{
		CacheDir:   *cacheDir,
		Workers:    *workers,
		QueueDepth: *queue,
		Logf:       logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on http://%s", *addr)
		errCh <- server.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("signal received; draining (budget %s)", *drain)

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and let in-flight handlers finish; the
	// scheduler drain below bounds how long those handlers can take.
	if err := server.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("drain: %v", err)
	}
	logger.Printf("exiting; %d cells cached", svc.Cache().Len())
}
