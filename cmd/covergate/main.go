// Command covergate turns a merged Go coverage profile into per-package
// statement-coverage percentages and gates them against a checked-in
// baseline:
//
//	go test -count=1 -coverprofile=cover.out ./...
//	covergate -profile cover.out -baseline COVERAGE_BASELINE          # gate
//	covergate -profile cover.out -baseline COVERAGE_BASELINE -write   # refresh
//
// The gate fails (exit 1) when any package's coverage drops more than
// -maxdrop percentage points below its baseline entry. Packages new since
// the baseline pass (and are reported) — refresh with -write after adding
// a package or deliberately changing coverage. Exit 2 on usage/parse
// errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		profile  = flag.String("profile", "cover.out", "merged coverage profile from go test -coverprofile")
		baseline = flag.String("baseline", "COVERAGE_BASELINE", "checked-in per-package baseline file")
		maxDrop  = flag.Float64("maxdrop", 2.0, "max tolerated drop in percentage points per package")
		write    = flag.Bool("write", false, "regenerate the baseline from the profile instead of gating")
	)
	flag.Parse()

	got, err := packageCoverage(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintf(os.Stderr, "covergate: profile %s covers no packages\n", *profile)
		os.Exit(2)
	}

	if *write {
		if err := writeBaseline(*baseline, got); err != nil {
			fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("covergate: wrote %d packages to %s\n", len(got), *baseline)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(got))
	for p := range got {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	failed := 0
	for _, p := range pkgs {
		cur := got[p]
		want, known := base[p]
		switch {
		case !known:
			fmt.Printf("NEW   %-40s %6.1f%% (not in baseline; refresh with -write)\n", p, cur)
		case cur+*maxDrop < want:
			fmt.Printf("FAIL  %-40s %6.1f%% (baseline %.1f%%, drop %.1f > %.1f points)\n",
				p, cur, want, want-cur, *maxDrop)
			failed++
		default:
			fmt.Printf("ok    %-40s %6.1f%% (baseline %.1f%%)\n", p, cur, want)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "covergate: %d package(s) regressed more than %.1f points\n",
			failed, *maxDrop)
		os.Exit(1)
	}
}

// packageCoverage parses a coverage profile into package -> percent of
// statements covered. Profile lines are
// "pkg/file.go:sl.sc,el.ec numStmts hitCount".
func packageCoverage(profilePath string) (map[string]float64, error) {
	f, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type tally struct{ total, covered int }
	acc := make(map[string]*tally)
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		colon := strings.LastIndex(line, ".go:")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profilePath, ln, line)
		}
		pkg := path.Dir(line[:colon+3])
		fields := strings.Fields(line[colon+4:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed profile line %q", profilePath, ln, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count: %v", profilePath, ln, err)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count: %v", profilePath, ln, err)
		}
		t := acc[pkg]
		if t == nil {
			t = &tally{}
			acc[pkg] = t
		}
		t.total += stmts
		if hits > 0 {
			t.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make(map[string]float64, len(acc))
	pkgs := make([]string, 0, len(acc))
	for p := range acc {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		t := acc[p]
		if t.total == 0 {
			continue
		}
		out[p] = 100 * float64(t.covered) / float64(t.total)
	}
	return out, nil
}

// readBaseline parses "package percent" lines.
func readBaseline(baselinePath string) (map[string]float64, error) {
	f, err := os.Open(baselinePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package percent\", got %q",
				baselinePath, ln, line)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad percent: %v", baselinePath, ln, err)
		}
		out[fields[0]] = pct
	}
	return out, sc.Err()
}

func writeBaseline(baselinePath string, got map[string]float64) error {
	pkgs := make([]string, 0, len(got))
	for p := range got {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	var b strings.Builder
	b.WriteString("# Per-package statement coverage floor, maintained by cmd/covergate.\n")
	b.WriteString("# Refresh: go test -count=1 -coverprofile=cover.out ./... && go run ./cmd/covergate -profile cover.out -baseline COVERAGE_BASELINE -write\n")
	for _, p := range pkgs {
		fmt.Fprintf(&b, "%s %.1f\n", p, got[p])
	}
	return os.WriteFile(baselinePath, []byte(b.String()), 0o644)
}
