// Command fusionbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, printed as the same rows and series the
// paper reports.
//
// Usage:
//
//	fusionbench                 # everything, in the paper's order
//	fusionbench -exp fig6b      # one artifact
//	fusionbench -list           # names of the regenerable artifacts
//	fusionbench -j 8            # bound the parallel sweep's worker pool
//	fusionbench -benchout BENCH_2026-08-05.json   # wall-clock/alloc report
//	fusionbench -allocbudget BENCH_BUDGET.json    # allocs/op regression gate
//
// The sweep is deterministic: output is byte-identical for any -j value.
// Absolute numbers will differ from the paper (this simulator is not the
// authors' macsim/GEMS testbed); see EXPERIMENTS.md for the side-by-side
// shape comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fusion"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: "+strings.Join(fusion.ExperimentNames(), ", ")+", or all")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		workers = flag.Int("j", 0, "parallel sweep workers (0: GOMAXPROCS; 1: sequential)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchOt = flag.String("benchout", "", "time each artifact's regeneration and write a JSON report to this file")
		budget  = flag.String("allocbudget", "", "compare each artifact's allocs/op and bytes/op against this budget JSON; exit nonzero above tolerance")
		sched   = flag.String("scheduler", "", "event-queue implementation: heap or wheel (default: wheel); artifacts are byte-identical either way")
	)
	flag.Parse()

	if *list {
		for _, n := range fusion.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if *budget != "" {
		err = checkAllocBudget(*budget, *workers, *sched)
	} else if *benchOt != "" {
		err = writeBenchReport(*benchOt, *workers, *sched)
	} else {
		r := fusion.NewExperiments()
		r.SetWorkers(*workers)
		r.SetScheduler(*sched)
		if *jsonOut {
			err = r.PrintJSON(os.Stdout, *exp)
		} else {
			err = r.Print(os.Stdout, *exp)
		}
	}
	if err != nil {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		fatal(err)
	}

	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC()
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatal(ferr)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// benchEntry is the regeneration cost of one artifact. One "op" is a full
// cold regeneration — a fresh runner, so nothing is memoized across
// entries; the final "all" entry regenerates every artifact through one
// shared runner, which is the fusionbench default path.
type benchEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Entries    []benchEntry `json:"entries"`
}

// measureArtifact cold-regenerates one artifact (a fresh runner, so nothing
// is memoized across entries) and reports its wall clock and heap cost.
func measureArtifact(name string, workers int, scheduler string) (benchEntry, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	r := fusion.NewExperiments()
	r.SetWorkers(workers)
	r.SetScheduler(scheduler)
	if err := r.Print(io.Discard, name); err != nil {
		return benchEntry{}, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	fmt.Fprintf(os.Stderr, "%-14s %12.1f ms\n", name, float64(elapsed.Nanoseconds())/1e6)
	return benchEntry{
		Name:        name,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
	}, nil
}

// writeBenchReport measures every artifact's cold regeneration cost plus
// the full-set cost and writes the JSON report. Wall-clock numbers depend
// on -j and the host; the artifact bytes themselves never do.
func writeBenchReport(path string, workers int, scheduler string) error {
	report := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	for _, name := range append(fusion.ExperimentNames(), "all") {
		e, err := measureArtifact(name, workers, scheduler)
		if err != nil {
			return err
		}
		report.Entries = append(report.Entries, e)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// budgetFile is the checked-in allocation budget (BENCH_BUDGET.json): per
// artifact, the allocs/op and bytes/op ceilings, with a shared headroom
// percentage. Wall clock is deliberately not budgeted (host-dependent).
type budgetFile struct {
	// TolerancePct is the allowed overshoot above each budgeted value
	// before the gate fails (absorbs run-to-run and Go-version noise).
	TolerancePct float64       `json:"tolerance_pct"`
	Entries      []budgetEntry `json:"entries"`
}

type budgetEntry struct {
	Name        string `json:"name"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// checkAllocBudget regenerates every budgeted artifact and fails if its
// measured allocs/op or bytes/op exceed the budget by more than the
// tolerance. An improvement well under budget passes (with a hint to
// ratchet the budget down via -benchout).
func checkAllocBudget(path string, workers int, scheduler string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b budgetFile
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Entries) == 0 {
		return fmt.Errorf("%s: no budget entries", path)
	}
	// A budget row naming an artifact that no longer exists would silently
	// gate nothing; reject it so renames keep the budget honest.
	known := make(map[string]bool)
	for _, n := range append(fusion.ExperimentNames(), "all") {
		known[n] = true
	}
	for _, want := range b.Entries {
		if !known[want.Name] {
			return fmt.Errorf("%s: unknown artifact %q (valid: %s, all)",
				path, want.Name, strings.Join(fusion.ExperimentNames(), ", "))
		}
	}
	tol := 1 + b.TolerancePct/100
	var failures []string
	for _, want := range b.Entries {
		got, err := measureArtifact(want.Name, workers, scheduler)
		if err != nil {
			return err
		}
		check := func(metric string, gotV, budgetV uint64) {
			limit := uint64(float64(budgetV) * tol)
			status := "ok"
			if gotV > limit {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s %s: %d > %d (budget %d +%.0f%%)",
					want.Name, metric, gotV, limit, budgetV, b.TolerancePct))
			}
			fmt.Fprintf(os.Stderr, "  %-14s %-9s %14d budget %14d  %s\n",
				want.Name, metric, gotV, budgetV, status)
		}
		check("allocs/op", got.AllocsPerOp, want.AllocsPerOp)
		check("bytes/op", got.BytesPerOp, want.BytesPerOp)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget exceeded:\n  %s\nregenerate the budget with -benchout after an intentional change",
			strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "allocation budget: all artifacts within budget")
	return nil
}
