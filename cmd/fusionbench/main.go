// Command fusionbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, printed as the same rows and series the
// paper reports.
//
// Usage:
//
//	fusionbench                 # everything, in the paper's order
//	fusionbench -exp fig6b      # one artifact
//	fusionbench -list           # names of the regenerable artifacts
//
// Absolute numbers will differ from the paper (this simulator is not the
// authors' macsim/GEMS testbed); see EXPERIMENTS.md for the side-by-side
// shape comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fusion"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: "+strings.Join(fusion.ExperimentNames(), ", ")+", or all")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	)
	flag.Parse()

	if *list {
		for _, n := range fusion.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	r := fusion.NewExperiments()
	var err error
	if *jsonOut {
		err = r.PrintJSON(os.Stdout, *exp)
	} else {
		err = r.Print(os.Stdout, *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
