// Command fusionbench regenerates the paper's evaluation artifacts: every
// table and figure of Section 5, printed as the same rows and series the
// paper reports.
//
// Usage:
//
//	fusionbench                 # everything, in the paper's order
//	fusionbench -exp fig6b      # one artifact
//	fusionbench -list           # names of the regenerable artifacts
//	fusionbench -j 8            # bound the parallel sweep's worker pool
//	fusionbench -benchout BENCH_2026-08-05.json   # wall-clock/alloc report
//
// The sweep is deterministic: output is byte-identical for any -j value.
// Absolute numbers will differ from the paper (this simulator is not the
// authors' macsim/GEMS testbed); see EXPERIMENTS.md for the side-by-side
// shape comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fusion"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: "+strings.Join(fusion.ExperimentNames(), ", ")+", or all")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		workers = flag.Int("j", 0, "parallel sweep workers (0: GOMAXPROCS; 1: sequential)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchOt = flag.String("benchout", "", "time each artifact's regeneration and write a JSON report to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range fusion.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if *benchOt != "" {
		err = writeBenchReport(*benchOt, *workers)
	} else {
		r := fusion.NewExperiments()
		r.SetWorkers(*workers)
		if *jsonOut {
			err = r.PrintJSON(os.Stdout, *exp)
		} else {
			err = r.Print(os.Stdout, *exp)
		}
	}
	if err != nil {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		fatal(err)
	}

	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC()
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fatal(ferr)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// benchEntry is the regeneration cost of one artifact. One "op" is a full
// cold regeneration — a fresh runner, so nothing is memoized across
// entries; the final "all" entry regenerates every artifact through one
// shared runner, which is the fusionbench default path.
type benchEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

type benchReport struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Entries    []benchEntry `json:"entries"`
}

// writeBenchReport measures every artifact's cold regeneration cost plus
// the full-set cost and writes the JSON report. Wall-clock numbers depend
// on -j and the host; the artifact bytes themselves never do.
func writeBenchReport(path string, workers int) error {
	report := benchReport{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	measure := func(name string) error {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r := fusion.NewExperiments()
		r.SetWorkers(workers)
		if err := r.Print(io.Discard, name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		report.Entries = append(report.Entries, benchEntry{
			Name:        name,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
		})
		fmt.Fprintf(os.Stderr, "%-14s %12.1f ms\n", name, float64(elapsed.Nanoseconds())/1e6)
		return nil
	}
	for _, name := range fusion.ExperimentNames() {
		if err := measure(name); err != nil {
			return err
		}
	}
	if err := measure("all"); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
