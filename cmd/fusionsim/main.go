// Command fusionsim runs one benchmark on one of the four systems the
// paper compares and reports cycles, energy, and traffic.
//
// Usage:
//
//	fusionsim -bench fft -system fusion
//	fusionsim -bench hist -system scratch -phases
//	fusionsim -bench adpcm -system fusion-dx -stats -energy
//	fusionsim -bench disp -system fusion -large
//
// Systems: scratch, shared, fusion, fusion-dx.
// Benchmarks: fft, disp, track, adpcm, susan, filt, hist.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"fusion"
)

func main() {
	var (
		benchName = flag.String("bench", "fft", "benchmark: "+strings.Join(fusion.Benchmarks(), ", "))
		benchFile = flag.String("benchfile", "", "run a benchmark loaded from this JSON file (see tracegen -save)")
		sysName   = flag.String("system", "fusion", "system: scratch, shared, fusion, fusion-dx")
		large     = flag.Bool("large", false, "AXC-Large configuration (8K L0X / 256K L1X, Section 5.5)")
		wt        = flag.Bool("writethrough", false, "disable L0X write caching (Table 4)")
		phases    = flag.Bool("phases", false, "print per-phase cycles and energy")
		stats     = flag.Bool("stats", false, "dump all statistics counters")
		energyOut = flag.Bool("energy", false, "dump the energy meter by component")
		verify    = flag.Bool("verify", true, "check final memory state against sequential semantics")
		paranoid  = flag.Bool("paranoid", false, "check protocol invariants every 64 cycles (slower)")
		watchdog  = flag.Uint64("watchdog", 1_000_000, "halt with a diagnostic dump after this many cycles without forward progress (0 disables)")
		faultSeed = flag.Uint64("faultseed", 0, "inject a random fault plan derived from this seed (0 disables)")
		faultPlan = flag.String("faultplan", "", "inject the JSON fault plan loaded from this file (overrides -faultseed)")
	)
	flag.Parse()

	var sys fusion.System
	switch strings.ToLower(*sysName) {
	case "scratch":
		sys = fusion.ScratchSystem
	case "shared":
		sys = fusion.SharedSystem
	case "fusion":
		sys = fusion.FusionSystem
	case "fusion-dx", "fusiondx", "dx":
		sys = fusion.FusionDxSystem
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *sysName)
		os.Exit(2)
	}

	var b *fusion.Benchmark
	if *benchFile != "" {
		f, err := os.Open(*benchFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err = fusion.LoadBenchmarkJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		valid := false
		for _, n := range fusion.Benchmarks() {
			if n == *benchName {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (valid: %s)\n",
				*benchName, strings.Join(fusion.Benchmarks(), ", "))
			os.Exit(2)
		}
		b = fusion.LoadBenchmark(*benchName)
	}
	cfg := fusion.DefaultConfig(sys)
	cfg.Large = *large
	cfg.WriteThrough = *wt
	cfg.Paranoid = *paranoid
	cfg.WatchdogCycles = *watchdog
	if *faultPlan != "" {
		plan, err := fusion.LoadFaultPlanFile(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Faults = &plan
	} else if *faultSeed != 0 {
		plan := fusion.RandomFaultPlan(*faultSeed)
		cfg.Faults = &plan
	}
	if cfg.Faults != nil {
		fmt.Printf("fault plan       %+v\n", *cfg.Faults)
	}

	res, err := fusion.Run(b, cfg)
	if err != nil {
		var pe *fusion.ProtocolError
		if errors.As(err, &pe) {
			fmt.Fprintf(os.Stderr, "simulation failed: %s at cycle %d: %s\n",
				pe.Component, pe.Cycle, pe.Message)
			if pe.State != "" {
				fmt.Fprintf(os.Stderr, "--- state dump ---\n%s\n", pe.State)
			}
		} else {
			fmt.Fprintln(os.Stderr, "simulation failed:", err)
		}
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("system           %s\n", res.System)
	fmt.Printf("cycles           %d\n", res.Cycles)
	if res.DMACycles > 0 {
		fmt.Printf("dma cycles       %d (%.0f%% of total)\n", res.DMACycles,
			100*float64(res.DMACycles)/float64(res.Cycles))
		fmt.Printf("dma transfers    %d (%.1f kB)\n", res.DMATransfers,
			float64(res.DMABytes)/1024)
	}
	if res.ForwardedBlocks > 0 {
		fmt.Printf("forwarded blocks %d\n", res.ForwardedBlocks)
	}
	fmt.Printf("working set      %.1f kB\n", float64(res.WorkingSetBytes)/1024)
	fmt.Printf("on-chip energy   %.2f uJ\n", res.OnChipPJ()/1e6)
	fmt.Printf("total energy     %.2f uJ (incl. DRAM)\n", res.Energy.Total()/1e6)

	if *verify {
		want := fusion.ExpectedVersions(b)
		bad := 0
		for va, wv := range want {
			if res.FinalVersions[va] != wv {
				bad++
			}
		}
		if bad > 0 {
			fmt.Printf("VERIFY: FAILED — %d lines diverge from sequential semantics\n", bad)
			os.Exit(1)
		}
		fmt.Printf("verify           ok (%d lines match sequential semantics)\n", len(want))
	}

	if *phases {
		fmt.Println("\nper-phase:")
		for _, ph := range res.Phases {
			who := fmt.Sprintf("axc%d", ph.AXC)
			if ph.AXC < 0 {
				who = "host"
			}
			fmt.Printf("  %-16s %-5s %10d cycles %12.0f pJ", ph.Function, who, ph.Cycles, ph.EnergyPJ)
			if ph.DMACycles > 0 {
				fmt.Printf("  (%d in DMA)", ph.DMACycles)
			}
			fmt.Println()
		}
	}
	if *energyOut {
		fmt.Println("\nenergy by component:")
		res.Energy.Dump(os.Stdout)
	}
	if *stats {
		fmt.Println("\nstatistics:")
		res.Stats.Dump(os.Stdout)
	}
}
