// Command fusionsim runs benchmarks on the systems the paper compares and
// reports cycles, energy, and traffic.
//
// Usage:
//
//	fusionsim -bench fft -system fusion
//	fusionsim -bench hist -system scratch -phases
//	fusionsim -bench adpcm -system fusion-dx -stats -energy
//	fusionsim -bench disp -system fusion -large
//	fusionsim -bench all -system all -j 8       # full sweep, one line per cell
//	fusionsim -bench fft,adpcm -system fusion,shared
//	fusionsim -litmus all                        # directed coherence litmus suite
//	fusionsim -litmus lease-expiry               # one case, all its systems
//	fusionsim -bench fft -deadline 30s           # bound wall time; abort is structured
//	fusionsim -bench fft -maxcycles 1000000      # bound simulated cycles likewise
//
// Systems: scratch, shared, fusion, fusion-dx, adaptive, hydra.
// Benchmarks: fft, disp, track, adpcm, susan, filt, hist.
//
// When -bench/-system name more than one cell (comma-separated lists or
// "all"), the cells run as a deterministic parallel sweep: -j bounds the
// worker pool and the report rows are printed in cell order, byte-identical
// for any worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"fusion"
)

// systemNames derives from the systems registry, so "-system all" and the
// flag help track new Kinds without a CLI change.
var systemNames = fusion.Systems()

func systemOf(name string) (fusion.System, bool) { return fusion.ParseSystem(name) }

// expandList resolves a comma-separated flag value against the valid set,
// with "all" meaning every entry in canonical order.
func expandList(flagVal string, valid []string, what string) []string {
	if strings.EqualFold(flagVal, "all") {
		return valid
	}
	var out []string
	for _, name := range strings.Split(flagVal, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "no %s named in %q\n", what, flagVal)
		os.Exit(2)
	}
	return out
}

func main() {
	var (
		benchName = flag.String("bench", "fft", "benchmark(s): comma-separated from "+strings.Join(fusion.Benchmarks(), ", ")+", or all")
		benchFile = flag.String("benchfile", "", "run a benchmark loaded from this JSON file (see tracegen -save)")
		sysName   = flag.String("system", "fusion", "system(s): comma-separated from "+strings.Join(systemNames, ", ")+", or all")
		large     = flag.Bool("large", false, "AXC-Large configuration (8K L0X / 256K L1X, Section 5.5)")
		wt        = flag.Bool("writethrough", false, "disable L0X write caching (Table 4)")
		phases    = flag.Bool("phases", false, "print per-phase cycles and energy")
		stats     = flag.Bool("stats", false, "dump all statistics counters")
		energyOut = flag.Bool("energy", false, "dump the energy meter by component")
		verify    = flag.Bool("verify", true, "check final memory state against sequential semantics")
		paranoid  = flag.Bool("paranoid", false, "check protocol invariants every 64 cycles (slower)")
		watchdog  = flag.Uint64("watchdog", 1_000_000, "halt with a diagnostic dump after this many cycles without forward progress (0 disables)")
		scheduler = flag.String("scheduler", "", "event-queue implementation: heap or wheel (default: wheel); results are identical either way")
		deadline  = flag.Duration("deadline", 0, "abort with a structured timeout + diagnostic dump after this much wall time (0 disables)")
		maxCycles = flag.Uint64("maxcycles", 0, "abort with a structured budget error after this many simulated cycles (0: default budget)")
		faultSeed = flag.Uint64("faultseed", 0, "inject a random fault plan derived from this seed (0 disables)")
		faultPlan = flag.String("faultplan", "", "inject the JSON fault plan loaded from this file (overrides -faultseed)")
		litmusArg = flag.String("litmus", "", "run a directed coherence litmus case (or all) instead of a benchmark")
		workers   = flag.Int("j", 0, "parallel sweep workers when multiple cells are named (0: GOMAXPROCS)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}()

	if *litmusArg != "" {
		runLitmus(*litmusArg, *scheduler)
		return
	}

	var basePlan *fusion.FaultPlan
	if *faultPlan != "" {
		plan, err := fusion.LoadFaultPlanFile(*faultPlan)
		if err != nil {
			fatal(err)
		}
		basePlan = &plan
	} else if *faultSeed != 0 {
		plan := fusion.RandomFaultPlan(*faultSeed)
		basePlan = &plan
	}

	configure := func(sys fusion.System) fusion.Config {
		cfg := fusion.DefaultConfig(sys)
		cfg.Large = *large
		cfg.WriteThrough = *wt
		cfg.Paranoid = *paranoid
		cfg.WatchdogCycles = *watchdog
		cfg.Scheduler = *scheduler
		if *maxCycles > 0 {
			cfg.MaxCycles = *maxCycles
		}
		if basePlan != nil {
			// Each cell replays its own copy of the plan; runs never share
			// mutable state.
			plan := *basePlan
			cfg.Faults = &plan
		}
		return cfg
	}

	// -deadline bounds the whole invocation's wall time: the simulation
	// aborts with a structured deadline error (and the watchdog's
	// diagnostic dump, when armed) instead of hanging forever.
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	benches := expandList(*benchName, fusion.Benchmarks(), "benchmark")
	sysNames := expandList(*sysName, systemNames, "system")
	if len(benches) > 1 || len(sysNames) > 1 {
		if *benchFile != "" {
			fmt.Fprintln(os.Stderr, "-benchfile cannot be combined with a multi-cell sweep")
			os.Exit(2)
		}
		runSweep(ctx, benches, sysNames, configure, *workers, *verify)
		return
	}

	sys, ok := systemOf(sysNames[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q\n", sysNames[0])
		os.Exit(2)
	}

	var b *fusion.Benchmark
	if *benchFile != "" {
		f, err := os.Open(*benchFile)
		if err != nil {
			fatal(err)
		}
		b, err = fusion.LoadBenchmarkJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		valid := false
		for _, n := range fusion.Benchmarks() {
			if n == benches[0] {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q (valid: %s)\n",
				benches[0], strings.Join(fusion.Benchmarks(), ", "))
			os.Exit(2)
		}
		b = fusion.LoadBenchmark(benches[0])
	}
	cfg := configure(sys)
	if cfg.Faults != nil {
		fmt.Printf("fault plan       %+v\n", *cfg.Faults)
	}

	res, err := fusion.RunCtx(ctx, b, cfg)
	if err != nil {
		printRunError(err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("system           %s\n", res.System)
	fmt.Printf("cycles           %d\n", res.Cycles)
	if res.DMACycles > 0 {
		fmt.Printf("dma cycles       %d (%.0f%% of total)\n", res.DMACycles,
			100*float64(res.DMACycles)/float64(res.Cycles))
		fmt.Printf("dma transfers    %d (%.1f kB)\n", res.DMATransfers,
			float64(res.DMABytes)/1024)
	}
	if res.ForwardedBlocks > 0 {
		fmt.Printf("forwarded blocks %d\n", res.ForwardedBlocks)
	}
	fmt.Printf("working set      %.1f kB\n", float64(res.WorkingSetBytes)/1024)
	fmt.Printf("on-chip energy   %.2f uJ\n", res.OnChipPJ()/1e6)
	fmt.Printf("total energy     %.2f uJ (incl. DRAM)\n", res.Energy.Total()/1e6)

	if *verify {
		want := fusion.ExpectedVersions(b)
		bad := 0
		for va, wv := range want {
			if res.FinalVersions[va] != wv {
				bad++
			}
		}
		if bad > 0 {
			fmt.Printf("VERIFY: FAILED — %d lines diverge from sequential semantics\n", bad)
			os.Exit(1)
		}
		fmt.Printf("verify           ok (%d lines match sequential semantics)\n", len(want))
	}

	if *phases {
		fmt.Println("\nper-phase:")
		for _, ph := range res.Phases {
			who := fmt.Sprintf("axc%d", ph.AXC)
			if ph.AXC < 0 {
				who = "host"
			}
			fmt.Printf("  %-16s %-5s %10d cycles %12.0f pJ", ph.Function, who, ph.Cycles, ph.EnergyPJ)
			if ph.DMACycles > 0 {
				fmt.Printf("  (%d in DMA)", ph.DMACycles)
			}
			fmt.Println()
		}
	}
	if *energyOut {
		fmt.Println("\nenergy by component:")
		res.Energy.Dump(os.Stdout)
	}
	if *stats {
		fmt.Println("\nstatistics:")
		res.Stats.Dump(os.Stdout)
	}
}

// runLitmus runs the named directed coherence litmus case (or "all") on
// each of its declared systems and prints one row per run; a failing run
// prints its structured report — every visibility-model violation names
// the agent, line, cycle, and the write it should have observed — and the
// process exits 1.
func runLitmus(name, scheduler string) {
	var tune []func(*fusion.Config)
	if scheduler != "" {
		tune = append(tune, func(cfg *fusion.Config) { cfg.Scheduler = scheduler })
	}
	reps, err := fusion.RunLitmus(name, tune...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "litmus: %v\n", err)
		os.Exit(2)
	}
	failed := false
	fmt.Printf("%-16s %-10s %8s %12s %s\n",
		"case", "system", "cycles", "observations", "result")
	for _, rep := range reps {
		verdict := "ok"
		if rep.Failed() {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%-16s %-10s %8d %12d %s\n",
			rep.Case, rep.System, rep.Cycles, rep.Observations, verdict)
		for _, v := range rep.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
		if rep.FinalMismatches > 0 {
			fmt.Printf("    final image: %d lines diverge from sequential semantics\n",
				rep.FinalMismatches)
		}
		if rep.ScenarioErr != nil {
			fmt.Printf("    scenario: %v\n", rep.ScenarioErr)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSweep executes the benchmark x system cross product on a bounded
// worker pool and prints one row per cell, in cell order.
func runSweep(ctx context.Context, benches, sysNames []string, configure func(fusion.System) fusion.Config, workers int, verify bool) {
	var items []fusion.SweepItem
	goldens := make(map[string]map[fusion.VAddr]uint64)
	for _, bn := range benches {
		b := fusion.LoadBenchmark(bn)
		if verify {
			goldens[bn] = fusion.ExpectedVersions(b)
		}
		for _, sn := range sysNames {
			sys, ok := systemOf(sn)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown system %q\n", sn)
				os.Exit(2)
			}
			items = append(items, fusion.SweepItem{
				Key:    bn + "/" + sn,
				Bench:  b,
				Config: configure(sys),
			})
		}
	}
	results, err := fusion.RunSweepCtx(ctx, items, workers)
	if err != nil {
		printRunError(err)
		os.Exit(1)
	}
	fmt.Printf("%-18s %12s %12s %12s %10s", "bench/system", "cycles", "dma-cycles", "onchip(uJ)", "total(uJ)")
	if verify {
		fmt.Printf(" %8s", "verify")
	}
	fmt.Println()
	failed := false
	for i, res := range results {
		fmt.Printf("%-18s %12d %12d %12.2f %10.2f",
			items[i].Key, res.Cycles, res.DMACycles, res.OnChipPJ()/1e6, res.Energy.Total()/1e6)
		if verify {
			bad := 0
			for va, wv := range goldens[res.Benchmark] {
				if res.FinalVersions[va] != wv {
					bad++
				}
			}
			if bad > 0 {
				fmt.Printf(" %8s", fmt.Sprintf("FAIL(%d)", bad))
				failed = true
			} else {
				fmt.Printf(" %8s", "ok")
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// printRunError renders a simulation failure, unwrapping the sweep key and
// the structured protocol diagnostic when present.
func printRunError(err error) {
	where := ""
	var se *fusion.SweepError
	if errors.As(err, &se) {
		where = se.Key + ": "
		err = se.Err // the key is already in the prefix
	}
	var pe *fusion.ProtocolError
	if errors.As(err, &pe) {
		fmt.Fprintf(os.Stderr, "simulation failed: %s%s at cycle %d: %s\n",
			where, pe.Component, pe.Cycle, pe.Message)
		if pe.State != "" {
			fmt.Fprintf(os.Stderr, "--- state dump ---\n%s\n", pe.State)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "simulation failed: %s%v\n", where, err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
