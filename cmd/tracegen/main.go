// Command tracegen generates and inspects the synthetic benchmark traces:
// the calibrated stand-ins for the paper's SD-VBS/MachSuite dynamic traces
// (see internal/workloads).
//
// Usage:
//
//	tracegen -bench fft                 # per-function summary
//	tracegen -bench adpcm -dump         # full iteration trace as CSV
//	tracegen -bench track -forwards     # the FUSION-Dx forwarding sets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fusion"
)

func main() {
	var (
		benchName = flag.String("bench", "fft", "benchmark: "+strings.Join(fusion.Benchmarks(), ", "))
		dump      = flag.Bool("dump", false, "dump the full trace as CSV (phase,iter,kind,addr)")
		forwards  = flag.Bool("forwards", false, "print the Dx forwarding sets")
		save      = flag.String("save", "", "write the benchmark as JSON to this file")
		random    = flag.Int64("random", 0, "generate a random benchmark from this seed instead")
	)
	flag.Parse()

	if *random == 0 {
		valid := false
		for _, n := range fusion.Benchmarks() {
			if n == *benchName {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchName)
			os.Exit(2)
		}
	}
	var b *fusion.Benchmark
	if *random != 0 {
		b = fusion.RandomBenchmark(*random)
	} else {
		b = fusion.LoadBenchmark(*benchName)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := fusion.SaveBenchmark(f, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s to %s\n", b.Program.Name, *save)
		return
	}

	if *dump {
		fmt.Println("phase,function,axc,iteration,kind,addr")
		for pi := range b.Program.Phases {
			ph := &b.Program.Phases[pi]
			for ii := range ph.Inv.Iterations {
				it := &ph.Inv.Iterations[ii]
				for _, a := range it.Loads {
					fmt.Printf("%d,%s,%d,%d,LD,%#x\n", pi, ph.Inv.Function, ph.Inv.AXC, ii, uint64(a))
				}
				for _, a := range it.Stores {
					fmt.Printf("%d,%s,%d,%d,ST,%#x\n", pi, ph.Inv.Function, ph.Inv.AXC, ii, uint64(a))
				}
			}
		}
		return
	}

	if *forwards {
		fmt.Printf("%s: %d producer phases forward\n", b.Program.Name, len(b.Forwards))
		for i := 0; i < len(b.Program.Phases); i++ {
			f, ok := b.Forwards[i]
			if !ok {
				continue
			}
			fmt.Printf("  phase %d (%s, axc%d) -> axc%d: %d lines\n",
				i, b.Program.Phases[i].Inv.Function, b.Program.Phases[i].Inv.AXC,
				f.Consumer, len(f.Lines))
		}
		return
	}

	lines, bytes := b.Program.WorkingSet()
	fmt.Printf("benchmark    %s\n", b.Program.Name)
	fmt.Printf("phases       %d (%d accelerators)\n", len(b.Program.Phases), b.Program.NumAXCs())
	fmt.Printf("working set  %d lines / %.1f kB\n", lines, float64(bytes)/1024)
	fmt.Printf("inputs       %d preloaded lines\n", len(b.InputLines))
	shr := b.Program.SharedLines()
	fmt.Printf("\n%-14s %6s %8s %8s %8s %8s %6s %6s\n",
		"function", "axc", "iters", "loads", "stores", "intops", "LT", "%SHR")
	seen := map[string]bool{}
	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if seen[ph.Inv.Function] {
			continue
		}
		seen[ph.Inv.Function] = true
		ii, fp, ld, st := ph.Inv.Ops()
		fmt.Printf("%-14s %6d %8d %8d %8d %8d %6d %6.1f\n",
			ph.Inv.Function, ph.Inv.AXC, len(ph.Inv.Iterations), ld, st, ii+fp,
			b.LeaseTimes[ph.Inv.Function], shr[ph.Inv.Function])
	}
}
