package fusion_test

// Coverage for the context-aware facade added with fusiond: RunCtx,
// RunSweepCtx, SpecOf, ParseSystem, IsCancellation. These delegate to
// internal/systems and internal/sim, which carry the behavioral tests;
// here we pin the public surface — signatures, error classification, and
// that a completed contextful run matches a plain one exactly.

import (
	"context"
	"errors"
	"testing"

	"fusion"
)

func TestRunCtxMatchesRun(t *testing.T) {
	b := fusion.LoadBenchmark("adpcm")
	cfg := fusion.DefaultConfig(fusion.FusionSystem)
	plain, err := fusion.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := fusion.RunCtx(context.Background(), b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != ctxed.Cycles || plain.Energy.Total() != ctxed.Energy.Total() {
		t.Fatalf("contextful run diverged: %d/%v vs %d/%v",
			plain.Cycles, plain.Energy.Total(), ctxed.Cycles, ctxed.Energy.Total())
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fusion.RunCtx(ctx, fusion.LoadBenchmark("adpcm"),
		fusion.DefaultConfig(fusion.FusionSystem))
	if err == nil {
		t.Fatal("pre-canceled context ran to completion")
	}
	if !fusion.IsCancellation(err) {
		t.Fatalf("IsCancellation(%v) = false", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	var pe *fusion.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *ProtocolError", err)
	}
}

func TestIsCancellationClassification(t *testing.T) {
	if fusion.IsCancellation(nil) {
		t.Fatal("nil classified as cancellation")
	}
	if fusion.IsCancellation(errors.New("boom")) {
		t.Fatal("ordinary error classified as cancellation")
	}
	if !fusion.IsCancellation(context.DeadlineExceeded) {
		t.Fatal("DeadlineExceeded not classified as cancellation")
	}
}

func TestParseSystem(t *testing.T) {
	sys, ok := fusion.ParseSystem("fusion-dx")
	if !ok || sys != fusion.FusionDxSystem {
		t.Fatalf("ParseSystem(fusion-dx) = %v, %v", sys, ok)
	}
	if _, ok := fusion.ParseSystem("no-such-system"); ok {
		t.Fatal("unknown system name parsed")
	}
}

func TestSystemsRegistry(t *testing.T) {
	names := fusion.Systems()
	if len(names) != 6 {
		t.Fatalf("Systems() = %v, want six systems", names)
	}
	for _, n := range names {
		if _, ok := fusion.ParseSystem(n); !ok {
			t.Errorf("registry name %q does not parse", n)
		}
	}
}

func TestSpecOfNormalizes(t *testing.T) {
	cfg := fusion.DefaultConfig(fusion.SharedSystem)
	a := fusion.SpecOf("fft", cfg)
	b := fusion.SpecOf("fft", cfg)
	if a.Key() != b.Key() || a.Hash() != b.Hash() {
		t.Fatalf("SpecOf is not stable: %q vs %q", a.Key(), b.Key())
	}
	if a.Label() != "fft/shared" {
		t.Fatalf("Label = %q", a.Label())
	}
}

func TestRunSweepCtx(t *testing.T) {
	b := fusion.LoadBenchmark("adpcm")
	items := []fusion.SweepItem{
		{Key: "adpcm/shared", Bench: b, Config: fusion.DefaultConfig(fusion.SharedSystem)},
		{Key: "adpcm/fusion", Bench: b, Config: fusion.DefaultConfig(fusion.FusionSystem)},
	}
	results, err := fusion.RunSweepCtx(context.Background(), items, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.Cycles == 0 {
			t.Fatalf("item %d (%s): empty result", i, items[i].Key)
		}
	}

	// A poisoned cell fails the sweep with a *SweepError naming it.
	bad := fusion.DefaultConfig(fusion.FusionSystem)
	bad.MaxCycles = 100
	items = append(items, fusion.SweepItem{Key: "poisoned", Bench: b, Config: bad})
	_, err = fusion.RunSweepCtx(context.Background(), items, 2)
	var se *fusion.SweepError
	if !errors.As(err, &se) || se.Key != "poisoned" {
		t.Fatalf("sweep error = %v, want *SweepError for poisoned", err)
	}
	if fusion.IsCancellation(err) {
		t.Fatalf("budget exhaustion classified as cancellation: %v", err)
	}
}
