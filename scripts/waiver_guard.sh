#!/bin/sh
# waiver_guard.sh — fail when lint-waiver debt grows silently.
#
# The committed .lint-waivers baseline records how many //lint: waivers the
# tree carries. This guard recounts with `fusionlint -waivers` and fails
# when the count grew, UNLESS the latest commit also touched ISSUE or docs
# (ISSUE*.md, DESIGN.md, README.md) — adding a waiver is fine exactly when
# its rationale ships alongside it. Shrinking debt updates the baseline
# expectation message but never fails.
#
# Refresh the baseline with: make waivers-baseline
set -eu

cd "$(dirname "$0")/.."

baseline_file=".lint-waivers"
if [ ! -f "$baseline_file" ]; then
    echo "waiver_guard: missing $baseline_file (run: make waivers-baseline)" >&2
    exit 1
fi
baseline=$(cat "$baseline_file")

count=$(go run ./cmd/fusionlint -waivers -format json ./... | grep -c '"file"' || true)

echo "waiver_guard: $count waiver(s), baseline $baseline"

if [ "$count" -le "$baseline" ]; then
    if [ "$count" -lt "$baseline" ]; then
        echo "waiver_guard: debt shrank; refresh with: make waivers-baseline"
    fi
    exit 0
fi

# Debt grew: allowed only when the commit explains itself in ISSUE/docs.
touched=$(git log -1 --name-only --pretty=format: 2>/dev/null || true)
if echo "$touched" | grep -qE '(^|/)(ISSUE[^/]*\.md|DESIGN\.md|README\.md)$'; then
    echo "waiver_guard: waiver count grew ($baseline -> $count) but the commit touches ISSUE/docs; refresh the baseline (make waivers-baseline)"
    exit 0
fi

echo "waiver_guard: waiver count grew ($baseline -> $count) without touching ISSUE/docs." >&2
echo "waiver_guard: justify the new waiver in DESIGN.md/README.md/ISSUE and refresh: make waivers-baseline" >&2
exit 1
