#!/bin/sh
# Daemon smoke: build fusiond, start it on a scratch cache directory,
# submit the committed smoke request twice (cold, then cache-served), and
# require both responses byte-identical to the committed golden. Then
# SIGTERM the daemon and require a clean exit with a non-empty persisted
# cache. Any drift in the golden bytes means the simulator's results — or
# the service's canonical serialization — changed, which must be a
# deliberate, reviewed event (regenerate with this script's REGEN=1).
set -eu

GO="${GO:-go}"
ADDR="${FUSIOND_ADDR:-127.0.0.1:7121}"
REQ=cmd/fusiond/testdata/smoke_request.json
GOLDEN=cmd/fusiond/testdata/smoke_golden.json
TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$GO" build -o "$TMP/fusiond" ./cmd/fusiond
"$TMP/fusiond" -addr "$ADDR" -cache "$TMP/cache" 2>"$TMP/fusiond.log" &
PID=$!

ready=""
i=0
while [ $i -lt 100 ]; do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ready" ]; then
    echo "fusiond never became healthy:" >&2
    cat "$TMP/fusiond.log" >&2
    exit 1
fi

curl -s -X POST "http://$ADDR/v1/sweep" --data-binary "@$REQ" -o "$TMP/resp1.json"

if [ "${REGEN:-}" = 1 ]; then
    cp "$TMP/resp1.json" "$GOLDEN"
    echo "regenerated $GOLDEN"
fi

curl -s -X POST "http://$ADDR/v1/sweep" --data-binary "@$REQ" -o "$TMP/resp2.json"

for resp in "$TMP/resp1.json" "$TMP/resp2.json"; do
    if ! cmp -s "$resp" "$GOLDEN"; then
        echo "daemon response $resp differs from $GOLDEN:" >&2
        diff "$GOLDEN" "$resp" >&2 || true
        exit 1
    fi
done

kill -TERM "$PID"
status=0
wait "$PID" || status=$?
PID=""
if [ "$status" -ne 0 ]; then
    echo "fusiond exited with status $status after SIGTERM:" >&2
    cat "$TMP/fusiond.log" >&2
    exit 1
fi

count=$(find "$TMP/cache/objects" -name '*.json' | wc -l)
if [ "$count" -lt 1 ]; then
    echo "no persisted cache entries after shutdown" >&2
    exit 1
fi
echo "daemon smoke OK: golden bytes matched twice, clean SIGTERM exit, $count cached cell(s)"
