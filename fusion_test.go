package fusion_test

import (
	"strings"
	"testing"

	"fusion"
)

func TestPublicQuickstart(t *testing.T) {
	b := fusion.LoadBenchmark("adpcm")
	res, err := fusion.Run(b, fusion.DefaultConfig(fusion.FusionSystem))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Energy.Total() == 0 {
		t.Fatal("empty result")
	}
	want := fusion.ExpectedVersions(b)
	for va, wv := range want {
		if res.FinalVersions[va] != wv {
			t.Fatalf("line %#x: v%d, golden v%d", uint64(va), res.FinalVersions[va], wv)
		}
	}
}

func TestBenchmarkNames(t *testing.T) {
	names := fusion.Benchmarks()
	if len(names) != 7 {
		t.Fatalf("benchmarks = %v, want 7", names)
	}
	for _, n := range names {
		if fusion.LoadBenchmark(n) == nil {
			t.Fatalf("LoadBenchmark(%q) nil", n)
		}
	}
}

func TestCustomProgram(t *testing.T) {
	// A minimal two-stage pipeline built through the public API: stage 0
	// produces a buffer, stage 1 consumes it.
	const base = fusion.VAddr(1 << 20)
	var produce, consume fusion.Invocation
	produce = fusion.Invocation{Function: "produce", AXC: 0, LeaseTime: 500}
	consume = fusion.Invocation{Function: "consume", AXC: 1, LeaseTime: 500}
	for i := 0; i < 64; i++ {
		a := base + fusion.VAddr(i*64)
		produce.Iterations = append(produce.Iterations, fusion.Iteration{
			Stores: []fusion.VAddr{a}, IntOps: 4,
		})
		consume.Iterations = append(consume.Iterations, fusion.Iteration{
			Loads: []fusion.VAddr{a}, IntOps: 4,
		})
	}
	b := &fusion.Benchmark{
		Program: &fusion.Program{
			Name: "custom",
			Phases: []fusion.Phase{
				{Kind: fusion.PhaseAccel, Inv: produce},
				{Kind: fusion.PhaseAccel, Inv: consume},
			},
		},
		LeaseTimes: map[string]uint64{"produce": 500, "consume": 500},
		MLP:        map[string]int{"produce": 4, "consume": 4},
	}
	res, err := fusion.Run(b, fusion.DefaultConfig(fusion.FusionSystem))
	if err != nil {
		t.Fatal(err)
	}
	want := fusion.ExpectedVersions(b)
	for va, wv := range want {
		if res.FinalVersions[va] != wv {
			t.Fatalf("custom program: line %#x v%d, golden v%d",
				uint64(va), res.FinalVersions[va], wv)
		}
	}
	// The consumer's reads never left the tile (no DMA, tile-local sharing).
	if res.DMATransfers != 0 {
		t.Fatal("FUSION run used DMA")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var sb strings.Builder
	if err := fusion.RunExperiment(&sb, "nope"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestExperimentNamesResolve(t *testing.T) {
	exp := fusion.NewExperiments()
	for _, e := range exp.All() {
		found := false
		for _, n := range fusion.ExperimentNames() {
			if n == e.Name {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from ExperimentNames", e.Name)
		}
	}
}
