package experiments

// shapes_test asserts the qualitative results the paper argues from — who
// wins, in which direction, and where the crossovers fall (Lessons 1-8 of
// Section 5). Absolute factors are allowed to differ from the paper; the
// orderings are not.

import (
	"math"
	"testing"

	"fusion/internal/systems"
)

// sharedRunner builds one Runner for the whole test file; runs memoize.
var sharedRunner = NewRunner()

func fig6b(t *testing.T) map[string]map[string]float64 {
	t.Helper()
	rows, err := sharedRunner.Figure6b()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]float64{}
	for _, r := range rows {
		if out[r.Benchmark] == nil {
			out[r.Benchmark] = map[string]float64{}
		}
		out[r.Benchmark][r.System] = r.Normalized
	}
	return out
}

func fig6a(t *testing.T) map[string]map[string]float64 {
	t.Helper()
	rows, err := sharedRunner.Figure6a()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]map[string]float64{}
	for _, r := range rows {
		if out[r.Benchmark] == nil {
			out[r.Benchmark] = map[string]float64{}
		}
		out[r.Benchmark][r.System] = r.Normalized
	}
	return out
}

// Lesson 1 / Section 5.1: on the DMA-bound benchmarks the SHARED system
// strongly outperforms SCRATCH (paper: 5.71x average; FFT alone is an order
// of magnitude).
func TestLesson1SharedBeatsScratchOnDMABound(t *testing.T) {
	perf := fig6b(t)
	var speedups []float64
	for _, b := range []string{"fft", "disp", "track", "hist"} {
		speedups = append(speedups, 1/perf[b]["SHARED"])
	}
	if perf["fft"]["SHARED"] > 0.2 {
		t.Errorf("FFT SHARED = %.3f of SCRATCH; the DMA pathology should make this tiny", perf["fft"]["SHARED"])
	}
	avg := 0.0
	for _, s := range speedups {
		avg += s
	}
	avg /= float64(len(speedups))
	if avg < 3 {
		t.Errorf("DMA-bound average SHARED speedup = %.2fx, paper reports 5.71x", avg)
	}
}

// Lesson 1 (flip side): on the small-working-set, high-locality benchmarks
// the SHARED system degrades performance relative to SCRATCH (paper: 14%).
func TestLesson1SharedDegradesOnScratchFriendly(t *testing.T) {
	perf := fig6b(t)
	degraded := 0
	for _, b := range []string{"adpcm", "susan", "filt"} {
		if perf[b]["SHARED"] > 1.0 {
			degraded++
		}
	}
	if degraded < 2 {
		t.Errorf("SHARED degraded on only %d of adpcm/susan/filt; the paper reports a 14%% average degradation", degraded)
	}
}

// Lesson 2: FUSION's private L0Xs recover the locality SHARED loses — on
// every scratch-friendly benchmark FUSION is at least as fast as SHARED.
func TestLesson2FusionRecoversSharedDegradation(t *testing.T) {
	perf := fig6b(t)
	for _, b := range []string{"adpcm", "susan", "filt"} {
		if perf[b]["FUSION"] > perf[b]["SHARED"]*1.02 {
			t.Errorf("%s: FUSION %.3f slower than SHARED %.3f", b,
				perf[b]["FUSION"], perf[b]["SHARED"])
		}
	}
	// Overall average: the paper reports FUSION 2.8x over SCRATCH.
	sum := 0.0
	n := 0
	for _, m := range perf {
		sum += 1 / m["FUSION"]
		n++
	}
	if avg := sum / float64(n); avg < 2 {
		t.Errorf("FUSION average speedup over SCRATCH = %.2fx, paper reports 2.8x", avg)
	}
}

// Lesson 3: the L0X filters the bulk of accesses away from the L1X (paper:
// 83% and 80% for FFT and DISP), and FUSION's energy lands below SHARED's.
func TestLesson3L0XFiltersAccesses(t *testing.T) {
	for _, b := range []string{"fft", "disp"} {
		res, err := sharedRunner.Run(b, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			t.Fatal(err)
		}
		// Filter rate: accelerator memory ops that never reach the L1X.
		var ops, grants int64
		for i := 0; i < 8; i++ {
			ops += res.Stats.Get("axc"+string(rune('0'+i))+".loads") +
				res.Stats.Get("axc"+string(rune('0'+i))+".stores")
		}
		grants = res.Stats.Get("l1x.grants_read") + res.Stats.Get("l1x.grants_write")
		filter := 1 - float64(grants)/float64(ops)
		if filter < 0.5 {
			t.Errorf("%s: L0X filters only %.0f%% of accelerator ops; paper reports ~80%%", b, 100*filter)
		}
	}
	en := fig6a(t)
	for _, b := range []string{"fft", "disp", "adpcm", "susan", "filt"} {
		if en[b]["FUSION"] > en[b]["SHARED"] {
			t.Errorf("%s: FUSION energy %.3f above SHARED %.3f — the L0X should pay for itself",
				b, en[b]["FUSION"], en[b]["SHARED"])
		}
	}
}

// Section 5.2: FFT and DISP save large factors of energy on the cache
// systems; HIST (and the lease-thrashing FILT) do not — FUSION costs about
// par or a bit more there (paper: +10%).
func TestEnergyCrossovers(t *testing.T) {
	en := fig6a(t)
	if en["fft"]["FUSION"] > 0.5 {
		t.Errorf("FFT FUSION energy = %.3f of SCRATCH; should save a large factor", en["fft"]["FUSION"])
	}
	if en["disp"]["FUSION"] > 0.9 {
		t.Errorf("DISP FUSION energy = %.3f; should clearly save", en["disp"]["FUSION"])
	}
	for _, b := range []string{"hist", "filt"} {
		if en[b]["FUSION"] < 0.75 || en[b]["FUSION"] > 1.6 {
			t.Errorf("%s FUSION energy = %.3f; the paper reports roughly par (+10%%)", b, en[b]["FUSION"])
		}
	}
}

// Lesson 5: write-through bandwidth exceeds writeback by a huge factor
// (Table 4 shows 1-2 orders of magnitude).
func TestLesson5WriteThroughBandwidth(t *testing.T) {
	rows, err := sharedRunner.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table 4 rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		// The paper's smallest ratio is DISP at ~3.5x; most are 1-2 orders
		// of magnitude.
		if float64(r.WriteThrough) < 3*float64(r.Writeback) {
			t.Errorf("%s: write-through %d flits not ≫ writeback %d", r.Benchmark,
				r.WriteThrough, r.Writeback)
		}
		if r.PctDirtyBlocks <= 0 || r.PctDirtyBlocks > 100 {
			t.Errorf("%s: %%dirty = %.1f out of range", r.Benchmark, r.PctDirtyBlocks)
		}
	}
}

// Lesson 6: write forwarding saves AXC cache and link energy on FFT, the
// paper's flagship producer-consumer benchmark (Table 5: 6.4%/16.9%).
func TestLesson6ForwardingSavesOnFFT(t *testing.T) {
	rows, err := sharedRunner.Table5()
	if err != nil {
		t.Fatal(err)
	}
	var fft *Table5Row
	for i := range rows {
		if rows[i].Benchmark == "fft" {
			fft = &rows[i]
		}
	}
	if fft == nil {
		t.Fatal("FFT missing from Table 5")
	}
	if fft.ForwardedBlocks < 100 {
		t.Errorf("FFT forwarded only %d blocks", fft.ForwardedBlocks)
	}
	if fft.PctCacheSaved <= 0 || fft.PctLinkSaved <= 0 {
		t.Errorf("FFT forwarding savings cache=%.1f%% link=%.1f%%; both must be positive",
			fft.PctCacheSaved, fft.PctLinkSaved)
	}
	// Forwarding must never break correctness elsewhere; magnitudes for the
	// other benchmarks stay near zero (they lack prompt consumers).
	for _, r := range rows {
		if math.Abs(r.PctCacheSaved) > 10 || math.Abs(r.PctLinkSaved) > 25 {
			t.Errorf("%s: implausible forwarding delta cache=%.1f%% link=%.1f%%",
				r.Benchmark, r.PctCacheSaved, r.PctLinkSaved)
		}
	}
}

// Lesson 7: larger caches are not better — the small-working-set
// benchmarks lose energy to the 2x L1X access cost (Section 5.5).
func TestLesson7LargerNotBetter(t *testing.T) {
	rows, err := sharedRunner.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	for _, b := range []string{"adpcm", "susan", "filt"} {
		if byName[b].EnergyRatio <= 1.0 {
			t.Errorf("%s: AXC-Large energy ratio %.3f; small working sets should see degradation",
				b, byName[b].EnergyRatio)
		}
	}
	// DISP is the benchmark that newly fits the 256 KB L1X; its cycle time
	// must not blow up (paper: ~3% change).
	if r := byName["disp"]; r.CycleRatio > 1.1 {
		t.Errorf("disp: AXC-Large cycle ratio %.3f; should be near par", r.CycleRatio)
	}
}

// Lesson 8: translation stays off the critical path — AX-TLB lookups are
// on the order of L1X misses, not accesses, and the AX-RMAP only sees the
// few forwarded host requests (Table 6).
func TestLesson8TranslationCounts(t *testing.T) {
	rows, err := sharedRunner.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		res, err := sharedRunner.Run(r.Benchmark, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			t.Fatal(err)
		}
		var accesses int64
		for i := 0; i < 8; i++ {
			accesses += res.Stats.Get(sprintfL0X(i, "accesses"))
		}
		if r.TLBLookups == 0 {
			t.Errorf("%s: no AX-TLB lookups recorded", r.Benchmark)
		}
		if r.TLBLookups*4 > accesses {
			t.Errorf("%s: AX-TLB lookups %d not ≪ accelerator accesses %d — translation crept onto the critical path",
				r.Benchmark, r.TLBLookups, accesses)
		}
		// SHARED, by contrast, translates on every access. HIST is the
		// paper's own outlier (Table 6: 60K lookups — its working set
		// overflows the L1X), so the factor there is smaller.
		sh, err := sharedRunner.Run(r.Benchmark, systems.DefaultConfig(systems.Shared))
		if err != nil {
			t.Fatal(err)
		}
		factor := int64(10)
		if r.Benchmark == "hist" {
			factor = 2
		}
		if sh.Stats.Get("sharedtlb.lookups") < factor*r.TLBLookups {
			t.Errorf("%s: SHARED TLB lookups %d not ≫ FUSION's %d",
				r.Benchmark, sh.Stats.Get("sharedtlb.lookups"), r.TLBLookups)
		}
	}
	// HIST is the lookup outlier, as in the paper's Table 6.
	var maxB string
	var maxV int64
	for _, r := range rows {
		if r.TLBLookups > maxV {
			maxV, maxB = r.TLBLookups, r.Benchmark
		}
	}
	if maxB != "hist" {
		t.Errorf("AX-TLB lookup outlier is %s, paper's is HIST", maxB)
	}
}

// Figure 6d: FFT's DMA-to-working-set ratio is the pathological one (paper:
// 165x; ours is smaller in absolute terms but must dominate the others).
func TestFig6dFFTPathology(t *testing.T) {
	rows, err := sharedRunner.Figure6d()
	if err != nil {
		t.Fatal(err)
	}
	var fftRatio, maxOther float64
	for _, r := range rows {
		if r.Benchmark == "fft" {
			fftRatio = r.Ratio
		} else if r.Ratio > maxOther {
			maxOther = r.Ratio
		}
		if r.DMATransfers <= 0 {
			t.Errorf("%s: no DMA transfers", r.Benchmark)
		}
	}
	if fftRatio < 2*maxOther {
		t.Errorf("FFT DMA/WSet ratio %.1f should dominate the others (max %.1f)", fftRatio, maxOther)
	}
}

// Every system must produce the same final data as sequential execution —
// the end-to-end correctness check across all four architectures.
func TestAllSystemsProduceGoldenData(t *testing.T) {
	for _, b := range []string{"fft", "adpcm", "susan"} {
		for _, kind := range []systems.Kind{systems.Scratch, systems.Shared, systems.Fusion, systems.FusionDx} {
			res, err := sharedRunner.Run(b, systems.DefaultConfig(kind))
			if err != nil {
				t.Fatalf("%s/%v: %v", b, kind, err)
			}
			want := systems.ExpectedVersions(sharedRunner.bench(b))
			bad := 0
			for va, wv := range want {
				if res.FinalVersions[va] != wv {
					bad++
				}
			}
			if bad > 0 {
				t.Errorf("%s/%v: %d lines diverge from sequential semantics", b, kind, bad)
			}
		}
	}
}

func sprintfL0X(i int, suffix string) string {
	return "l0x." + string(rune('0'+i)) + "." + suffix
}
