package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Data returns the named experiment's typed rows for programmatic use.
// Table 3 returns a struct with both its row list and the per-benchmark
// cache/compute ratios.
func (r *Runner) Data(name string) (any, error) {
	switch name {
	case "table1":
		return r.Table1()
	case "table3":
		rows, ratios, err := r.Table3()
		if err != nil {
			return nil, err
		}
		return struct {
			Rows   []Table3Row
			Ratios []Table3Ratio
		}{rows, ratios}, nil
	case "fig6a":
		return r.Figure6a()
	case "fig6b":
		return r.Figure6b()
	case "fig6c":
		return r.Figure6c()
	case "fig6d":
		return r.Figure6d()
	case "fig6e":
		return r.Figure6e()
	case "table4":
		return r.Table4()
	case "table5":
		return r.Table5()
	case "fig7":
		return r.Figure7()
	case "table6":
		return r.Table6()
	case "chart6a":
		return r.Figure6a()
	case "chart6b":
		return r.Figure6b()
	case "ablate-lease":
		return r.AblateLease()
	case "ablate-dma":
		return r.AblateDMADepth()
	case "ablate-tiles":
		return r.AblateTiles()
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

// PrintJSON writes the named experiment (or, for "all", an object keyed by
// experiment name) as indented JSON.
func (r *Runner) PrintJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if name != "all" {
		if err := r.Prefetch(name); err != nil {
			return err
		}
		data, err := r.Data(name)
		if err != nil {
			return err
		}
		return enc.Encode(data)
	}
	if err := r.prefetchAll(); err != nil {
		return err
	}
	out := make(map[string]any)
	for _, e := range r.All() {
		data, err := r.Data(e.Name)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		out[e.Name] = data
	}
	return enc.Encode(out)
}
