package experiments

// Up-front sweep planning. Every artifact's (benchmark, config) needs are
// enumerable before any simulation runs, which is what turns artifact
// regeneration into an embarrassingly parallel sweep: Prefetch enumerates
// the union for the requested artifacts in a fixed order, deduplicates
// cells singleflight-style, fans the misses out over a bounded worker
// pool, and lets the (sequential, order-fixed) artifact assembly read the
// memoized results — so reports are byte-identical for any worker count.

import (
	"sync"
	"sync/atomic"

	"fusion/internal/systems"
	"fusion/internal/workloads"
)

// Req is one simulation an artifact consumes.
type Req struct {
	Name   string
	Config systems.Config
}

// requirements enumerates, in a fixed order, every run the named artifact
// reads. It must stay in lockstep with the artifact bodies in
// experiments.go/ablations.go — TestRequirementsCoverEveryArtifact fails
// if an artifact executes a run its requirements did not enumerate.
func requirements(exp string) []Req {
	fusionOver := func(names []string) []Req {
		var reqs []Req
		for _, n := range names {
			reqs = append(reqs, Req{n, systems.DefaultConfig(systems.Fusion)})
		}
		return reqs
	}
	switch exp {
	case "table1", "table3", "table6":
		return fusionOver(workloads.Names())
	case "fig6a", "fig6b", "fig6c", "chart6a", "chart6b":
		var reqs []Req
		for _, n := range workloads.Names() {
			for _, kind := range SystemsCompared() {
				reqs = append(reqs, Req{n, systems.DefaultConfig(kind)})
			}
		}
		return reqs
	case "fig6d":
		var reqs []Req
		for _, n := range workloads.Names() {
			reqs = append(reqs, Req{n, systems.DefaultConfig(systems.Scratch)})
		}
		return reqs
	case "fig6e":
		var reqs []Req
		for _, n := range workloads.Names() {
			for _, kind := range systems.Kinds() {
				reqs = append(reqs, Req{n, systems.DefaultConfig(kind)})
			}
		}
		return reqs
	case "table4":
		var reqs []Req
		for _, n := range workloads.Names() {
			wt := systems.DefaultConfig(systems.Fusion)
			wt.WriteThrough = true
			reqs = append(reqs, Req{n, systems.DefaultConfig(systems.Fusion)}, Req{n, wt})
		}
		return reqs
	case "table5":
		var reqs []Req
		for _, n := range workloads.Names() {
			reqs = append(reqs,
				Req{n, systems.DefaultConfig(systems.Fusion)},
				Req{n, systems.DefaultConfig(systems.FusionDx)})
		}
		return reqs
	case "fig7":
		var reqs []Req
		for _, n := range workloads.Names() {
			large := systems.DefaultConfig(systems.Fusion)
			large.Large = true
			reqs = append(reqs, Req{n, systems.DefaultConfig(systems.Fusion)}, Req{n, large})
		}
		return reqs
	case "ablate-lease":
		var reqs []Req
		for _, n := range []string{"adpcm", "filt", "fft"} {
			for _, sc := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
				cfg := systems.DefaultConfig(systems.Fusion)
				cfg.LeaseScale = sc
				reqs = append(reqs, Req{n, cfg})
			}
		}
		return reqs
	case "ablate-dma":
		var reqs []Req
		for _, n := range []string{"fft", "disp", "hist"} {
			reqs = append(reqs, Req{n, systems.DefaultConfig(systems.Fusion)})
			for _, depth := range []int{1, 2, 4, 8} {
				cfg := systems.DefaultConfig(systems.Scratch)
				cfg.DMAOutstanding = depth
				if depth > 1 {
					cfg.DMAGap = 4
				}
				reqs = append(reqs, Req{n, cfg})
			}
		}
		return reqs
	case "ablate-tiles":
		var reqs []Req
		for _, n := range []string{"fft", "adpcm", "susan"} {
			for _, tiles := range []int{1, 2} {
				cfg := systems.DefaultConfig(systems.Fusion)
				cfg.Tiles = tiles
				reqs = append(reqs, Req{n, cfg})
			}
		}
		return reqs
	}
	return nil
}

// prefetchAll prefetches the union of every registered artifact's runs.
func (r *Runner) prefetchAll() error {
	var names []string
	for _, e := range r.All() {
		names = append(names, e.Name)
	}
	return r.Prefetch(names...)
}

// Prefetch simulates every run the named artifacts need, deduplicated
// across artifacts and fanned out over the runner's worker pool. With one
// worker it is a no-op: the artifact bodies then execute lazily, exactly
// as the sequential path always has. On failure it returns the first
// failing cell in enumeration order (never completion order), wrapped in a
// *systems.SweepError naming the cell.
func (r *Runner) Prefetch(names ...string) error {
	workers := systems.Workers(r.workers)
	if workers <= 1 {
		return nil
	}
	var reqs []Req
	seen := make(map[string]bool)
	for _, name := range names {
		for _, q := range requirements(name) {
			key := runKey(q.Name, q.Config)
			if !seen[key] {
				seen[key] = true
				reqs = append(reqs, q)
			}
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	errs := make([]error, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				_, errs[i] = r.Run(reqs[i].Name, reqs[i].Config)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
