package experiments

import "testing"

// Short leases must increase L1X grant traffic; very long leases must not
// break anything and should not increase it.
func TestAblateLeaseShape(t *testing.T) {
	rows, err := sharedRunner.AblateLease()
	if err != nil {
		t.Fatal(err)
	}
	byBench := map[string]map[float64]LeaseRow{}
	for _, r := range rows {
		if byBench[r.Benchmark] == nil {
			byBench[r.Benchmark] = map[float64]LeaseRow{}
		}
		byBench[r.Benchmark][r.Scale] = r
	}
	for b, m := range byBench {
		if m[0.25].Grants <= m[1.0].Grants {
			t.Errorf("%s: 0.25x leases granted %d <= baseline %d; short leases must re-lease more",
				b, m[0.25].Grants, m[1.0].Grants)
		}
		if float64(m[4.0].Grants) > 1.02*float64(m[1.0].Grants) {
			t.Errorf("%s: 4x leases granted %d ≫ baseline %d", b, m[4.0].Grants, m[1.0].Grants)
		}
		if m[1.0].CycleNorm != 1.0 || m[1.0].EnergyNorm != 1.0 {
			t.Errorf("%s: baseline not normalized to itself", b)
		}
	}
}

// Deeper DMA monotonically speeds SCRATCH (and erodes FUSION's advantage).
func TestAblateDMADepthShape(t *testing.T) {
	rows, err := sharedRunner.AblateDMADepth()
	if err != nil {
		t.Fatal(err)
	}
	prev := map[string]uint64{}
	for _, r := range rows {
		if p, ok := prev[r.Benchmark]; ok && r.Cycles > p+p/20 {
			t.Errorf("%s depth %d: %d cycles, regressed vs shallower %d",
				r.Benchmark, r.Depth, r.Cycles, p)
		}
		prev[r.Benchmark] = r.Cycles
		if r.FusionAdvantage <= 0 {
			t.Errorf("%s depth %d: nonpositive advantage", r.Benchmark, r.Depth)
		}
	}
	// Even an 8-deep zero-gap oracle does not erase FUSION's FFT win (the
	// re-transfer elimination is structural, not a latency artifact).
	for _, r := range rows {
		if r.Benchmark == "fft" && r.Depth == 8 && r.FusionAdvantage < 1.5 {
			t.Errorf("fft with idealized DMA: advantage %.2fx; re-transfer elimination should survive",
				r.FusionAdvantage)
		}
	}
}

// Splitting across tiles is always worse on sharing-heavy benchmarks, and
// the extra cost shows up as tile<->L2 messages.
func TestAblateTilesShape(t *testing.T) {
	rows, err := sharedRunner.AblateTiles()
	if err != nil {
		t.Fatal(err)
	}
	one := map[string]TilesRow{}
	for _, r := range rows {
		if r.Tiles == 1 {
			one[r.Benchmark] = r
			continue
		}
		if r.EnergyNorm <= 1.0 {
			t.Errorf("%s: 2 tiles cost %.3fx energy; splitting should lose", r.Benchmark, r.EnergyNorm)
		}
		if r.HostMsgs <= one[r.Benchmark].HostMsgs {
			t.Errorf("%s: 2 tiles sent %d host messages <= collocated %d",
				r.Benchmark, r.HostMsgs, one[r.Benchmark].HostMsgs)
		}
	}
}
