// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment has a data-producing function
// (used by tests and benchmarks) and a printing wrapper that emits the same
// rows or series the paper reports.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator, not the authors' macsim/GEMS testbed — but the
// shapes the paper argues from (who wins, by roughly what factor, where the
// crossovers fall) are asserted by the test suite in shapes_test.go.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fusion/internal/energy"
	"fusion/internal/systems"
	"fusion/internal/trace"
	"fusion/internal/workloads"
)

// runEntry is one memoized simulation, singleflight-style: the first
// caller of a key owns the execution; everyone else blocks on ready. This
// is what lets a bounded worker pool and ad-hoc concurrent Run callers
// share one Runner without ever simulating a cell twice.
type runEntry struct {
	ready chan struct{} // closed once res/err are final
	res   *systems.Result
	err   error
}

type benchEntry struct {
	ready chan struct{}
	b     *workloads.Benchmark
}

// NewRunner returns an empty experiment runner with GOMAXPROCS workers.
func NewRunner() *Runner {
	return &Runner{
		results: make(map[string]*runEntry),
		benches: make(map[string]*benchEntry),
	}
}

// Runner executes experiments, memoizing simulation runs. It is safe for
// concurrent use: every cached cell runs exactly once (singleflight) no
// matter how many goroutines ask for it, and report assembly walks cells
// in a fixed order, so output is byte-identical for any worker count.
type Runner struct {
	// workers bounds the Prefetch worker pool (<=0: GOMAXPROCS).
	workers int
	// scheduler overrides the engine event-queue implementation ("" keeps
	// the default); see SetScheduler.
	scheduler string

	mu      sync.Mutex
	results map[string]*runEntry   //guard: mu
	benches map[string]*benchEntry //guard: mu

	// simRuns counts actually-executed (non-memoized) simulations.
	simRuns atomic.Int64
}

// SetWorkers bounds the parallel sweep's worker pool: 1 forces sequential
// execution, <=0 restores the GOMAXPROCS default. The choice affects
// wall-clock time only, never the output.
func (r *Runner) SetWorkers(n int) { r.workers = n }

// SetScheduler selects the engine event-queue implementation for every run
// this runner executes (sim.SchedulerHeap or sim.SchedulerWheel; "" keeps
// the default). The choice affects wall-clock time only, never the output —
// asserted by systems.TestSchedulerInvariant.
func (r *Runner) SetScheduler(s string) { r.scheduler = s }

// SimRuns reports how many simulations the runner has actually executed
// (memoized hits excluded).
func (r *Runner) SimRuns() int64 { return r.simRuns.Load() }

func (r *Runner) bench(name string) *workloads.Benchmark {
	r.mu.Lock()
	e, ok := r.benches[name]
	if !ok {
		e = &benchEntry{ready: make(chan struct{})}
		r.benches[name] = e
		r.mu.Unlock()
		e.b = workloads.Get(name)
		close(e.ready)
		return e.b
	}
	r.mu.Unlock()
	<-e.ready
	return e.b
}

// runKey canonicalizes a cell as its serializable run spec's canonical
// key (see systems.Spec): every knob that can change the result is part of
// the key, so two configs memoize together exactly when they describe the
// same run. The fusiond daemon keys its on-disk result cache on the same
// canonicalization (hashed), so a memoized cell here and a cached cell
// there name the same bytes.
func runKey(name string, cfg systems.Config) string {
	return systems.SpecOf(name, cfg).Key()
}

// Run returns the memoized result of benchmark `name` under cfg, executing
// the simulation on first request. Concurrent callers of the same cell
// share one execution. Failures carry the originating cell's short label
// ("bench/system") as a *systems.SweepError wrapping the underlying error.
func (r *Runner) Run(name string, cfg systems.Config) (*systems.Result, error) {
	if r.scheduler != "" && cfg.Scheduler == "" {
		cfg.Scheduler = r.scheduler
	}
	key := runKey(name, cfg)
	r.mu.Lock()
	e, ok := r.results[key]
	if !ok {
		e = &runEntry{ready: make(chan struct{})}
		r.results[key] = e
		r.mu.Unlock()
		res, err := systems.Run(r.bench(name), cfg)
		r.simRuns.Add(1)
		if err != nil {
			e.err = &systems.SweepError{Key: systems.SpecOf(name, cfg).Label(), Err: err}
		} else {
			e.res = res
		}
		close(e.ready)
		return e.res, e.err
	}
	r.mu.Unlock()
	<-e.ready
	return e.res, e.err
}

// RunSpec returns the memoized result of a serializable run spec — the
// entry point the fusiond daemon shares with the in-process experiment
// layer, so a daemon job and an artifact cell requesting the same spec
// coalesce onto one simulation.
func (r *Runner) RunSpec(s systems.Spec) (*systems.Result, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return r.Run(s.Bench, cfg)
}

// ------------------------------------------------------------------ Table 1

// Table1Row characterizes one accelerated function (Table 1).
type Table1Row struct {
	Benchmark string
	Function  string
	PctTime   float64 // share of the benchmark's accelerator cycles
	PctInt    float64
	PctFP     float64
	PctLd     float64
	PctSt     float64
	MLP       float64 // emergent MLP measured on the FUSION run
	PctShr    float64 // sharing degree
}

// Table1 computes the accelerator-characteristics table.
func (r *Runner) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range workloads.Names() {
		b := r.bench(name)
		res, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		shr := b.Program.SharedLines()

		var totalAccelCycles uint64
		for _, fn := range perFunctionNames(res) {
			if pr := res.PerFunction[fn]; pr.AXC >= 0 {
				totalAccelCycles += pr.Cycles
			}
		}
		seen := map[string]bool{}
		for i := range b.Program.Phases {
			ph := &b.Program.Phases[i]
			if ph.Kind != trace.PhaseAccel || seen[ph.Inv.Function] {
				continue
			}
			seen[ph.Inv.Function] = true
			ii, fp, ld, st := ph.Inv.Ops()
			tot := float64(ii + fp + ld + st)
			pf := res.PerFunction[ph.Inv.Function]
			mlp := float64(res.Stats.Get(fmt.Sprintf("axc%d.mlp_milli", ph.Inv.AXC))) / 1000
			rows = append(rows, Table1Row{
				Benchmark: name,
				Function:  ph.Inv.Function,
				PctTime:   100 * float64(pf.Cycles) / float64(totalAccelCycles),
				PctInt:    100 * float64(ii) / tot,
				PctFP:     100 * float64(fp) / tot,
				PctLd:     100 * float64(ld) / tot,
				PctSt:     100 * float64(st) / tot,
				MLP:       mlp,
				PctShr:    shr[ph.Inv.Function],
			})
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ Table 3

// Table3Row reports per-function execution metrics (Table 3).
type Table3Row struct {
	Benchmark string
	Function  string
	KCycles   float64
	LeaseTime uint64
	PctEnergy float64 // share of the benchmark's accelerator-phase energy
}

// Table3Ratio is a benchmark's cache-to-compute energy ratio (the
// parenthesized number beside each benchmark name in Table 3).
type Table3Ratio struct {
	Benchmark string
	Ratio     float64
}

// Table3 computes the execution-metrics table from the FUSION runs.
func (r *Runner) Table3() ([]Table3Row, []Table3Ratio, error) {
	var rows []Table3Row
	var ratios []Table3Ratio
	for _, name := range workloads.Names() {
		b := r.bench(name)
		res, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, nil, err
		}
		// Summing floats in sorted key order keeps the total bit-identical
		// across runs (map order would reorder the additions).
		var accelEnergy float64
		for _, fn := range perFunctionNames(res) {
			if pr := res.PerFunction[fn]; pr.AXC >= 0 {
				accelEnergy += pr.EnergyPJ
			}
		}
		seen := map[string]bool{}
		for i := range b.Program.Phases {
			ph := &b.Program.Phases[i]
			if ph.Kind != trace.PhaseAccel || seen[ph.Inv.Function] {
				continue
			}
			seen[ph.Inv.Function] = true
			pf := res.PerFunction[ph.Inv.Function]
			rows = append(rows, Table3Row{
				Benchmark: name,
				Function:  ph.Inv.Function,
				KCycles:   float64(pf.Cycles) / 1000,
				LeaseTime: b.LeaseTimes[ph.Inv.Function],
				PctEnergy: 100 * pf.EnergyPJ / accelEnergy,
			})
		}
		cachePJ := res.Energy.Get(energy.CatL0X) + res.Energy.Get(energy.CatL1X)
		computePJ := res.Energy.Get(energy.CatCompute)
		ratio := 0.0
		if computePJ > 0 {
			ratio = cachePJ / computePJ
		}
		ratios = append(ratios, Table3Ratio{Benchmark: name, Ratio: ratio})
	}
	return rows, ratios, nil
}

// ------------------------------------------------------------- Figure 6a/6b

// SystemsCompared lists the systems of Figures 6a-6c in the paper's order.
func SystemsCompared() []systems.Kind {
	return []systems.Kind{systems.Scratch, systems.Shared, systems.Fusion}
}

// Fig6aRow is the stacked energy breakdown of one benchmark x system,
// normalized to the benchmark's SCRATCH total.
type Fig6aRow struct {
	Benchmark string
	System    string
	// Components in picojoules.
	Local   float64 // L0X or scratchpad accesses
	L1X     float64 // shared L1X accesses
	TileNet float64 // AXC<->L1X link (+ L0X<->L0X forwards)
	HostNet float64 // L1X/DMA <-> L2 link
	L2      float64
	VM      float64 // TLBs + RMAP
	Compute float64
	// Normalized is the on-chip total relative to SCRATCH.
	Normalized float64
}

// Figure6a computes the dynamic-energy breakdown.
func (r *Runner) Figure6a() ([]Fig6aRow, error) {
	var rows []Fig6aRow
	for _, name := range workloads.Names() {
		var base float64
		for _, kind := range SystemsCompared() {
			res, err := r.Run(name, systems.DefaultConfig(kind))
			if err != nil {
				return nil, err
			}
			e := res.Energy
			row := Fig6aRow{
				Benchmark: name,
				System:    kind.String(),
				Local:     e.Get(energy.CatL0X) + e.Get(energy.CatScratch),
				L1X:       e.Get(energy.CatL1X),
				TileNet:   e.Get(energy.CatLinkTile) + e.Get(energy.CatLinkFwd),
				HostNet:   e.Get(energy.CatLinkHost),
				L2:        e.Get(energy.CatL2),
				VM:        e.Get(energy.CatVM),
				Compute:   e.Get(energy.CatCompute),
			}
			if kind == systems.Scratch {
				base = res.OnChipPJ()
			}
			row.Normalized = res.OnChipPJ() / base
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig6bRow is one benchmark x system cycle count normalized to SCRATCH.
type Fig6bRow struct {
	Benchmark  string
	System     string
	Cycles     uint64
	DMACycles  uint64
	Normalized float64
}

// Figure6b computes the normalized cycle-time comparison.
func (r *Runner) Figure6b() ([]Fig6bRow, error) {
	var rows []Fig6bRow
	for _, name := range workloads.Names() {
		var base float64
		for _, kind := range SystemsCompared() {
			res, err := r.Run(name, systems.DefaultConfig(kind))
			if err != nil {
				return nil, err
			}
			if kind == systems.Scratch {
				base = float64(res.Cycles)
			}
			rows = append(rows, Fig6bRow{
				Benchmark:  name,
				System:     kind.String(),
				Cycles:     res.Cycles,
				DMACycles:  res.DMACycles,
				Normalized: float64(res.Cycles) / base,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 6c

// Fig6cRow is the link-traffic breakdown of one benchmark x system.
type Fig6cRow struct {
	Benchmark string
	System    string
	// TileReqs counts AXC->L1X request messages (L0X->L1X MSG in the
	// paper's legend; for SHARED, every access crosses the switch).
	TileReqs int64
	// TileData counts L1X->AXC data responses.
	TileData int64
	// HostMsgs counts L1X/DMA <-> L2 messages.
	HostMsgs int64
	// HostFlits is the same traffic in 8-byte flits.
	HostFlits int64
}

// Figure6c computes the message-count comparison.
func (r *Runner) Figure6c() ([]Fig6cRow, error) {
	var rows []Fig6cRow
	for _, name := range workloads.Names() {
		for _, kind := range SystemsCompared() {
			res, err := r.Run(name, systems.DefaultConfig(kind))
			if err != nil {
				return nil, err
			}
			st := res.Stats
			row := Fig6cRow{Benchmark: name, System: kind.String()}
			switch kind {
			case systems.Scratch:
				row.HostMsgs = st.Get("hostlink.dma.msgs")
				row.HostFlits = st.Get("hostlink.dma.flits")
			case systems.Shared:
				row.TileReqs = st.Get("sharedswitch.msgs")
				row.TileData = st.Get("sharedswitch.msgs")
				row.HostMsgs = st.Get("hostlink.tile.msgs") + st.Get("hostlink.p2p.msgs")
				row.HostFlits = st.Get("hostlink.tile.flits") + st.Get("hostlink.p2p.flits")
			default:
				for i := 0; i < 8; i++ {
					row.TileReqs += st.Get(fmt.Sprintf("link.l0x%d.up.ctrl", i))
					row.TileData += st.Get(fmt.Sprintf("link.l0x%d.down.data", i))
				}
				row.HostMsgs = st.Get("hostlink.tile.msgs") + st.Get("hostlink.p2p.msgs")
				row.HostFlits = st.Get("hostlink.tile.flits") + st.Get("hostlink.p2p.flits")
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 6d

// Fig6dRow is the working-set/DMA-traffic table embedded in Figure 6.
type Fig6dRow struct {
	Benchmark    string
	WSetKB       float64
	DMAKB        float64
	DMATransfers int64
	Ratio        float64 // DMA bytes / working set (165x for FFT in the paper)
}

// Figure6d computes the SCRATCH DMA-traffic table.
func (r *Runner) Figure6d() ([]Fig6dRow, error) {
	var rows []Fig6dRow
	for _, name := range workloads.Names() {
		res, err := r.Run(name, systems.DefaultConfig(systems.Scratch))
		if err != nil {
			return nil, err
		}
		ws := float64(res.WorkingSetBytes) / 1024
		dma := float64(res.DMABytes) / 1024
		rows = append(rows, Fig6dRow{
			Benchmark:    name,
			WSetKB:       ws,
			DMAKB:        dma,
			DMATransfers: res.DMATransfers,
			Ratio:        dma / ws,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Figure 6e

// Fig6eRow extends the Figure 6a/6b comparison to every registered system,
// ADAPTIVE and HYDRA included: one benchmark x system, with cycles and
// on-chip energy normalized to the benchmark's SCRATCH run.
type Fig6eRow struct {
	Benchmark  string
	System     string
	Cycles     uint64
	EnergyPJ   float64
	CycleNorm  float64
	EnergyNorm float64
}

// Figure6e computes the all-systems comparison. Unlike Figures 6a-6c
// (which keep the paper's three-system layout), this artifact derives its
// column set from the systems registry, so a newly registered Kind shows
// up as a column automatically.
func (r *Runner) Figure6e() ([]Fig6eRow, error) {
	var rows []Fig6eRow
	for _, name := range workloads.Names() {
		base, err := r.Run(name, systems.DefaultConfig(systems.Scratch))
		if err != nil {
			return nil, err
		}
		baseCycles, basePJ := float64(base.Cycles), base.OnChipPJ()
		for _, kind := range systems.Kinds() {
			res, err := r.Run(name, systems.DefaultConfig(kind))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6eRow{
				Benchmark:  name,
				System:     kind.String(),
				Cycles:     res.Cycles,
				EnergyPJ:   res.OnChipPJ(),
				CycleNorm:  float64(res.Cycles) / baseCycles,
				EnergyNorm: res.OnChipPJ() / basePJ,
			})
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ Table 4

// Table4Row compares write-through and writeback L0X bandwidth (Table 4).
type Table4Row struct {
	Benchmark      string
	WriteThrough   int64 // flits on the L0X->L1X links
	Writeback      int64
	PctDirtyBlocks float64
}

// Table4 computes the write-policy bandwidth comparison on FUSION.
func (r *Runner) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, name := range workloads.Names() {
		wb, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		cfg := systems.DefaultConfig(systems.Fusion)
		cfg.WriteThrough = true
		wt, err := r.Run(name, cfg)
		if err != nil {
			return nil, err
		}
		upFlits := func(res *systems.Result) int64 {
			var n int64
			for i := 0; i < 8; i++ {
				n += res.Stats.Get(fmt.Sprintf("link.l0x%d.up.flits", i))
			}
			return n
		}
		// %dirty: distinct written lines over distinct touched lines.
		b := r.bench(name)
		touched, written := 0, 0
		seen := map[uint64]bool{}
		wr := map[uint64]bool{}
		for i := range b.Program.Phases {
			ph := &b.Program.Phases[i]
			if ph.Kind != trace.PhaseAccel {
				continue
			}
			lines, w := ph.Inv.Lines()
			for _, l := range lines {
				if !seen[uint64(l)] {
					seen[uint64(l)] = true
					touched++
				}
				if w[l] && !wr[uint64(l)] {
					wr[uint64(l)] = true
					written++
				}
			}
		}
		rows = append(rows, Table4Row{
			Benchmark:      name,
			WriteThrough:   upFlits(wt),
			Writeback:      upFlits(wb),
			PctDirtyBlocks: 100 * float64(written) / float64(touched),
		})
	}
	return rows, nil
}

// ------------------------------------------------------------------ Table 5

// Table5Row reports FUSION-Dx forwarding effectiveness (Table 5).
type Table5Row struct {
	Benchmark       string
	ForwardedBlocks int64
	// PctCacheSaved is the reduction in AXC cache (L0X+L1X) energy vs FUSION.
	PctCacheSaved float64
	// PctLinkSaved is the reduction in intra-tile link energy vs FUSION.
	PctLinkSaved float64
}

// Table5 computes the write-forwarding comparison. The paper reports FFT
// and TRACK (the benchmarks with inter-AXC producer-consumer pairs); we
// compute all benchmarks that forward at least one block.
func (r *Runner) Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, name := range workloads.Names() {
		fu, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		dx, err := r.Run(name, systems.DefaultConfig(systems.FusionDx))
		if err != nil {
			return nil, err
		}
		if dx.ForwardedBlocks == 0 {
			continue
		}
		cacheOf := func(res *systems.Result) float64 {
			return res.Energy.Get(energy.CatL0X) + res.Energy.Get(energy.CatL1X)
		}
		linkOf := func(res *systems.Result) float64 {
			return res.Energy.Get(energy.CatLinkTile) + res.Energy.Get(energy.CatLinkFwd)
		}
		rows = append(rows, Table5Row{
			Benchmark:       name,
			ForwardedBlocks: dx.ForwardedBlocks,
			PctCacheSaved:   100 * (1 - cacheOf(dx)/cacheOf(fu)),
			PctLinkSaved:    100 * (1 - linkOf(dx)/linkOf(fu)),
		})
	}
	return rows, nil
}

// ----------------------------------------------------------------- Figure 7

// Fig7Row compares the AXC-Large configuration against the small baseline.
type Fig7Row struct {
	Benchmark string
	// LargeOverSmall ratios (>1 means the large configuration is worse).
	EnergyRatio float64
	CycleRatio  float64
}

// Figure7 computes the Large-vs-Small cache comparison on FUSION.
func (r *Runner) Figure7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, name := range workloads.Names() {
		small, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		cfg := systems.DefaultConfig(systems.Fusion)
		cfg.Large = true
		large, err := r.Run(name, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			Benchmark:   name,
			EnergyRatio: large.OnChipPJ() / small.OnChipPJ(),
			CycleRatio:  float64(large.Cycles) / float64(small.Cycles),
		})
	}
	return rows, nil
}

// ------------------------------------------------------------------ Table 6

// Table6Row reports address-translation activity (Table 6), plus the
// forwarded-request counts Section 3.2 quotes ("up to ~800 forwarded
// requests from the CPU to the accelerator tile").
type Table6Row struct {
	Benchmark   string
	TLBLookups  int64
	RMAPLookups int64
	// HostFwds counts MESI requests the directory forwarded into the tile.
	HostFwds int64
}

// Table6 counts AX-TLB and AX-RMAP lookups on the FUSION runs.
func (r *Runner) Table6() ([]Table6Row, error) {
	var rows []Table6Row
	for _, name := range workloads.Names() {
		res, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{
			Benchmark:   name,
			TLBLookups:  res.Stats.Get("axtlb.lookups"),
			RMAPLookups: res.Stats.Get("axrmap.lookups"),
			HostFwds:    res.Stats.Get("dir.fwd_to_tile"),
		})
	}
	return rows, nil
}

// perFunctionNames returns a result's per-function keys in sorted order, so
// aggregations over the map are iteration-order independent.
func perFunctionNames(res *systems.Result) []string {
	names := make([]string, 0, len(res.PerFunction))
	for fn := range res.PerFunction {
		names = append(names, fn)
	}
	sort.Strings(names)
	return names
}
