package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// Every printer must produce its header and at least one row per benchmark,
// and "all" must chain them without error. Uses the shared memoized runner.
func TestPrintAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := sharedRunner.Print(&sb, "all"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 3", "Figure 6a", "Figure 6b", "Figure 6c",
		"Figure 6d", "Table 4", "Table 5", "Figure 7", "Table 6",
		"Ablation: ACC lease length", "Ablation: oracle DMA",
		"Ablation: accelerator placement",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every benchmark appears in the output.
	for _, b := range []string{"fft", "disp", "track", "adpcm", "susan", "filt", "hist"} {
		if strings.Count(out, b) < 3 {
			t.Errorf("benchmark %s underrepresented in output", b)
		}
	}
}

func TestPrintUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := sharedRunner.Print(&sb, "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPrintSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := sharedRunner.Print(&sb, "fig6d"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "WSet(kB)") {
		t.Fatal("fig6d output malformed")
	}
}

func TestJSONOutputsParse(t *testing.T) {
	for _, e := range sharedRunner.All() {
		var sb strings.Builder
		if err := sharedRunner.PrintJSON(&sb, e.Name); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		var v any
		if err := json.Unmarshal([]byte(sb.String()), &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", e.Name, err)
		}
	}
	// The "all" object contains every experiment key.
	var sb strings.Builder
	if err := sharedRunner.PrintJSON(&sb, "all"); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &m); err != nil {
		t.Fatal(err)
	}
	for _, e := range sharedRunner.All() {
		if _, ok := m[e.Name]; !ok {
			t.Errorf("all-JSON missing %q", e.Name)
		}
	}
}

func TestDataUnknown(t *testing.T) {
	if _, err := sharedRunner.Data("nope"); err == nil {
		t.Fatal("unknown experiment accepted by Data")
	}
}

func TestChartsRender(t *testing.T) {
	for _, name := range []string{"chart6a", "chart6b"} {
		var sb strings.Builder
		if err := sharedRunner.Print(&sb, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := sb.String()
		if !strings.Contains(out, "SCRATCH") || !strings.Contains(out, "FUSION") {
			t.Fatalf("%s missing systems:\n%s", name, out[:200])
		}
		if strings.Count(out, "|") < 21 {
			t.Fatalf("%s: expected 21 bars", name)
		}
	}
}
