package experiments

// Ablations beyond the paper's tables and figures: sensitivity studies on
// the design choices DESIGN.md calls out — lease length, DMA engine depth,
// and accelerator placement (the paper's collocation assumption).

import (
	"fmt"
	"io"

	"fusion/internal/systems"
)

// LeaseRow is one point of the lease-length sensitivity sweep.
type LeaseRow struct {
	Benchmark  string
	Scale      float64
	Cycles     uint64
	Grants     int64   // L1X lease grants (read + write)
	EnergyNorm float64 // on-chip energy vs scale=1.0
	CycleNorm  float64
}

// AblateLease sweeps the ACC lease length around the paper's Table 3
// values. Short leases force self-invalidation churn (Lesson 4's thrash);
// long leases delay host forwards and epoch handoffs.
func (r *Runner) AblateLease() ([]LeaseRow, error) {
	scales := []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	var rows []LeaseRow
	for _, name := range []string{"adpcm", "filt", "fft"} {
		var baseE, baseC float64
		for _, sc := range scales {
			cfg := systems.DefaultConfig(systems.Fusion)
			cfg.LeaseScale = sc
			res, err := r.Run(name, cfg)
			if err != nil {
				return nil, err
			}
			if sc == 1.0 {
				baseE = res.OnChipPJ()
				baseC = float64(res.Cycles)
			}
			rows = append(rows, LeaseRow{
				Benchmark: name,
				Scale:     sc,
				Cycles:    res.Cycles,
				Grants:    res.Stats.Get("l1x.grants_read") + res.Stats.Get("l1x.grants_write"),
			})
		}
		// Normalize after the scale=1.0 baseline is known.
		for i := len(rows) - len(scales); i < len(rows); i++ {
			rows[i].EnergyNorm = mustEnergy(r, name, rows[i].Scale) / baseE
			rows[i].CycleNorm = float64(rows[i].Cycles) / baseC
		}
	}
	return rows, nil
}

func mustEnergy(r *Runner, name string, scale float64) float64 {
	cfg := systems.DefaultConfig(systems.Fusion)
	cfg.LeaseScale = scale
	res, err := r.Run(name, cfg) // memoized
	if err != nil {
		return 0
	}
	return res.OnChipPJ()
}

// DMARow is one point of the DMA-depth sensitivity sweep.
type DMARow struct {
	Benchmark string
	Depth     int
	Cycles    uint64
	// FusionAdvantage is FUSION's speedup over this SCRATCH variant.
	FusionAdvantage float64
}

// AblateDMADepth varies the oracle DMA engine's transfer pipelining. The
// paper's conclusions rest on a serial controller state machine; this
// sweep shows how much of FUSION's advantage an increasingly idealized DMA
// erodes.
func (r *Runner) AblateDMADepth() ([]DMARow, error) {
	var rows []DMARow
	for _, name := range []string{"fft", "disp", "hist"} {
		fu, err := r.Run(name, systems.DefaultConfig(systems.Fusion))
		if err != nil {
			return nil, err
		}
		for _, depth := range []int{1, 2, 4, 8} {
			cfg := systems.DefaultConfig(systems.Scratch)
			cfg.DMAOutstanding = depth
			if depth > 1 {
				cfg.DMAGap = 4
			}
			res, err := r.Run(name, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DMARow{
				Benchmark:       name,
				Depth:           depth,
				Cycles:          res.Cycles,
				FusionAdvantage: float64(res.Cycles) / float64(fu.Cycles),
			})
		}
	}
	return rows, nil
}

// TilesRow compares collocated vs split accelerator placement.
type TilesRow struct {
	Benchmark  string
	Tiles      int
	Cycles     uint64
	EnergyNorm float64 // vs single tile
	CycleNorm  float64
	HostMsgs   int64 // tile <-> L2 messages (both tiles)
}

// AblateTiles quantifies the paper's collocation assumption ("we assume
// all accelerators derived from an application are collocated on the same
// accelerator tile"): splitting a pipeline across tiles pushes every
// producer-consumer handoff through host MESI.
func (r *Runner) AblateTiles() ([]TilesRow, error) {
	var rows []TilesRow
	for _, name := range []string{"fft", "adpcm", "susan"} {
		var baseE, baseC float64
		for _, tiles := range []int{1, 2} {
			cfg := systems.DefaultConfig(systems.Fusion)
			cfg.Tiles = tiles
			res, err := r.Run(name, cfg)
			if err != nil {
				return nil, err
			}
			if tiles == 1 {
				baseE = res.OnChipPJ()
				baseC = float64(res.Cycles)
			}
			rows = append(rows, TilesRow{
				Benchmark:  name,
				Tiles:      tiles,
				Cycles:     res.Cycles,
				EnergyNorm: res.OnChipPJ() / baseE,
				CycleNorm:  float64(res.Cycles) / baseC,
				HostMsgs: res.Stats.Get("hostlink.tile.msgs") +
					res.Stats.Get("hostlink.tile1.msgs"),
			})
		}
	}
	return rows, nil
}

// PrintAblateLease renders the lease sweep.
func (r *Runner) PrintAblateLease(w io.Writer) error {
	rows, err := r.AblateLease()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: ACC lease length (FUSION; 1.0 = Table 3 LT values)")
	fmt.Fprintf(w, "%-7s %7s %12s %12s %10s %10s\n",
		"Bench", "Scale", "Cycles", "L1X grants", "CycNorm", "EnNorm")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %7.2f %12d %12d %10.3f %10.3f\n",
			row.Benchmark, row.Scale, row.Cycles, row.Grants, row.CycleNorm, row.EnergyNorm)
	}
	return nil
}

// PrintAblateDMADepth renders the DMA sweep.
func (r *Runner) PrintAblateDMADepth(w io.Writer) error {
	rows, err := r.AblateDMADepth()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: oracle DMA transfer depth (SCRATCH vs fixed FUSION)")
	fmt.Fprintf(w, "%-7s %7s %12s %18s\n", "Bench", "Depth", "Cycles", "FUSION advantage")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %7d %12d %17.2fx\n",
			row.Benchmark, row.Depth, row.Cycles, row.FusionAdvantage)
	}
	return nil
}

// PrintAblateTiles renders the placement comparison.
func (r *Runner) PrintAblateTiles(w io.Writer) error {
	rows, err := r.AblateTiles()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: accelerator placement (collocated vs split across 2 tiles)")
	fmt.Fprintf(w, "%-7s %7s %12s %10s %10s %12s\n",
		"Bench", "Tiles", "Cycles", "CycNorm", "EnNorm", "Tile<->L2msg")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %7d %12d %10.3f %10.3f %12d\n",
			row.Benchmark, row.Tiles, row.Cycles, row.CycleNorm, row.EnergyNorm, row.HostMsgs)
	}
	return nil
}
