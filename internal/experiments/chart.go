package experiments

// ASCII renderings of Figures 6a and 6b: the same stacked-bar and bar
// charts the paper prints, drawn in text so `fusionbench` output can be
// read the way the paper's figures are.

import (
	"fmt"
	"io"
	"strings"
)

// barWidth is the width of a 1.0-normalized bar.
const barWidth = 44

// PrintChart6b renders Figure 6b as horizontal bars (SCRATCH = full width).
func (r *Runner) PrintChart6b(w io.Writer) error {
	rows, err := r.Figure6b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6b (chart): cycles normalized to SCRATCH — shorter is faster")
	fmt.Fprintln(w)
	for _, row := range rows {
		n := int(row.Normalized * barWidth)
		overflow := ""
		if n > 2*barWidth {
			n = 2 * barWidth
			overflow = ">"
		}
		if n < 1 {
			n = 1
		}
		label := ""
		if row.System == "SCRATCH" {
			label = row.Benchmark
		}
		fmt.Fprintf(w, "%-7s %-9s |%s%s %.3f\n",
			label, row.System, strings.Repeat("█", n), overflow, row.Normalized)
		if row.System == "FUSION" {
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Component letters for the stacked Figure 6a bars.
var fig6aStack = []struct {
	name string
	char byte
	get  func(Fig6aRow) float64
}{
	{"L0X/scratchpad", 'L', func(r Fig6aRow) float64 { return r.Local }},
	{"shared L1X", 'X', func(r Fig6aRow) float64 { return r.L1X }},
	{"tile links", 't', func(r Fig6aRow) float64 { return r.TileNet }},
	{"host links", 'H', func(r Fig6aRow) float64 { return r.HostNet }},
	{"L2/LLC", '2', func(r Fig6aRow) float64 { return r.L2 }},
	{"VM (TLB/RMAP)", 'v', func(r Fig6aRow) float64 { return r.VM }},
	{"compute", 'c', func(r Fig6aRow) float64 { return r.Compute }},
}

// PrintChart6a renders Figure 6a as stacked horizontal bars, normalized to
// each benchmark's SCRATCH total.
func (r *Runner) PrintChart6a(w io.Writer) error {
	rows, err := r.Figure6a()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6a (chart): on-chip dynamic energy, stacked by component,")
	fmt.Fprintln(w, "normalized to SCRATCH. Legend:")
	for _, c := range fig6aStack {
		fmt.Fprintf(w, "   %c = %s\n", c.char, c.name)
	}
	fmt.Fprintln(w)

	// Base: SCRATCH on-chip total per benchmark.
	base := map[string]float64{}
	for _, row := range rows {
		if row.System == "SCRATCH" {
			total := 0.0
			for _, c := range fig6aStack {
				total += c.get(row)
			}
			base[row.Benchmark] = total
		}
	}
	for _, row := range rows {
		var bar strings.Builder
		for _, c := range fig6aStack {
			frac := c.get(row) / base[row.Benchmark]
			n := int(frac * barWidth)
			if c.get(row) > 0 && n == 0 {
				n = 1
			}
			if bar.Len()+n > 2*barWidth {
				n = 2*barWidth - bar.Len()
			}
			if n > 0 {
				bar.WriteString(strings.Repeat(string(c.char), n))
			}
		}
		label := ""
		if row.System == "SCRATCH" {
			label = row.Benchmark
		}
		fmt.Fprintf(w, "%-7s %-9s |%s %.3f\n", label, row.System, bar.String(), row.Normalized)
		if row.System == "FUSION" {
			fmt.Fprintln(w)
		}
	}
	return nil
}
