package experiments

import (
	"fmt"
	"io"
)

// PrintTable1 renders the accelerator-characteristics table.
func (r *Runner) PrintTable1(w io.Writer) error {
	rows, err := r.Table1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 1: Accelerator Characteristics")
	fmt.Fprintf(w, "%-7s %-12s %7s %6s %6s %6s %6s %5s %6s\n",
		"Bench", "Function", "%Time", "%INT", "%FP", "%LD", "%ST", "MLP", "%SHR")
	last := ""
	for _, row := range rows {
		b := ""
		if row.Benchmark != last {
			b = row.Benchmark
			last = row.Benchmark
		}
		fmt.Fprintf(w, "%-7s %-12s %7.1f %6.1f %6.1f %6.1f %6.1f %5.1f %6.1f\n",
			b, row.Function, row.PctTime, row.PctInt, row.PctFP, row.PctLd,
			row.PctSt, row.MLP, row.PctShr)
	}
	return nil
}

// PrintTable3 renders the execution-metrics table.
func (r *Runner) PrintTable3(w io.Writer) error {
	rows, ratios, err := r.Table3()
	if err != nil {
		return err
	}
	ratioOf := map[string]float64{}
	for _, rt := range ratios {
		ratioOf[rt.Benchmark] = rt.Ratio
	}
	fmt.Fprintln(w, "Table 3: Accelerator Execution Metrics")
	fmt.Fprintf(w, "%-20s %10s %6s %6s\n", "Bench/Function", "KCyc", "LT", "%En")
	last := ""
	for _, row := range rows {
		if row.Benchmark != last {
			last = row.Benchmark
			fmt.Fprintf(w, "%s (cache/compute energy = %.1f)\n", row.Benchmark, ratioOf[row.Benchmark])
		}
		fmt.Fprintf(w, "  %-18s %10.1f %6d %6.1f\n",
			row.Function, row.KCycles, row.LeaseTime, row.PctEnergy)
	}
	return nil
}

// PrintFigure6a renders the energy-breakdown series.
func (r *Runner) PrintFigure6a(w io.Writer) error {
	rows, err := r.Figure6a()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6a: Dynamic energy breakdown (pJ; Norm = on-chip total vs SCRATCH)")
	fmt.Fprintf(w, "%-7s %-9s %12s %12s %12s %12s %12s %10s %10s %7s\n",
		"Bench", "System", "L0X/Spad", "L1X", "TileLink", "HostLink", "L2", "VM", "Compute", "Norm")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %-9s %12.0f %12.0f %12.0f %12.0f %12.0f %10.0f %10.0f %7.3f\n",
			row.Benchmark, row.System, row.Local, row.L1X, row.TileNet,
			row.HostNet, row.L2, row.VM, row.Compute, row.Normalized)
	}
	return nil
}

// PrintFigure6b renders the normalized cycle-time series.
func (r *Runner) PrintFigure6b(w io.Writer) error {
	rows, err := r.Figure6b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6b: Cycles normalized to SCRATCH (lower is better)")
	fmt.Fprintf(w, "%-7s %-9s %12s %12s %8s\n", "Bench", "System", "Cycles", "DMACycles", "Norm")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %-9s %12d %12d %8.3f\n",
			row.Benchmark, row.System, row.Cycles, row.DMACycles, row.Normalized)
	}
	return nil
}

// PrintFigure6c renders the link-traffic series.
func (r *Runner) PrintFigure6c(w io.Writer) error {
	rows, err := r.Figure6c()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6c: Link traffic (message counts)")
	fmt.Fprintf(w, "%-7s %-9s %12s %12s %12s %12s\n",
		"Bench", "System", "AXC->L1Xmsg", "L1X->AXCdata", "L1X<->L2msg", "L1X<->L2flit")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %-9s %12d %12d %12d %12d\n",
			row.Benchmark, row.System, row.TileReqs, row.TileData,
			row.HostMsgs, row.HostFlits)
	}
	return nil
}

// PrintFigure6d renders the DMA-traffic table.
func (r *Runner) PrintFigure6d(w io.Writer) error {
	rows, err := r.Figure6d()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6d: SCRATCH working set vs DMA traffic")
	fmt.Fprintf(w, "%-7s %10s %10s %10s %8s\n", "Bench", "WSet(kB)", "DMA(kB)", "#DMA", "Ratio")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %10.1f %10.1f %10d %8.1f\n",
			row.Benchmark, row.WSetKB, row.DMAKB, row.DMATransfers, row.Ratio)
	}
	return nil
}

// PrintFigure6e renders the all-systems comparison.
func (r *Runner) PrintFigure6e(w io.Writer) error {
	rows, err := r.Figure6e()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 6e: All systems — cycles and on-chip energy vs SCRATCH")
	fmt.Fprintf(w, "%-7s %-9s %12s %14s %8s %8s\n",
		"Bench", "System", "Cycles", "Energy(pJ)", "CycNorm", "EnNorm")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %-9s %12d %14.0f %8.3f %8.3f\n",
			row.Benchmark, row.System, row.Cycles, row.EnergyPJ,
			row.CycleNorm, row.EnergyNorm)
	}
	return nil
}

// PrintTable4 renders the write-policy bandwidth table.
func (r *Runner) PrintTable4(w io.Writer) error {
	rows, err := r.Table4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 4: L0X bandwidth in flits (8 bytes/flit)")
	fmt.Fprintf(w, "%-7s %14s %12s %14s\n", "Bench", "Write-Through", "Writeback", "%DirtyBlocks")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %14d %12d %14.1f\n",
			row.Benchmark, row.WriteThrough, row.Writeback, row.PctDirtyBlocks)
	}
	return nil
}

// PrintTable5 renders the write-forwarding table.
func (r *Runner) PrintTable5(w io.Writer) error {
	rows, err := r.Table5()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 5: FUSION-Dx inter-AXC forwarding")
	fmt.Fprintf(w, "%-7s %12s %14s %14s\n", "Bench", "#FWD Blocks", "AXC Cache", "AXC Link")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %12d %13.1f%% %13.1f%%\n",
			row.Benchmark, row.ForwardedBlocks, row.PctCacheSaved, row.PctLinkSaved)
	}
	return nil
}

// PrintFigure7 renders the Large-vs-Small comparison.
func (r *Runner) PrintFigure7(w io.Writer) error {
	rows, err := r.Figure7()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 7: AXC-Large (8K L0X / 256K L1X) vs Small (4K / 64K), FUSION")
	fmt.Fprintf(w, "%-7s %14s %14s\n", "Bench", "Energy(L/S)", "Cycles(L/S)")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %14.3f %14.3f\n", row.Benchmark, row.EnergyRatio, row.CycleRatio)
	}
	return nil
}

// PrintTable6 renders the address-translation table.
func (r *Runner) PrintTable6(w io.Writer) error {
	rows, err := r.Table6()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 6: Virtual memory lookups (FUSION)")
	fmt.Fprintf(w, "%-7s %10s %10s %10s\n", "Bench", "AX-TLB", "AX-RMAP", "HostFwds")
	for _, row := range rows {
		fmt.Fprintf(w, "%-7s %10d %10d %10d\n",
			row.Benchmark, row.TLBLookups, row.RMAPLookups, row.HostFwds)
	}
	return nil
}

// All maps experiment names to their printers, in the paper's order.
func (r *Runner) All() []struct {
	Name  string
	Print func(io.Writer) error
} {
	return []struct {
		Name  string
		Print func(io.Writer) error
	}{
		{"table1", r.PrintTable1},
		{"table3", r.PrintTable3},
		{"fig6a", r.PrintFigure6a},
		{"fig6b", r.PrintFigure6b},
		{"fig6c", r.PrintFigure6c},
		{"fig6d", r.PrintFigure6d},
		{"fig6e", r.PrintFigure6e},
		{"table4", r.PrintTable4},
		{"table5", r.PrintTable5},
		{"fig7", r.PrintFigure7},
		{"table6", r.PrintTable6},
		{"chart6a", r.PrintChart6a},
		{"chart6b", r.PrintChart6b},
		{"ablate-lease", r.PrintAblateLease},
		{"ablate-dma", r.PrintAblateDMADepth},
		{"ablate-tiles", r.PrintAblateTiles},
	}
}

// Print runs the named experiment ("all" runs every one). The needed
// simulations are prefetched across the worker pool first; rendering then
// reads memoized results in fixed artifact order.
func (r *Runner) Print(w io.Writer, name string) error {
	if name == "all" {
		if err := r.prefetchAll(); err != nil {
			return err
		}
		for _, e := range r.All() {
			if err := e.Print(w); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range r.All() {
		if e.Name == name {
			if err := r.Prefetch(name); err != nil {
				return err
			}
			return e.Print(w)
		}
	}
	return fmt.Errorf("unknown experiment %q (try: table1 table3 fig6a fig6b fig6c fig6d fig6e table4 table5 fig7 table6 ablate-lease ablate-dma ablate-tiles, or all)", name)
}
