package experiments

// Tests for the parallel sweep runner: the up-front requirements
// enumeration must cover every run the artifact bodies execute (drift
// guard), parallel prefetching must leave reports byte-identical to the
// sequential path, and a single Runner must be safe to share across
// concurrent sweeps without ever simulating a cell twice.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"fusion/internal/sim"
	"fusion/internal/systems"
)

// TestRequirementsCoverEveryArtifact pre-runs exactly the cells
// requirements() enumerates, then renders each artifact and asserts it
// triggered no additional simulations. If an artifact body grows a run its
// requirements do not enumerate, Prefetch would silently fall back to lazy
// execution for that cell and this test fails.
func TestRequirementsCoverEveryArtifact(t *testing.T) {
	r := NewRunner()
	r.SetWorkers(1)
	artifacts := r.All()
	if testing.Short() {
		kept := artifacts[:0]
		for _, e := range artifacts {
			if strings.HasPrefix(e.Name, "ablate-") || e.Name == "table4" {
				kept = append(kept, e)
			}
		}
		artifacts = kept
	}
	for _, e := range artifacts {
		reqs := requirements(e.Name)
		if len(reqs) == 0 {
			t.Fatalf("%s: requirements() enumerates no runs", e.Name)
		}
		for _, q := range reqs {
			if _, err := r.Run(q.Name, q.Config); err != nil {
				t.Fatalf("%s: prefetching %s: %v", e.Name, runKey(q.Name, q.Config), err)
			}
		}
		before := r.SimRuns()
		if _, err := r.Data(e.Name); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if after := r.SimRuns(); after != before {
			t.Errorf("%s executed %d simulations requirements() did not enumerate",
				e.Name, after-before)
		}
	}
}

// TestParallelPrintByteIdentical renders artifacts with 1 worker and with
// 8 and requires byte-identical reports: completion order must never leak
// into output.
func TestParallelPrintByteIdentical(t *testing.T) {
	names := []string{"ablate-lease", "ablate-tiles", "ablate-dma"}
	render := func(workers int) string {
		r := NewRunner()
		r.SetWorkers(workers)
		var buf bytes.Buffer
		for _, name := range names {
			if err := r.Print(&buf, name); err != nil {
				t.Fatalf("-j %d: %s: %v", workers, name, err)
			}
			if err := r.PrintJSON(&buf, name); err != nil {
				t.Fatalf("-j %d: %s json: %v", workers, name, err)
			}
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("reports differ between -j 1 and -j 8:\n-- sequential --\n%s\n-- parallel --\n%s", seq, par)
	}
}

// TestFig6eParallelByteIdentical renders the all-systems artifact (the one
// whose column set derives from the systems registry) with 1 worker and
// with 8 and requires byte-identical reports, with the ADAPTIVE and HYDRA
// columns present in both.
func TestFig6eParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6e sweeps every workload x system")
	}
	render := func(workers int) string {
		r := NewRunner()
		r.SetWorkers(workers)
		var buf bytes.Buffer
		if err := r.Print(&buf, "fig6e"); err != nil {
			t.Fatalf("-j %d: %v", workers, err)
		}
		if err := r.PrintJSON(&buf, "fig6e"); err != nil {
			t.Fatalf("-j %d json: %v", workers, err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("fig6e differs between -j 1 and -j 8:\n-- sequential --\n%s\n-- parallel --\n%s", seq, par)
	}
	for _, kind := range systems.Kinds() {
		if !strings.Contains(seq, kind.String()) {
			t.Errorf("fig6e omits the %s column", kind)
		}
	}
}

// TestConcurrentSweepsShareOneRunner drives one Runner from several
// goroutines at once — overlapping Prefetch sweeps plus direct Run calls
// on the same cells — and asserts singleflight did its job: every caller
// observed the same memoized *Result, and the distinct-cell count equals
// the number of simulations actually executed.
func TestConcurrentSweepsShareOneRunner(t *testing.T) {
	r := NewRunner()
	r.SetWorkers(2)
	cfg := systems.DefaultConfig(systems.Fusion)
	const callers = 6
	results := make([]*systems.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				if err := r.Prefetch("ablate-tiles"); err != nil {
					t.Errorf("caller %d: %v", i, err)
					return
				}
			}
			res, err := r.Run("adpcm", cfg)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d observed a different result object: memoization broken", i)
		}
	}
	// ablate-tiles needs 6 cells; adpcm/FUSION/Tiles=0-default is a 7th
	// distinct cell (requirements pin Tiles to 1 or 2).
	distinct := make(map[string]bool)
	for _, q := range requirements("ablate-tiles") {
		distinct[runKey(q.Name, q.Config)] = true
	}
	distinct[runKey("adpcm", cfg)] = true
	if got, want := r.SimRuns(), int64(len(distinct)); got != want {
		t.Fatalf("executed %d simulations for %d distinct cells", got, want)
	}
}

// TestSweepErrorCarriesKey forces a protocol failure and checks the
// originating cell's key survives the trip through the memo layer. The
// watchdog knob is part of runKey (the serializable spec), so the poisoned
// cell memoizes separately from the healthy adpcm/fusion cell; the runner
// is throwaway anyway.
func TestSweepErrorCarriesKey(t *testing.T) {
	r := NewRunner()
	cfg := systems.DefaultConfig(systems.Fusion)
	cfg.WatchdogCycles = 1 // trips immediately: no system makes progress every cycle
	_, err := r.Run("adpcm", cfg)
	if err == nil {
		t.Fatal("watchdog with a 1-cycle window did not trip")
	}
	var se *systems.SweepError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not carry a sweep key", err)
	}
	if !strings.HasPrefix(se.Key, "adpcm/") {
		t.Fatalf("sweep key %q does not name the originating cell", se.Key)
	}
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to the underlying protocol error", err)
	}
}
