package scratchpad

import (
	"fmt"

	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// DMA is the oracle coherent DMA engine. It lives at the host LLC as a
// non-caching fabric agent: reads pull the most up-to-date data through the
// directory (downgrading an owner if necessary, as ARM's ACP and IBM's
// coherent attach do, Section 2.1) and writes invalidate stale copies
// before committing at the LLC.
type DMA struct {
	agent  mesi.AgentID
	fabric *mesi.Fabric
	pool   mesi.MsgPool
	pumpFn func(now uint64) // cached retry callback

	cReads  *stats.Counter
	cWrites *stats.Counter

	maxOutstanding int
	outstanding    int
	// gap is the controller's per-transfer occupancy: after issuing one
	// transfer the state machine is busy for gap cycles before the next.
	gap       uint64
	nextIssue uint64
	queue     []dmaOp

	// pending transfers are bounded by maxOutstanding (a handful), so
	// linearly-scanned slices with swap-delete replace the former maps.
	pendingReads  []pendingRead
	pendingWrites []pendingWrite
	freeOnVer     [][]func(uint64) // recycled callback slices
}

type dmaOp struct {
	write bool
	pa    mem.PAddr
	ver   uint64
	delta bool
	onVer func(ver uint64) // reads: data arrival callback
	done  func(now uint64) // writes: ack callback
}

// pendingRead collects the callbacks of (possibly merged) reads of one line.
type pendingRead struct {
	pa    mem.PAddr
	onVer []func(uint64)
}

type pendingWrite struct {
	pa   mem.PAddr
	done func(now uint64)
}

// NewDMA registers the engine as agent id on the fabric. gap is the
// controller's per-transfer occupancy in cycles.
func NewDMA(fabric *mesi.Fabric, id mesi.AgentID, maxOutstanding int, gap uint64, st *stats.Set) *DMA {
	d := &DMA{
		agent:          id,
		fabric:         fabric,
		maxOutstanding: maxOutstanding,
		gap:            gap,
		cReads:         st.Counter("dma.reads"),
		cWrites:        st.Counter("dma.writes"),
	}
	d.pumpFn = func(uint64) { d.pump() }
	fabric.Register(id, d.Handle)
	return d
}

// ReadLine fetches one line; onVer fires with the coherent data version.
func (d *DMA) ReadLine(pa mem.PAddr, onVer func(ver uint64)) {
	d.queue = append(d.queue, dmaOp{pa: pa.LineAddr(), onVer: onVer})
	d.cReads.Inc()
	d.pump()
}

// WriteLine commits one line at the LLC; done fires on the ack. delta marks
// ver as an increment for write-allocated lines (see scratchpad.DirtyLine).
func (d *DMA) WriteLine(pa mem.PAddr, ver uint64, delta bool, done func(now uint64)) {
	d.queue = append(d.queue, dmaOp{write: true, pa: pa.LineAddr(), ver: ver, delta: delta, done: done})
	d.cWrites.Inc()
	d.pump()
}

// Idle reports whether all issued transfers have completed.
func (d *DMA) Idle() bool {
	return d.outstanding == 0 && len(d.queue) == 0
}

// pump issues queued transfers up to the outstanding limit, pacing issues
// by the controller gap.
func (d *DMA) pump() {
	for d.outstanding < d.maxOutstanding && len(d.queue) > 0 {
		now := d.fabric.Now()
		if now < d.nextIssue {
			d.fabric.Engine().ScheduleAt(d.nextIssue, d.pumpFn)
			return
		}
		d.nextIssue = now + d.gap
		op := d.queue[0]
		d.queue = d.queue[1:]
		d.outstanding++
		if op.write {
			if d.writeFind(op.pa) >= 0 {
				sim.Failf("dma", d.fabric.Now(), d.DumpState(), "overlapping writes to %s", op.pa)
			}
			d.pendingWrites = append(d.pendingWrites, pendingWrite{op.pa, op.done})
			w := d.pool.Get()
			w.Type, w.Addr, w.Src, w.Dst = mesi.MsgDMAWrite, op.pa, d.agent, mesi.DirID
			w.Ver, w.Delta = op.ver, op.delta
			d.fabric.Send(w)
			continue
		}
		i := d.readFind(op.pa)
		if i < 0 {
			var ov []func(uint64)
			if n := len(d.freeOnVer); n > 0 {
				ov = d.freeOnVer[n-1]
				d.freeOnVer = d.freeOnVer[:n-1]
			}
			d.pendingReads = append(d.pendingReads, pendingRead{pa: op.pa, onVer: ov})
			i = len(d.pendingReads) - 1
			r := d.pool.Get()
			r.Type, r.Addr, r.Src, r.Dst = mesi.MsgDMARead, op.pa, d.agent, mesi.DirID
			d.fabric.Send(r)
		} else {
			// Merged duplicate read; it resolves with the first response.
			d.outstanding--
		}
		d.pendingReads[i].onVer = append(d.pendingReads[i].onVer, op.onVer)
	}
}

// Handle receives directory responses and releases them after the (fully
// synchronous) handling. A read for a line owned modified by a cache arrives
// as a plain Data message from the owner (3-hop), so both forms resolve the
// same pending read.
func (d *DMA) Handle(m *mesi.Msg) {
	defer d.pool.Put(m)
	switch m.Type {
	case mesi.MsgDMAReadResp, mesi.MsgData, mesi.MsgDataE, mesi.MsgDataM:
		pa := m.Addr.LineAddr()
		i := d.readFind(pa)
		if i < 0 {
			sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected data for %s", pa)
		}
		ov := d.pendingReads[i].onVer
		last := len(d.pendingReads) - 1
		d.pendingReads[i] = d.pendingReads[last]
		d.pendingReads[last] = pendingRead{}
		d.pendingReads = d.pendingReads[:last]
		d.outstanding--
		for j, f := range ov {
			f(m.Ver)
			ov[j] = nil
		}
		d.freeOnVer = append(d.freeOnVer, ov[:0])
		d.pump()
	case mesi.MsgDMAWriteAck:
		pa := m.Addr.LineAddr()
		i := d.writeFind(pa)
		if i < 0 {
			sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected write ack for %s", pa)
		}
		done := d.pendingWrites[i].done
		last := len(d.pendingWrites) - 1
		d.pendingWrites[i] = d.pendingWrites[last]
		d.pendingWrites[last] = pendingWrite{}
		d.pendingWrites = d.pendingWrites[:last]
		d.outstanding--
		if done != nil {
			done(d.fabric.Now())
		}
		d.pump()
	case mesi.MsgInvAck:
		// A DMARead raced with nothing we track; ignore defensively.
	default:
		sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected %s", m)
	}
}

// readFind returns the index of pa's pending read, or -1.
func (d *DMA) readFind(pa mem.PAddr) int {
	for i := range d.pendingReads {
		if d.pendingReads[i].pa == pa {
			return i
		}
	}
	return -1
}

// writeFind returns the index of pa's pending write, or -1.
func (d *DMA) writeFind(pa mem.PAddr) int {
	for i := range d.pendingWrites {
		if d.pendingWrites[i].pa == pa {
			return i
		}
	}
	return -1
}

// DumpState summarizes in-flight DMA transfers for failure diagnostics.
// Empty when the engine is idle.
func (d *DMA) DumpState() string {
	if d.Idle() && len(d.pendingReads) == 0 && len(d.pendingWrites) == 0 {
		return ""
	}
	return fmt.Sprintf("dma: %d outstanding, %d queued, %d pending reads, %d pending writes\n",
		d.outstanding, len(d.queue), len(d.pendingReads), len(d.pendingWrites))
}
