package scratchpad

import (
	"fmt"

	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// DMA is the oracle coherent DMA engine. It lives at the host LLC as a
// non-caching fabric agent: reads pull the most up-to-date data through the
// directory (downgrading an owner if necessary, as ARM's ACP and IBM's
// coherent attach do, Section 2.1) and writes invalidate stale copies
// before committing at the LLC.
type DMA struct {
	agent  mesi.AgentID
	fabric *mesi.Fabric
	pool   mesi.MsgPool
	pumpFn func(now uint64) // cached retry callback

	cReads  *stats.Counter
	cWrites *stats.Counter

	maxOutstanding int
	outstanding    int
	// gap is the controller's per-transfer occupancy: after issuing one
	// transfer the state machine is busy for gap cycles before the next.
	gap       uint64
	nextIssue uint64
	queue     []dmaOp

	pendingReads  map[mem.PAddr]*readCtx
	pendingWrites map[mem.PAddr]func(now uint64)
}

type dmaOp struct {
	write bool
	pa    mem.PAddr
	ver   uint64
	delta bool
	onVer func(ver uint64) // reads: data arrival callback
	done  func(now uint64) // writes: ack callback
}

type readCtx struct {
	onVer []func(uint64)
}

// NewDMA registers the engine as agent id on the fabric. gap is the
// controller's per-transfer occupancy in cycles.
func NewDMA(fabric *mesi.Fabric, id mesi.AgentID, maxOutstanding int, gap uint64, st *stats.Set) *DMA {
	d := &DMA{
		agent:          id,
		fabric:         fabric,
		maxOutstanding: maxOutstanding,
		gap:            gap,
		pendingReads:   make(map[mem.PAddr]*readCtx),
		pendingWrites:  make(map[mem.PAddr]func(uint64)),
		cReads:         st.Counter("dma.reads"),
		cWrites:        st.Counter("dma.writes"),
	}
	d.pumpFn = func(uint64) { d.pump() }
	fabric.Register(id, d.Handle)
	return d
}

// ReadLine fetches one line; onVer fires with the coherent data version.
func (d *DMA) ReadLine(pa mem.PAddr, onVer func(ver uint64)) {
	d.queue = append(d.queue, dmaOp{pa: pa.LineAddr(), onVer: onVer})
	d.cReads.Inc()
	d.pump()
}

// WriteLine commits one line at the LLC; done fires on the ack. delta marks
// ver as an increment for write-allocated lines (see scratchpad.DirtyLine).
func (d *DMA) WriteLine(pa mem.PAddr, ver uint64, delta bool, done func(now uint64)) {
	d.queue = append(d.queue, dmaOp{write: true, pa: pa.LineAddr(), ver: ver, delta: delta, done: done})
	d.cWrites.Inc()
	d.pump()
}

// Idle reports whether all issued transfers have completed.
func (d *DMA) Idle() bool {
	return d.outstanding == 0 && len(d.queue) == 0
}

// pump issues queued transfers up to the outstanding limit, pacing issues
// by the controller gap.
func (d *DMA) pump() {
	for d.outstanding < d.maxOutstanding && len(d.queue) > 0 {
		now := d.fabric.Now()
		if now < d.nextIssue {
			d.fabric.Engine().ScheduleAt(d.nextIssue, d.pumpFn)
			return
		}
		d.nextIssue = now + d.gap
		op := d.queue[0]
		d.queue = d.queue[1:]
		d.outstanding++
		if op.write {
			if _, dup := d.pendingWrites[op.pa]; dup {
				sim.Failf("dma", d.fabric.Now(), d.DumpState(), "overlapping writes to %s", op.pa)
			}
			d.pendingWrites[op.pa] = op.done
			w := d.pool.Get()
			w.Type, w.Addr, w.Src, w.Dst = mesi.MsgDMAWrite, op.pa, d.agent, mesi.DirID
			w.Ver, w.Delta = op.ver, op.delta
			d.fabric.Send(w)
			continue
		}
		ctx := d.pendingReads[op.pa]
		if ctx == nil {
			ctx = &readCtx{}
			d.pendingReads[op.pa] = ctx
			r := d.pool.Get()
			r.Type, r.Addr, r.Src, r.Dst = mesi.MsgDMARead, op.pa, d.agent, mesi.DirID
			d.fabric.Send(r)
		} else {
			// Merged duplicate read; it resolves with the first response.
			d.outstanding--
		}
		ctx.onVer = append(ctx.onVer, op.onVer)
	}
}

// Handle receives directory responses and releases them after the (fully
// synchronous) handling. A read for a line owned modified by a cache arrives
// as a plain Data message from the owner (3-hop), so both forms resolve the
// same pending read.
func (d *DMA) Handle(m *mesi.Msg) {
	defer d.pool.Put(m)
	switch m.Type {
	case mesi.MsgDMAReadResp, mesi.MsgData, mesi.MsgDataE, mesi.MsgDataM:
		pa := m.Addr.LineAddr()
		ctx, ok := d.pendingReads[pa]
		if !ok {
			sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected data for %s", pa)
		}
		delete(d.pendingReads, pa)
		d.outstanding--
		for _, f := range ctx.onVer {
			f(m.Ver)
		}
		d.pump()
	case mesi.MsgDMAWriteAck:
		pa := m.Addr.LineAddr()
		done, ok := d.pendingWrites[pa]
		if !ok {
			sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected write ack for %s", pa)
		}
		delete(d.pendingWrites, pa)
		d.outstanding--
		if done != nil {
			done(d.fabric.Now())
		}
		d.pump()
	case mesi.MsgInvAck:
		// A DMARead raced with nothing we track; ignore defensively.
	default:
		sim.Failf("dma", d.fabric.Now(), d.DumpState(), "unexpected %s", m)
	}
}

// DumpState summarizes in-flight DMA transfers for failure diagnostics.
// Empty when the engine is idle.
func (d *DMA) DumpState() string {
	if d.Idle() && len(d.pendingReads) == 0 && len(d.pendingWrites) == 0 {
		return ""
	}
	return fmt.Sprintf("dma: %d outstanding, %d queued, %d pending reads, %d pending writes\n",
		d.outstanding, len(d.queue), len(d.pendingReads), len(d.pendingWrites))
}
