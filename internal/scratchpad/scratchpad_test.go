package scratchpad

import (
	"testing"

	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
)

func newPad(eng *sim.Engine) (*Scratchpad, *energy.Meter, *stats.Set) {
	mt := energy.NewMeter()
	st := stats.NewSet()
	model := energy.Default()
	s := New(eng, "spad0", Config{SizeBytes: 4 << 10, AccessLat: 1,
		AccessPJ: model.ScratchSmall}, mt, st)
	return s, mt, st
}

func TestScratchpadFillAccess(t *testing.T) {
	eng := sim.NewEngine()
	s, mt, _ := newPad(eng)
	s.Fill(0x1000, 7)
	fired := false
	s.Access(mem.Load, 0x1004, func(uint64) { fired = true })
	eng.Step()
	eng.Step()
	if !fired {
		t.Fatal("load did not complete")
	}
	if v, _ := s.Version(0x1000); v != 7 {
		t.Fatalf("version = %d, want 7", v)
	}
	if mt.Get(energy.CatScratch) == 0 {
		t.Fatal("no scratchpad energy")
	}
}

func TestScratchpadStoreDirtiesAndBumps(t *testing.T) {
	eng := sim.NewEngine()
	s, _, _ := newPad(eng)
	s.Fill(0x2000, 3)
	s.Access(mem.Store, 0x2000, func(uint64) {})
	d := s.DirtyLines()
	if len(d) != 1 || d[0].Addr != 0x2000 || d[0].Ver != 4 {
		t.Fatalf("dirty = %+v", d)
	}
}

func TestScratchpadWriteAllocate(t *testing.T) {
	eng := sim.NewEngine()
	s, _, _ := newPad(eng)
	s.Access(mem.Store, 0x3000, func(uint64) {}) // no prior Fill
	if v, ok := s.Version(0x3000); !ok || v != 1 {
		t.Fatalf("write-allocated version = %d/%v", v, ok)
	}
}

func TestScratchpadLoadMissPanics(t *testing.T) {
	eng := sim.NewEngine()
	s, _, _ := newPad(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("oracle violation did not panic")
		}
	}()
	s.Access(mem.Load, 0x4000, func(uint64) {})
}

func TestScratchpadClearAndDirtyOrder(t *testing.T) {
	eng := sim.NewEngine()
	s, _, _ := newPad(eng)
	for _, a := range []mem.VAddr{0x300, 0x100, 0x200} {
		s.Access(mem.Store, a, func(uint64) {})
	}
	d := s.DirtyLines()
	if len(d) != 3 || d[0].Addr >= d[1].Addr || d[1].Addr >= d[2].Addr {
		t.Fatalf("dirty lines not sorted: %+v", d)
	}
	s.Clear()
	if s.Resident() != 0 {
		t.Fatal("Clear left lines")
	}
}

func it(loads, stores []mem.VAddr) trace.Iteration {
	return trace.Iteration{Loads: loads, Stores: stores, IntOps: 1}
}

func TestWindowsSingleWindowWhenFits(t *testing.T) {
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		it([]mem.VAddr{0x000, 0x040}, []mem.VAddr{0x080}),
		it([]mem.VAddr{0x0c0}, nil),
	}}
	ws := Windows(inv, 64, nil)
	if len(ws) != 1 {
		t.Fatalf("windows = %d, want 1", len(ws))
	}
	w := ws[0]
	if len(w.ReadSet) != 3 || len(w.WriteSet) != 1 {
		t.Fatalf("read/write sets = %v / %v", w.ReadSet, w.WriteSet)
	}
}

func TestWindowsSplitOnCapacity(t *testing.T) {
	// Each iteration touches 2 fresh lines; capacity 4 lines -> 2 iters per window.
	var iters []trace.Iteration
	for i := 0; i < 6; i++ {
		base := mem.VAddr(i * 128)
		iters = append(iters, it([]mem.VAddr{base}, []mem.VAddr{base + 64}))
	}
	inv := &trace.Invocation{Iterations: iters}
	ws := Windows(inv, 4, nil)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	for _, w := range ws {
		if w.End-w.Start != 2 {
			t.Fatalf("window span = %d, want 2", w.End-w.Start)
		}
		if len(w.ReadSet) != 2 || len(w.WriteSet) != 2 {
			t.Fatalf("sets: %v / %v", w.ReadSet, w.WriteSet)
		}
	}
}

func TestWindowsStoreThenLoadStaysInReadSet(t *testing.T) {
	// A line both stored and loaded in one window must be DMA'd in: the
	// accelerator pipeline may reorder the load ahead of the store.
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		it(nil, []mem.VAddr{0x000}),
		it([]mem.VAddr{0x000}, nil),
	}}
	ws := Windows(inv, 64, nil)
	if len(ws) != 1 || len(ws[0].ReadSet) != 1 {
		t.Fatalf("store-then-load line must be in the read set: %+v", ws[0])
	}
	if len(ws[0].WriteSet) != 1 {
		t.Fatal("dirty line missing from write set")
	}
}

func TestWindowsStoreOnlyLineNotInReadSet(t *testing.T) {
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		it([]mem.VAddr{0x040}, []mem.VAddr{0x000}),
	}}
	ws := Windows(inv, 64, nil)
	if len(ws[0].ReadSet) != 1 || ws[0].ReadSet[0] != 0x040 {
		t.Fatalf("store-only line needlessly DMA'd in: %+v", ws[0])
	}
}

func TestWindowsOversizedIterationStillProgresses(t *testing.T) {
	var loads []mem.VAddr
	for i := 0; i < 10; i++ {
		loads = append(loads, mem.VAddr(i*64))
	}
	inv := &trace.Invocation{Iterations: []trace.Iteration{it(loads, nil), it(loads[:1], nil)}}
	ws := Windows(inv, 4, nil) // iteration footprint 10 > 4
	if len(ws) != 2 || ws[0].End != 1 {
		t.Fatalf("oversized iteration not isolated: %+v", ws)
	}
}

// DMA integration through the real directory.
func newDMAHarness(t *testing.T) (*sim.Engine, *mesi.Fabric, *mesi.Directory, *mesi.Client, *DMA, *stats.Set) {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := mesi.NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	dir := mesi.NewDirectory(fab, mesi.DefaultDirConfig(), d, model, mt, st)
	host := mesi.NewClient(fab, 1, mesi.DefaultHostL1Config(model), model, mt, st)
	dma := NewDMA(fab, 3, 8, 0, st)
	return eng, fab, dir, host, dma, st
}

func TestDMAReadsCoherentData(t *testing.T) {
	eng, _, _, host, dma, _ := newDMAHarness(t)
	// Host dirties a line.
	done := false
	host.Access(mem.Store, 0x1000, func(uint64) { done = true })
	eng.Run(100000, func() bool { return done })
	var got uint64
	seen := false
	dma.ReadLine(0x1000, func(v uint64) { got = v; seen = true })
	eng.Run(100000, func() bool { return seen })
	if got != 1 {
		t.Fatalf("DMA read v%d, want v1 (owner's modified data)", got)
	}
}

func TestDMAWriteVisibleToHost(t *testing.T) {
	eng, _, dir, host, dma, _ := newDMAHarness(t)
	acked := false
	dma.WriteLine(0x2000, 9, false, func(uint64) { acked = true })
	eng.Run(100000, func() bool { return acked })
	if dir.Version(0x2000) != 9 {
		t.Fatalf("LLC version = %d, want 9", dir.Version(0x2000))
	}
	done := false
	host.Access(mem.Load, 0x2000, func(uint64) { done = true })
	eng.Run(100000, func() bool { return done })
	if l := host.Peek(0x2000); l == nil || l.Ver != 9 {
		t.Fatalf("host line = %+v, want v9", l)
	}
}

func TestDMABoundedOutstanding(t *testing.T) {
	eng, _, _, _, dma, _ := newDMAHarness(t)
	const n = 40
	got := 0
	for i := 0; i < n; i++ {
		dma.ReadLine(mem.PAddr(i*64), func(uint64) { got++ })
	}
	if dma.outstanding > dma.maxOutstanding {
		t.Fatalf("outstanding %d exceeds cap %d", dma.outstanding, dma.maxOutstanding)
	}
	eng.Run(2000000, func() bool { return got == n })
	if !dma.Idle() {
		t.Fatal("DMA not idle after completion")
	}
}

func TestDMAFullRoundTrip(t *testing.T) {
	// DMA in, compute in scratchpad, DMA out; versions flow end to end.
	eng, _, dir, _, dma, _ := newDMAHarness(t)
	s, _, _ := newPad(eng)
	dir.Preload(0x3000, 5)

	loaded := false
	dma.ReadLine(0x3000, func(v uint64) {
		s.Fill(0x3000, v)
		loaded = true
	})
	eng.Run(100000, func() bool { return loaded })

	stored := false
	s.Access(mem.Store, 0x3000, func(uint64) { stored = true })
	eng.Run(100, func() bool { return stored })

	drained := false
	for _, dl := range s.DirtyLines() {
		dma.WriteLine(mem.PAddr(dl.Addr), dl.Ver, dl.Delta, func(uint64) { drained = true })
	}
	eng.Run(100000, func() bool { return drained })
	if dir.Version(0x3000) != 6 {
		t.Fatalf("final version = %d, want 6", dir.Version(0x3000))
	}
}

func TestWindowsLiveStoredLineDMAdIn(t *testing.T) {
	// A store that only partially overwrites live data must fetch the line
	// first; a store to a fresh line write-allocates for free.
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		it(nil, []mem.VAddr{0x000, 0x100}),
	}}
	live := map[mem.VAddr]bool{0x000: true}
	ws := Windows(inv, 64, live)
	if len(ws) != 1 {
		t.Fatalf("windows = %d", len(ws))
	}
	if len(ws[0].ReadSet) != 1 || ws[0].ReadSet[0] != 0x000 {
		t.Fatalf("read set = %v, want just the live line", ws[0].ReadSet)
	}
	if len(ws[0].WriteSet) != 2 {
		t.Fatalf("write set = %v, want both lines", ws[0].WriteSet)
	}
}
