// Package scratchpad implements the SCRATCH baseline of Section 2.1: one
// explicitly-managed RAM per accelerator, filled and drained by an oracle
// coherent DMA engine that resides at the host LLC.
//
// The oracle follows the paper's methodology exactly (Section 4, "systems
// compared"): DMA operations are auto-generated from the dynamic trace —
// only lines that will be read are pushed in, only dirty lines are drained
// out — and issuing a DMA request is free; the transfers themselves pay LLC
// access energy, link energy, and latency, and serialize on the critical
// path between execution windows. Working sets larger than the scratchpad
// split the invocation into windows with a DMA round trip per window.
package scratchpad

import (
	"sort"

	"fusion/internal/energy"
	"fusion/internal/flat"
	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
)

// Config sizes a scratchpad.
type Config struct {
	SizeBytes int // Table 2: 4 or 8 KB
	AccessLat uint64
	AccessPJ  float64
}

// padLine tracks one resident line's modeled payload. Lines DMA'd in know
// their base version; write-allocated lines (stored without a prior DMA-in)
// do not, so their writeback carries a delta the LLC accumulates.
type padLine struct {
	base      uint64
	delta     uint64
	baseKnown bool
	dirty     bool
}

// Mutations arm deliberate, test-only scratchpad bugs for the litmus
// mutation-kill validator (see internal/litmus). All fields must be false
// in real runs.
type Mutations struct {
	// StaleFill installs DMA'd-in lines one version behind the coherent
	// data the DMA delivered — a torn oracle transfer. The value checker
	// flags the fill itself and every load served from it.
	StaleFill bool
}

// Scratchpad is a software-managed RAM implementing accel.MemPort. Every
// access hits: the oracle DMA guarantees residency.
type Scratchpad struct {
	name  string
	cfg   Config
	eng   *sim.Engine
	lines *flat.Map[padLine]
	meter *energy.Meter
	obsv  obs.Observer
	mut   *Mutations

	cAccesses *stats.Counter
}

// SetMutations arms test-only scratchpad bugs (nil disarms).
func (s *Scratchpad) SetMutations(m *Mutations) { s.mut = m }

// SetObserver attaches a litmus observer (nil disables observation). The
// scratchpad is a strict agent within a window: fills must install the
// latest globally-ordered version, and loads must observe it.
func (s *Scratchpad) SetObserver(o obs.Observer) { s.obsv = o }

// New builds an empty scratchpad.
func New(eng *sim.Engine, name string, cfg Config,
	meter *energy.Meter, st *stats.Set) *Scratchpad {
	return &Scratchpad{
		name:      name,
		cfg:       cfg,
		eng:       eng,
		lines:     flat.New[padLine](cfg.SizeBytes / mem.LineBytes),
		meter:     meter,
		cAccesses: st.Counter(name + ".accesses"),
	}
}

// CapacityLines returns how many lines fit.
func (s *Scratchpad) CapacityLines() int { return s.cfg.SizeBytes / mem.LineBytes }

// Fill installs a line with version ver (DMA-in or a zero-fill for
// write-only lines).
func (s *Scratchpad) Fill(va mem.VAddr, ver uint64) {
	a := uint64(va.LineAddr())
	if s.lines.Len() >= s.CapacityLines() && s.lines.Ptr(a) == nil {
		sim.Failf(s.name, s.eng.Now(), "",
			"overfilled beyond %d lines", s.CapacityLines())
	}
	if s.mut != nil && s.mut.StaleFill && ver > 0 {
		ver--
	}
	s.lines.Put(a, padLine{base: ver, baseKnown: true})
	if s.obsv != nil {
		s.obsv.Record(obs.Observation{Cycle: s.eng.Now(), Agent: s.name,
			Addr: a, Ver: ver, Kind: obs.Fill})
	}
}

// Access implements accel.MemPort. A miss is an oracle violation and panics.
func (s *Scratchpad) Access(kind mem.AccessKind, va mem.VAddr, done func(now uint64)) bool {
	a := uint64(va.LineAddr())
	l := s.lines.Ptr(a)
	if l == nil {
		if kind == mem.Store {
			// Write-allocate: a fully-written line needs no DMA-in, but its
			// base version is unknown (writeback will carry a delta).
			if s.lines.Len() >= s.CapacityLines() {
				sim.Failf(s.name, s.eng.Now(), "",
					"overfilled beyond %d lines", s.CapacityLines())
			}
			l = s.lines.Put(a, padLine{})
		} else {
			sim.Failf(s.name, s.eng.Now(), "",
				"load from line %#x not DMA'd in (oracle violation)", a)
		}
	}
	if s.meter != nil {
		s.meter.Add(energy.CatScratch, s.cfg.AccessPJ)
	}
	s.cAccesses.Inc()
	if kind == mem.Store {
		l.delta++
		l.dirty = true
	}
	if s.obsv != nil {
		k := obs.Load
		if kind == mem.Store {
			k = obs.Store
		}
		s.obsv.Record(obs.Observation{Cycle: s.eng.Now(), Agent: s.name,
			Addr: uint64(va), Ver: l.base + l.delta, Kind: k, Delta: !l.baseKnown})
	}
	s.eng.Schedule(s.cfg.AccessLat, done)
	return true
}

// Version returns the current version of a resident line (base + stores).
func (s *Scratchpad) Version(va mem.VAddr) (uint64, bool) {
	l := s.lines.Ptr(uint64(va.LineAddr()))
	if l == nil {
		return 0, false
	}
	return l.base + l.delta, true
}

// DirtyLines returns the resident dirty lines in deterministic order
// (sorted by address) with their writeback payloads.
func (s *Scratchpad) DirtyLines() []DirtyLine {
	addrs := make([]uint64, 0, s.lines.Len())
	s.lines.ForEach(func(a uint64, _ *padLine) { addrs = append(addrs, a) })
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]DirtyLine, 0, len(addrs))
	for _, a := range addrs {
		l := s.lines.Ptr(a)
		if !l.dirty {
			continue
		}
		dl := DirtyLine{Addr: mem.VAddr(a)}
		if l.baseKnown {
			dl.Ver = l.base + l.delta
		} else {
			dl.Ver = l.delta
			dl.Delta = true
		}
		out = append(out, dl)
	}
	return out
}

// DirtyLine is one line to drain: an absolute version when the base was
// DMA'd in, otherwise a delta to accumulate at the LLC.
type DirtyLine struct {
	Addr  mem.VAddr
	Ver   uint64
	Delta bool
}

// Clear empties the scratchpad (window boundary, after the drain): a
// bitmap wipe, not a reallocation.
func (s *Scratchpad) Clear() {
	s.lines.Clear()
}

// Resident returns the number of resident lines.
func (s *Scratchpad) Resident() int { return s.lines.Len() }

// Window is one execution window of an invocation: the iterations that run
// plus the oracle-computed transfer sets.
type Window struct {
	Start, End int // iteration index range [Start, End)
	// ReadSet are the lines the window loads, which the DMA must push in
	// before the window runs. A line that is both stored and loaded in the
	// window is included: the accelerator pipeline may issue the load
	// before the earlier iteration's store retires, so the line must be
	// resident up front. Store-only lines are write-allocated for free.
	ReadSet []mem.VAddr
	// WriteSet are the lines left dirty at window end, drained by DMA.
	WriteSet []mem.VAddr
}

// Windows segments an invocation so each window's footprint fits capacity,
// replicating the paper's "windows of execution with DMA operations
// required for each window".
//
// live reports whether a line holds data produced earlier in the program
// (preloaded inputs or prior phases' stores). A stored-but-never-loaded
// line is write-allocated for free only when it is NOT live: partially
// overwriting live data without fetching it first would destroy the
// untouched part of the line. live may be nil (nothing live).
func Windows(inv *trace.Invocation, capacityLines int, live map[mem.VAddr]bool) []Window {
	var out []Window
	i := 0
	for i < len(inv.Iterations) {
		footprint := make(map[mem.VAddr]bool)
		written := make(map[mem.VAddr]bool)
		loaded := make(map[mem.VAddr]bool)
		var order []mem.VAddr
		j := i
		for ; j < len(inv.Iterations); j++ {
			it := &inv.Iterations[j]
			// Tentatively measure the footprint with this iteration added.
			add := 0
			for _, a := range it.Loads {
				if !footprint[a.LineAddr()] {
					add++
				}
			}
			for _, a := range it.Stores {
				if !footprint[a.LineAddr()] {
					add++
				}
			}
			if len(footprint)+add > capacityLines && j > i {
				break // window full; this iteration starts the next one
			}
			for _, a := range it.Loads {
				la := a.LineAddr()
				if !footprint[la] {
					footprint[la] = true
					order = append(order, la)
				}
				loaded[la] = true
			}
			for _, a := range it.Stores {
				la := a.LineAddr()
				if !footprint[la] {
					footprint[la] = true
					order = append(order, la)
				}
				if live[la] {
					loaded[la] = true // read-modify-write of live data
				}
				written[la] = true
			}
		}
		w := Window{Start: i, End: j}
		for _, la := range order {
			if loaded[la] {
				w.ReadSet = append(w.ReadSet, la)
			}
			if written[la] {
				w.WriteSet = append(w.WriteSet, la)
			}
		}
		out = append(out, w)
		i = j
	}
	return out
}
