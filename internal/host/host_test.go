package host

import (
	"testing"

	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
	"fusion/internal/vm"
)

type harness struct {
	eng  *sim.Engine
	core *Core
	l1   *mesi.Client
	dir  *mesi.Directory
	pt   *vm.PageTable
	st   *stats.Set
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := mesi.NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	dir := mesi.NewDirectory(fab, mesi.DefaultDirConfig(), d, model, mt, st)
	l1 := mesi.NewClient(fab, 1, mesi.DefaultHostL1Config(model), model, mt, st)
	core := New(eng, "host", DefaultConfig(), l1, st)
	return &harness{eng: eng, core: core, l1: l1, dir: dir, pt: vm.NewPageTable(), st: st}
}

func (h *harness) translate(va mem.VAddr) mem.PAddr {
	return h.pt.Translate(1, va).LineAddr() + mem.PAddr(va.PageOffset()%64)
}

func (h *harness) runPhase(t *testing.T, inv *trace.Invocation) uint64 {
	t.Helper()
	var doneAt uint64
	fired := false
	h.core.Start(inv, func(va mem.VAddr) mem.PAddr { return h.pt.Translate(1, va) },
		func(now uint64) { doneAt = now; fired = true })
	if _, ok := h.eng.Run(5000000, func() bool { return fired }); !ok {
		t.Fatal("phase never completed")
	}
	return doneAt
}

func seqIters(n, loadsPer, intOps, storesPer int) []trace.Iteration {
	var out []trace.Iteration
	addr := uint64(0)
	for i := 0; i < n; i++ {
		var it trace.Iteration
		for j := 0; j < loadsPer; j++ {
			it.Loads = append(it.Loads, mem.VAddr(addr))
			addr += 64
		}
		it.IntOps = intOps
		for j := 0; j < storesPer; j++ {
			it.Stores = append(it.Stores, mem.VAddr(addr))
			addr += 64
		}
		out = append(out, it)
	}
	return out
}

func TestPhaseCompletesAndCommitsAll(t *testing.T) {
	h := newHarness(t)
	inv := &trace.Invocation{Function: "step3", Iterations: seqIters(10, 2, 6, 1)}
	h.runPhase(t, inv)
	wantOps := int64(10 * (2 + 6 + 1))
	if got := h.st.Get("host.committed"); got != wantOps {
		t.Fatalf("committed = %d, want %d", got, wantOps)
	}
	if h.core.Busy() {
		t.Fatal("core still busy")
	}
}

func TestStoresVisibleAfterPhase(t *testing.T) {
	h := newHarness(t)
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		{IntOps: 1, Stores: []mem.VAddr{0x1000, 0x2000}},
	}}
	h.runPhase(t, inv)
	for _, va := range []mem.VAddr{0x1000, 0x2000} {
		pa := h.pt.Translate(1, va)
		if l := h.l1.Peek(pa); l == nil || l.Ver != 1 {
			t.Fatalf("line %v = %+v, want M v1", va, l)
		}
	}
}

func TestWiderCoreIsFaster(t *testing.T) {
	run := func(width int) uint64 {
		h := newHarness(t)
		cfg := DefaultConfig()
		cfg.Width = width
		h.core.cfg = cfg
		inv := &trace.Invocation{Iterations: seqIters(50, 0, 8, 0)}
		return h.runPhase(t, inv)
	}
	narrow := run(1)
	wide := run(4)
	if wide >= narrow {
		t.Fatalf("4-wide (%d) not faster than 1-wide (%d)", wide, narrow)
	}
}

func TestMemoryLatencyOverlapped(t *testing.T) {
	// Independent loads in one iteration should overlap in the LQ: total
	// time must be far less than loads x DRAM latency.
	h := newHarness(t)
	inv := &trace.Invocation{Iterations: seqIters(1, 16, 1, 0)}
	cycles := h.runPhase(t, inv)
	if cycles > 16*250/2 {
		t.Fatalf("16 loads took %d cycles: no memory-level parallelism", cycles)
	}
}

func TestDependenceStoresAfterLoads(t *testing.T) {
	// A store in iteration 0 must not commit before its load returns; with
	// one long-latency load the phase cannot finish early.
	h := newHarness(t)
	inv := &trace.Invocation{Iterations: []trace.Iteration{{
		Loads:  []mem.VAddr{0x5000},
		IntOps: 1,
		Stores: []mem.VAddr{0x6000},
	}}}
	cycles := h.runPhase(t, inv)
	if cycles < 100 {
		t.Fatalf("phase finished in %d cycles; cold load alone costs ~200+", cycles)
	}
}

func TestROBLimitsInflight(t *testing.T) {
	h := newHarness(t)
	cfg := DefaultConfig()
	cfg.ROB = 8
	h.core.cfg = cfg
	inv := &trace.Invocation{Iterations: seqIters(20, 1, 4, 1)}
	h.runPhase(t, inv)
	if got := h.st.Get("host.committed"); got != int64(20*6) {
		t.Fatalf("committed = %d with tiny ROB", got)
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	h := newHarness(t)
	inv := &trace.Invocation{Iterations: seqIters(5, 1, 1, 0)}
	h.core.Start(inv, func(va mem.VAddr) mem.PAddr { return h.pt.Translate(1, va) }, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.core.Start(inv, nil, nil)
}
