// Package host models the host out-of-order core of Table 2: 4-wide, a
// 96-entry ROB, 32-entry load and store queues, 6 integer ALUs and 2 FPUs,
// fed by the 64 KB L1D (a mesi.Client).
//
// The core is trace-driven, like the paper's macsim-based host model: it
// executes the iteration-structured trace of a host phase (e.g. step3() of
// Figure 1), dispatching into the ROB, issuing memory operations through
// the L1 as capacity allows, and committing in order. Its role in the
// evaluation is to produce and consume the data that migrates to and from
// the accelerator tile, as the MESI requester the tile interacts with.
package host

import (
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
)

// Config sets the core's resources (defaults follow Table 2).
type Config struct {
	Width   int // fetch/dispatch/commit width
	ROB     int
	LQ, SQ  int
	IntALUs int
	FPUs    int
}

// DefaultConfig matches Table 2.
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 96, LQ: 32, SQ: 32, IntALUs: 6, FPUs: 2}
}

type opKind uint8

const (
	opInt opKind = iota
	opFP
	opLoad
	opStore
)

type opState uint8

const (
	opWaiting opState = iota // dependencies not satisfied
	opReady                  // may issue
	opIssued                 // in flight
	opDone
)

type hostOp struct {
	kind  opKind
	addr  mem.VAddr
	iter  int
	state opState
}

// Core HandleEvent opcodes.
const (
	opHostComputeDone = 0 // compute op at index arg retires
)

// memCb is a pooled completion callback for one L1 access, replacing the
// per-access closure. fn caches the bound method value so reuse allocates
// nothing. The op index is stable: c.ops only changes in Start, and a phase
// cannot end with callbacks outstanding.
type memCb struct {
	c    *Core
	idx  int
	load bool
	fn   func(now uint64)
}

func (cb *memCb) done(uint64) {
	c := cb.c
	op := &c.ops[cb.idx]
	op.state = opDone
	if cb.load {
		c.loadsLeft[op.iter]--
		c.inLQ--
	} else {
		c.inSQ--
	}
	c.freeCbs = append(c.freeCbs, cb)
}

// Core is the host OOO processor. It is a sim.Ticker.
type Core struct {
	name string
	cfg  Config
	eng  *sim.Engine
	l1   *mesi.Client

	inv       *trace.Invocation
	translate func(va mem.VAddr) mem.PAddr
	onDone    func(now uint64)

	ops      []hostOp // full instruction stream in program order
	head     int      // commit pointer
	dispatch int      // next op to enter the ROB
	inROB    int
	inLQ     int
	inSQ     int

	// iterLoads tracks outstanding loads per iteration for dependence.
	loadsLeft   []int
	computeLeft []int

	freeCbs []*memCb

	busy uint64

	cPhases    *stats.Counter
	cLoads     *stats.Counter
	cStores    *stats.Counter
	cCommitted *stats.Counter
}

// New builds a core over its L1 client and registers it with the engine.
func New(eng *sim.Engine, name string, cfg Config, l1 *mesi.Client, st *stats.Set) *Core {
	c := &Core{name: name, cfg: cfg, eng: eng, l1: l1,
		cPhases:    st.Counter(name + ".phases"),
		cLoads:     st.Counter(name + ".loads"),
		cStores:    st.Counter(name + ".stores"),
		cCommitted: st.Counter(name + ".committed"),
	}
	eng.Register(c)
	return c
}

// Name implements sim.Ticker.
func (c *Core) Name() string { return c.name }

// Busy reports whether a phase is executing.
func (c *Core) Busy() bool { return c.inv != nil }

// Idle implements sim.IdleTicker: with no phase loaded, Tick returns
// without touching any state, so accelerator-phase and DMA stretches can
// be fast-forwarded past the host core.
func (c *Core) Idle() bool { return c.inv == nil }

// Start begins executing a host phase. translate maps the program's virtual
// addresses to physical ones (the host L1 is physically addressed). onDone
// fires when the last instruction commits.
func (c *Core) Start(inv *trace.Invocation, translate func(mem.VAddr) mem.PAddr, onDone func(now uint64)) {
	if c.inv != nil {
		sim.Failf(c.name, c.eng.Now(), "", "Start while busy (running %s)", c.inv.Function)
	}
	c.inv = inv
	c.translate = translate
	c.onDone = onDone
	c.ops = c.ops[:0]
	c.loadsLeft = resize(c.loadsLeft, len(inv.Iterations))
	c.computeLeft = resize(c.computeLeft, len(inv.Iterations))
	for i := range inv.Iterations {
		it := &inv.Iterations[i]
		for _, a := range it.Loads {
			c.ops = append(c.ops, hostOp{kind: opLoad, addr: a, iter: i})
		}
		for k := 0; k < it.IntOps; k++ {
			c.ops = append(c.ops, hostOp{kind: opInt, iter: i})
		}
		for k := 0; k < it.FPOps; k++ {
			c.ops = append(c.ops, hostOp{kind: opFP, iter: i})
		}
		for _, a := range it.Stores {
			c.ops = append(c.ops, hostOp{kind: opStore, addr: a, iter: i})
		}
		c.loadsLeft[i] = len(it.Loads)
		c.computeLeft[i] = it.IntOps + it.FPOps
	}
	c.head, c.dispatch, c.inROB, c.inLQ, c.inSQ = 0, 0, 0, 0, 0
	c.cPhases.Inc()
}

// resize returns s with length n, reusing capacity (contents undefined; the
// caller overwrites every element).
func resize(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// HandleEvent retires compute ops (closure-free events).
func (c *Core) HandleEvent(now uint64, op uint8, arg uint64) {
	switch op {
	case opHostComputeDone:
		o := &c.ops[arg]
		o.state = opDone
		c.computeLeft[o.iter]--
	}
}

// getCb returns a ready-to-issue L1 completion callback from the pool.
func (c *Core) getCb(idx int, load bool) *memCb {
	var cb *memCb
	if n := len(c.freeCbs); n > 0 {
		cb = c.freeCbs[n-1]
		c.freeCbs[n-1] = nil
		c.freeCbs = c.freeCbs[:n-1]
	} else {
		cb = &memCb{c: c}
		cb.fn = cb.done
	}
	cb.idx, cb.load = idx, load
	return cb
}

// ready reports whether op's dependencies are satisfied: loads are always
// ready; compute waits on its iteration's loads; stores wait on loads and
// compute.
func (c *Core) ready(op *hostOp) bool {
	switch op.kind {
	case opLoad:
		return true
	case opInt, opFP:
		return c.loadsLeft[op.iter] == 0
	default:
		return c.loadsLeft[op.iter] == 0 && c.computeLeft[op.iter] == 0
	}
}

// Tick advances the pipeline.
func (c *Core) Tick(now uint64) {
	if c.inv == nil {
		return
	}
	c.busy++

	// Dispatch into the ROB.
	for n := 0; n < c.cfg.Width && c.dispatch < len(c.ops) && c.inROB < c.cfg.ROB; n++ {
		c.dispatch++
		c.inROB++
	}

	// Issue: walk the ROB window oldest-first, respecting per-cycle
	// functional-unit and queue limits.
	alu, fpu, memOps := c.cfg.IntALUs, c.cfg.FPUs, c.cfg.Width
	for i := c.head; i < c.dispatch; i++ {
		if alu == 0 && fpu == 0 && memOps == 0 {
			break
		}
		op := &c.ops[i]
		if op.state != opWaiting || !c.ready(op) {
			continue
		}
		switch op.kind {
		case opInt:
			if alu == 0 {
				continue
			}
			alu--
			op.state = opIssued
			c.eng.ScheduleCall(1, c, opHostComputeDone, uint64(i))
		case opFP:
			if fpu == 0 {
				continue
			}
			fpu--
			op.state = opIssued
			c.eng.ScheduleCall(3, c, opHostComputeDone, uint64(i))
		case opLoad:
			if memOps == 0 || c.inLQ >= c.cfg.LQ {
				continue
			}
			pa := c.translate(op.addr)
			cb := c.getCb(i, true)
			if !c.l1.Access(mem.Load, pa, cb.fn) {
				c.freeCbs = append(c.freeCbs, cb)
				continue // L1 MSHR full; retry next cycle
			}
			memOps--
			c.inLQ++
			op.state = opIssued
			c.cLoads.Inc()
		case opStore:
			if memOps == 0 || c.inSQ >= c.cfg.SQ {
				continue
			}
			pa := c.translate(op.addr)
			cb := c.getCb(i, false)
			if !c.l1.Access(mem.Store, pa, cb.fn) {
				c.freeCbs = append(c.freeCbs, cb)
				continue
			}
			memOps--
			c.inSQ++
			op.state = opIssued
			c.cStores.Inc()
		}
	}

	// Commit in order.
	for n := 0; n < c.cfg.Width && c.head < c.dispatch; n++ {
		if c.ops[c.head].state != opDone {
			break
		}
		c.head++
		c.inROB--
		c.eng.Progress() // an instruction committing is forward progress
		c.cCommitted.Inc()
	}

	if c.head == len(c.ops) {
		done := c.onDone
		c.inv, c.translate, c.onDone = nil, nil, nil
		if done != nil {
			done(now)
		}
	}
}

// BusyCycles returns cycles spent executing host phases.
func (c *Core) BusyCycles() uint64 { return c.busy }
