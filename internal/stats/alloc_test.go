//go:build !race

// Allocation-discipline tests. They are excluded under the race detector:
// the race runtime instruments allocations and makes AllocsPerRun counts
// meaningless.
package stats

import "testing"

func TestCounterAddZeroAlloc(t *testing.T) {
	s := NewSet()
	c := s.Counter("hot.counter")
	if avg := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
	}); avg != 0 {
		t.Fatalf("Counter.Add/Inc allocated %.1f per op, want 0", avg)
	}
}

func TestCounterHandleOnNilSetZeroAllocAfterResolve(t *testing.T) {
	var s *Set
	c := s.Counter("anything") // private sink; increments must still be free
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
	}); avg != 0 {
		t.Fatalf("nil-set Counter.Inc allocated %.1f per op, want 0", avg)
	}
}
