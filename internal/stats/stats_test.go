package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndGet(t *testing.T) {
	s := NewSet()
	s.Add("a", 3)
	s.Add("a", 4)
	s.Inc("b")
	if s.Get("a") != 7 {
		t.Fatalf("a = %d, want 7", s.Get("a"))
	}
	if s.Get("b") != 1 {
		t.Fatalf("b = %d, want 1", s.Get("b"))
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read zero")
	}
}

func TestNamesInsertionOrder(t *testing.T) {
	s := NewSet()
	s.Inc("z")
	s.Inc("a")
	s.Inc("m")
	s.Inc("a") // no duplicate
	names := s.Names()
	want := []string{"z", "a", "m"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestMergeWithPrefix(t *testing.T) {
	a := NewSet()
	a.Add("hits", 10)
	b := NewSet()
	b.Add("hits", 5)
	b.Add("misses", 2)
	a.Merge("l0x", b)
	if a.Get("l0x.hits") != 5 || a.Get("l0x.misses") != 2 || a.Get("hits") != 10 {
		t.Fatalf("merge wrong: %v %v %v", a.Get("l0x.hits"), a.Get("l0x.misses"), a.Get("hits"))
	}
	a.Merge("", b)
	if a.Get("hits") != 15 {
		t.Fatalf("unprefixed merge: hits = %d, want 15", a.Get("hits"))
	}
}

func TestSumPrefix(t *testing.T) {
	s := NewSet()
	s.Add("link.l0x.bytes", 100)
	s.Add("link.l1x.bytes", 50)
	s.Add("cache.hits", 7)
	if got := s.Sum("link."); got != 150 {
		t.Fatalf("Sum(link.) = %d, want 150", got)
	}
	if got := s.Sum(""); got != 157 {
		t.Fatalf("Sum() = %d, want 157", got)
	}
}

func TestDumpSortedAndReset(t *testing.T) {
	s := NewSet()
	s.Add("zz", 1)
	s.Add("aa", 2)
	var b strings.Builder
	s.Dump(&b)
	out := b.String()
	if strings.Index(out, "aa") > strings.Index(out, "zz") {
		t.Fatalf("dump not sorted:\n%s", out)
	}
	s.Reset()
	if s.Len() != 0 || s.Get("aa") != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: a sequence of Adds to one counter sums exactly.
func TestAddSumsProperty(t *testing.T) {
	f := func(vals []int16) bool {
		s := NewSet()
		var want int64
		for _, v := range vals {
			s.Add("x", int64(v))
			want += int64(v)
		}
		return s.Get("x") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
