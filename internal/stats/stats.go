// Package stats provides the counter registry every simulated component
// reports into. Counters are named hierarchically ("l1x.read.hit") and kept
// in insertion order so dumps are deterministic.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Set is an ordered collection of named int64 counters.
type Set struct {
	order []string
	vals  map[string]int64
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{vals: make(map[string]int64)}
}

// Add increments counter name by v, creating it if needed.
func (s *Set) Add(name string, v int64) {
	if _, ok := s.vals[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vals[name] += v
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Put overwrites counter name with v (gauge semantics).
func (s *Set) Put(name string, v int64) {
	if _, ok := s.vals[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vals[name] = v
}

// Get returns the value of counter name (zero if absent).
func (s *Set) Get(name string) int64 { return s.vals[name] }

// Names returns the counter names in insertion order.
func (s *Set) Names() []string {
	return append([]string(nil), s.order...)
}

// Merge adds every counter from other into s, prefixing names with prefix
// (use "" for none). A non-empty prefix is joined with a dot.
func (s *Set) Merge(prefix string, other *Set) {
	for _, n := range other.order {
		name := n
		if prefix != "" {
			name = prefix + "." + n
		}
		s.Add(name, other.vals[n])
	}
}

// Sum returns the total of every counter whose name has the given prefix.
func (s *Set) Sum(prefix string) int64 {
	var total int64
	for _, n := range s.order {
		if strings.HasPrefix(n, prefix) {
			total += s.vals[n]
		}
	}
	return total
}

// Dump writes "name value" lines, sorted by name, to w.
func (s *Set) Dump(w io.Writer) {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-48s %12d\n", n, s.vals[n])
	}
}

// Reset zeroes and removes every counter.
func (s *Set) Reset() {
	s.order = s.order[:0]
	s.vals = make(map[string]int64)
}

// Len reports the number of distinct counters.
func (s *Set) Len() int { return len(s.order) }
