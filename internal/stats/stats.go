// Package stats provides the counter registry every simulated component
// reports into. Counters are named hierarchically ("l1x.read.hit") and kept
// in insertion order so dumps are deterministic.
//
// Hot components do not pay the string-map cost per event: they resolve a
// *Counter handle once at construction (Set.Counter) and increment through
// the pointer. The string-keyed Add/Inc/Put/Get API remains for cold paths
// and tests; both views share the same underlying cells.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Counter is a single interned counter cell. Handles stay valid for the
// lifetime of the Set that interned them; incrementing through a handle is
// a plain pointer write with no map hashing and no allocation.
type Counter struct {
	v int64
}

// Add increments the counter by v.
func (c *Counter) Add(v int64) { c.v += v }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Set overwrites the counter with v (gauge semantics).
func (c *Counter) Set(v int64) { c.v = v }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Set is an ordered collection of named int64 counters.
type Set struct {
	order []string
	vals  map[string]*Counter
}

// NewSet returns an empty counter set.
func NewSet() *Set {
	return &Set{vals: make(map[string]*Counter)}
}

// Counter interns name and returns its handle, creating the counter (at
// zero) if needed. A nil receiver returns a private throwaway cell, so
// components built without a stats set can still resolve handles at
// construction and increment unconditionally on the hot path. Each nil-set
// call returns a distinct cell: sharing one global sink would be a data
// race across the parallel sweep's engines.
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return new(Counter)
	}
	c, ok := s.vals[name]
	if !ok {
		c = new(Counter)
		s.vals[name] = c
		s.order = append(s.order, name)
	}
	return c
}

// Add increments counter name by v, creating it if needed.
func (s *Set) Add(name string, v int64) { s.Counter(name).v += v }

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Counter(name).v++ }

// Put overwrites counter name with v (gauge semantics).
func (s *Set) Put(name string, v int64) { s.Counter(name).v = v }

// Get returns the value of counter name (zero if absent).
func (s *Set) Get(name string) int64 {
	if c, ok := s.vals[name]; ok {
		return c.v
	}
	return 0
}

// Names returns the counter names in insertion order. The slice is a copy;
// prefer ForEach where the caller only iterates.
func (s *Set) Names() []string {
	return append([]string(nil), s.order...)
}

// ForEach calls fn for every counter in insertion order without copying the
// name slice. fn must not mutate the set.
func (s *Set) ForEach(fn func(name string, v int64)) {
	for _, n := range s.order {
		fn(n, s.vals[n].v)
	}
}

// Merge adds every counter from other into s, prefixing names with prefix
// (use "" for none). A non-empty prefix is joined with a dot.
func (s *Set) Merge(prefix string, other *Set) {
	for _, n := range other.order {
		name := n
		if prefix != "" {
			name = prefix + "." + n
		}
		s.Counter(name).v += other.vals[n].v
	}
}

// Sum returns the total of every counter whose name has the given prefix.
func (s *Set) Sum(prefix string) int64 {
	var total int64
	for _, n := range s.order {
		if strings.HasPrefix(n, prefix) {
			total += s.vals[n].v
		}
	}
	return total
}

// Dump writes "name value" lines, sorted by name, to w.
func (s *Set) Dump(w io.Writer) {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-48s %12d\n", n, s.vals[n].v)
	}
}

// Reset zeroes and removes every counter. Handles interned before the reset
// are orphaned: they keep working but no longer feed the set.
func (s *Set) Reset() {
	s.order = s.order[:0]
	s.vals = make(map[string]*Counter)
}

// Len reports the number of distinct counters.
func (s *Set) Len() int { return len(s.order) }
