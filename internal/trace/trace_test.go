package trace

import (
	"testing"

	"fusion/internal/mem"
)

func inv(fn string, axc int, loads, stores []mem.VAddr) Invocation {
	return Invocation{
		Function:   fn,
		AXC:        axc,
		Iterations: []Iteration{{Loads: loads, Stores: stores, IntOps: 4, FPOps: 1}},
	}
}

func TestLinesDedupAndWritten(t *testing.T) {
	i := inv("f", 0, []mem.VAddr{0x00, 0x10, 0x40}, []mem.VAddr{0x80, 0x84})
	lines, written := i.Lines()
	if len(lines) != 3 { // 0x00/0x10 share a line; 0x80/0x84 share a line
		t.Fatalf("lines = %v, want 3", lines)
	}
	if !written[0x80] || written[0x00] {
		t.Fatalf("written = %v", written)
	}
}

func TestOpsCounts(t *testing.T) {
	i := Invocation{Iterations: []Iteration{
		{Loads: make([]mem.VAddr, 3), Stores: make([]mem.VAddr, 1), IntOps: 5, FPOps: 2},
		{Loads: make([]mem.VAddr, 2), IntOps: 1},
	}}
	ii, fp, ld, st := i.Ops()
	if ii != 6 || fp != 2 || ld != 5 || st != 1 {
		t.Fatalf("Ops = %d/%d/%d/%d", ii, fp, ld, st)
	}
}

func TestProgramNumAXCs(t *testing.T) {
	p := Program{Phases: []Phase{
		{Kind: PhaseAccel, Inv: inv("a", 0, nil, nil)},
		{Kind: PhaseAccel, Inv: inv("b", 2, nil, nil)},
		{Kind: PhaseHost, Inv: inv("c", 0, nil, nil)},
	}}
	if p.NumAXCs() != 3 {
		t.Fatalf("NumAXCs = %d, want 3", p.NumAXCs())
	}
}

func TestWorkingSet(t *testing.T) {
	p := Program{Phases: []Phase{
		{Inv: inv("a", 0, []mem.VAddr{0x000, 0x040}, nil)},
		{Inv: inv("b", 1, []mem.VAddr{0x040, 0x080}, nil)},
	}}
	lines, bytes := p.WorkingSet()
	if lines != 3 || bytes != 3*64 {
		t.Fatalf("WorkingSet = %d lines / %d bytes", lines, bytes)
	}
}

func TestSharedLines(t *testing.T) {
	// b reads everything a reads; a also touches a private line.
	p := Program{Phases: []Phase{
		{Inv: inv("a", 0, []mem.VAddr{0x000, 0x040}, nil)},
		{Inv: inv("b", 1, []mem.VAddr{0x040}, nil)},
	}}
	shr := p.SharedLines()
	if shr["b"] != 100 {
		t.Fatalf("b %%SHR = %v, want 100", shr["b"])
	}
	if shr["a"] != 50 {
		t.Fatalf("a %%SHR = %v, want 50", shr["a"])
	}
}
