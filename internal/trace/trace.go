// Package trace defines the workload representation the simulator executes:
// iteration-structured dynamic traces of accelerated functions, the
// Go-native stand-in for the constrained dynamic data-dependence graphs the
// paper extracts with its gprof/trace toolchain (Section 4).
//
// Each accelerated function is a sequence of iterations. Within an
// iteration, loads are independent of each other, compute consumes the
// loaded values, and stores depend on the compute — the canonical
// load/compute/store structure of the fixed-function datapaths the paper
// targets. Across iterations the accelerator pipelines execution, bounded
// by its resources and memory-level parallelism, which is exactly how the
// paper's Table 1 MLP figures arise.
package trace

import "fusion/internal/mem"

// Iteration is one loop body instance: a set of independent loads, a
// compute phase, and dependent stores.
type Iteration struct {
	Loads  []mem.VAddr
	Stores []mem.VAddr
	IntOps int
	FPOps  int
}

// Invocation is one offloaded execution of a function on an accelerator.
type Invocation struct {
	Function string
	AXC      int // which accelerator in the tile runs this function
	// LeaseTime is the ACC epoch length for this function (Table 3 LT),
	// derived from its expected invocation latency.
	LeaseTime uint64
	// Serial marks a loop-carried dependence: iteration i+1's loads wait
	// for iteration i's compute (ADPCM's predictor feedback, medfilt's
	// running window). Serial functions are the latency-sensitive ones
	// whose Table 1 MLP is near 1-2, and they are where the shared cache's
	// higher load-to-use latency costs the most (Lesson 2).
	Serial     bool
	Iterations []Iteration

	// memo caches the Lines view; Program.Seal fills it once the trace is
	// final. A plain pointer (not a sync.Once): sealing happens
	// single-threaded at build time, before the benchmark is shared.
	memo *invLines
}

// invLines is the immutable memoized result of Lines.
type invLines struct {
	lines   []mem.VAddr
	written map[mem.VAddr]bool
}

// Lines returns the distinct cache-line addresses an invocation touches,
// in first-touch order, along with which are written. Callers must treat
// both return values as read-only: sealed programs (every generated
// benchmark) share one memoized copy across all runs. The per-phase
// callers in systems and experiments make this a hot-ish path — the memo
// is what keeps repeated phase setups from re-hashing the whole trace.
func (inv *Invocation) Lines() ([]mem.VAddr, map[mem.VAddr]bool) {
	if m := inv.memo; m != nil {
		return m.lines, m.written
	}
	return inv.computeLines()
}

func (inv *Invocation) computeLines() (lines []mem.VAddr, written map[mem.VAddr]bool) {
	seen := make(map[mem.VAddr]bool)
	written = make(map[mem.VAddr]bool)
	add := func(a mem.VAddr, w bool) {
		la := a.LineAddr()
		if !seen[la] {
			seen[la] = true
			lines = append(lines, la)
		}
		if w {
			written[la] = true
		}
	}
	for i := range inv.Iterations {
		it := &inv.Iterations[i]
		for _, a := range it.Loads {
			add(a, false)
		}
		for _, a := range it.Stores {
			add(a, true)
		}
	}
	return lines, written
}

// Ops returns total op counts (int, fp, ld, st) for the invocation.
func (inv *Invocation) Ops() (intOps, fpOps, loads, stores int) {
	for i := range inv.Iterations {
		it := &inv.Iterations[i]
		intOps += it.IntOps
		fpOps += it.FPOps
		loads += len(it.Loads)
		stores += len(it.Stores)
	}
	return
}

// Program is a whole benchmark: an ordered sequence of phases that migrate
// between accelerators (and optionally back to the host), as in Figure 1.
type Program struct {
	Name   string
	Phases []Phase
}

// PhaseKind distinguishes offloaded from host-run phases.
type PhaseKind uint8

const (
	// PhaseAccel runs on an accelerator in the tile.
	PhaseAccel PhaseKind = iota
	// PhaseHost runs on the host core (e.g. step3() of Figure 1).
	PhaseHost
)

// Phase is one step of the program pipeline.
type Phase struct {
	Kind PhaseKind
	Inv  Invocation
}

// Seal memoizes every phase's Lines view. Call once the trace is final
// (and before the program is shared across concurrent runs); mutating any
// Iterations afterwards leaves the memo stale. Sealing is idempotent.
func (p *Program) Seal() {
	for i := range p.Phases {
		inv := &p.Phases[i].Inv
		l, w := inv.computeLines()
		inv.memo = &invLines{lines: l, written: w}
	}
}

// NumAXCs returns how many distinct accelerators the program uses.
func (p *Program) NumAXCs() int {
	max := -1
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Kind == PhaseAccel && ph.Inv.AXC > max {
			max = ph.Inv.AXC
		}
	}
	return max + 1
}

// WorkingSet returns the program's distinct line count and total bytes.
func (p *Program) WorkingSet() (lines int, bytes int) {
	seen := make(map[mem.VAddr]bool)
	for i := range p.Phases {
		ls, _ := p.Phases[i].Inv.Lines()
		for _, l := range ls {
			seen[l] = true
		}
	}
	return len(seen), len(seen) * mem.LineBytes
}

// SharedLines computes, per accelerated function, the fraction of its lines
// also touched by at least one *other* function — the paper's %SHR metric
// (Table 1). Repeated invocations of the same function do not count as
// sharing.
func (p *Program) SharedLines() map[string]float64 {
	touch := make(map[mem.VAddr]map[string]bool) // line -> set of functions
	for i := range p.Phases {
		fn := p.Phases[i].Inv.Function
		ls, _ := p.Phases[i].Inv.Lines()
		for _, l := range ls {
			if touch[l] == nil {
				touch[l] = make(map[string]bool)
			}
			touch[l][fn] = true
		}
	}
	out := make(map[string]float64)
	for i := range p.Phases {
		ph := &p.Phases[i]
		if _, done := out[ph.Inv.Function]; done {
			continue
		}
		ls, _ := ph.Inv.Lines()
		if len(ls) == 0 {
			continue
		}
		shared := 0
		for _, l := range ls {
			if len(touch[l]) > 1 {
				shared++
			}
		}
		out[ph.Inv.Function] = 100 * float64(shared) / float64(len(ls))
	}
	return out
}
