package lint

// Coverage for the whole-module entry points the fixture tests bypass:
// Run's scope filtering and deterministic ordering, Finding.String's
// relative/absolute rendering, and ListPackageDirs's tree walk.

import (
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestRunMergesAndSortsFindings(t *testing.T) {
	pkg := fixture(t, "maporder_bad")
	findings := Run(Analyzers(), []*Package{pkg}, fixMod)
	if len(findings) == 0 {
		t.Fatal("no findings on the maporder bad fixture")
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("findings out of order: %v before %v", a, b)
		}
	}
}

func TestRunScopeFilter(t *testing.T) {
	pkg := fixture(t, "maporder_bad")
	skipAll := &Analyzer{
		Name:      "never",
		Directive: "never",
		Scope:     func(importPath string) bool { return false },
		Run: func(p *Pass) {
			t.Error("out-of-scope analyzer ran")
		},
	}
	if got := Run([]*Analyzer{skipAll}, []*Package{pkg}, fixMod); len(got) != 0 {
		t.Fatalf("out-of-scope analyzer produced %d findings", len(got))
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "maporder",
		Pos:      token.Position{Filename: "/mod/internal/x/a.go", Line: 7},
		Message:  "map iteration",
	}
	if got := f.String(""); got != "/mod/internal/x/a.go:7: [maporder] map iteration" {
		t.Fatalf("absolute form = %q", got)
	}
	rel := f.String("/mod")
	if !strings.HasPrefix(rel, filepath.Join("internal", "x", "a.go")) {
		t.Fatalf("relative form = %q", rel)
	}
	// A file outside dir stays absolute.
	if got := f.String("/elsewhere/deeper"); !strings.HasPrefix(got, "/mod/") {
		t.Fatalf("outside-dir form = %q", got)
	}
}

func TestListPackageDirs(t *testing.T) {
	mod, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ListPackageDirs(mod)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(dirs) {
		t.Fatal("dirs not sorted")
	}
	var haveLint, haveTestdata bool
	for _, d := range dirs {
		rel, err := filepath.Rel(mod.Dir, d)
		if err != nil {
			t.Fatal(err)
		}
		if rel == filepath.Join("internal", "lint") {
			haveLint = true
		}
		if strings.Contains(rel, "testdata") {
			haveTestdata = true
		}
	}
	if !haveLint {
		t.Error("internal/lint missing from package dirs")
	}
	if haveTestdata {
		t.Error("testdata directories must be skipped")
	}
}
