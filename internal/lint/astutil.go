package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// internalScope restricts an analyzer to the module's internal/ packages —
// the simulation code proper, where determinism and protocol discipline
// are load-bearing. cmd/ front-ends and examples are excluded.
func internalScope(importPath string) bool {
	return strings.Contains(importPath, "/internal/")
}

// anyScope applies an analyzer to every package of the module.
func anyScope(string) bool { return true }

// pkgSelector decomposes expr as a selection on an imported package
// identifier (e.g. time.Now -> "time", "Now").
func pkgSelector(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// funcBodies returns the body of every function declared in the file —
// FuncDecls and FuncLits alike — so per-function analyses can treat each
// closure as its own unit.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// inspectShallow walks n without descending into nested function literals,
// so a per-function pass does not re-see a closure's body.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return fn(m)
	})
}

// moduleLocal reports whether pkgPath belongs to module mod.
func moduleLocal(mod *Module, pkgPath string) bool {
	return pkgPath == mod.Path || strings.HasPrefix(pkgPath, mod.Path+"/")
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// builtinNamed reports whether id resolves to the named builtin function.
func builtinNamed(info *types.Info, id *ast.Ident, name string) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isTypeConversion reports whether call is a type conversion rather than a
// function call.
func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}
