package lint

// dataflow.go is the worklist fixpoint engine the CFG analyzers share. A
// client supplies its lattice as three functions — clone, mergeInto, and
// the block transfer — and gets back the fixed-point in-state of every
// reachable block. Unreachable blocks (dead code behind a return or a
// sim.Failf) are simply absent from the result, so analyzers never report
// on paths that cannot execute.
//
// The engine is initialization-by-first-visit: a block's in-state starts
// as the out-state of whichever predecessor reached it first and is then
// merged with every later predecessor until nothing changes. With a
// monotone mergeInto over a finite lattice this converges to the standard
// maximal-fixed-point solution for both may- (union) and must-
// (intersection) analyses.

import "go/ast"

// forwardFlow runs a forward dataflow over c to fixpoint.
//
//   - init is the entry block's in-state (ownership passes to the engine);
//   - clone deep-copies a state (states are typically maps);
//   - mergeInto folds src into dst in place and reports whether dst
//     changed;
//   - transfer consumes a private copy of the in-state and returns the
//     block's out-state (it may mutate its argument).
//
// The returned map holds the final in-state of every reachable block.
func forwardFlow[S any](c *cfg, init S,
	clone func(S) S,
	mergeInto func(dst, src S) bool,
	transfer func(*cfgBlock, S) S,
) map[*cfgBlock]S {
	in := map[*cfgBlock]S{c.entry: init}
	work := []*cfgBlock{c.entry}
	queued := map[*cfgBlock]bool{c.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, clone(in[blk]))
		for _, succ := range blk.succs {
			changed := false
			if prev, ok := in[succ]; !ok {
				in[succ] = clone(out)
				changed = true
			} else if mergeInto(prev, out) {
				changed = true
			}
			if changed && !queued[succ] {
				work = append(work, succ)
				queued[succ] = true
			}
		}
	}
	return in
}

// funcUnit is one analyzable function body: a declared function or method,
// or a function literal (each closure is its own unit — its CFG does not
// leak into the enclosing function's).
type funcUnit struct {
	name string // declared name, or "func literal"
	body *ast.BlockStmt
}

// funcUnits collects every function body in the file, outermost first.
func funcUnits(f *ast.File) []funcUnit {
	var out []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcUnit{name: n.Name.Name, body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcUnit{name: "func literal", body: n.Body})
		}
		return true
	})
	return out
}
