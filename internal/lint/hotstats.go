package lint

import (
	"go/ast"
	"go/types"
)

// hotStatMethods are the string-keyed stats.Set entry points. Each call
// hashes the counter name in the Set's map (and concatenating a dynamic
// name allocates); the interned-handle API (Set.Counter at construction,
// Counter.Inc/Add on the hot path) costs one pointer dereference instead.
var hotStatMethods = map[string]bool{
	"Counter": true,
	"Inc":     true,
	"Add":     true,
	"Put":     true,
}

// hotMethodNames are the per-cycle/per-message entry points of simulation
// components. Anything these bodies do runs millions of times per
// experiment, so string-keyed stat lookups there dominate allocation
// profiles (the exact failure PR 4's allocation diet removed).
var hotMethodNames = map[string]bool{
	"Tick":        true,
	"Deliver":     true,
	"Handle":      true,
	"HandleTile":  true,
	"HandleMESI":  true,
	"HandleEvent": true,
	"Access":      true,
	"Send":        true,
}

// hotFuncNames are the fusiond job-execution bodies: the scheduler worker
// loop, its panic-fenced run wrapper, and the cell builder each enclose an
// entire simulation, so a string-keyed stat call there pays the map hash
// once per job body — and BuildCell is a free function, which the
// receiver-method match above would never see.
var hotFuncNames = map[string]bool{
	"worker":    true,
	"safeRun":   true,
	"BuildCell": true,
}

// HotStats forbids string-keyed stats.Set calls inside hot function
// bodies: counters touched per cycle or per message must be interned once
// at construction (Set.Counter) and bumped through the *stats.Counter
// handle. Hot bodies are the component entry-point methods
// (hotMethodNames) plus the fusiond job-execution functions (hotFuncNames,
// matched with or without a receiver). Closures declared inside a hot body
// are checked too — they are typically scheduled per event and run just as
// often.
var HotStats = &Analyzer{
	Name:      "hotstats",
	Directive: "hotstats",
	Doc:       "string-keyed stats in a per-cycle hot path",
	Scope:     internalScope,
	Run:       runHotStats,
}

func runHotStats(p *Pass) {
	statsPath := p.Module.Path + "/internal/stats"
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := (fn.Recv != nil && hotMethodNames[fn.Name.Name]) || hotFuncNames[fn.Name.Name]
			if !hot {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := info.Selections[sel]
				if s == nil || s.Kind() != types.MethodVal || !hotStatMethods[sel.Sel.Name] {
					return true
				}
				recv := s.Recv()
				if ptr, isPtr := recv.(*types.Pointer); isPtr {
					recv = ptr.Elem()
				}
				named, ok := recv.(*types.Named)
				if !ok || named.Obj().Name() != "Set" ||
					named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != statsPath {
					return true
				}
				p.Reportf(call.Pos(),
					"string-keyed stats.Set.%s in hot function %s; intern a *stats.Counter at construction and increment the handle",
					sel.Sel.Name, fn.Name.Name)
				return true
			})
		}
	}
}
