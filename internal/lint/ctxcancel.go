package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CtxCancel enforces context hygiene on the daemon and sweep layers
// (internal/service, systems.RunAllCtx, the cmd front-ends): every cancel
// function returned by context.WithCancel / WithTimeout / WithDeadline /
// WithCancelCause must run on every path out of the acquiring function —
// called, deferred, or handed to an owner that will call it (stored in a
// struct, passed to a callee, captured by a closure). A path that returns
// with the cancel function untouched leaks the context's timer goroutine
// and keeps the parent's cancellation tree pinned; under fusiond's
// singleflight scheduler that is a slow, invisible resource leak.
//
// Discarding the cancel outright (`ctx, _ := context.WithCancel(...)`) is
// reported unconditionally.
var CtxCancel = &Analyzer{
	Name:      "ctxcancel",
	Directive: "ctxcancel",
	Doc:       "context cancel func not called on every path",
	Scope:     anyScope,
	Run:       runCtxCancel,
}

const (
	cancelPending uint8 = 1 << iota // acquired; no use seen yet on this path
	cancelDone                      // called, deferred, or ownership handed off
)

// cancelFact tracks one cancel variable: its may-states and the
// acquisition site (pos) plus constructor name (fn) for diagnostics.
type cancelFact struct {
	bits uint8
	pos  token.Pos
	fn   string
	name string
}

type cancelState map[*types.Var]cancelFact

func cloneCancelState(s cancelState) cancelState {
	out := make(cancelState, len(s))
	for k, v := range s { //lint:ordered clone of a dataflow fact map; no output depends on order
		out[k] = v
	}
	return out
}

func mergeCancelInto(dst, src cancelState) bool {
	changed := false
	for k, sv := range src { //lint:ordered commutative union into a map; no output depends on order
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		if merged := dv.bits | sv.bits; merged != dv.bits {
			dv.bits = merged
			dst[k] = dv
			changed = true
		}
	}
	return changed
}

func runCtxCancel(p *Pass) {
	a := &cancelAnalysis{pass: p, info: p.Pkg.Info}
	for _, f := range p.Pkg.Files {
		for _, fn := range funcUnits(f) {
			a.checkFunc(fn)
		}
	}
}

type cancelAnalysis struct {
	pass *Pass
	info *types.Info
}

// cancelConstructor returns the context constructor's name when call is
// context.WithCancel/WithTimeout/WithDeadline/WithCancelCause.
func (a *cancelAnalysis) cancelConstructor(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	path, name, ok := pkgSelector(a.info, sel)
	if !ok || path != "context" {
		return "", false
	}
	switch name {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
		return name, true
	}
	return "", false
}

func (a *cancelAnalysis) checkFunc(fn funcUnit) {
	c := buildCFG(fn.body, a.info, a.pass.Module)
	transfer := func(blk *cfgBlock, st cancelState) cancelState {
		for _, n := range blk.nodes {
			a.node(st, n, false)
		}
		return st
	}
	in := forwardFlow(c, cancelState{}, cloneCancelState, mergeCancelInto, transfer)

	for _, blk := range c.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		st = cloneCancelState(st)
		for _, n := range blk.nodes {
			a.node(st, n, true)
		}
	}

	exitIn, ok := in[c.exit]
	if !ok {
		return
	}
	var leaks []cancelFact
	for _, fact := range exitIn { //lint:ordered findings are collected then sorted by position below
		if fact.bits&cancelPending != 0 {
			leaks = append(leaks, fact)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, fact := range leaks {
		a.pass.Reportf(fact.pos,
			"%s returned by context.%s is not called on every path to return (context leak); call it, defer it, or waive with //lint:ctxcancel <reason>",
			fact.name, fact.fn)
	}
}

func (a *cancelAnalysis) node(st cancelState, n ast.Node, report bool) {
	if s, ok := n.(*ast.AssignStmt); ok {
		a.assign(st, s, report)
		return
	}
	a.scan(st, n)
}

func (a *cancelAnalysis) assign(st cancelState, s *ast.AssignStmt, report bool) {
	// ctx, cancel := context.WithX(...): the cancel func is Lhs[1].
	if len(s.Rhs) == 1 && len(s.Lhs) == 2 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if ctor, ok := a.cancelConstructor(call); ok {
				a.scan(st, call) // arguments may use earlier cancels
				id, isIdent := s.Lhs[1].(*ast.Ident)
				if !isIdent || id.Name == "_" {
					if report {
						a.pass.Reportf(call.Pos(),
							"the cancel func returned by context.%s is discarded; the context can never be canceled", ctor)
					}
					return
				}
				v := a.localVar(id)
				if v == nil {
					return
				}
				if prev, tracked := st[v]; tracked && prev.bits&cancelPending != 0 && report {
					a.pass.Reportf(prev.pos,
						"%s returned by context.%s may be overwritten before it is called (context leak)",
						prev.name, prev.fn)
				}
				st[v] = cancelFact{bits: cancelPending, pos: call.Pos(), fn: ctor, name: id.Name}
				return
			}
		}
	}
	// Re-binding a tracked cancel variable from a non-constructor source
	// unbinds it; its value uses on the RHS count as hand-offs.
	for _, rhs := range s.Rhs {
		a.scan(st, rhs)
	}
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if v := a.localVar(id); v != nil {
				if prev, tracked := st[v]; tracked {
					if prev.bits&cancelPending != 0 && report {
						a.pass.Reportf(prev.pos,
							"%s returned by context.%s may be overwritten before it is called (context leak)",
							prev.name, prev.fn)
					}
					delete(st, v)
				}
			}
			continue
		}
		a.scan(st, lhs)
	}
}

// scan marks every appearance of a tracked cancel variable as done: a
// direct call, a defer, or any hand-off (argument, field value, return,
// closure capture) satisfies the discipline.
func (a *cancelAnalysis) scan(st cancelState, n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if v := a.localVar(id); v != nil {
			if fact, tracked := st[v]; tracked {
				fact.bits = cancelDone
				st[v] = fact
			}
		}
		return true
	})
}

func (a *cancelAnalysis) localVar(id *ast.Ident) *types.Var {
	obj := a.info.Uses[id]
	if obj == nil {
		obj = a.info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
