// Package lint is fusionlint's engine: a stdlib-only static-analysis pass
// (go/parser + go/ast + go/types, no x/tools) that enforces the simulator's
// determinism and protocol-discipline rules. The whole evaluation rests on
// bit-identical replay — the soak sweep asserts cycle counts reproduce
// exactly — so the rules the codebase previously kept by hand-discipline
// (sorted map iteration, no wall-clock time, seeded randomness, structured
// protocol failures, no dropped errors) are machine-checked here on every
// change.
//
// A finding may be waived in place with a justification:
//
//	x := s.lines[a] //lint:ordered read-only sweep, result order unused
//
// The directive names the rule ("ordered" for maporder, otherwise the
// analyzer name), must carry a non-empty reason, and applies to its own
// line or, when written on a line of its own, to the line below.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a rule violation at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical "file:line: [name] message" form with the
// file path relative to dir (absolute when dir is empty).
func (f Finding) String(dir string) string {
	file := f.Pos.Filename
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d: [%s] %s", file, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one rule: a name, the waiver directive that suppresses it,
// a scope predicate over import paths, and the checking pass itself.
type Analyzer struct {
	Name string
	Doc  string
	// Directive is the waiver keyword ("ordered" for maporder, else the
	// analyzer name).
	Directive string
	// Scope reports whether the analyzer applies to a package. The driver
	// consults it; tests run analyzers directly on fixture packages.
	Scope func(importPath string) bool
	Run   func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.findings = append(p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiver is one parsed //lint:<directive> comment.
type waiver struct {
	directive string
	reason    string
	line      int  // line the waiver suppresses
	own       bool // the comment stood on its own line (suppresses line+1)
	pos       token.Pos
}

// collectWaivers parses every //lint: directive in the package. A waiver
// written at the end of a code line suppresses that line; a waiver on a
// line of its own suppresses the next line.
func collectWaivers(pkg *Package) []waiver {
	var ws []waiver
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				directive, reason, _ := strings.Cut(text, " ")
				pos := pkg.Fset.Position(c.Pos())
				ws = append(ws, waiver{
					directive: directive,
					reason:    strings.TrimSpace(reason),
					line:      pos.Line,
					own:       ownLine(pkg.Sources[pos.Filename], pos),
					pos:       c.Pos(),
				})
			}
		}
	}
	return ws
}

// ownLine reports whether the comment at pos is the first thing on its
// source line (so it annotates the line below rather than its own). With
// no source available it conservatively reports false.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			// keep scanning left
		default:
			return false
		}
	}
	return true // first line of the file
}

// applyWaivers filters findings through the package's waivers. A waiver
// with an empty reason suppresses nothing and is itself reported — the
// justification is the point.
func applyWaivers(pkg *Package, an *Analyzer, findings []Finding) []Finding {
	ws := collectWaivers(pkg)
	suppressed := make(map[int]bool)
	var out []Finding
	for _, w := range ws {
		if w.directive != an.Directive {
			continue
		}
		if w.reason == "" {
			out = append(out, Finding{
				Analyzer: an.Name,
				Pos:      pkg.Fset.Position(w.pos),
				Message: fmt.Sprintf("//lint:%s waiver is missing a justification",
					w.directive),
			})
			continue
		}
		suppressed[w.line] = true
		if w.own {
			suppressed[w.line+1] = true
		}
	}
	for _, f := range findings {
		if !suppressed[f.Pos.Line] {
			out = append(out, f)
		}
	}
	return out
}

// RunAnalyzer runs one analyzer over one package, applying waivers.
func RunAnalyzer(an *Analyzer, pkg *Package, mod *Module) []Finding {
	pass := &Pass{Analyzer: an, Pkg: pkg, Module: mod}
	an.Run(pass)
	return applyWaivers(pkg, an, pass.findings)
}

// Run applies every analyzer (each within its scope) to every package and
// returns the merged findings sorted by file, line, and analyzer.
func Run(analyzers []*Analyzer, pkgs []*Package, mod *Module) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, an := range analyzers {
			if an.Scope != nil && !an.Scope(pkg.ImportPath) {
				continue
			}
			out = append(out, RunAnalyzer(an, pkg, mod)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
