package lint

// format.go renders findings machine-readably — JSON for scripting and
// SARIF 2.1.0 for CI annotation — and implements the waiver audit that
// makes suppression debt reviewable (`fusionlint -waivers`).

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strings"
)

// relTo makes file relative to dir with forward slashes (SARIF wants URI
// form); outside dir the absolute path is kept.
func relTo(dir, file string) string {
	if dir != "" {
		if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// jsonFinding is the -format json element shape.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// RenderJSON renders findings as a JSON array (paths relative to dir).
func RenderJSON(findings []Finding, dir string) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relTo(dir, f.Pos.Filename),
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// The minimal SARIF 2.1.0 object model fusionlint emits: one run, one
// driver, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// RenderSARIF renders findings as a SARIF 2.1.0 log. Every analyzer in
// the suite appears as a rule even when it produced no results, so CI
// dashboards show which rules ran.
func RenderSARIF(analyzers []*Analyzer, findings []Finding, dir string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, an := range analyzers {
		rules = append(rules, sarifRule{
			ID:               an.Name,
			ShortDescription: sarifMessage{Text: an.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relTo(dir, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fusionlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// WaiverRecord is one //lint: suppression in the tree, as reported by the
// -waivers audit: where it is, which analyzer it silences, and why.
type WaiverRecord struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// AuditWaivers collects every //lint: directive across pkgs, resolving
// directives to analyzer names (a directive matching no analyzer is kept,
// labeled "unknown:<directive>", so typos surface in the report). Output
// is sorted by file, line.
func AuditWaivers(analyzers []*Analyzer, pkgs []*Package, dir string) []WaiverRecord {
	byDirective := map[string]string{}
	for _, an := range analyzers {
		byDirective[an.Directive] = an.Name
	}
	var out []WaiverRecord
	for _, pkg := range pkgs {
		for _, w := range collectWaivers(pkg) {
			name, ok := byDirective[w.directive]
			if !ok {
				name = "unknown:" + w.directive
			}
			pos := pkg.Fset.Position(w.pos)
			out = append(out, WaiverRecord{
				File:     relTo(dir, pos.Filename),
				Line:     pos.Line,
				Analyzer: name,
				Reason:   w.reason,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return out
}
