package lint

import (
	"go/ast"
	"go/types"
)

// RawPanic forbids bare panics and process-killing calls in simulation
// packages. A protocol bug must surface as a *sim.ProtocolError (raised via
// sim.Failf) so the failure report carries component, cycle, and state
// context instead of a stack trace — the structured-diagnostics contract
// PR 1 established. Two panic shapes remain legal:
//
//   - panic(x) where x's static type is *sim.ProtocolError (Failf itself),
//   - re-panicking a recover() value (the RunE boundary's rethrow of
//     non-protocol panics).
var RawPanic = &Analyzer{
	Name:      "rawpanic",
	Directive: "rawpanic",
	Doc:       "bare panic / fatal exit in simulation code",
	Scope:     internalScope,
	Run:       runRawPanic,
}

// fatalCalls are the process-killing selector calls reported alongside
// bare panics.
var fatalCalls = map[string]map[string]bool{
	"log": {"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true},
	"os": {"Exit": true},
}

func runRawPanic(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, body := range funcBodies(f) {
			recovered := recoverBound(info, body)
			inspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if !builtinNamed(info, fun, "panic") || len(call.Args) != 1 {
						return true
					}
					arg := ast.Unparen(call.Args[0])
					if isProtocolError(p.Module, info.TypeOf(arg)) {
						return true
					}
					if id, isIdent := arg.(*ast.Ident); isIdent &&
						recovered[info.Uses[id]] {
						return true // rethrow of a recover() value
					}
					p.Reportf(call.Pos(),
						"raw panic in simulation code; raise sim.Failf so the failure carries component+cycle context")
				case *ast.SelectorExpr:
					if path, name, ok := pkgSelector(info, fun); ok &&
						fatalCalls[path][name] {
						p.Reportf(call.Pos(),
							"%s.%s kills the process; return an error or raise sim.Failf",
							path, name)
					}
				}
				return true
			})
		}
	}
}

// isProtocolError reports whether t is *sim.ProtocolError of this module.
func isProtocolError(mod *Module, t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ProtocolError" && obj.Pkg() != nil &&
		obj.Pkg().Path() == mod.Path+"/internal/sim"
}

// recoverBound collects the objects assigned from recover() anywhere in the
// function body (x := recover(); if x := recover(); ...).
func recoverBound(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || !builtinNamed(info, fid, "recover") {
			return true
		}
		for _, l := range as.Lhs {
			if id, isIdent := l.(*ast.Ident); isIdent {
				if obj := info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}
