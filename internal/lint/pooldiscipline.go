package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolDiscipline enforces the free-list ownership protocol that PR 4's
// allocation diet rests on: a value drawn from a message pool
// (mesi.MsgPool.Get, acc.TileMsgPool.Get) or a transaction free list
// (newTxn) is owned by the acquiring function until it either releases it
// exactly once (Put, freeTxn) or transfers ownership — sends it on a
// fabric, parks it in a field, appends it to a free list, returns it, or
// captures it in a closure. The analyzer walks every path of the
// function's CFG and reports:
//
//   - a leak: some path reaches return with the value still owned
//     (the runtime counterpart is a message that never re-enters any
//     pool — unbounded allocation on the hot path);
//   - a static double release: a second release is reachable after the
//     first (the runtime counterpart is the pool's 0xFD-poison guard
//     tripping mid-experiment — this check moves it to lint time).
//
// Paths that end in panic/sim.Failf are exempt: a protocol failure aborts
// the simulation, and its diagnostics may legitimately abandon messages.
var PoolDiscipline = &Analyzer{
	Name:      "pooldiscipline",
	Directive: "pooldiscipline",
	Doc:       "pooled value leaked or double-released on some path",
	Scope:     internalScope,
	Run:       runPoolDiscipline,
}

// Ownership states. A variable's dataflow fact is the set of states it may
// be in at a program point (a may-analysis: the union over paths).
const (
	poolOwned    uint8 = 1 << iota // acquired, release still owed here
	poolReleased                   // released; a second release is a bug
	poolEscaped                    // ownership transferred elsewhere
)

// poolFact is one tracked variable's fact: its possible states and the
// acquisition site findings anchor to.
type poolFact struct {
	bits uint8
	pos  token.Pos
	name string
}

type poolState map[*types.Var]poolFact

func clonePoolState(s poolState) poolState {
	out := make(poolState, len(s))
	for k, v := range s { //lint:ordered clone of a dataflow fact map; no output depends on order
		out[k] = v
	}
	return out
}

// mergePoolInto unions src into dst (may-analysis) and reports change.
func mergePoolInto(dst, src poolState) bool {
	changed := false
	for k, sv := range src { //lint:ordered commutative union into a map; no output depends on order
		dv, ok := dst[k]
		if !ok {
			dst[k] = sv
			changed = true
			continue
		}
		merged := dv.bits | sv.bits
		if merged != dv.bits {
			dv.bits = merged
			dst[k] = dv
			changed = true
		}
	}
	return changed
}

func runPoolDiscipline(p *Pass) {
	a := &poolAnalysis{pass: p, info: p.Pkg.Info}
	for _, f := range p.Pkg.Files {
		for _, fn := range funcUnits(f) {
			a.checkFunc(fn)
		}
	}
}

type poolAnalysis struct {
	pass *Pass
	info *types.Info
}

// isAcquire reports whether call draws a pooled value: Get on a message
// pool or newTxn on a controller's transaction free list.
func (a *poolAnalysis) isAcquire(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := a.info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	switch sel.Sel.Name {
	case "Get":
		return a.isPoolType(s.Recv())
	case "newTxn":
		return moduleLocalRecv(a.pass.Module, s.Recv())
	}
	return false
}

// isRelease reports whether call returns ownership to a free list: Put on
// a message pool or freeTxn on a controller. The released operand is the
// call's single argument.
func (a *poolAnalysis) isRelease(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := a.info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	switch sel.Sel.Name {
	case "Put":
		return a.isPoolType(s.Recv())
	case "freeTxn":
		return moduleLocalRecv(a.pass.Module, s.Recv())
	}
	return false
}

// isPoolType reports whether t is one of the module's message pools.
func (a *poolAnalysis) isPoolType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	mod := a.pass.Module.Path
	return (path == mod+"/internal/mesi" && name == "MsgPool") ||
		(path == mod+"/internal/acc" && name == "TileMsgPool")
}

// moduleLocalRecv reports whether the method receiver is a type declared
// inside this module (newTxn/freeTxn are per-controller conventions, not a
// single type).
func moduleLocalRecv(mod *Module, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && moduleLocal(mod, named.Obj().Pkg().Path())
}

func (a *poolAnalysis) checkFunc(fn funcUnit) {
	c := buildCFG(fn.body, a.info, a.pass.Module)
	transfer := func(blk *cfgBlock, st poolState) poolState {
		for _, n := range blk.nodes {
			a.node(st, n, false)
		}
		return st
	}
	in := forwardFlow(c, poolState{}, clonePoolState, mergePoolInto, transfer)

	// Reporting pass: replay each reachable block once from its fixed
	// in-state with diagnostics armed.
	for _, blk := range c.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		st = clonePoolState(st)
		for _, n := range blk.nodes {
			a.node(st, n, true)
		}
	}

	// Leak check: anything still possibly owned where exit's in-state
	// lands never reached a release on that path.
	exitIn, ok := in[c.exit]
	if !ok {
		return
	}
	var leaks []poolFact
	for _, fact := range exitIn { //lint:ordered findings are collected then sorted by position below
		if fact.bits&poolOwned != 0 {
			leaks = append(leaks, fact)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, fact := range leaks {
		a.pass.Reportf(fact.pos,
			"pooled value in %s is not released on every path: a return is reachable while it is still owned (leak); release it, transfer ownership, or waive with //lint:pooldiscipline <reason>", fact.name)
	}
}

// node applies one straight-line node to the state. With report set it
// also emits diagnostics (the reporting pass); the fixpoint runs silent.
func (a *poolAnalysis) node(st poolState, n ast.Node, report bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(st, n, report)
	case *ast.DeferStmt:
		a.callOrScan(st, n.Call, report)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			a.callOrScan(st, call, report)
			return
		}
		a.scan(st, n.X, report)
	default:
		a.scan(st, n, report)
	}
}

// assign handles acquires (x := pool.Get()) and overwrite leaks; all other
// operand uses fall through to scan.
func (a *poolAnalysis) assign(st poolState, s *ast.AssignStmt, report bool) {
	// 1:1 assignments may bind acquires to their targets.
	acquired := map[int]bool{}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !a.isAcquire(call) {
				continue
			}
			id, ok := s.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v := a.localVar(id)
			if v == nil {
				continue
			}
			if fact, tracked := st[v]; tracked && fact.bits&poolOwned != 0 && report {
				a.pass.Reportf(call.Pos(),
					"pooled value in %s may still be owned when it is overwritten by a new acquisition (leak)", id.Name)
			}
			st[v] = poolFact{bits: poolOwned, pos: call.Pos(), name: id.Name}
			acquired[i] = true
		}
	}
	for i, rhs := range s.Rhs {
		if !acquired[i] {
			a.scan(st, rhs, report)
		}
	}
	for i, lhs := range s.Lhs {
		if acquired[i] {
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			// A plain overwrite unbinds the variable from the pooled value.
			if v := a.localVar(id); v != nil {
				if fact, tracked := st[v]; tracked {
					if fact.bits&poolOwned != 0 && report {
						a.pass.Reportf(id.Pos(),
							"pooled value in %s may still be owned when it is overwritten (leak)", id.Name)
					}
					delete(st, v)
				}
			}
			continue
		}
		// m.Field = v / arr[i] = v: the written sub-expressions are uses.
		a.scan(st, lhs, report)
	}
}

// callOrScan handles a statement-level call: releases transition state;
// everything else scans arguments for escapes.
func (a *poolAnalysis) callOrScan(st poolState, call *ast.CallExpr, report bool) {
	if a.isRelease(call) {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v := a.localVar(id); v != nil {
				fact, tracked := st[v]
				if tracked && fact.bits&poolReleased != 0 && report {
					a.pass.Reportf(call.Pos(),
						"%s may already have been released on a path reaching this second release (static double release)", id.Name)
				}
				if !tracked {
					fact.pos = call.Pos()
				}
				fact.bits = poolReleased
				st[v] = fact
				// The receiver chain (c.pool) is not a use of the operand.
				return
			}
		}
	}
	a.scan(st, call, report)
}

// scan walks an expression (or whole statement) for uses of tracked
// variables. Neutral contexts — field/method selection through the value,
// nil comparisons — leave ownership in place; any other appearance
// transfers it (call argument, struct/slice element, return value, channel
// send, address-of, closure capture).
func (a *poolAnalysis) scan(st poolState, n ast.Node, report bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.Ident:
		if v := a.localVar(n); v != nil {
			if fact, tracked := st[v]; tracked {
				fact.bits = poolEscaped
				st[v] = fact
			}
		}
	case *ast.SelectorExpr:
		// m.Field / m.Method: dereference through the tracked pointer, not
		// a transfer. Deeper receivers still scan.
		if _, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			return
		}
		a.scan(st, n.X, report)
	case *ast.BinaryExpr:
		if n.Op == token.EQL || n.Op == token.NEQ {
			// Comparisons (m == nil) read the pointer without transferring
			// ownership; only scan non-ident operands.
			if _, ok := ast.Unparen(n.X).(*ast.Ident); !ok {
				a.scan(st, n.X, report)
			}
			if _, ok := ast.Unparen(n.Y).(*ast.Ident); !ok {
				a.scan(st, n.Y, report)
			}
			return
		}
		a.scan(st, n.X, report)
		a.scan(st, n.Y, report)
	case *ast.CallExpr:
		if a.isRelease(n) {
			a.callOrScan(st, n, report)
			return
		}
		a.scan(st, n.Fun, report)
		for _, arg := range n.Args {
			a.scan(st, arg, report)
		}
	case *ast.FuncLit:
		// Closure capture: any reference inside the literal escapes the
		// value (the closure body is analyzed as its own unit).
		ast.Inspect(n.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v := a.localVar(id); v != nil {
					if fact, tracked := st[v]; tracked {
						fact.bits = poolEscaped
						st[v] = fact
					}
				}
			}
			return true
		})
	default:
		for _, child := range childNodes(n) {
			a.scan(st, child, report)
		}
	}
}

// localVar resolves an identifier to the variable it names, or nil.
func (a *poolAnalysis) localVar(id *ast.Ident) *types.Var {
	obj := a.info.Uses[id]
	if obj == nil {
		obj = a.info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// childNodes returns a node's direct children, for generic recursion.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}
