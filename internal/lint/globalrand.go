package lint

import (
	"go/ast"
	"go/types"
)

// globalRandAllowed are the math/rand (and v2) names that construct an
// explicitly-seeded generator rather than touching the package-level
// source. Everything else draws from process-global state, so fault plans
// and random workloads would not replay.
var globalRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalRand forbids package-level math/rand functions. Randomness must
// flow through a seeded *rand.Rand threaded from the caller — the property
// that makes the differential fuzzer's failures reproducible from a single
// printed seed.
var GlobalRand = &Analyzer{
	Name:      "globalrand",
	Directive: "globalrand",
	Doc:       "global (unseeded) random source",
	Scope:     anyScope,
	Run:       runGlobalRand,
}

func runGlobalRand(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgSelector(info, sel)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			// Types (rand.Rand, rand.Source) and seeded constructors are
			// fine; only package-level functions carry global state.
			if globalRandAllowed[name] || !isFuncUse(info, sel) {
				return true
			}
			p.Reportf(sel.Pos(),
				"package-level %s.%s draws from the global random source; thread a seeded *rand.Rand instead",
				pkgBase(path), name)
			return true
		})
	}
}

// isFuncUse reports whether the selection resolves to a function of the
// package (not a type or constant).
func isFuncUse(info *types.Info, sel *ast.SelectorExpr) bool {
	obj := info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	_, isFunc := obj.Type().Underlying().(*types.Signature)
	return isFunc
}

func pkgBase(path string) string {
	if path == "math/rand/v2" {
		return "rand/v2"
	}
	return "rand"
}
