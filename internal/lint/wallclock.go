package lint

import (
	"go/ast"
)

// wallClockDenied are the package time functions that read or wait on the
// host's clock. Types (time.Duration) and pure constructors/parsers are
// fine; anything observing real time breaks replay.
var wallClockDenied = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
}

// WallClock forbids host wall-clock access in simulation packages:
// simulated time comes from the engine clock (sim.Engine.Now), never from
// package time. A wall-clock read anywhere in the simulation makes cycle
// counts depend on machine load, which the soak sweep's bit-identical
// replay assertion would surface only much later and far less legibly.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Directive: "wallclock",
	Doc:       "wall-clock time in simulation code",
	Scope:     internalScope,
	Run:       runWallClock,
}

func runWallClock(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgSelector(info, sel); ok &&
				path == "time" && wallClockDenied[name] {
				p.Reportf(sel.Pos(),
					"wall-clock time.%s in a simulation package; use the engine clock (sim.Engine.Now)",
					name)
			}
			return true
		})
	}
}
