package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch keeps switches over protocol enums honest. A protocol enum is
// a module-local named integer type whose package-scope constants form a
// dense run 0..N-1 (the iota idiom used by mesi.MsgType, the directory and
// tile stable states, and obs.Kind); sentinel constants outside the run —
// such as the 0xFD pool poison — are not members. A switch over such a
// type must either cover every member or carry an explicit default (the
// house style for an unreachable default is `sim.Failf`, which also tells
// the CFG layer the path terminates).
//
// Switches with non-constant case expressions are skipped: the analyzer
// only reasons about literal member sets.
var EnumSwitch = &Analyzer{
	Name:      "enumswitch",
	Directive: "enumswitch",
	Doc:       "non-exhaustive switch over a protocol enum",
	Scope:     internalScope,
	Run:       runEnumSwitch,
}

type enumMember struct {
	name  string
	value int64
}

func runEnumSwitch(p *Pass) {
	a := &enumAnalysis{
		pass:  p,
		info:  p.Pkg.Info,
		cache: map[*types.TypeName][]enumMember{},
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				a.checkSwitch(sw)
			}
			return true
		})
	}
}

type enumAnalysis struct {
	pass  *Pass
	info  *types.Info
	cache map[*types.TypeName][]enumMember
}

func (a *enumAnalysis) checkSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := a.info.Types[sw.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	members := a.enumMembers(named)
	if members == nil {
		return
	}

	covered := map[int64]bool{}
	for _, cs := range sw.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch handles the unexpected
		}
		for _, e := range cc.List {
			etv, ok := a.info.Types[e]
			if !ok || etv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			if v, exact := constant.Int64Val(constant.ToInt(etv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	for _, m := range members {
		if !covered[m.value] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	a.pass.Reportf(sw.Pos(),
		"switch over %s is not exhaustive: missing %s; add the cases or an explicit default (house style: default: sim.Failf(...))",
		named.Obj().Name(), strings.Join(missing, ", "))
}

// enumMembers returns the member set of named if it is a protocol enum,
// nil otherwise. Membership is computed once per type and cached.
func (a *enumAnalysis) enumMembers(named *types.Named) []enumMember {
	tn := named.Obj()
	if tn.Pkg() == nil || !moduleLocal(a.pass.Module, tn.Pkg().Path()) {
		return nil
	}
	if members, seen := a.cache[tn]; seen {
		return members
	}
	a.cache[tn] = nil // poison against recursion; overwritten below

	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}

	// Collect the type's package-scope constants by value. Scope.Names is
	// sorted, so member discovery is deterministic.
	byValue := map[int64]string{}
	scope := tn.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(constant.ToInt(c.Val()))
		if !exact {
			continue
		}
		if _, dup := byValue[v]; !dup {
			byValue[v] = name
		}
	}

	// The enum is the maximal dense run 0..N-1; sentinels beyond it (pool
	// poison bytes and the like) are not members.
	var members []enumMember
	for v := int64(0); ; v++ {
		name, ok := byValue[v]
		if !ok {
			break
		}
		members = append(members, enumMember{name: name, value: v})
	}
	if len(members) < 2 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i].value < members[j].value })
	a.cache[tn] = members
	return members
}
