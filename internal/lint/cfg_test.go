package lint

// Structural tests for the CFG builder over the testdata/cfgshapes
// fixture: labeled break/continue, goto, select variants, defer order,
// terminating calls, fallthrough, and loop shapes. Assertions are
// structural (reachability, specific edges, block kinds), not golden
// strings, so they pin semantics rather than rendering.

import (
	"bytes"
	"go/ast"
	"go/printer"
	"strings"
	"testing"
)

// shapeCFG builds the CFG of the named function in testdata/cfgshapes.
func shapeCFG(t *testing.T, name string) (*cfg, *Package) {
	t.Helper()
	pkg := fixture(t, "cfgshapes")
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Name.Name != name || fn.Body == nil {
				continue
			}
			return buildCFG(fn.Body, pkg.Info, fixMod), pkg
		}
	}
	t.Fatalf("function %s not found in cfgshapes", name)
	return nil, nil
}

// nodeTexts renders a block's nodes as collapsed source strings.
func nodeTexts(pkg *Package, blk *cfgBlock) []string {
	out := make([]string, 0, len(blk.nodes))
	for _, n := range blk.nodes {
		var buf bytes.Buffer
		printer.Fprint(&buf, pkg.Fset, n)
		out = append(out, strings.Join(strings.Fields(buf.String()), " "))
	}
	return out
}

// blockWith returns the unique block one of whose nodes' text contains
// substr.
func blockWith(t *testing.T, c *cfg, pkg *Package, substr string) *cfgBlock {
	t.Helper()
	var found *cfgBlock
	for _, blk := range c.blocks {
		for _, txt := range nodeTexts(pkg, blk) {
			if strings.Contains(txt, substr) {
				if found != nil && found != blk {
					t.Fatalf("node text %q appears in blocks b%d and b%d", substr, found.index, blk.index)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q", substr)
	}
	return found
}

// reachableFrom returns the set of blocks reachable from start.
func reachableFrom(start *cfgBlock) map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{start: true}
	work := []*cfgBlock{start}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		for _, s := range blk.succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

func hasEdge(from, to *cfgBlock) bool {
	for _, s := range from.succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGLabeledBreak(t *testing.T) {
	c, pkg := shapeCFG(t, "labeledBreak")
	// break outer exits BOTH loops: the block assigning found jumps
	// straight to the block returning it.
	assign := blockWith(t, c, pkg, "found = j")
	ret := blockWith(t, c, pkg, "return found")
	if !hasEdge(assign, ret) {
		t.Errorf("break outer: want edge b%d -> b%d (out of both loops), succs %v",
			assign.index, ret.index, assign.succs)
	}
	if !reachableFrom(c.entry)[c.exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	c, pkg := shapeCFG(t, "labeledContinue")
	// continue outer targets the OUTER range head: the range.head block
	// whose rebound key ident is exactly "i" (the inner one rebinds j).
	var outerHead *cfgBlock
	for _, blk := range c.blocks {
		if blk.kind != "range.head" {
			continue
		}
		for _, txt := range nodeTexts(pkg, blk) {
			if txt == "i" {
				outerHead = blk
			}
		}
	}
	if outerHead == nil {
		t.Fatal("no range.head block rebinding i")
	}
	var fromThen bool
	for _, blk := range c.blocks {
		if blk.kind == "if.then" && len(blk.nodes) == 0 && hasEdge(blk, outerHead) {
			fromThen = true
		}
	}
	if !fromThen {
		t.Error("continue outer: no empty if.then block jumps to the outer range head")
	}
}

func TestCFGGoto(t *testing.T) {
	c, pkg := shapeCFG(t, "gotoBackward")
	label := blockWith(t, c, pkg, "total += n")
	if label.kind != "label.again" {
		t.Errorf("label target block has kind %q, want label.again", label.kind)
	}
	backEdge := false
	for _, blk := range c.blocks {
		if blk != label && hasEdge(blk, label) && blk.kind == "if.then" {
			backEdge = true
		}
	}
	if !backEdge {
		t.Error("goto again: no if.then block has a back edge to the label block")
	}
	if !reachableFrom(c.entry)[c.exit] {
		t.Error("exit unreachable")
	}

	c, pkg = shapeCFG(t, "gotoForward")
	out := blockWith(t, c, pkg, "return 2")
	if out.kind != "label.out" {
		t.Errorf("forward label block has kind %q, want label.out", out.kind)
	}
	reach := reachableFrom(c.entry)
	if !reach[out] || !reach[blockWith(t, c, pkg, "return 1")] {
		t.Error("both the labeled return and the fallthrough return must be reachable")
	}
}

func TestCFGSelect(t *testing.T) {
	c, pkg := shapeCFG(t, "selectNoDefault")
	comms := 0
	for _, s := range c.entry.succs {
		if s.kind == "comm" {
			comms++
		}
	}
	if comms != 2 || len(c.entry.succs) != 2 {
		t.Errorf("select entry succs = %v, want exactly 2 comm blocks", c.entry.succs)
	}
	// Both cases return, so the join is dead.
	reach := reachableFrom(c.entry)
	for _, blk := range c.blocks {
		if blk.kind == "select.join" && reach[blk] {
			t.Error("select.join reachable though every case returns")
		}
	}
	if !reach[c.exit] {
		t.Error("exit unreachable")
	}

	c, _ = shapeCFG(t, "selectWithDefault")
	if len(c.entry.succs) != 2 {
		t.Errorf("select with default: entry succs = %d, want 2 (case + default)", len(c.entry.succs))
	}
	_ = pkg

	c, _ = shapeCFG(t, "selectForever")
	if reachableFrom(c.entry)[c.exit] {
		t.Error("select {} must block forever: exit reachable")
	}
}

func TestCFGDeferOrder(t *testing.T) {
	c, pkg := shapeCFG(t, "deferOrder")
	if len(c.defers) != 2 {
		t.Fatalf("defers = %d, want 2", len(c.defers))
	}
	var texts []string
	for _, d := range c.defers {
		var buf bytes.Buffer
		printer.Fprint(&buf, pkg.Fset, d)
		texts = append(texts, strings.Join(strings.Fields(buf.String()), " "))
	}
	if !strings.Contains(texts[0], "cleanup(1)") || !strings.Contains(texts[1], "cleanup(2)") {
		t.Errorf("defers in encounter order = %v", texts)
	}
}

func TestCFGTerminatingCalls(t *testing.T) {
	for _, tc := range []struct{ fn, call string }{
		{"panicEdge", `panic("boom")`},
		{"failfEdge", "sim.Failf"},
	} {
		c, pkg := shapeCFG(t, tc.fn)
		blk := blockWith(t, c, pkg, tc.call)
		if len(blk.succs) != 0 {
			t.Errorf("%s: terminating block b%d has successors %v, want none",
				tc.fn, blk.index, blk.succs)
		}
		if !reachableFrom(c.entry)[c.exit] {
			t.Errorf("%s: exit must stay reachable via the non-panicking path", tc.fn)
		}
	}
}

func TestCFGFallthrough(t *testing.T) {
	c, pkg := shapeCFG(t, "fallThrough")
	first := blockWith(t, c, pkg, "out++")
	second := blockWith(t, c, pkg, "out += 10")
	if !hasEdge(first, second) {
		t.Errorf("fallthrough: want edge b%d -> b%d", first.index, second.index)
	}
	third := blockWith(t, c, pkg, "out += 7")
	if hasEdge(first, third) || hasEdge(second, third) {
		t.Error("fallthrough must only link adjacent clauses")
	}
}

func TestCFGLoops(t *testing.T) {
	c, _ := shapeCFG(t, "infiniteFor")
	if reachableFrom(c.entry)[c.exit] {
		t.Error("for {} never exits: exit reachable")
	}

	c, pkg := shapeCFG(t, "condForExits")
	head := blockWith(t, c, pkg, "i < n")
	if head.kind != "for.head" || len(head.succs) != 2 {
		t.Errorf("conditional for head: kind %q succs %v, want for.head with 2 succs",
			head.kind, head.succs)
	}
	if !reachableFrom(c.entry)[c.exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGDeadJoin(t *testing.T) {
	c, _ := shapeCFG(t, "bothArmsReturn")
	reach := reachableFrom(c.entry)
	for _, blk := range c.blocks {
		if blk.kind == "if.join" && reach[blk] {
			t.Error("if.join reachable though both arms return")
		}
	}
	if !reach[c.exit] {
		t.Error("exit unreachable")
	}
}

// TestCFGDebugString smoke-tests the diagnostic renderer.
func TestCFGDebugString(t *testing.T) {
	c, pkg := shapeCFG(t, "condForExits")
	s := c.debugString(pkg.Fset)
	for _, want := range []string{"entry", "for.head", "{i < n}", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("debugString missing %q:\n%s", want, s)
		}
	}
}
