package lint

import (
	"go/ast"
	"go/types"
)

// HotMap forbids runtime-map operations — index expressions, range loops,
// and delete calls — inside hot function bodies. Every map touch on a
// per-cycle or per-message path pays interface hashing and, for stale
// tables, reallocation; the dense replacements (per-(set,way) slot arrays
// keyed by cache.Array.SlotOf, MSHR-slot-parallel slices, occupancy
// bitmaps, or internal/flat.Map for genuinely sparse keys) cost an index or
// a bitmap scan. Hot bodies are the same set hotstats guards: the component
// entry-point methods (hotMethodNames) plus the fusiond job-execution
// functions (hotFuncNames), with closures declared inside them included.
var HotMap = &Analyzer{
	Name:      "hotmap",
	Directive: "hotmap",
	Doc:       "runtime-map operation in a per-cycle hot path",
	Scope:     internalScope,
	Run:       runHotMap,
}

func runHotMap(p *Pass) {
	info := p.Pkg.Info
	// isMap reports whether e evaluates to a runtime map. Checking the
	// operand's type also keeps generic instantiations (New[int] parses as
	// an IndexExpr too) out of the net.
	isMap := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, is := tv.Type.Underlying().(*types.Map)
		return is
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hot := (fn.Recv != nil && hotMethodNames[fn.Name.Name]) || hotFuncNames[fn.Name.Name]
			if !hot {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.IndexExpr:
					if isMap(x.X) {
						p.Reportf(x.Pos(),
							"map index in hot function %s; key the state by dense slot (cache.Array.SlotOf, MSHR slots) or use internal/flat",
							fn.Name.Name)
					}
				case *ast.RangeStmt:
					if isMap(x.X) {
						p.Reportf(x.Pos(),
							"map range in hot function %s; walk an occupancy bitmap or a dense slice instead",
							fn.Name.Name)
					}
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" {
						if obj, ok := info.Uses[id].(*types.Builtin); ok && obj.Name() == "delete" {
							p.Reportf(x.Pos(),
								"map delete in hot function %s; clear an occupancy bit or swap-delete a dense list instead",
								fn.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}
