package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags statements that call a module-local (sim/protocol)
// function returning an error and silently discard it. A drained flush
// whose failure vanishes is exactly how a broken run masquerades as a
// clean one. Stdlib calls are out of scope (fmt.Fprintf to a Builder is
// fine); explicit `_ =` discards are visible in review and stay legal.
var DroppedErr = &Analyzer{
	Name:      "droppederr",
	Directive: "droppederr",
	Doc:       "discarded error from a sim/protocol call",
	Scope:     anyScope,
	Run:       runDroppedErr,
}

func runDroppedErr(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(s.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = s.Call
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil || isTypeConversion(info, call) {
				return true
			}
			obj := callee(info, call)
			if obj == nil || obj.Pkg() == nil || !moduleLocal(p.Module, obj.Pkg().Path()) {
				return true
			}
			if !returnsError(info, call) {
				return true
			}
			p.Reportf(call.Pos(),
				"result of %s includes an error that is silently discarded; handle it or assign it explicitly",
				obj.Name())
			return true
		})
	}
}

// callee resolves the called function's object, when statically known.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}
