package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Module identifies the Go module under analysis.
type Module struct {
	Dir  string // absolute path of the directory holding go.mod
	Path string // module path from the go.mod "module" directive
}

// FindModule walks up from dir to the enclosing go.mod and parses the
// module path out of it.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		gomod := filepath.Join(d, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return &Module{Dir: d, Path: strings.TrimSpace(rest)}, nil
				}
			}
			return nil, fmt.Errorf("%s: no module directive", gomod)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Package is one loaded, type-checked package of the module: the unit the
// analyzers run over.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Sources holds each file's raw bytes, keyed by filename (for waiver
	// placement checks).
	Sources map[string][]byte
	// TypeErrors holds type-checking errors. Analyses still run on a
	// package with errors (the AST and partial type info survive), but the
	// driver reports them: a package that does not compile cannot be
	// trusted to lint clean.
	TypeErrors []error
}

// Loader loads and type-checks packages using only the standard library:
// module-local import paths resolve inside the module tree, everything else
// resolves under GOROOT/src and is type-checked from source. No invocation
// of the go command, no x/tools.
type Loader struct {
	Module *Module

	fset    *token.FileSet
	ctx     build.Context
	goroot  string
	pkgs    map[string]*types.Package // memo, by import path
	full    map[string]*Package       // module-local packages with full info
	loading map[string]bool           // cycle detection
}

// NewLoader builds a loader for the module.
func NewLoader(mod *Module) *Loader {
	ctx := build.Default
	// Pure-Go builds only: cgo-gated stdlib files would need a C toolchain
	// to make sense of, and every platform has a pure fallback.
	ctx.CgoEnabled = false
	return &Loader{
		Module:  mod,
		fset:    token.NewFileSet(),
		ctx:     ctx,
		goroot:  runtime.GOROOT(),
		pkgs:    make(map[string]*types.Package),
		full:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// dirFor maps an import path to the directory holding its sources.
func (l *Loader) dirFor(path string) string {
	if path == l.Module.Path {
		return l.Module.Dir
	}
	if rest, ok := strings.CutPrefix(path, l.Module.Path+"/"); ok {
		return filepath.Join(l.Module.Dir, filepath.FromSlash(rest))
	}
	return filepath.Join(l.goroot, "src", filepath.FromSlash(path))
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Module.Dir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.Module.Path)
	}
	if rel == "." {
		return l.Module.Path, nil
	}
	return l.Module.Path + "/" + filepath.ToSlash(rel), nil
}

// Load type-checks the package in dir (which must lie inside the module)
// and returns it with full syntax and type information.
func (l *Loader) Load(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if _, err := l.Import(path); err != nil {
		return nil, err
	}
	pkg, ok := l.full[path]
	if !ok {
		return nil, fmt.Errorf("%s: loaded without full info", path)
	}
	return pkg, nil
}

// Import implements types.Importer. Module-local packages are retained with
// full ASTs and type info; dependencies keep only their type objects.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	local := path == l.Module.Path || strings.HasPrefix(path, l.Module.Path+"/")
	dir := l.dirFor(path)
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	sources := make(map[string][]byte, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		fname := filepath.Join(dir, name)
		src, err := os.ReadFile(fname)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fname, src,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[fname] = src
	}

	var tErrs []error
	conf := types.Config{
		Importer:    l,
		Sizes:       types.SizesFor("gc", l.ctx.GOARCH),
		FakeImportC: true,
		// Collect instead of aborting: GOROOT packages occasionally use
		// compiler-assisted constructs a plain type-check trips on, and a
		// partial package is enough to keep checking its importers.
		Error: func(err error) { tErrs = append(tErrs, err) },
	}
	var info *types.Info
	if local {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if pkg == nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	if local {
		l.full[path] = &Package{
			ImportPath: path,
			Dir:        dir,
			Fset:       l.fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
			Sources:    sources,
			TypeErrors: tErrs,
		}
	}
	return pkg, nil
}

// ListPackageDirs walks the module tree and returns every directory that
// holds a buildable Go package, in sorted order. testdata, vendor, hidden,
// and underscore-prefixed directories are skipped, mirroring the go tool.
func ListPackageDirs(mod *Module) ([]string, error) {
	ctx := build.Default
	ctx.CgoEnabled = false
	var dirs []string
	err := filepath.WalkDir(mod.Dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != mod.Dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := ctx.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}
