package lint

// cfg.go builds statement-level control-flow graphs over function bodies:
// the substrate of fusionlint's path-sensitive analyzers (pooldiscipline,
// ctxcancel, lockguard). A cfgBlock holds straight-line nodes — simple
// statements and the decomposed pieces of control statements (an if's
// condition, a switch's tag, a case clause's guard expressions) — so every
// node inside a block is body-free: walking a block never re-enters nested
// control flow. Nested function literals are likewise opaque here; each
// closure body gets its own CFG (see funcUnits).
//
// Calls that never return (panic, sim.Failf, os.Exit, log.Fatal*) end
// their block with no successors, so the paths they kill are excluded
// from "on every path to return" reasoning — a handler that Failf-s on a
// protocol violation does not owe that path a pool release.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// cfgBlock is one basic block: straight-line nodes plus successor edges.
type cfgBlock struct {
	index int
	kind  string // diagnostic label: "entry", "for.head", "case", ...
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is one function body's control-flow graph. entry is blocks[0]; exit
// is the single synthetic return target (fall-off-the-end and every
// return statement lead there). defers lists defer statements in the
// order encountered.
type cfg struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	defers []*ast.DeferStmt
}

// cfgFrame is one enclosing breakable construct while building: loops set
// cont, switch/select leave it nil.
type cfgFrame struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock
}

type cfgBuilder struct {
	c       *cfg
	cur     *cfgBlock // nil after a jump: the next statement is unreachable
	labels  map[string]*cfgBlock
	frames  []cfgFrame
	fallTo  *cfgBlock // fallthrough target while building a switch clause
	pending string    // label waiting to be claimed by a loop/switch/select
	info    *types.Info
	mod     *Module
}

// buildCFG constructs the CFG of one function body. info and mod feed the
// never-returns call classifier; both may be nil (then only builtin panic
// terminates).
func buildCFG(body *ast.BlockStmt, info *types.Info, mod *Module) *cfg {
	b := &cfgBuilder{
		c:      &cfg{},
		labels: map[string]*cfgBlock{},
		info:   info,
		mod:    mod,
	}
	b.c.entry = b.newBlock("entry")
	b.c.exit = b.newBlock("exit")
	b.cur = b.c.entry
	b.stmtList(body.List)
	b.jumpTo(b.c.exit)
	return b.c
}

func (b *cfgBuilder) newBlock(kind string) *cfgBlock {
	blk := &cfgBlock{index: len(b.c.blocks), kind: kind}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

// current returns the block under construction, opening a fresh
// predecessor-less block for statically unreachable code (which the
// dataflow engine then never visits).
func (b *cfgBuilder) current() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.current()
	blk.nodes = append(blk.nodes, n)
}

func edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// jumpTo ends the current block with an edge to `to`; building continues
// unreachable until the next join point re-anchors cur.
func (b *cfgBuilder) jumpTo(to *cfgBlock) {
	if b.cur != nil {
		edge(b.cur, to)
	}
	b.cur = nil
}

// enter adds an edge into `to` and continues building there (loop heads,
// label targets: reachable both by fallthrough and by jump).
func (b *cfgBuilder) enter(to *cfgBlock) {
	if b.cur != nil {
		edge(b.cur, to)
	}
	b.cur = to
}

func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock("label." + name)
		b.labels[name] = blk
	}
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pending
	b.pending = ""
	switch s := s.(type) {
	case *ast.LabeledStmt:
		b.enter(b.labelBlock(s.Label.Name))
		b.pending = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.terminates(call) {
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.c.defers = append(b.c.defers, s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.c.exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		b.switchStmt(s, label)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				b.jumpTo(f.brk)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.cont != nil && (name == "" || f.label == name) {
				b.jumpTo(f.cont)
				return
			}
		}
	case token.GOTO:
		if name != "" {
			b.jumpTo(b.labelBlock(name))
			return
		}
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.jumpTo(b.fallTo)
			return
		}
	}
	b.cur = nil // malformed branch: treat as a dead end
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.current()
	join := b.newBlock("if.join")
	then := b.newBlock("if.then")
	edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	b.jumpTo(join)
	if s.Else != nil {
		els := b.newBlock("if.else")
		edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.jumpTo(join)
	} else {
		edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.enter(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	edge(head, body)
	if s.Cond != nil {
		edge(head, join) // a condition-less for only exits via break/return
	}
	cont := head
	var post *cfgBlock
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.frames = append(b.frames, cfgFrame{label: label, brk: join, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.jumpTo(cont)
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.jumpTo(head)
	}
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X) // the ranged operand is evaluated once, before the loop
	head := b.newBlock("range.head")
	b.enter(head)
	// Key/value idents are (re)bound at the top of every iteration; their
	// bare appearance here lets per-variable analyses reset their state on
	// the back edge.
	b.add(s.Key)
	b.add(s.Value)
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	edge(head, body)
	edge(head, join)
	b.frames = append(b.frames, cfgFrame{label: label, brk: join, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.jumpTo(head)
	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	entry := b.current()
	join := b.newBlock("switch.join")
	b.frames = append(b.frames, cfgFrame{label: label, brk: join})
	clauses := make([]*ast.CaseClause, 0, len(s.Body.List))
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("case")
		edge(entry, blocks[i])
		for _, e := range cc.List {
			blocks[i].nodes = append(blocks[i].nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(entry, join)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		savedFall := b.fallTo
		b.fallTo = nil
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		}
		b.stmtList(cc.Body)
		b.fallTo = savedFall
		b.jumpTo(join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Assign)
	entry := b.current()
	join := b.newBlock("typeswitch.join")
	b.frames = append(b.frames, cfgFrame{label: label, brk: join})
	hasDefault := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("typecase")
		edge(entry, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.jumpTo(join)
	}
	if !hasDefault {
		edge(entry, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	entry := b.current()
	join := b.newBlock("select.join")
	b.frames = append(b.frames, cfgFrame{label: label, brk: join})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		edge(entry, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jumpTo(join)
	}
	// No entry->join edge: a select without a default blocks until some
	// case fires, and `select {}` blocks forever (entry keeps no exit).
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// terminates reports whether a call never returns: the panic builtin,
// sim.Failf (raises a *ProtocolError panic), os.Exit, runtime.Goexit, and
// the log package's Fatal family (function or *log.Logger method).
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return builtinNamed(b.info, fn, "panic")
	case *ast.SelectorExpr:
		if path, name, ok := pkgSelector(b.info, fn); ok {
			switch {
			case path == "os" && name == "Exit",
				path == "runtime" && name == "Goexit",
				path == "log" && strings.HasPrefix(name, "Fatal"):
				return true
			case b.mod != nil && path == b.mod.Path+"/internal/sim" && name == "Failf":
				return true
			}
			return false
		}
		if sel := b.info.Selections[fn]; sel != nil && sel.Kind() == types.MethodVal &&
			strings.HasPrefix(fn.Sel.Name, "Fatal") {
			recv := sel.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "log" {
				return true
			}
		}
	}
	return false
}

// debugString renders the CFG for tests: one line per block with its
// nodes' source text and successor indices.
func (c *cfg) debugString(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range c.blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.index, blk.kind)
		for _, n := range blk.nodes {
			var buf bytes.Buffer
			printer.Fprint(&buf, fset, n)
			text := strings.Join(strings.Fields(buf.String()), " ")
			fmt.Fprintf(&sb, " {%s}", text)
		}
		if len(blk.succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.succs {
				fmt.Fprintf(&sb, " b%d", s.index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
