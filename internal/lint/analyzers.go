package lint

// Analyzers returns the full suite in reporting order. Scopes: maporder,
// wallclock, rawpanic, hotstats, hotmap, pooldiscipline, and enumswitch
// guard the simulation packages under internal/; globalrand, droppederr,
// ctxcancel, and lockguard apply module-wide (a cmd that drops errors,
// leaks a cancel func, or races a guarded field corrupts experiments just
// as surely).
//
// Pooldiscipline, ctxcancel, lockguard, and enumswitch are the v2
// CFG/dataflow analyzers (see cfg.go): they reason about every path
// through a function, not just its AST.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		GlobalRand,
		RawPanic,
		DroppedErr,
		HotStats,
		HotMap,
		PoolDiscipline,
		CtxCancel,
		LockGuard,
		EnumSwitch,
	}
}
