package lint

// Analyzers returns the full suite in reporting order. Scopes: maporder,
// wallclock, rawpanic, and hotstats guard the simulation packages under
// internal/; globalrand and droppederr apply module-wide (a cmd that drops
// errors or rolls unseeded dice corrupts experiments just as surely).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		GlobalRand,
		RawPanic,
		DroppedErr,
		HotStats,
	}
}
