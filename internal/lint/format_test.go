package lint

// Tests for the machine-readable renderers (-format json|sarif) and the
// -waivers audit. The SARIF test validates the emitted document against
// the SARIF 2.1.0 shape: schema URI, version, run/tool/driver/rule/result
// structure, and physical locations with relative forward-slash URIs.

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Analyzer: "pooldiscipline",
			Pos:      token.Position{Filename: "/repo/internal/mesi/dir.go", Line: 42},
			Message:  "pooled value in m is not released on every path",
		},
		{
			Analyzer: "enumswitch",
			Pos:      token.Position{Filename: "/repo/internal/acc/msg.go", Line: 7},
			Message:  "switch over TileMsgType is not exhaustive",
		},
	}
}

func TestRenderJSON(t *testing.T) {
	out, err := RenderJSON(sampleFindings(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	want := jsonFinding{File: "internal/mesi/dir.go", Line: 42, Analyzer: "pooldiscipline",
		Message: "pooled value in m is not released on every path"}
	if got[0] != want {
		t.Errorf("first finding = %+v, want %+v", got[0], want)
	}
}

func TestRenderJSONEmpty(t *testing.T) {
	out, err := RenderJSON(nil, "/repo")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("empty findings must render as [], got %s", out)
	}
}

// TestRenderSARIFShape walks the emitted document with the dynamic JSON
// model, so the assertions check the wire shape — field names and
// nesting — not our own struct definitions.
func TestRenderSARIFShape(t *testing.T) {
	out, err := RenderSARIF(Analyzers(), sampleFindings(), "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	schema, _ := doc["$schema"].(string)
	if !strings.Contains(schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want the 2.1.0 schema URI", schema)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "fusionlint" {
		t.Errorf("driver name = %q, want fusionlint", name)
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) != len(Analyzers()) {
		t.Errorf("rules = %d, want one per analyzer (%d)", len(rules), len(Analyzers()))
	}
	ruleIDs := map[string]bool{}
	for _, r := range rules {
		rule := r.(map[string]any)
		id, _ := rule["id"].(string)
		ruleIDs[id] = true
		if desc := rule["shortDescription"].(map[string]any); desc["text"] == "" {
			t.Errorf("rule %s has an empty shortDescription", id)
		}
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v, want an array of 2", run["results"])
	}
	res := results[0].(map[string]any)
	if id, _ := res["ruleId"].(string); !ruleIDs[id] {
		t.Errorf("result ruleId %q does not match any declared rule", id)
	}
	if lvl, _ := res["level"].(string); lvl != "error" {
		t.Errorf("result level = %q, want error", lvl)
	}
	if msg := res["message"].(map[string]any); msg["text"] == "" {
		t.Error("result message.text is empty")
	}
	locs := res["locations"].([]any)
	phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
	uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string)
	if uri != "internal/mesi/dir.go" {
		t.Errorf("artifact uri = %q, want relative forward-slash path", uri)
	}
	if line := phys["region"].(map[string]any)["startLine"].(float64); line != 42 {
		t.Errorf("startLine = %v, want 42", line)
	}
}

func TestRenderSARIFEmptyResults(t *testing.T) {
	out, err := RenderSARIF(Analyzers(), nil, "")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runs[0].Results == nil {
		t.Error("results must be an empty array, not null, when there are no findings")
	}
}

// TestWaiverAudit inventories the waiveraudit fixture: known directives
// resolve to analyzer names ("ordered" to maporder), reasonless waivers
// surface with an empty reason, and typo'd directives are labeled unknown.
func TestWaiverAudit(t *testing.T) {
	pkg := fixture(t, "waiveraudit")
	records := AuditWaivers(Analyzers(), []*Package{pkg}, "")
	if len(records) != 4 {
		t.Fatalf("got %d waiver records, want 4: %+v", len(records), records)
	}
	for i := 1; i < len(records); i++ {
		if records[i-1].File > records[i].File ||
			(records[i-1].File == records[i].File && records[i-1].Line > records[i].Line) {
			t.Errorf("records not sorted by file,line: %+v", records)
		}
	}
	type key struct {
		analyzer  string
		hasReason bool
	}
	counts := map[key]int{}
	for _, r := range records {
		if !strings.HasSuffix(r.File, "audit.go") {
			t.Errorf("record file = %q, want .../audit.go", r.File)
		}
		counts[key{r.Analyzer, r.Reason != ""}]++
	}
	want := map[key]int{
		{"maporder", true}:       1, // //lint:ordered with a reason
		{"lockguard", true}:      1,
		{"maporder", false}:      1, // reasonless
		{"unknown:ordred", true}: 1, // typo'd directive
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("audit records for %+v = %d, want %d (all: %+v)", k, counts[k], n, records)
		}
	}
}
