package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// MapOrder flags `range` statements over maps whose bodies can observe Go's
// randomized iteration order — the classic silent replay-breaker in a
// simulator that promises bit-identical runs. A map range is accepted only
// when its body is order-insensitive by construction:
//
//   - it only collects keys/values with `s = append(s, ...)` into slices
//     that are later passed to a sort.* call in the same function;
//   - and/or performs set-inserts `m[k] = v` keyed by a range variable,
//     bumps standalone counters, `continue`s, or early-returns constants.
//
// Anything else — calling functions, writing outer variables, emitting
// output — depends on iteration order and is reported. A deliberate
// exception carries `//lint:ordered <reason>` on (or above) the range line.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Directive: "ordered",
	Doc:       "map iteration whose effect depends on randomized order",
	Scope:     internalScope,
	Run:       runMapOrder,
}

func runMapOrder(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, body := range funcBodies(f) {
			inspectShallow(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok || rng.X == nil {
					return true
				}
				if !isMapType(info.TypeOf(rng.X)) {
					return true
				}
				checkMapRange(p, body, rng)
				return true
			})
		}
	}
}

// checkMapRange vets one map-range statement inside the enclosing function
// body.
func checkMapRange(p *Pass, encl *ast.BlockStmt, rng *ast.RangeStmt) {
	c := &collectChecker{
		pass:   p,
		info:   p.Pkg.Info,
		locals: map[types.Object]bool{},
	}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.info.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
	}
	if !c.stmtOK(rng.Body) {
		p.Reportf(rng.Pos(),
			"range over map %s has an order-dependent body (%s); iterate sorted keys, or waive with //lint:ordered <reason>",
			types.ExprString(rng.X), c.why)
		return
	}
	// Counters may not feed any other computation in the loop: a counter
	// read back by an insert or append would leak iteration order.
	for _, obj := range sortedObjs(c.counters) {
		if c.reads[obj] {
			p.Reportf(rng.Pos(),
				"range over map %s increments %s and reads it back; the result depends on iteration order",
				types.ExprString(rng.X), obj.Name())
			return
		}
	}
	// Every collected slice must flow into a sort.* call after the loop.
	for _, obj := range sortedObjs(c.collected) {
		if !sortedAfter(c.info, encl, rng.End(), obj) {
			p.Reportf(rng.Pos(),
				"%s collects map keys/values but is never passed to a sort.* call; order-dependent use, or waive with //lint:ordered <reason>",
				obj.Name())
		}
	}
}

// collectChecker walks a map-range body and decides whether every statement
// is order-insensitive, recording which outer slices collect elements.
type collectChecker struct {
	pass      *Pass
	info      *types.Info
	locals    map[types.Object]bool // range vars + vars defined in the body
	collected map[types.Object]bool // outer slices appended to
	counters  map[types.Object]bool // outer vars ++/-- only
	reads     map[types.Object]bool // outer objects read anywhere in the body
	why       string                // first reason the body was rejected
}

func (c *collectChecker) reject(why string) bool {
	if c.why == "" {
		c.why = why
	}
	return false
}

func (c *collectChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.BlockStmt:
		for _, st := range s.List {
			if !c.stmtOK(st) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.exprOK(s.Cond) {
			return false
		}
		if !c.stmtOK(s.Body) {
			return false
		}
		return c.stmtOK(s.Else)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return true
		}
		return c.reject(s.Tok.String() + " makes the visited subset order-dependent")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !constantish(c.info, r) {
				return c.reject("early return of a non-constant value")
			}
		}
		return true
	case *ast.IncDecStmt:
		id, ok := ast.Unparen(s.X).(*ast.Ident)
		if !ok {
			return c.reject("increment of a non-identifier")
		}
		if obj := c.info.Uses[id]; obj != nil && !c.locals[obj] {
			if c.counters == nil {
				c.counters = map[types.Object]bool{}
			}
			c.counters[obj] = true
		}
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return c.reject("declaration other than var")
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, v := range vs.Values {
				if !c.exprOK(v) {
					return false
				}
			}
			for _, name := range vs.Names {
				if obj := c.info.Defs[name]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	case *ast.AssignStmt:
		return c.assignOK(s)
	default:
		return c.reject("statement with effects the analyzer cannot prove order-insensitive")
	}
}

func (c *collectChecker) assignOK(s *ast.AssignStmt) bool {
	// x := expr — defines loop-locals; the RHS must still be effect-free.
	if s.Tok == token.DEFINE {
		for _, r := range s.Rhs {
			if !c.exprOK(r) {
				return false
			}
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return true
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return c.reject("multi-assignment to outer state")
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]

	// s = append(s, ...) into an outer slice: collection, checked against a
	// later sort.
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := c.info.Uses[id]
		if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall && obj != nil {
			if fid, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent &&
				builtinNamed(c.info, fid, "append") {
				if base, isBase := ast.Unparen(call.Args[0]).(*ast.Ident); isBase &&
					c.info.Uses[base] == obj {
					for _, a := range call.Args[1:] {
						if !c.exprOK(a) {
							return false
						}
					}
					if !c.locals[obj] {
						if c.collected == nil {
							c.collected = map[types.Object]bool{}
						}
						c.collected[obj] = true
					}
					return true
				}
			}
		}
		// Plain writes are only safe to loop-locals.
		if obj != nil && c.locals[obj] {
			return c.exprOK(rhs)
		}
		return c.reject("assignment to outer variable " + id.Name)
	}

	// m[k] = v set-insert: each range key is distinct, so writes cannot
	// collide across iterations as long as the key involves a range var.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(c.info.TypeOf(idx.X)) {
		if !c.usesLocal(idx.Index) {
			return c.reject("map insert keyed independently of the range variables")
		}
		if !c.exprOK(idx.Index) || !c.exprOK(rhs) {
			return false
		}
		return true
	}

	// field/element writes on loop-locals.
	if root := rootIdent(lhs); root != nil {
		if obj := c.info.Uses[root]; obj != nil && c.locals[obj] {
			return c.exprOK(rhs)
		}
	}
	return c.reject("write to outer state")
}

// exprOK vets an expression read inside the loop: no function calls (other
// than pure builtins and conversions), and it records reads of outer
// objects for the counter cross-check.
func (c *collectChecker) exprOK(e ast.Expr) bool {
	if e == nil {
		return true
	}
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isTypeConversion(c.info, n) {
				return true
			}
			if fid, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent {
				switch {
				case builtinNamed(c.info, fid, "len"),
					builtinNamed(c.info, fid, "cap"),
					builtinNamed(c.info, fid, "min"),
					builtinNamed(c.info, fid, "max"):
					return true
				}
			}
			c.reject("function call " + types.ExprString(n.Fun) + " inside the loop body")
			ok = false
			return false
		case *ast.FuncLit:
			c.reject("closure inside the loop body")
			ok = false
			return false
		case *ast.Ident:
			if obj := c.info.Uses[n]; obj != nil && !c.locals[obj] {
				if c.reads == nil {
					c.reads = map[types.Object]bool{}
				}
				c.reads[obj] = true
			}
		}
		return true
	})
	return ok
}

// usesLocal reports whether e mentions a range variable or loop-local.
func (c *collectChecker) usesLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.info.Uses[id]; obj != nil && c.locals[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// constantish reports whether e is a literal, true/false/nil, or a named
// constant — values an early return may safely propagate regardless of
// which element triggered it.
func constantish(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return false
		}
		switch obj.(type) {
		case *types.Const, *types.Nil:
			return true
		}
	}
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	return false
}

// rootIdent finds the base identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to some sort.* call located
// after pos within the enclosing function body.
func sortedAfter(info *types.Info, encl *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if path, _, ok := pkgSelector(info, sel); !ok || path != "sort" {
			return true
		}
		for _, a := range call.Args {
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// sortedObjs returns the collected objects in deterministic (position)
// order, so fusionlint's own reports replay.
func sortedObjs(set map[types.Object]bool) []types.Object {
	objs := make([]types.Object, 0, len(set))
	for o := range set {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	return objs
}
