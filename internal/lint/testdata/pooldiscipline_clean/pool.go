// Package pooldisciplineclean follows the free-list ownership protocol:
// every acquired value is released exactly once or transferred to a new
// owner on every path (panic/Failf paths exempt).
package pooldisciplineclean

import (
	"fusion/internal/mesi"
	"fusion/internal/sim"
)

type ctrl struct {
	pool    *mesi.MsgPool
	out     func(*mesi.Msg)
	pending *mesi.Msg
}

// straight releases on the only path.
func (c *ctrl) straight() {
	m := c.pool.Get()
	m.Ver = 1
	c.pool.Put(m)
}

// bothArms releases on every arm of the branch.
func (c *ctrl) bothArms(flag bool) {
	m := c.pool.Get()
	if flag {
		c.pool.Put(m)
	} else {
		c.pool.Put(m)
	}
}

// send transfers ownership to the fabric: no release owed here.
func (c *ctrl) send() {
	m := c.pool.Get()
	m.Ver = 2
	c.out(m)
}

// park transfers ownership into a field; a later handler releases it.
func (c *ctrl) park() {
	m := c.pool.Get()
	c.pending = m
}

// handoff transfers ownership to the caller.
func (c *ctrl) handoff() *mesi.Msg {
	m := c.pool.Get()
	return m
}

// failfPath may abandon the message, but only on a path that aborts the
// simulation — exempt from release accounting.
func (c *ctrl) failfPath() {
	m := c.pool.Get()
	if m.Ver == 0 {
		sim.Failf("ctrl", 0, "idle", "unversioned message")
	}
	c.pool.Put(m)
}

// perIteration acquires and releases once per loop iteration; the back
// edge must not look like a double release.
func (c *ctrl) perIteration(n int) {
	for i := 0; i < n; i++ {
		m := c.pool.Get()
		c.pool.Put(m)
	}
}

// drainBatch releases values it never owned the acquisition of (they
// arrive as parameters): parameters are untracked, nothing to report.
func (c *ctrl) drainBatch(batch []*mesi.Msg) {
	for _, m := range batch {
		c.pool.Put(m)
	}
}

// capture hands the message to a closure, which owns it from then on.
func (c *ctrl) capture() func() {
	m := c.pool.Get()
	return func() { c.pool.Put(m) }
}
