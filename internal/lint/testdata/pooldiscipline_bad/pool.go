// Package pooldisciplinebad violates the free-list ownership protocol:
// pooled values leak on some path, are double-released, or are overwritten
// while still owned.
package pooldisciplinebad

import (
	"fusion/internal/acc"
	"fusion/internal/mesi"
)

type ctrl struct {
	pool *mesi.MsgPool
}

// branchLeak forgets the release on the flag=false arm.
func (c *ctrl) branchLeak(flag bool) {
	m := c.pool.Get() // want "not released on every path"
	if flag {
		c.pool.Put(m)
	}
}

// loopLeak only releases when the loop body runs.
func (c *ctrl) loopLeak(n int) {
	m := c.pool.Get() // want "not released on every path"
	for i := 0; i < n; i++ {
		c.pool.Put(m)
		return
	}
}

// double releases twice on the flag=true path.
func (c *ctrl) double(flag bool) {
	m := c.pool.Get()
	if flag {
		c.pool.Put(m)
	}
	c.pool.Put(m) // want "static double release"
}

// overwrite drops the first message by re-acquiring into the same variable.
func (c *ctrl) overwrite() {
	m := c.pool.Get()
	m = c.pool.Get() // want "overwritten by a new acquisition"
	c.pool.Put(m)
}

// tileLeak exercises the acc pool: the early return leaks.
func tileLeak(p *acc.TileMsgPool, flag bool) {
	m := p.Get() // want "not released on every path"
	if flag {
		return
	}
	p.Put(m)
}

// txn/tctrl model a controller-local transaction free list (the newTxn /
// freeTxn convention pooldiscipline tracks by method name).
type txn struct{ addr uint64 }

type tctrl struct{ free []*txn }

func (t *tctrl) newTxn() *txn {
	if n := len(t.free); n > 0 {
		x := t.free[n-1]
		t.free = t.free[:n-1]
		return x
	}
	return &txn{}
}

func (t *tctrl) freeTxn(x *txn) { t.free = append(t.free, x) }

// txnLeak forgets to free the transaction when flag is set.
func (t *tctrl) txnLeak(flag bool) {
	x := t.newTxn() // want "not released on every path"
	x.addr = 1
	if !flag {
		t.freeTxn(x)
	}
}
