// Package wallclockbad reads the host's wall clock — simulation results
// must depend only on the engine clock.
package wallclockbad

import "time"

// Stamp reads and waits on real time.
func Stamp() int64 {
	t := time.Now()              // want "time.Now"
	time.Sleep(time.Millisecond) // want "time.Sleep"
	return t.UnixNano()
}
