// Package wallclockclean uses the time package only for duration types and
// arithmetic — no clock reads, nothing to flag.
package wallclockclean

import "time"

// AtGHz converts a cycle count to simulated elapsed time at 1 GHz.
func AtGHz(cycles uint64) time.Duration {
	return time.Duration(cycles) * time.Nanosecond
}
