// Package droppederrbad discards errors from module-local functions in
// every statement shape the analyzer checks.
package droppederrbad

import "errors"

// apply returns an error the callers below drop.
func apply(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// Drop calls apply as a bare statement, deferred, and as a goroutine.
func Drop(n int) {
	apply(n)       // want "silently discarded"
	defer apply(n) // want "silently discarded"
	go apply(n)    // want "silently discarded"
}
