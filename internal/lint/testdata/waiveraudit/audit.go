// Package waiveraudit is the -waivers fixture: a spread of //lint:
// directives — known analyzers, the maporder "ordered" alias, a reasonless
// waiver, and a typo'd directive — that AuditWaivers must inventory.
package waiveraudit

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //guard: mu
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:ordered integer addition commutes; the sum is order-free
		total += v
	}
	return total
}

func (c *counter) bump() {
	c.n++ //lint:lockguard precondition: c.mu held by every caller
}

func (c *counter) read() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
	return c.n
}

func reasonless(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:ordered
		total += v
	}
	return total
}

func typod(m map[string]int) int {
	total := 0
	for _, v := range m { //lint:ordred typo'd directive: audit labels it unknown
		total += v
	}
	return total
}
