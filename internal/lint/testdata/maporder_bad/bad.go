// Package maporderbad holds map iterations the maporder analyzer must flag:
// each one lets Go's randomized iteration order leak into a result.
package maporderbad

// Sum accumulates floats in iteration order; float addition does not
// commute bitwise, so the total differs run to run.
func Sum(m1 map[string]float64) float64 {
	var total float64
	for _, v := range m1 { // want "order-dependent body"
		total += v
	}
	return total
}

// Keys collects the keys but never sorts them.
func Keys(m2 map[string]int) []string {
	var keys []string
	for k := range m2 { // want "never passed to a sort"
		keys = append(keys, k)
	}
	return keys
}

// Number reads a counter back inside the loop, numbering the entries in
// visit order.
func Number(m3 map[string]int) map[string]int {
	out := make(map[string]int)
	n := 0
	for k := range m3 { // want "reads it back"
		n++
		out[k] = n
	}
	return out
}
