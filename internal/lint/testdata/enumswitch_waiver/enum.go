// Package enumswitchwaiver exercises //lint:enumswitch waivers on
// diagnostic-only switches that intentionally ignore unlisted members.
package enumswitchwaiver

type color uint8

const (
	red color = iota
	green
	blue
)

// traced logs only the members it cares about; the waiver records why the
// others are ignored.
func traced(c color) string {
	switch c { //lint:enumswitch diagnostic-only trace filter; unlisted members intentionally untraced
	case red:
		return "red"
	}
	return ""
}

// ownLine carries the waiver on its own line, annotating the switch below.
func ownLine(c color) string {
	//lint:enumswitch diagnostic-only trace filter; unlisted members intentionally untraced
	switch c {
	case green:
		return "green"
	}
	return ""
}

// unwaived is still reported.
func unwaived(c color) string {
	switch c { // want "missing blue"
	case red, green:
		return "warm"
	}
	return ""
}
