// Package maporderclean holds map iterations the maporder analyzer must
// accept: every body is order-insensitive by construction.
package maporderclean

import "sort"

// Keys collects and sorts — the canonical deterministic sweep.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert set-inserts keyed by a range variable; distinct keys cannot
// collide across iterations.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string)
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Count bumps a standalone counter that nothing reads back.
func Count(m map[string]bool) int {
	n := 0
	for _, ok := range m {
		if ok {
			n++
		}
	}
	return n
}

// Any early-returns a constant: whichever element triggers it, the result
// is the same.
func Any(m map[string]bool) bool {
	for range m {
		return true
	}
	return false
}
