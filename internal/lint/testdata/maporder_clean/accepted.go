package maporderclean

import "sort"

const sentinel = -1

// Locals exercises the loop-local machinery: var declarations, :=
// definitions, writes and increments to locals, field and element writes
// rooted at locals, and pure-builtin calls — all order-insensitive.
func Locals(m map[string][]int) []string {
	type acc struct {
		n    int
		tags [2]int
	}
	keys := make([]string, 0, len(m))
	for k, vs := range m {
		var a acc
		limit := len(vs)
		a.n = min(limit, cap(vs))
		a.tags[0] = max(a.n, 0)
		limit++
		total := a.n + int(uint8(limit))
		if total == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Branches exercises if-with-init, else chains, nested blocks, and early
// returns of named constants and nil.
func Branches(m map[string]int) int {
	for _, v := range m {
		if w := v * 2; w > 10 {
			return sentinel
		} else if w < -10 {
			{
				return sentinel
			}
		}
	}
	return 0
}

// Nothing early-returns nil, a constantish value.
func Nothing(m map[string]int) error {
	for range m {
		return nil
	}
	return nil
}

// Pairs set-inserts under a key derived from the range variable through
// arithmetic, with a multi-argument append into a sorted collection.
func Pairs(m map[int]int) []int {
	out := make(map[int]bool)
	var order []int
	for k, v := range m {
		out[k*2+1] = true
		order = append(order, k, v)
	}
	sort.Ints(order)
	n := 0
	for range out {
		n++
	}
	return order[:n*0]
}
