// Package rawpanicclean shows the two panic shapes that stay legal: raising
// a *sim.ProtocolError (via sim.Failf) and rethrowing a recover() value.
package rawpanicclean

import "fusion/internal/sim"

// Fail raises a structured protocol failure.
func Fail(eng *sim.Engine, state string) {
	sim.Failf("fixture", eng.Now(), state, "invariant broken")
}

// Guard converts protocol panics to errors and rethrows everything else —
// the sim.Engine.RunE boundary idiom.
func Guard(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*sim.ProtocolError); ok {
				err = pe
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}
