// Package maporderwaiver exercises //lint:ordered waivers: a justified
// waiver suppresses the finding (inline or on its own line), a reasonless
// one suppresses nothing and is itself reported.
package maporderwaiver

// Total is order-dependent in the analyzer's conservative model but waived:
// integer addition commutes, so the sum is order-free.
func Total(m1 map[string]int) int {
	total := 0
	for _, v := range m1 { //lint:ordered integer addition commutes; the sum is order-free
		total += v
	}
	return total
}

// OwnLine carries the waiver on its own line, annotating the range below.
func OwnLine(m2 map[string]int) int {
	total := 0
	//lint:ordered integer addition commutes; the sum is order-free
	for _, v := range m2 {
		total += v
	}
	return total
}

// Unjustified carries a waiver with no reason: the finding stays, and the
// empty waiver earns its own diagnostic.
func Unjustified(m3 map[string]int) int {
	total := 0
	for _, v := range m3 { //lint:ordered
		total += v
	}
	return total
}
