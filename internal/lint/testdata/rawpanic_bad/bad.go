// Package rawpanicbad fails without protocol context: a bare panic gives a
// stack trace where the structured-diagnostics contract wants component,
// cycle, and state.
package rawpanicbad

import "log"

// Explode aborts both ways the analyzer forbids.
func Explode(state string) {
	if state == "bad" {
		panic("protocol wedged: " + state) // want "raw panic"
	}
	log.Fatalf("unreachable %s", state) // want "log.Fatalf"
}
