// Package hotmapwaiver exercises //lint:hotmap waivers: a justified
// waiver (inline or own-line) suppresses the finding; an unwaived map
// touch in the same package still fires.
package hotmapwaiver

type ctrl struct {
	debug map[uint64]int
	stale map[uint64]int
}

// Tick carries one justified inline waiver, one justified own-line
// waiver, and one unwaived access that must still be reported.
func (c *ctrl) Tick(now uint64) {
	c.debug[now]++ //lint:hotmap debug-only table, nil unless -d; never allocated in measured runs
	//lint:hotmap debug-only table, nil unless -d; never allocated in measured runs
	c.debug[now+1]++
	c.stale[now] = 0 // want "map index in hot function Tick"
}
