// Package lockguardbad touches //guard:-annotated fields without holding
// their mutex on every path into the access.
package lockguardbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //guard: mu
}

// bare reads the guarded field with no lock at all.
func (c *counter) bare() int {
	return c.n // want "accessed without holding c.mu"
}

// halfLocked only holds the mutex on one arm of the branch, so the access
// after the join is unprotected on the other.
func (c *counter) halfLocked(flag bool) {
	if flag {
		c.mu.Lock()
	}
	c.n++ // want "accessed without holding c.mu"
	if flag {
		c.mu.Unlock()
	}
}

// afterUnlock releases the mutex and keeps writing.
func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want "accessed without holding c.mu"
}

// wrongMutex holds a different lock than the one guarding the field.
type pair struct {
	mu    sync.Mutex
	other sync.Mutex
	v     int //guard: mu
}

func (p *pair) wrongMutex() {
	p.other.Lock()
	p.v++ // want "accessed without holding p.mu"
	p.other.Unlock()
}

// badAnnot names a mutex that is not a sibling field.
type badAnnot struct {
	mu sync.Mutex
	x  int //guard: lock // want "not a field of this struct"
}

func (b *badAnnot) use() int { return b.x }
