// Package enumswitchbad switches over protocol enums without covering
// every member and without an explicit default.
package enumswitchbad

// color is a protocol enum: a named integer type whose consts form the
// dense run 0..2.
type color uint8

const (
	red color = iota
	green
	blue
)

// colorPoison is a sentinel outside the dense run (the 0xFD pool-poison
// idiom): not a member, so switches need not cover it.
const colorPoison color = 0xFD

// name misses blue.
func name(c color) string {
	switch c { // want "missing blue"
	case red:
		return "red"
	case green:
		return "green"
	}
	return "?"
}

// onlyRed misses two members; both are listed.
func onlyRed(c color) bool {
	switch c { // want "missing green, blue"
	case red:
		return true
	}
	return false
}

// viaExpr switches over an expression of enum type, not just a variable.
type holder struct{ c color }

func (h *holder) kind() color { return h.c }

func viaExpr(h *holder) int {
	switch h.kind() { // want "missing red"
	case green, blue:
		return 1
	}
	return 0
}
