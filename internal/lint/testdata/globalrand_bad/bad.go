// Package globalrandbad draws from math/rand's global source, which ignores
// the experiment's seed and differs across processes.
package globalrandbad

import "math/rand"

// Pick uses package-level functions backed by shared global state.
func Pick(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle"
	return rand.Intn(n)                // want "rand.Intn"
}
