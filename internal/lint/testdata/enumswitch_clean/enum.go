// Package enumswitchclean switches over protocol enums exhaustively, or
// with an explicit default, or over types that are not enums at all.
package enumswitchclean

type color uint8

const (
	red color = iota
	green
	blue
)

const colorPoison color = 0xFD // sentinel: not a member

// exhaustive covers every member.
func exhaustive(c color) string {
	switch c {
	case red:
		return "red"
	case green:
		return "green"
	case blue:
		return "blue"
	}
	return "poisoned"
}

// defaulted handles the unexpected explicitly.
func defaulted(c color) string {
	switch c {
	case red:
		return "red"
	default:
		return "other"
	}
}

// nonConstant compares against a runtime value; the analyzer cannot reason
// about coverage and skips the switch.
func nonConstant(c, d color) bool {
	switch c {
	case d:
		return true
	}
	return false
}

// sparse's consts do not start a dense run at 0: not an enum.
type sparse uint8

const (
	sparseA sparse = 1
	sparseB sparse = 2
)

func sparseSwitch(s sparse) bool {
	switch s {
	case sparseA:
		return true
	}
	return false
}

// single has one member: too small to be an enum.
type single uint8

const onlyOne single = 0

func singleSwitch(s single) bool {
	switch s {
	case onlyOne:
		return true
	}
	return false
}

// strings are not integer enums.
func stringSwitch(s string) bool {
	switch s {
	case "a":
		return true
	}
	return false
}

// tagless switches are ordinary if-chains.
func tagless(c color) bool {
	switch {
	case c == red:
		return true
	}
	return false
}
