// Package hotmapbad touches runtime maps from per-cycle entry points —
// every access hashes the key where a dense slot array or occupancy
// bitmap would cost an index.
package hotmapbad

type ctrl struct {
	txns    map[uint64]int
	waiting map[uint64][]int
}

// Tick is a per-cycle entry point: map hashing here runs once per
// simulated cycle.
func (c *ctrl) Tick(now uint64) {
	if c.txns[now] > 0 { // want "map index in hot function Tick"
		c.txns[now] = 0 // want "map index in hot function Tick"
	}
}

// Handle is a per-message entry point: ranges and deletes hash (and the
// range order is nondeterministic on top).
func (c *ctrl) Handle(a uint64) {
	for k := range c.waiting { // want "map range in hot function Handle"
		_ = k
	}
	delete(c.txns, a) // want "map delete in hot function Handle"
}

// Deliver's closures run per event and are just as hot.
func (c *ctrl) Deliver(m int) {
	fire := func() {
		c.txns[uint64(m)]++ // want "map index in hot function Deliver"
	}
	fire()
}

// worker is a hot free function (fusiond job-execution body).
func worker(jobs map[int]string) {
	_ = jobs[0] // want "map index in hot function worker"
}
