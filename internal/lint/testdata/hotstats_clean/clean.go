// Package hotstatsclean interns its counters at construction and only
// bumps handles on the hot path — the discipline hotstats enforces.
package hotstatsclean

import "fusion/internal/stats"

type ctrl struct {
	st     *stats.Set
	cTicks *stats.Counter
	cMsgs  *stats.Counter
}

// newCtrl resolves every hot counter once; string-keyed calls are fine in
// construction code.
func newCtrl(st *stats.Set) *ctrl {
	st.Inc("ctrl.built")
	return &ctrl{
		st:     st,
		cTicks: st.Counter("ctrl.ticks"),
		cMsgs:  st.Counter("ctrl.msgs"),
	}
}

// Tick bumps interned handles only.
func (c *ctrl) Tick(now uint64) {
	c.cTicks.Inc()
	c.cTicks.Add(2)
}

// Deliver likewise, including inside its closure.
func (c *ctrl) Deliver(m int) {
	fire := func() { c.cMsgs.Inc() }
	fire()
}

// report is cold (invoked once at exit); string keys are fine here.
func (c *ctrl) report() int64 {
	return c.st.Get("ctrl.ticks")
}
