// Job-execution bodies using interned handles only, plus cold free
// functions where string keys remain fine.
package hotstatsclean

import "fusion/internal/stats"

type sched struct {
	cRan *stats.Counter
}

func (s *sched) worker()  { s.cRan.Inc() }
func (s *sched) safeRun() { s.cRan.Inc() }

// BuildCell bumps handles only.
func BuildCell(c *stats.Counter) {
	c.Inc()
}

// setup is a cold free function: string-keyed calls are fine here.
func setup(st *stats.Set) *sched {
	st.Inc("sched.built")
	return &sched{cRan: st.Counter("jobs.ran")}
}
