// Package globalrandclean threads a seeded *rand.Rand — the deterministic
// idiom the analyzer demands.
package globalrandclean

import "math/rand"

// New seeds a fresh source (rand.New / rand.NewSource are the allowed
// constructors).
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Pick draws from the threaded source, never the global one.
func Pick(r *rand.Rand, n int) int {
	return r.Intn(n)
}
