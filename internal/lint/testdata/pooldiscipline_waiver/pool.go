// Package pooldisciplinewaiver exercises //lint:pooldiscipline waivers: a
// justified waiver (inline or own-line) suppresses the finding; an
// unwaived violation in the same package still fires.
package pooldisciplinewaiver

import "fusion/internal/mesi"

type ctrl struct {
	pool *mesi.MsgPool
}

// inlineWaiver holds the message past return by design (post-mortem dump
// keeps it); the inline waiver documents that.
func (c *ctrl) inlineWaiver(flag bool) {
	m := c.pool.Get() //lint:pooldiscipline post-mortem dump keeps the message; process exits right after
	if flag {
		c.pool.Put(m)
	}
}

// ownLineWaiver carries the waiver on its own line, annotating the acquire
// below.
func (c *ctrl) ownLineWaiver(flag bool) {
	//lint:pooldiscipline post-mortem dump keeps the message; process exits right after
	m := c.pool.Get()
	if flag {
		c.pool.Put(m)
	}
}

// unwaived still violates and is still reported.
func (c *ctrl) unwaived(flag bool) {
	m := c.pool.Get() // want "not released on every path"
	if flag {
		c.pool.Put(m)
	}
}
