// Package ctxcancelwaiver exercises //lint:ctxcancel waivers.
package ctxcancelwaiver

import "context"

// daemonRoot's context lives for the whole process by design; the waiver
// records that.
func daemonRoot(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) //lint:ctxcancel process-lifetime root context; canceled by OS teardown only
	return ctx
}

// ownLine carries the waiver on its own line, annotating the acquire
// below.
func ownLine(parent context.Context) context.Context {
	//lint:ctxcancel process-lifetime root context; canceled by OS teardown only
	ctx, _ := context.WithCancel(parent)
	return ctx
}

// unwaived is still reported.
func unwaived(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "is discarded"
	return ctx
}
