// The fusiond job-execution bodies are hot too: worker and safeRun wrap
// every job, and BuildCell — a free function, which the original
// receiver-only match missed — encloses an entire simulation.
package hotstatsbad

import "fusion/internal/stats"

type sched struct {
	st *stats.Set
}

func (s *sched) worker() {
	s.st.Inc("jobs.ran") // want "stats.Set.Inc in hot function worker"
}

func (s *sched) safeRun() {
	s.st.Inc("jobs.safe") // want "stats.Set.Inc in hot function safeRun"
}

// BuildCell is receiver-less: the regression this fixture pins.
func BuildCell(st *stats.Set) {
	st.Inc("cells.built") // want "stats.Set.Inc in hot function BuildCell"
}
