// Package hotstatsbad bumps string-keyed counters from per-cycle entry
// points — every call re-hashes the name where an interned handle would be
// a pointer dereference.
package hotstatsbad

import "fusion/internal/stats"

type ctrl struct {
	st *stats.Set
}

// Tick is a per-cycle entry point: string-keyed stat calls here run once
// per simulated cycle.
func (c *ctrl) Tick(now uint64) {
	c.st.Inc("ctrl.ticks")          // want "stats.Set.Inc in hot function Tick"
	c.st.Add("ctrl.work", 3)        // want "stats.Set.Add in hot function Tick"
	c.st.Counter("ctrl.lazy").Inc() // want "stats.Set.Counter in hot function Tick"
}

// Deliver is a per-message entry point; closures declared here run per
// event and are just as hot.
func (c *ctrl) Deliver(m int) {
	fire := func() {
		c.st.Inc("ctrl.msgs") // want "stats.Set.Inc in hot function Deliver"
	}
	fire()
}
