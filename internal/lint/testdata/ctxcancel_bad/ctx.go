// Package ctxcancelbad leaks context cancel funcs: discarded outright,
// skipped on a path, or overwritten while still pending.
package ctxcancelbad

import (
	"context"
	"time"
)

// discarded throws the cancel func away; the context can never be
// canceled.
func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want "is discarded"
	return ctx
}

// branchLeak cancels only when flag is set.
func branchLeak(parent context.Context, flag bool) {
	ctx, cancel := context.WithCancel(parent) // want "not called on every path"
	if flag {
		cancel()
	}
	_ = ctx
}

// earlyReturn leaks on the error-free path's early exit.
func earlyReturn(parent context.Context, flag bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want "not called on every path"
	if flag {
		return nil
	}
	_ = ctx
	cancel()
	return nil
}

// overwrite rebinds cancel while the first one is still pending.
func overwrite(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // want "may be overwritten"
	_ = ctx
	ctx2, cancel2 := context.WithCancel(parent)
	cancel = cancel2
	_ = ctx2
	defer cancel()
}
