package droppederrclean

// Calls whose results carry no error are fine to use as bare statements,
// whatever shape they take: no results, non-error results, tuples without
// an error, methods, deferred calls, and dynamic callees.

type gauge struct{ n int }

func (g *gauge) bump()             { g.n++ }
func (g *gauge) read() int         { return g.n }
func (g *gauge) both() (int, bool) { return g.n, g.n > 0 }

func note(int) {}

// Bare runs every no-error call form as a statement.
func Bare(g *gauge) {
	g.bump()
	g.read()
	g.both()
	note(g.read())
	defer g.bump()
	go note(0)
	f := func() int { return 1 }
	f()
}
