// Package droppederrclean handles or explicitly assigns every error — the
// blank assignment is a visible, greppable decision, unlike a bare call.
package droppederrclean

import "errors"

func apply(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// Use checks one error and explicitly discards another.
func Use(n int) error {
	if err := apply(n); err != nil {
		return err
	}
	_ = apply(n + 1)
	return nil
}
