// Package ctxcancelclean handles every cancel func: deferred, called on
// all paths, or handed to an owner that will call it.
package ctxcancelclean

import (
	"context"
	"time"
)

// deferred is the canonical form.
func deferred(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}

// allPaths calls cancel explicitly on every path.
func allPaths(parent context.Context, flag bool) {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	if flag {
		cancel()
		return
	}
	_ = ctx
	cancel()
}

type job struct {
	ctx    context.Context
	cancel context.CancelFunc
}

// stored hands the cancel func to a job struct; the job's owner calls it.
func stored(parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{ctx: ctx, cancel: cancel}
}

// passed hands the cancel func to a callee.
func passed(parent context.Context, sink func(context.CancelFunc)) {
	ctx, cancel := context.WithDeadline(parent, time.Time{})
	sink(cancel)
	_ = ctx
}

// captured hands the cancel func to a closure.
func captured(parent context.Context) func() {
	ctx, cancel := context.WithCancel(parent)
	_ = ctx
	return func() { cancel() }
}
