// Package cfgshapes holds function bodies exercising the CFG builder's
// tricky corners: labeled break/continue, goto, select, defer ordering,
// fallthrough, and terminating calls. The cfg_test suite builds a CFG per
// function and asserts structural properties.
package cfgshapes

import "fusion/internal/sim"

func labeledBreak(grid [][]int) int {
	found := -1
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == 0 {
				found = j
				break outer
			}
		}
	}
	return found
}

func labeledContinue(grid [][]int) int {
	n := 0
outer:
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j] == 0 {
				continue outer
			}
			n++
		}
	}
	return n
}

func gotoBackward(n int) int {
	total := 0
again:
	total += n
	n--
	if n > 0 {
		goto again
	}
	return total
}

func gotoForward(flag bool) int {
	if flag {
		goto out
	}
	return 1
out:
	return 2
}

func selectNoDefault(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func selectWithDefault(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

func selectForever() {
	select {}
	// unreachable
}

func deferOrder(cleanup func(int)) {
	defer cleanup(1)
	defer cleanup(2)
	cleanup(0)
}

func panicEdge(flag bool, f func()) {
	if flag {
		panic("boom")
	}
	f()
}

func failfEdge(flag bool, f func()) {
	if flag {
		sim.Failf("cfg", 0, "idle", "boom")
	}
	f()
}

func fallThrough(n int) int {
	out := 0
	switch n {
	case 0:
		out++
		fallthrough
	case 1:
		out += 10
	case 2:
		out += 7
	}
	return out
}

func infiniteFor(f func()) {
	for {
		f()
	}
}

func condForExits(n int, f func()) {
	for i := 0; i < n; i++ {
		f()
	}
}

func bothArmsReturn(flag bool) int {
	if flag {
		return 1
	} else {
		return 2
	}
}
