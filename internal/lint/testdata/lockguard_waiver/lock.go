// Package lockguardwaiver exercises //lint:lockguard waivers: a private
// helper whose precondition is "mutex held by caller" waives its accesses
// with that reason.
package lockguardwaiver

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //guard: mu
}

// bump's precondition: c.mu held by every caller.
func (c *counter) bump() {
	c.n++ //lint:lockguard precondition: c.mu held by every caller (inc and add below)
}

// ownLine carries the waiver on its own line.
func (c *counter) bumpBy(d int) {
	//lint:lockguard precondition: c.mu held by every caller (inc and add below)
	c.n += d
}

func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

func (c *counter) add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpBy(d)
}

// unwaived is still reported.
func (c *counter) unwaived() int {
	return c.n // want "accessed without holding c.mu"
}
