// Package hotmapclean keeps its hot paths on dense state — slot-indexed
// slices, occupancy bitmaps, and flat.Map — and confines runtime maps to
// cold construction and reporting code.
package hotmapclean

import (
	"math/bits"

	"fusion/internal/flat"
)

type ctrl struct {
	txns     []int             // parallel to MSHR slots
	occupied uint64            // occupancy bitmap over txns
	sparse   *flat.Map[uint64] // genuinely sparse keys
	names    map[int]string    // cold-path only
}

// newCtrl builds the dense state; map literals and generic instantiation
// (an IndexExpr in the AST) are fine here and in hot bodies alike.
func newCtrl() *ctrl {
	return &ctrl{
		txns:   make([]int, 64),
		sparse: flat.New[uint64](64),
		names:  map[int]string{0: "boot"},
	}
}

// Tick walks the occupancy bitmap and indexes slices — no hashing.
func (c *ctrl) Tick(now uint64) {
	for w := c.occupied; w != 0; w &= w - 1 {
		c.txns[bits.TrailingZeros64(w)]++
	}
}

// Handle uses flat.Map for the sparse table; a generic IndexExpr
// (flat.New[uint64]) must not be mistaken for a map index.
func (c *ctrl) Handle(a uint64) {
	if v, ok := c.sparse.Get(a); ok {
		c.sparse.Put(a, v+1)
	}
	if c.sparse.Len() > 32 {
		c.sparse = flat.New[uint64](64)
	}
}

// report is cold (invoked once at exit); map use is fine here.
func (c *ctrl) report() string {
	out := ""
	for _, n := range c.names {
		out += n
	}
	delete(c.names, 0)
	return out
}
