// Package lockguardclean holds the annotated mutex across every access to
// its guarded fields.
package lockguardclean

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //guard: mu — demo counter
}

// deferred is the hold-until-return idiom: defer Unlock keeps the lock
// held for the rest of the function.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// paired brackets the access explicitly.
func (c *counter) paired() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// bothArms takes the lock before the branch; both arms are covered.
func (c *counter) bothArms(flag bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if flag {
		c.n = 1
	} else {
		c.n = 2
	}
}

// relock drops and retakes the lock between accesses.
func (c *counter) relock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// rwGuard accepts RLock for reads (the analyzer does not distinguish
// read/write accesses).
type rwGuard struct {
	mu sync.RWMutex
	m  map[string]int //guard: mu
}

func (g *rwGuard) read(k string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.m[k]
}

// unguarded fields need no lock.
type mixed struct {
	mu   sync.Mutex
	hot  int //guard: mu
	cold int
}

func (m *mixed) coldAccess() int { return m.cold }

func (m *mixed) hotAccess() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hot
}

// closureLocked locks inside the closure that does the access.
func (c *counter) closureLocked() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}
