package lint

// Fixture-driven analyzer tests. Each analyzer has a bad fixture under
// testdata/ whose `// want "substr"` comments pin the expected findings to
// exact file:line positions, and a clean fixture that must pass silently.
// The waiver fixture exercises //lint:ordered suppression (inline and
// own-line) plus the reasonless-waiver diagnostic.

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	fixOnce sync.Once
	fixMod  *Module
	fixLdr  *Loader
	fixErr  error
)

// fixture loads testdata/<dir> through a shared loader (the type-checked
// stdlib is memoized across fixtures, so the suite pays its cost once).
func fixture(t *testing.T, dir string) *Package {
	t.Helper()
	fixOnce.Do(func() {
		fixMod, fixErr = FindModule(".")
		if fixErr == nil {
			fixLdr = NewLoader(fixMod)
		}
	})
	if fixErr != nil {
		t.Fatalf("finding module: %v", fixErr)
	}
	pkg, err := fixLdr.Load(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s has a type error: %v", dir, e)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want "substr"` comment: a finding must exist at
// file:line whose message contains substr.
type expectation struct {
	file   string
	line   int
	substr string
}

func wantsOf(pkg *Package) []expectation {
	var out []expectation
	files := make([]string, 0, len(pkg.Sources))
	for f := range pkg.Sources {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for i, line := range strings.Split(string(pkg.Sources[f]), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				out = append(out, expectation{f, i + 1, m[1]})
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over one fixture and matches findings
// against the fixture's want comments, both ways: every want must be hit,
// and every finding must be wanted.
func checkFixture(t *testing.T, an *Analyzer, dir string) {
	t.Helper()
	pkg := fixture(t, dir)
	got := RunAnalyzer(an, pkg, fixMod)
	used := make([]bool, len(got))

	for _, w := range wantsOf(pkg) {
		found := false
		for i, f := range got {
			if !used[i] && f.Pos.Filename == w.file && f.Pos.Line == w.line &&
				strings.Contains(f.Message, w.substr) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: want a [%s] finding containing %q, got none",
				w.file, w.line, an.Name, w.substr)
		}
	}
	for i, f := range got {
		if !used[i] {
			t.Errorf("unexpected finding: %s", f.String(""))
		}
	}
}

func TestMapOrderDetects(t *testing.T)   { checkFixture(t, MapOrder, "maporder_bad") }
func TestMapOrderClean(t *testing.T)     { checkFixture(t, MapOrder, "maporder_clean") }
func TestWallClockDetects(t *testing.T)  { checkFixture(t, WallClock, "wallclock_bad") }
func TestWallClockClean(t *testing.T)    { checkFixture(t, WallClock, "wallclock_clean") }
func TestGlobalRandDetects(t *testing.T) { checkFixture(t, GlobalRand, "globalrand_bad") }
func TestGlobalRandClean(t *testing.T)   { checkFixture(t, GlobalRand, "globalrand_clean") }
func TestRawPanicDetects(t *testing.T)   { checkFixture(t, RawPanic, "rawpanic_bad") }
func TestRawPanicClean(t *testing.T)     { checkFixture(t, RawPanic, "rawpanic_clean") }
func TestDroppedErrDetects(t *testing.T) { checkFixture(t, DroppedErr, "droppederr_bad") }
func TestDroppedErrClean(t *testing.T)   { checkFixture(t, DroppedErr, "droppederr_clean") }
func TestHotStatsDetects(t *testing.T)   { checkFixture(t, HotStats, "hotstats_bad") }
func TestHotStatsClean(t *testing.T)     { checkFixture(t, HotStats, "hotstats_clean") }
func TestHotMapDetects(t *testing.T)     { checkFixture(t, HotMap, "hotmap_bad") }
func TestHotMapClean(t *testing.T)       { checkFixture(t, HotMap, "hotmap_clean") }
func TestHotMapWaiver(t *testing.T)      { checkFixture(t, HotMap, "hotmap_waiver") }

// The v2 CFG/dataflow analyzers: detection, clean, and waiver fixtures
// each. Waiver fixtures pair justified suppressions (inline and own-line)
// with one unwaived violation that must still fire.
func TestPoolDisciplineDetects(t *testing.T) { checkFixture(t, PoolDiscipline, "pooldiscipline_bad") }
func TestPoolDisciplineClean(t *testing.T)   { checkFixture(t, PoolDiscipline, "pooldiscipline_clean") }
func TestPoolDisciplineWaiver(t *testing.T) {
	checkFixture(t, PoolDiscipline, "pooldiscipline_waiver")
}
func TestCtxCancelDetects(t *testing.T)  { checkFixture(t, CtxCancel, "ctxcancel_bad") }
func TestCtxCancelClean(t *testing.T)    { checkFixture(t, CtxCancel, "ctxcancel_clean") }
func TestCtxCancelWaiver(t *testing.T)   { checkFixture(t, CtxCancel, "ctxcancel_waiver") }
func TestLockGuardDetects(t *testing.T)  { checkFixture(t, LockGuard, "lockguard_bad") }
func TestLockGuardClean(t *testing.T)    { checkFixture(t, LockGuard, "lockguard_clean") }
func TestLockGuardWaiver(t *testing.T)   { checkFixture(t, LockGuard, "lockguard_waiver") }
func TestEnumSwitchDetects(t *testing.T) { checkFixture(t, EnumSwitch, "enumswitch_bad") }
func TestEnumSwitchClean(t *testing.T)   { checkFixture(t, EnumSwitch, "enumswitch_clean") }
func TestEnumSwitchWaiver(t *testing.T)  { checkFixture(t, EnumSwitch, "enumswitch_waiver") }

// lineContaining returns the 1-based line of the first source line holding
// marker, failing the test if the marker is absent.
func lineContaining(t *testing.T, pkg *Package, marker string) (string, int) {
	t.Helper()
	files := make([]string, 0, len(pkg.Sources))
	for f := range pkg.Sources {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for i, line := range strings.Split(string(pkg.Sources[f]), "\n") {
			if strings.Contains(line, marker) {
				return f, i + 1
			}
		}
	}
	t.Fatalf("marker %q not found in fixture", marker)
	return "", 0
}

// TestOrderedWaiver checks the //lint:ordered waiver semantics: a justified
// waiver (inline or on its own line) suppresses the maporder finding, while
// a reasonless one suppresses nothing and is reported itself.
func TestOrderedWaiver(t *testing.T) {
	pkg := fixture(t, "maporder_waiver")
	got := RunAnalyzer(MapOrder, pkg, fixMod)

	badFile, badLine := lineContaining(t, pkg, "range m3")
	wantMsgs := map[string]bool{
		"order-dependent body":    false, // the unjustified range is still reported
		"missing a justification": false, // and so is the empty waiver
	}
	for _, f := range got {
		if f.Pos.Filename != badFile || f.Pos.Line != badLine {
			t.Errorf("finding outside the unjustified range (waiver failed to suppress): %s",
				f.String(""))
			continue
		}
		matched := false
		for sub := range wantMsgs {
			if strings.Contains(f.Message, sub) {
				wantMsgs[sub] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding at the unjustified range: %s", f.String(""))
		}
	}
	for _, sub := range []string{"order-dependent body", "missing a justification"} {
		if !wantMsgs[sub] {
			t.Errorf("%s:%d: want a finding containing %q, got none", badFile, badLine, sub)
		}
	}
}

// TestAnalyzerRoster pins the suite: exactly these eleven rules, each with
// a waiver directive and a scope.
func TestAnalyzerRoster(t *testing.T) {
	want := []string{
		"ctxcancel", "droppederr", "enumswitch", "globalrand", "hotmap",
		"hotstats", "lockguard", "maporder", "pooldiscipline", "rawpanic",
		"wallclock",
	}
	var got []string
	for _, an := range Analyzers() {
		got = append(got, an.Name)
		if an.Directive == "" || an.Scope == nil || an.Run == nil {
			t.Errorf("analyzer %s is missing a directive, scope, or run function", an.Name)
		}
	}
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("analyzer roster = %v, want %v", got, want)
	}
}
