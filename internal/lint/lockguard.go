package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard enforces annotated mutex discipline: a struct field whose doc
// or line comment carries `//guard: <mutex>` may only be read or written
// while `<mutex>` — a sibling field of the same struct — is held on every
// path into the access. Locking is recognized through Lock/RLock calls on
// the mutex and forgotten at Unlock/RUnlock; `defer mu.Unlock()` keeps the
// lock held to the end of the function, which is exactly the hold-until-
// return idiom. The analysis is a must-held (intersection) dataflow over
// the function CFG, so a lock taken on only one arm of a branch does not
// cover an access after the join.
//
// The check is intraprocedural and per-unit: a closure is analyzed with an
// empty lock set. An access that is genuinely protected by a caller's lock
// (a private helper only invoked under the mutex) gets a reasoned
// `//lint:lockguard <reason>` waiver.
var LockGuard = &Analyzer{
	Name:      "lockguard",
	Directive: "lockguard",
	Doc:       "//guard:-annotated field accessed without its mutex held",
	Scope:     anyScope,
	Run:       runLockGuard,
}

// lockState is the must-held set: canonical mutex paths known to be locked
// on every path reaching the current point.
type lockState map[string]bool

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s { //lint:ordered clone of a dataflow fact map; no output depends on order
		out[k] = v
	}
	return out
}

// mergeLockInto intersects: a mutex counts as held at a join only if it is
// held on every inbound edge.
func mergeLockInto(dst, src lockState) bool {
	changed := false
	for k := range dst { //lint:ordered commutative intersection; no output depends on order
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

func runLockGuard(p *Pass) {
	a := &lockAnalysis{
		pass:   p,
		info:   p.Pkg.Info,
		guards: collectGuards(p),
	}
	if len(a.guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, fn := range funcUnits(f) {
			a.checkFunc(fn)
		}
	}
}

// collectGuards gathers `//guard: <field>` annotations from every struct
// type in the package, mapping the guarded field object to the name of its
// mutex field. Annotations naming a non-sibling are reported immediately.
func collectGuards(p *Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					siblings[nm.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				guard, ok := guardDirective(fld)
				if !ok {
					continue
				}
				if !siblings[guard] {
					p.Reportf(fld.Pos(),
						"//guard: names %q, which is not a field of this struct", guard)
					continue
				}
				for _, nm := range fld.Names {
					if v, ok := p.Pkg.Info.Defs[nm].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardDirective extracts the mutex name from a field's `//guard: <name>`
// doc or line comment. Grammar: `//guard: <mutex> [— prose]` — the first
// whitespace-separated token names the mutex; anything after it is
// documentation.
func guardDirective(fld *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//guard:")
			if !ok {
				continue
			}
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

type lockAnalysis struct {
	pass   *Pass
	info   *types.Info
	guards map[*types.Var]string
}

func (a *lockAnalysis) checkFunc(fn funcUnit) {
	c := buildCFG(fn.body, a.info, a.pass.Module)
	transfer := func(blk *cfgBlock, st lockState) lockState {
		for _, n := range blk.nodes {
			a.node(st, n, false)
		}
		return st
	}
	in := forwardFlow(c, lockState{}, cloneLockState, mergeLockInto, transfer)
	for _, blk := range c.blocks {
		st, ok := in[blk]
		if !ok {
			continue
		}
		st = cloneLockState(st)
		for _, n := range blk.nodes {
			a.node(st, n, true)
		}
	}
}

func (a *lockAnalysis) node(st lockState, n ast.Node, report bool) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// The deferred call runs at return, not here: its Lock/Unlock
		// effect is ignored, but its arguments are evaluated now.
		for _, arg := range d.Call.Args {
			a.scan(st, arg, report)
		}
		return
	}
	a.scan(st, n, report)
}

func (a *lockAnalysis) scan(st lockState, n ast.Node, report bool) {
	if n == nil {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if key, op, ok := a.lockOp(m); ok {
				switch op {
				case "Lock", "RLock":
					st[key] = true
				case "Unlock", "RUnlock":
					delete(st, key)
				}
			}
		case *ast.SelectorExpr:
			a.checkAccess(st, m, report)
		}
		return true
	})
}

// lockOp recognizes E.Lock / E.RLock / E.Unlock / E.RUnlock method calls
// where E canonicalizes to a stable path (s.mu, c.group.mu, ...).
func (a *lockAnalysis) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if s := a.info.Selections[sel]; s == nil || s.Kind() != types.MethodVal {
		return "", "", false
	}
	base, okc := canonExpr(a.info, sel.X)
	if !okc {
		return "", "", false
	}
	return base, sel.Sel.Name, true
}

// checkAccess reports a guarded field access whose mutex is not in the
// must-held set.
func (a *lockAnalysis) checkAccess(st lockState, sel *ast.SelectorExpr, report bool) {
	s := a.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	fld, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := a.guards[fld]
	if !guarded {
		return
	}
	base, okc := canonExpr(a.info, sel.X)
	if !okc {
		// Receiver too dynamic to name its mutex; be conservative and
		// report — such accesses should go through a named receiver.
		if report {
			a.pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by //guard: %s but its receiver cannot be resolved to a lockable path",
				fld.Name(), guard)
		}
		return
	}
	if !st[base+"."+guard] {
		if report {
			a.pass.Reportf(sel.Sel.Pos(),
				"field %s is guarded by //guard: %s but accessed without holding %s.%s",
				fld.Name(), guard, exprText(sel.X), guard)
		}
	}
}

// canonExpr canonicalizes a receiver expression to a stable key: an ident
// chain rooted at a named object (s.mu, c.group.mu). The root is keyed by
// its declaration position so shadowed names stay distinct.
func canonExpr(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%s@%d", e.Name, obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := canonExpr(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// exprText renders a receiver path for diagnostics (best effort).
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	}
	return "<expr>"
}
