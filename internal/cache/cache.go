// Package cache provides the generic set-associative storage used by every
// cache in the simulated hierarchy: the host L1D, the shared L2/LLC banks,
// the accelerator tile's private L0X and shared L1X, and (degenerately) the
// scratchpads.
//
// A Line carries the union of the metadata the different protocols need:
// MESI state bits for host-side caches, and the ACC protocol's lease
// timestamps (LTIME/GTIME, Section 3.2 of the paper) for accelerator-tile
// caches. Unused fields stay zero; keeping one Line type avoids a parallel
// generic hierarchy for what is fundamentally the same SRAM array.
package cache

import (
	"fmt"

	"fusion/internal/mem"
	"fusion/internal/sim"
)

// State is a protocol-defined line state. The zero value is Invalid for
// every protocol in this simulator.
type State uint8

// MESI states (host L1, L2 directory-side copies) and the MEI subset the
// shared L1X exposes to the host protocol (Section 3.2: "the shared L1X
// states map to a 3-state MEI protocol").
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line's tag-array entry.
type Line struct {
	Valid bool
	Addr  uint64  // line-aligned address (virtual in the tile, physical host-side)
	PID   mem.PID // process tag (accelerator tile only, Section 3.2)
	Dirty bool
	State State

	// ACC protocol timestamps (absolute cycles).
	LTime uint64 // L0X: read-lease expiry (LTIME)
	WTime uint64 // L0X: write-epoch expiry; 0 when no write epoch held
	GTime uint64 // L1X: latest lease granted to any L0X (GTIME)
	WLock bool   // L1X: a write epoch is outstanding; readers/writers stall

	// PAddr is the translated physical address, recorded at the L1X on fill
	// so writebacks and evictions do not need a second AX-TLB lookup.
	PAddr mem.PAddr

	// Ver is the modeled payload: a per-line version number bumped on every
	// store. The simulator does not track real bytes; version monotonicity
	// lets tests detect lost or stale data anywhere in the hierarchy.
	Ver uint64

	lru uint64 // last-touch stamp for LRU replacement
}

// Params describes a cache geometry.
type Params struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (p Params) Sets() int {
	s := p.SizeBytes / (p.Ways * p.LineBytes)
	if s < 1 {
		return 1
	}
	return s
}

// Array is a set-associative tag/data array with true-LRU replacement.
type Array struct {
	params    Params
	sets      int
	lineShift uint
	lines     []Line // sets*ways, row-major by set
	stamp     uint64
}

// NewArray builds an array. SizeBytes must be a multiple of Ways*LineBytes
// and LineBytes a power of two.
func NewArray(p Params) *Array {
	if p.LineBytes == 0 || p.LineBytes&(p.LineBytes-1) != 0 {
		sim.Failf("cache", 0, "", "line size %d not a power of two", p.LineBytes)
	}
	sets := p.Sets()
	if sets*p.Ways*p.LineBytes != p.SizeBytes {
		sim.Failf("cache", 0, "", "size %d not divisible into %d ways of %d-byte lines",
			p.SizeBytes, p.Ways, p.LineBytes)
	}
	shift := uint(0)
	for 1<<shift < p.LineBytes {
		shift++
	}
	return &Array{
		params:    p,
		sets:      sets,
		lineShift: shift,
		lines:     make([]Line, sets*p.Ways),
	}
}

// Params returns the geometry the array was built with.
func (a *Array) Params() Params { return a.params }

// SetIndex returns the set index for addr.
func (a *Array) SetIndex(addr uint64) int {
	return int((addr >> a.lineShift) % uint64(a.sets))
}

// align clears the line-offset bits.
func (a *Array) align(addr uint64) uint64 {
	return addr &^ (uint64(a.params.LineBytes) - 1)
}

// set returns the slice of ways for addr's set.
func (a *Array) set(addr uint64) []Line {
	i := a.SetIndex(addr)
	return a.lines[i*a.params.Ways : (i+1)*a.params.Ways]
}

// Lookup returns the line holding addr (any PID) and refreshes its LRU
// stamp, or nil on miss.
func (a *Array) Lookup(addr uint64) *Line {
	return a.lookup(addr, 0, false)
}

// LookupPID is Lookup restricted to lines tagged with pid. Accelerator-tile
// caches are PID-tagged so functions from different processes can coexist.
func (a *Array) LookupPID(addr uint64, pid mem.PID) *Line {
	return a.lookup(addr, pid, true)
}

func (a *Array) lookup(addr uint64, pid mem.PID, checkPID bool) *Line {
	want := a.align(addr)
	set := a.set(addr)
	for i := range set {
		l := &set[i]
		if l.Valid && l.Addr == want && (!checkPID || l.PID == pid) {
			a.stamp++
			l.lru = a.stamp
			return l
		}
	}
	return nil
}

// Peek is Lookup without the LRU update (used by snoops and statistics).
func (a *Array) Peek(addr uint64) *Line {
	want := a.align(addr)
	set := a.set(addr)
	for i := range set {
		l := &set[i]
		if l.Valid && l.Addr == want {
			return l
		}
	}
	return nil
}

// Victim returns the line to fill for addr: an invalid way if one exists,
// otherwise the least-recently-used line in the set. The caller inspects
// Valid/Dirty to decide whether an eviction (writeback) is needed, then
// overwrites the fields.
func (a *Array) Victim(addr uint64) *Line {
	set := a.set(addr)
	var victim *Line
	for i := range set {
		l := &set[i]
		if !l.Valid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Fill installs addr into line (typically a Victim result), resetting all
// metadata and refreshing LRU.
func (a *Array) Fill(l *Line, addr uint64, pid mem.PID) {
	a.stamp++
	*l = Line{Valid: true, Addr: a.align(addr), PID: pid, lru: a.stamp}
}

// Touch refreshes the LRU stamp of l.
func (a *Array) Touch(l *Line) {
	a.stamp++
	l.lru = a.stamp
}

// ForEach visits every line, valid or not, in deterministic (set, way)
// order. The visitor may mutate lines.
func (a *Array) ForEach(fn func(*Line)) {
	for i := range a.lines {
		fn(&a.lines[i])
	}
}

// NumLines returns sets*ways, the bound for line-slot indices.
func (a *Array) NumLines() int { return len(a.lines) }

// LineAt returns the line at slot i (row-major by set, as SlotOf numbers
// them).
func (a *Array) LineAt(i int) *Line { return &a.lines[i] }

// SlotOf returns the dense (set, way) slot index of l, which must be a
// line of addr's set (as returned by Lookup/Victim/Peek for addr).
// Controllers use the slot to key per-line side state — stall lists,
// holder tags — in flat arrays parallel to the tag array, instead of
// address-keyed maps.
func (a *Array) SlotOf(addr uint64, l *Line) int {
	base := a.SetIndex(addr) * a.params.Ways
	set := a.lines[base : base+a.params.Ways]
	for i := range set {
		if &set[i] == l {
			return base + i
		}
	}
	sim.Failf("cache", 0, "", "SlotOf: line %#x not in set of addr %#x", l.Addr, addr)
	return -1
}

// CountValid returns the number of valid lines.
func (a *Array) CountValid() int {
	n := 0
	for i := range a.lines {
		if a.lines[i].Valid {
			n++
		}
	}
	return n
}

// InvalidateAll clears every line.
func (a *Array) InvalidateAll() {
	for i := range a.lines {
		a.lines[i] = Line{}
	}
}
