package cache

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMSHRAllocateFresh(t *testing.T) {
	m := NewMSHR(4)
	s := m.Allocate(0x40)
	if s < 0 || m.AddrAt(s) != 0x40 {
		t.Fatalf("fresh allocate = slot %d (addr %#x)", s, m.AddrAt(s))
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if m.Slot(0x40) != s {
		t.Fatalf("Slot = %d, want %d", m.Slot(0x40), s)
	}
}

func TestMSHRSecondaryMissMerges(t *testing.T) {
	m := NewMSHR(4)
	s1 := m.Allocate(0x40)
	s2 := m.Allocate(0x40)
	if s2 != s1 {
		t.Fatalf("secondary miss got slot %d, want primary's %d", s2, s1)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after merge, want 1", m.Len())
	}
	if got := m.Free(0x40); got != s1 {
		t.Fatalf("Free returned slot %d, want %d", got, s1)
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(0x00)
	m.Allocate(0x40)
	if !m.Full() {
		t.Fatal("MSHR should be full")
	}
	if s := m.Allocate(0x80); s >= 0 {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Existing line still reachable when full.
	if s := m.Allocate(0x00); s < 0 {
		t.Fatal("secondary miss rejected while full")
	}
	m.Free(0x00)
	if m.Full() {
		t.Fatal("still full after Free")
	}
}

func TestMSHRFreeUnknown(t *testing.T) {
	m := NewMSHR(2)
	if s := m.Free(0x999); s != -1 {
		t.Fatalf("Free of unknown address returned slot %d", s)
	}
}

func TestMSHROutstandingOrder(t *testing.T) {
	m := NewMSHR(8)
	addrs := []uint64{0x80, 0x00, 0x40}
	for _, a := range addrs {
		m.Allocate(a)
	}
	out := m.Outstanding()
	for i := range addrs {
		if out[i] != addrs[i] {
			t.Fatalf("Outstanding = %v, want %v", out, addrs)
		}
	}
	m.Free(0x00)
	out = m.Outstanding()
	if len(out) != 2 || out[0] != 0x80 || out[1] != 0x40 {
		t.Fatalf("Outstanding after free = %v", out)
	}
	// Slot reuse must not disturb allocation order: the freed slot is
	// recycled but its stamp is fresh.
	m.Allocate(0xc0)
	out = m.Outstanding()
	if len(out) != 3 || out[2] != 0xc0 {
		t.Fatalf("Outstanding after reuse = %v", out)
	}
}

// Property: Len never exceeds capacity, Slot agrees with Allocate/Free
// bookkeeping, and the occupancy bitmap popcount matches Len under
// arbitrary alloc/free interleavings.
func TestMSHRInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMSHR(4)
		live := map[uint64]bool{}
		for _, op := range ops {
			addr := uint64(op%16) * 64
			if op&0x8000 != 0 {
				m.Free(addr)
				delete(live, addr)
			} else if m.Allocate(addr) >= 0 {
				live[addr] = true
			}
			if m.Len() > 4 || bits.OnesCount64(m.Occupied()) != m.Len() {
				return false
			}
			for a := range live {
				s := m.Slot(a)
				if s < 0 || m.AddrAt(s) != a {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
