package cache

import (
	"testing"
	"testing/quick"
)

func TestMSHRAllocateFresh(t *testing.T) {
	m := NewMSHR(4)
	e, fresh := m.Allocate(0x40)
	if !fresh || e == nil || e.Addr != 0x40 {
		t.Fatalf("fresh allocate = (%v,%v)", e, fresh)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMSHRSecondaryMissMerges(t *testing.T) {
	m := NewMSHR(4)
	e1, _ := m.Allocate(0x40)
	e1.Waiters = append(e1.Waiters, "first")
	e2, fresh := m.Allocate(0x40)
	if fresh {
		t.Fatal("second allocate to same line reported fresh")
	}
	if e2 != e1 {
		t.Fatal("secondary miss got a different entry")
	}
	e2.Waiters = append(e2.Waiters, "second")
	if m.Len() != 1 {
		t.Fatalf("Len = %d after merge, want 1", m.Len())
	}
	w := m.Free(0x40)
	if len(w) != 2 || w[0] != "first" || w[1] != "second" {
		t.Fatalf("waiters = %v", w)
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(0x00)
	m.Allocate(0x40)
	if !m.Full() {
		t.Fatal("MSHR should be full")
	}
	e, fresh := m.Allocate(0x80)
	if e != nil || fresh {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Existing line still reachable when full.
	e, fresh = m.Allocate(0x00)
	if e == nil || fresh {
		t.Fatal("secondary miss rejected while full")
	}
	m.Free(0x00)
	if m.Full() {
		t.Fatal("still full after Free")
	}
}

func TestMSHRFreeUnknown(t *testing.T) {
	m := NewMSHR(2)
	if w := m.Free(0x999); w != nil {
		t.Fatal("Free of unknown address returned waiters")
	}
}

func TestMSHROutstandingOrder(t *testing.T) {
	m := NewMSHR(8)
	addrs := []uint64{0x80, 0x00, 0x40}
	for _, a := range addrs {
		m.Allocate(a)
	}
	out := m.Outstanding()
	for i := range addrs {
		if out[i] != addrs[i] {
			t.Fatalf("Outstanding = %v, want %v", out, addrs)
		}
	}
	m.Free(0x00)
	out = m.Outstanding()
	if len(out) != 2 || out[0] != 0x80 || out[1] != 0x40 {
		t.Fatalf("Outstanding after free = %v", out)
	}
}

// Property: Len never exceeds capacity and Lookup agrees with Allocate
// bookkeeping under arbitrary alloc/free interleavings.
func TestMSHRInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewMSHR(4)
		live := map[uint64]bool{}
		for _, op := range ops {
			addr := uint64(op%16) * 64
			if op&0x8000 != 0 {
				m.Free(addr)
				delete(live, addr)
			} else {
				if e, fresh := m.Allocate(addr); e != nil && fresh {
					live[addr] = true
				}
			}
			if m.Len() > 4 {
				return false
			}
			for a := range live {
				if m.Lookup(a) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
