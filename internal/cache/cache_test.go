package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fusion/internal/mem"
)

func small() *Array {
	// 4 sets x 2 ways x 64B = 512B
	return NewArray(Params{SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestParamsSets(t *testing.T) {
	p := Params{SizeBytes: 4096, Ways: 4, LineBytes: 64}
	if p.Sets() != 16 {
		t.Fatalf("Sets = %d, want 16", p.Sets())
	}
}

func TestNewArrayPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-power-of-two line size")
		}
	}()
	NewArray(Params{SizeBytes: 512, Ways: 2, LineBytes: 48})
}

func TestLookupMissThenFillHit(t *testing.T) {
	a := small()
	if a.Lookup(0x1000) != nil {
		t.Fatal("unexpected hit on empty cache")
	}
	v := a.Victim(0x1000)
	a.Fill(v, 0x1000, 0)
	l := a.Lookup(0x1000)
	if l == nil || l.Addr != 0x1000 || !l.Valid {
		t.Fatal("fill not visible to lookup")
	}
	// Any address within the line hits.
	if a.Lookup(0x103f) == nil {
		t.Fatal("sub-line address missed")
	}
	if a.Lookup(0x1040) != nil {
		t.Fatal("next line should miss")
	}
}

func TestPIDTagging(t *testing.T) {
	a := small()
	v := a.Victim(0x2000)
	a.Fill(v, 0x2000, mem.PID(7))
	if a.LookupPID(0x2000, 7) == nil {
		t.Fatal("PID-tagged lookup missed own line")
	}
	if a.LookupPID(0x2000, 8) != nil {
		t.Fatal("PID-tagged lookup hit another process's line")
	}
	if a.Lookup(0x2000) == nil {
		t.Fatal("untagged lookup should still match")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	a := small()
	// Two lines mapping to the same set (4 sets, stride 4*64=256).
	a.Fill(a.Victim(0x0000), 0x0000, 0)
	a.Fill(a.Victim(0x0100), 0x0100, 0)
	// Touch the first so the second becomes LRU.
	a.Lookup(0x0000)
	v := a.Victim(0x0200)
	if !v.Valid || v.Addr != 0x0100 {
		t.Fatalf("victim = %+v, want line 0x100", v)
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	a := small()
	a.Fill(a.Victim(0x0000), 0x0000, 0)
	v := a.Victim(0x0100)
	if v.Valid {
		t.Fatal("victim should be the invalid way")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	a := small()
	a.Fill(a.Victim(0x0000), 0x0000, 0)
	a.Fill(a.Victim(0x0100), 0x0100, 0)
	a.Peek(0x0000) // must NOT refresh
	v := a.Victim(0x0200)
	if v.Addr != 0x0000 {
		t.Fatalf("Peek changed LRU: victim %#x, want 0x0", v.Addr)
	}
}

func TestFillResetsMetadata(t *testing.T) {
	a := small()
	v := a.Victim(0x0000)
	a.Fill(v, 0x0000, 0)
	v.Dirty = true
	v.State = Modified
	v.LTime = 99
	a.Fill(v, 0x0100, 3)
	if v.Dirty || v.State != Invalid || v.LTime != 0 || v.PID != 3 || v.Addr != 0x100 {
		t.Fatalf("Fill left stale metadata: %+v", v)
	}
}

func TestForEachAndCounts(t *testing.T) {
	a := small()
	a.Fill(a.Victim(0x0000), 0x0000, 0)
	a.Fill(a.Victim(0x1000), 0x1000, 0)
	if a.CountValid() != 2 {
		t.Fatalf("CountValid = %d, want 2", a.CountValid())
	}
	n := 0
	a.ForEach(func(l *Line) { n++ })
	if n != 8 {
		t.Fatalf("ForEach visited %d, want 8", n)
	}
	a.InvalidateAll()
	if a.CountValid() != 0 {
		t.Fatal("InvalidateAll left valid lines")
	}
}

func TestSetIndexDistribution(t *testing.T) {
	a := small()
	seen := map[int]bool{}
	for addr := uint64(0); addr < 4*64; addr += 64 {
		seen[a.SetIndex(addr)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("consecutive lines hit %d sets, want 4", len(seen))
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings wrong")
	}
}

// Property: after any sequence of fills, no two valid lines in a set share
// (Addr, PID), and every valid line's address maps to its own set.
func TestNoAliasingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(Params{SizeBytes: 2048, Ways: 4, LineBytes: 64})
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64)) * 64
			pid := mem.PID(rng.Intn(3))
			if a.LookupPID(addr, pid) == nil {
				a.Fill(a.Victim(addr), addr, pid)
			}
		}
		ok := true
		type key struct {
			addr uint64
			pid  mem.PID
		}
		perSet := map[int]map[key]int{}
		idx := 0
		a.ForEach(func(l *Line) {
			set := idx / 4
			idx++
			if !l.Valid {
				return
			}
			if a.SetIndex(l.Addr) != set {
				ok = false
			}
			if perSet[set] == nil {
				perSet[set] = map[key]int{}
			}
			perSet[set][key{l.Addr, l.PID}]++
			if perSet[set][key{l.Addr, l.PID}] > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRU never evicts the most recently touched line of a full set.
func TestLRUNeverEvictsMRUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(Params{SizeBytes: 512, Ways: 4, LineBytes: 64}) // 2 sets
		// Fill set 0 completely: addresses 0,128,256,384 map to set 0.
		for i := 0; i < 4; i++ {
			addr := uint64(i) * 128
			a.Fill(a.Victim(addr), addr, 0)
		}
		for i := 0; i < 100; i++ {
			touch := uint64(rng.Intn(4)) * 128
			a.Lookup(touch)
			v := a.Victim(uint64(rng.Intn(4)) * 128)
			if v.Addr == touch {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	a := NewArray(Params{SizeBytes: 65536, Ways: 8, LineBytes: 64})
	a.Fill(a.Victim(0x4000), 0x4000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Lookup(0x4000)
	}
}
