package cache

import (
	"math/bits"
	"sort"

	"fusion/internal/sim"
)

// MSHR models a miss-status holding register file: one entry per outstanding
// line-granularity miss. Every cache controller in the simulator (host L1,
// L1X, L0X) allocates from one of these; a full MSHR back-pressures the
// requester, which is how the accelerator MLP limits of Table 1 manifest in
// the memory system.
//
// The file is a dense register bank, as in hardware: a uint64 occupancy
// bitmap plus flat address/stamp arrays, indexed by slot. Lookups walk the
// occupancy word with bits.TrailingZeros64 — at most capacity compares, no
// hashing, no pointers. The slot number is stable for the lifetime of the
// miss, so controllers key their per-miss transaction state by slot in a
// flat array instead of a map (see acc.L0X, acc.L1X, mesi.Client).
type MSHR struct {
	capacity int
	count    int
	occ      uint64 // bit s set: slot s holds an outstanding miss
	addrs    [64]uint64
	stamps   [64]uint64 // allocation order, for deterministic iteration
	clock    uint64
}

// NewMSHR returns an MSHR file with the given number of entries (at most
// 64: one occupancy word covers every configuration in the paper).
func NewMSHR(capacity int) *MSHR {
	if capacity < 1 || capacity > 64 {
		sim.Failf("cache", 0, "", "MSHR capacity %d out of range [1,64]", capacity)
	}
	return &MSHR{capacity: capacity}
}

// Slot returns the slot holding addr, or -1.
func (m *MSHR) Slot(addr uint64) int {
	for w := m.occ; w != 0; w &= w - 1 {
		s := bits.TrailingZeros64(w)
		if m.addrs[s] == addr {
			return s
		}
	}
	return -1
}

// Allocate returns the slot for addr: the existing slot on a secondary
// miss, a fresh one otherwise, or -1 if the file is full and addr is not
// present.
func (m *MSHR) Allocate(addr uint64) int {
	if s := m.Slot(addr); s >= 0 {
		return s
	}
	if m.count >= m.capacity {
		return -1
	}
	s := bits.TrailingZeros64(^m.occ) // capacity<=64 keeps this in range
	m.occ |= 1 << s
	m.addrs[s] = addr
	m.clock++
	m.stamps[s] = m.clock
	m.count++
	return s
}

// Free releases the entry for addr and returns the slot it held, or -1 if
// addr was not outstanding.
func (m *MSHR) Free(addr uint64) int {
	s := m.Slot(addr)
	if s < 0 {
		return -1
	}
	m.occ &^= 1 << s
	m.count--
	return s
}

// Full reports whether a fresh allocation would fail.
func (m *MSHR) Full() bool { return m.count >= m.capacity }

// Len returns the number of outstanding entries.
func (m *MSHR) Len() int { return m.count }

// Occupied returns the occupancy bitmap; callers walk it with
// bits.TrailingZeros64 and index their slot-keyed state directly.
func (m *MSHR) Occupied() uint64 { return m.occ }

// AddrAt returns the line address held by an occupied slot.
func (m *MSHR) AddrAt(slot int) uint64 { return m.addrs[slot] }

// Outstanding returns the outstanding line addresses in allocation order.
func (m *MSHR) Outstanding() []uint64 {
	slots := make([]int, 0, m.count)
	for w := m.occ; w != 0; w &= w - 1 {
		slots = append(slots, bits.TrailingZeros64(w))
	}
	sort.Slice(slots, func(i, j int) bool { return m.stamps[slots[i]] < m.stamps[slots[j]] })
	out := make([]uint64, len(slots))
	for i, s := range slots {
		out[i] = m.addrs[s]
	}
	return out
}
