package cache

// MSHR models a miss-status holding register file: one entry per outstanding
// line-granularity miss, with secondary misses to the same line merged onto
// the primary entry's waiter list. Every cache controller in the simulator
// (host L1, L1X, L0X) allocates from one of these; a full MSHR back-pressures
// the requester, which is how the accelerator MLP limits of Table 1 manifest
// in the memory system.
type MSHR struct {
	capacity int
	order    []uint64 // allocation order, for deterministic iteration
	entries  map[uint64]*MSHREntry
}

// MSHREntry tracks one outstanding miss.
type MSHREntry struct {
	Addr    uint64 // line-aligned address
	Waiters []any  // protocol-specific contexts resumed on fill
}

// NewMSHR returns an MSHR file with the given number of entries.
func NewMSHR(capacity int) *MSHR {
	return &MSHR{capacity: capacity, entries: make(map[uint64]*MSHREntry)}
}

// Lookup returns the entry for addr, or nil.
func (m *MSHR) Lookup(addr uint64) *MSHREntry {
	return m.entries[addr]
}

// Allocate creates an entry for addr. It returns (entry, true) on a fresh
// allocation, (existing, false) if addr already has an entry (secondary
// miss: caller should append a waiter), and (nil, false) if the file is full
// and addr is not present.
func (m *MSHR) Allocate(addr uint64) (*MSHREntry, bool) {
	if e, ok := m.entries[addr]; ok {
		return e, false
	}
	if len(m.entries) >= m.capacity {
		return nil, false
	}
	e := &MSHREntry{Addr: addr}
	m.entries[addr] = e
	m.order = append(m.order, addr)
	return e, true
}

// Free releases the entry for addr and returns its waiters (nil if absent).
func (m *MSHR) Free(addr uint64) []any {
	e, ok := m.entries[addr]
	if !ok {
		return nil
	}
	delete(m.entries, addr)
	for i, a := range m.order {
		if a == addr {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return e.Waiters
}

// Full reports whether a fresh allocation would fail.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Len returns the number of outstanding entries.
func (m *MSHR) Len() int { return len(m.entries) }

// Outstanding returns the outstanding line addresses in allocation order.
func (m *MSHR) Outstanding() []uint64 {
	return append([]uint64(nil), m.order...)
}
