package workloads

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fusion/internal/mem"
	"fusion/internal/trace"
)

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, name := range Names() {
		b := Get(name)
		if len(b.Program.Phases) == 0 {
			t.Errorf("%s: empty program", name)
		}
		if len(b.InputLines) == 0 {
			t.Errorf("%s: no preloaded inputs", name)
		}
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown benchmark")
		}
	}()
	Get("nope")
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := Get("fft"), Get("fft")
	if len(a.Program.Phases) != len(b.Program.Phases) {
		t.Fatal("phase counts differ")
	}
	for i := range a.Program.Phases {
		ia, ib := a.Program.Phases[i].Inv, b.Program.Phases[i].Inv
		if len(ia.Iterations) != len(ib.Iterations) {
			t.Fatalf("phase %d iteration counts differ", i)
		}
		for j := range ia.Iterations {
			xa, xb := ia.Iterations[j], ib.Iterations[j]
			for k := range xa.Loads {
				if xa.Loads[k] != xb.Loads[k] {
					t.Fatalf("phase %d iter %d load %d differs", i, j, k)
				}
			}
		}
	}
}

// Table 1 calibration: the generated op mix of each function must be close
// to the published breakdown.
func TestOpMixMatchesTable1(t *testing.T) {
	want := map[string]opMix{
		"step1":    {28, 7.8, 46.3, 17.9},
		"coder":    {32.8, 0, 56, 11.2},
		"medfilt":  {48.2, 0, 49.1, 2.7},
		"finalSAD": {22.8, 0, 71.3, 5.9},
		"rgb2hsl":  {22.1, 51.8, 20.7, 5.4},
	}
	got := map[string]opMix{}
	for _, name := range Names() {
		b := Get(name)
		for i := range b.Program.Phases {
			ph := &b.Program.Phases[i]
			if ph.Kind != trace.PhaseAccel {
				continue
			}
			ii, fp, ld, st := ph.Inv.Ops()
			tot := float64(ii + fp + ld + st)
			if tot == 0 {
				continue
			}
			got[ph.Inv.Function] = opMix{
				Int: 100 * float64(ii) / tot, FP: 100 * float64(fp) / tot,
				Ld: 100 * float64(ld) / tot, St: 100 * float64(st) / tot,
			}
		}
	}
	for fn, w := range want {
		g, ok := got[fn]
		if !ok {
			t.Errorf("%s: not generated", fn)
			continue
		}
		const tol = 12.0 // percentage points; iteration quantization allows drift
		if math.Abs(g.Int-w.Int) > tol || math.Abs(g.FP-w.FP) > tol ||
			math.Abs(g.Ld-w.Ld) > tol || math.Abs(g.St-w.St) > tol {
			t.Errorf("%s: mix = %+v, want ≈ %+v", fn, g, w)
		}
	}
}

// Working-set relations that the evaluation's crossovers depend on.
func TestWorkingSetRelations(t *testing.T) {
	ws := map[string]int{}
	for _, name := range Names() {
		_, bytes := Get(name).Program.WorkingSet()
		ws[name] = bytes
	}
	small := 64 << 10
	large := 256 << 10
	// ADPCM, SUSAN, FILT: small (paper: under ~30-60 KB) — fit the L1X.
	for _, n := range []string{"adpcm", "susan", "filt"} {
		if ws[n] >= small {
			t.Errorf("%s working set %d should fit the 64 KB L1X", n, ws[n])
		}
	}
	// FFT: small working set (the DMA ratio comes from re-streaming).
	if ws["fft"] >= small {
		t.Errorf("fft working set %d should fit the 64 KB L1X", ws["fft"])
	}
	// DISP: between the two L1X sizes (the Figure 7 crossover benchmark).
	if !(ws["disp"] > small && ws["disp"] < large) {
		t.Errorf("disp working set %d must lie in (64K, 256K)", ws["disp"])
	}
	// TRACK, HIST: beyond even the large L1X.
	for _, n := range []string{"track", "hist"} {
		if ws[n] <= large {
			t.Errorf("%s working set %d must exceed the 256 KB L1X", n, ws[n])
		}
	}
}

// Sharing degrees: pipelined functions share heavily (Table 1 averages
// ~50%; ADPCM ~99%).
func TestSharingDegrees(t *testing.T) {
	b := Get("adpcm")
	shr := b.Program.SharedLines()
	if shr["coder"] < 80 || shr["decoder"] < 30 {
		t.Errorf("adpcm sharing = %+v, want coder ≈ 99%%", shr)
	}
	b = Get("fft")
	shr = b.Program.SharedLines()
	for fn, v := range shr {
		if fn == "fft.host_consume" {
			continue
		}
		if v < 50 {
			t.Errorf("fft %s sharing %v, want high (every stage reuses the arrays)", fn, v)
		}
	}
}

func TestForwardsComputed(t *testing.T) {
	for _, name := range []string{"fft", "track", "adpcm"} {
		b := Get(name)
		if len(b.Forwards) == 0 {
			t.Errorf("%s: no producer-consumer forwards found", name)
			continue
		}
		for i, f := range b.Forwards {
			ph := b.Program.Phases[i]
			if f.Consumer == ph.Inv.AXC {
				t.Errorf("%s phase %d forwards to itself", name, i)
			}
			if len(f.Lines) == 0 {
				t.Errorf("%s phase %d: empty forward set", name, i)
			}
			if len(f.Lines) > 48 {
				t.Errorf("%s phase %d: forward set %d exceeds the selection cap",
					name, i, len(f.Lines))
			}
			dup := map[uint64]bool{}
			for _, l := range f.Lines {
				if dup[uint64(l)] {
					t.Errorf("%s phase %d: duplicate forward line", name, i)
				}
				dup[uint64(l)] = true
			}
		}
	}
}

func TestLeaseAndMLPTables(t *testing.T) {
	b := Get("adpcm")
	if b.LeaseTimes["coder"] != 1400 || b.MLP["coder"] != 2 {
		t.Fatalf("coder LT/MLP = %d/%d, want 1400/2",
			b.LeaseTimes["coder"], b.MLP["coder"])
	}
	b = Get("fft")
	if b.LeaseTimes["step3"] != 200 {
		t.Fatalf("step3 LT = %d, want 200", b.LeaseTimes["step3"])
	}
}

func TestHostTailReadsOutputs(t *testing.T) {
	b := Get("track")
	last := b.Program.Phases[len(b.Program.Phases)-1]
	if last.Kind != trace.PhaseHost {
		t.Fatal("no host tail phase")
	}
	_, _, ld, st := last.Inv.Ops()
	if ld == 0 || st != 0 {
		t.Fatalf("host tail ld/st = %d/%d, want loads only", ld, st)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	for _, name := range Names() {
		b := Get(name)
		// Every line belongs to exactly one region: verify no two phases
		// write lines that alias across guard pages by checking line
		// addresses are all above the 1 MiB base.
		for i := range b.Program.Phases {
			lines, _ := b.Program.Phases[i].Inv.Lines()
			for _, l := range lines {
				if l < mem.VAddr(1<<20) {
					t.Fatalf("%s: line %#x below region base", name, uint64(l))
				}
			}
		}
	}
}

func TestProgramSizesReasonable(t *testing.T) {
	for _, name := range Names() {
		b := Get(name)
		totalIters := 0
		for i := range b.Program.Phases {
			totalIters += len(b.Program.Phases[i].Inv.Iterations)
		}
		if totalIters < 100 {
			t.Errorf("%s: only %d iterations — too small to exercise the hierarchy", name, totalIters)
		}
		if totalIters > 2_000_000 {
			t.Errorf("%s: %d iterations — sim would be too slow", name, totalIters)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Random(99, DefaultRandomParams())
	var buf bytes.Buffer
	if err := SaveJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program.Name != orig.Program.Name ||
		len(got.Program.Phases) != len(orig.Program.Phases) ||
		len(got.InputLines) != len(orig.InputLines) {
		t.Fatal("round trip lost structure")
	}
	for i := range orig.Program.Phases {
		a, b := &orig.Program.Phases[i].Inv, &got.Program.Phases[i].Inv
		if a.Function != b.Function || a.Serial != b.Serial ||
			len(a.Iterations) != len(b.Iterations) {
			t.Fatalf("phase %d differs", i)
		}
		for j := range a.Iterations {
			if len(a.Iterations[j].Loads) != len(b.Iterations[j].Loads) {
				t.Fatalf("phase %d iter %d loads differ", i, j)
			}
		}
	}
	if len(got.Forwards) != len(orig.Forwards) {
		t.Fatalf("forwards: %d vs %d", len(got.Forwards), len(orig.Forwards))
	}
}

func TestLoadJSONRejectsEmpty(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{}")); err == nil {
		t.Fatal("empty benchmark accepted")
	}
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadJSONRecomputesForwards(t *testing.T) {
	orig := Get("fft")
	clone := &Benchmark{
		Program:    orig.Program,
		InputLines: orig.InputLines,
		LeaseTimes: orig.LeaseTimes,
		MLP:        orig.MLP,
		// Forwards deliberately omitted.
	}
	var buf bytes.Buffer
	if err := SaveJSON(&buf, clone); err != nil {
		t.Fatal(err)
	}
	// Strip the (empty) forwards key by loading into a map and deleting.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "Forwards")
	raw, _ := json.Marshal(m)
	got, err := LoadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Forwards) == 0 {
		t.Fatal("forwards not recomputed on load")
	}
}

func TestValidateAcceptsAllBenchmarks(t *testing.T) {
	for _, name := range Names() {
		if errs := Validate(Get(name)); len(errs) > 0 {
			t.Errorf("%s: %v", name, errs)
		}
	}
	for _, seed := range []int64{1, 2, 3} {
		if errs := Validate(Random(seed, DefaultRandomParams())); len(errs) > 0 {
			t.Errorf("random-%d: %v", seed, errs)
		}
	}
}

func TestValidateCatchesMalformations(t *testing.T) {
	cases := []struct {
		name string
		b    *Benchmark
		want string
	}{
		{"nil program", &Benchmark{}, "no program"},
		{"no phases", &Benchmark{Program: &trace.Program{Name: "x"}}, "no phases"},
		{"accel with negative axc", &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
			{Kind: trace.PhaseAccel, Inv: trace.Invocation{Function: "f", AXC: -1, LeaseTime: 10,
				Iterations: []trace.Iteration{{IntOps: 1}}}},
		}}}, "AXC -1"},
		{"host with axc", &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
			{Kind: trace.PhaseHost, Inv: trace.Invocation{Function: "f", AXC: 2,
				Iterations: []trace.Iteration{{IntOps: 1}}}},
		}}}, "host phase with AXC"},
		{"no lease", &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
			{Kind: trace.PhaseAccel, Inv: trace.Invocation{Function: "f", AXC: 0,
				Iterations: []trace.Iteration{{IntOps: 1}}}},
		}}}, "no lease time"},
		{"empty iteration", &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
			{Kind: trace.PhaseAccel, Inv: trace.Invocation{Function: "f", AXC: 0, LeaseTime: 10,
				Iterations: []trace.Iteration{{}}}},
		}}}, "empty"},
		{"sparse axcs", &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
			{Kind: trace.PhaseAccel, Inv: trace.Invocation{Function: "f", AXC: 3, LeaseTime: 10,
				Iterations: []trace.Iteration{{IntOps: 1}}}},
		}}}, "not dense"},
	}
	for _, c := range cases {
		errs := Validate(c.b)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: expected error containing %q, got %v", c.name, c.want, errs)
		}
	}
}

func TestValidateForwardSets(t *testing.T) {
	b := &Benchmark{Program: &trace.Program{Phases: []trace.Phase{
		{Kind: trace.PhaseAccel, Inv: trace.Invocation{Function: "f", AXC: 0, LeaseTime: 10,
			Iterations: []trace.Iteration{{IntOps: 1}}}},
	}}, Forwards: map[int]ForwardSet{
		5: {Consumer: 9, Lines: nil},
	}}
	errs := Validate(b)
	if len(errs) == 0 {
		t.Fatal("bogus forward set accepted")
	}
}
