package workloads

// Random workload generation for differential testing: arbitrary (but
// well-formed) programs whose final memory state is checked against
// sequential semantics on every system. This is how the protocol stack is
// fuzzed beyond the seven calibrated benchmarks.

import (
	"fmt"
	"math/rand"

	"fusion/internal/mem"
	"fusion/internal/trace"
)

// RandomParams bounds a generated program.
type RandomParams struct {
	MaxAXCs      int // accelerators (1..)
	MaxPhases    int // pipeline length
	MaxRegions   int // distinct arrays
	MaxRegionKB  int // array size
	MaxIterOps   int // ops per iteration
	HostPhases   bool
	SerialChance float64 // probability a function is a serial chain
}

// DefaultRandomParams gives mid-sized programs that still run in
// milliseconds.
func DefaultRandomParams() RandomParams {
	return RandomParams{
		MaxAXCs:      4,
		MaxPhases:    6,
		MaxRegions:   5,
		MaxRegionKB:  24,
		MaxIterOps:   16,
		HostPhases:   true,
		SerialChance: 0.3,
	}
}

// Random generates a seeded, deterministic random benchmark: a pipeline of
// phases reading and writing randomly-chosen regions with random op mixes,
// lease times, and access patterns.
func Random(seed int64, p RandomParams) *Benchmark {
	rng := rand.New(rand.NewSource(seed))

	nRegions := 1 + rng.Intn(p.MaxRegions)
	regions := make([]region, nRegions)
	base := mem.VAddr(1 << 20)
	for i := range regions {
		size := (1 + rng.Intn(p.MaxRegionKB)) << 10
		regions[i] = region{name: fmt.Sprintf("r%d", i), base: base, size: size}
		sz := (size + mem.PageBytes - 1) &^ (mem.PageBytes - 1)
		base += mem.VAddr(sz + mem.PageBytes)
	}

	nAXCs := 1 + rng.Intn(p.MaxAXCs)
	nPhases := 1 + rng.Intn(p.MaxPhases)

	b := &Benchmark{
		Program:    &trace.Program{Name: fmt.Sprintf("random-%d", seed)},
		LeaseTimes: make(map[string]uint64),
		MLP:        make(map[string]int),
		Forwards:   make(map[int]ForwardSet),
	}

	// Preload a random subset of regions as inputs.
	for i := range regions {
		if rng.Intn(2) == 0 {
			r := regions[i]
			for off := 0; off < r.size; off += mem.LineBytes {
				b.InputLines = append(b.InputLines, r.base+mem.VAddr(off))
			}
		}
	}

	for ph := 0; ph < nPhases; ph++ {
		fnName := fmt.Sprintf("fn%d", ph)
		axc := rng.Intn(nAXCs)
		lease := uint64(100 + rng.Intn(1500))
		inv := trace.Invocation{
			Function:  fnName,
			AXC:       axc,
			LeaseTime: lease,
			Serial:    rng.Float64() < p.SerialChance,
		}
		// Pick 1-2 read regions and 0-2 write regions.
		reads := pickRegions(rng, regions, 1+rng.Intn(2))
		writes := pickRegions(rng, regions, rng.Intn(3))

		nLd := 1 + rng.Intn(4)
		nSt := 0
		if len(writes) > 0 {
			nSt = 1 + rng.Intn(2)
		}
		nInt := rng.Intn(p.MaxIterOps)
		nFp := rng.Intn(4)

		loadStream := randStream(rng, reads)
		storeStream := randStream(rng, writes)
		iters := len(loadStream) / nLd
		if iters == 0 {
			iters = 1
		}
		if iters > 600 {
			iters = 600 // bound the run time
		}
		li, si := 0, 0
		for i := 0; i < iters; i++ {
			var it trace.Iteration
			for j := 0; j < nLd && li < len(loadStream); j++ {
				it.Loads = append(it.Loads, loadStream[li])
				li++
			}
			for j := 0; j < nSt && si < len(storeStream); j++ {
				it.Stores = append(it.Stores, storeStream[si])
				si++
			}
			it.IntOps, it.FPOps = nInt, nFp
			inv.Iterations = append(inv.Iterations, it)
		}
		b.LeaseTimes[fnName] = lease
		b.MLP[fnName] = 1 + rng.Intn(6)

		kind := trace.PhaseAccel
		if p.HostPhases && rng.Intn(6) == 0 {
			kind = trace.PhaseHost
			inv.AXC = -1
		}
		b.Program.Phases = append(b.Program.Phases, trace.Phase{Kind: kind, Inv: inv})
	}

	compactAXCs(b)
	b.Program.Seal() // trace is final; memoize the per-phase Lines views
	ComputeForwards(b)
	return b
}

// compactAXCs renumbers accelerator ids densely from zero (a random draw
// may skip ids, which would waste tile resources).
func compactAXCs(b *Benchmark) {
	remap := map[int]int{}
	next := 0
	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if ph.Kind != trace.PhaseAccel {
			continue
		}
		if _, ok := remap[ph.Inv.AXC]; !ok {
			remap[ph.Inv.AXC] = next
			next++
		}
		ph.Inv.AXC = remap[ph.Inv.AXC]
	}
}

func pickRegions(rng *rand.Rand, regions []region, n int) []region {
	if n > len(regions) {
		n = len(regions)
	}
	idx := rng.Perm(len(regions))[:n]
	out := make([]region, n)
	for i, j := range idx {
		out[i] = regions[j]
	}
	return out
}

// randStream builds a random-order-ish address stream over the regions:
// each region is walked with a random stride and phase, with occasional
// random jumps.
func randStream(rng *rand.Rand, regs []region) []mem.VAddr {
	var out []mem.VAddr
	for _, r := range regs {
		stride := []int{8, 16, 32, 64}[rng.Intn(4)]
		for off := 0; off < r.size; off += stride {
			a := off
			if rng.Intn(16) == 0 {
				a = rng.Intn(r.size) &^ 7 // random jump
			}
			out = append(out, r.base+mem.VAddr(a))
		}
	}
	// Interleave-shuffle lightly: swap random nearby pairs so streams are
	// not purely sequential but keep locality.
	for i := 0; i+8 < len(out); i += 4 {
		j := i + rng.Intn(8)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
