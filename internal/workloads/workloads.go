// Package workloads generates the seven benchmarks of the paper's
// evaluation (SD-VBS: Disparity, Tracking, Susan, Filter, Histogram;
// MachSuite: FFT, ADPCM) as synthetic, calibrated traces.
//
// We do not have the benchmark binaries or the authors' gprof/trace
// toolchain, so each accelerated function is regenerated from its published
// characteristics:
//
//   - operation mix %INT/%FP/%LD/%ST and memory-level parallelism (Table 1),
//   - lease times LT (Table 3),
//   - pipeline structure — which function produces what the next consumes —
//     giving the %SHR sharing degrees of Table 1,
//   - working-set sizes chosen to preserve every capacity relation the
//     evaluation turns on: ADPCM/SUSAN/FILT under 30 KB (scratch-friendly),
//     FFT small but heavily re-streamed (the 165x DMA-to-working-set ratio),
//     DISP between the 64 KB and 256 KB L1X sizes, TRACK and HIST beyond
//     both (HIST's 1191 KB footprint is represented at 512 KB — the same
//     side of every cache-size threshold, Section 5.5).
//
// The cache hierarchy observes only the address/op stream, so a stream with
// matching locality, sharing, and intensity statistics exercises the same
// protocol and energy code paths as the original traces.
package workloads

import (
	"math/rand"

	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/trace"
)

// opMix is the operation breakdown of one function (percentages, Table 1).
type opMix struct {
	Int, FP, Ld, St float64
}

// region is a named array in the benchmark's address space.
type region struct {
	name string
	base mem.VAddr
	size int
}

// pattern selects the address-generation behaviour of a stream.
type pattern uint8

const (
	patSeq     pattern = iota // streaming, word after word
	patStencil                // streaming with neighbour re-reads
	patRandom                 // uniform random words (histogram table)
	// patBlocked sweeps the region in 2 KB blocks, re-reading each block
	// several times before advancing. The reuse fits a 4 KB scratchpad or
	// L0X but makes the SHARED design pay its higher load-to-use cost on
	// every touch — the locality structure behind Lessons 1-2.
	patBlocked
)

// blockedBytes and blockedReuse parameterize patBlocked.
const (
	blockedBytes = 2048
	blockedReuse = 4
)

// fnSpec declares one accelerated function.
type fnSpec struct {
	name       string
	axc        int
	mix        opMix
	mlp        int
	lt         uint64 // ACC lease time, Table 3
	reads      []strm // input streams
	writes     []strm // output streams
	opsPerIter int    // total ops per iteration (iteration granularity)
	// serial marks a loop-carried dependence chain (Table 1 MLP near 1).
	serial bool
}

// strm is one access stream over a region.
type strm struct {
	reg     string
	passes  int // how many full sweeps of the region
	pattern pattern
	stride  int // bytes between consecutive accesses (0 = 16)
	reuse   int // patBlocked: sweeps per block (0 = blockedReuse default)
	// reverse walks the region from high addresses to low. Pipeline stages
	// that alternate direction (FFT's bit-reversal stages, image passes)
	// make a consumer's first reads the producer's last writes — the
	// producer-consumer adjacency FUSION-Dx forwarding exploits (Figure 5).
	reverse bool
}

// benchSpec declares one benchmark.
type benchSpec struct {
	name    string
	regions []region
	// inputs are preloaded into the host LLC (the host wrote them before
	// offload); outputs are read back by a final host phase.
	inputs  []string
	outputs []string
	fns     []fnSpec
	// repeat: the whole function pipeline runs this many times (the
	// "invoked repeatedly" behaviour that drives FFT's DMA ratio).
	repeat int
	// hostTail, when set, appends a host phase reading the outputs
	// (step3() of Figure 1).
	hostTail bool
}

// Names lists the benchmarks in the paper's presentation order.
func Names() []string {
	return []string{"fft", "disp", "track", "adpcm", "susan", "filt", "hist"}
}

// kb is a size helper.
func kb(n int) int { return n << 10 }

// specs returns the full benchmark table. Region sizes are simulation-scale
// (see the package comment); op mixes, MLP, and LT come straight from
// Tables 1 and 3.
func specs() map[string]benchSpec {
	m := make(map[string]benchSpec)

	// FFT (MachSuite): 6 butterfly stages over a small array, run
	// repeatedly; every stage reads and writes the same data -> extreme
	// DMA re-transfer in SCRATCH (ratio ~165) and high %SHR.
	m["fft"] = benchSpec{
		name: "fft",
		regions: []region{
			{name: "re", size: kb(8)},
			{name: "im", size: kb(8)},
			// Per-stage private temporaries reproduce Table 1's sharing
			// spread: stages with private scratch data (step1/3/6) sit near
			// 50-60%% SHR, pure butterfly stages near 100%%.
			{name: "tmp1", size: kb(8)},
			{name: "tmp3", size: kb(6)},
			{name: "tmp6", size: kb(16)},
		},
		inputs:  []string{"re", "im"},
		outputs: []string{"re", "im"},
		repeat:  6,
		fns: []fnSpec{
			{name: "step1", axc: 0, mix: opMix{28, 7.8, 46.3, 17.9}, mlp: 5, lt: 500,
				reads: []strm{{reg: "re", passes: 1}, {reg: "im", passes: 1},
					{reg: "tmp1", passes: 1}},
				writes: []strm{{reg: "re", passes: 1}, {reg: "tmp1", passes: 1}}, opsPerIter: 16},
			{name: "step2", axc: 1, mix: opMix{52.1, 0, 29.9, 18}, mlp: 4, lt: 700,
				reads:  []strm{{reg: "re", passes: 1, reverse: true}},
				writes: []strm{{reg: "re", passes: 1, reverse: true}}, opsPerIter: 16},
			{name: "step3", axc: 2, mix: opMix{31.6, 7.5, 43.2, 17.7}, mlp: 4, lt: 200,
				reads: []strm{{reg: "re", passes: 1}, {reg: "im", passes: 1},
					{reg: "tmp3", passes: 1}},
				writes: []strm{{reg: "im", passes: 1}, {reg: "tmp3", passes: 1}}, opsPerIter: 16},
			{name: "step4", axc: 3, mix: opMix{49, 0, 31.8, 19.2}, mlp: 3, lt: 700,
				reads:  []strm{{reg: "im", passes: 1, reverse: true}},
				writes: []strm{{reg: "im", passes: 1, reverse: true}}, opsPerIter: 16},
			{name: "step5", axc: 4, mix: opMix{49, 0, 31.8, 19.2}, mlp: 3, lt: 700,
				reads:  []strm{{reg: "re", passes: 1}},
				writes: []strm{{reg: "re", passes: 1}}, opsPerIter: 16},
			{name: "step6", axc: 5, mix: opMix{20.3, 3.3, 53.8, 22.6}, mlp: 4, lt: 500,
				reads: []strm{{reg: "re", passes: 1, reverse: true},
					{reg: "im", passes: 1},
					{reg: "tmp6", passes: 2}},
				writes: []strm{{reg: "re", passes: 1}, {reg: "tmp6", passes: 1}}, opsPerIter: 16},
		},
		hostTail: true,
	}

	// Disparity (SD-VBS): stereo image pipeline. Working set ~128 KB:
	// misses the 64 KB L1X, fits the 256 KB one (the Figure 7 crossover).
	m["disp"] = benchSpec{
		name: "disp",
		regions: []region{
			{name: "ileft", size: kb(28)},
			{name: "iright", size: kb(28)},
			{name: "padded", size: kb(30)},
			{name: "sad", size: kb(28)},
			{name: "integ", size: kb(28)},
			{name: "disp", size: kb(14)},
		},
		inputs:  []string{"ileft", "iright"},
		outputs: []string{"disp"},
		repeat:  1,
		fns: []fnSpec{
			{name: "padarray4", axc: 0, mix: opMix{71, 0, 15.2, 13.8}, mlp: 5, lt: 500,
				reads:  []strm{{reg: "ileft", passes: 1}},
				writes: []strm{{reg: "padded", passes: 1}}, opsPerIter: 14},
			// SAD evaluates a disparity search range: it re-reads the padded
			// left image once per candidate shift — the repeated inter-AXC
			// DMA traffic behind the paper's 640 DISP transfers.
			{name: "SAD", axc: 1, mix: opMix{57.9, 8.2, 17.6, 16.3}, mlp: 3, lt: 500,
				reads: []strm{{reg: "padded", passes: 6, pattern: patStencil},
					{reg: "iright", passes: 2}},
				writes: []strm{{reg: "sad", passes: 1}}, opsPerIter: 14},
			{name: "2D2D", axc: 2, mix: opMix{62.8, 0, 24.9, 12.3}, mlp: 4, lt: 500,
				reads:  []strm{{reg: "sad", passes: 2, pattern: patStencil}},
				writes: []strm{{reg: "integ", passes: 1}}, opsPerIter: 14},
			{name: "finalSAD", axc: 3, mix: opMix{22.8, 0, 71.3, 5.9}, mlp: 6, lt: 500,
				reads:  []strm{{reg: "integ", passes: 6, pattern: patStencil}},
				writes: []strm{{reg: "sad", passes: 1}}, opsPerIter: 16},
			{name: "findDisp", axc: 4, mix: opMix{32.7, 32.3, 30.7, 4.3}, mlp: 2, lt: 500,
				reads:  []strm{{reg: "sad", passes: 2}, {reg: "integ", passes: 1}},
				writes: []strm{{reg: "disp", passes: 1}}, opsPerIter: 14},
		},
		hostTail: true,
	}

	// Tracking (SD-VBS): feature-tracking pre-processing. Working set
	// ~300 KB: beyond both L1X sizes (paper: 371 KB).
	m["track"] = benchSpec{
		name: "track",
		regions: []region{
			// The input image dominates the 300 KB working set; the
			// inter-accelerator intermediates (blur, resized — the 99%%
			// shared data of imgResize, Table 1) fit the 64 KB L1X, which
			// is how FUSION avoids the inter-AXC DMA transfers the paper
			// calls out for TRACK (Section 5.2).
			{name: "img", size: kb(128)},
			{name: "blur", size: kb(56)},
			{name: "resized", size: kb(40)},
			{name: "sobel", size: kb(80)},
		},
		inputs:  []string{"img"},
		outputs: []string{"sobel"},
		repeat:  1,
		fns: []fnSpec{
			{name: "imgBlur", axc: 0, mix: opMix{52.8, 15.1, 24, 8.1}, mlp: 2, lt: 700,
				reads:  []strm{{reg: "img", passes: 1, pattern: patStencil}},
				writes: []strm{{reg: "blur", passes: 1}}, opsPerIter: 16},
			{name: "imgResize", axc: 1, mix: opMix{57.1, 11.4, 26.3, 5.2}, mlp: 2, lt: 770,
				reads:  []strm{{reg: "blur", passes: 1, reverse: true}},
				writes: []strm{{reg: "resized", passes: 1, reverse: true}}, opsPerIter: 16},
			{name: "calcSobel", axc: 2, mix: opMix{52.8, 17.4, 22.8, 7.1}, mlp: 1, lt: 720,
				reads:  []strm{{reg: "resized", passes: 2, pattern: patStencil}},
				writes: []strm{{reg: "sobel", passes: 1}}, opsPerIter: 16},
		},
		hostTail: true,
	}

	// ADPCM (MachSuite): tiny working set (<30 KB), near-total sharing
	// between coder and decoder, many passes -> SCRATCH does well.
	m["adpcm"] = benchSpec{
		name: "adpcm",
		regions: []region{
			{name: "pcm", size: kb(12)},
			{name: "compressed", size: kb(4)},
			{name: "decoded", size: kb(12)},
		},
		inputs: []string{"pcm"},
		// The host's final SNR check reads both the original samples and
		// the decoded output, which is why the paper's coder/decoder share
		// ~99%% of their data (Table 1).
		outputs: []string{"pcm", "decoded"},
		repeat:  6,
		fns: []fnSpec{
			{name: "coder", serial: true, axc: 0, mix: opMix{32.8, 0, 56, 11.2}, mlp: 2, lt: 1400,
				reads:  []strm{{reg: "pcm", passes: 1, stride: 8, pattern: patBlocked, reuse: 32}},
				writes: []strm{{reg: "compressed", passes: 1, stride: 8}}, opsPerIter: 12},
			{name: "decoder", serial: true, axc: 1, mix: opMix{40.8, 0, 48, 11.2}, mlp: 2, lt: 1400,
				reads:  []strm{{reg: "compressed", passes: 1, stride: 8, pattern: patBlocked, reuse: 32}},
				writes: []strm{{reg: "decoded", passes: 1, stride: 8}}, opsPerIter: 12},
		},
		hostTail: true,
	}

	// Susan (SD-VBS): smoothing dominates (66% of time, 86% of energy);
	// small working set with strong spatial locality.
	m["susan"] = benchSpec{
		name: "susan",
		regions: []region{
			{name: "img", size: kb(20)},
			{name: "smoothed", size: kb(20)},
			{name: "corners", size: kb(4)},
			{name: "edges", size: kb(12)},
		},
		inputs:  []string{"img"},
		outputs: []string{"corners", "edges"},
		repeat:  2,
		fns: []fnSpec{
			{name: "bright", axc: 0, mix: opMix{22.5, 48.9, 20.3, 8.4}, mlp: 2, lt: 1000,
				reads:  []strm{{reg: "img", passes: 1, stride: 64}},
				writes: []strm{}, opsPerIter: 12},
			{name: "smooth", serial: true, axc: 1, mix: opMix{24.3, 0, 67.6, 8.1}, mlp: 2, lt: 1700,
				reads:  []strm{{reg: "img", passes: 2, pattern: patBlocked, reuse: 20}},
				writes: []strm{{reg: "smoothed", passes: 1}}, opsPerIter: 16},
			{name: "corn", serial: true, axc: 2, mix: opMix{33.1, 1.3, 61, 4.6}, mlp: 2, lt: 1200,
				reads:  []strm{{reg: "smoothed", passes: 1, pattern: patBlocked, reuse: 16}},
				writes: []strm{{reg: "corners", passes: 1}}, opsPerIter: 14},
			{name: "edges", serial: true, axc: 3, mix: opMix{32.6, 1.6, 60.3, 5.5}, mlp: 2, lt: 1700,
				reads:  []strm{{reg: "smoothed", passes: 1, pattern: patBlocked, reuse: 16}},
				writes: []strm{{reg: "edges", passes: 1}}, opsPerIter: 14},
		},
		hostTail: true,
	}

	// Filter (SD-VBS): median + edge filters iterating per pixel over a
	// small image — the L0X-thrashing pattern of Lesson 4.
	m["filt"] = benchSpec{
		name: "filt",
		regions: []region{
			{name: "img", size: kb(16)},
			{name: "med", size: kb(16)},
			{name: "edge", size: kb(16)},
		},
		inputs:  []string{"img"},
		outputs: []string{"edge"},
		repeat:  3,
		fns: []fnSpec{
			{name: "medfilt", serial: true, axc: 0, mix: opMix{48.2, 0, 49.1, 2.7}, mlp: 2, lt: 400,
				reads:  []strm{{reg: "img", passes: 2, pattern: patBlocked, reuse: 20}},
				writes: []strm{{reg: "med", passes: 1}}, opsPerIter: 16},
			{name: "edgefilt", axc: 1, mix: opMix{41.3, 23.9, 28.1, 6.7}, mlp: 4, lt: 400,
				reads:  []strm{{reg: "med", passes: 1, pattern: patBlocked, reuse: 16}},
				writes: []strm{{reg: "edge", passes: 1}}, opsPerIter: 14},
		},
		hostTail: true,
	}

	// Histogram: large images (working set beyond every cache), a tiny
	// randomly-accessed histogram table with total sharing, FP-heavy
	// colour-space conversions at either end.
	m["hist"] = benchSpec{
		name: "hist",
		regions: []region{
			{name: "in", size: kb(192)},
			{name: "hsl", size: kb(192)},
			{name: "table", size: kb(2)},
			{name: "out", size: kb(192)},
		},
		inputs:  []string{"in"},
		outputs: []string{"out"},
		repeat:  1,
		fns: []fnSpec{
			{name: "rgb2hsl", axc: 0, mix: opMix{22.1, 51.8, 20.7, 5.4}, mlp: 4, lt: 500,
				reads:  []strm{{reg: "in", passes: 1}},
				writes: []strm{{reg: "hsl", passes: 1}}, opsPerIter: 16},
			{name: "histogram", serial: true, axc: 1, mix: opMix{40, 0, 53.3, 6.7}, mlp: 1, lt: 500,
				reads: []strm{{reg: "hsl", passes: 1, stride: 64},
					{reg: "table", passes: 4, pattern: patRandom}},
				writes: []strm{{reg: "table", passes: 4, pattern: patRandom}}, opsPerIter: 12},
			{name: "equaliz", serial: true, axc: 2, mix: opMix{36, 0.1, 59.9, 4}, mlp: 1, lt: 500,
				reads:  []strm{{reg: "table", passes: 8}},
				writes: []strm{{reg: "table", passes: 8}}, opsPerIter: 12},
			{name: "hsl2rgb", axc: 3, mix: opMix{26.3, 40.8, 22.1, 10.8}, mlp: 3, lt: 500,
				reads:  []strm{{reg: "hsl", passes: 1}, {reg: "table", passes: 2}},
				writes: []strm{{reg: "out", passes: 1}}, opsPerIter: 16},
		},
		hostTail: true,
	}

	return m
}

// Benchmark holds a generated program plus the metadata the experiment
// harness needs.
type Benchmark struct {
	Program *trace.Program
	// InputLines are virtual line addresses preloaded into the host LLC.
	InputLines []mem.VAddr
	// LeaseTimes maps function name -> ACC lease time (Table 3 LT).
	LeaseTimes map[string]uint64
	// MLP maps function name -> configured datapath MLP (Table 1).
	MLP map[string]int
	// Producers maps each phase index to the shared-region lines it writes
	// that the next accelerator phase reads, with the consumer AXC — the
	// FUSION-Dx forwarding table from trace post-processing.
	Forwards map[int]ForwardSet
}

// ForwardSet is the Dx forwarding work of one producer phase.
type ForwardSet struct {
	Consumer int
	Lines    []mem.VAddr
}

// Get generates benchmark `name`. An unknown name is a caller bug and
// raises a structured failure (sim.ProtocolError).
func Get(name string) *Benchmark {
	spec, ok := specs()[name]
	if !ok {
		sim.Failf("workloads", 0, "", "unknown benchmark %q (have: %v)", name, Names())
	}
	return build(spec)
}

// build expands a spec into a concrete program.
func build(spec benchSpec) *Benchmark {
	rng := rand.New(rand.NewSource(int64(len(spec.name)) * 10007))

	// Lay regions out page-aligned starting at 1 MiB.
	base := mem.VAddr(1 << 20)
	regs := make(map[string]region)
	for _, r := range spec.regions {
		r.base = base
		regs[r.name] = r
		sz := (r.size + mem.PageBytes - 1) &^ (mem.PageBytes - 1)
		base += mem.VAddr(sz + mem.PageBytes) // guard page between regions
	}

	b := &Benchmark{
		Program:    &trace.Program{Name: spec.name},
		LeaseTimes: make(map[string]uint64),
		MLP:        make(map[string]int),
		Forwards:   make(map[int]ForwardSet),
	}
	for _, in := range spec.inputs {
		r := regs[in]
		for off := 0; off < r.size; off += mem.LineBytes {
			b.InputLines = append(b.InputLines, r.base+mem.VAddr(off))
		}
	}

	for rep := 0; rep < spec.repeat; rep++ {
		for _, fn := range spec.fns {
			inv := genInvocation(fn, regs, rng)
			b.LeaseTimes[fn.name] = fn.lt
			b.MLP[fn.name] = fn.mlp
			b.Program.Phases = append(b.Program.Phases,
				trace.Phase{Kind: trace.PhaseAccel, Inv: inv})
		}
	}

	if spec.hostTail {
		b.Program.Phases = append(b.Program.Phases,
			trace.Phase{Kind: trace.PhaseHost, Inv: hostTail(spec, regs)})
	}

	b.Program.Seal() // trace is final; memoize the per-phase Lines views
	ComputeForwards(b)
	return b
}

// genInvocation expands one function into its iteration trace.
func genInvocation(fn fnSpec, regs map[string]region, rng *rand.Rand) trace.Invocation {
	total := float64(fn.opsPerIter)
	sum := fn.mix.Int + fn.mix.FP + fn.mix.Ld + fn.mix.St
	nLd := iround(total * fn.mix.Ld / sum)
	nSt := iround(total * fn.mix.St / sum)
	nInt := iround(total * fn.mix.Int / sum)
	nFp := iround(total * fn.mix.FP / sum)
	if nLd == 0 && fn.mix.Ld > 0 {
		nLd = 1
	}
	if nSt == 0 && fn.mix.St > 0 {
		nSt = 1
	}

	loads := expandStreams(fn.reads, regs, rng)
	stores := expandStreams(fn.writes, regs, rng)

	iters := 1
	if nLd > 0 && len(loads) > 0 {
		iters = (len(loads) + nLd - 1) / nLd
	} else if nSt > 0 && len(stores) > 0 {
		iters = (len(stores) + nSt - 1) / nSt
	}

	// Honor the op mix: downsample the store stream to the store budget,
	// keeping its region coverage order (a sparser write stride).
	if want := iters * nSt; want > 0 && len(stores) > want {
		sampled := make([]mem.VAddr, 0, want)
		for i := 0; i < want; i++ {
			sampled = append(sampled, stores[i*len(stores)/want])
		}
		stores = sampled
	}

	inv := trace.Invocation{Function: fn.name, AXC: fn.axc, LeaseTime: fn.lt, Serial: fn.serial}
	inv.Iterations = make([]trace.Iteration, 0, iters)
	li, si := 0, 0
	for i := 0; i < iters; i++ {
		var it trace.Iteration
		// Each iteration's streams are consecutive runs of the expanded
		// address sequences; sub-slice them (full-capacity slices) instead
		// of copying — iteration traces dominate benchmark memory.
		l0 := li
		if li += nLd; li > len(loads) {
			li = len(loads)
		}
		if li > l0 {
			it.Loads = loads[l0:li:li]
		}
		// Spread stores evenly across iterations.
		wantSt := (i + 1) * len(stores) / iters
		if wantSt > si {
			it.Stores = stores[si:wantSt:wantSt]
		}
		si = wantSt
		it.IntOps = nInt
		it.FPOps = nFp
		inv.Iterations = append(inv.Iterations, it)
	}
	return inv
}

// expandStreams produces the interleaved address sequence of a stream set.
func expandStreams(ss []strm, regs map[string]region, rng *rand.Rand) []mem.VAddr {
	var seqs [][]mem.VAddr
	for _, s := range ss {
		r, ok := regs[s.reg]
		if !ok {
			sim.Failf("workloads", 0, "", "unknown region %q in stream spec", s.reg)
		}
		stride := s.stride
		if stride == 0 {
			// Default: word-granularity streaming, 8 accesses per line —
			// the spatial locality that lets the L0X filter ~80% of L1X
			// accesses (Lesson 3).
			stride = 8
		}
		// Every pattern's per-pass length is deterministic, so size the
		// sequence exactly up front: benchmark builds run once per simulated
		// config, and append-doubling here was a measurable share of build
		// garbage.
		seq := make([]mem.VAddr, 0, max(1, s.passes)*passLen(s, r, stride))
		for p := 0; p < max(1, s.passes); p++ {
			switch s.pattern {
			case patRandom:
				n := r.size / stride
				for i := 0; i < n; i++ {
					off := rng.Intn(r.size) &^ 7
					seq = append(seq, r.base+mem.VAddr(off))
				}
			case patStencil:
				for off := 0; off < r.size; off += stride {
					seq = append(seq, r.base+mem.VAddr(off))
					// Neighbour taps: previous and next line.
					if off >= mem.LineBytes {
						seq = append(seq, r.base+mem.VAddr(off-mem.LineBytes))
					}
					if off+mem.LineBytes < r.size {
						seq = append(seq, r.base+mem.VAddr(off+mem.LineBytes))
					}
				}
			case patBlocked:
				reuse := s.reuse
				if reuse == 0 {
					reuse = blockedReuse
				}
				for blk := 0; blk < r.size; blk += blockedBytes {
					end := blk + blockedBytes
					if end > r.size {
						end = r.size
					}
					for rep := 0; rep < reuse; rep++ {
						for off := blk; off < end; off += stride {
							seq = append(seq, r.base+mem.VAddr(off))
						}
					}
				}
			default:
				for off := 0; off < r.size; off += stride {
					seq = append(seq, r.base+mem.VAddr(off))
				}
			}
		}
		if s.reverse {
			for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
				seq[i], seq[j] = seq[j], seq[i]
			}
		}
		seqs = append(seqs, seq)
	}
	// Round-robin interleave the streams.
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	out := make([]mem.VAddr, 0, total)
	for len(seqs) > 0 {
		live := seqs[:0]
		for _, s := range seqs {
			if len(s) == 0 {
				continue
			}
			out = append(out, s[0])
			live = append(live, s[1:])
		}
		seqs = live
	}
	return out
}

// passLen computes one pass's sequence length for a stream without
// generating it — every pattern (including patRandom, whose *count* is
// fixed even though its addresses are not) is deterministic in length.
func passLen(s strm, r region, stride int) int {
	switch s.pattern {
	case patRandom:
		return r.size / stride
	case patStencil:
		n := 0
		for off := 0; off < r.size; off += stride {
			n++
			if off >= mem.LineBytes {
				n++
			}
			if off+mem.LineBytes < r.size {
				n++
			}
		}
		return n
	case patBlocked:
		reuse := s.reuse
		if reuse == 0 {
			reuse = blockedReuse
		}
		n := 0
		for blk := 0; blk < r.size; blk += blockedBytes {
			end := blk + blockedBytes
			if end > r.size {
				end = r.size
			}
			n += reuse * ((end - blk + stride - 1) / stride)
		}
		return n
	default:
		return (r.size + stride - 1) / stride
	}
}

// hostTail builds the final host phase: the host incrementally reads the
// benchmark outputs (Figure 3: the host fetches tmp_2 as it runs step3).
func hostTail(spec benchSpec, regs map[string]region) trace.Invocation {
	inv := trace.Invocation{Function: spec.name + ".host_consume", AXC: -1}
	for _, out := range spec.outputs {
		r := regs[out]
		for off := 0; off < r.size; off += mem.LineBytes {
			inv.Iterations = append(inv.Iterations, trace.Iteration{
				Loads:  []mem.VAddr{r.base + mem.VAddr(off)},
				IntOps: 2,
			})
		}
	}
	return inv
}

// maxForwardLines caps each phase's forward set. Forwarding is only useful
// for lines the consumer reads promptly — pushing more than the consumer's
// L0X can hold just evicts earlier forwards, paying a writeback on top of
// the transfer. The paper's trace post-processing "identifies the stores to
// be forwarded"; this cap is that selection.
const maxForwardLines = 48

// ComputeForwards derives the Dx forwarding sets — the paper's trace
// post-processing (Section 3.2): for each accelerator phase, the dirty
// lines its successor phase (on a different AXC) loads, in the consumer's
// first-touch order, capped at maxForwardLines. Call it after constructing
// a custom Benchmark to enable FUSION-Dx forwarding.
func ComputeForwards(b *Benchmark) {
	if b.Forwards == nil {
		b.Forwards = make(map[int]ForwardSet)
	}
	phases := b.Program.Phases
	for i := 0; i+1 < len(phases); i++ {
		p, q := &phases[i], &phases[i+1]
		if p.Kind != trace.PhaseAccel || q.Kind != trace.PhaseAccel {
			continue
		}
		if p.Inv.AXC == q.Inv.AXC {
			continue
		}
		_, written := p.Inv.Lines()
		var lines []mem.VAddr
		seen := make(map[mem.VAddr]bool)
		for j := range q.Inv.Iterations {
			for _, a := range q.Inv.Iterations[j].Loads {
				la := a.LineAddr()
				if written[la] && !seen[la] {
					seen[la] = true
					lines = append(lines, la)
					if len(lines) >= maxForwardLines {
						break
					}
				}
			}
			if len(lines) >= maxForwardLines {
				break
			}
		}
		if len(lines) > 0 {
			b.Forwards[i] = ForwardSet{Consumer: q.Inv.AXC, Lines: lines}
		}
	}
}

func iround(f float64) int { return int(f + 0.5) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
