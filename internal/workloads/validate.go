package workloads

// Validation for externally produced or hand-edited benchmarks (see
// LoadJSON): catches the malformations that would otherwise surface as
// confusing simulator panics deep in a run.

import (
	"fmt"
	"sort"

	"fusion/internal/trace"
)

// Validate checks a benchmark for structural problems and returns them all
// (nil means the benchmark is runnable on every system).
func Validate(b *Benchmark) []error {
	var errs []error
	if b.Program == nil {
		return []error{fmt.Errorf("benchmark has no program")}
	}
	if len(b.Program.Phases) == 0 {
		errs = append(errs, fmt.Errorf("program %q has no phases", b.Program.Name))
	}

	seenAXC := map[int]bool{}
	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		inv := &ph.Inv
		switch ph.Kind {
		case trace.PhaseAccel:
			if inv.AXC < 0 {
				errs = append(errs, fmt.Errorf(
					"phase %d (%s): accelerator phase with AXC %d", i, inv.Function, inv.AXC))
			} else {
				seenAXC[inv.AXC] = true
			}
			if inv.LeaseTime == 0 && b.LeaseTimes[inv.Function] == 0 {
				errs = append(errs, fmt.Errorf(
					"phase %d (%s): no lease time (set Invocation.LeaseTime or Benchmark.LeaseTimes)",
					i, inv.Function))
			}
		case trace.PhaseHost:
			if inv.AXC >= 0 {
				errs = append(errs, fmt.Errorf(
					"phase %d (%s): host phase with AXC %d (use -1)", i, inv.Function, inv.AXC))
			}
		default:
			errs = append(errs, fmt.Errorf("phase %d (%s): unknown kind %d",
				i, inv.Function, ph.Kind))
		}
		if inv.Function == "" {
			errs = append(errs, fmt.Errorf("phase %d: empty function name", i))
		}
		if len(inv.Iterations) == 0 {
			errs = append(errs, fmt.Errorf("phase %d (%s): no iterations", i, inv.Function))
		}
		for j := range inv.Iterations {
			it := &inv.Iterations[j]
			if len(it.Loads) == 0 && len(it.Stores) == 0 && it.IntOps == 0 && it.FPOps == 0 {
				errs = append(errs, fmt.Errorf(
					"phase %d (%s) iteration %d: empty", i, inv.Function, j))
				break // one report per phase suffices
			}
			if it.IntOps < 0 || it.FPOps < 0 {
				errs = append(errs, fmt.Errorf(
					"phase %d (%s) iteration %d: negative op counts", i, inv.Function, j))
				break
			}
		}
	}

	// AXC ids must be dense from 0: the systems allocate one accelerator
	// and one L0X per id up to the maximum.
	axcs := make([]int, 0, len(seenAXC))
	for a := range seenAXC {
		axcs = append(axcs, a)
	}
	sort.Ints(axcs)
	max := -1
	if len(axcs) > 0 {
		max = axcs[len(axcs)-1]
	}
	for a := 0; a <= max; a++ {
		if !seenAXC[a] {
			errs = append(errs, fmt.Errorf(
				"AXC ids not dense: %d unused while %d exists (gaps waste tile resources)", a, max))
		}
	}

	// Forward sets must point at real accelerator phases and real consumers.
	// Sorted phase order keeps the error list reproducible.
	fwdPhases := make([]int, 0, len(b.Forwards))
	for i := range b.Forwards {
		fwdPhases = append(fwdPhases, i)
	}
	sort.Ints(fwdPhases)
	for _, i := range fwdPhases {
		f := b.Forwards[i]
		if i < 0 || i >= len(b.Program.Phases) {
			errs = append(errs, fmt.Errorf("forward set keyed by nonexistent phase %d", i))
			continue
		}
		if b.Program.Phases[i].Kind != trace.PhaseAccel {
			errs = append(errs, fmt.Errorf("forward set on non-accelerator phase %d", i))
		}
		if !seenAXC[f.Consumer] {
			errs = append(errs, fmt.Errorf(
				"forward set of phase %d targets unknown AXC %d", i, f.Consumer))
		}
		if len(f.Lines) == 0 {
			errs = append(errs, fmt.Errorf("forward set of phase %d is empty", i))
		}
	}
	return errs
}
