package workloads

// Benchmark serialization: traces round-trip through JSON so workloads can
// be inspected, archived, hand-edited, or produced by external tooling
// (e.g. a real dynamic-trace extractor feeding this simulator).

import (
	"encoding/json"
	"fmt"
	"io"
)

// SaveJSON writes the benchmark as JSON.
func SaveJSON(w io.Writer, b *Benchmark) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("workloads: encode: %w", err)
	}
	return nil
}

// LoadJSON reads a benchmark previously written by SaveJSON (or produced by
// an external trace extractor in the same schema). The forwarding sets are
// recomputed if absent.
func LoadJSON(r io.Reader) (*Benchmark, error) {
	var b Benchmark
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("workloads: decode: %w", err)
	}
	if b.Program == nil {
		return nil, fmt.Errorf("workloads: benchmark has no program")
	}
	if b.LeaseTimes == nil {
		b.LeaseTimes = make(map[string]uint64)
	}
	if b.MLP == nil {
		b.MLP = make(map[string]int)
	}
	b.Program.Seal() // trace is final; memoize the per-phase Lines views
	if b.Forwards == nil {
		ComputeForwards(&b)
	}
	if errs := Validate(&b); len(errs) > 0 {
		return nil, fmt.Errorf("workloads: invalid benchmark: %v (%d problems)", errs[0], len(errs))
	}
	return &b, nil
}
