package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fusion/internal/systems"
)

// SweepRequest is the body of POST /v1/sweep: a benchmark x system grid
// sharing one set of knobs, plus optional explicit cells appended after
// the grid. Cell order in the response is grid order (benches-major) then
// the explicit cells, independent of completion order.
type SweepRequest struct {
	Benches []string `json:"benches,omitempty"`
	Systems []string `json:"systems,omitempty"`
	// Base carries the shared knobs for every grid cell; its bench and
	// system fields are ignored (each grid point overrides them).
	Base  systems.Spec   `json:"base,omitempty"`
	Cells []systems.Spec `json:"cells,omitempty"`
	// WallMS bounds each job's wall-clock time in milliseconds; a job
	// over budget fails its cell with a deadline error. 0 means no bound.
	WallMS int64 `json:"wall_ms,omitempty"`
}

// expand materializes the request's cell list in canonical order.
func (r *SweepRequest) expand() []systems.Spec {
	specs := make([]systems.Spec, 0, len(r.Benches)*len(r.Systems)+len(r.Cells))
	for _, b := range r.Benches {
		for _, sys := range r.Systems {
			s := r.Base
			s.Bench, s.System = b, sys
			specs = append(specs, s)
		}
	}
	specs = append(specs, r.Cells...)
	return specs
}

// SweepResponse is the body of a successful sweep: one cell per requested
// spec, in request order. Individual cells may carry errors (budget,
// deadline, protocol, recovered panic) — a failed cell does not fail the
// response.
type SweepResponse struct {
	Cells []*CellResult `json:"cells"`
}

// Statsz is the GET /statsz body.
type Statsz struct {
	JobsRun       int64 `json:"jobs_run"`
	JobsCoalesced int64 `json:"jobs_coalesced"`
	JobsShed      int64 `json:"jobs_shed"`
	PanicsCaught  int64 `json:"panics_caught"`
	CachePutErrs  int64 `json:"cache_put_errs"`
	Inflight      int   `json:"inflight"`
	CacheEntries  int   `json:"cache_entries"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	Quarantined   int64 `json:"quarantined"`
}

// retryAfterSeconds is the back-off hint attached to 429 responses.
const retryAfterSeconds = 2

// maxRequestBytes bounds a request body; a grid query is small, and a
// fault plan embedded in a spec is a few hundred bytes.
const maxRequestBytes = 1 << 20

func (s *Service) routes() {
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/cell/{hash}", s.handleCell)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	specs := req.expand()
	if len(specs) == 0 {
		httpError(w, http.StatusBadRequest, "empty sweep: no benches x systems and no cells")
		return
	}
	// Validate every cell before admitting any: a malformed grid is the
	// client's bug and should cost zero simulation time.
	for i := range specs {
		specs[i] = specs[i].Normalized()
		if err := specs[i].Validate(); err != nil {
			httpError(w, http.StatusBadRequest, "cell %d (%s): %v", i, specs[i].Label(), err)
			return
		}
	}
	wall := time.Duration(req.WallMS) * time.Millisecond

	// Submit every cell; if any is shed or the service is draining, stop
	// the whole request promptly by canceling the remaining waits (the
	// scheduler cancels jobs whose last waiter leaves).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	cells := make([]*CellResult, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, err := s.sched.Submit(ctx, specs[i], wall)
			if err != nil {
				errs[i] = err
				if errors.Is(err, ErrBusy) || errors.Is(err, ErrDraining) {
					cancel()
				}
				return
			}
			cells[i] = cell
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrBusy):
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	for _, err := range errs {
		if err != nil {
			// Only the caller's own cancellation reaches here; there is
			// no one left to read a body, but be correct anyway.
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, &SweepResponse{Cells: cells})
}

func (s *Service) handleCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	cell, ok := s.cache.Get(hash)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached cell %s", hash)
		return
	}
	writeJSON(w, http.StatusOK, cell)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	sc := s.sched.counters()
	hits, misses, quarantined := s.cache.Counters()
	st := &Statsz{
		JobsRun: sc.ran, JobsCoalesced: sc.coalesced, JobsShed: sc.shed,
		PanicsCaught: sc.panics, CachePutErrs: sc.putErrs,
		Inflight:     sc.inflight,
		CacheEntries: s.cache.Len(), CacheHits: hits, CacheMisses: misses,
		Quarantined: quarantined,
	}
	writeJSON(w, http.StatusOK, st)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON body with a trailing newline (the encoder's
// convention), setting status and content type.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to tell the client.
		return
	}
}
