package service

// Service-level soak: concurrent clients hammer a daemon whose job body
// randomly panics on first attempts, the daemon is shut down mid-stream
// and restarted over the same cache directory, and cached entries are
// corrupted on disk between phases. Through all of it, every cell the
// daemon ever serves successfully must be byte-identical to a fresh
// sequential BuildCell run — and no request may ever kill the daemon.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fusion/internal/systems"
)

// soakUniverse is the pool of specs the soak draws from: one fast
// benchmark across all four systems plus knob variants, so the sequential
// reference stays cheap while still covering distinct cache entries.
func soakUniverse() []systems.Spec {
	specs := []systems.Spec{
		{Bench: "adpcm", System: "scratch"},
		{Bench: "adpcm", System: "shared"},
		{Bench: "adpcm", System: "fusion"},
		{Bench: "adpcm", System: "fusion-dx"},
		{Bench: "adpcm", System: "fusion", Large: true},
		{Bench: "adpcm", System: "fusion", WriteThrough: true},
	}
	for i := range specs {
		specs[i] = specs[i].Normalized()
	}
	return specs
}

func TestServiceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	universe := soakUniverse()

	// Sequential reference: the ground truth every daemon answer is
	// compared against, computed with no service machinery at all.
	reference := map[string][]byte{}
	for _, s := range universe {
		cell := BuildCell(context.Background(), s)
		if cell.Failed() {
			t.Fatalf("reference run %s failed: %s", s.Label(), cell.Error)
		}
		reference[cell.Hash] = cell.Marshal()
	}

	// Panic injection: each spec's first N attempts panic inside the job
	// body; later attempts run for real. The daemon must convert every
	// injected panic into a failed cell and survive.
	var panicMu sync.Mutex
	panicsLeft := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	for _, s := range universe {
		panicsLeft[s.Hash()] = rng.Intn(2) // 0 or 1 injected panics
	}
	chaosRun := func(ctx context.Context, s systems.Spec) *CellResult {
		panicMu.Lock()
		n := panicsLeft[s.Hash()]
		if n > 0 {
			panicsLeft[s.Hash()] = n - 1
			panicMu.Unlock()
			panic(fmt.Sprintf("soak: injected panic for %s", s.Label()))
		}
		panicMu.Unlock()
		return BuildCell(ctx, s)
	}

	dir := t.TempDir()
	mkService := func() *Service {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := &Service{cache: cache, logf: t.Logf}
		s.sched = newScheduler(cache, 4, 64, chaosRun)
		s.mux = http.NewServeMux()
		s.routes()
		return s
	}

	// checkCells verifies a response body: every successful cell must be
	// byte-identical to the reference; failed cells must be injected
	// panics (the only failure mode this soak arranges).
	checkCells := func(phase string, body []byte) (ok, failed int) {
		var sr SweepResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Errorf("%s: bad response body: %v\n%s", phase, err, body)
			return 0, 0
		}
		for _, cell := range sr.Cells {
			if cell.Failed() {
				failed++
				if !strings.Contains(cell.Error, "injected panic") &&
					!strings.Contains(cell.Error, "canceled") &&
					!strings.Contains(cell.Error, "draining") {
					t.Errorf("%s: unexpected cell failure: %s", phase, cell.Error)
				}
				continue
			}
			want, known := reference[cell.Hash]
			if !known {
				t.Errorf("%s: daemon served a cell outside the universe: %s", phase, cell.Spec.Label())
				continue
			}
			if !bytes.Equal(cell.Marshal(), want) {
				t.Errorf("%s: cell %s differs from the sequential reference:\ndaemon: %s\nfresh:  %s",
					phase, cell.Spec.Label(), cell.Marshal(), want)
			}
			ok++
		}
		return ok, failed
	}

	// requestBody builds a sweep over a random subset of the universe.
	requestBody := func(rng *rand.Rand) string {
		n := 1 + rng.Intn(len(universe))
		idx := rng.Perm(len(universe))[:n]
		cells := make([]systems.Spec, n)
		for i, j := range idx {
			cells[i] = universe[j]
		}
		b, err := json.Marshal(&SweepRequest{Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// --- Phase 1: concurrent clients against a fresh daemon. ---
	svc := mkService()
	ts := httptest.NewServer(svc)
	const clients, rounds = 6, 4
	var wg sync.WaitGroup
	var statMu sync.Mutex
	served, panicked := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
					strings.NewReader(requestBody(rng)))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				var buf bytes.Buffer
				_, err = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					// Load shedding is a legal answer; anything else is not.
					if resp.StatusCode != http.StatusTooManyRequests {
						t.Errorf("client %d: status %d: %s", c, resp.StatusCode, buf.Bytes())
					}
					continue
				}
				ok, failed := checkCells(fmt.Sprintf("phase1/client%d", c), buf.Bytes())
				statMu.Lock()
				served += ok
				panicked += failed
				statMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if served == 0 {
		t.Fatal("phase 1 served no successful cells")
	}

	// --- Phase 2: corrupt cached entries on disk; the daemon must
	// quarantine and recompute, still byte-identical. ---
	entries, err := filepath.Glob(filepath.Join(dir, "objects", "*", "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries on disk after phase 1 (err %v)", err)
	}
	corrupted := 0
	for i, path := range entries {
		if i%2 == 1 {
			continue // corrupt half, keep half
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x55
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	all, err := json.Marshal(&SweepRequest{Cells: universe})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(all))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phase 2 sweep: status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if ok, _ := checkCells("phase2", buf.Bytes()); ok != len(universe) {
		t.Fatalf("phase 2 served %d/%d cells byte-identically after corruption", ok, len(universe))
	}
	if _, _, quarantined := svc.cache.Counters(); quarantined < int64(corrupted) {
		t.Errorf("corrupted %d entries but quarantined only %d", corrupted, quarantined)
	}

	// --- Phase 3: shutdown mid-sweep, restart over the same directory,
	// verify the rebuilt cache still serves identical bytes. ---
	slow := make(chan struct{})
	var slowOnce sync.Once
	go func() {
		// One more client in flight while we pull the plug.
		defer slowOnce.Do(func() { close(slow) })
		body := requestBody(rand.New(rand.NewSource(999)))
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err == nil {
			resp.Body.Close() // any status is fine mid-shutdown
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := svc.Shutdown(ctx); err != nil {
		t.Errorf("drain failed: %v", err)
	}
	cancel()
	ts.Close()
	<-slow

	svc2 := mkService() // crash-recovers the index from disk
	ts2 := httptest.NewServer(svc2)
	defer ts2.Close()
	before := svc2.sched.counters().ran
	resp, err = http.Post(ts2.URL+"/v1/sweep", "application/json", bytes.NewReader(all))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart sweep: status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if ok, failed := checkCells("phase3", buf.Bytes()); ok != len(universe) || failed != 0 {
		t.Fatalf("post-restart sweep served %d ok / %d failed, want %d / 0",
			ok, failed, len(universe))
	}
	if after := svc2.sched.counters().ran; after != before {
		// Every panic was consumed in phase 1 and phase 2 refilled the
		// cache, so the restarted daemon should serve purely from disk.
		t.Logf("restarted daemon re-ran %d cells (cache partially cold) — allowed but unexpected", after-before)
	}
	if err := svc2.Shutdown(context.Background()); err != nil {
		t.Errorf("final drain failed: %v", err)
	}
}
