package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is a content-addressed on-disk store of successful CellResults,
// keyed by the spec hash. The simulator is deterministic, so a cached
// cell is valid forever — the only threats are torn writes and on-disk
// corruption, which the cache defends against in depth:
//
//   - every entry is written to a temp file and renamed into place, so a
//     crash mid-write never leaves a partial entry under a valid name;
//   - every entry carries a SHA-256 checksum of its payload; a mismatch
//     on read quarantines the file and reports a miss, and the cell is
//     simply recomputed;
//   - opening a cache directory re-validates every entry (crash
//     recovery): the in-memory index is rebuilt from the files that
//     verify, corrupt files are quarantined, and orphaned temp files are
//     deleted.
//
// Layout under the root directory:
//
//	objects/<hh>/<hash>.json  one entry, sharded by the first hash byte
//	quarantine/<n>-<name>     corrupt entries, kept for post-mortem
type Cache struct {
	root string

	mu     sync.Mutex
	index  map[string]bool //guard: mu
	qseq   int             //guard: mu — quarantine name counter (not a timestamp: deterministic)
	hits   int64           //guard: mu
	misses int64           //guard: mu
	badDug int64           //guard: mu — corrupt entries quarantined over this process's life
}

// entryMagic is the first line of every cache file; bumping it invalidates
// old caches wholesale when the payload schema changes.
const entryMagic = "fusiond-cell-v1"

// OpenCache opens (creating if needed) a cache rooted at dir and recovers
// its index from disk, quarantining anything that fails verification.
func OpenCache(dir string) (*Cache, error) {
	c := &Cache{root: dir, index: map[string]bool{}}
	for _, d := range []string{c.objectsDir(), c.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cache) objectsDir() string    { return filepath.Join(c.root, "objects") }
func (c *Cache) quarantineDir() string { return filepath.Join(c.root, "quarantine") }

func (c *Cache) entryPath(hash string) string {
	return filepath.Join(c.objectsDir(), hash[:2], hash+".json")
}

// recover rebuilds the index by re-verifying every entry on disk. Corrupt
// entries are quarantined; stray temp files (a crash mid-Put) are
// removed. ReadDir returns sorted names, so recovery order — and
// therefore quarantine numbering — is deterministic for a given disk
// state.
func (c *Cache) recover() error {
	// recover runs once from OpenCache, before the cache is shared, but it
	// mutates the index and (via quarantine) the counters, so it takes the
	// lock anyway: the discipline stays statically provable.
	c.mu.Lock()
	defer c.mu.Unlock()
	shards, err := os.ReadDir(c.objectsDir())
	if err != nil {
		return fmt.Errorf("cache recover: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			// A stray file directly under objects/ is a foreign object.
			c.quarantine(filepath.Join(c.objectsDir(), shard.Name()))
			continue
		}
		dir := filepath.Join(c.objectsDir(), shard.Name())
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("cache recover: %w", err)
		}
		for _, e := range entries {
			path := filepath.Join(dir, e.Name())
			if strings.HasPrefix(e.Name(), "tmp-") {
				os.Remove(path)
				continue
			}
			hash, ok := strings.CutSuffix(e.Name(), ".json")
			if !ok || len(hash) != sha256.Size*2 || hash[:2] != shard.Name() {
				c.quarantine(path)
				continue
			}
			if _, err := c.load(hash); err != nil {
				c.quarantine(path)
				continue
			}
			c.index[hash] = true
		}
	}
	return nil
}

// load reads and fully verifies one entry: magic line, payload checksum,
// and payload hash agreeing with the file's name. It does not touch the
// index.
func (c *Cache) load(hash string) (*CellResult, error) {
	raw, err := os.ReadFile(c.entryPath(hash))
	if err != nil {
		return nil, err
	}
	magic, rest, ok := bytes.Cut(raw, []byte{'\n'})
	if !ok || string(magic) != entryMagic {
		return nil, fmt.Errorf("cache entry %s: bad magic", hash)
	}
	sum, payload, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return nil, fmt.Errorf("cache entry %s: truncated header", hash)
	}
	digest := sha256.Sum256(payload)
	if string(sum) != hex.EncodeToString(digest[:]) {
		return nil, fmt.Errorf("cache entry %s: checksum mismatch", hash)
	}
	var cell CellResult
	if err := json.Unmarshal(payload, &cell); err != nil {
		return nil, fmt.Errorf("cache entry %s: %w", hash, err)
	}
	if cell.Hash != hash || cell.Spec.Hash() != hash {
		return nil, fmt.Errorf("cache entry %s: payload addresses %s", hash, cell.Hash)
	}
	if cell.Failed() {
		return nil, fmt.Errorf("cache entry %s: stores a failed cell", hash)
	}
	return &cell, nil
}

// quarantine moves a bad file into the quarantine directory under a
// sequence-numbered name (kept for post-mortem, out of the object
// namespace). Removal is the fallback when the move itself fails.
// Precondition: c.mu held (both callers, Get and recover, hold it).
func (c *Cache) quarantine(path string) {
	c.qseq++ //lint:lockguard c.mu held by both callers (Get and recover); see precondition
	dst := filepath.Join(c.quarantineDir(),
		//lint:lockguard c.mu held by both callers (Get and recover); see precondition
		fmt.Sprintf("%d-%s", c.qseq, filepath.Base(path)))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	c.badDug++ //lint:lockguard c.mu held by both callers (Get and recover); see precondition
}

// Get returns the cached cell for hash, verifying the entry end to end. A
// corrupt entry is quarantined and reported as a miss — the caller
// recomputes and the next Put heals the cache.
func (c *Cache) Get(hash string) (*CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.index[hash] {
		c.misses++
		return nil, false
	}
	cell, err := c.load(hash)
	if err != nil {
		delete(c.index, hash)
		c.quarantine(c.entryPath(hash))
		c.misses++
		return nil, false
	}
	c.hits++
	return cell, true
}

// Put stores a successful cell under its spec hash, atomically: payload
// and checksum go to a temp file in the destination shard, which is then
// renamed into place. Failed cells are rejected — a deterministic
// failure must re-diagnose on every request, and a cancellation is not a
// result at all.
func (c *Cache) Put(cell *CellResult) error {
	if cell.Failed() {
		return fmt.Errorf("cache: refusing to store failed cell %s", cell.Hash)
	}
	hash := cell.Hash
	if hash != cell.Spec.Hash() {
		return fmt.Errorf("cache: cell %s mis-addressed", hash)
	}
	payload := cell.Marshal()
	digest := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.WriteString(entryMagic)
	buf.WriteByte('\n')
	buf.WriteString(hex.EncodeToString(digest[:]))
	buf.WriteByte('\n')
	buf.Write(payload)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.index[hash] {
		return nil // already stored; determinism makes the bytes identical
	}
	shard := filepath.Join(c.objectsDir(), hash[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("cache put: %w", err)
	}
	tmp, err := os.CreateTemp(shard, "tmp-*")
	if err != nil {
		return fmt.Errorf("cache put: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.entryPath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache put: %w", err)
	}
	c.index[hash] = true
	return nil
}

// Len reports the number of verified entries currently indexed.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Counters reports cache activity since the process started.
func (c *Cache) Counters() (hits, misses, quarantined int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.badDug
}
