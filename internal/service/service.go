package service

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
)

// Options configures a Service.
type Options struct {
	// CacheDir roots the on-disk result cache. Empty disables persistence
	// (an in-memory-index-only cache still coalesces within the process
	// lifetime via the scheduler; every cell recomputes after restart).
	CacheDir string
	// Workers bounds concurrent simulations (<= 0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-running jobs (<= 0: 64). A full
	// queue sheds load with ErrBusy / HTTP 429.
	QueueDepth int
	// Logf, when set, receives operational log lines (quarantines,
	// recovered panics, shutdown progress).
	Logf func(format string, args ...any)
}

// Service is the fusiond core: an http.Handler over the scheduler and the
// result cache. Construct with New, serve via any http.Server, stop with
// Shutdown.
type Service struct {
	cache *Cache
	sched *scheduler
	mux   *http.ServeMux
	logf  func(format string, args ...any)
}

// New opens (and crash-recovers) the cache, starts the worker pool, and
// wires the HTTP routes.
func New(opts Options) (*Service, error) {
	dir := opts.CacheDir
	if dir == "" {
		return nil, fmt.Errorf("service: CacheDir is required")
	}
	cache, err := OpenCache(dir)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Service{cache: cache, logf: logf}
	s.sched = newScheduler(cache, workers, depth, BuildCell)
	s.mux = http.NewServeMux()
	s.routes()
	if _, _, q := cache.Counters(); q > 0 {
		logf("cache recovery quarantined %d corrupt entries", q)
	}
	logf("fusiond ready: %d workers, queue %d, %d cached cells", workers, depth, cache.Len())
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Cache exposes the result cache (read-mostly: smoke tests and operators
// inspect it).
func (s *Service) Cache() *Cache { return s.cache }

// Shutdown drains the service: admission stops immediately, running and
// queued jobs finish unless ctx expires first, at which point they are
// canceled and joined. Safe to call once; the HTTP mux stays mounted and
// answers ErrDraining (503) for work routes afterwards.
func (s *Service) Shutdown(ctx context.Context) error {
	s.logf("fusiond draining")
	err := s.sched.Shutdown(ctx)
	if err != nil {
		s.logf("fusiond drain deadline hit; outstanding jobs canceled: %v", err)
	} else {
		s.logf("fusiond drained cleanly")
	}
	return err
}
