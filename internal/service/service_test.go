package service

// Unit tests for the scheduler and the HTTP layer, driven by a fake job
// body so they run in microseconds. Real-simulator behavior (budgets,
// byte identity, panic injection under load) lives in soak_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fusion/internal/systems"
)

// fakeCell builds a plausible successful cell for a spec without running
// the simulator.
func fakeCell(spec systems.Spec) *CellResult {
	spec = spec.Normalized()
	return &CellResult{
		Spec: spec, Hash: spec.Hash(),
		Cycles: 1000, EnergyPJ: 1, LinesChecked: 1,
		VersionsDigest: "vd", StatsDigest: "sd",
	}
}

// newTestService wires a Service around a fake job body.
func newTestService(t *testing.T, workers, depth int,
	run func(ctx context.Context, s systems.Spec) *CellResult) *Service {
	t.Helper()
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := &Service{cache: cache, logf: t.Logf}
	s.sched = newScheduler(cache, workers, depth, run)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

func spec(bench, system string) systems.Spec {
	return systems.Spec{Bench: bench, System: system}
}

// TestSubmitCoalesces: concurrent submits of one spec share a single
// execution.
func TestSubmitCoalesces(t *testing.T) {
	release := make(chan struct{})
	var runs sync.Map
	svc := newTestService(t, 2, 16, func(_ context.Context, s systems.Spec) *CellResult {
		<-release
		n, _ := runs.LoadOrStore(s.Hash(), new(int))
		*n.(*int)++
		return fakeCell(s)
	})
	const callers = 5
	cells := make([]*CellResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell, err := svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			cells[i] = cell
		}(i)
	}
	// Let every caller attach before the job completes.
	for {
		sc := svc.sched.counters()
		if sc.coalesced == callers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if cells[i] != cells[0] {
			t.Fatalf("caller %d got a different cell object: singleflight broken", i)
		}
	}
	if sc := svc.sched.counters(); sc.ran != 1 {
		t.Fatalf("ran = %d jobs for %d coalesced callers, want 1", sc.ran, callers)
	}
}

// TestSubmitServesFromCache: a completed cell is served from the disk
// cache without re-running, including across a service restart on the
// same cache directory.
func TestSubmitServesFromCache(t *testing.T) {
	dir := t.TempDir()
	runs := 0
	mk := func() *Service {
		cache, err := OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := &Service{cache: cache, logf: t.Logf}
		s.sched = newScheduler(cache, 1, 4, func(_ context.Context, sp systems.Spec) *CellResult {
			runs++
			return fakeCell(sp)
		})
		s.mux = http.NewServeMux()
		s.routes()
		return s
	}
	svc := mk()
	first, err := svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("second submit re-ran the job (%d runs)", runs)
	}
	if !bytes.Equal(first.Marshal(), again.Marshal()) {
		t.Fatal("cached cell differs from the fresh one")
	}
	// "Restart": a new service over the same directory starts warm.
	svc2 := mk()
	warm, err := svc2.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("restarted service re-ran a persisted cell (%d runs)", runs)
	}
	if !bytes.Equal(first.Marshal(), warm.Marshal()) {
		t.Fatal("persisted cell differs across restart")
	}
}

// TestSubmitRejectsInvalidSpec: validation happens before any queueing.
func TestSubmitRejectsInvalidSpec(t *testing.T) {
	svc := newTestService(t, 1, 4, func(_ context.Context, s systems.Spec) *CellResult {
		return fakeCell(s)
	})
	if _, err := svc.sched.Submit(context.Background(), spec("nope", "fusion"), 0); err == nil {
		t.Fatal("unknown benchmark admitted")
	}
	if sc := svc.sched.counters(); sc.ran != 0 {
		t.Fatal("invalid spec reached a worker")
	}
}

// TestQueueShedsWhenFull: with one busy worker and a one-slot queue, a
// third distinct job is shed with ErrBusy and never runs.
func TestQueueShedsWhenFull(t *testing.T) {
	release := make(chan struct{})
	svc := newTestService(t, 1, 1, func(_ context.Context, s systems.Spec) *CellResult {
		<-release
		return fakeCell(s)
	})
	bg := context.Background()
	var wg sync.WaitGroup
	submit := func(sp systems.Spec) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.sched.Submit(bg, sp, 0); err != nil {
				t.Errorf("admitted job failed: %v", err)
			}
		}()
	}
	submit(spec("adpcm", "fusion")) // occupies the worker
	// Wait for the worker to pick it up so the queue is truly empty.
	for svc.sched.counters().inflight != 1 {
		time.Sleep(time.Millisecond)
	}
	submit(spec("adpcm", "shared")) // occupies the queue slot
	for svc.sched.counters().inflight != 2 {
		time.Sleep(time.Millisecond)
	}
	_, err := svc.sched.Submit(bg, spec("fft", "fusion"), 0)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submit returned %v, want ErrBusy", err)
	}
	close(release)
	wg.Wait()
	sc := svc.sched.counters()
	if sc.shed != 1 || sc.ran != 2 {
		t.Fatalf("shed=%d ran=%d, want 1 and 2", sc.shed, sc.ran)
	}
}

// TestPanicInJobBodyBecomesCell: a panic anywhere in the job body becomes
// a structured failed cell; the worker survives and runs the next job.
func TestPanicInJobBodyBecomesCell(t *testing.T) {
	svc := newTestService(t, 1, 4, func(_ context.Context, s systems.Spec) *CellResult {
		if s.Bench == "adpcm" {
			panic("injected failure")
		}
		return fakeCell(s)
	})
	cell, err := svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Failed() || cell.Component != "service.worker" {
		t.Fatalf("panic cell = %+v, want a service.worker failure", cell)
	}
	if !strings.Contains(cell.Error, "injected failure") {
		t.Fatalf("panic message lost: %q", cell.Error)
	}
	// The same worker is still alive.
	ok, err := svc.sched.Submit(context.Background(), spec("fft", "fusion"), 0)
	if err != nil || ok.Failed() {
		t.Fatalf("worker did not survive the panic: %v %+v", err, ok)
	}
	sc := svc.sched.counters()
	if sc.panics != 1 {
		t.Fatalf("panics counter = %d, want 1", sc.panics)
	}
	// Failed cells never enter the cache.
	if _, hit := svc.cache.Get(cell.Hash); hit {
		t.Fatal("failed cell was cached")
	}
}

// TestLastWaiterCancelsJob: when every waiter abandons a job, its context
// is canceled so the worker stops burning time on unwanted work.
func TestLastWaiterCancelsJob(t *testing.T) {
	canceled := make(chan struct{})
	svc := newTestService(t, 1, 4, func(ctx context.Context, s systems.Spec) *CellResult {
		<-ctx.Done()
		close(canceled)
		cell := fakeCell(s)
		cell.Error = ctx.Err().Error()
		return cell
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.sched.Submit(ctx, spec("adpcm", "fusion"), 0)
		done <- err
	}()
	for svc.sched.counters().inflight != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v, want context.Canceled", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("job context was never canceled after the last waiter left")
	}
}

// TestShutdownDrains: running jobs finish, new submits are refused, and
// Shutdown returns nil on a clean drain.
func TestShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	svc := newTestService(t, 1, 4, func(_ context.Context, s systems.Spec) *CellResult {
		<-release
		return fakeCell(s)
	})
	var got *CellResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got, _ = svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	}()
	for svc.sched.counters().inflight != 1 {
		time.Sleep(time.Millisecond)
	}
	shut := make(chan error, 1)
	go func() { shut <- svc.Shutdown(context.Background()) }()
	// Draining: a fresh submit is refused immediately. A probe that races
	// ahead of the drain flag gets admitted and would block on the busy
	// worker, so each probe carries its own short deadline.
	for {
		pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := svc.sched.Submit(pctx, spec("fft", "fusion"), 0)
		pcancel()
		if errors.Is(err, ErrDraining) {
			break
		}
	}
	close(release)
	if err := <-shut; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	wg.Wait()
	if got == nil || got.Failed() {
		t.Fatalf("in-flight job did not complete through the drain: %+v", got)
	}
}

// TestShutdownDeadlineCancelsJobs: a drain that overruns its deadline
// cancels outstanding jobs instead of hanging forever.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	svc := newTestService(t, 1, 4, func(ctx context.Context, s systems.Spec) *CellResult {
		<-ctx.Done() // a job that never finishes voluntarily
		cell := fakeCell(s)
		cell.Error = "canceled: " + ctx.Err().Error()
		return cell
	})
	go svc.sched.Submit(context.Background(), spec("adpcm", "fusion"), 0)
	for svc.sched.counters().inflight != 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
}

// --- HTTP layer ---

func postSweep(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPSweepGridOrder: a grid request returns cells in benches-major
// grid order plus explicit cells, regardless of completion order.
func TestHTTPSweepGridOrder(t *testing.T) {
	svc := newTestService(t, 4, 32, func(_ context.Context, s systems.Spec) *CellResult {
		return fakeCell(s)
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	resp, body := postSweep(t, ts, `{
		"benches": ["adpcm", "fft"],
		"systems": ["fusion", "shared"],
		"cells": [{"bench": "hist", "system": "scratch"}]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want := []string{"adpcm/fusion", "adpcm/shared", "fft/fusion", "fft/shared", "hist/scratch"}
	if len(sr.Cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(sr.Cells), len(want))
	}
	for i, cell := range sr.Cells {
		if got := cell.Spec.Label(); got != want[i] {
			t.Errorf("cell %d = %s, want %s", i, got, want[i])
		}
	}
}

// TestHTTPSweepResponseDeterministic: two identical requests produce
// byte-identical bodies (second served from cache).
func TestHTTPSweepResponseDeterministic(t *testing.T) {
	svc := newTestService(t, 2, 32, func(_ context.Context, s systems.Spec) *CellResult {
		return fakeCell(s)
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	req := `{"benches": ["adpcm"], "systems": ["fusion", "shared"]}`
	_, first := postSweep(t, ts, req)
	_, second := postSweep(t, ts, req)
	if !bytes.Equal(first, second) {
		t.Fatalf("responses differ:\n%s\n%s", first, second)
	}
	if sc := svc.sched.counters(); sc.ran != 2 {
		t.Fatalf("ran = %d, want 2 (second request fully cached)", sc.ran)
	}
}

// TestHTTPBadRequests: malformed bodies, unknown grid entries, unknown
// fields, and empty sweeps are 400s that cost no simulation.
func TestHTTPBadRequests(t *testing.T) {
	svc := newTestService(t, 1, 4, func(_ context.Context, s systems.Spec) *CellResult {
		return fakeCell(s)
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	for name, body := range map[string]string{
		"malformed":      `{`,
		"unknown-field":  `{"benchmarks": ["adpcm"]}`,
		"unknown-bench":  `{"benches": ["nope"], "systems": ["fusion"]}`,
		"unknown-system": `{"benches": ["adpcm"], "systems": ["quantum"]}`,
		"empty":          `{}`,
	} { //lint:ordered each case asserts independently; no cross-case state
		resp, rb := postSweep(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, rb)
		}
	}
	if sc := svc.sched.counters(); sc.ran != 0 {
		t.Fatalf("bad requests ran %d simulations", sc.ran)
	}
}

// TestHTTP429WhenSaturated: a saturated queue turns into 429 with a
// Retry-After hint, and the shed request's already-admitted sibling cells
// are abandoned (their jobs cancel) rather than burning workers.
func TestHTTP429WhenSaturated(t *testing.T) {
	release := make(chan struct{})
	svc := newTestService(t, 1, 1, func(ctx context.Context, s systems.Spec) *CellResult {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return fakeCell(s)
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	// Saturate: one job on the worker, one in the queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSweep(t, ts, `{"benches": ["adpcm"], "systems": ["fusion", "shared"]}`)
	}()
	for svc.sched.counters().inflight != 2 {
		time.Sleep(time.Millisecond)
	}
	resp, body := postSweep(t, ts, `{"benches": ["fft"], "systems": ["fusion"]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	close(release)
	wg.Wait()
}

// TestHTTPCellAndHealthAndStats exercises the small read-only endpoints.
func TestHTTPCellAndHealthAndStats(t *testing.T) {
	svc := newTestService(t, 1, 4, func(_ context.Context, s systems.Spec) *CellResult {
		return fakeCell(s)
	})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	_, _ = postSweep(t, ts, `{"benches": ["adpcm"], "systems": ["fusion"]}`)

	hash := spec("adpcm", "fusion").Hash()
	resp, err := http.Get(ts.URL + "/v1/cell/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached cell GET: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/cell/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent cell GET: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statsz
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsRun != 1 || st.CacheEntries != 1 {
		t.Fatalf("statsz = %+v, want jobs_run=1 cache_entries=1", st)
	}
}

// TestWallBudgetRealRun: a real simulation over its wall budget fails its
// cell with a deadline error instead of failing the request.
func TestWallBudgetRealRun(t *testing.T) {
	svc := newTestService(t, 1, 4, BuildCell)
	cell, err := svc.sched.Submit(context.Background(), spec("fft", "fusion"), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !cell.Failed() {
		t.Skip("fft finished inside 1ms on this machine")
	}
	if cell.Component != "deadline" {
		t.Fatalf("over-budget cell failed with %q (%s), want deadline", cell.Component, cell.Error)
	}
	if _, hit := svc.cache.Get(cell.Hash); hit {
		t.Fatal("deadline cell was cached")
	}
}
