package service

import (
	"context"
	"errors"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"fusion/internal/sim"
	"fusion/internal/systems"
)

// Scheduler errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrBusy: the job queue is full; the client should back off and
	// retry (429 + Retry-After).
	ErrBusy = errors.New("service: job queue full")
	// ErrDraining: the service is shutting down and admits no new work
	// (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// job is one in-flight simulation, shared by every waiter that asked for
// the same spec (singleflight). The job owns its own context: it is
// detached from any single request and canceled only when the last
// waiter walks away or the scheduler shuts down abortively.
type job struct {
	spec systems.Spec
	hash string
	wall time.Duration // wall budget from the admitting request; 0 = none

	ctx    context.Context
	cancel context.CancelFunc

	ready   chan struct{} // closed once cell is set
	cell    *CellResult
	waiters int
}

// scheduler owns the worker pool, the bounded admission queue, and the
// singleflight table. All simulator work in the service funnels through
// Submit.
type scheduler struct {
	cache *Cache
	run   func(ctx context.Context, s systems.Spec) *CellResult

	mu       sync.Mutex
	jobs     map[string]*job //guard: mu — the singleflight table
	draining bool            //guard: mu

	queue   chan *job
	workers sync.WaitGroup // worker goroutines

	// Counters.
	ran       int64 //guard: mu — jobs executed (not coalesced, not cache hits)
	coalesced int64 //guard: mu — submits attached to an existing job
	shed      int64 //guard: mu — submits rejected with ErrBusy
	panics    int64 //guard: mu — cells whose failure was a recovered panic
	putErrs   int64 //guard: mu — cache writes that failed (cell still served)
}

// newScheduler starts `workers` workers over a queue of depth `depth`.
// run is the job body — BuildCell in production, swappable in tests to
// inject panics and stalls.
func newScheduler(cache *Cache, workers, depth int,
	run func(ctx context.Context, s systems.Spec) *CellResult) *scheduler {
	s := &scheduler{
		cache: cache,
		run:   run,
		jobs:  map[string]*job{},
		queue: make(chan *job, depth),
	}
	for i := 0; i < workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Submit resolves one spec to a cell: from the in-flight job table
// (coalescing), from the disk cache, or by queueing a new job and
// waiting. ctx is the caller's interest, not the job's lifetime — when
// ctx ends, the caller detaches; the job itself is canceled only when
// its last waiter detaches. wall bounds the job's wall-clock time if it
// is this submit that creates the job.
func (s *scheduler) Submit(ctx context.Context, spec systems.Spec, wall time.Duration) (*CellResult, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hash := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if j, ok := s.jobs[hash]; ok {
		j.waiters++
		s.coalesced++
		s.mu.Unlock()
		return s.wait(ctx, j)
	}
	s.mu.Unlock()

	if cell, ok := s.cache.Get(hash); ok {
		return cell, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Re-check the table: another submit may have raced the cache probe.
	if j, ok := s.jobs[hash]; ok {
		j.waiters++
		s.coalesced++
		s.mu.Unlock()
		return s.wait(ctx, j)
	}
	jctx, cancel := context.WithCancel(context.Background())
	j := &job{
		spec: spec, hash: hash, wall: wall,
		ctx: jctx, cancel: cancel,
		ready: make(chan struct{}), waiters: 1,
	}
	select {
	case s.queue <- j:
	default:
		s.shed++
		s.mu.Unlock()
		cancel()
		return nil, ErrBusy
	}
	s.jobs[hash] = j
	s.mu.Unlock()
	return s.wait(ctx, j)
}

// wait blocks until the job completes or the caller's context ends. A
// departing caller decrements the waiter count; the last one out cancels
// the job, so abandoned work stops burning a worker.
func (s *scheduler) wait(ctx context.Context, j *job) (*CellResult, error) {
	select {
	case <-j.ready:
		return j.cell, nil
	case <-ctx.Done():
		s.mu.Lock()
		j.waiters--
		if j.waiters == 0 {
			j.cancel()
		}
		s.mu.Unlock()
		return nil, ctx.Err()
	}
}

// worker drains the queue until it closes (shutdown). Each job runs under
// its own context, optionally wall-bounded, with the run body's panic
// recovery guaranteeing the worker — and the daemon — survives anything
// the simulator does.
func (s *scheduler) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		ctx, cancel := j.ctx, j.cancel
		if j.wall > 0 {
			ctx, cancel = context.WithTimeout(j.ctx, j.wall)
		}
		cell := s.safeRun(ctx, j.spec)
		cancel()
		var putErr error
		if !cell.Failed() {
			// A put failure is not the client's problem: the cell is
			// still served; the cache just stays cold for this spec.
			putErr = s.cache.Put(cell)
		}
		s.mu.Lock()
		s.ran++
		if putErr != nil {
			s.putErrs++
		}
		if cell.Component == "service.worker" {
			s.panics++
		}
		//lint:hotmap dedup table keyed by spec hash; one delete per job, and a job is an entire simulation
		delete(s.jobs, j.hash)
		j.cell = cell
		s.mu.Unlock()
		close(j.ready)
		j.cancel()
	}
}

// safeRun executes the job body with a final layer of panic recovery.
// BuildCell already converts simulator panics, but the worker must
// survive even a bug in the job body itself — a dead worker would shrink
// the pool silently until the daemon deadlocks.
func (s *scheduler) safeRun(ctx context.Context, spec systems.Spec) (cell *CellResult) {
	defer func() {
		if r := recover(); r != nil {
			spec = spec.Normalized()
			cell = &CellResult{Spec: spec, Hash: spec.Hash()}
			pe := sim.PanicError("service.worker", 0, r, string(debug.Stack()))
			fillError(cell, pe)
		}
	}()
	return s.run(ctx, spec)
}

// Shutdown stops admission and drains: queued and running jobs keep
// executing until done or until ctx expires, at which point every
// remaining job is canceled and the workers are joined. It returns nil
// on a clean drain and ctx's error if the deadline forced cancellation.
func (s *scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("service: shutdown already in progress")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		hashes := make([]string, 0, len(s.jobs))
		for h := range s.jobs {
			hashes = append(hashes, h)
		}
		sort.Strings(hashes)
		for _, h := range hashes {
			s.jobs[h].cancel()
		}
		s.mu.Unlock()
		<-done // cancellation unblocks the workers promptly
		return ctx.Err()
	}
}

// schedCounters is a snapshot of the scheduler's activity counters.
type schedCounters struct {
	ran, coalesced, shed, panics, putErrs int64
	inflight                              int
}

// counters snapshots the scheduler counters.
func (s *scheduler) counters() schedCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return schedCounters{
		ran: s.ran, coalesced: s.coalesced, shed: s.shed,
		panics: s.panics, putErrs: s.putErrs, inflight: len(s.jobs),
	}
}
