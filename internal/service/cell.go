// Package service implements fusiond: a crash-safe sweep service over the
// simulator. It exposes benchmark x system x config grid queries over
// HTTP/JSON, schedules the cells on a bounded worker pool with
// singleflight coalescing, enforces per-job cycle and wall-time budgets,
// converts every simulator failure — including escaped panics — into a
// structured per-cell result (a request can fail; the daemon cannot), and
// persists successful cells in a content-addressed, checksummed on-disk
// cache that survives crashes and quarantines corruption.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"

	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/systems"
	"fusion/internal/workloads"
)

// CellResult is the service's unit of work and of caching: one simulated
// (benchmark, system, knobs) cell, reduced to scalar measurements plus
// digests of the bulky deterministic state. Field order is the canonical
// JSON order; Marshal of the same run is byte-identical everywhere —
// fresh, cached, or replayed on another machine.
type CellResult struct {
	Spec systems.Spec `json:"spec"`
	// Hash is the spec's content address — the cache key.
	Hash string `json:"hash"`

	Cycles    uint64  `json:"cycles,omitempty"`
	DMACycles uint64  `json:"dma_cycles,omitempty"`
	EnergyPJ  float64 `json:"energy_pj,omitempty"`
	DMABytes  int64   `json:"dma_bytes,omitempty"`
	Forwarded int64   `json:"forwarded_blocks,omitempty"`

	// LinesChecked/LinesBad compare the run's final memory image against
	// the sequential golden model — the service re-verifies every cell it
	// serves.
	LinesChecked int `json:"lines_checked,omitempty"`
	LinesBad     int `json:"lines_bad,omitempty"`
	// VersionsDigest and StatsDigest are order-canonicalized SHA-256
	// digests of the final memory image and the full counter set; byte
	// equality of two cells implies the underlying runs were identical.
	VersionsDigest string `json:"versions_digest,omitempty"`
	StatsDigest    string `json:"stats_digest,omitempty"`

	// Error describes a failed run (budget, deadline, protocol violation,
	// recovered panic); Component and ErrCycle localize it. A cell with a
	// non-empty Error has no measurements and is never cached.
	Error     string `json:"error,omitempty"`
	Component string `json:"component,omitempty"`
	ErrCycle  uint64 `json:"err_cycle,omitempty"`
}

// Failed reports whether the cell describes a failed run.
func (c *CellResult) Failed() bool { return c.Error != "" }

// Marshal returns the canonical JSON encoding of the cell. Encoding a
// CellResult cannot fail (fixed field types, no cycles), so the error is
// dropped by construction.
func (c *CellResult) Marshal() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Unreachable: every field is a plain serializable type.
		return []byte(fmt.Sprintf(`{"hash":%q,"error":%q}`, c.Hash, err.Error()))
	}
	return b
}

// BuildCell runs one spec to completion under ctx and reduces it to a
// CellResult. It never returns an error and never panics: simulator
// failures — structured protocol errors, cancellation, and any foreign
// panic escaping the engine — are folded into the cell's Error fields.
// The result is deterministic: two BuildCell calls for the same spec
// produce byte-identical Marshal output.
func BuildCell(ctx context.Context, s systems.Spec) (cell *CellResult) {
	s = s.Normalized()
	cell = &CellResult{Spec: s, Hash: s.Hash()}
	defer func() {
		if r := recover(); r != nil {
			pe := sim.PanicError("service.worker", 0, r, string(debug.Stack()))
			fillError(cell, pe)
		}
	}()
	if err := s.Validate(); err != nil {
		fillError(cell, err)
		return cell
	}
	cfg, err := s.Config()
	if err != nil {
		fillError(cell, err)
		return cell
	}
	b := workloads.Get(s.Bench)
	res, err := systems.RunCtx(ctx, b, cfg)
	if err != nil {
		fillError(cell, err)
		return cell
	}
	fillMeasurements(cell, b, res)
	return cell
}

// fillError records a failed run on the cell, surfacing the protocol
// error's component and cycle when the failure carries them.
func fillError(c *CellResult, err error) {
	c.Error = err.Error()
	var pe *sim.ProtocolError
	if errors.As(err, &pe) {
		c.Component = pe.Component
		c.ErrCycle = pe.Cycle
	}
}

// fillMeasurements reduces a completed run to the cell's scalars and
// digests, re-verifying the final memory image against the sequential
// golden model.
func fillMeasurements(c *CellResult, b *workloads.Benchmark, res *systems.Result) {
	c.Cycles = res.Cycles
	c.DMACycles = res.DMACycles
	c.EnergyPJ = res.Energy.Total()
	c.DMABytes = res.DMABytes
	c.Forwarded = res.ForwardedBlocks

	want := systems.ExpectedVersions(b)
	addrs := make([]mem.VAddr, 0, len(want))
	for a := range want {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := sha256.New()
	var buf [16]byte
	for _, a := range addrs {
		c.LinesChecked++
		got := res.FinalVersions[a]
		if got != want[a] {
			c.LinesBad++
		}
		binary.LittleEndian.PutUint64(buf[:8], uint64(a))
		binary.LittleEndian.PutUint64(buf[8:], got)
		h.Write(buf[:])
	}
	c.VersionsDigest = hex.EncodeToString(h.Sum(nil))

	names := append([]string(nil), res.Stats.Names()...)
	sort.Strings(names)
	h = sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%s=%d\n", name, res.Stats.Get(name))
	}
	c.StatsDigest = hex.EncodeToString(h.Sum(nil))
}
