package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fusion/internal/systems"
)

func testCell(t *testing.T, bench, system string) *CellResult {
	t.Helper()
	s := systems.Spec{Bench: bench, System: system}.Normalized()
	return &CellResult{
		Spec: s, Hash: s.Hash(),
		Cycles: 12345, EnergyPJ: 6.5,
		LinesChecked: 10, VersionsDigest: "aa", StatsDigest: "bb",
	}
}

func TestCachePutGetRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell(t, "adpcm", "fusion")
	if err := c.Put(cell); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(cell.Hash)
	if !ok {
		t.Fatal("stored cell missed")
	}
	if string(got.Marshal()) != string(cell.Marshal()) {
		t.Fatalf("round trip changed the cell:\n%s\n%s", cell.Marshal(), got.Marshal())
	}
	if _, ok := c.Get(strings.Repeat("0", 64)); ok {
		t.Fatal("hit on an absent hash")
	}
}

func TestCacheRejectsFailedCells(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell(t, "adpcm", "fusion")
	cell.Error = "boom"
	if err := c.Put(cell); err == nil {
		t.Fatal("failed cell accepted into the cache")
	}
	mis := testCell(t, "adpcm", "shared")
	mis.Hash = testCell(t, "adpcm", "fusion").Hash
	if err := c.Put(mis); err == nil {
		t.Fatal("mis-addressed cell accepted into the cache")
	}
}

// TestCacheQuarantinesCorruption flips bytes in a stored entry and expects
// the next Get to miss, quarantine the file, and let a fresh Put heal the
// entry.
func TestCacheQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell(t, "fft", "fusion")
	if err := c.Put(cell); err != nil {
		t.Fatal(err)
	}
	path := c.entryPath(cell.Hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cell.Hash); ok {
		t.Fatal("corrupt entry served")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(q), err)
	}
	if err := c.Put(cell); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cell.Hash); !ok {
		t.Fatal("healed entry missed")
	}
	_, _, quarantined := c.Counters()
	if quarantined != 1 {
		t.Fatalf("quarantine counter = %d, want 1", quarantined)
	}
}

// TestCacheRecovery reopens a cache directory containing good entries, a
// corrupted entry, an orphaned temp file (torn write), and a foreign
// file, and expects the index to keep exactly the entries that verify.
func TestCacheRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testCell(t, "adpcm", "fusion")
	bad := testCell(t, "adpcm", "shared")
	for _, cell := range []*CellResult{good, bad} {
		if err := c.Put(cell); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one entry on disk.
	path := c.entryPath(bad.Hash)
	if err := os.WriteFile(path, []byte("fusiond-cell-v1\ndeadbeef\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Torn write: an orphaned temp file in a shard.
	tornDir := filepath.Join(dir, "objects", good.Hash[:2])
	if err := os.WriteFile(filepath.Join(tornDir, "tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign object directly under objects/.
	if err := os.WriteFile(filepath.Join(dir, "objects", "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("recovered index holds %d entries, want 1", re.Len())
	}
	if _, ok := re.Get(good.Hash); !ok {
		t.Fatal("good entry lost in recovery")
	}
	if _, ok := re.Get(bad.Hash); ok {
		t.Fatal("corrupt entry survived recovery")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 2 { // the corrupt entry and the foreign file
		names := make([]string, len(q))
		for i, e := range q {
			names[i] = e.Name()
		}
		t.Fatalf("quarantine holds %v, want 2 files", names)
	}
	// The torn temp file is deleted, not quarantined.
	left, err := os.ReadDir(tornDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range left {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("torn temp file %s survived recovery", e.Name())
		}
	}
}

// TestCacheRejectsWrongPayloadAddress: an entry whose payload hashes to a
// different spec than its filename claims is treated as corrupt even with
// a valid checksum (defends against copy/rename mistakes).
func TestCacheRejectsWrongPayloadAddress(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := testCell(t, "adpcm", "fusion")
	if err := c.Put(cell); err != nil {
		t.Fatal(err)
	}
	other := testCell(t, "fft", "shared")
	src := c.entryPath(cell.Hash)
	dst := c.entryPath(other.Hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get(other.Hash); ok {
		t.Fatal("mis-addressed copy served under the wrong hash")
	}
	if _, ok := re.Get(cell.Hash); !ok {
		t.Fatal("original entry lost")
	}
}
