// Package dram models the main memory of Table 2: four channels, open-page
// row-buffer policy, a 32-entry command queue per channel, and ~200-cycle
// access latency.
//
// The model is deliberately simple — the paper's evaluation is dominated by
// on-chip effects, and DRAM matters only as a high, roughly constant cost
// behind LLC misses — but it keeps the two behaviours that can shift
// results: row-buffer locality (streaming accelerators see row hits) and
// queueing under burst traffic (DMA windows).
package dram

import (
	"fmt"
	"strings"

	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// Config holds the memory-system parameters.
type Config struct {
	Channels    int
	QueueDepth  int    // command-queue entries per channel (Table 2: 32)
	RowBytes    int    // open-page row size
	RowHitLat   uint64 // cycles: CAS on an open row
	RowMissLat  uint64 // cycles: precharge + activate + CAS
	BurstCycles uint64 // channel occupancy per 64B transfer
}

// DefaultConfig matches Table 2 (average latency ≈ 200 cycles).
func DefaultConfig() Config {
	return Config{
		Channels:    4,
		QueueDepth:  32,
		RowBytes:    2048,
		RowHitLat:   140,
		RowMissLat:  230,
		BurstCycles: 4,
	}
}

// Request is one line-granularity memory command.
type Request struct {
	Addr  mem.PAddr
	Write bool
	// Done runs when the command completes (data returned / write retired).
	Done func(now uint64)
}

type channel struct {
	queue     []Request
	openRow   uint64
	rowValid  bool
	busyUntil uint64
}

// DRAM is the memory controller plus channels. It is a sim.Ticker.
type DRAM struct {
	cfg      Config
	eng      *sim.Engine
	meter    *energy.Meter
	model    energy.Model
	channels []channel
	inj      *faults.Injector

	cQueueFull   *stats.Counter
	cSubmitted   *stats.Counter
	cRowHit      *stats.Counter
	cRowMiss     *stats.Counter
	cFaultSpikes *stats.Counter
	cReads       *stats.Counter
	cWrites      *stats.Counter
}

// New builds a DRAM and registers it with the engine.
func New(eng *sim.Engine, cfg Config, model energy.Model, meter *energy.Meter, st *stats.Set) *DRAM {
	d := &DRAM{
		cfg:          cfg,
		eng:          eng,
		meter:        meter,
		model:        model,
		channels:     make([]channel, cfg.Channels),
		cQueueFull:   st.Counter("dram.queue_full"),
		cSubmitted:   st.Counter("dram.submitted"),
		cRowHit:      st.Counter("dram.row_hit"),
		cRowMiss:     st.Counter("dram.row_miss"),
		cFaultSpikes: st.Counter("dram.fault_spikes"),
		cReads:       st.Counter("dram.reads"),
		cWrites:      st.Counter("dram.writes"),
	}
	eng.Register(d)
	return d
}

// Name implements sim.Ticker.
func (d *DRAM) Name() string { return "dram" }

// Idle implements sim.IdleTicker: with every command queue empty, Tick
// cannot issue anything regardless of busyUntil, so skipping its per-cycle
// polling is safe. A queued command keeps the controller busy even while
// its channel waits out a burst — issue timing depends on observing
// busyUntil cycle by cycle.
func (d *DRAM) Idle() bool {
	for i := range d.channels {
		if len(d.channels[i].queue) > 0 {
			return false
		}
	}
	return true
}

// SetInjector attaches a fault injector; each command's service latency may
// then spike per the plan (deterministic per channel stream).
func (d *DRAM) SetInjector(inj *faults.Injector) { d.inj = inj }

// channelOf maps a line address to its channel (line interleaving).
func (d *DRAM) channelOf(a mem.PAddr) int {
	return int(a.LineID() % uint64(d.cfg.Channels))
}

// rowOf returns the row number within the channel.
func (d *DRAM) rowOf(a mem.PAddr) uint64 {
	return uint64(a) / uint64(d.cfg.RowBytes)
}

// Submit enqueues a request. It returns false when the target channel's
// command queue is full; the caller must retry later (back-pressure).
func (d *DRAM) Submit(r Request) bool {
	ch := &d.channels[d.channelOf(r.Addr)]
	if len(ch.queue) >= d.cfg.QueueDepth {
		d.cQueueFull.Inc()
		return false
	}
	ch.queue = append(ch.queue, r)
	d.cSubmitted.Inc()
	return true
}

// Tick issues at most one command per channel per cycle.
func (d *DRAM) Tick(now uint64) {
	for i := range d.channels {
		ch := &d.channels[i]
		if len(ch.queue) == 0 || now < ch.busyUntil {
			continue
		}
		req := ch.queue[0]
		ch.queue = ch.queue[1:]

		row := d.rowOf(req.Addr)
		lat := d.cfg.RowMissLat
		if ch.rowValid && ch.openRow == row {
			lat = d.cfg.RowHitLat
			d.cRowHit.Inc()
		} else {
			d.cRowMiss.Inc()
		}
		if extra := d.inj.DRAMDelay(i); extra > 0 {
			lat += extra
			d.cFaultSpikes.Inc()
		}
		d.eng.Progress() // a command issuing is forward progress
		ch.openRow = row
		ch.rowValid = true
		ch.busyUntil = now + d.cfg.BurstCycles

		if d.meter != nil {
			d.meter.Add(energy.CatDRAM, d.model.DRAMAccess)
			d.meter.Add(energy.CatLinkMem, d.model.LinkL2DRAM*float64(mem.LineBytes))
		}
		if req.Write {
			d.cWrites.Inc()
		} else {
			d.cReads.Inc()
		}
		done := req.Done
		if done != nil {
			d.eng.ScheduleAt(now+lat, done)
		}
	}
}

// QueueOccupancy returns the total queued commands across channels.
func (d *DRAM) QueueOccupancy() int {
	n := 0
	for i := range d.channels {
		n += len(d.channels[i].queue)
	}
	return n
}

// DumpState describes per-channel queue state for watchdog diagnostics.
// Empty when nothing is queued.
func (d *DRAM) DumpState() string {
	var b strings.Builder
	for i := range d.channels {
		ch := &d.channels[i]
		if len(ch.queue) == 0 {
			continue
		}
		fmt.Fprintf(&b, "ch%d: %d queued (head %#x, busy until %d)\n",
			i, len(ch.queue), uint64(ch.queue[0].Addr), ch.busyUntil)
	}
	return b.String()
}
