package dram

// Coverage for the controller's diagnostic and wiring surface: the ticker
// identity, the idle-skip predicate, watchdog state dumps, and the
// fault-injection latency path.

import (
	"strings"
	"testing"

	"fusion/internal/faults"
)

func TestNameAndIdle(t *testing.T) {
	eng, d, _, _ := setup()
	if d.Name() != "dram" {
		t.Fatalf("Name() = %q", d.Name())
	}
	if !d.Idle() {
		t.Fatal("empty controller not idle")
	}
	d.Submit(Request{Addr: 0x1000, Done: func(uint64) {}})
	if d.Idle() {
		t.Fatal("controller idle with a queued command")
	}
	run(eng, 400)
	if !d.Idle() {
		t.Fatal("controller not idle after draining")
	}
}

func TestDumpState(t *testing.T) {
	_, d, _, _ := setup()
	if d.DumpState() != "" {
		t.Fatalf("empty dump = %q", d.DumpState())
	}
	d.Submit(Request{Addr: 0x2000, Done: func(uint64) {}})
	dump := d.DumpState()
	if !strings.Contains(dump, "queued") || !strings.Contains(dump, "0x2000") {
		t.Fatalf("dump does not describe the queued command: %q", dump)
	}
}

func TestFaultInjectorSpikesLatency(t *testing.T) {
	// Every command spikes: the faulted run must finish strictly later
	// than the clean run and count its spikes.
	var cleanDone, spikedDone uint64

	eng, d, _, _ := setup()
	d.Submit(Request{Addr: 0x1000, Done: func(now uint64) { cleanDone = now }})
	run(eng, 1000)

	eng2, d2, st2, _ := setup()
	d2.SetInjector(faults.NewInjector(faults.Plan{
		Seed: 7, DRAMSpikeProb: 1.0, DRAMSpikeExtra: 200,
	}))
	d2.Submit(Request{Addr: 0x1000, Done: func(now uint64) { spikedDone = now }})
	run(eng2, 1000)

	if cleanDone == 0 || spikedDone == 0 {
		t.Fatalf("requests did not complete (clean %d, spiked %d)", cleanDone, spikedDone)
	}
	if spikedDone <= cleanDone {
		t.Fatalf("spiked completion %d not later than clean %d", spikedDone, cleanDone)
	}
	if st2.Get("dram.fault_spikes") == 0 {
		t.Fatal("fault_spikes counter did not advance")
	}
}
