package dram

import (
	"testing"

	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

func setup() (*sim.Engine, *DRAM, *stats.Set, *energy.Meter) {
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	d := New(eng, DefaultConfig(), energy.Default(), mt, st)
	return eng, d, st, mt
}

func run(eng *sim.Engine, cycles int) {
	for i := 0; i < cycles; i++ {
		eng.Step()
	}
}

func TestReadCompletesWithinLatency(t *testing.T) {
	eng, d, st, _ := setup()
	var doneAt uint64
	ok := d.Submit(Request{Addr: 0x1000, Done: func(now uint64) { doneAt = now }})
	if !ok {
		t.Fatal("submit rejected on empty queue")
	}
	run(eng, 400)
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	cfg := DefaultConfig()
	if doneAt < cfg.RowHitLat || doneAt > cfg.RowMissLat+10 {
		t.Fatalf("completed at %d, want within [%d,%d]", doneAt, cfg.RowHitLat, cfg.RowMissLat+10)
	}
	if st.Get("dram.reads") != 1 {
		t.Fatalf("reads stat = %d", st.Get("dram.reads"))
	}
}

func TestRowBufferHit(t *testing.T) {
	eng, d, st, _ := setup()
	// Two lines in the same row and channel: stride by channels*64 within a 2KB row.
	d.Submit(Request{Addr: 0x0000, Done: func(uint64) {}})
	d.Submit(Request{Addr: 0x0100, Done: func(uint64) {}}) // same channel (line 4 % 4 == 0), same 2KB row
	run(eng, 800)
	if st.Get("dram.row_miss") != 1 || st.Get("dram.row_hit") != 1 {
		t.Fatalf("row_miss=%d row_hit=%d, want 1/1",
			st.Get("dram.row_miss"), st.Get("dram.row_hit"))
	}
}

func TestRowBufferMissOnDifferentRow(t *testing.T) {
	eng, d, st, _ := setup()
	d.Submit(Request{Addr: 0x0000, Done: func(uint64) {}})
	d.Submit(Request{Addr: 0x10000, Done: func(uint64) {}}) // different row, same channel
	run(eng, 800)
	if st.Get("dram.row_miss") != 2 {
		t.Fatalf("row_miss=%d, want 2", st.Get("dram.row_miss"))
	}
}

func TestChannelInterleaving(t *testing.T) {
	_, d, _, _ := setup()
	ch := map[int]bool{}
	for i := 0; i < 4; i++ {
		ch[d.channelOf(mem.PAddr(i*64))] = true
	}
	if len(ch) != 4 {
		t.Fatalf("4 consecutive lines map to %d channels, want 4", len(ch))
	}
}

func TestQueueBackpressure(t *testing.T) {
	eng, d, st, _ := setup()
	// Fill channel 0's queue (addresses stride 4*64 stay on channel 0).
	accepted := 0
	for i := 0; i < 40; i++ {
		if d.Submit(Request{Addr: mem.PAddr(i * 256), Done: func(uint64) {}}) {
			accepted++
		}
	}
	if accepted != DefaultConfig().QueueDepth {
		t.Fatalf("accepted %d, want %d", accepted, DefaultConfig().QueueDepth)
	}
	if st.Get("dram.queue_full") == 0 {
		t.Fatal("no queue_full recorded")
	}
	run(eng, 2000)
	if d.QueueOccupancy() != 0 {
		t.Fatalf("queue not drained: %d", d.QueueOccupancy())
	}
}

func TestWritesCountedAndEnergy(t *testing.T) {
	eng, d, st, mt := setup()
	d.Submit(Request{Addr: 0x40, Write: true, Done: func(uint64) {}})
	run(eng, 400)
	if st.Get("dram.writes") != 1 {
		t.Fatalf("writes = %d", st.Get("dram.writes"))
	}
	if mt.Get(energy.CatDRAM) != energy.Default().DRAMAccess {
		t.Fatalf("dram energy = %v", mt.Get(energy.CatDRAM))
	}
	if mt.Get(energy.CatLinkMem) == 0 {
		t.Fatal("no memory-link energy accounted")
	}
}

func TestChannelServiceOrder(t *testing.T) {
	eng, d, _, _ := setup()
	var order []int
	// Distinct rows on the same channel: all row misses, equal latency, so
	// completion order reflects FIFO issue order.
	for i := 0; i < 3; i++ {
		i := i
		d.Submit(Request{Addr: mem.PAddr(i * 0x10000), Done: func(uint64) { order = append(order, i) }})
	}
	run(eng, 2000)
	if len(order) != 3 {
		t.Fatalf("completed %d, want 3", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want FIFO", order)
		}
	}
}

func TestNilDoneIsAllowed(t *testing.T) {
	eng, d, st, _ := setup()
	d.Submit(Request{Addr: 0x40, Write: true})
	run(eng, 400)
	if st.Get("dram.writes") != 1 {
		t.Fatal("write with nil Done not processed")
	}
}
