// Package accel models fixed-function accelerator datapaths in the style of
// Aladdin (Section 4, "Modelling accelerator cores"): execution walks the
// constrained dependence structure of the offloaded function cycle by
// cycle, firing operations as their inputs and datapath resources allow,
// with an aggressive non-blocking memory interface.
//
// The dependence structure is the iteration pipeline of package trace:
// loads of an iteration are mutually independent; compute waits on the
// iteration's loads; stores wait on its compute; up to PipelineDepth
// iterations overlap. Memory-level parallelism is bounded by MLP
// outstanding requests — the knob that reproduces Table 1's per-function
// MLP spread (1.0–5.7).
package accel

import (
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
)

// MemPort is the accelerator's view of its memory system: an L0X cache
// (FUSION), the shared L1X (SHARED), or a scratchpad (SCRATCH). Access
// returns false when the port cannot accept the request this cycle.
type MemPort interface {
	Access(kind mem.AccessKind, va mem.VAddr, done func(now uint64)) bool
}

// Config sets the datapath resources of one fixed-function accelerator.
type Config struct {
	IntALUs       int // integer ops retired per cycle
	FPUs          int // floating-point ops retired per cycle
	MemPorts      int // memory ops issued per cycle
	MLP           int // max outstanding memory requests
	PipelineDepth int // iterations in flight
}

// DefaultConfig is an aggressive fixed-function datapath: the paper assumes
// "an aggressive non-blocking interface to memory" (Section 4), which the
// deep iteration pipeline provides; the per-function MLP cap then bounds
// how much of it memory can actually absorb.
func DefaultConfig() Config {
	return Config{IntALUs: 4, FPUs: 2, MemPorts: 4, MLP: 6, PipelineDepth: 16}
}

// iterState tracks one in-flight iteration. Retired states recycle through
// a free list (every callback referencing one has fired by retirement).
type iterState struct {
	idx          int
	loadsIssued  int
	loadsDone    int
	computeLeft  int // cycles of compute remaining once loads complete
	storesIssued int
	storesDone   int
}

// memCb is a pooled completion callback for one memory access: it replaces
// the per-access closure (which allocated on every load/store issue). fn
// caches the bound method value so reuse allocates nothing.
type memCb struct {
	a    *Accelerator
	st   *iterState
	line uint64
	load bool
	fn   func(now uint64)
}

func (cb *memCb) done(uint64) {
	if cb.load {
		cb.st.loadsDone++
	} else {
		cb.st.storesDone++
	}
	a := cb.a
	a.release(cb.line)
	a.freeCbs = append(a.freeCbs, cb)
}

// Accelerator executes invocations against a MemPort. It is a sim.Ticker.
type Accelerator struct {
	name string
	cfg  Config
	eng  *sim.Engine

	inv    *trace.Invocation
	port   MemPort
	onDone func(now uint64)

	inflight  []*iterState
	freeIters []*iterState
	freeCbs   []*memCb
	nextIter  int
	// outstanding tracks in-flight memory requests at cache-line
	// granularity: several word accesses to one line count as a single
	// outstanding request (they merge in the cache's MSHR), matching how
	// the paper's Table 1 MLP is measured. Bounded by cfg.MLP, so a
	// linearly-scanned list replaces the former map.
	outstanding []lineCount

	startCycle uint64

	model energy.Model
	meter *energy.Meter

	cInvocations *stats.Counter
	cIntOps      *stats.Counter
	cFPOps       *stats.Counter
	cLoads       *stats.Counter
	cStores      *stats.Counter
	cCycles      *stats.Counter
	cMLPMilli    *stats.Counter

	// accumulated measurements
	busyCycles uint64
	mlpSamples uint64
	mlpSum     uint64
}

// lineCount is one outstanding line and its in-flight access count.
type lineCount struct {
	line  uint64
	count int
}

// outFind returns the index of line in the outstanding list, or -1.
func (a *Accelerator) outFind(line uint64) int {
	for i := range a.outstanding {
		if a.outstanding[i].line == line {
			return i
		}
	}
	return -1
}

// outInc bumps line's outstanding count, appending it if new.
func (a *Accelerator) outInc(line uint64) {
	if i := a.outFind(line); i >= 0 {
		a.outstanding[i].count++
		return
	}
	a.outstanding = append(a.outstanding, lineCount{line, 1})
}

// New builds an accelerator and registers it with the engine.
func New(eng *sim.Engine, name string, cfg Config,
	model energy.Model, meter *energy.Meter, st *stats.Set) *Accelerator {
	a := &Accelerator{name: name, cfg: cfg, eng: eng, model: model, meter: meter,
		cInvocations: st.Counter(name + ".invocations"),
		cIntOps:      st.Counter(name + ".int_ops"),
		cFPOps:       st.Counter(name + ".fp_ops"),
		cLoads:       st.Counter(name + ".loads"),
		cStores:      st.Counter(name + ".stores"),
		cCycles:      st.Counter(name + ".cycles"),
		cMLPMilli:    st.Counter(name + ".mlp_milli"),
	}
	eng.Register(a)
	return a
}

// Name implements sim.Ticker.
func (a *Accelerator) Name() string { return a.name }

// Busy reports whether an invocation is running.
func (a *Accelerator) Busy() bool { return a.inv != nil }

// Idle implements sim.IdleTicker: with no invocation loaded, Tick returns
// without touching any state, so the engine may fast-forward across the
// DMA-bound and drain stretches where the datapath sits unused.
func (a *Accelerator) Idle() bool { return a.inv == nil }

// Start launches an invocation. onDone fires the cycle the last operation
// retires. The accelerator must be idle.
func (a *Accelerator) Start(inv *trace.Invocation, port MemPort, onDone func(now uint64)) {
	if a.inv != nil {
		sim.Failf(a.name, a.eng.Now(), "", "Start while busy (running %s)", a.inv.Function)
	}
	a.inv = inv
	a.port = port
	a.onDone = onDone
	a.nextIter = 0
	a.inflight = a.inflight[:0]
	a.outstanding = a.outstanding[:0]
	a.startCycle = a.eng.Now()
	a.cInvocations.Inc()
}

// getIter returns a zeroed iterState, reusing a retired one if possible.
func (a *Accelerator) getIter(idx, computeLeft int) *iterState {
	var st *iterState
	if n := len(a.freeIters); n > 0 {
		st = a.freeIters[n-1]
		a.freeIters[n-1] = nil
		a.freeIters = a.freeIters[:n-1]
		*st = iterState{}
	} else {
		st = &iterState{}
	}
	st.idx, st.computeLeft = idx, computeLeft
	return st
}

// getCb returns a ready-to-issue completion callback from the pool.
func (a *Accelerator) getCb(st *iterState, line uint64, load bool) *memCb {
	var cb *memCb
	if n := len(a.freeCbs); n > 0 {
		cb = a.freeCbs[n-1]
		a.freeCbs[n-1] = nil
		a.freeCbs = a.freeCbs[:n-1]
	} else {
		cb = &memCb{a: a}
		cb.fn = cb.done
	}
	cb.st, cb.line, cb.load = st, line, load
	return cb
}

// computeCycles returns how many cycles the compute phase of it occupies,
// given the datapath widths, and accounts its energy.
func (a *Accelerator) computeCycles(it *trace.Iteration) int {
	ci := (it.IntOps + a.cfg.IntALUs - 1) / a.cfg.IntALUs
	cf := 0
	if it.FPOps > 0 {
		cf = (it.FPOps + a.cfg.FPUs - 1) / a.cfg.FPUs
	}
	c := ci
	if cf > c {
		c = cf
	}
	if c == 0 {
		c = 1
	}
	return c
}

// Tick advances the pipeline one cycle.
func (a *Accelerator) Tick(now uint64) {
	if a.inv == nil {
		return
	}
	a.busyCycles++
	// MLP is averaged over cycles with memory outstanding (the standard
	// definition; idle-memory compute cycles do not dilute it).
	if n := len(a.outstanding); n > 0 {
		a.mlpSamples++
		a.mlpSum += uint64(n)
	}

	// Admit new iterations into the pipeline. A Serial invocation admits
	// the next iteration only once every in-flight iteration's compute has
	// finished (its stores may still be draining).
	for len(a.inflight) < a.cfg.PipelineDepth && a.nextIter < len(a.inv.Iterations) {
		if a.inv.Serial && !a.computeDrained() {
			break
		}
		it := &a.inv.Iterations[a.nextIter]
		st := a.getIter(a.nextIter, a.computeCycles(it))
		if a.meter != nil {
			a.meter.Add(energy.CatCompute,
				float64(it.IntOps)*a.model.IntOp+float64(it.FPOps)*a.model.FPOp)
		}
		a.cIntOps.Add(int64(it.IntOps))
		a.cFPOps.Add(int64(it.FPOps))
		a.inflight = append(a.inflight, st)
		a.nextIter++
	}

	memIssued := 0

	// Issue loads (oldest iteration first), then advance compute, then
	// issue stores of iterations whose compute is done.
	for _, st := range a.inflight {
		if memIssued >= a.cfg.MemPorts {
			break // ports exhausted; no younger iteration can issue
		}
		it := &a.inv.Iterations[st.idx]
		for st.loadsIssued < len(it.Loads) && memIssued < a.cfg.MemPorts {
			addr := it.Loads[st.loadsIssued]
			line := uint64(addr) >> 6
			if a.outFind(line) < 0 && len(a.outstanding) >= a.cfg.MLP {
				break // a fresh line would exceed the MLP cap
			}
			cb := a.getCb(st, line, true)
			if !a.port.Access(mem.Load, addr, cb.fn) {
				a.freeCbs = append(a.freeCbs, cb)
				break // port back-pressure; retry next cycle
			}
			a.outInc(line)
			st.loadsIssued++
			memIssued++
			a.cLoads.Inc()
		}
	}

	for _, st := range a.inflight {
		it := &a.inv.Iterations[st.idx]
		if st.loadsDone == len(it.Loads) && st.computeLeft > 0 {
			st.computeLeft--
		}
	}

	for _, st := range a.inflight {
		if memIssued >= a.cfg.MemPorts {
			break // ports exhausted; no younger iteration can issue
		}
		it := &a.inv.Iterations[st.idx]
		if st.loadsDone < len(it.Loads) || st.computeLeft > 0 {
			continue
		}
		for st.storesIssued < len(it.Stores) && memIssued < a.cfg.MemPorts {
			addr := it.Stores[st.storesIssued]
			line := uint64(addr) >> 6
			if a.outFind(line) < 0 && len(a.outstanding) >= a.cfg.MLP {
				break
			}
			cb := a.getCb(st, line, false)
			if !a.port.Access(mem.Store, addr, cb.fn) {
				a.freeCbs = append(a.freeCbs, cb)
				break
			}
			a.outInc(line)
			st.storesIssued++
			memIssued++
			a.cStores.Inc()
		}
	}

	// Retire completed iterations from the head of the pipeline (in order).
	for len(a.inflight) > 0 {
		st := a.inflight[0]
		it := &a.inv.Iterations[st.idx]
		if st.loadsDone == len(it.Loads) && st.computeLeft == 0 &&
			st.storesDone == len(it.Stores) {
			a.inflight = a.inflight[1:]
			a.freeIters = append(a.freeIters, st)
			a.eng.Progress() // an iteration retiring is forward progress
			continue
		}
		break
	}

	if len(a.inflight) == 0 && a.nextIter == len(a.inv.Iterations) && len(a.outstanding) == 0 {
		done := a.onDone
		a.cCycles.Add(int64(now - a.startCycle))
		// Emergent MLP in thousandths — the measured counterpart of
		// Table 1's MLP column (cumulative over invocations).
		a.cMLPMilli.Set(int64(a.AvgMLP() * 1000))
		a.inv, a.port, a.onDone = nil, nil, nil
		if done != nil {
			done(now)
		}
	}
}

// computeDrained reports whether every in-flight iteration has finished its
// loads and compute (Serial admission gate).
func (a *Accelerator) computeDrained() bool {
	for _, st := range a.inflight {
		it := &a.inv.Iterations[st.idx]
		if st.loadsDone < len(it.Loads) || st.computeLeft > 0 {
			return false
		}
	}
	return true
}

// release retires one access against its line's outstanding count.
func (a *Accelerator) release(line uint64) {
	i := a.outFind(line)
	a.outstanding[i].count--
	if a.outstanding[i].count <= 0 {
		last := len(a.outstanding) - 1
		a.outstanding[i] = a.outstanding[last]
		a.outstanding = a.outstanding[:last]
	}
}

// AvgMLP returns the observed mean outstanding memory requests while busy.
func (a *Accelerator) AvgMLP() float64 {
	if a.mlpSamples == 0 {
		return 0
	}
	return float64(a.mlpSum) / float64(a.mlpSamples)
}

// BusyCycles returns the cycles spent executing invocations.
func (a *Accelerator) BusyCycles() uint64 { return a.busyCycles }
