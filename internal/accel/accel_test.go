package accel

import (
	"testing"

	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
)

// fakePort completes every access after a fixed latency and records MLP.
type fakePort struct {
	eng         *sim.Engine
	latency     uint64
	outstanding int
	maxSeen     int
	accesses    int
	rejectFirst int // reject the first N accesses (back-pressure test)
}

func (p *fakePort) Access(kind mem.AccessKind, va mem.VAddr, done func(uint64)) bool {
	if p.rejectFirst > 0 {
		p.rejectFirst--
		return false
	}
	p.accesses++
	p.outstanding++
	if p.outstanding > p.maxSeen {
		p.maxSeen = p.outstanding
	}
	p.eng.Schedule(p.latency, func(now uint64) {
		p.outstanding--
		done(now)
	})
	return true
}

func iters(n, loadsPer, storesPer, intOps int) []trace.Iteration {
	out := make([]trace.Iteration, n)
	addr := uint64(0)
	for i := range out {
		for j := 0; j < loadsPer; j++ {
			out[i].Loads = append(out[i].Loads, mem.VAddr(addr))
			addr += 64
		}
		for j := 0; j < storesPer; j++ {
			out[i].Stores = append(out[i].Stores, mem.VAddr(addr))
			addr += 64
		}
		out[i].IntOps = intOps
	}
	return out
}

func runInv(t *testing.T, cfg Config, inv *trace.Invocation, port *fakePort) (*Accelerator, uint64, *energy.Meter, *stats.Set) {
	t.Helper()
	eng := sim.NewEngine()
	port.eng = eng
	mt := energy.NewMeter()
	st := stats.NewSet()
	a := New(eng, "axc0", cfg, energy.Default(), mt, st)
	var doneAt uint64
	fired := false
	a.Start(inv, port, func(now uint64) { doneAt = now; fired = true })
	if _, ok := eng.Run(1000000, func() bool { return fired }); !ok {
		t.Fatal("invocation never completed")
	}
	return a, doneAt, mt, st
}

func TestInvocationCompletes(t *testing.T) {
	inv := &trace.Invocation{Function: "f", Iterations: iters(10, 2, 1, 4)}
	port := &fakePort{latency: 5}
	a, doneAt, _, st := runInv(t, DefaultConfig(), inv, port)
	if doneAt == 0 {
		t.Fatal("no completion time")
	}
	if port.accesses != 30 {
		t.Fatalf("accesses = %d, want 30", port.accesses)
	}
	if st.Get("axc0.loads") != 20 || st.Get("axc0.stores") != 10 {
		t.Fatalf("load/store stats = %d/%d", st.Get("axc0.loads"), st.Get("axc0.stores"))
	}
	if a.Busy() {
		t.Fatal("still busy after completion")
	}
}

func TestMLPBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 3
	cfg.MemPorts = 4
	inv := &trace.Invocation{Iterations: iters(20, 4, 0, 1)}
	port := &fakePort{latency: 20}
	_, _, _, _ = runInv(t, cfg, inv, port)
	if port.maxSeen > 3 {
		t.Fatalf("outstanding reached %d, MLP cap is 3", port.maxSeen)
	}
}

func TestHigherMLPIsFaster(t *testing.T) {
	mk := func(mlp int) uint64 {
		cfg := DefaultConfig()
		cfg.MLP = mlp
		cfg.MemPorts = mlp
		inv := &trace.Invocation{Iterations: iters(50, 4, 0, 1)}
		port := &fakePort{latency: 30}
		_, doneAt, _, _ := runInv(t, cfg, inv, port)
		return doneAt
	}
	slow := mk(1)
	fast := mk(6)
	if fast*2 > slow {
		t.Fatalf("MLP=6 (%d cyc) not clearly faster than MLP=1 (%d cyc)", fast, slow)
	}
}

func TestStoresWaitForLoadsAndCompute(t *testing.T) {
	// One iteration, long-latency load: the store cannot issue until the
	// load returns plus compute cycles.
	inv := &trace.Invocation{Iterations: []trace.Iteration{{
		Loads:  []mem.VAddr{0x0},
		Stores: []mem.VAddr{0x40},
		IntOps: 8, // 2 cycles at 4 ALUs
	}}}
	port := &fakePort{latency: 50}
	_, doneAt, _, _ := runInv(t, DefaultConfig(), inv, port)
	if doneAt < 50+2 {
		t.Fatalf("completed at %d; store must wait for load (50) + compute (2)", doneAt)
	}
}

func TestPipelineOverlapsIterations(t *testing.T) {
	mk := func(depth int) uint64 {
		cfg := DefaultConfig()
		cfg.PipelineDepth = depth
		inv := &trace.Invocation{Iterations: iters(20, 1, 0, 40)} // compute heavy
		port := &fakePort{latency: 10}
		_, doneAt, _, _ := runInv(t, cfg, inv, port)
		return doneAt
	}
	serial := mk(1)
	piped := mk(4)
	if piped >= serial {
		t.Fatalf("pipelined (%d) not faster than serial (%d)", piped, serial)
	}
}

func TestBackPressureRetries(t *testing.T) {
	inv := &trace.Invocation{Iterations: iters(2, 2, 0, 1)}
	port := &fakePort{latency: 3, rejectFirst: 5}
	_, _, _, _ = runInv(t, DefaultConfig(), inv, port)
	if port.accesses != 4 {
		t.Fatalf("accesses = %d, want 4 despite rejections", port.accesses)
	}
}

func TestComputeEnergyAccounted(t *testing.T) {
	inv := &trace.Invocation{Iterations: []trace.Iteration{
		{Loads: []mem.VAddr{0}, IntOps: 10, FPOps: 4},
	}}
	port := &fakePort{latency: 1}
	_, _, mt, _ := runInv(t, DefaultConfig(), inv, port)
	model := energy.Default()
	want := 10*model.IntOp + 4*model.FPOp
	if got := mt.Get(energy.CatCompute); got != want {
		t.Fatalf("compute energy = %v, want %v", got, want)
	}
}

func TestAvgMLPMeasured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MLP = 4
	cfg.MemPorts = 4
	inv := &trace.Invocation{Iterations: iters(40, 4, 0, 1)}
	port := &fakePort{latency: 25}
	a, _, _, _ := runInv(t, cfg, inv, port)
	if m := a.AvgMLP(); m < 1.0 || m > 4.0 {
		t.Fatalf("AvgMLP = %v, want within (1,4]", m)
	}
}

func TestStartWhileBusyPanics(t *testing.T) {
	eng := sim.NewEngine()
	a := New(eng, "axc", DefaultConfig(), energy.Default(), nil, nil)
	port := &fakePort{eng: eng, latency: 100}
	inv := &trace.Invocation{Iterations: iters(1, 1, 0, 1)}
	a.Start(inv, port, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	a.Start(inv, port, nil)
}

func TestSerialInvocationOrdersIterations(t *testing.T) {
	// Serial mode: iteration i+1's loads must not issue before iteration
	// i's compute completes, so with long loads the iterations serialize.
	mk := func(serial bool) uint64 {
		inv := &trace.Invocation{Serial: serial, Iterations: iters(20, 1, 0, 4)}
		port := &fakePort{latency: 20}
		_, doneAt, _, _ := runInv(t, DefaultConfig(), inv, port)
		return doneAt
	}
	pipelined := mk(false)
	serial := mk(true)
	if serial < 2*pipelined {
		t.Fatalf("serial (%d) not clearly slower than pipelined (%d)", serial, pipelined)
	}
	// Lower bound: 20 iterations x (20cy load + 1cy compute) serialized.
	if serial < 20*20 {
		t.Fatalf("serial %d below the dependence-chain bound", serial)
	}
}

func TestMLPGaugeReported(t *testing.T) {
	inv := &trace.Invocation{Iterations: iters(30, 4, 0, 1)}
	port := &fakePort{latency: 25}
	_, _, _, st := runInv(t, DefaultConfig(), inv, port)
	milli := st.Get("axc0.mlp_milli")
	if milli <= 0 || milli > 6000 {
		t.Fatalf("mlp_milli = %d out of range", milli)
	}
}
