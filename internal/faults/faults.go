// Package faults provides seeded, deterministic fault injection for the
// simulator: extra delivery delay jitter and transient stall windows on
// interconnect links, and service-latency spikes in DRAM.
//
// Faults are strictly order-preserving and performance-only: a correct
// cache hierarchy must absorb any plan with degraded cycle counts but
// bit-identical final memory state. That property is what the soak harness
// in internal/systems leans on — randomized plans across every system and
// benchmark with the golden final-memory check still enforced.
//
// Determinism: every decision is drawn either from a pure hash of
// (seed, site, cycle-window) — stall windows, which must not depend on
// traffic — or from a per-site counter stream seeded by (seed, site) —
// per-message jitter, consumed in the engine's deterministic event order.
// Two runs of the same (benchmark, system, plan) therefore inject exactly
// the same faults at exactly the same points, so any failing run is
// reproducible from its plan alone.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Plan is a serializable description of the faults to inject. The zero
// value injects nothing. Probabilities are in [0,1]; zero disables the
// corresponding fault class.
type Plan struct {
	// Seed roots every pseudo-random stream in the plan.
	Seed uint64 `json:"seed"`

	// LinkJitterProb is the per-message probability that a link delivery
	// is delayed by an extra 1..LinkJitterMax cycles. Order is preserved:
	// a delayed message also delays everything sent after it on the same
	// link.
	LinkJitterProb float64 `json:"link_jitter_prob,omitempty"`
	LinkJitterMax  uint64  `json:"link_jitter_max,omitempty"`

	// Transient link stalls: time is divided into windows of
	// LinkStallEvery cycles; in each window each link independently
	// stalls (delivers nothing new) for the first LinkStallLen cycles
	// with probability LinkStallProb — a backpressure burst.
	LinkStallProb  float64 `json:"link_stall_prob,omitempty"`
	LinkStallEvery uint64  `json:"link_stall_every,omitempty"`
	LinkStallLen   uint64  `json:"link_stall_len,omitempty"`

	// DRAM latency spikes: each command's service latency grows by
	// DRAMSpikeExtra cycles with probability DRAMSpikeProb (a refresh or
	// a thermally-throttled rank, as seen by the controller).
	DRAMSpikeProb  float64 `json:"dram_spike_prob,omitempty"`
	DRAMSpikeExtra uint64  `json:"dram_spike_extra,omitempty"`
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return (p.LinkJitterProb > 0 && p.LinkJitterMax > 0) ||
		(p.LinkStallProb > 0 && p.LinkStallEvery > 0 && p.LinkStallLen > 0) ||
		(p.DRAMSpikeProb > 0 && p.DRAMSpikeExtra > 0)
}

// RandomPlan derives a moderate randomized plan from a seed — the soak
// harness's generator. All fault classes are active with intensities that a
// correct hierarchy must absorb (delays only, no loss, no reordering).
func RandomPlan(seed uint64) Plan {
	s := splitmix64(seed ^ 0x9e3779b97f4a7c15)
	r := func() uint64 { s = splitmix64(s); return s }
	f01 := func() float64 { return float64(r()>>11) / (1 << 53) }
	return Plan{
		Seed:           seed,
		LinkJitterProb: 0.05 + 0.25*f01(),
		LinkJitterMax:  1 + r()%16,
		LinkStallProb:  0.05 + 0.15*f01(),
		LinkStallEvery: 512 + r()%1536,
		LinkStallLen:   8 + r()%120,
		DRAMSpikeProb:  0.02 + 0.10*f01(),
		DRAMSpikeExtra: 64 + r()%448,
	}
}

// Save writes the plan as JSON.
func (p Plan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadPlan reads a JSON plan.
func LoadPlan(r io.Reader) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: decoding plan: %w", err)
	}
	return p, nil
}

// LoadPlanFile reads a JSON plan from a file.
func LoadPlanFile(path string) (Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return Plan{}, err
	}
	defer f.Close()
	return LoadPlan(f)
}

// Injector executes a Plan. A nil *Injector is valid and injects nothing,
// so components can hold one unconditionally. Not safe for concurrent use —
// like the engine it serves, it is single-threaded by design.
type Injector struct {
	plan    Plan
	streams map[string]*stream

	// injection counters, for observability in dumps and tests
	linkJitters uint64
	linkStalls  uint64
	dramSpikes  uint64
}

// stream is a per-site splitmix64 counter stream.
type stream struct{ state uint64 }

func (s *stream) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

func (s *stream) chance(p float64) bool {
	return float64(s.next()>>11)/(1<<53) < p
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) *Injector {
	return &Injector{plan: p, streams: make(map[string]*stream)}
}

// Plan returns the injector's plan.
func (i *Injector) Plan() Plan { return i.plan }

func (i *Injector) stream(site string) *stream {
	s, ok := i.streams[site]
	if !ok {
		s = &stream{state: splitmix64(i.plan.Seed ^ fnv1a(site))}
		i.streams[site] = s
	}
	return s
}

// LinkDelay returns the extra delivery delay, in cycles, for a message sent
// on the named link at cycle now: any remaining transient-stall window plus
// per-message jitter. Callers must fold the result into their existing FIFO
// serialization so order is preserved.
func (i *Injector) LinkDelay(link string, now uint64) uint64 {
	if i == nil {
		return 0
	}
	var extra uint64
	p := i.plan
	if p.LinkStallProb > 0 && p.LinkStallEvery > 0 && p.LinkStallLen > 0 {
		// Stall windows are a pure function of (seed, link, window) so a
		// link's stall schedule does not depend on its traffic.
		w := now / p.LinkStallEvery
		h := splitmix64(p.Seed ^ fnv1a(link) ^ splitmix64(w^0xb5297a4d))
		if float64(h>>11)/(1<<53) < p.LinkStallProb {
			end := w*p.LinkStallEvery + p.LinkStallLen
			if end > now {
				extra += end - now
				i.linkStalls++
			}
		}
	}
	if p.LinkJitterProb > 0 && p.LinkJitterMax > 0 {
		s := i.stream(link)
		if s.chance(p.LinkJitterProb) {
			extra += 1 + s.next()%p.LinkJitterMax
			i.linkJitters++
		}
	}
	return extra
}

// DRAMDelay returns the extra service latency for one DRAM command on the
// given channel.
func (i *Injector) DRAMDelay(channel int) uint64 {
	if i == nil {
		return 0
	}
	p := i.plan
	if p.DRAMSpikeProb <= 0 || p.DRAMSpikeExtra == 0 {
		return 0
	}
	s := i.stream(fmt.Sprintf("dram.ch%d", channel))
	if s.chance(p.DRAMSpikeProb) {
		i.dramSpikes++
		return p.DRAMSpikeExtra
	}
	return 0
}

// Counts reports how many faults of each class have been injected so far.
func (i *Injector) Counts() (linkJitters, linkStalls, dramSpikes uint64) {
	if i == nil {
		return 0, 0, 0
	}
	return i.linkJitters, i.linkStalls, i.dramSpikes
}

// splitmix64 is the standard 64-bit finalizing mixer (Vigna) — a tiny,
// dependency-free PRNG step with excellent avalanche behaviour.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a hashes a site name to a stream seed.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
