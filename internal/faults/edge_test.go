package faults

// Edge-case coverage for plan parsing and degenerate plan shapes: empty
// and partial JSON, malformed input, file loading, overlapping stall
// windows (stall longer than its window period), and zero-duration
// stalls. Degenerate knob combinations must never inject and never make a
// delay non-deterministic.

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadPlanEmptyJSON(t *testing.T) {
	p, err := LoadPlan(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p != (Plan{}) {
		t.Fatalf("empty JSON decoded to %+v, want the zero plan", p)
	}
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
}

func TestLoadPlanPartialJSON(t *testing.T) {
	p, err := LoadPlan(strings.NewReader(`{"seed": 5, "link_jitter_prob": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 5 || p.LinkJitterProb != 0.5 {
		t.Fatalf("partial plan decoded to %+v", p)
	}
	// Jitter probability without a max injects nothing.
	if p.Enabled() {
		t.Fatal("jitter with LinkJitterMax=0 reports Enabled")
	}
	inj := NewInjector(p)
	for now := uint64(0); now < 10_000; now += 7 {
		if d := inj.LinkDelay("l", now); d != 0 {
			t.Fatalf("max-less jitter injected %d cycles at %d", d, now)
		}
	}
}

func TestLoadPlanMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"truncated":  `{"seed": 1`,
		"not-json":   `seed=1`,
		"wrong-type": `{"seed": "one"}`,
	} {
		if _, err := LoadPlan(strings.NewReader(text)); err == nil {
			t.Errorf("%s input decoded without error", name)
		}
	}
}

func TestLoadPlanFilePaths(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	want := RandomPlan(3)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadPlanFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("file round trip changed the plan:\n%+v\n%+v", want, got)
	}
	if _, err := LoadPlanFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("absent file loaded without error")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlanFile(path); err == nil {
		t.Fatal("malformed file loaded without error")
	}
}

// TestZeroDurationStall: LinkStallLen=0 disables the stall class entirely
// even with probability 1 — a window of zero cycles must not inject, and
// must not divide by zero or underflow the window arithmetic.
func TestZeroDurationStall(t *testing.T) {
	p := Plan{Seed: 11, LinkStallProb: 1, LinkStallEvery: 64, LinkStallLen: 0}
	if p.Enabled() {
		t.Fatal("zero-duration stall reports Enabled")
	}
	inj := NewInjector(p)
	for now := uint64(0); now < 1024; now++ {
		if d := inj.LinkDelay("link", now); d != 0 {
			t.Fatalf("zero-duration stall injected %d cycles at %d", d, now)
		}
	}
	if _, stalls, _ := inj.Counts(); stalls != 0 {
		t.Fatalf("counted %d stalls from a zero-duration plan", stalls)
	}
	// LinkStallEvery=0 likewise: the window divisor must never be used.
	inj = NewInjector(Plan{Seed: 11, LinkStallProb: 1, LinkStallEvery: 0, LinkStallLen: 8})
	for now := uint64(0); now < 1024; now++ {
		if d := inj.LinkDelay("link", now); d != 0 {
			t.Fatalf("period-less stall injected %d cycles at %d", d, now)
		}
	}
}

// TestOverlappingStallWindows: a stall longer than its window period
// (LinkStallLen > LinkStallEvery) keeps every delay finite, monotonically
// consistent with FIFO ordering (send at a later cycle never lands
// earlier), and deterministic.
func TestOverlappingStallWindows(t *testing.T) {
	p := Plan{Seed: 21, LinkStallProb: 1, LinkStallEvery: 16, LinkStallLen: 40}
	if !p.Enabled() {
		t.Fatal("overlapping stall plan reports disabled")
	}
	a := NewInjector(p)
	b := NewInjector(p)
	var prevArrival uint64
	for now := uint64(0); now < 4096; now++ {
		da := a.LinkDelay("link", now)
		db := b.LinkDelay("link", now)
		if da != db {
			t.Fatalf("stall delay diverged at %d: %d vs %d", now, da, db)
		}
		// With prob 1 every window stalls; a send inside the stall head
		// of its window waits at most to the window's stall end, which
		// overlap pushes into later windows.
		if da > p.LinkStallLen {
			t.Fatalf("delay %d at %d exceeds the stall length %d", da, now, p.LinkStallLen)
		}
		arrival := now + da
		if arrival < prevArrival {
			// The injector's contract: callers fold delays into their FIFO
			// serialization, but the raw schedule itself must already be
			// non-decreasing when every window stalls identically.
			t.Fatalf("arrival went backwards: %d then %d", prevArrival, arrival)
		}
		prevArrival = arrival
	}
	if _, stalls, _ := a.Counts(); stalls == 0 {
		t.Fatal("overlapping stall plan never injected")
	}
}

// TestStallWindowBoundary: exactly at the stall end the delay is zero,
// one cycle before it is one — the window arithmetic is half-open.
func TestStallWindowBoundary(t *testing.T) {
	p := Plan{Seed: 1, LinkStallProb: 1, LinkStallEvery: 100, LinkStallLen: 10}
	inj := NewInjector(p)
	if d := inj.LinkDelay("l", 9); d != 1 {
		t.Fatalf("delay at stall-end-1 = %d, want 1", d)
	}
	if d := inj.LinkDelay("l", 10); d != 0 {
		t.Fatalf("delay at stall end = %d, want 0", d)
	}
	if d := inj.LinkDelay("l", 0); d != 10 {
		t.Fatalf("delay at window start = %d, want the full stall %d", d, p.LinkStallLen)
	}
}

// TestProbabilityExtremes: probability 0 never injects; probability 1
// jitter injects on every message with delays in [1, max]; NaN and
// out-of-range probabilities do not wedge the injector.
func TestProbabilityExtremes(t *testing.T) {
	never := NewInjector(Plan{Seed: 2, LinkJitterProb: 0, LinkJitterMax: 8})
	always := NewInjector(Plan{Seed: 2, LinkJitterProb: 1, LinkJitterMax: 8})
	for i := 0; i < 1000; i++ {
		if d := never.LinkDelay("l", uint64(i)); d != 0 {
			t.Fatalf("prob-0 jitter injected %d", d)
		}
		d := always.LinkDelay("l", uint64(i))
		if d < 1 || d > 8 {
			t.Fatalf("prob-1 jitter delay %d outside [1,8]", d)
		}
	}
	nan := NewInjector(Plan{Seed: 2, LinkJitterProb: math.NaN(), LinkJitterMax: 8,
		DRAMSpikeProb: math.NaN(), DRAMSpikeExtra: 4})
	for i := 0; i < 100; i++ {
		if d := nan.LinkDelay("l", uint64(i)); d != 0 {
			t.Fatalf("NaN jitter probability injected %d", d)
		}
		if d := nan.DRAMDelay(0); d != 0 {
			t.Fatalf("NaN DRAM probability injected %d", d)
		}
	}
}
