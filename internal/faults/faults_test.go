package faults

import (
	"bytes"
	"testing"
)

func TestZeroPlanInjectsNothing(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	inj := NewInjector(p)
	for now := uint64(0); now < 10_000; now += 7 {
		if d := inj.LinkDelay("link.a", now); d != 0 {
			t.Fatalf("zero plan delayed a link message by %d", d)
		}
		if d := inj.DRAMDelay(0); d != 0 {
			t.Fatalf("zero plan delayed a DRAM command by %d", d)
		}
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	if d := inj.LinkDelay("x", 5); d != 0 {
		t.Fatalf("nil injector returned %d", d)
	}
	if d := inj.DRAMDelay(1); d != 0 {
		t.Fatalf("nil injector returned %d", d)
	}
	if a, b, c := inj.Counts(); a+b+c != 0 {
		t.Fatal("nil injector reports counts")
	}
}

// TestInjectorDeterministic demands two injectors for the same plan produce
// identical delay sequences for identical call sequences — the property the
// whole reproducibility story rests on.
func TestInjectorDeterministic(t *testing.T) {
	p := RandomPlan(99)
	a, b := NewInjector(p), NewInjector(p)
	sites := []string{"link.l0x0.up", "link.l0x0.down", "hostlink.tile"}
	for now := uint64(0); now < 50_000; now += 3 {
		site := sites[now%3]
		da, db := a.LinkDelay(site, now), b.LinkDelay(site, now)
		if da != db {
			t.Fatalf("diverged at cycle %d site %s: %d vs %d", now, site, da, db)
		}
		if now%5 == 0 {
			if da, db := a.DRAMDelay(int(now%4)), b.DRAMDelay(int(now%4)); da != db {
				t.Fatalf("DRAM diverged at %d: %d vs %d", now, da, db)
			}
		}
	}
	aj, as, ad := a.Counts()
	bj, bs, bd := b.Counts()
	if aj != bj || as != bs || ad != bd {
		t.Fatalf("counters diverged: (%d,%d,%d) vs (%d,%d,%d)", aj, as, ad, bj, bs, bd)
	}
	if aj == 0 && as == 0 && ad == 0 {
		t.Fatal("random plan injected nothing over 50k cycles")
	}
}

// TestStallWindowsAreTrafficIndependent: the stall schedule must be a pure
// function of (seed, site, window), not of how many messages were sent — a
// second injector that skips most cycles sees the same stall decisions.
func TestStallWindowsAreTrafficIndependent(t *testing.T) {
	p := Plan{Seed: 5, LinkStallProb: 0.5, LinkStallEvery: 100, LinkStallLen: 20}
	busy, idle := NewInjector(p), NewInjector(p)
	// busy queries every window start; idle only every third. The answers at
	// shared cycles must agree (jitter is off, so delay = stall remainder).
	for w := uint64(0); w < 300; w++ {
		now := w * 100
		d1 := busy.LinkDelay("l", now)
		if w%3 == 0 {
			if d2 := idle.LinkDelay("l", now); d1 != d2 {
				t.Fatalf("window %d: busy saw %d, idle saw %d", w, d1, d2)
			}
		}
	}
}

func TestRandomPlanEnabledAndSeeded(t *testing.T) {
	p := RandomPlan(1)
	if !p.Enabled() {
		t.Fatal("RandomPlan not enabled")
	}
	if p.Seed != 1 {
		t.Fatalf("seed = %d, want 1", p.Seed)
	}
	q := RandomPlan(2)
	if p == q {
		t.Fatal("different seeds produced identical plans")
	}
	if RandomPlan(1) != p {
		t.Fatal("same seed produced different plans")
	}
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	p := RandomPlan(7)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := LoadPlan(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p != q {
		t.Fatalf("round trip changed the plan:\n%+v\n%+v", p, q)
	}
}
