package litmus

import (
	"strings"
	"testing"

	"fusion/internal/systems"
)

// TestDirectedSuite runs every directed case on each of its declared
// systems: no violations, no final-image mismatches, and every scenario
// assertion (the counter floors proving the exercised path) holds.
func TestDirectedSuite(t *testing.T) {
	for _, c := range Cases() {
		for _, kind := range c.Systems {
			t.Run(c.Name+"/"+kind.String(), func(t *testing.T) {
				rep, err := RunCase(c, kind, nil)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Observations == 0 {
					t.Fatal("no observations recorded")
				}
				for _, v := range rep.Violations {
					t.Errorf("violation: %s", v)
				}
				if rep.FinalMismatches > 0 {
					t.Errorf("%d final-image mismatches", rep.FinalMismatches)
				}
				if rep.ScenarioErr != nil {
					t.Errorf("scenario: %v", rep.ScenarioErr)
				}
			})
		}
	}
}

// TestMutationKill proves the harness detects every deliberate protocol
// break: each mutant's designated run must fail — by checker violations
// naming the agent, line, cycle, and expected write, or (for ScenarioKill
// mutants) by the case's scenario assertions — and the same (case, system)
// pair unmutated must be clean, so the kill is attributable to the
// mutation alone.
func TestMutationKill(t *testing.T) {
	for _, m := range Mutations() {
		t.Run(m.Name, func(t *testing.T) {
			c := caseByName(m.Case)
			if c == nil {
				t.Fatalf("mutation references unknown case %q", m.Case)
			}
			clean, err := RunCase(c, m.System, nil)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Failed() {
				t.Fatalf("unmutated %s on %s already fails (violations %d, "+
					"mismatches %d, scenario %v) — kill not attributable",
					m.Case, m.System, len(clean.Violations),
					clean.FinalMismatches, clean.ScenarioErr)
			}
			mutated, err := RunCase(c, m.System, m.Apply)
			if err != nil {
				t.Fatal(err)
			}
			if m.ScenarioKill {
				if mutated.ScenarioErr == nil {
					t.Fatalf("mutant %s survived: %s on %s passed every "+
						"scenario assertion", m.Name, m.Case, m.System)
				}
				t.Logf("killed by scenario: %v", mutated.ScenarioErr)
				return
			}
			if len(mutated.Violations) == 0 {
				t.Fatalf("mutant %s survived: %s on %s recorded %d observations, "+
					"0 violations", m.Name, m.Case, m.System, mutated.Observations)
			}
			v := mutated.Violations[0]
			if v.Obs.Agent == "" {
				t.Errorf("violation does not name the agent: %s", v)
			}
			if v.Obs.Cycle == 0 {
				t.Errorf("violation does not carry a cycle: %s", v)
			}
			if v.Line == 0 {
				t.Errorf("violation does not name the line: %s", v)
			}
			if v.Expected == 0 {
				t.Errorf("violation does not name the expected write: %s", v)
			}
			if !strings.Contains(v.String(), v.Obs.Agent) {
				t.Errorf("String() omits the agent: %s", v)
			}
			t.Logf("killed by: %s", v)
		})
	}
}

// TestMutationCoverage is the kill-coverage report: every system in the
// registry must have at least one mutant whose designated run detects it,
// and no mutant may survive. A system without mutation-kill coverage has
// an unproven harness — the suite would certify its bugs as correct.
func TestMutationCoverage(t *testing.T) {
	killed := map[systems.Kind][]string{}
	for _, m := range Mutations() {
		c := caseByName(m.Case)
		if c == nil {
			t.Errorf("mutant %s references unknown case %q", m.Name, m.Case)
			continue
		}
		inSystems := false
		for _, k := range c.Systems {
			if k == m.System {
				inSystems = true
			}
		}
		if !inSystems {
			t.Errorf("mutant %s targets %s, but case %s does not run on it",
				m.Name, m.System, m.Case)
			continue
		}
		rep, err := RunCase(c, m.System, m.Apply)
		if err != nil {
			t.Errorf("mutant %s: %v", m.Name, err)
			continue
		}
		if !rep.Failed() {
			t.Errorf("mutant %s SURVIVED on %s/%s", m.Name, m.Case, m.System)
			continue
		}
		killed[m.System] = append(killed[m.System], m.Name)
	}
	for _, kind := range systems.Kinds() {
		if len(killed[kind]) == 0 {
			t.Errorf("system %s has no killed mutants — harness unproven", kind)
			continue
		}
		t.Logf("%-8s killed: %s", kind, strings.Join(killed[kind], ", "))
	}
}

// TestMutationByName exercises the lookup used by cmd/fusionsim.
func TestMutationByName(t *testing.T) {
	if m := mutationByName("stale-forward"); m == nil || m.Case != "dx-forward" {
		t.Fatalf("mutationByName(stale-forward) = %+v", m)
	}
	if m := mutationByName("no-such"); m != nil {
		t.Fatalf("mutationByName(no-such) = %+v, want nil", m)
	}
}

// TestRandomSuite drives randomized workloads through every registered
// system with the checker attached.
func TestRandomSuite(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, kind := range systems.Kinds() {
			rep, err := RunRandom(seed, kind)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("seed %d on %s: %s", seed, kind, v)
			}
			if rep.FinalMismatches > 0 {
				t.Errorf("seed %d on %s: %d final mismatches",
					seed, kind, rep.FinalMismatches)
			}
		}
	}
}

// TestRunNamed covers the name dispatch used by cmd/fusionsim -litmus.
func TestRunNamed(t *testing.T) {
	reps, err := RunNamed("mp")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(caseByName("mp").Systems) {
		t.Fatalf("mp produced %d reports", len(reps))
	}
	if _, err := RunNamed("bogus"); err == nil {
		t.Fatal("RunNamed(bogus) did not error")
	}
	all, err := RunNamed("all")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, c := range Cases() {
		want += len(c.Systems)
	}
	if len(all) != want {
		t.Fatalf("all produced %d reports, want %d", len(all), want)
	}
	for _, rep := range all {
		if rep.Failed() {
			t.Errorf("%s on %s failed", rep.Case, rep.System)
		}
	}
}

// FuzzLitmusRandom fuzzes the randomized litmus layer: any seed must
// produce a violation-free trace and a golden final image on every
// registered system, ADAPTIVE and HYDRA included.
func FuzzLitmusRandom(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, kind := range systems.Kinds() {
			rep, err := RunRandom(seed, kind)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				for _, v := range rep.Violations {
					t.Errorf("seed %d on %s: %s", seed, kind, v)
				}
				t.Fatalf("seed %d on %s: %d final mismatches, scenario %v",
					seed, kind, rep.FinalMismatches, rep.ScenarioErr)
			}
		}
	})
}
