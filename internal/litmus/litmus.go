// Package litmus is the coherence litmus harness: it records every load
// and store any agent performs — via the obs.Observer hook threaded
// through acc (L0X/L1X), mesi.Client, and the scratchpad — and checks the
// full trace against each system's declared visibility model.
//
// The models (see Check):
//
//   - Strict agents (MESI clients, the scratchpad within a window) must
//     read the latest globally-ordered write of every line.
//   - FUSION L0X reads may return stale data only within a live lease and
//     never across a task/acquire (phase) boundary: a leased read must
//     observe at least the last version that was globally ordered before
//     its synchronization epoch began.
//
// The harness ships three layers: a directed suite (Cases) of small
// workloads programs with allowed-outcome sets, a randomized generator
// (RunRandom) driving all four systems through the checker, and a
// mutation-kill validator (Mutations) proving the checker's sensitivity:
// each mutation arms a deliberate protocol bug behind a test-only knob and
// the harness must fail on it.
package litmus

import (
	"fmt"
	"sort"

	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/systems"
	"fusion/internal/workloads"
)

// Recorder buffers the observation stream of one run, stamping each record
// with the current synchronization epoch (the phase index, advanced by the
// systems runner at every phase boundary). It implements obs.Observer.
type Recorder struct {
	epoch int32
	obs   []obs.Observation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record implements obs.Observer.
func (r *Recorder) Record(o obs.Observation) {
	o.Epoch = r.epoch
	r.obs = append(r.obs, o)
}

// Epoch implements obs.Observer.
func (r *Recorder) Epoch(n int, cycle uint64) { r.epoch = int32(n) }

// Observations returns the recorded stream in program order.
func (r *Recorder) Observations() []obs.Observation { return r.obs }

// Report is the outcome of one (case, system) litmus run.
type Report struct {
	Case         string
	System       systems.Kind
	Observations int
	Cycles       uint64
	// Violations are the observations that contradicted the visibility
	// model, in trace order.
	Violations []Violation
	// FinalMismatches counts program lines whose final memory image
	// diverged from the sequential golden image. The value checker is
	// strictly stronger — a mutant can corrupt a read without ever
	// corrupting the final image — but unmutated runs must report zero
	// here too.
	FinalMismatches int
	// ScenarioErr reports a failed scenario assertion (e.g. a directed
	// case that never exercised the protocol path it exists to test).
	ScenarioErr error
}

// Failed reports whether the run violated its model or its scenario.
func (r *Report) Failed() bool {
	return len(r.Violations) > 0 || r.FinalMismatches > 0 || r.ScenarioErr != nil
}

// RunCase executes one directed case on one system, with an optional
// config mutation (nil for a clean run), and checks the recorded trace.
func RunCase(c *Case, kind systems.Kind, mutate func(*systems.Config)) (*Report, error) {
	b := c.Build()
	rec := NewRecorder()
	cfg := systems.DefaultConfig(kind)
	cfg.Observer = rec
	if c.Tune != nil {
		c.Tune(&cfg)
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := systems.Run(b, cfg)
	if err != nil {
		return nil, fmt.Errorf("litmus %s on %s: %w", c.Name, kind, err)
	}
	rep := report(c.Name, kind, b, rec, res)
	if c.Check != nil {
		rep.ScenarioErr = c.Check(kind, res)
	}
	return rep, nil
}

// RunRandom drives one randomized workload (workloads.Random) through
// system kind with the checker attached — the randomized litmus layer.
func RunRandom(seed int64, kind systems.Kind) (*Report, error) {
	b := workloads.Random(seed, workloads.DefaultRandomParams())
	rec := NewRecorder()
	cfg := systems.DefaultConfig(kind)
	cfg.Observer = rec
	res, err := systems.Run(b, cfg)
	if err != nil {
		return nil, fmt.Errorf("litmus random seed %d on %s: %w", seed, kind, err)
	}
	return report(fmt.Sprintf("random-%d", seed), kind, b, rec, res), nil
}

// report checks the recorded trace and the final image.
func report(name string, kind systems.Kind, b *workloads.Benchmark,
	rec *Recorder, res *systems.Result) *Report {
	rep := &Report{
		Case:         name,
		System:       kind,
		Observations: len(rec.Observations()),
		Cycles:       res.Cycles,
		Violations:   Check(rec.Observations(), b, res.LineMap),
	}
	want := systems.ExpectedVersions(b)
	lines := make([]mem.VAddr, 0, len(want))
	for va := range want {
		lines = append(lines, va)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, va := range lines {
		if res.FinalVersions[va] != want[va] {
			rep.FinalMismatches++
		}
	}
	return rep
}

// RunNamed runs the directed case `name` (or every case for "all") on each
// of its declared systems and returns one report per (case, system) pair.
// An optional tune is applied to every run's config (after the case's own
// Tune) — the CLI's A/B knobs, e.g. the scheduler choice, ride in here.
func RunNamed(name string, tune ...func(*systems.Config)) ([]*Report, error) {
	var cases []*Case
	if name == "all" {
		cases = Cases()
	} else {
		c := caseByName(name)
		if c == nil {
			return nil, fmt.Errorf("unknown litmus case %q (have: %v)", name, CaseNames())
		}
		cases = []*Case{c}
	}
	mutate := func(cfg *systems.Config) {
		for _, t := range tune {
			t(cfg)
		}
	}
	var out []*Report
	for _, c := range cases {
		for _, kind := range c.Systems {
			rep, err := RunCase(c, kind, mutate)
			if err != nil {
				return out, err
			}
			out = append(out, rep)
		}
	}
	return out, nil
}
