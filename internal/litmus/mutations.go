package litmus

import (
	"fusion/internal/acc"
	"fusion/internal/mesi"
	"fusion/internal/scratchpad"
	"fusion/internal/systems"
)

// Mutation arms one deliberate protocol bug (behind a test-only knob) and
// names the directed case and system whose run must fail under it. The
// mutation-kill suite proves the checker's sensitivity: a harness that
// passes a broken protocol is worse than no harness, because it certifies
// bugs as correct.
type Mutation struct {
	Name  string
	About string
	// Case and System select the directed run that must detect the bug.
	Case   string
	System systems.Kind
	// Apply arms the bug on the run configuration.
	Apply func(*systems.Config)
	// ScenarioKill marks mutants detected by the case's scenario
	// assertions (counter floors) rather than by checker violations:
	// the bug changes which protocol path fires, not the values
	// observed, so the kill is a ScenarioErr.
	ScenarioKill bool
}

// Mutations returns the mutation-kill suite. Each entry pairs a deliberate
// protocol break with the directed litmus run that kills it.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name: "skip-self-invalidate",
			About: "L0X serves load hits under a lapsed lease instead of " +
				"self-invalidating — the reader keeps data an unrelated " +
				"writer may have changed",
			Case:   "lease-expiry",
			System: systems.Fusion,
			Apply: func(cfg *systems.Config) {
				cfg.AccMutations = &acc.Mutations{SkipSelfInvalidate: true}
			},
		},
		{
			Name: "stale-forward",
			About: "FUSION-Dx forwards carry the version before the " +
				"producer's last write — a torn forward the consumer " +
				"silently computes on",
			Case:   "dx-forward",
			System: systems.FusionDx,
			Apply: func(cfg *systems.Config) {
				cfg.AccMutations = &acc.Mutations{StaleForward: true}
			},
		},
		{
			Name: "skip-sharer-invalidate",
			About: "the directory grants write ownership over a shared " +
				"line without invalidating the other sharers — they keep " +
				"reading the pre-write value",
			Case:   "mp",
			System: systems.Shared,
			Apply: func(cfg *systems.Config) {
				cfg.DirMutations = &mesi.DirMutations{SkipSharerInvalidate: true}
			},
		},
		{
			Name: "lost-store",
			About: "L0X store hits do not advance the line version — a " +
				"dropped write masked whenever a later store lands on the " +
				"same line",
			Case:   "mp",
			System: systems.Fusion,
			Apply: func(cfg *systems.Config) {
				cfg.AccMutations = &acc.Mutations{LostStore: true}
			},
		},
		{
			Name: "stale-fill",
			About: "scratchpad DMA-ins install one version behind the " +
				"coherent copy — the accelerator computes an entire task on " +
				"data the host already overwrote",
			Case:   "mp",
			System: systems.Scratch,
			Apply: func(cfg *systems.Config) {
				cfg.PadMutations = &scratchpad.Mutations{StaleFill: true}
			},
		},
		{
			Name: "sticky-placement",
			About: "ADAPTIVE latches the first placement decision forever — " +
				"profiling still runs but migration never happens, so the " +
				"L0X and scratchpad placements the case requires never fire",
			Case:         "placement-migration",
			System:       systems.Adaptive,
			ScenarioKill: true,
			Apply: func(cfg *systems.Config) {
				cfg.PolicyMutations = &systems.PolicyMutations{StickyPlacement: true}
			},
		},
		{
			Name: "ignore-deadline",
			About: "HYDRA's bypass filter drops the deadline term — " +
				"deadline-critical fetches are only bypassed when the reuse " +
				"term happens to agree, so the deadline floor reads zero",
			Case:         "deadline-bypass",
			System:       systems.Hydra,
			ScenarioKill: true,
			Apply: func(cfg *systems.Config) {
				cfg.AccMutations = &acc.Mutations{IgnoreDeadline: true}
			},
		},
	}
}

// mutationByName returns the named mutant, or nil.
func mutationByName(name string) *Mutation {
	for _, m := range Mutations() {
		if m.Name == name {
			mm := m
			return &mm
		}
	}
	return nil
}
