package litmus

import (
	"fmt"

	"fusion/internal/faults"
	"fusion/internal/mem"
	"fusion/internal/systems"
	"fusion/internal/trace"
	"fusion/internal/workloads"
)

// Case is one directed litmus scenario: a small workloads program whose
// allowed outcomes are exactly "the checker accepts the trace" plus any
// scenario assertions proving the protocol path under test actually fired.
type Case struct {
	Name    string
	About   string
	Systems []systems.Kind
	// Build constructs the benchmark (fresh per run; runs mutate nothing
	// but keep ownership clear).
	Build func() *workloads.Benchmark
	// Tune adjusts the run configuration (fault plans, watchdog) before
	// the run. May be nil.
	Tune func(*systems.Config)
	// Check asserts scenario properties on the finished run — typically
	// counter floors proving the exercised path (forwards sent, leases
	// lapsed, grants died in transit). May be nil.
	Check func(kind systems.Kind, res *systems.Result) error
}

// allSystems derives from the systems registry: a new Kind joins every
// generic directed case automatically.
var allSystems = systems.Kinds()

// fusionSystems are the lease-hierarchy variants (HYDRA is FUSION plus the
// cacheability filter; the lease protocol underneath is identical).
var fusionSystems = []systems.Kind{systems.Fusion, systems.FusionDx, systems.Hydra}

// Region layout mirrors workloads.build: page-aligned regions from 1 MiB
// with a guard page between them.
func litmusRegion(idx, lines int) []mem.VAddr {
	base := mem.VAddr(1<<20) + mem.VAddr(idx)*2*mem.VAddr(mem.PageBytes)
	out := make([]mem.VAddr, lines)
	for i := range out {
		out[i] = base + mem.VAddr(i*mem.LineBytes)
	}
	return out
}

// sweep builds one iteration per line per pass, optionally loading and/or
// storing that line, with intOps of compute each.
func sweep(lines []mem.VAddr, doLoad, doStore bool, passes, intOps int) []trace.Iteration {
	var out []trace.Iteration
	for p := 0; p < passes; p++ {
		for _, la := range lines {
			it := trace.Iteration{IntOps: intOps}
			if doLoad {
				it.Loads = []mem.VAddr{la}
			}
			if doStore {
				it.Stores = []mem.VAddr{la}
			}
			out = append(out, it)
		}
	}
	return out
}

// pairSweep builds iterations that load loads[i] and store stores[i].
func pairSweep(loads, stores []mem.VAddr, intOps int) []trace.Iteration {
	n := len(loads)
	if len(stores) < n {
		n = len(stores)
	}
	out := make([]trace.Iteration, n)
	for i := 0; i < n; i++ {
		out[i] = trace.Iteration{
			Loads:  []mem.VAddr{loads[i]},
			Stores: []mem.VAddr{stores[i]},
			IntOps: intOps,
		}
	}
	return out
}

func accelPhase(fn string, axc int, lt uint64, serial bool, iters []trace.Iteration) trace.Phase {
	return trace.Phase{Kind: trace.PhaseAccel, Inv: trace.Invocation{
		Function: fn, AXC: axc, LeaseTime: lt, Serial: serial, Iterations: iters}}
}

func hostPhase(fn string, iters []trace.Iteration) trace.Phase {
	return trace.Phase{Kind: trace.PhaseHost, Inv: trace.Invocation{
		Function: fn, AXC: -1, Iterations: iters}}
}

// counterFloor asserts a stat sum reached at least min.
func counterFloor(res *systems.Result, min int64, stats ...string) error {
	var got int64
	for _, s := range stats {
		got += res.Stats.Get(s)
	}
	if got < min {
		return fmt.Errorf("scenario not exercised: sum(%v) = %d, want >= %d",
			stats, got, min)
	}
	return nil
}

// mpBench: message passing with a host warm-up. The host reads the data
// region first (caching it host-side), accelerator 0 then read-modify-
// writes every line twice, accelerator 1 reads it all back, and the host
// re-reads at the end. Every handoff — host->accel, accel->accel,
// accel->host — must observe the latest write. The host warm-up puts the
// host L1 in the sharer set, so the accelerator's write-ownership request
// crosses a shared directory entry (the reorder-dir-grant mutation point).
func mpBench() *workloads.Benchmark {
	data := litmusRegion(0, 8)
	prog := &trace.Program{Name: "litmus-mp", Phases: []trace.Phase{
		hostPhase("warm", sweep(data, true, false, 1, 4)),
		accelPhase("produce", 0, 600, false, sweep(data, true, true, 2, 4)),
		accelPhase("consume", 1, 600, false, sweep(data, true, false, 2, 4)),
		hostPhase("verify", sweep(data, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), data...),
		LeaseTimes: map[string]uint64{"produce": 600, "consume": 600},
		MLP:        map[string]int{"produce": 2, "consume": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// handoffBench: producer-consumer ping-pong over two rounds. AXC0 reads R
// and writes S; AXC1 reads S and writes R; repeat. Each phase must observe
// the previous phase's writes across the task boundary.
func handoffBench() *workloads.Benchmark {
	r := litmusRegion(0, 8)
	s := litmusRegion(1, 8)
	prog := &trace.Program{Name: "litmus-handoff", Phases: []trace.Phase{
		accelPhase("ping", 0, 700, false, pairSweep(r, s, 4)),
		accelPhase("pong", 1, 700, false, pairSweep(s, r, 4)),
		accelPhase("ping", 0, 700, false, pairSweep(r, s, 4)),
		accelPhase("pong", 1, 700, false, pairSweep(s, r, 4)),
		hostPhase("verify", sweep(append(append([]mem.VAddr(nil), r...), s...),
			true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), r...),
		LeaseTimes: map[string]uint64{"ping": 700, "pong": 700},
		MLP:        map[string]int{"ping": 2, "pong": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// dxForwardBench: FUSION-Dx write-forwarding visibility. The producer
// dirties a small region the consumer reads immediately after; the
// trace-derived forward table pushes the dirty lines producer->consumer
// directly, and the consumer must observe the producer's final versions
// under the forwarded lease.
func dxForwardBench() *workloads.Benchmark {
	data := litmusRegion(0, 8)
	prog := &trace.Program{Name: "litmus-dx-forward", Phases: []trace.Phase{
		accelPhase("produce", 0, 1200, false, sweep(data, true, true, 2, 4)),
		accelPhase("consume", 1, 1200, false, sweep(data, true, false, 2, 4)),
		hostPhase("verify", sweep(data, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), data...),
		LeaseTimes: map[string]uint64{"produce": 1200, "consume": 1200},
		MLP:        map[string]int{"produce": 2, "consume": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// leaseExpiryBench: the lease-expiry boundary. AXC0 reads the region under
// a deliberately short lease with enough compute per iteration that its
// second pass finds every lease lapsed (self-invalidation, not a stale
// hit). AXC1 then writes the region — its write epochs stall at the L1X
// until AXC0's leases lapse — and AXC0 re-reads: across that boundary it
// must observe the new versions, never the expired copies it still holds.
func leaseExpiryBench() *workloads.Benchmark {
	data := litmusRegion(0, 8)
	prog := &trace.Program{Name: "litmus-lease-expiry", Phases: []trace.Phase{
		accelPhase("reader", 0, 60, true, sweep(data, true, false, 2, 64)),
		accelPhase("writer", 1, 60, false, sweep(data, false, true, 1, 4)),
		accelPhase("reread", 0, 60, false, sweep(data, true, false, 1, 4)),
		hostPhase("verify", sweep(data, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), data...),
		LeaseTimes: map[string]uint64{"reader": 60, "writer": 60, "reread": 60},
		MLP:        map[string]int{"reader": 1, "writer": 2, "reread": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// regressionDeadGrantBench reproduces the PR-1 dead-grant/dead-forward
// lease-lapse bug as a directed case: short leases plus deterministic link
// jitter and stall windows make grants and Dx forwards outlive their
// leases in transit. The fixed protocol releases the dead grant (plain
// writeback), re-requests, and converges; the pre-fix protocol deadlocked
// (caught here by the armed watchdog) or installed expired leases (caught
// by the checker).
func regressionDeadGrantBench() *workloads.Benchmark {
	data := litmusRegion(0, 8)
	aux := litmusRegion(1, 8)
	prog := &trace.Program{Name: "litmus-dead-grant", Phases: []trace.Phase{
		accelPhase("produce", 0, 48, false, sweep(data, true, true, 2, 4)),
		accelPhase("consume", 1, 48, false, pairSweep(data, aux, 4)),
		accelPhase("reread", 0, 48, false, sweep(data, true, false, 1, 4)),
		hostPhase("verify", sweep(data, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), data...),
		LeaseTimes: map[string]uint64{"produce": 48, "consume": 48, "reread": 48},
		MLP:        map[string]int{"produce": 2, "consume": 2, "reread": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// placementMigrationBench drives ADAPTIVE through all three placements for
// the same data classes a real pipeline mixes: a streaming store pass (low
// reuse -> uncached), a host-produced region read repeatedly (shared ->
// L0X), and a private multi-pass region that fits the scratchpad. A line's
// placement migrates between phases; every handoff must still observe the
// latest globally-ordered write, and the counter floors prove each
// placement actually ran.
func placementMigrationBench() *workloads.Benchmark {
	stream := litmusRegion(0, 8)
	shared := litmusRegion(1, 8)
	priv := litmusRegion(2, 8)
	all := append(append(append([]mem.VAddr(nil), stream...), shared...), priv...)
	prog := &trace.Program{Name: "litmus-placement-migration", Phases: []trace.Phase{
		accelPhase("stream", 0, 600, false, sweep(stream, false, true, 1, 4)),
		hostPhase("produce", sweep(shared, false, true, 1, 4)),
		accelPhase("consume", 0, 600, false, sweep(shared, true, false, 3, 4)),
		accelPhase("private", 0, 600, false, sweep(priv, true, true, 3, 4)),
		hostPhase("verify", sweep(all, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), stream...),
		LeaseTimes: map[string]uint64{"stream": 600, "consume": 600, "private": 600},
		MLP:        map[string]int{"stream": 2, "consume": 2, "private": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// deadlineBypassBench exercises the HYDRA deadline term: with a one-cycle
// deadline every fill completes past it, so every pure-load fetch must
// bypass allocation — served one-shot, strictly checked — and the
// bypass_deadline floor proves the term fired (the ignore-deadline mutant
// re-attributes every bypass to the reuse term and dies on the floor).
func deadlineBypassBench() *workloads.Benchmark {
	data := litmusRegion(0, 8)
	prog := &trace.Program{Name: "litmus-deadline-bypass", Phases: []trace.Phase{
		accelPhase("scan", 0, 600, false, sweep(data, true, false, 2, 4)),
		hostPhase("verify", sweep(data, true, false, 1, 4)),
	}}
	b := &workloads.Benchmark{
		Program:    prog,
		InputLines: append([]mem.VAddr(nil), data...),
		LeaseTimes: map[string]uint64{"scan": 600},
		MLP:        map[string]int{"scan": 2},
	}
	workloads.ComputeForwards(b)
	return b
}

// regressionFaultPlan is the deterministic perturbation that kills grants
// and forwards in transit: jitter beyond the 48-cycle lease plus full-
// probability stall windows.
var regressionFaultPlan = faults.Plan{
	Seed:           11,
	LinkJitterProb: 0.5,
	LinkJitterMax:  120,
	LinkStallProb:  1.0,
	LinkStallEvery: 512,
	LinkStallLen:   160,
}

// cases is the directed suite. Mutations reference cases by name.
func cases() []*Case {
	return []*Case{
		{
			Name: "mp",
			About: "message passing with host warm-up: host reads, AXC0 " +
				"RMWs, AXC1 reads, host verifies — every handoff must see " +
				"the latest write",
			Systems: allSystems,
			Build:   mpBench,
		},
		{
			Name: "handoff",
			About: "producer-consumer ping-pong: two AXCs alternately read " +
				"each other's output regions across task boundaries",
			Systems: allSystems,
			Build:   handoffBench,
		},
		{
			Name: "dx-forward",
			About: "FUSION-Dx write-forwarding visibility: consumer must " +
				"observe the producer's forwarded dirty lines at their " +
				"final versions",
			Systems: []systems.Kind{systems.FusionDx},
			Build:   dxForwardBench,
			Check: func(kind systems.Kind, res *systems.Result) error {
				return counterFloor(res, 1, "l0x.0.fwd_out")
			},
		},
		{
			Name: "lease-expiry",
			About: "lease-expiry boundary: expired L0X copies must " +
				"self-invalidate, and re-reads after a writer phase must " +
				"observe the new versions",
			Systems: fusionSystems,
			Build:   leaseExpiryBench,
			Check: func(kind systems.Kind, res *systems.Result) error {
				if err := counterFloor(res, 1, "l0x.0.self_invalidations"); err != nil {
					return err
				}
				if kind == systems.Hydra {
					// First-touch loads are low-reuse: the filter must have
					// bypassed allocation for them.
					return counterFloor(res, 1, "l1x.bypass_alloc")
				}
				return nil
			},
		},
		{
			Name: "dead-grant",
			About: "PR-1 regression: grants/forwards dying in transit " +
				"(delivery delay outlives the lease) must be released and " +
				"re-requested, preserving both liveness and values",
			Systems: []systems.Kind{systems.FusionDx},
			Build:   regressionDeadGrantBench,
			Tune: func(cfg *systems.Config) {
				plan := regressionFaultPlan
				cfg.Faults = &plan
				cfg.WatchdogCycles = 100_000
			},
			Check: func(kind systems.Kind, res *systems.Result) error {
				return counterFloor(res, 1,
					"l0x.0.dead_grants", "l0x.1.dead_grants",
					"l0x.0.dead_forwards", "l0x.1.dead_forwards")
			},
		},
		{
			Name: "placement-migration",
			About: "ADAPTIVE placement migration: streaming stores go " +
				"uncached, a host-produced region reread thrice goes L0X, a " +
				"private multi-pass region goes scratchpad — every placement " +
				"handoff must observe the latest write, and each placement " +
				"must actually fire",
			Systems: []systems.Kind{systems.Adaptive},
			Build:   placementMigrationBench,
			Check: func(kind systems.Kind, res *systems.Result) error {
				for _, c := range []string{
					"adaptive.place_uncached",
					"adaptive.place_l0x",
					"adaptive.place_scratch",
				} {
					if err := counterFloor(res, 1, c); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Name: "deadline-bypass",
			About: "HYDRA deadline term: with a one-cycle task deadline every " +
				"pure-load fetch must bypass L1X allocation via the deadline " +
				"term, served one-shot and strictly checked",
			Systems: []systems.Kind{systems.Hydra},
			Build:   deadlineBypassBench,
			Tune: func(cfg *systems.Config) {
				cfg.DeadlineCycles = 1
			},
			Check: func(kind systems.Kind, res *systems.Result) error {
				return counterFloor(res, 1, "l1x.bypass_deadline")
			},
		},
	}
}

// Cases returns the directed suite.
func Cases() []*Case { return cases() }

// CaseNames lists the directed cases in suite order.
func CaseNames() []string {
	cs := cases()
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Name
	}
	return out
}

func caseByName(name string) *Case {
	for _, c := range cases() {
		if c.Name == name {
			return c
		}
	}
	return nil
}
