package litmus

import (
	"fmt"
	"sort"

	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/workloads"
)

const lineMask = ^uint64(mem.LineBytes - 1)

// Violation is one observation that contradicts the system's declared
// visibility model. It names the agent, line, cycle, and the write the
// agent should have observed.
type Violation struct {
	Obs   obs.Observation
	Index int    // position in the recorded trace
	Line  uint64 // virtual line address (host observations are folded back)
	// Expected is the version of the write the agent should have observed
	// (for stores: the version it should have produced).
	Expected uint64
	Reason   string
}

func (v Violation) String() string {
	return fmt.Sprintf("agent %s line %#x+%d cycle %d epoch %d %s: %s",
		v.Obs.Agent, v.Line, v.Obs.Addr&^lineMask, v.Obs.Cycle, v.Obs.Epoch,
		v.Obs.Kind, v.Reason)
}

// Check replays a recorded observation trace against the visibility model
// and returns every violation in trace order.
//
// Per line, the checker maintains the globally-ordered current version:
// input lines start at 1 (preloaded by the host), everything else at 0,
// and each store observation advances it by one (phases run one agent at a
// time, so store order in the trace is the global order). Against that
// timeline:
//
//   - a strict read (Lease == 0: MESI clients, scratchpad) must observe
//     exactly the current version;
//   - a scratchpad fill must install exactly the current version;
//   - a store must produce current+1 — a lost or duplicated increment is
//     a protocol bug even when a later store masks it in the final image;
//   - a leased read (Lease > 0: L0X) must hold a live lease, must not
//     observe a version newer than current, and must observe at least the
//     version that was current when its synchronization epoch began —
//     bounded staleness is legal within a lease, never across a
//     task/acquire boundary.
//
// Scratchpad accesses to write-allocated lines (Delta) carry relative
// versions; their stores advance the timeline but their values are checked
// at writeback by the final-image diff instead.
//
// Host-side observations carry physical addresses; lineMap (from
// systems.Result) folds them back into the virtual line namespace so
// cross-agent visibility is checked on one timeline.
func Check(trace []obs.Observation, b *workloads.Benchmark,
	lineMap map[mem.VAddr]mem.PAddr) []Violation {

	cur := make(map[uint64]uint64)
	for _, va := range b.InputLines {
		cur[uint64(va.LineAddr())] = 1
	}

	vas := make([]mem.VAddr, 0, len(lineMap))
	for va := range lineMap {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	p2v := make(map[uint64]uint64, len(vas))
	for _, va := range vas {
		p2v[uint64(lineMap[va].LineAddr())] = uint64(va.LineAddr())
	}

	epochStart := make(map[uint64]uint64) // version current when the line's epoch began
	lastEpoch := make(map[uint64]int32)
	var out []Violation

	for i := range trace {
		o := trace[i]
		if o.Kind == obs.Grant {
			// Filtered before the line/epoch bookkeeping below: grants are
			// diagnostic only and must not advance epoch tracking.
			continue
		}
		line := o.Addr & lineMask
		if o.Phys {
			va, ok := p2v[line]
			if !ok {
				continue // outside the program image (nothing to check against)
			}
			line = va
		}
		c := cur[line]
		if e, seen := lastEpoch[line]; !seen || o.Epoch > e {
			lastEpoch[line] = o.Epoch
			epochStart[line] = c
		}
		bad := func(expected uint64, format string, args ...interface{}) {
			out = append(out, Violation{Obs: o, Index: i, Line: line,
				Expected: expected, Reason: fmt.Sprintf(format, args...)})
		}

		switch o.Kind {
		case obs.Grant:
			continue // unreachable: grants are filtered above
		case obs.Store:
			if !o.Delta && o.Ver != c+1 {
				bad(c+1, "store produced v%d; sequential order requires v%d "+
					"(the write it built on was not the latest)", o.Ver, c+1)
			}
			cur[line] = c + 1
		case obs.Fill:
			if !o.Delta && o.Ver != c {
				bad(c, "fill installed v%d; the latest globally-ordered write is v%d",
					o.Ver, c)
			}
		case obs.Load:
			if o.Delta {
				continue
			}
			if o.Lease > 0 {
				if o.Lease <= o.Cycle {
					bad(c, "read under a lapsed lease (expired at cycle %d); "+
						"should have re-requested and observed write v%d",
						o.Lease, c)
				}
				if o.Ver > c {
					bad(c, "read v%d, newer than any globally-ordered write (v%d)",
						o.Ver, c)
				}
				if s := epochStart[line]; o.Ver < s {
					bad(s, "stale read across a sync boundary: v%d predates "+
						"epoch %d, which began after write v%d was ordered",
						o.Ver, o.Epoch, s)
				}
			} else if o.Ver != c {
				bad(c, "read v%d; should have observed the latest "+
					"globally-ordered write v%d", o.Ver, c)
			}
		}
	}
	return out
}
