package systems

// Native Go fuzzing entry point for the differential golden check. The
// table-driven TestFuzzAllSystemsGolden covers a fixed seed set on every
// run; this fuzzer lets `go test -fuzz` explore the seed space
// indefinitely (make fuzz-smoke runs it briefly in CI fashion), with any
// discovered counterexample minimized and persisted by the fuzz engine.

import (
	"testing"

	"fusion/internal/workloads"
)

func FuzzRandomWorkloadGolden(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(21))
	f.Add(int64(-3))
	f.Fuzz(func(t *testing.T, seed int64) {
		b := workloads.Random(seed, workloads.DefaultRandomParams())
		want := ExpectedVersions(b)
		for _, kind := range Kinds() {
			res, err := Run(b, DefaultConfig(kind))
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			bad := 0
			for va, wv := range want {
				if res.FinalVersions[va] != wv {
					bad++
					if bad <= 3 {
						t.Errorf("seed %d %v: line %#x v%d, golden v%d",
							seed, kind, uint64(va), res.FinalVersions[va], wv)
					}
				}
			}
			if bad > 3 {
				t.Errorf("seed %d %v: ... %d more mismatches", seed, kind, bad-3)
			}
		}
	})
}
