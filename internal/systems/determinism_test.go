package systems

// Determinism regression test: the invariant fusionlint's rules exist to
// protect. Running the same benchmark on the same system twice — each run
// from a freshly generated benchmark, so no state can leak between them —
// must produce byte-identical reports: cycles, every stat counter, every
// energy category, per-function aggregates, and the final memory image.
// Any reintroduced map-order, wall-clock, or global-rand dependence shows
// up here as a diff.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"fusion/internal/mem"
	"fusion/internal/workloads"
)

// renderResult serializes everything a Result reports into one canonical
// byte string. Map-valued fields are rendered in sorted key order — the
// point is to compare values across runs, not iteration order.
func renderResult(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark %s system %s\n", res.Benchmark, res.System)
	fmt.Fprintf(&b, "cycles %d dmacycles %d\n", res.Cycles, res.DMACycles)
	fmt.Fprintf(&b, "wset %d dmabytes %d dmaxfers %d fwd %d\n",
		res.WorkingSetBytes, res.DMABytes, res.DMATransfers, res.ForwardedBlocks)

	res.Stats.Dump(&b)
	res.Energy.Dump(&b)

	for i, ph := range res.Phases {
		fmt.Fprintf(&b, "phase %d %s axc%d cycles %d dma %d energy %x\n",
			i, ph.Function, ph.AXC, ph.Cycles, ph.DMACycles, ph.EnergyPJ)
	}
	fns := make([]string, 0, len(res.PerFunction))
	for fn := range res.PerFunction {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		pf := res.PerFunction[fn]
		fmt.Fprintf(&b, "fn %s axc%d cycles %d dma %d energy %x\n",
			fn, pf.AXC, pf.Cycles, pf.DMACycles, pf.EnergyPJ)
	}
	addrs := make([]mem.VAddr, 0, len(res.FinalVersions))
	for va := range res.FinalVersions {
		addrs = append(addrs, va)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, va := range addrs {
		fmt.Fprintf(&b, "line %#x v%d\n", uint64(va), res.FinalVersions[va])
	}
	return b.String()
}

// runOnce generates the benchmark from scratch and runs it, so consecutive
// calls share nothing but the code under test.
func runOnce(t *testing.T, name string, kind Kind) string {
	t.Helper()
	res, err := Run(workloads.Get(name), DefaultConfig(kind))
	if err != nil {
		t.Fatalf("%s on %v: %v", name, kind, err)
	}
	return renderResult(res)
}

// TestRunsAreBitIdentical replays every system twice and demands identical
// reports, byte for byte. Energy floats are rendered with %x so "close
// enough" cannot pass — summation order differences change the bits.
func TestRunsAreBitIdentical(t *testing.T) {
	const bench = "adpcm"
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			first := runOnce(t, bench, kind)
			second := runOnce(t, bench, kind)
			if first == second {
				return
			}
			fl, sl := strings.Split(first, "\n"), strings.Split(second, "\n")
			for i := range fl {
				if i >= len(sl) || fl[i] != sl[i] {
					t.Fatalf("run reports diverge at line %d:\n  run1: %s\n  run2: %s",
						i+1, fl[i], sl[min(i, len(sl)-1)])
				}
			}
			t.Fatalf("run reports diverge in length: %d vs %d lines", len(fl), len(sl))
		})
	}
}
