package systems

// The ADAPTIVE system: Cohmeleon-style per-task placement (PAPERS.md).
// Every accelerator task is profiled over a bounded decision window and a
// Policy picks where its data lives for the task's duration:
//
//   - PlaceL0X:      the FUSION lease hierarchy (private L0X over the
//                    shared L1X);
//   - PlaceScratch:  a software-managed scratchpad with oracle-windowed
//                    DMA, like SCRATCH;
//   - PlaceUncached: no on-tile allocation at all — every access is one
//                    coherent round trip at the LLC.
//
// A line may migrate placement between tasks (scratchpad in one phase,
// L0X-cached in the next). Visibility stays sound because every placement
// is coherent at phase granularity: the L0X path drains its leases at task
// end, the scratchpad path DMA-drains its dirty lines at window end, and
// the uncached path commits every store at the LLC before it completes —
// so the next epoch always begins from the globally-ordered image. The
// litmus placement-migration case pins this down.

import (
	"fmt"
	"sort"

	"fusion/internal/acc"
	"fusion/internal/energy"
	"fusion/internal/flat"
	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/scratchpad"
	"fusion/internal/stats"
	"fusion/internal/trace"
	"fusion/internal/workloads"
)

// uncachedOp is one queued access of an uncachedPort line.
type uncachedOp struct {
	kind mem.AccessKind
	va   mem.VAddr
	done func(now uint64)
}

// lineQueue is a line's serialization state: busy while one op is in
// flight, with the ops queued behind it. Entries are never deleted — a
// drained line parks as {busy: false, q: q[:0]}, so steady state never
// reallocates.
type lineQueue struct {
	busy bool
	q    []uncachedOp
}

// uncachedPort implements accel.MemPort for the uncached placement: loads
// pull the coherent version through the directory, stores commit at the
// LLC as version deltas. Operations on one line are serialized — the DMA
// engine rejects overlapping writes, and serialization keeps the strict
// observation stream in version order.
type uncachedPort struct {
	m    *machine
	dma  *scratchpad.DMA
	name string
	obsv obs.Observer
	// inflight holds each line's serialization state.
	inflight  *flat.Map[lineQueue]
	cAccesses *stats.Counter
}

func (p *uncachedPort) Access(kind mem.AccessKind, va mem.VAddr, done func(uint64)) bool {
	p.cAccesses.Inc()
	la := uint64(va.LineAddr())
	op := uncachedOp{kind: kind, va: va, done: done}
	if l := p.inflight.Ptr(la); l != nil {
		if l.busy {
			l.q = append(l.q, op)
			return true
		}
		l.busy = true
	} else {
		p.inflight.Put(la, lineQueue{busy: true})
	}
	p.issue(la, op)
	return true
}

func (p *uncachedPort) issue(la uint64, op uncachedOp) {
	pa := p.m.translate(mem.VAddr(la))
	if op.kind == mem.Store {
		// One store = one +1 version delta accumulated at the LLC, the
		// same commit rule the scratchpad drain uses for write-allocated
		// lines.
		p.dma.WriteLine(pa, 1, true, func(now uint64) {
			if p.obsv != nil {
				p.obsv.Record(obs.Observation{Cycle: now, Agent: p.name,
					Addr: uint64(op.va), Ver: 1, Kind: obs.Store, Delta: true})
			}
			op.done(now)
			p.next(la)
		})
		return
	}
	p.dma.ReadLine(pa, func(ver uint64) {
		now := p.m.eng.Now()
		if p.obsv != nil {
			// Lease zero: an uncached read is a strict observation — it
			// must see the latest globally-ordered version.
			p.obsv.Record(obs.Observation{Cycle: now, Agent: p.name,
				Addr: uint64(op.va), Ver: ver, Kind: obs.Load})
		}
		op.done(now)
		p.next(la)
	})
}

func (p *uncachedPort) next(la uint64) {
	l := p.inflight.Ptr(la)
	if len(l.q) == 0 {
		l.busy = false
		return
	}
	op := l.q[0]
	copy(l.q, l.q[1:])
	l.q = l.q[:len(l.q)-1]
	p.issue(la, op)
}

// --------------------------------------------------------------- ADAPTIVE

func runAdaptive(m *machine, b *workloads.Benchmark, cfg Config, res *Result) error {
	pol, err := newPolicy(cfg.Policy)
	if err != nil {
		return err
	}
	n := b.Program.NumAXCs()

	// One tile collocating every AXC (the paper's placement; the Tiles
	// knob is a FUSION-specific ablation and is ignored here).
	var tcfg acc.TileConfig
	spadCfg := scratchpad.Config{SizeBytes: 4 << 10, AccessLat: 1,
		AccessPJ: m.model.ScratchSmall}
	if cfg.Large {
		tcfg = acc.LargeTileConfig(n, m.model)
		spadCfg = scratchpad.Config{SizeBytes: 8 << 10, AccessLat: 1,
			AccessPJ: m.model.ScratchLarge}
	} else {
		tcfg = acc.SmallTileConfig(n, m.model)
	}
	tcfg.Agent = tileAgent
	tcfg.PID = m.pid
	tcfg.L0X.WriteThrough = cfg.WriteThrough
	tcfg.Injector = m.inj
	tile := acc.NewTile(m.eng, m.fab, m.pt, tcfg, m.model, m.mt, m.st)
	if cfg.Tracer != nil {
		tile.SetTracer(cfg.Tracer)
	}
	if cfg.Observer != nil {
		tile.SetObserver(cfg.Observer)
	}
	if cfg.AccMutations != nil {
		tile.SetMutations(cfg.AccMutations)
	}
	if m.paranoid != nil {
		m.paranoid.tiles = []*acc.Tile{tile}
	}
	if m.wd != nil {
		m.wd.AddDump("tile0", tile.DumpState)
	}

	dma := scratchpad.NewDMA(m.fab, dmaAgent, cfg.DMAOutstanding, cfg.DMAGap, m.st)
	axcs := accelFor(m, b)
	ids := make([]int, 0, len(axcs))
	for axc := range axcs {
		ids = append(ids, axc)
	}
	sort.Ints(ids)
	pads := make(map[int]*scratchpad.Scratchpad)
	ports := make(map[int]*uncachedPort)
	cUncached := m.st.Counter("adaptive.uncached.accesses")
	for _, axc := range ids {
		pads[axc] = scratchpad.New(m.eng, fmt.Sprintf("spad%d", axc), spadCfg, m.mt, m.st)
		if cfg.Observer != nil {
			pads[axc].SetObserver(cfg.Observer)
		}
		if cfg.PadMutations != nil {
			pads[axc].SetMutations(cfg.PadMutations)
		}
		ports[axc] = &uncachedPort{m: m, dma: dma,
			name:      fmt.Sprintf("uncached%d", axc),
			obsv:      cfg.Observer,
			inflight:  flat.New[lineQueue](256),
			cAccesses: cUncached,
		}
	}
	cPlace := [3]*stats.Counter{
		PlaceL0X:      m.st.Counter("adaptive.place_l0x"),
		PlaceScratch:  m.st.Counter("adaptive.place_scratch"),
		PlaceUncached: m.st.Counter("adaptive.place_uncached"),
	}

	// lastToucher feeds the sharing counter: which agent (AXC id, or the
	// host) touched each line most recently in an earlier phase. live
	// feeds the scratchpad oracle exactly as in runScratch.
	lastToucher := make(map[mem.VAddr]int)
	live := make(map[mem.VAddr]bool)
	for _, va := range b.InputLines {
		lastToucher[va.LineAddr()] = hostToucher
		live[va.LineAddr()] = true
	}
	markTouched := func(inv *trace.Invocation, who int) {
		lines, w := inv.Lines()
		for _, la := range lines {
			lastToucher[la] = who
		}
		for la := range w {
			live[la] = true
		}
	}

	var sticky Placement
	haveSticky := false

	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if cfg.Observer != nil {
			cfg.Observer.Epoch(i, m.eng.Now())
		}
		if ph.Kind == trace.PhaseHost {
			if err := runHostPhase(m, &ph.Inv, cfg, res); err != nil {
				return err
			}
			markTouched(&ph.Inv, hostToucher)
			continue
		}

		ax := axcs[ph.Inv.AXC]
		prof := profileTask(&ph.Inv, cfg.DecisionWindow,
			pads[ph.Inv.AXC].CapacityLines(), lastToucher)
		place := pol.Place(prof)
		if cfg.PolicyMutations != nil && cfg.PolicyMutations.StickyPlacement {
			if haveSticky {
				place = sticky
			} else {
				sticky, haveSticky = place, true
			}
		}
		m.mt.Add(energy.CatPolicy, m.model.PolicyCheck)
		cPlace[place].Inc()

		c0 := m.eng.Now()
		e0 := m.mt.Total()
		var dmaCycles uint64
		switch place {
		case PlaceScratch:
			dc, err := runScratchWindows(m, cfg, ax, pads[ph.Inv.AXC], dma, &ph.Inv, live)
			if err != nil {
				return err
			}
			dmaCycles = dc
		case PlaceUncached:
			fired := false
			ax.Start(&ph.Inv, ports[ph.Inv.AXC], func(uint64) { fired = true })
			if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
				return fmt.Errorf("%s uncached: %w", ph.Inv.Function, err)
			}
		case PlaceL0X:
			l0 := tile.L0Xs[ph.Inv.AXC]
			l0.SetLeaseTime(scaleLease(ph.Inv.LeaseTime, cfg.LeaseScale))
			l0.ClearForwards()
			fired := false
			ax.Start(&ph.Inv, l0, func(uint64) { fired = true })
			if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
				return fmt.Errorf("%s: %w", ph.Inv.Function, err)
			}
			l0.Drain()
		}
		pol.Observe(prof, place, m.eng.Now()-c0)
		markTouched(&ph.Inv, ph.Inv.AXC)
		res.record(ph.Inv.Function, ph.Inv.AXC, m.eng.Now()-c0, dmaCycles,
			m.mt.Total()-e0)
	}

	// Drain the tile completely: let leases lapse, flush the L1X — the
	// same quiescence dance as runFusion.
	tile.Drain()
	outstanding := func() bool { return tile.Outstanding() == 0 }
	if err := m.run(cfg.MaxCycles, outstanding); err != nil {
		return err
	}
	maxLease := uint64(0)
	fns := make([]string, 0, len(b.LeaseTimes))
	for fn := range b.LeaseTimes {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if lt := scaleLease(b.LeaseTimes[fn], cfg.LeaseScale); lt > maxLease {
			maxLease = lt
		}
	}
	idleUntil := m.eng.Now() + maxLease + 64
	for m.eng.Now() < idleUntil {
		m.eng.Progress()
		m.eng.Step()
	}
	tile.L1X.FlushAll()
	if err := m.run(cfg.MaxCycles, outstanding); err != nil {
		return err
	}
	return drainHost(m, cfg)
}
