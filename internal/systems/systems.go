// Package systems assembles and runs the four architectures the paper
// compares (Section 4, "Systems compared"):
//
//   - SCRATCH: per-accelerator scratchpads filled/drained by an oracle
//     coherent DMA at the host LLC, windowed execution;
//   - SHARED:  one shared L1X cache per tile, a plain MESI L1 agent, with
//     address translation on the access path;
//   - FUSION:  private L0Xs + shared L1X under the ACC lease protocol, the
//     AX-TLB on the L1X miss path, MEI integration with host MESI;
//   - FUSION-Dx: FUSION plus direct producer->consumer write forwarding.
//
// Two post-paper systems make the placement choice dynamic (ROADMAP item 3):
//
//   - ADAPTIVE: Cohmeleon-style per-task placement — each accelerator task
//     runs from a scratchpad, an L0X, or uncached at the LLC, chosen by a
//     pluggable Policy from reuse/sharing counters (see policy.go);
//   - HYDRA: FUSION plus a deadline- and reuse-aware cacheability filter on
//     the L1X allocation path that bypasses allocation for low-reuse or
//     deadline-critical streams.
//
// Run executes a generated benchmark on one system and returns cycle,
// energy, and traffic measurements — the raw material for every table and
// figure in the evaluation.
package systems

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"fusion/internal/acc"
	"fusion/internal/accel"
	"fusion/internal/cache"
	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/host"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/obs"
	"fusion/internal/ptrace"
	"fusion/internal/scratchpad"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/trace"
	"fusion/internal/vm"
	"fusion/internal/workloads"
)

// Kind selects the architecture.
type Kind int

const (
	Scratch Kind = iota
	Shared
	Fusion
	FusionDx
	Adaptive
	Hydra
)

func (k Kind) String() string {
	switch k {
	case Scratch:
		return "SCRATCH"
	case Shared:
		return "SHARED"
	case Fusion:
		return "FUSION"
	case FusionDx:
		return "FUSION-Dx"
	case Adaptive:
		return "ADAPTIVE"
	case Hydra:
		return "HYDRA"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds is the system registry: every Kind the package can run, in enum
// order. Anything that enumerates systems — the soak sweep's default
// matrix, the CLI's "-system all", the litmus random suite, the
// mutation-coverage report — derives its list from here, so a new Kind
// cannot be silently skipped.
func Kinds() []Kind {
	return []Kind{Scratch, Shared, Fusion, FusionDx, Adaptive, Hydra}
}

// KindNames returns the canonical lower-case spec name of every registered
// Kind, in enum order — the names ParseKind accepts.
func KindNames() []string {
	ks := Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = strings.ToLower(k.String())
	}
	return out
}

// dmaControllerGap is the DMA engine's per-transfer state-machine occupancy
// (descriptor handling and completion bookkeeping), on top of the wire and
// LLC costs. The paper models "the complete state machine of the DMA
// controller"; transfers are serial.
const dmaControllerGap = 20

// hydraBypassThreshold is HYDRA's allocate-on-Nth-touch reuse bar: a line
// whose fill completes while the L1X has seen fewer than this many requests
// for it is served without allocating (a low-reuse stream). The second
// touch re-misses, crosses the bar, and allocates normally — the filter is
// self-limiting.
const hydraBypassThreshold = 2

// Agent IDs on the host fabric.
const (
	hostAgent mesi.AgentID = 1
	tileAgent mesi.AgentID = 2
	dmaAgent  mesi.AgentID = 3
)

// Config tunes a run.
type Config struct {
	Kind Kind
	// Large selects the AXC-Large configuration of Section 5.5 (8 KB
	// L0X/scratchpad, 256 KB L1X).
	Large bool
	// WriteThrough disables L0X write caching (Table 4).
	WriteThrough bool
	// MaxCycles bounds the simulation (safety net).
	MaxCycles uint64

	// --- Extensions and ablation knobs (defaults reproduce the paper) ---

	// Tiles splits the accelerators across multiple FUSION tiles
	// (round-robin by AXC id). The paper collocates all of an
	// application's accelerators on one tile and keeps "no inter-tile
	// communication"; setting Tiles > 1 quantifies why — shared data then
	// ping-pongs through host MESI.
	Tiles int
	// LeaseScale multiplies every function's ACC lease time (Table 3 LT),
	// for lease-sensitivity ablations. Zero means 1.0.
	LeaseScale float64
	// DMAOutstanding is the oracle DMA engine's transfer depth (default 1:
	// a serial controller state machine, as modeled in the paper).
	DMAOutstanding int
	// DMAGap is the DMA controller's per-transfer occupancy in cycles.
	DMAGap uint64
	// Tracer, when set, receives message-level protocol events from the
	// accelerator tile(s) and the host directory (see internal/ptrace).
	Tracer ptrace.Tracer
	// Paranoid scans the tile(s) for ACC protocol-invariant violations
	// every few cycles (single writer, lease containment, RMAP
	// consistency) and the host directory's MESI invariants (single owner,
	// sharer soundness); a violation fails the run at the cycle it appears.
	Paranoid bool
	// Faults, when non-nil and enabled, injects the plan's deterministic
	// order-preserving faults (link jitter, link stall windows, DRAM
	// latency spikes) into every interconnect and the memory controller. A
	// correct hierarchy absorbs any plan with degraded cycle counts and an
	// unchanged final memory image.
	Faults *faults.Plan
	// WatchdogCycles arms a forward-progress watchdog: if no component
	// reports progress (op retirement, MSHR free, link delivery) for this
	// many cycles, the run halts with a diagnostic dump naming the stuck
	// component. Zero disables the watchdog.
	WatchdogCycles uint64
	// NoIdleSkip forces per-cycle stepping, disabling the engine's
	// quiescence fast-forward. Results are identical either way (asserted
	// by TestIdleSkipInvariant); the knob exists for that A/B check and for
	// benchmarking the skip itself.
	NoIdleSkip bool
	// Scheduler selects the engine's event-queue implementation:
	// sim.SchedulerWheel (the default hierarchical time-wheel) or
	// sim.SchedulerHeap (the reference binary heap). The two are
	// observationally equivalent (asserted by TestSchedulerInvariant); the
	// knob exists for that A/B check and for benchmarking the wheel itself.
	// Empty means the default.
	Scheduler string
	// Policy selects the ADAPTIVE placement policy: "heuristic" (the
	// default, also selected by "") or "learned". Other systems ignore it.
	Policy string
	// DecisionWindow bounds how many leading iterations of a task the
	// ADAPTIVE profiler folds into its reuse/sharing counters (the
	// decision window of the Cohmeleon-style policy). Zero means
	// DefaultDecisionWindow. Other systems ignore it.
	DecisionWindow int
	// DeadlineCycles arms HYDRA's per-task deadline: each accelerator
	// task's deadline is its start cycle plus this budget, and once the
	// deadline passes the L1X bypasses allocation for the task's fills
	// (deadline-critical streaming). Zero leaves the deadline term of the
	// filter unarmed. Other systems ignore it.
	DeadlineCycles uint64
	// Observer, when set, receives a (cycle, agent, address, value, epoch)
	// observation for every load and store any agent performs, plus epoch
	// marks at phase boundaries — the litmus harness's value-checking feed
	// (see internal/obs and internal/litmus). Nil costs the hot path only a
	// nil check.
	Observer obs.Observer
	// AccMutations, DirMutations, PadMutations, and PolicyMutations arm
	// deliberate, test-only protocol/policy bugs for the litmus
	// mutation-kill validator. They must be nil in all real runs.
	AccMutations    *acc.Mutations
	DirMutations    *mesi.DirMutations
	PadMutations    *scratchpad.Mutations
	PolicyMutations *PolicyMutations
}

// DefaultConfig returns the paper's baseline settings for a system.
func DefaultConfig(k Kind) Config {
	return Config{
		Kind:           k,
		MaxCycles:      200_000_000,
		Tiles:          1,
		LeaseScale:     1.0,
		DMAOutstanding: 1,
		DMAGap:         dmaControllerGap,
	}
}

// normalize fills zero-valued knobs with their defaults so a zero Config
// still runs the paper's baseline.
func (c Config) normalize() Config {
	if c.MaxCycles == 0 {
		c.MaxCycles = 200_000_000
	}
	if c.Tiles <= 0 {
		c.Tiles = 1
	}
	if c.LeaseScale == 0 {
		c.LeaseScale = 1.0
	}
	if c.DMAOutstanding <= 0 {
		c.DMAOutstanding = 1
	}
	if c.DMAGap == 0 {
		c.DMAGap = dmaControllerGap
	}
	return c
}

// PhaseResult captures one phase's execution.
type PhaseResult struct {
	Function string
	AXC      int
	Cycles   uint64
	EnergyPJ float64 // total dynamic energy spent during the phase
	// DMACycles is the portion of the phase spent in DMA transfers
	// (SCRATCH only).
	DMACycles uint64
}

// Result is one benchmark x system measurement.
type Result struct {
	Benchmark string
	System    string
	Config    Config

	Cycles    uint64 // end-to-end program cycles
	DMACycles uint64 // total cycles serialized behind DMA (SCRATCH)

	Energy *energy.Meter
	Stats  *stats.Set

	Phases []PhaseResult
	// PerFunction aggregates phases by function name across repeats.
	PerFunction map[string]*PhaseResult

	WorkingSetBytes int
	DMABytes        int64
	DMATransfers    int64
	ForwardedBlocks int64

	// FinalVersions is the host backing store's view of every program line
	// after the run drained — compared against ExpectedVersions in tests.
	FinalVersions map[mem.VAddr]uint64
	// LineMap records the virtual->physical line mapping of every program
	// line. Populated only when Config.Observer is set: the litmus checker
	// uses it to fold host-side (physical) observations into the virtual
	// line namespace.
	LineMap map[mem.VAddr]mem.PAddr
}

// machine is the assembled common substrate.
type machine struct {
	eng    *sim.Engine
	st     *stats.Set
	mt     *energy.Meter
	model  energy.Model
	fab    *mesi.Fabric
	dir    *mesi.Directory
	dram   *dram.DRAM
	pt     *vm.PageTable
	hostL1 *mesi.Client
	core   *host.Core
	pid    mem.PID

	inj      *faults.Injector
	wd       *sim.Watchdog
	paranoid *invariantChecker
}

func newMachine() *machine {
	m := &machine{pid: 1}
	m.eng = sim.NewEngine()
	m.st = stats.NewSet()
	m.mt = energy.NewMeter()
	m.model = energy.Default()
	m.fab = mesi.NewFabric(m.eng, m.mt, m.st)
	m.dram = dram.New(m.eng, dram.DefaultConfig(), m.model, m.mt, m.st)
	m.dir = mesi.NewDirectory(m.fab, mesi.DefaultDirConfig(), m.dram, m.model, m.mt, m.st)
	m.dir.TileAgent = tileAgent
	m.pt = vm.NewPageTable()

	// Routes: host L1 sits near the L2; the accelerator tile and the DMA
	// engine's scratchpad targets are a chip-crossing away (Table 2:
	// 6 pJ/B on the L1X<->L2 link).
	// All chip-crossing routes serialize at one 8-byte flit per cycle, so a
	// 72-byte line transfer occupies the wire for 9 cycles — this is what
	// puts DMA transfers on the SCRATCH critical path (Section 5.1: FFT,
	// DISP, TRACK, HIST spend ~82% of their time in DMA).
	m.fab.SetRoutePair(hostAgent, mesi.DirID, mesi.Route{
		Latency: 6, PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
		Category: energy.CatLinkHost, StatName: "hostlink.l1"})
	m.fab.SetRoutePair(tileAgent, mesi.DirID, mesi.Route{
		Latency: 8, PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
		Category: energy.CatLinkHost, StatName: "hostlink.tile"})
	m.fab.SetRoutePair(dmaAgent, mesi.DirID, mesi.Route{
		Latency: 8, PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
		Category: energy.CatLinkHost, StatName: "hostlink.dma"})
	// Direct owner->requester data responses between agents.
	for _, a := range []mesi.AgentID{hostAgent, tileAgent, dmaAgent} {
		for _, b := range []mesi.AgentID{hostAgent, tileAgent, dmaAgent} {
			if a != b {
				m.fab.SetRoute(a, b, mesi.Route{Latency: 8,
					PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
					Category: energy.CatLinkHost, StatName: "hostlink.p2p"})
			}
		}
	}

	m.hostL1 = mesi.NewClient(m.fab, hostAgent, mesi.DefaultHostL1Config(m.model),
		m.model, m.mt, m.st)
	m.core = host.New(m.eng, "hostcore", host.DefaultConfig(), m.hostL1, m.st)
	return m
}

// addTileRoutes installs the chip-crossing routes for an extra tile agent.
func (m *machine) addTileRoutes(agent mesi.AgentID, statName string) {
	m.fab.SetRoutePair(agent, mesi.DirID, mesi.Route{
		Latency: 8, PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
		Category: energy.CatLinkHost, StatName: statName})
	for _, other := range []mesi.AgentID{hostAgent, tileAgent, dmaAgent} {
		m.fab.SetRoutePair(agent, other, mesi.Route{Latency: 8,
			PJPerByte: m.model.LinkL1XL2, FlitsPerCycle: 1,
			Category: energy.CatLinkHost, StatName: "hostlink.p2p"})
	}
}

func (m *machine) translate(va mem.VAddr) mem.PAddr {
	return m.pt.Translate(m.pid, va)
}

// run drives the engine until pred holds. Protocol failures (including a
// watchdog timeout), cancellation aborts, and cycle-budget exhaustion all
// surface as a *sim.ProtocolError instead of a panic or a bare string —
// the budget case attaches the watchdog's diagnostic dump when one is
// armed, so a run that timed out still names what it was waiting on.
func (m *machine) run(max uint64, pred func() bool) error {
	_, ok, err := m.eng.RunE(max, pred)
	if err != nil {
		return err
	}
	if !ok {
		state := ""
		if m.wd != nil {
			state = m.wd.Dump()
		}
		return &sim.ProtocolError{
			Component: sim.ComponentBudget,
			Cycle:     m.eng.Now(),
			Message:   fmt.Sprintf("cycle budget of %d exhausted before the wait completed", max),
			State:     state,
		}
	}
	return nil
}

// cancelPollCycles is how often a context-carrying run polls for
// cancellation: every few thousand simulated cycles — a few milliseconds
// of wall time — so cancellation and deadlines take effect promptly
// without measurable per-cycle cost. Polling only ever aborts; it cannot
// change the results of a run that completes.
const cancelPollCycles = 4096

// Run executes benchmark b on the configured system.
func Run(b *workloads.Benchmark, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), b, cfg)
}

// RunCtx is Run under a context: when ctx is canceled or its deadline
// passes, the simulation aborts promptly (within cancelPollCycles simulated
// cycles) with a *sim.ProtocolError whose component is sim.ComponentCanceled
// or sim.ComponentDeadline, carrying the context error as its cause and the
// watchdog's diagnostic dump (when one is armed) as its state.
func RunCtx(ctx context.Context, b *workloads.Benchmark, cfg Config) (*Result, error) {
	cfg = cfg.normalize()
	m := newMachine()
	m.eng.SetIdleSkip(!cfg.NoIdleSkip)
	if cfg.Scheduler != "" {
		m.eng.SetScheduler(cfg.Scheduler)
	}
	res := &Result{
		Benchmark:   b.Program.Name,
		System:      cfg.Kind.String(),
		Config:      cfg,
		Energy:      m.mt,
		Stats:       m.st,
		PerFunction: make(map[string]*PhaseResult),
	}
	_, res.WorkingSetBytes = b.Program.WorkingSet()

	if cfg.Faults != nil && cfg.Faults.Enabled() {
		m.inj = faults.NewInjector(*cfg.Faults)
		m.fab.SetInjector(m.inj)
		m.dram.SetInjector(m.inj)
	}
	if cfg.WatchdogCycles > 0 {
		m.wd = sim.NewWatchdog(m.eng, cfg.WatchdogCycles)
		m.wd.AddDump("dir", m.dir.DumpState)
		m.wd.AddDump("hostl1", m.hostL1.DumpState)
		m.wd.AddDump("dram", m.dram.DumpState)
	}
	if cfg.Paranoid {
		m.paranoid = &invariantChecker{interval: 64, dir: m.dir,
			clients: []*mesi.Client{m.hostL1}}
		m.eng.Register(m.paranoid)
	}
	if ctx != nil && ctx.Done() != nil {
		m.eng.SetInterrupt(cancelPollCycles, func() error {
			cause := ctx.Err()
			if cause == nil {
				return nil
			}
			component, msg := sim.ComponentCanceled, "run canceled by caller"
			if errors.Is(cause, context.DeadlineExceeded) {
				component, msg = sim.ComponentDeadline, "wall-clock deadline exceeded"
			}
			state := ""
			if m.wd != nil {
				state = m.wd.Dump()
			}
			return &sim.ProtocolError{
				Component: component,
				Cycle:     m.eng.Now(),
				Message:   msg,
				State:     state,
				Cause:     cause,
			}
		})
	}

	// Preload inputs into the host LLC at version 1 (the host produced
	// them before offload).
	for _, va := range b.InputLines {
		m.dir.Preload(m.translate(va), 1)
	}

	if cfg.Tracer != nil {
		m.dir.SetTracer(cfg.Tracer)
	}
	if cfg.Observer != nil {
		m.hostL1.SetObserver(cfg.Observer)
	}
	if cfg.DirMutations != nil {
		m.dir.SetMutations(cfg.DirMutations)
	}

	var err error
	switch cfg.Kind {
	case Scratch:
		err = runScratch(m, b, cfg, res)
	case Shared:
		err = runShared(m, b, cfg, res)
	case Fusion, FusionDx, Hydra:
		err = runFusion(m, b, cfg, res)
	case Adaptive:
		err = runAdaptive(m, b, cfg, res)
	default:
		err = fmt.Errorf("unknown system %v", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}
	if m.paranoid != nil && m.paranoid.violation != "" {
		return nil, fmt.Errorf("invariant violated at cycle %d: %s",
			m.paranoid.violatedAt, m.paranoid.violation)
	}

	res.Cycles = m.eng.Now()
	res.DMABytes = 64 * (m.st.Get("dma.reads") + m.st.Get("dma.writes"))
	res.DMATransfers = m.st.Get("dma.reads") + m.st.Get("dma.writes")
	for t := 0; t < 4; t++ {
		prefix := ""
		if t > 0 {
			prefix = fmt.Sprintf("t%d.", t)
		}
		for i := 0; i < 8; i++ {
			res.ForwardedBlocks += m.st.Get(fmt.Sprintf("%sl0x.%d.fwd_out", prefix, i))
		}
	}

	// Capture final versions of every program line — including preloaded
	// inputs no phase touched — for verification.
	res.FinalVersions = make(map[mem.VAddr]uint64)
	if cfg.Observer != nil {
		res.LineMap = make(map[mem.VAddr]mem.PAddr)
	}
	capture := func(va mem.VAddr) {
		la := va.LineAddr()
		pa := m.translate(la)
		res.FinalVersions[la] = m.dir.Version(pa)
		if res.LineMap != nil {
			res.LineMap[la] = pa.LineAddr()
		}
	}
	for _, va := range b.InputLines {
		capture(va)
	}
	for i := range b.Program.Phases {
		lines, _ := b.Program.Phases[i].Inv.Lines()
		for _, va := range lines {
			capture(va)
		}
	}
	return res, nil
}

// OnChipPJ returns the dynamic energy of the on-chip hierarchy (caches,
// scratchpads, links, translation, datapath) — the quantity Figure 6a
// stacks. DRAM array energy and the memory-channel link are off-chip and
// excluded, as in the paper.
func (res *Result) OnChipPJ() float64 {
	return res.Energy.Total() - res.Energy.Get(energy.CatDRAM) - res.Energy.Get(energy.CatLinkMem)
}

// record appends a phase result and aggregates per function.
func (res *Result) record(fn string, axc int, cycles, dmaCycles uint64, pj float64) {
	res.Phases = append(res.Phases, PhaseResult{
		Function: fn, AXC: axc, Cycles: cycles, EnergyPJ: pj, DMACycles: dmaCycles})
	agg := res.PerFunction[fn]
	if agg == nil {
		agg = &PhaseResult{Function: fn, AXC: axc}
		res.PerFunction[fn] = agg
	}
	agg.Cycles += cycles
	agg.EnergyPJ += pj
	agg.DMACycles += dmaCycles
	res.DMACycles += dmaCycles
}

// accelFor builds one accelerator per AXC with the per-function MLP of
// Table 1.
func accelFor(m *machine, b *workloads.Benchmark) map[int]*accel.Accelerator {
	out := make(map[int]*accel.Accelerator)
	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if ph.Kind != trace.PhaseAccel {
			continue
		}
		if _, ok := out[ph.Inv.AXC]; ok {
			continue
		}
		cfg := accel.DefaultConfig()
		if mlp, ok := b.MLP[ph.Inv.Function]; ok && mlp > 0 {
			// Table 1 reports the function's *average* observed MLP; the
			// datapath's peak outstanding capacity sits above the average
			// (an average of 2 cannot arise from a cap of 2 unless memory
			// is saturated every cycle).
			cfg.MLP = mlp + 2
		}
		out[ph.Inv.AXC] = accel.New(m.eng, fmt.Sprintf("axc%d", ph.Inv.AXC),
			cfg, m.model, m.mt, m.st)
	}
	return out
}

// runHostPhase executes a host phase to completion.
func runHostPhase(m *machine, inv *trace.Invocation, cfg Config, res *Result) error {
	e0 := m.mt.Total()
	c0 := m.eng.Now()
	fired := false
	m.core.Start(inv, m.translate, func(uint64) { fired = true })
	if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
		return fmt.Errorf("host phase %s: %w", inv.Function, err)
	}
	res.record(inv.Function, -1, m.eng.Now()-c0, 0, m.mt.Total()-e0)
	return nil
}

// ---------------------------------------------------------------- SCRATCH

func runScratch(m *machine, b *workloads.Benchmark, cfg Config, res *Result) error {
	model := m.model
	spadCfg := scratchpad.Config{SizeBytes: 4 << 10, AccessLat: 1,
		AccessPJ: model.ScratchSmall}
	if cfg.Large {
		spadCfg = scratchpad.Config{SizeBytes: 8 << 10, AccessLat: 1,
			AccessPJ: model.ScratchLarge}
	}
	dma := scratchpad.NewDMA(m.fab, dmaAgent, cfg.DMAOutstanding, cfg.DMAGap, m.st)
	axcs := accelFor(m, b)
	// Construct scratchpads in sorted AXC order so engine registration and
	// stats insertion order are identical run to run.
	ids := make([]int, 0, len(axcs))
	for axc := range axcs {
		ids = append(ids, axc)
	}
	sort.Ints(ids)
	pads := make(map[int]*scratchpad.Scratchpad)
	for _, axc := range ids {
		pads[axc] = scratchpad.New(m.eng, fmt.Sprintf("spad%d", axc), spadCfg, m.mt, m.st)
		if cfg.Observer != nil {
			pads[axc].SetObserver(cfg.Observer)
		}
		if cfg.PadMutations != nil {
			pads[axc].SetMutations(cfg.PadMutations)
		}
	}

	// live tracks lines holding earlier-produced data: the oracle must
	// DMA-in a stored line when the store only partially overwrites it.
	live := make(map[mem.VAddr]bool)
	for _, va := range b.InputLines {
		live[va.LineAddr()] = true
	}

	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if cfg.Observer != nil {
			cfg.Observer.Epoch(i, m.eng.Now())
		}
		if ph.Kind == trace.PhaseHost {
			if err := runHostPhase(m, &ph.Inv, cfg, res); err != nil {
				return err
			}
			_, w := ph.Inv.Lines()
			for la := range w {
				live[la] = true
			}
			continue
		}
		ax := axcs[ph.Inv.AXC]
		pad := pads[ph.Inv.AXC]
		phaseStart := m.eng.Now()
		e0 := m.mt.Total()
		dmaCycles, err := runScratchWindows(m, cfg, ax, pad, dma, &ph.Inv, live)
		if err != nil {
			return err
		}
		_, w := ph.Inv.Lines()
		for la := range w {
			live[la] = true
		}
		res.record(ph.Inv.Function, ph.Inv.AXC, m.eng.Now()-phaseStart, dmaCycles,
			m.mt.Total()-e0)
	}
	// Host L1 may cache output lines it wrote; flush so FinalVersions see
	// everything.
	return drainHost(m, cfg)
}

// runScratchWindows executes one invocation through a scratchpad in
// oracle-windowed style — DMA-in the window's read set, run the window's
// iterations, DMA-out the dirty lines — and returns the cycles serialized
// behind DMA. Shared by SCRATCH and by ADAPTIVE's scratchpad placement.
func runScratchWindows(m *machine, cfg Config, ax *accel.Accelerator,
	pad *scratchpad.Scratchpad, dma *scratchpad.DMA, inv *trace.Invocation,
	live map[mem.VAddr]bool) (uint64, error) {
	windows := scratchpad.Windows(inv, pad.CapacityLines(), live)
	var dmaCycles uint64
	for _, w := range windows {
		// DMA-in: push the window's read set into the scratchpad.
		t0 := m.eng.Now()
		remaining := len(w.ReadSet)
		for _, va := range w.ReadSet {
			va := va
			dma.ReadLine(m.translate(va), func(ver uint64) {
				pad.Fill(va, ver)
				remaining--
			})
		}
		if err := m.run(cfg.MaxCycles, func() bool { return remaining == 0 }); err != nil {
			return dmaCycles, fmt.Errorf("%s window DMA-in: %w", inv.Function, err)
		}
		dmaCycles += m.eng.Now() - t0

		// Execute the window.
		sub := trace.Invocation{
			Function:   inv.Function,
			AXC:        inv.AXC,
			Iterations: inv.Iterations[w.Start:w.End],
		}
		fired := false
		ax.Start(&sub, pad, func(uint64) { fired = true })
		if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
			return dmaCycles, fmt.Errorf("%s window exec: %w", inv.Function, err)
		}

		// DMA-out: drain dirty lines back to the LLC.
		t0 = m.eng.Now()
		dirty := pad.DirtyLines()
		pendingWB := len(dirty)
		for _, dl := range dirty {
			dma.WriteLine(m.translate(dl.Addr), dl.Ver, dl.Delta, func(uint64) { pendingWB-- })
		}
		if err := m.run(cfg.MaxCycles, func() bool { return pendingWB == 0 }); err != nil {
			return dmaCycles, fmt.Errorf("%s window DMA-out: %w", inv.Function, err)
		}
		dmaCycles += m.eng.Now() - t0
		pad.Clear()
	}
	return dmaCycles, nil
}

// ---------------------------------------------------------------- SHARED

// sharedPort adapts the shared L1X (a plain MESI client) to accel.MemPort.
// Every access pays for what the SHARED design puts on the critical path:
// translation (TLB energy, and walk latency on a miss) and the AXC<->L1X
// switch crossing — a request flit in and a word-granularity response out.
// Figure 6c counts exactly these messages, and their link energy is one of
// the paper's three reasons SHARED "performs poorly in general"
// (Section 5.2).
type sharedPort struct {
	m      *machine
	client *mesi.Client
	tlb    *vm.TLB
	eng    *sim.Engine
	cMsgs  *stats.Counter
}

// Switch-crossing sizes for one SHARED access: an 8-byte request and a
// 16-byte response (word + tag/status).
const (
	sharedReqBytes  = 8
	sharedRespBytes = 16
)

func (p *sharedPort) Access(kind mem.AccessKind, va mem.VAddr, done func(uint64)) bool {
	if p.m.mt != nil {
		p.m.mt.Add(energy.CatLinkTile,
			p.m.model.LinkL0XL1X*float64(sharedReqBytes+sharedRespBytes))
	}
	p.cMsgs.Inc()
	pa, walk := p.tlb.Translate(p.m.pid, va)
	if walk == 0 {
		return p.client.Access(kind, pa, done)
	}
	// TLB miss: pay the walk, then access. The slot is consumed either way.
	p.eng.Schedule(walk, func(uint64) {
		for !p.client.Access(kind, pa, done) {
			// Extremely rare: MSHR full right after a walk; spin via retry.
			p.eng.Schedule(2, func(uint64) { p.Access(kind, va, done) })
			return
		}
	})
	return true
}

func runShared(m *machine, b *workloads.Benchmark, cfg Config, res *Result) error {
	size := 64 << 10
	pj := m.model.L1XAccessSmall
	var lat uint64 = 4
	if cfg.Large {
		size = 256 << 10
		pj = m.model.L1XAccessLarge
		lat = 6
	}
	client := mesi.NewClient(m.fab, tileAgent, mesi.ClientConfig{
		Name:           "sharedl1x",
		Cache:          cache.Params{SizeBytes: size, Ways: 8, LineBytes: mem.LineBytes},
		MSHRs:          16,
		HitLatency:     lat,
		EnergyCategory: energy.CatL1X,
		AccessPJ:       pj,
	}, m.model, m.mt, m.st)
	if m.paranoid != nil {
		m.paranoid.clients = append(m.paranoid.clients, client)
	}
	if m.wd != nil {
		m.wd.AddDump("sharedl1x", client.DumpState)
	}
	tlb := vm.NewTLB("sharedtlb", 32, 40, m.pt, m.model, m.mt, m.st)
	port := &sharedPort{m: m, client: client, tlb: tlb, eng: m.eng,
		cMsgs: m.st.Counter("sharedswitch.msgs")}
	if cfg.Observer != nil {
		client.SetObserver(cfg.Observer)
	}
	axcs := accelFor(m, b)

	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if cfg.Observer != nil {
			cfg.Observer.Epoch(i, m.eng.Now())
		}
		if ph.Kind == trace.PhaseHost {
			if err := runHostPhase(m, &ph.Inv, cfg, res); err != nil {
				return err
			}
			continue
		}
		ax := axcs[ph.Inv.AXC]
		c0 := m.eng.Now()
		e0 := m.mt.Total()
		fired := false
		ax.Start(&ph.Inv, port, func(uint64) { fired = true })
		if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
			return fmt.Errorf("%s: %w", ph.Inv.Function, err)
		}
		res.record(ph.Inv.Function, ph.Inv.AXC, m.eng.Now()-c0, 0, m.mt.Total()-e0)
	}

	// Flush the tile cache so outputs land in the LLC, then the host L1.
	client.FlushAll()
	if err := m.run(cfg.MaxCycles, func() bool { return client.Outstanding() == 0 }); err != nil {
		return err
	}
	return drainHost(m, cfg)
}

// ---------------------------------------------------------------- FUSION

func runFusion(m *machine, b *workloads.Benchmark, cfg Config, res *Result) error {
	n := b.Program.NumAXCs()
	nTiles := cfg.Tiles
	if nTiles > n {
		nTiles = n
	}

	// AXC placement: round-robin across tiles. tileOf/localOf map a global
	// AXC id to its tile and its L0X slot within that tile.
	tileOf := func(axc int) int { return axc % nTiles }
	localOf := func(axc int) int { return axc / nTiles }
	perTile := make([]int, nTiles)
	for axc := 0; axc < n; axc++ {
		t := tileOf(axc)
		if localOf(axc)+1 > perTile[t] {
			perTile[t] = localOf(axc) + 1
		}
	}

	tiles := make([]*acc.Tile, nTiles)
	for t := 0; t < nTiles; t++ {
		var tcfg acc.TileConfig
		if cfg.Large {
			tcfg = acc.LargeTileConfig(perTile[t], m.model)
		} else {
			tcfg = acc.SmallTileConfig(perTile[t], m.model)
		}
		tcfg.Agent = tileAgent + mesi.AgentID(t)
		tcfg.PID = m.pid
		tcfg.EnableDx = cfg.Kind == FusionDx
		tcfg.L0X.WriteThrough = cfg.WriteThrough
		tcfg.Injector = m.inj
		if t > 0 {
			tcfg.StatPrefix = fmt.Sprintf("t%d.", t)
			m.addTileRoutes(tcfg.Agent, fmt.Sprintf("hostlink.tile%d", t))
		}
		tiles[t] = acc.NewTile(m.eng, m.fab, m.pt, tcfg, m.model, m.mt, m.st)
		if cfg.Kind == Hydra {
			tiles[t].L1X.EnableBypassFilter(hydraBypassThreshold, m.model.PolicyCheck)
		}
		if cfg.Tracer != nil {
			tiles[t].SetTracer(cfg.Tracer)
		}
		if cfg.Observer != nil {
			tiles[t].SetObserver(cfg.Observer)
		}
		if cfg.AccMutations != nil {
			tiles[t].SetMutations(cfg.AccMutations)
		}
	}
	if m.paranoid != nil {
		m.paranoid.tiles = tiles
	}
	if m.wd != nil {
		for t, tile := range tiles {
			tile := tile
			m.wd.AddDump(fmt.Sprintf("tile%d", t), tile.DumpState)
		}
	}
	axcs := accelFor(m, b)

	for i := range b.Program.Phases {
		ph := &b.Program.Phases[i]
		if cfg.Observer != nil {
			cfg.Observer.Epoch(i, m.eng.Now())
		}
		if ph.Kind == trace.PhaseHost {
			if err := runHostPhase(m, &ph.Inv, cfg, res); err != nil {
				return err
			}
			continue
		}
		ax := axcs[ph.Inv.AXC]
		tile := tiles[tileOf(ph.Inv.AXC)]
		l0 := tile.L0Xs[localOf(ph.Inv.AXC)]
		l0.SetLeaseTime(scaleLease(ph.Inv.LeaseTime, cfg.LeaseScale))

		// HYDRA: arm the task deadline. Fills requested after it passes
		// bypass L1X allocation (the deadline term of the filter).
		if cfg.Kind == Hydra && cfg.DeadlineCycles > 0 {
			tile.L1X.SetDeadline(m.eng.Now() + cfg.DeadlineCycles)
		}

		// FUSION-Dx: install the trace-derived forwarding table for this
		// producer phase (Section 3.2). Forwarding links exist only within
		// a tile; cross-tile consumers fall back to the L1X writeback.
		l0.ClearForwards()
		if cfg.Kind == FusionDx {
			if f, ok := b.Forwards[i]; ok && tileOf(f.Consumer) == tileOf(ph.Inv.AXC) {
				for _, la := range f.Lines {
					l0.MarkForward(la, acc.AXCID(localOf(f.Consumer)))
				}
			}
		}

		c0 := m.eng.Now()
		e0 := m.mt.Total()
		fired := false
		ax.Start(&ph.Inv, l0, func(uint64) { fired = true })
		if err := m.run(cfg.MaxCycles, func() bool { return fired }); err != nil {
			return fmt.Errorf("%s: %w", ph.Inv.Function, err)
		}
		// Invocation end: self-eviction drains dirty lines (and triggers
		// any forwards).
		l0.Drain()
		res.record(ph.Inv.Function, ph.Inv.AXC, m.eng.Now()-c0, 0, m.mt.Total()-e0)
	}

	// Drain the tiles completely: let leases lapse, flush the L1Xs.
	outstanding := func() bool {
		for _, tile := range tiles {
			if tile.Outstanding() > 0 {
				return false
			}
		}
		return true
	}
	for _, tile := range tiles {
		tile.Drain()
	}
	if err := m.run(cfg.MaxCycles, outstanding); err != nil {
		return err
	}
	// Wait out any open epochs so FlushAll may evict everything.
	maxLease := uint64(0)
	fns := make([]string, 0, len(b.LeaseTimes))
	for fn := range b.LeaseTimes {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		if lt := scaleLease(b.LeaseTimes[fn], cfg.LeaseScale); lt > maxLease {
			maxLease = lt
		}
	}
	idleUntil := m.eng.Now() + maxLease + 64
	for m.eng.Now() < idleUntil {
		// This wait is intentional (leases must lapse before FlushAll), so
		// keep the watchdog fed while nothing retires.
		m.eng.Progress()
		m.eng.Step()
	}
	for _, tile := range tiles {
		tile.L1X.FlushAll()
	}
	if err := m.run(cfg.MaxCycles, outstanding); err != nil {
		return err
	}
	return drainHost(m, cfg)
}

// invariantChecker is the paranoid-mode ticker: it sweeps the ACC protocol
// invariants of every tile and the host directory's MESI invariants on a
// fixed cadence and latches the first violation. Transient (in-flight)
// states are skipped by both checkers, so mid-transaction disagreement
// never false-positives.
//
// It deliberately does not implement sim.IdleTicker: a paranoid run keeps
// the engine stepping every cycle so the sweep cadence is never skipped.
type invariantChecker struct {
	tiles      []*acc.Tile
	dir        *mesi.Directory
	clients    []*mesi.Client
	interval   uint64
	violation  string
	violatedAt uint64
}

func (c *invariantChecker) Name() string { return "paranoid" }

func (c *invariantChecker) Tick(now uint64) {
	if c.violation != "" || now%c.interval != 0 {
		return
	}
	for _, t := range c.tiles {
		if bad := t.CheckInvariants(now); len(bad) > 0 {
			c.violation = bad[0]
			c.violatedAt = now
			return
		}
	}
	if c.dir != nil {
		if bad := mesi.CheckInvariants(c.dir, c.clients); len(bad) > 0 {
			c.violation = bad[0]
			c.violatedAt = now
		}
	}
}

// scaleLease applies the lease-sensitivity ablation factor.
func scaleLease(lt uint64, scale float64) uint64 {
	if scale == 1.0 || scale <= 0 {
		return lt
	}
	s := uint64(float64(lt) * scale)
	if s == 0 {
		s = 1
	}
	return s
}

// drainHost flushes the host L1 and waits for quiescence.
func drainHost(m *machine, cfg Config) error {
	m.hostL1.FlushAll()
	return m.run(cfg.MaxCycles, func() bool {
		return m.hostL1.Outstanding() == 0 && m.eng.Pending() == 0
	})
}

// ExpectedVersions computes the golden final version of every line under
// sequential program semantics: inputs start at version 1; every store
// increments its line.
func ExpectedVersions(b *workloads.Benchmark) map[mem.VAddr]uint64 {
	out := make(map[mem.VAddr]uint64)
	for _, va := range b.InputLines {
		out[va.LineAddr()] = 1
	}
	for i := range b.Program.Phases {
		inv := &b.Program.Phases[i].Inv
		for j := range inv.Iterations {
			for _, a := range inv.Iterations[j].Stores {
				out[a.LineAddr()]++
			}
		}
	}
	return out
}
