package systems

import (
	"testing"

	"fusion/internal/faults"
	"fusion/internal/workloads"
)

// TestSoakFaultInjection is the randomized robustness sweep: every system
// must absorb every randomized order-preserving fault plan with a perfect
// final-memory image and a quiet watchdog.
func TestSoakFaultInjection(t *testing.T) {
	sc := SoakConfig{Seeds: []uint64{1, 2, 3}, Paranoid: true}
	if testing.Short() {
		sc.Seeds = sc.Seeds[:1]
		sc.Benchmarks = []string{"adpcm"}
	}
	res := Soak(sc)
	for _, f := range res.Failures {
		t.Errorf("soak failure: %s", f)
	}
	if res.Runs == 0 {
		t.Fatal("soak executed no runs")
	}
	if res.FaultsInjected == 0 {
		t.Fatal("soak injected no faults — the sweep proved nothing")
	}
	t.Logf("soak: %d runs, %d faults injected", res.Runs, res.FaultsInjected)
}

// TestFaultedRunsDeterministic replays the same (benchmark, system, plan)
// twice and demands bit-identical cycle counts — the reproducibility
// contract that makes a failing soak cell debuggable from its plan alone.
func TestFaultedRunsDeterministic(t *testing.T) {
	plan := faults.RandomPlan(42)
	b := workloads.Get("adpcm")
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		cfg := DefaultConfig(kind)
		cfg.Faults = &plan
		cfg.WatchdogCycles = 2_000_000
		r1, err := Run(b, cfg)
		if err != nil {
			t.Fatalf("%v run 1: %v", kind, err)
		}
		r2, err := Run(b, cfg)
		if err != nil {
			t.Fatalf("%v run 2: %v", kind, err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("%v: same plan, different cycles: %d vs %d",
				kind, r1.Cycles, r2.Cycles)
		}
	}
}

// TestFaultsSlowButDontCorrupt checks both halves of the injector contract
// on one system: injected faults must cost cycles (the run gets slower, or
// at least not faster in a measurable way is not guaranteed — so only check
// not-faster is omitted) and must not change the final memory image.
func TestFaultsSlowButDontCorrupt(t *testing.T) {
	b := workloads.Get("fft")
	want := ExpectedVersions(b)

	base, err := Run(b, DefaultConfig(Fusion))
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Seed: 7,
		LinkJitterProb: 0.5, LinkJitterMax: 8,
		LinkStallProb: 0.3, LinkStallEvery: 512, LinkStallLen: 64,
		DRAMSpikeProb: 0.2, DRAMSpikeExtra: 300}
	cfg := DefaultConfig(Fusion)
	cfg.Faults = &plan
	cfg.WatchdogCycles = 2_000_000
	faulted, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Cycles <= base.Cycles {
		t.Errorf("heavy fault plan did not cost cycles: base %d, faulted %d",
			base.Cycles, faulted.Cycles)
	}
	if err := diffVersions(want, faulted.FinalVersions); err != nil {
		t.Errorf("faulted run corrupted memory: %v", err)
	}
	if n := countFaults(faulted.Stats); n == 0 {
		t.Error("no faults recorded in stats")
	}
}

// TestWatchdogQuietOnHealthyRuns arms a tight-ish watchdog on fault-free
// runs of all four systems; none may trip it.
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	b := workloads.Get("adpcm")
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		cfg := DefaultConfig(kind)
		cfg.WatchdogCycles = 200_000
		if _, err := Run(b, cfg); err != nil {
			t.Errorf("%v: healthy run tripped something: %v", kind, err)
		}
	}
}
