package systems

// A/B validation of the engine's quiescence fast-forward: a full system
// run with idle-skip enabled must produce a byte-identical report to the
// same run forced to step every cycle. Cycle counts, stats, energy, and
// the final memory image all participate via renderResult.

import (
	"errors"
	"testing"

	"fusion/internal/sim"
	"fusion/internal/workloads"
)

func TestIdleSkipInvariant(t *testing.T) {
	const bench = "adpcm"
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			skipped, err := Run(workloads.Get(bench), DefaultConfig(kind))
			if err != nil {
				t.Fatalf("skip run: %v", err)
			}
			cfg := DefaultConfig(kind)
			cfg.NoIdleSkip = true
			stepped, err := Run(workloads.Get(bench), cfg)
			if err != nil {
				t.Fatalf("stepped run: %v", err)
			}
			// The configs differ only in the skip knob, which is not part
			// of the simulated machine; blank it before comparing.
			skipped.Config.NoIdleSkip = false
			stepped.Config.NoIdleSkip = false
			a, b := renderResult(skipped), renderResult(stepped)
			if a != b {
				t.Fatalf("idle-skip changed the %v report:\nskip:\n%s\nstep:\n%s",
					kind, a, b)
			}
		})
	}
}

// TestIdleSkipWatchdogTrip wedges a FUSION run with a tiny watchdog window
// and asserts the watchdog still fires (the fast-forward is capped at the
// trip deadline rather than jumping over it).
func TestIdleSkipWatchdogTrip(t *testing.T) {
	cfg := DefaultConfig(Fusion)
	cfg.WatchdogCycles = 1 // trips during the first legitimate quiet stretch
	_, err := Run(workloads.Get("adpcm"), cfg)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) || pe.Component != "watchdog" {
		t.Fatalf("expected a watchdog trip with a 1-cycle window, got %v", err)
	}
}
