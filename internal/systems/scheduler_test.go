package systems

// A/B validation of the engine's time-wheel scheduler: a full system run on
// the default wheel must produce a byte-identical report to the same run on
// the reference binary heap. Cycle counts, stats, energy, and the final
// memory image all participate via renderResult.

import (
	"strings"
	"testing"

	"fusion/internal/sim"
	"fusion/internal/workloads"
)

func TestSchedulerInvariant(t *testing.T) {
	const bench = "adpcm"
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(kind)
			cfg.Scheduler = sim.SchedulerWheel
			wheel, err := Run(workloads.Get(bench), cfg)
			if err != nil {
				t.Fatalf("wheel run: %v", err)
			}
			cfg = DefaultConfig(kind)
			cfg.Scheduler = sim.SchedulerHeap
			heap, err := Run(workloads.Get(bench), cfg)
			if err != nil {
				t.Fatalf("heap run: %v", err)
			}
			// The configs differ only in the scheduler knob, which is not
			// part of the simulated machine; blank it before comparing.
			wheel.Config.Scheduler = ""
			heap.Config.Scheduler = ""
			a, b := renderResult(wheel), renderResult(heap)
			if a != b {
				t.Fatalf("scheduler choice changed the %v report:\nwheel:\n%s\nheap:\n%s",
					kind, a, b)
			}
		})
	}
}

func TestSpecSchedulerValidation(t *testing.T) {
	ok := Spec{Bench: "adpcm", System: "fusion", Scheduler: "Heap "}
	if err := ok.Validate(); err != nil {
		t.Fatalf("heap spec rejected: %v", err)
	}
	if n := ok.Normalized().Scheduler; n != sim.SchedulerHeap {
		t.Fatalf("Normalized scheduler = %q, want %q", n, sim.SchedulerHeap)
	}
	bad := Spec{Bench: "adpcm", System: "fusion", Scheduler: "calendar"}
	err := bad.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("bad scheduler error = %v", err)
	}
	// The default stays implicit so pre-knob spec keys (and their cached
	// result hashes) are unchanged.
	def := Spec{Bench: "adpcm", System: "fusion"}
	if strings.Contains(def.Key(), "scheduler") {
		t.Fatalf("default spec key mentions scheduler: %s", def.Key())
	}
}
