package systems

// The ADAPTIVE system's placement machinery: a per-task profile computed
// from reuse/sharing counters over a bounded decision window, and a small
// Policy interface mapping profiles to placements so a heuristic table and
// a learned variant are interchangeable (Cohmeleon's design, PAPERS.md).
//
// Profiles are computed from the already-known dynamic trace before the
// task starts — the oracle style this repository uses for the SCRATCH DMA —
// so the decision adds no per-access work to the simulated hot path.

import (
	"fmt"

	"fusion/internal/mem"
	"fusion/internal/trace"
)

// Placement is where ADAPTIVE runs one accelerator task's data.
type Placement int

const (
	// PlaceL0X runs the task through the FUSION lease hierarchy
	// (private L0X over the shared L1X).
	PlaceL0X Placement = iota
	// PlaceScratch runs the task from a software-managed scratchpad with
	// oracle-windowed DMA, like the SCRATCH baseline.
	PlaceScratch
	// PlaceUncached runs every access uncached at the LLC: no on-tile
	// allocation, one coherent round trip per line touch.
	PlaceUncached
)

func (p Placement) String() string {
	switch p {
	case PlaceL0X:
		return "l0x"
	case PlaceScratch:
		return "scratch"
	case PlaceUncached:
		return "uncached"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// DefaultDecisionWindow is how many leading iterations the profiler folds
// into the reuse/sharing counters when Config.DecisionWindow is zero.
const DefaultDecisionWindow = 64

// TaskProfile summarizes one task (accelerator phase) for a Policy: the
// reuse and sharing counters of the decision window plus the whole-task
// footprint the scratchpad-fit check needs.
type TaskProfile struct {
	Function   string
	AXC        int
	Iterations int

	// Window counters (first DecisionWindow iterations).
	Accesses int
	Loads    int
	Stores   int
	// ReuseMilli is the window's accesses-per-distinct-line ratio x1000:
	// 1000 means every line is touched exactly once (pure streaming).
	ReuseMilli int64
	// SharingMilli is the fraction (x1000) of the window's distinct lines
	// last touched by a different agent (another AXC or the host).
	SharingMilli int64

	// FootprintLines is the whole task's distinct-line footprint — the
	// scratchpad-fit check must be sound, not sampled.
	FootprintLines int
	// ScratchCapacity is the scratchpad size available to this task, in
	// lines.
	ScratchCapacity int
}

// hostToucher marks a line last touched by the host in the sharing map.
const hostToucher = -1

// profileTask computes a task's profile. lastToucher maps each line to the
// agent (AXC id, or hostToucher) that last wrote or read it in an earlier
// phase; lines never touched before count as private.
func profileTask(inv *trace.Invocation, window, scratchCapacity int,
	lastToucher map[mem.VAddr]int) TaskProfile {
	if window <= 0 {
		window = DefaultDecisionWindow
	}
	p := TaskProfile{
		Function:        inv.Function,
		AXC:             inv.AXC,
		Iterations:      len(inv.Iterations),
		ScratchCapacity: scratchCapacity,
	}
	seen := make(map[mem.VAddr]bool)
	shared := 0
	touch := func(a mem.VAddr, inWindow bool) {
		la := a.LineAddr()
		if !seen[la] {
			seen[la] = true
			if inWindow {
				if t, ok := lastToucher[la]; ok && t != inv.AXC {
					shared++
				}
			}
		}
	}
	windowLines := 0
	for i := range inv.Iterations {
		it := &inv.Iterations[i]
		inWindow := i < window
		for _, a := range it.Loads {
			touch(a, inWindow)
		}
		for _, a := range it.Stores {
			touch(a, inWindow)
		}
		if inWindow {
			p.Loads += len(it.Loads)
			p.Stores += len(it.Stores)
			windowLines = len(seen)
		}
	}
	p.Accesses = p.Loads + p.Stores
	p.FootprintLines = len(seen)
	if windowLines > 0 {
		p.ReuseMilli = int64(p.Accesses) * 1000 / int64(windowLines)
		p.SharingMilli = int64(shared) * 1000 / int64(windowLines)
	}
	return p
}

// Policy maps task profiles to placements. Implementations must be
// deterministic: the same profile sequence must yield the same placement
// sequence (the simulator's byte-identical replay depends on it).
type Policy interface {
	// Name identifies the policy ("heuristic", "learned").
	Name() string
	// Place decides where the task described by p runs.
	Place(p TaskProfile) Placement
	// Observe feeds back the task's measured cost after it ran — the
	// learned variant's training signal. cycles is the task's end-to-end
	// cycle count.
	Observe(p TaskProfile, chosen Placement, cycles uint64)
}

// PolicyMutations arm deliberate, test-only policy bugs for the litmus
// mutation-kill validator (see internal/litmus). Must be nil in real runs.
type PolicyMutations struct {
	// StickyPlacement pins every task to the first placement the policy
	// ever chose, suppressing migration. The placement-migration litmus
	// case's counter floors kill it.
	StickyPlacement bool
}

// newPolicy resolves a Config.Policy name. "" means heuristic.
func newPolicy(name string) (Policy, error) {
	switch name {
	case "", "heuristic":
		return &heuristicPolicy{}, nil
	case "learned":
		return newLearnedPolicy(), nil
	}
	return nil, fmt.Errorf("unknown adaptive policy %q (valid: heuristic, learned)", name)
}

// heuristicPolicy is the fixed decision table:
//
//  1. a streaming window (reuse < ~1.25 accesses/line) caches nothing —
//     run uncached at the LLC;
//  2. a mostly-shared window (>= half the lines produced elsewhere) wants
//     coherent caching — run through the L0X lease hierarchy;
//  3. a private task whose whole footprint fits the scratchpad runs from
//     the scratchpad (oracle DMA, no coherence traffic);
//  4. everything else runs through the L0X.
type heuristicPolicy struct{}

const (
	streamReuseMilli = 1250
	sharedFloorMilli = 500
)

func (heuristicPolicy) Name() string { return "heuristic" }

func (heuristicPolicy) Place(p TaskProfile) Placement {
	if p.ReuseMilli < streamReuseMilli {
		return PlaceUncached
	}
	if p.SharingMilli >= sharedFloorMilli {
		return PlaceL0X
	}
	if p.SharingMilli == 0 && p.FootprintLines <= p.ScratchCapacity {
		return PlaceScratch
	}
	return PlaceL0X
}

func (heuristicPolicy) Observe(TaskProfile, Placement, uint64) {}

// learnedPolicy explores placements per function round-robin — each
// eligible placement once — then exploits the one with the lowest observed
// cycles-per-access. Exploration order and tie-breaking are fixed, so the
// policy is deterministic.
type learnedPolicy struct {
	state map[string]*learnedState
}

type learnedState struct {
	tried [3]bool
	cost  [3]float64 // cycles per access, valid where tried
}

func newLearnedPolicy() *learnedPolicy {
	return &learnedPolicy{state: make(map[string]*learnedState)}
}

func (*learnedPolicy) Name() string { return "learned" }

// eligible reports whether a placement can run this task at all.
func eligible(p TaskProfile, c Placement) bool {
	return c != PlaceScratch || p.FootprintLines <= p.ScratchCapacity
}

func (l *learnedPolicy) Place(p TaskProfile) Placement {
	s := l.state[p.Function]
	if s == nil {
		s = &learnedState{}
		l.state[p.Function] = s
	}
	// Explore: first eligible untried placement, in enum order.
	for c := PlaceL0X; c <= PlaceUncached; c++ {
		if !s.tried[c] && eligible(p, c) {
			return c
		}
	}
	// Exploit: argmin observed cost, ties to the lower enum value.
	best, bestCost := PlaceL0X, -1.0
	for c := PlaceL0X; c <= PlaceUncached; c++ {
		if s.tried[c] && eligible(p, c) && (bestCost < 0 || s.cost[c] < bestCost) {
			best, bestCost = c, s.cost[c]
		}
	}
	return best
}

func (l *learnedPolicy) Observe(p TaskProfile, chosen Placement, cycles uint64) {
	s := l.state[p.Function]
	if s == nil {
		s = &learnedState{}
		l.state[p.Function] = s
	}
	per := float64(cycles)
	if n := p.Loads + p.Stores; n > 0 {
		per = float64(cycles) / float64(n)
	}
	s.tried[chosen] = true
	s.cost[chosen] = per
}
