package systems

// Parallel sweep execution. Each systems.Run is an independent,
// single-threaded simulation with no shared mutable state (the engine,
// stats, meters, and RNGs are all per-run), so a sweep parallelizes
// perfectly across runs. RunAll fans a fixed item list out over a bounded
// worker pool and assembles results in item order, which makes every
// downstream report byte-identical regardless of worker count or
// completion order.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"fusion/internal/sim"
	"fusion/internal/workloads"
)

// SweepItem is one independent simulation of a sweep.
type SweepItem struct {
	// Key names the item in errors (typically "bench/system/knobs...").
	Key    string
	Bench  *workloads.Benchmark
	Config Config
}

// SweepError attaches the originating sweep key to a failed run, so a
// *sim.ProtocolError surfacing from an 80-cell sweep still names the
// (benchmark, config) cell that raised it. Use errors.As to reach the
// underlying protocol error.
type SweepError struct {
	Key string
	Err error
}

func (e *SweepError) Error() string { return e.Key + ": " + e.Err.Error() }
func (e *SweepError) Unwrap() error { return e.Err }

// Workers resolves a worker-count knob: n > 0 is taken as-is, anything
// else means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunAll executes every item on a pool of at most `workers` goroutines
// (<=0: GOMAXPROCS) and returns the results in item order. See RunAllCtx
// for the failure and cancellation semantics.
func RunAll(items []SweepItem, workers int) ([]*Result, error) {
	return RunAllCtx(context.Background(), items, workers)
}

// RunAllCtx executes every item on a bounded worker pool under a context.
// Benchmarks are never mutated by Run, so items may share *Benchmark
// values. The sweep stops promptly on the first failure: the failing cell
// cancels a sweep-local context, in-flight runs observe the cancel and
// abort (within cancelPollCycles simulated cycles), and unstarted cells
// are skipped. Canceling ctx from outside stops the sweep the same way.
//
// The returned error is the sweep's root cause: the first failing item in
// ITEM order whose error is not a cancellation knock-on, wrapped in a
// *SweepError carrying the item's Key (if every recorded error is a
// cancellation — the caller canceled ctx — the first of those is
// returned). Results of items that completed before the stop are still
// returned; aborted and skipped cells are nil.
func RunAllCtx(ctx context.Context, items []SweepItem, workers int) ([]*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*Result, len(items))
	errs := make([]error, len(items))
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = &SweepError{Key: items[i].Key, Err: err}
					continue
				}
				res, err := RunCtx(ctx, items[i].Bench, items[i].Config)
				if err != nil {
					errs[i] = &SweepError{Key: items[i].Key, Err: err}
					cancel()
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !sim.IsCancellation(err) {
			return results, err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	return results, firstCancel
}
