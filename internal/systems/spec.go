package systems

// Spec is the serializable, self-describing run configuration: everything
// that determines a simulation's result, and nothing that does not. It
// replaces ad-hoc flag plumbing as the canonical way to name a run — the
// experiment memo cache, the fusiond result cache, and the CLIs all key on
// it. Because the simulator is deterministic, a Spec's canonical hash
// permanently identifies its result: compute once, serve forever.
//
// Knobs that never change measured results (tracers, observers, paranoia
// sweeps, test-only mutations) are deliberately not part of a Spec; knobs
// that change whether a run completes (cycle budget, watchdog window, fault
// plan) are.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"fusion/internal/faults"
	"fusion/internal/sim"
	"fusion/internal/workloads"
)

// Spec names one (benchmark, system, knobs) simulation. The zero-valued
// knobs mean "the paper's baseline" (see Config.normalize); Normalized
// makes the defaults explicit so equivalent specs collapse to one key.
type Spec struct {
	Bench  string `json:"bench"`
	System string `json:"system"`

	Large          bool         `json:"large,omitempty"`
	WriteThrough   bool         `json:"write_through,omitempty"`
	MaxCycles      uint64       `json:"max_cycles,omitempty"`
	Tiles          int          `json:"tiles,omitempty"`
	LeaseScale     float64      `json:"lease_scale,omitempty"`
	DMAOutstanding int          `json:"dma_outstanding,omitempty"`
	DMAGap         uint64       `json:"dma_gap,omitempty"`
	WatchdogCycles uint64       `json:"watchdog_cycles,omitempty"`
	NoIdleSkip     bool         `json:"no_idle_skip,omitempty"`
	Scheduler      string       `json:"scheduler,omitempty"`
	Policy         string       `json:"policy,omitempty"`
	DecisionWindow int          `json:"decision_window,omitempty"`
	DeadlineCycles uint64       `json:"deadline_cycles,omitempty"`
	Faults         *faults.Plan `json:"faults,omitempty"`
}

// ParseKind resolves a system name ("scratch", "shared", "fusion",
// "fusion-dx", "adaptive", "hydra"; case-insensitive, "fusiondx"/"dx"
// accepted) to its Kind.
func ParseKind(name string) (Kind, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "scratch":
		return Scratch, true
	case "shared":
		return Shared, true
	case "fusion":
		return Fusion, true
	case "fusion-dx", "fusiondx", "dx":
		return FusionDx, true
	case "adaptive":
		return Adaptive, true
	case "hydra":
		return Hydra, true
	}
	return 0, false
}

// SpecOf captures the serializable portion of a Config as a normalized
// Spec. Non-serializable knobs (Tracer, Observer, Paranoid, mutations) are
// dropped: they never change measured results.
func SpecOf(bench string, cfg Config) Spec {
	cfg = cfg.normalize()
	s := Spec{
		Bench:          bench,
		System:         strings.ToLower(cfg.Kind.String()),
		Large:          cfg.Large,
		WriteThrough:   cfg.WriteThrough,
		MaxCycles:      cfg.MaxCycles,
		Tiles:          cfg.Tiles,
		LeaseScale:     cfg.LeaseScale,
		DMAOutstanding: cfg.DMAOutstanding,
		DMAGap:         cfg.DMAGap,
		WatchdogCycles: cfg.WatchdogCycles,
		NoIdleSkip:     cfg.NoIdleSkip,
		Scheduler:      cfg.Scheduler,
		Policy:         cfg.Policy,
		DecisionWindow: cfg.DecisionWindow,
		DeadlineCycles: cfg.DeadlineCycles,
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		plan := *cfg.Faults
		s.Faults = &plan
	}
	return s
}

// Normalized fills every defaulted knob with its explicit baseline value
// and canonicalizes the system name, so any two specs describing the same
// run serialize identically. A disabled fault plan normalizes to nil.
func (s Spec) Normalized() Spec {
	out := s
	out.Bench = strings.ToLower(strings.TrimSpace(s.Bench))
	if kind, ok := ParseKind(s.System); ok {
		out.System = strings.ToLower(kind.String())
	} else {
		out.System = strings.ToLower(strings.TrimSpace(s.System))
	}
	if out.MaxCycles == 0 {
		out.MaxCycles = DefaultConfig(Fusion).MaxCycles
	}
	if out.Tiles <= 0 {
		out.Tiles = 1
	}
	if out.LeaseScale == 0 {
		out.LeaseScale = 1.0
	}
	if out.DMAOutstanding <= 0 {
		out.DMAOutstanding = 1
	}
	if out.DMAGap == 0 {
		out.DMAGap = dmaControllerGap
	}
	// The scheduler knob does not change results, so the default stays
	// implicit ("" rather than "wheel") and pre-knob spec hashes remain
	// valid cache keys.
	out.Scheduler = strings.ToLower(strings.TrimSpace(out.Scheduler))
	// The adaptive/hydra knobs likewise stay implicit when defaulted
	// ("" rather than "heuristic", 0 rather than DefaultDecisionWindow):
	// their defaults are applied at the use site, so pre-knob spec hashes
	// of the other systems remain valid cache keys.
	out.Policy = strings.ToLower(strings.TrimSpace(out.Policy))
	if out.Faults != nil {
		if !out.Faults.Enabled() {
			out.Faults = nil
		} else {
			plan := *out.Faults
			out.Faults = &plan
		}
	}
	return out
}

// Validate reports whether the spec names a known benchmark, system,
// scheduler, and policy.
func (s Spec) Validate() error {
	if _, ok := ParseKind(s.System); !ok {
		return fmt.Errorf("spec: unknown system %q (valid: %s)",
			s.System, strings.Join(KindNames(), ", "))
	}
	switch strings.ToLower(strings.TrimSpace(s.Scheduler)) {
	case "", sim.SchedulerHeap, sim.SchedulerWheel:
	default:
		return fmt.Errorf("spec: unknown scheduler %q (valid: %s, %s)",
			s.Scheduler, sim.SchedulerHeap, sim.SchedulerWheel)
	}
	switch strings.ToLower(strings.TrimSpace(s.Policy)) {
	case "", "heuristic", "learned":
	default:
		return fmt.Errorf("spec: unknown adaptive policy %q (valid: heuristic, learned)", s.Policy)
	}
	bench := strings.ToLower(strings.TrimSpace(s.Bench))
	for _, n := range workloads.Names() {
		if n == bench {
			return nil
		}
	}
	return fmt.Errorf("spec: unknown benchmark %q (valid: %s)",
		s.Bench, strings.Join(workloads.Names(), ", "))
}

// Config converts the spec to a runnable Config. It fails on an unknown
// system; benchmark existence is checked by Validate (or by the caller's
// workload lookup).
func (s Spec) Config() (Config, error) {
	kind, ok := ParseKind(s.System)
	if !ok {
		return Config{}, fmt.Errorf("spec: unknown system %q", s.System)
	}
	n := s.Normalized()
	cfg := Config{
		Kind:           kind,
		Large:          n.Large,
		WriteThrough:   n.WriteThrough,
		MaxCycles:      n.MaxCycles,
		Tiles:          n.Tiles,
		LeaseScale:     n.LeaseScale,
		DMAOutstanding: n.DMAOutstanding,
		DMAGap:         n.DMAGap,
		WatchdogCycles: n.WatchdogCycles,
		NoIdleSkip:     n.NoIdleSkip,
		Scheduler:      n.Scheduler,
		Policy:         n.Policy,
		DecisionWindow: n.DecisionWindow,
		DeadlineCycles: n.DeadlineCycles,
	}
	if n.Faults != nil {
		plan := *n.Faults
		cfg.Faults = &plan
	}
	return cfg, nil
}

// Key is the canonical serialized form of the spec — the compact JSON of
// its normalized value, with fields in declaration order. Equal keys mean
// equal runs; the experiment memo and the fusiond result cache both key on
// it.
func (s Spec) Key() string {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// A Spec contains only marshalable fields; this cannot happen.
		return fmt.Sprintf("unmarshalable-spec/%s/%s", s.Bench, s.System)
	}
	return string(b)
}

// Hash is the content address of the spec's result: the hex SHA-256 of Key.
// Determinism makes the mapping permanent, which is what lets fusiond cache
// results on disk indefinitely.
func (s Spec) Hash() string {
	sum := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(sum[:])
}

// Label is the short human-readable cell name ("bench/system") used in
// error reports and sweep keys.
func (s Spec) Label() string {
	n := s.Normalized()
	return n.Bench + "/" + n.System
}
