package systems

// Cancellation and budget tests: a canceled context aborts a run promptly
// with a structured, cause-carrying error; a sweep stops on its first
// failure instead of burning the remaining cells; an exhausted cycle
// budget reports itself as a diagnosable timeout rather than a bare
// string.

import (
	"context"
	"errors"
	"testing"
	"time"

	"fusion/internal/sim"
	"fusion/internal/workloads"
)

func TestRunCtxCancelAbortsPromptly(t *testing.T) {
	b := workloads.Get("fft")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunCtx(ctx, b, DefaultConfig(Fusion))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			// The run legitimately finished before the cancel landed; the
			// cancellation path is still covered by the pre-canceled case
			// below, but on this machine the race went the fast way.
			t.Skip("run completed before cancellation landed")
		}
		assertCancelError(t, err, sim.ComponentCanceled, context.Canceled)
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return within 30s")
	}
}

func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, workloads.Get("adpcm"), DefaultConfig(Fusion))
	if err == nil {
		t.Fatal("pre-canceled context did not abort the run")
	}
	assertCancelError(t, err, sim.ComponentCanceled, context.Canceled)
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	cfg := DefaultConfig(Fusion)
	cfg.WatchdogCycles = 1_000_000 // arm the watchdog so the abort carries its dump
	_, err := RunCtx(ctx, workloads.Get("fft"), cfg)
	if err == nil {
		t.Skip("run completed inside a 5ms deadline")
	}
	assertCancelError(t, err, sim.ComponentDeadline, context.DeadlineExceeded)
	var pe *sim.ProtocolError
	errors.As(err, &pe)
	if pe.State == "" {
		t.Error("deadline abort with an armed watchdog carried no diagnostic dump")
	}
}

func assertCancelError(t *testing.T, err error, component string, cause error) {
	t.Helper()
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("abort error %v is not a *sim.ProtocolError", err)
	}
	if pe.Component != component {
		t.Fatalf("abort component = %q, want %q", pe.Component, component)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("abort error %v does not unwrap to %v", err, cause)
	}
	if !sim.IsCancellation(err) {
		t.Fatalf("IsCancellation(%v) = false", err)
	}
}

// TestBudgetExhaustionIsStructured: a run that cannot finish inside
// MaxCycles reports a ComponentBudget protocol error carrying the
// watchdog's diagnostic dump when one is armed.
func TestBudgetExhaustionIsStructured(t *testing.T) {
	cfg := DefaultConfig(Fusion)
	cfg.MaxCycles = 100 // no benchmark phase completes this fast
	cfg.WatchdogCycles = 50
	_, err := Run(workloads.Get("adpcm"), cfg)
	if err == nil {
		t.Fatal("a 100-cycle budget completed a benchmark phase")
	}
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("budget exhaustion error %v is not structured", err)
	}
	if pe.Component != sim.ComponentBudget {
		t.Fatalf("component = %q, want %q", pe.Component, sim.ComponentBudget)
	}
	if pe.State == "" {
		t.Error("budget error with an armed watchdog carried no diagnostic dump")
	}
	if sim.IsCancellation(err) {
		t.Error("budget exhaustion misclassified as a cancellation")
	}
}

// TestRunAllCtxStopsOnFirstError: one poisoned cell must cancel the whole
// sweep — outstanding workers observe the cancel and the unstarted tail is
// skipped — and the returned error must be the poisoned cell (the root
// cause), never one of the cancellation knock-ons.
func TestRunAllCtxStopsOnFirstError(t *testing.T) {
	fft := workloads.Get("fft")
	adpcm := workloads.Get("adpcm")
	bad := DefaultConfig(Fusion)
	bad.MaxCycles = 100 // fails fast with a budget error
	items := []SweepItem{
		{Key: "slow-0", Bench: fft, Config: DefaultConfig(Fusion)},
		{Key: "poisoned", Bench: adpcm, Config: bad},
	}
	// A long tail that must be skipped once the poisoned cell fails.
	for i := 0; i < 30; i++ {
		items = append(items, SweepItem{Key: "tail", Bench: fft, Config: DefaultConfig(Fusion)})
	}
	start := time.Now()
	results, err := RunAllCtx(context.Background(), items, 2)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sweep with a poisoned cell returned no error")
	}
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("sweep error %v carries no key", err)
	}
	if se.Key != "poisoned" {
		t.Fatalf("sweep error names %q, want the root-cause cell \"poisoned\"", se.Key)
	}
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) || pe.Component != sim.ComponentBudget {
		t.Fatalf("root cause %v is not the budget failure", err)
	}
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed > 3 {
		t.Errorf("sweep kept executing after the failure: %d cells completed", completed)
	}
	// 32 fft-class cells sequentially would take tens of seconds; a prompt
	// stop finishes in a small fraction of that.
	if elapsed > 30*time.Second {
		t.Errorf("sweep took %v to stop after the first failure", elapsed)
	}
}

// TestRunAllCtxExternalCancel: canceling the caller's context stops the
// sweep and surfaces a cancellation error (there is no root cause to
// prefer).
func TestRunAllCtxExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fft := workloads.Get("fft")
	items := []SweepItem{
		{Key: "a", Bench: fft, Config: DefaultConfig(Fusion)},
		{Key: "b", Bench: fft, Config: DefaultConfig(Shared)},
	}
	results, err := RunAllCtx(ctx, items, 2)
	if err == nil {
		t.Fatal("pre-canceled sweep returned no error")
	}
	if !sim.IsCancellation(err) {
		t.Fatalf("external cancel surfaced as %v, not a cancellation", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("cell %d ran under a pre-canceled context", i)
		}
	}
}
