package systems

// ADAPTIVE placement-policy tests: the heuristic decision table, the
// learned policy's explore/exploit discipline, name resolution, and the
// learned variant run end-to-end against the sequential golden image.

import (
	"testing"

	"fusion/internal/workloads"
)

func TestPlacementString(t *testing.T) {
	want := map[Placement]string{
		PlaceL0X:      "l0x",
		PlaceScratch:  "scratch",
		PlaceUncached: "uncached",
		Placement(9):  "Placement(9)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"", "heuristic"} {
		p, err := newPolicy(name)
		if err != nil || p.Name() != "heuristic" {
			t.Fatalf("newPolicy(%q) = %v, %v", name, p, err)
		}
	}
	p, err := newPolicy("learned")
	if err != nil || p.Name() != "learned" {
		t.Fatalf("newPolicy(learned) = %v, %v", p, err)
	}
	if _, err := newPolicy("bogus"); err == nil {
		t.Fatal("newPolicy(bogus) did not error")
	}
}

func TestHeuristicPolicyRules(t *testing.T) {
	var h heuristicPolicy
	cases := []struct {
		name string
		prof TaskProfile
		want Placement
	}{
		{"streaming goes uncached",
			TaskProfile{ReuseMilli: 1000, SharingMilli: 1000}, PlaceUncached},
		{"shared reuse goes L0X",
			TaskProfile{ReuseMilli: 2000, SharingMilli: 600}, PlaceL0X},
		{"private fit goes scratchpad",
			TaskProfile{ReuseMilli: 2000, FootprintLines: 8, ScratchCapacity: 64},
			PlaceScratch},
		{"private overflow goes L0X",
			TaskProfile{ReuseMilli: 2000, FootprintLines: 100, ScratchCapacity: 64},
			PlaceL0X},
		{"lightly shared goes L0X, not scratchpad",
			TaskProfile{ReuseMilli: 2000, SharingMilli: 100,
				FootprintLines: 8, ScratchCapacity: 64}, PlaceL0X},
	}
	for _, c := range cases {
		if got := h.Place(c.prof); got != c.want {
			t.Errorf("%s: Place = %v, want %v", c.name, got, c.want)
		}
	}
	h.Observe(TaskProfile{}, PlaceL0X, 1) // no-op, must not panic
}

func TestLearnedPolicyExploreExploit(t *testing.T) {
	l := newLearnedPolicy()
	fits := TaskProfile{Function: "f", Loads: 10,
		FootprintLines: 8, ScratchCapacity: 64}

	// Exploration: each eligible placement once, in enum order.
	for _, want := range []Placement{PlaceL0X, PlaceScratch, PlaceUncached} {
		got := l.Place(fits)
		if got != want {
			t.Fatalf("exploration chose %v, want %v", got, want)
		}
		cost := uint64(100)
		if got == PlaceScratch {
			cost = 10
		}
		l.Observe(fits, got, cost)
	}
	// Exploitation: argmin observed cycles-per-access.
	if got := l.Place(fits); got != PlaceScratch {
		t.Fatalf("exploitation chose %v, want PlaceScratch", got)
	}

	// A footprint that does not fit skips the scratchpad entirely.
	big := TaskProfile{Function: "g", Loads: 10,
		FootprintLines: 1000, ScratchCapacity: 64}
	if got := l.Place(big); got != PlaceL0X {
		t.Fatalf("big exploration chose %v, want PlaceL0X", got)
	}
	l.Observe(big, PlaceL0X, 50)
	if got := l.Place(big); got != PlaceUncached {
		t.Fatalf("big exploration chose %v, want PlaceUncached", got)
	}
	l.Observe(big, PlaceUncached, 5)
	if got := l.Place(big); got != PlaceUncached {
		t.Fatalf("big exploitation chose %v, want PlaceUncached", got)
	}

	// Observe with an empty window records raw cycles without dividing.
	l.Observe(TaskProfile{Function: "z"}, PlaceL0X, 7)
}

func TestAdaptiveLearnedPolicyGolden(t *testing.T) {
	b := workloads.Random(4, workloads.DefaultRandomParams())
	want := ExpectedVersions(b)
	cfg := DefaultConfig(Adaptive)
	cfg.Policy = "learned"
	res, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for va, wv := range want {
		if res.FinalVersions[va] != wv {
			t.Fatalf("line %#x v%d, golden v%d", uint64(va), res.FinalVersions[va], wv)
		}
	}
}

func TestAdaptiveUnknownPolicyErrors(t *testing.T) {
	b := workloads.Random(1, workloads.DefaultRandomParams())
	cfg := DefaultConfig(Adaptive)
	cfg.Policy = "bogus"
	if _, err := Run(b, cfg); err == nil {
		t.Fatal("unknown policy did not error")
	}
}
