package systems

import (
	"encoding/json"
	"strings"
	"testing"

	"fusion/internal/faults"
)

// TestSpecNormalizationCollapsesEquivalents: a zero-knob spec and one with
// the baseline defaults spelled out must produce identical keys and hashes
// — otherwise the content-addressed result cache would store the same run
// twice under two names.
func TestSpecNormalizationCollapsesEquivalents(t *testing.T) {
	zero := Spec{Bench: "adpcm", System: "fusion"}
	explicit := SpecOf("adpcm", DefaultConfig(Fusion))
	if zero.Key() != explicit.Key() {
		t.Fatalf("keys differ:\n%s\n%s", zero.Key(), explicit.Key())
	}
	if zero.Hash() != explicit.Hash() {
		t.Fatalf("hashes differ: %s vs %s", zero.Hash(), explicit.Hash())
	}
	// Case and spelling of the system name normalize too.
	for _, alias := range []string{"FUSION", "Fusion", " fusion "} {
		s := Spec{Bench: "adpcm", System: alias}
		if s.Key() != zero.Key() {
			t.Errorf("system alias %q produced a different key", alias)
		}
	}
	if k := (Spec{Bench: "adpcm", System: "dx"}).Normalized().System; k != "fusion-dx" {
		t.Fatalf("dx alias normalized to %q, want fusion-dx", k)
	}
}

// TestSpecKeySeparatesDistinctRuns: every serializable knob must reach the
// key — a knob that doesn't would alias two different runs in the cache.
func TestSpecKeySeparatesDistinctRuns(t *testing.T) {
	base := Spec{Bench: "adpcm", System: "fusion"}
	variants := []Spec{
		{Bench: "fft", System: "fusion"},
		{Bench: "adpcm", System: "shared"},
		{Bench: "adpcm", System: "fusion", Large: true},
		{Bench: "adpcm", System: "fusion", WriteThrough: true},
		{Bench: "adpcm", System: "fusion", MaxCycles: 12345},
		{Bench: "adpcm", System: "fusion", Tiles: 2},
		{Bench: "adpcm", System: "fusion", LeaseScale: 0.5},
		{Bench: "adpcm", System: "fusion", DMAOutstanding: 4},
		{Bench: "adpcm", System: "fusion", DMAGap: 4},
		{Bench: "adpcm", System: "fusion", WatchdogCycles: 99},
		{Bench: "adpcm", System: "fusion", NoIdleSkip: true},
		{Bench: "adpcm", System: "fusion",
			Faults: func() *faults.Plan { p := faults.RandomPlan(7); return &p }()},
	}
	seen := map[string]string{base.Key(): "base"}
	for i, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d aliases %s under key %s", i, prev, k)
		}
		seen[k] = v.Label()
	}
}

// TestSpecConfigRoundTrip: Spec -> Config -> SpecOf must be a fixed point,
// including a fault plan, and a disabled fault plan must normalize away.
func TestSpecConfigRoundTrip(t *testing.T) {
	plan := faults.RandomPlan(3)
	s := Spec{Bench: "fft", System: "fusion-dx", Large: true, Tiles: 2,
		LeaseScale: 2.0, WatchdogCycles: 1_000_000, Faults: &plan}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != FusionDx || !cfg.Large || cfg.Tiles != 2 {
		t.Fatalf("config did not carry the knobs: %+v", cfg)
	}
	back := SpecOf("fft", cfg)
	if back.Key() != s.Key() {
		t.Fatalf("round trip changed the key:\n%s\n%s", s.Key(), back.Key())
	}
	// The round-tripped fault plan must be a copy, not an alias.
	if back.Faults == s.Faults || cfg.Faults == s.Faults {
		t.Fatal("spec/config round trip aliased the fault plan pointer")
	}

	disabled := Spec{Bench: "fft", System: "fusion", Faults: &faults.Plan{Seed: 9}}
	if disabled.Normalized().Faults != nil {
		t.Fatal("disabled fault plan survived normalization")
	}
}

// TestSpecValidate rejects unknown systems and benchmarks with errors that
// name the valid sets.
func TestSpecValidate(t *testing.T) {
	if err := (Spec{Bench: "adpcm", System: "fusion"}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	err := (Spec{Bench: "adpcm", System: "quantum"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Fatalf("unknown system not rejected usefully: %v", err)
	}
	err = (Spec{Bench: "nope", System: "fusion"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown benchmark not rejected usefully: %v", err)
	}
	if _, err := (Spec{Bench: "adpcm", System: "quantum"}).Config(); err == nil {
		t.Fatal("Config() accepted an unknown system")
	}
}

// TestSpecJSONRoundTrip: a spec survives serialization — the property the
// HTTP API and the on-disk cache rest on.
func TestSpecJSONRoundTrip(t *testing.T) {
	plan := faults.RandomPlan(11)
	s := (Spec{Bench: "disp", System: "scratch", DMAOutstanding: 2, DMAGap: 4,
		Faults: &plan}).Normalized()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key() != s.Key() {
		t.Fatalf("JSON round trip changed the key:\n%s\n%s", s.Key(), back.Key())
	}
}
