package systems

// Soak testing: randomized fault plans crossed with every system and a set
// of benchmarks, asserting the property the fault injector is built around —
// faults are performance-only. A correct hierarchy under any order-preserving
// plan finishes with exactly the golden final-memory image, the watchdog
// never fires on a healthy run, and the same plan replayed yields the same
// cycle count bit-for-bit.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fusion/internal/faults"
	"fusion/internal/mem"
	"fusion/internal/stats"
	"fusion/internal/workloads"
)

// SoakConfig parameterizes one soak sweep.
type SoakConfig struct {
	// Benchmarks to run; empty defaults to a small representative pair.
	Benchmarks []string
	// Systems to run; empty defaults to every registered Kind (Kinds()).
	Systems []Kind
	// Seeds generates one randomized fault plan per entry.
	Seeds []uint64
	// WatchdogCycles arms the forward-progress watchdog on every run
	// (zero: 2_000_000 — far beyond any legitimate quiet stretch).
	WatchdogCycles uint64
	// Paranoid additionally sweeps protocol invariants during each run.
	Paranoid bool
	// Workers bounds the sweep's worker pool (<=0: GOMAXPROCS). Each cell
	// is an independent simulation with its own engine and its own
	// plan-seeded randomness, and results are assembled in cell order, so
	// the report is identical for any worker count.
	Workers int
}

// SoakFailure describes one failed soak cell.
type SoakFailure struct {
	Benchmark string
	System    string
	Plan      faults.Plan
	Err       error
}

func (f SoakFailure) String() string {
	return fmt.Sprintf("%s/%s seed=%d: %v", f.Benchmark, f.System, f.Plan.Seed, f.Err)
}

// SoakResult summarizes a sweep.
type SoakResult struct {
	Runs     int
	Failures []SoakFailure
	// FaultsInjected totals injected faults across all runs — a sweep that
	// injected nothing proves nothing.
	FaultsInjected uint64
}

// Soak runs the sweep: benchmarks x systems x randomized fault plans. Every
// cell must finish, match the golden final-memory image, and keep the
// watchdog quiet. Each failing cell is reported with the plan that provoked
// it, which (with the benchmark and system) reproduces the failure exactly.
func Soak(sc SoakConfig) SoakResult {
	if len(sc.Benchmarks) == 0 {
		sc.Benchmarks = []string{"adpcm", "fft"}
	}
	if len(sc.Systems) == 0 {
		sc.Systems = Kinds()
	}
	if sc.WatchdogCycles == 0 {
		sc.WatchdogCycles = 2_000_000
	}
	// Enumerate the full cell matrix up front, then fan out over a bounded
	// worker pool; per-cell outcomes land in index slots, so the report is
	// assembled in cell order no matter which worker finished first.
	type cell struct {
		bench string
		kind  Kind
		plan  faults.Plan
	}
	benches := make(map[string]*workloads.Benchmark, len(sc.Benchmarks))
	wants := make(map[string]map[mem.VAddr]uint64, len(sc.Benchmarks))
	for _, name := range sc.Benchmarks {
		if _, ok := benches[name]; !ok {
			b := workloads.Get(name)
			benches[name] = b
			wants[name] = ExpectedVersions(b)
		}
	}
	var cells []cell
	for _, seed := range sc.Seeds {
		plan := faults.RandomPlan(seed)
		for _, name := range sc.Benchmarks {
			for _, kind := range sc.Systems {
				cells = append(cells, cell{bench: name, kind: kind, plan: plan})
			}
		}
	}

	cellErrs := make([]error, len(cells))
	cellFaults := make([]uint64, len(cells))
	workers := Workers(sc.Workers)
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := &cells[i]
				cfg := DefaultConfig(c.kind)
				cfg.Faults = &c.plan
				cfg.WatchdogCycles = sc.WatchdogCycles
				cfg.Paranoid = sc.Paranoid
				res, err := Run(benches[c.bench], cfg)
				if err != nil {
					cellErrs[i] = err
					continue
				}
				cellFaults[i] = countFaults(res.Stats)
				cellErrs[i] = diffVersions(wants[c.bench], res.FinalVersions)
			}
		}()
	}
	wg.Wait()

	out := SoakResult{Runs: len(cells)}
	for i, c := range cells {
		out.FaultsInjected += cellFaults[i]
		if cellErrs[i] != nil {
			out.Failures = append(out.Failures, SoakFailure{
				Benchmark: c.bench, System: c.kind.String(), Plan: c.plan, Err: cellErrs[i]})
		}
	}
	return out
}

// countFaults totals the per-site fault counters a run accumulated.
func countFaults(st *stats.Set) uint64 {
	var n int64
	st.ForEach(func(name string, v int64) {
		if strings.HasSuffix(name, ".faults") || name == "dram.fault_spikes" {
			n += v
		}
	})
	return uint64(n)
}

// diffVersions compares a run's final memory image against the golden one.
func diffVersions(want, got map[mem.VAddr]uint64) error {
	// Sorted address order makes the reported first mismatch deterministic.
	addrs := make([]mem.VAddr, 0, len(want))
	for va := range want {
		addrs = append(addrs, va)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	bad := 0
	var first string
	for _, va := range addrs {
		wv := want[va]
		if gv := got[va]; gv != wv {
			if bad == 0 {
				first = fmt.Sprintf("line %#x: final v%d, golden v%d", uint64(va), gv, wv)
			}
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d final-memory mismatches (%s)", bad, first)
	}
	return nil
}
