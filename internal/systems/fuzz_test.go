package systems

// Differential fuzzing: random programs must leave memory in exactly the
// sequential-semantics state on every system. Any protocol bug that loses,
// duplicates, or misorders a write anywhere in the stack fails here.

import (
	"fmt"
	"testing"

	"fusion/internal/workloads"
)

func TestFuzzAllSystemsGolden(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			b := workloads.Random(seed, workloads.DefaultRandomParams())
			want := ExpectedVersions(b)
			for _, kind := range Kinds() {
				res, err := Run(b, DefaultConfig(kind))
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				bad := 0
				for va, wv := range want {
					if res.FinalVersions[va] != wv {
						bad++
						if bad <= 3 {
							t.Errorf("%v: line %#x v%d, golden v%d",
								kind, uint64(va), res.FinalVersions[va], wv)
						}
					}
				}
				if bad > 3 {
					t.Errorf("%v: ... %d more mismatches", kind, bad-3)
				}
			}
		})
	}
}

func TestFuzzMultiTileGolden(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		b := workloads.Random(seed, workloads.DefaultRandomParams())
		want := ExpectedVersions(b)
		cfg := DefaultConfig(FusionDx)
		cfg.Tiles = 2
		res, err := Run(b, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for va, wv := range want {
			if res.FinalVersions[va] != wv {
				t.Fatalf("seed %d: line %#x v%d, golden v%d", seed, uint64(va),
					res.FinalVersions[va], wv)
			}
		}
	}
}

func TestFuzzWriteThroughGolden(t *testing.T) {
	for _, seed := range []int64{17, 19} {
		b := workloads.Random(seed, workloads.DefaultRandomParams())
		want := ExpectedVersions(b)
		cfg := DefaultConfig(Fusion)
		cfg.WriteThrough = true
		res, err := Run(b, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for va, wv := range want {
			if res.FinalVersions[va] != wv {
				t.Fatalf("seed %d: line %#x v%d, golden v%d", seed, uint64(va),
					res.FinalVersions[va], wv)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := workloads.Random(42, workloads.DefaultRandomParams())
	b := workloads.Random(42, workloads.DefaultRandomParams())
	wa := ExpectedVersions(a)
	wb := ExpectedVersions(b)
	if len(wa) != len(wb) {
		t.Fatal("random generation not deterministic")
	}
	for k, v := range wa {
		if wb[k] != v {
			t.Fatalf("line %#x differs across generations", uint64(k))
		}
	}
}

func TestFuzzParanoidMode(t *testing.T) {
	// Invariants hold at every 64-cycle checkpoint across a whole random
	// program on both FUSION variants.
	for _, seed := range []int64{3, 13} {
		b := workloads.Random(seed, workloads.DefaultRandomParams())
		for _, kind := range []Kind{Fusion, FusionDx} {
			cfg := DefaultConfig(kind)
			cfg.Paranoid = true
			if _, err := Run(b, cfg); err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
		}
	}
}
