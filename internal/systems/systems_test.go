package systems

import (
	"testing"

	"fusion/internal/workloads"
)

func runBench(t *testing.T, name string, kind Kind) *Result {
	t.Helper()
	b := workloads.Get(name)
	res, err := Run(b, DefaultConfig(kind))
	if err != nil {
		t.Fatalf("%s on %v: %v", name, kind, err)
	}
	return res
}

// verifyGolden checks that every line's final version matches sequential
// program semantics — no write lost anywhere in the hierarchy.
func verifyGolden(t *testing.T, name string, res *Result) {
	t.Helper()
	b := workloads.Get(name)
	want := ExpectedVersions(b)
	mismatches := 0
	for va, wv := range want {
		if gv := res.FinalVersions[va]; gv != wv {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("%s/%s line %#x: final v%d, golden v%d",
					name, res.System, uint64(va), gv, wv)
			}
		}
	}
	if mismatches > 5 {
		t.Errorf("... and %d more mismatches", mismatches-5)
	}
}

func TestAdpcmAllSystemsGolden(t *testing.T) {
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		res := runBench(t, "adpcm", kind)
		if res.Cycles == 0 {
			t.Fatalf("%v: zero cycles", kind)
		}
		verifyGolden(t, "adpcm", res)
	}
}

func TestFFTAllSystemsGolden(t *testing.T) {
	for _, kind := range []Kind{Scratch, Shared, Fusion, FusionDx} {
		res := runBench(t, "fft", kind)
		verifyGolden(t, "fft", res)
	}
}

func TestScratchHasDMATraffic(t *testing.T) {
	res := runBench(t, "fft", Scratch)
	if res.DMATransfers == 0 || res.DMACycles == 0 {
		t.Fatal("SCRATCH run shows no DMA activity")
	}
	// FFT's DMA-to-working-set ratio is the pathology of Section 5.2
	// (paper: 165x). It must at least be large.
	ratio := float64(res.DMABytes) / float64(res.WorkingSetBytes)
	if ratio < 10 {
		t.Fatalf("FFT DMA/WSet ratio = %.1f, want ≫ 1", ratio)
	}
}

func TestFusionEliminatesDMA(t *testing.T) {
	res := runBench(t, "fft", Fusion)
	if res.DMATransfers != 0 {
		t.Fatal("FUSION run used the DMA engine")
	}
	if res.Stats.Get("l0x.0.hits") == 0 {
		t.Fatal("no L0X hits")
	}
}

func TestDxForwardsBlocks(t *testing.T) {
	res := runBench(t, "fft", FusionDx)
	if res.ForwardedBlocks == 0 {
		t.Fatal("FUSION-Dx forwarded nothing on FFT")
	}
	verifyGolden(t, "fft", res)
}

func TestMultiTileSplitIsCorrectAndWorse(t *testing.T) {
	// The paper collocates all of an application's accelerators on one
	// tile and forbids inter-tile communication for good reason: splitting
	// a pipeline across two tiles forces every producer-consumer handoff
	// through host MESI. The split must still be *correct* — and must
	// cost more energy on a sharing-heavy benchmark.
	b := workloads.Get("fft")
	one, err := Run(b, DefaultConfig(Fusion))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Fusion)
	cfg.Tiles = 2
	two, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyGolden(t, "fft", two)
	if two.OnChipPJ() <= one.OnChipPJ() {
		t.Errorf("splitting FFT across 2 tiles cost %.0f pJ <= collocated %.0f pJ; sharing should ping-pong through the host",
			two.OnChipPJ(), one.OnChipPJ())
	}
	if two.Stats.Get("t1.l1x.accesses") == 0 {
		t.Error("second tile saw no traffic — placement broken")
	}
}

func TestLeaseScaleAblation(t *testing.T) {
	// Shorter leases force more self-invalidations and re-leases.
	b := workloads.Get("adpcm")
	base, err := Run(b, DefaultConfig(Fusion))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Fusion)
	cfg.LeaseScale = 0.1
	short, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyGolden(t, "adpcm", short)
	baseGrants := base.Stats.Get("l1x.grants_read") + base.Stats.Get("l1x.grants_write")
	shortGrants := short.Stats.Get("l1x.grants_read") + short.Stats.Get("l1x.grants_write")
	if shortGrants <= baseGrants {
		t.Errorf("grants with 0.1x leases = %d, not above baseline %d", shortGrants, baseGrants)
	}
}

func TestDMADepthAblation(t *testing.T) {
	// A deeper DMA engine overlaps transfers and closes the gap on the
	// cache systems — the paper's "aggressive oracle" sensitivity.
	b := workloads.Get("fft")
	serial, err := Run(b, DefaultConfig(Scratch))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Scratch)
	cfg.DMAOutstanding = 8
	cfg.DMAGap = 1
	deep, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyGolden(t, "fft", deep)
	if deep.Cycles >= serial.Cycles {
		t.Errorf("8-deep DMA (%d cycles) not faster than serial (%d)", deep.Cycles, serial.Cycles)
	}
}
