package vm

import (
	"testing"
	"testing/quick"

	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/stats"
)

func TestPageTableStableTranslation(t *testing.T) {
	pt := NewPageTable()
	a := pt.Translate(1, 0x1234)
	b := pt.Translate(1, 0x1234)
	if a != b {
		t.Fatalf("translation not stable: %v vs %v", a, b)
	}
}

func TestPageTableOffsetPreserved(t *testing.T) {
	pt := NewPageTable()
	pa := pt.Translate(1, 0x5678)
	if uint64(pa)&(mem.PageBytes-1) != 0x678 {
		t.Fatalf("page offset not preserved: %v", pa)
	}
}

func TestPageTableDistinctPIDsDistinctFrames(t *testing.T) {
	pt := NewPageTable()
	a := pt.Translate(1, 0x1000)
	b := pt.Translate(2, 0x1000)
	if a.PageNumber() == b.PageNumber() {
		t.Fatal("two PIDs share a frame for the same VA")
	}
	if pt.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", pt.Pages())
	}
}

func TestPageTableReverse(t *testing.T) {
	pt := NewPageTable()
	pa := pt.Translate(3, 0xabcd)
	pid, va, ok := pt.Reverse(pa)
	if !ok || pid != 3 || va != 0xabcd {
		t.Fatalf("Reverse = (%d,%v,%v)", pid, va, ok)
	}
	if _, _, ok := pt.Reverse(mem.PAddr(0xffff0000)); ok {
		t.Fatal("Reverse of unmapped frame succeeded")
	}
}

func TestFrameZeroReserved(t *testing.T) {
	pt := NewPageTable()
	pa := pt.Translate(0, 0)
	if pa.PageNumber() == 0 {
		t.Fatal("frame 0 handed out")
	}
}

func newTLB(entries int) (*TLB, *stats.Set, *energy.Meter) {
	st := stats.NewSet()
	mt := energy.NewMeter()
	pt := NewPageTable()
	return NewTLB("axtlb", entries, 50, pt, energy.Default(), mt, st), st, mt
}

func TestTLBHitAfterMiss(t *testing.T) {
	tlb, st, mt := newTLB(4)
	_, lat := tlb.Translate(1, 0x1000)
	if lat != 50 {
		t.Fatalf("first access latency = %d, want walk 50", lat)
	}
	pa, lat := tlb.Translate(1, 0x1010)
	if lat != 0 {
		t.Fatalf("same-page access latency = %d, want 0 (hit)", lat)
	}
	if uint64(pa)&(mem.PageBytes-1) != 0x10 {
		t.Fatalf("offset wrong: %v", pa)
	}
	if st.Get("axtlb.lookups") != 2 || st.Get("axtlb.hits") != 1 || st.Get("axtlb.misses") != 1 {
		t.Fatalf("stats: lookups=%d hits=%d misses=%d",
			st.Get("axtlb.lookups"), st.Get("axtlb.hits"), st.Get("axtlb.misses"))
	}
	if mt.Get(energy.CatVM) != 2*energy.Default().TLBLookup {
		t.Fatalf("vm energy = %v", mt.Get(energy.CatVM))
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb, _, _ := newTLB(2)
	tlb.Translate(1, 0x0000) // miss, fill
	tlb.Translate(1, 0x1000) // miss, fill
	tlb.Translate(1, 0x0000) // hit, refresh page 0
	tlb.Translate(1, 0x2000) // miss: evicts page 1 (LRU)
	if _, lat := tlb.Translate(1, 0x0000); lat != 0 {
		t.Fatal("page 0 should still be cached")
	}
	if _, lat := tlb.Translate(1, 0x1000); lat == 0 {
		t.Fatal("page 1 should have been evicted")
	}
}

func TestTLBPIDSeparation(t *testing.T) {
	tlb, _, _ := newTLB(8)
	a, _ := tlb.Translate(1, 0x3000)
	b, _ := tlb.Translate(2, 0x3000)
	if a == b {
		t.Fatal("PID ignored in TLB translation")
	}
}

func TestTLBConsistentWithPageTable(t *testing.T) {
	pt := NewPageTable()
	tlb := NewTLB("x", 2, 10, pt, energy.Default(), nil, nil)
	direct := pt.Translate(5, 0x7777)
	cached, _ := tlb.Translate(5, 0x7777)
	if direct != cached {
		t.Fatalf("TLB %v != page table %v", cached, direct)
	}
}

func TestRMAPInsertLookupRemove(t *testing.T) {
	st := stats.NewSet()
	mt := energy.NewMeter()
	r := NewRMAP("axrmap", energy.Default(), mt, st)
	ptr := Pointer{Set: 3, Way: 1, VAddr: 0x1040, PID: 1}
	r.Insert(0x9040, ptr)
	got, ok := r.Lookup(0x9040)
	if !ok || got != ptr {
		t.Fatalf("Lookup = (%+v,%v)", got, ok)
	}
	// Sub-line physical address matches the same line.
	if _, ok := r.Lookup(0x9077); !ok {
		t.Fatal("sub-line lookup missed")
	}
	if st.Get("axrmap.lookups") != 2 {
		t.Fatalf("lookups = %d", st.Get("axrmap.lookups"))
	}
	r.Remove(0x9040)
	if _, ok := r.Lookup(0x9040); ok {
		t.Fatal("lookup after Remove succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRMAPSynonymDetection(t *testing.T) {
	r := NewRMAP("axrmap", energy.Default(), nil, stats.NewSet())
	first := Pointer{Set: 0, Way: 0, VAddr: 0x1000, PID: 1}
	r.Insert(0x8000, first)
	// A different virtual address mapping the same physical line: synonym.
	prev, dup := r.Insert(0x8000, Pointer{Set: 1, Way: 2, VAddr: 0x5000, PID: 1})
	if !dup || prev != first {
		t.Fatalf("synonym not detected: prev=%+v dup=%v", prev, dup)
	}
	// Re-inserting the same virtual line is not a synonym.
	if _, dup := r.Insert(0x8000, Pointer{Set: 1, Way: 2, VAddr: 0x5000, PID: 1}); dup {
		t.Fatal("same-VA reinsert flagged as synonym")
	}
}

// Property: Translate then Reverse round-trips for arbitrary (pid, va).
func TestTranslateReverseRoundTrip(t *testing.T) {
	pt := NewPageTable()
	f := func(pid uint16, va uint64) bool {
		va &= 1<<40 - 1 // keep VPNs clear of the PID bits in the key
		pa := pt.Translate(mem.PID(pid), mem.VAddr(va))
		gotPID, gotVA, ok := pt.Reverse(pa)
		return ok && gotPID == mem.PID(pid) && gotVA == mem.VAddr(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct (pid, page) pairs never collide on a frame.
func TestNoFrameCollisionProperty(t *testing.T) {
	pt := NewPageTable()
	seen := map[uint64]uint64{}
	f := func(pid uint8, vpn uint16) bool {
		va := mem.VAddr(uint64(vpn) << mem.PageShift)
		pa := pt.Translate(mem.PID(pid), va)
		k := uint64(pid)<<48 | uint64(vpn)
		if prev, ok := seen[pa.PageNumber()]; ok {
			return prev == k
		}
		seen[pa.PageNumber()] = k
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
