// Package vm implements the Fusion address-translation machinery
// (Section 3.2, "Virtual Memory", and the synonym appendix).
//
// The accelerator tile operates entirely on PID-tagged virtual addresses;
// the host hierarchy on physical addresses. Translation happens in exactly
// two places:
//
//   - AX-TLB: on the shared L1X *miss* path, translating the virtual line
//     address so the request can index the host L2 and join MESI. Keeping
//     the TLB off the load/store critical path is one of the paper's energy
//     arguments (Lesson 8).
//   - AX-RMAP: a per-tile reverse map from physical line address to the L1X
//     line, consulted when the host directory forwards a MESI request into
//     the tile. The directory's sharer list filters, so only lines actually
//     cached in the tile generate lookups (Table 6 shows the counts stay
//     small).
package vm

import (
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/stats"
)

// PageTable is a demand-allocating forward map (PID, virtual page) ->
// physical frame, with the inverse kept for reverse translation.
type PageTable struct {
	nextFrame uint64
	forward   map[uint64]uint64 // key: pid<<48 | vpn
	reverse   map[uint64]uint64 // pfn -> key
}

// NewPageTable returns an empty page table. Frame 0 is reserved so that a
// zero PAddr can never alias a real translation.
func NewPageTable() *PageTable {
	return &PageTable{
		nextFrame: 1,
		forward:   make(map[uint64]uint64),
		reverse:   make(map[uint64]uint64),
	}
}

func key(pid mem.PID, vpn uint64) uint64 { return uint64(pid)<<48 | vpn }

// Translate maps (pid, va) to a physical address, allocating a frame on
// first touch (there is no swapping in the simulator).
func (pt *PageTable) Translate(pid mem.PID, va mem.VAddr) mem.PAddr {
	k := key(pid, va.PageNumber())
	pfn, ok := pt.forward[k]
	if !ok {
		pfn = pt.nextFrame
		pt.nextFrame++
		pt.forward[k] = pfn
		pt.reverse[pfn] = k
	}
	return mem.PAddr(pfn<<mem.PageShift | va.PageOffset())
}

// Reverse maps a physical address back to (pid, va). ok is false for frames
// never handed out.
func (pt *PageTable) Reverse(pa mem.PAddr) (mem.PID, mem.VAddr, bool) {
	k, ok := pt.reverse[pa.PageNumber()]
	if !ok {
		return 0, 0, false
	}
	pid := mem.PID(k >> 48)
	vpn := k & (1<<48 - 1)
	return pid, mem.VAddr(vpn<<mem.PageShift | pa.PageOffset()), true
}

// Pages returns the number of mapped pages.
func (pt *PageTable) Pages() int { return len(pt.forward) }

// tlbEntry is one fully-associative TLB entry.
type tlbEntry struct {
	valid bool
	pid   mem.PID
	vpn   uint64
	pfn   uint64
	lru   uint64
}

// TLB is the AX-TLB: fully associative, LRU, sitting on the L1X miss path.
type TLB struct {
	entries []tlbEntry
	stamp   uint64
	pt      *PageTable
	// WalkLatency is the extra cycles a TLB miss adds (page-table walk).
	WalkLatency uint64

	meter *energy.Meter
	model energy.Model
	name  string

	cLookups *stats.Counter
	cHits    *stats.Counter
	cMisses  *stats.Counter
}

// NewTLB builds a TLB with the given entry count over the page table.
func NewTLB(name string, entries int, walkLatency uint64, pt *PageTable,
	model energy.Model, meter *energy.Meter, st *stats.Set) *TLB {
	return &TLB{
		entries:     make([]tlbEntry, entries),
		pt:          pt,
		WalkLatency: walkLatency,
		meter:       meter,
		model:       model,
		name:        name,
		cLookups:    st.Counter(name + ".lookups"),
		cHits:       st.Counter(name + ".hits"),
		cMisses:     st.Counter(name + ".misses"),
	}
}

// Translate returns the physical address for (pid, va) and the cycles the
// translation cost (0 on a TLB hit, WalkLatency on a miss). Every call is
// one AX-TLB lookup for Table 6 accounting.
func (t *TLB) Translate(pid mem.PID, va mem.VAddr) (mem.PAddr, uint64) {
	t.cLookups.Inc()
	if t.meter != nil {
		t.meter.Add(energy.CatVM, t.model.TLBLookup)
	}
	vpn := va.PageNumber()
	t.stamp++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.pid == pid && e.vpn == vpn {
			e.lru = t.stamp
			t.cHits.Inc()
			return mem.PAddr(e.pfn<<mem.PageShift | va.PageOffset()), 0
		}
	}
	// Miss: walk, then fill the LRU entry.
	t.cMisses.Inc()
	pa := t.pt.Translate(pid, va)
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = e
			break
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	*victim = tlbEntry{valid: true, pid: pid, vpn: vpn, pfn: pa.PageNumber(), lru: t.stamp}
	return pa, t.WalkLatency
}

// Pointer locates a line inside the shared L1X (way and set), as carried in
// the paper's coherence messages so data responses can update the correct
// virtually-indexed entry.
type Pointer struct {
	Set, Way int
	VAddr    mem.VAddr
	PID      mem.PID
}

// RMAP is the AX-RMAP: physical line address -> L1X pointer.
type RMAP struct {
	m     map[mem.PAddr]Pointer
	meter *energy.Meter
	model energy.Model
	name  string

	cSynEvict *stats.Counter
	cLookups  *stats.Counter
}

// NewRMAP builds an empty reverse map.
func NewRMAP(name string, model energy.Model, meter *energy.Meter, st *stats.Set) *RMAP {
	return &RMAP{m: make(map[mem.PAddr]Pointer), meter: meter, model: model, name: name,
		cSynEvict: st.Counter(name + ".synonym_evictions"),
		cLookups:  st.Counter(name + ".lookups")}
}

// Insert records that physical line pa is cached at ptr. If another virtual
// address already maps pa (a synonym), the previous pointer is returned with
// dup=true and replaced: per the appendix, only one synonym may live in the
// tile, and the caller must evict the duplicate.
func (r *RMAP) Insert(pa mem.PAddr, ptr Pointer) (prev Pointer, dup bool) {
	pa = pa.LineAddr()
	if old, ok := r.m[pa]; ok && old.VAddr.LineAddr() != ptr.VAddr.LineAddr() {
		r.m[pa] = ptr
		r.cSynEvict.Inc()
		return old, true
	}
	r.m[pa] = ptr
	return Pointer{}, false
}

// Lookup finds the L1X pointer for physical line pa. Each call is one
// AX-RMAP lookup (Table 6).
func (r *RMAP) Lookup(pa mem.PAddr) (Pointer, bool) {
	r.cLookups.Inc()
	if r.meter != nil {
		r.meter.Add(energy.CatVM, r.model.RMAPLookup)
	}
	p, ok := r.m[pa.LineAddr()]
	return p, ok
}

// Lookupless is Lookup without statistics or energy accounting, for
// invariant checkers and tests that must not perturb measurements.
func (r *RMAP) Lookupless(pa mem.PAddr) (Pointer, bool) {
	p, ok := r.m[pa.LineAddr()]
	return p, ok
}

// Remove drops the mapping for pa (line eviction from the L1X).
func (r *RMAP) Remove(pa mem.PAddr) { delete(r.m, pa.LineAddr()) }

// Len returns the number of tracked lines.
func (r *RMAP) Len() int { return len(r.m) }
