package acc

import (
	"testing"

	"fusion/internal/sim"
)

func TestTileMsgPoolReuse(t *testing.T) {
	var p TileMsgPool
	m := p.Get()
	m.Type, m.Addr = MsgGetW, 0x80
	p.Put(m)
	if m.Type != tileMsgPoison {
		t.Fatalf("released message Type = %v, want poison", m.Type)
	}
	m2 := p.Get()
	if m2 != m {
		t.Fatal("pool did not reuse the released message")
	}
	if m2.Type != 0 || m2.Addr != 0 || m2.pooled {
		t.Fatalf("reused message not zeroed: %+v", m2)
	}
}

func TestTileMsgPoolDoubleReleasePanics(t *testing.T) {
	var p TileMsgPool
	m := p.Get()
	p.Put(m)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		perr, ok := r.(*sim.ProtocolError)
		if !ok {
			t.Fatalf("panic value %T, want *sim.ProtocolError", r)
		}
		if perr.Component != "acc.pool" {
			t.Fatalf("component = %q, want acc.pool", perr.Component)
		}
	}()
	p.Put(m)
}
