package acc

// Runtime invariant checking for the ACC protocol. CheckInvariants scans
// the tile's caches and reports violations of the properties the protocol
// is supposed to guarantee; systems can run it periodically ("paranoid
// mode") so any state corruption is caught at the cycle it happens rather
// than as a wrong result at the end.

import (
	"fmt"
	"sort"

	"fusion/internal/cache"
	"fusion/internal/mem"
)

// CheckInvariants returns a description of every protocol-invariant
// violation currently present in the tile (empty means clean):
//
//  1. Single writer: at most one L0X holds an unexpired write epoch on a
//     line.
//  2. Lease containment: every live L0X lease is covered by an L1X line
//     whose GTIME is no earlier than the lease's expiry — the L1X's
//     promise to the host protocol depends on it.
//  3. Dirty discipline: a dirty L0X line implies a write epoch was granted
//     (WTime set).
//  4. Reverse-map consistency: every valid L1X line is reachable through
//     the AX-RMAP under its physical address, and vice versa.
func (t *Tile) CheckInvariants(now uint64) []string {
	var bad []string

	// 1 + 3: scan the L0Xs.
	writers := make(map[uint64][]AXCID) // line -> open write epochs
	type leaseInfo struct {
		axc    AXCID
		expiry uint64
		pid    mem.PID
	}
	var live []leaseInfo
	linesOf := make(map[uint64]bool)
	for _, l0 := range t.L0Xs {
		l0 := l0
		l0.arr.ForEach(func(l *cache.Line) {
			if !l.Valid {
				return
			}
			if l.WTime > now {
				writers[l.Addr] = append(writers[l.Addr], l0.id)
			}
			if l.Dirty && l.WTime == 0 {
				bad = append(bad, fmt.Sprintf(
					"%s: dirty line %#x never held a write epoch", l0.name, l.Addr))
			}
			exp := l.LTime
			if l.WTime > exp {
				exp = l.WTime
			}
			if exp > now {
				live = append(live, leaseInfo{l0.id, exp, l.PID})
				linesOf[l.Addr] = true
				// 2: the L1X must cover this lease.
				x := t.L1X.arr.LookupPID(l.Addr, l.PID)
				if x == nil {
					bad = append(bad, fmt.Sprintf(
						"%s: live lease on %#x (until %d) with no L1X line",
						l0.name, l.Addr, exp))
				} else if x.GTime < exp {
					bad = append(bad, fmt.Sprintf(
						"%s: lease on %#x until %d exceeds L1X GTIME %d",
						l0.name, l.Addr, exp, x.GTime))
				}
			}
		})
	}
	// Sorted scan order keeps the violation report reproducible across runs.
	waddrs := make([]uint64, 0, len(writers))
	for addr := range writers {
		waddrs = append(waddrs, addr)
	}
	sort.Slice(waddrs, func(i, j int) bool { return waddrs[i] < waddrs[j] })
	for _, addr := range waddrs {
		if ws := writers[addr]; len(ws) > 1 {
			bad = append(bad, fmt.Sprintf(
				"line %#x has %d simultaneous write epochs (%v)", addr, len(ws), ws))
		}
	}

	// 4: L1X <-> RMAP bijection.
	valid := 0
	t.L1X.arr.ForEach(func(l *cache.Line) {
		if !l.Valid {
			return
		}
		valid++
		ptr, ok := t.RMAP.Lookupless(l.PAddr)
		if !ok {
			bad = append(bad, fmt.Sprintf(
				"l1x line v%#x (p%#x) missing from AX-RMAP", l.Addr, uint64(l.PAddr)))
			return
		}
		if uint64(ptr.VAddr.LineAddr()) != l.Addr || ptr.PID != l.PID {
			bad = append(bad, fmt.Sprintf(
				"AX-RMAP points p%#x at v%#x, but the L1X line is v%#x",
				uint64(l.PAddr), uint64(ptr.VAddr), l.Addr))
		}
	})
	if rm := t.RMAP.Len(); rm != valid {
		bad = append(bad, fmt.Sprintf(
			"AX-RMAP tracks %d lines but the L1X holds %d", rm, valid))
	}
	return bad
}
