//go:build !race

// Allocation-discipline tests, excluded under the race detector (the race
// runtime instruments allocations and makes AllocsPerRun counts
// meaningless).
package acc

import (
	"testing"

	"fusion/internal/mem"
)

// TestClearForwardsZeroAlloc pins the task-boundary cost of the Dx
// forwarding table: after the table has reached steady-state capacity, a
// full mark/clear cycle must not touch the allocator. ClearForwards used
// to reallocate the map each invocation, which showed up in allocation
// profiles at every task boundary.
func TestClearForwardsZeroAlloc(t *testing.T) {
	h := newHarness(t, 2, true)
	l0 := h.tile.L0Xs[0]
	mark := func() {
		for i := 0; i < 48; i++ {
			l0.MarkForward(mem.VAddr(0x8000+i*64), 1)
		}
	}
	// One warm-up cycle sizes the table; growth is amortized construction
	// cost, not task-boundary cost.
	mark()
	l0.ClearForwards()
	if avg := testing.AllocsPerRun(100, func() {
		mark()
		l0.ClearForwards()
	}); avg != 0 {
		t.Fatalf("MarkForward/ClearForwards cycle allocated %.1f per run, want 0", avg)
	}
}
