package acc

import (
	"fmt"
	"sort"
	"strings"

	"fusion/internal/cache"
	"fusion/internal/energy"
	"fusion/internal/flat"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/ptrace"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// L0XConfig sizes one private accelerator cache.
type L0XConfig struct {
	Cache      cache.Params // Table 2: 4 KB or 8 KB
	MSHRs      int
	HitLatency uint64
	// LeaseTime is the epoch length requested per miss — the per-function
	// LT column of Tables 1/3, set from the expected invocation latency.
	LeaseTime uint64
	// WriteThrough disables write caching: every store also pushes its line
	// to the L1X immediately (the Table 4 comparison).
	WriteThrough bool
	// AccessPJ is the per-access energy; the ACC timestamp-check overhead
	// must already be folded in by the caller.
	AccessPJ float64
	// StatPrefix distinguishes multiple tiles' counters ("" keeps the
	// canonical "l0x.N." names).
	StatPrefix string
}

// l0txn is one outstanding miss. Completed txns recycle through a free list
// (waiters capacity included).
type l0txn struct {
	addr    uint64
	write   bool
	waiters []l0waiter
}

type l0waiter struct {
	kind mem.AccessKind
	va   mem.VAddr // original (offset-carrying) address, for observations
	done func(now uint64)
}

// L0X HandleEvent opcodes.
const (
	opL0XSelfDowngrade = 0 // close the write epoch on line arg if still open
)

// L0X is a private, write-caching, lease-based accelerator cache. It talks
// only to its tile's shared L1X (and, under FUSION-Dx, directly to sibling
// L0Xs over the forwarding link).
type L0X struct {
	id   AXCID
	pid  mem.PID
	name string
	cfg  L0XConfig
	arr  *cache.Array
	mshr *cache.MSHR

	eng   *sim.Engine
	toL1X *interconnect.Link
	// fwdTo is indexed by the consumer AXCID (IDs are small and dense
	// within a tile); nil means no forwarding link to that sibling.
	fwdTo []*interconnect.Link
	// txns is keyed by MSHR slot: the miss record for the line in slot s
	// of the MSHR file. Slot resolution is the MSHR's bitmap walk, so the
	// per-access "is a miss outstanding" question never touches a map.
	txns     []*l0txn
	freeTxns []*l0txn

	// fwdTable maps line addresses to the consumer accelerator that should
	// receive the dirty line directly (FUSION-Dx, Section 3.2). It is
	// populated by trace post-processing before the producer runs and
	// cleared (without reallocating) at every task boundary.
	fwdTable *flat.Map[AXCID]

	pool TileMsgPool

	meter  *energy.Meter
	tracer ptrace.Tracer
	obsv   obs.Observer
	mut    *Mutations

	cAccesses     *stats.Counter
	cWriteThrough *stats.Counter
	cSelfInval    *stats.Counter
	cMSHRFull     *stats.Counter
	cMisses       *stats.Counter
	cHits         *stats.Counter
	cDeadGrants   *stats.Counter
	cSelfDown     *stats.Counter
	cFwdOut       *stats.Counter
	cWBs          *stats.Counter
	cDeadFwds     *stats.Counter
	cFwdIn        *stats.Counter
}

// SetTracer attaches a protocol tracer (nil disables tracing).
func (c *L0X) SetTracer(t ptrace.Tracer) { c.tracer = t }

// SetObserver attaches a litmus observer (nil disables observation; the
// hot path then pays only a nil check).
func (c *L0X) SetObserver(o obs.Observer) { c.obsv = o }

// SetMutations arms test-only protocol mutations (nil disables them).
func (c *L0X) SetMutations(m *Mutations) { c.mut = m }

// observe reports one agent-visible load or store to the attached observer.
func (c *L0X) observe(k obs.Kind, va mem.VAddr, ver, lease uint64) {
	c.obsv.Record(obs.Observation{Cycle: c.eng.Now(), Agent: c.name,
		Addr: uint64(va), Ver: ver, Lease: lease, Kind: k})
}

func (c *L0X) emit(k ptrace.Kind, addr uint64, detail string) {
	if c.tracer != nil {
		c.tracer.Emit(ptrace.Event{Cycle: c.eng.Now(), Source: c.name, Kind: k,
			Addr: addr, Detail: detail})
	}
}

// NewL0X builds a private cache for accelerator id.
func NewL0X(eng *sim.Engine, id AXCID, pid mem.PID, cfg L0XConfig,
	meter *energy.Meter, st *stats.Set) *L0X {
	name := fmt.Sprintf("%sl0x.%d", cfg.StatPrefix, id)
	return &L0X{
		id:            id,
		pid:           pid,
		name:          name,
		cfg:           cfg,
		arr:           cache.NewArray(cfg.Cache),
		mshr:          cache.NewMSHR(cfg.MSHRs),
		eng:           eng,
		txns:          make([]*l0txn, cfg.MSHRs),
		fwdTable:      flat.New[AXCID](64),
		meter:         meter,
		cAccesses:     st.Counter(name + ".accesses"),
		cWriteThrough: st.Counter(name + ".write_through"),
		cSelfInval:    st.Counter(name + ".self_invalidations"),
		cMSHRFull:     st.Counter(name + ".mshr_full"),
		cMisses:       st.Counter(name + ".misses"),
		cHits:         st.Counter(name + ".hits"),
		cDeadGrants:   st.Counter(name + ".dead_grants"),
		cSelfDown:     st.Counter(name + ".self_downgrades"),
		cFwdOut:       st.Counter(name + ".fwd_out"),
		cWBs:          st.Counter(name + ".writebacks"),
		cDeadFwds:     st.Counter(name + ".dead_forwards"),
		cFwdIn:        st.Counter(name + ".fwd_in"),
	}
}

// ConnectL1X attaches the uplink to the shared L1X.
func (c *L0X) ConnectL1X(l *interconnect.Link) { c.toL1X = l }

// ConnectPeer attaches the direct forwarding link to a sibling L0X (Dx).
func (c *L0X) ConnectPeer(id AXCID, l *interconnect.Link) {
	for int(id) >= len(c.fwdTo) {
		c.fwdTo = append(c.fwdTo, nil)
	}
	c.fwdTo[id] = l
}

// SetLeaseTime adjusts the lease requested per miss (functions differ, LT
// column of Table 3).
func (c *L0X) SetLeaseTime(lt uint64) { c.cfg.LeaseTime = lt }

// MarkForward registers that the line holding va should be pushed to
// consumer when this producer is done with it.
func (c *L0X) MarkForward(va mem.VAddr, consumer AXCID) {
	c.fwdTable.Put(uint64(va.LineAddr()), consumer)
}

// ClearForwards empties the forwarding table (between invocations). It
// zeroes the table's occupancy bitmap in place: task boundaries are
// frequent, and reallocating here used to show up in allocation profiles.
func (c *L0X) ClearForwards() { c.fwdTable.Clear() }

// ID returns the accelerator ID this cache serves.
func (c *L0X) ID() AXCID { return c.id }

func (c *L0X) access() {
	if c.meter != nil {
		c.meter.Add(energy.CatL0X, c.cfg.AccessPJ)
	}
	c.cAccesses.Inc()
}

// sendWB pushes a writeback (or epoch release) up to the L1X.
func (c *L0X) sendWB(a uint64, ver, lease uint64, through bool) {
	wb := c.pool.Get()
	wb.Type, wb.Addr, wb.PID, wb.Src = MsgWB, mem.VAddr(a), c.pid, c.id
	wb.Ver, wb.Lease, wb.Through = ver, lease, through
	c.toL1X.Send(wb)
}

// HandleEvent dispatches the L0X's closure-free events.
func (c *L0X) HandleEvent(now uint64, op uint8, arg uint64) {
	switch op {
	case opL0XSelfDowngrade:
		c.selfDowngrade(arg, now)
	}
}

// Access performs one accelerator load or store on a virtual address. done
// fires at retirement. Returns false when the MSHR is full (the accelerator
// stalls and retries, which is how its MLP bounds memory pressure).
func (c *L0X) Access(kind mem.AccessKind, va mem.VAddr, done func(now uint64)) bool {
	a := uint64(va.LineAddr())
	now := c.eng.Now()
	c.access()

	if l := c.arr.LookupPID(a, c.pid); l != nil {
		readable := l.LTime > now || l.WTime > now
		writable := l.WTime > now
		if c.mut != nil && c.mut.SkipSelfInvalidate && kind == mem.Load {
			readable = true // mutant: keep serving a lapsed lease
		}
		switch {
		case kind == mem.Load && readable:
			if c.obsv != nil {
				c.observe(obs.Load, va, l.Ver, maxU64(l.LTime, l.WTime))
			}
			c.hit(done)
			return true
		case kind == mem.Store && writable:
			if c.mut == nil || !c.mut.LostStore {
				l.Ver++
			}
			if c.obsv != nil {
				c.observe(obs.Store, va, l.Ver, l.WTime)
			}
			if c.cfg.WriteThrough {
				// Push the store straight through; the line stays clean.
				c.sendWB(a, l.Ver, l.WTime, true)
				c.cWriteThrough.Inc()
			} else {
				l.Dirty = true
			}
			c.hit(done)
			return true
		default:
			// Lease expired (self-invalidated) or insufficient: miss path.
			if l.LTime <= now && l.WTime <= now {
				c.cSelfInval.Inc()
				c.emit(ptrace.SelfInvalidate, a, "")
				c.dropLine(l) // expired; writeback if a dirty epoch lapsed
			}
		}
	}

	if slot := c.mshr.Slot(a); slot >= 0 {
		t := c.txns[slot]
		t.waiters = append(t.waiters, l0waiter{kind, va, done})
		return true
	}
	if c.mshr.Full() {
		c.cMSHRFull.Inc()
		return false
	}
	t := c.newTxn()
	t.addr, t.write = a, kind == mem.Store
	t.waiters = append(t.waiters, l0waiter{kind, va, done})
	c.txns[c.mshr.Allocate(a)] = t
	c.cMisses.Inc()
	mt := MsgGetL
	if t.write {
		mt = MsgGetW
	}
	c.emit(ptrace.L0XMiss, a, mt.String())
	req := c.pool.Get()
	req.Type, req.Addr, req.PID, req.Src = mt, mem.VAddr(a), c.pid, c.id
	req.Lease = c.cfg.LeaseTime // duration; the L1X anchors it at grant time
	c.toL1X.Send(req)
	return true
}

// newTxn returns a zeroed miss record, reusing a recycled one if possible.
func (c *L0X) newTxn() *l0txn {
	if n := len(c.freeTxns); n > 0 {
		t := c.freeTxns[n-1]
		c.freeTxns[n-1] = nil
		c.freeTxns = c.freeTxns[:n-1]
		w := t.waiters[:0]
		*t = l0txn{waiters: w}
		return t
	}
	return &l0txn{}
}

func (c *L0X) freeTxn(t *l0txn) {
	for i := range t.waiters {
		t.waiters[i] = l0waiter{}
	}
	c.freeTxns = append(c.freeTxns, t)
}

func (c *L0X) hit(done func(uint64)) {
	c.cHits.Inc()
	c.eng.Schedule(c.cfg.HitLatency, done)
}

// Handle receives a message from the L1X or a sibling L0X.
func (c *L0X) Handle(msg interconnect.Message) {
	m, ok := msg.(*TileMsg)
	if !ok {
		sim.Failf(c.name, c.eng.Now(), c.DumpState(), "foreign message %v", msg)
	}
	switch m.Type {
	case MsgLease:
		c.fill(m)
	case MsgFwdData:
		c.receiveForward(m)
	default:
		sim.Failf(c.name, c.eng.Now(), c.DumpState(), "unexpected %s", m)
	}
}

// fill installs a granted lease and replays waiters, releasing m at every
// terminal path (the all-ways-busy retry retains it). A grant with no
// transaction is possible under FUSION-Dx — a forward raced ahead of the
// L1X's (stalled) grant and already satisfied the miss — and just refreshes
// the lease.
func (c *L0X) fill(m *TileMsg) {
	a := uint64(m.Addr.LineAddr())
	slot := c.mshr.Slot(a)
	var t *l0txn
	if slot >= 0 {
		t = c.txns[slot]
	}
	if t == nil {
		if l := c.arr.LookupPID(a, c.pid); l != nil && m.Lease > l.LTime {
			l.LTime = m.Lease
		}
		c.pool.Put(m)
		return
	}
	if m.NoAlloc {
		// HYDRA bypass: the L1X declined to allocate and sent the data with
		// no lease at all. Serve the waiting loads one-shot — the payload is
		// the globally ordered version, observed strictly — and install
		// nothing. Store waiters (merged behind the read miss) re-request a
		// real write epoch, which forces allocation.
		c.txns[slot] = nil
		c.mshr.Free(a)
		c.eng.Progress() // miss resolved: heartbeat
		for _, w := range t.waiters {
			if w.kind == mem.Store {
				w := w
				c.eng.Schedule(1, func(uint64) { c.retryAccess(w.kind, w.va, w.done) })
				continue
			}
			if c.obsv != nil {
				c.observe(obs.Load, w.va, m.Ver, 0)
			}
			c.eng.Schedule(c.cfg.HitLatency, w.done)
		}
		c.freeTxn(t)
		c.pool.Put(m)
		return
	}
	if m.Lease <= c.eng.Now() {
		// The grant died in transit (delivery delay outlived the lease).
		// Installing it would extend the lease past the L1X's GTIME promise,
		// so release it and re-request instead. A write grant holds the L1X
		// epoch lock and must be returned or stalled requesters would wait
		// forever; the release is a plain (clean) writeback.
		if m.Write {
			c.sendWB(a, m.Ver, m.Lease, false)
		}
		// No Progress beat here: this is a retry loop, and a persistent
		// dead-grant spin must still trip the watchdog.
		c.txns[slot] = nil
		c.mshr.Free(a)
		c.cDeadGrants.Inc()
		for _, w := range t.waiters {
			w := w
			c.eng.Schedule(1, func(uint64) { c.retryAccess(w.kind, w.va, w.done) })
		}
		c.freeTxn(t)
		c.pool.Put(m)
		return
	}
	l := c.installLine(a, m.Lease, m.Write, m.Ver)
	if l == nil {
		// All ways busy; retry shortly without dropping the grant.
		c.eng.Schedule(1, func(uint64) { c.fill(m) })
		return
	}
	c.txns[slot] = nil
	c.mshr.Free(a)
	c.eng.Progress() // miss resolved: heartbeat

	for _, w := range t.waiters {
		if w.kind == mem.Store {
			if m.Write {
				if c.mut == nil || !c.mut.LostStore {
					l.Ver++
				}
				if c.obsv != nil {
					c.observe(obs.Store, w.va, l.Ver, l.WTime)
				}
				if c.cfg.WriteThrough {
					c.sendWB(a, l.Ver, l.WTime, true)
					c.cWriteThrough.Inc()
				} else {
					l.Dirty = true
				}
				c.eng.Schedule(c.cfg.HitLatency, w.done)
			} else {
				// A store merged behind a read-lease miss: upgrade now.
				w := w
				c.eng.Schedule(1, func(uint64) { c.retryAccess(w.kind, w.va, w.done) })
			}
			continue
		}
		if c.obsv != nil {
			c.observe(obs.Load, w.va, l.Ver, maxU64(l.LTime, l.WTime))
		}
		c.eng.Schedule(c.cfg.HitLatency, w.done)
	}
	c.freeTxn(t)
	c.pool.Put(m)
}

func (c *L0X) retryAccess(kind mem.AccessKind, va mem.VAddr, done func(uint64)) {
	if !c.Access(kind, va, done) {
		c.eng.Schedule(2, func(uint64) { c.retryAccess(kind, va, done) })
	}
}

// installLine places a leased line in the array, evicting if necessary.
// Returns nil when every way in the set is pinned by pending transactions.
func (c *L0X) installLine(a uint64, lease uint64, write bool, ver uint64) *cache.Line {
	l := c.arr.LookupPID(a, c.pid)
	if l == nil {
		v := c.pickVictim(a)
		if v == nil {
			return nil
		}
		c.dropLine(v)
		c.arr.Fill(v, a, c.pid)
		l = v
	}
	c.access()
	if lease <= c.eng.Now() {
		lease = c.eng.Now() + 1 // grant arrived after its expiry; degenerate
	}
	l.Ver = ver
	l.LTime = lease
	if write {
		l.WTime = lease
		// Self-downgrade: the write epoch must end with a writeback by its
		// expiry (the paper implements this with per-set writeback
		// timestamps; an event is the simulation equivalent). The handler
		// checks WTime against the fire cycle, so a re-leased line is left
		// alone.
		c.eng.ScheduleCallAt(lease, c, opL0XSelfDowngrade, a)
	}
	return l
}

// pickVictim chooses a fillable way, skipping lines tied to open txns.
func (c *L0X) pickVictim(a uint64) *cache.Line {
	for i := 0; i < c.arr.Params().Ways; i++ {
		v := c.arr.Victim(a)
		if !v.Valid {
			return v
		}
		if c.mshr.Slot(v.Addr) < 0 {
			return v
		}
		c.arr.Touch(v)
	}
	return nil
}

// dropLine evicts a line: dirty data is forwarded (Dx) or written back. A
// clean line still holding a write epoch (write-through mode, or an epoch
// granted but not yet written) must release the L1X lock on the way out or
// stalled requesters would wait forever.
func (c *L0X) dropLine(l *cache.Line) {
	if !l.Valid {
		return
	}
	if l.Dirty {
		c.flushLine(l)
	} else if l.WTime > c.eng.Now() {
		c.sendWB(l.Addr, l.Ver, l.WTime, false)
	}
	*l = cache.Line{}
}

// flushLine emits the dirty payload of l: a direct forward when the line is
// marked for a consumer and a forwarding link exists, otherwise a writeback
// to the shared L1X. The line is marked clean.
//
// A line that itself arrived by forwarding (State==Shared marks the import)
// always writes back: re-forwarding would chain the open write epoch across
// hops and stall any L1X requester for the full lease (the L1X cannot close
// the epoch until a writeback finally lands).
func (c *L0X) flushLine(l *cache.Line) {
	if consumer, ok := c.fwdTable.Get(l.Addr); ok && l.State != cache.Shared {
		if link := c.peerLink(consumer); link != nil {
			if c.tracer != nil {
				c.emit(ptrace.DxForward, l.Addr, fmt.Sprintf("to axc%d lease=%d", consumer, maxU64(l.WTime, l.LTime)))
			}
			fwd := c.pool.Get()
			fwd.Type, fwd.Addr, fwd.PID, fwd.Src = MsgFwdData, mem.VAddr(l.Addr), c.pid, c.id
			fwd.Lease, fwd.Dirty, fwd.Ver = maxU64(l.WTime, l.LTime), true, l.Ver
			if c.mut != nil && c.mut.StaleForward && fwd.Ver > 0 {
				fwd.Ver-- // mutant: the forward drops the producer's last store
			}
			link.Send(fwd)
			c.cFwdOut.Inc()
			l.Dirty = false
			return
		}
	}
	c.emit(ptrace.Writeback, l.Addr, "")
	c.sendWB(l.Addr, l.Ver, l.WTime, false)
	c.cWBs.Inc()
	l.Dirty = false
}

// peerLink returns the Dx forwarding link to sibling id, or nil.
func (c *L0X) peerLink(id AXCID) *interconnect.Link {
	if int(id) < len(c.fwdTo) {
		return c.fwdTo[id]
	}
	return nil
}

// selfDowngrade fires when a write epoch expires: the line (if still
// present and dirty) writes back and self-invalidates.
func (c *L0X) selfDowngrade(a uint64, expiry uint64) {
	l := c.arr.Peek(a)
	if l == nil || !l.Valid || l.WTime != expiry {
		return // already drained, evicted, or re-leased
	}
	c.cSelfDown.Inc()
	c.emit(ptrace.SelfDowngrade, a, "")
	if l.Dirty {
		c.flushLine(l)
	} else if c.cfg.WriteThrough {
		// Written-through epochs still need an explicit release so the L1X
		// can unlock the line; the final WB doubles as the release.
		c.sendWB(a, l.Ver, l.WTime, false)
	}
	*l = cache.Line{}
}

// receiveForward installs a line pushed by a producer L0X (FUSION-Dx). The
// data arrives dirty, with the producer's remaining lease; this consumer
// now owes the eventual writeback to the L1X. m is released at every
// terminal path (the all-ways-busy retry retains it).
func (c *L0X) receiveForward(m *TileMsg) {
	a := uint64(m.Addr.LineAddr())
	if m.Lease <= c.eng.Now() {
		// The forward outlived its lease in transit. The dirty payload is
		// owed to the L1X; pass it on as the closing writeback instead of
		// installing an already-expired line. Any outstanding miss here is
		// stalled at the L1X behind the epoch lock and resolves once this
		// writeback closes it.
		c.sendWB(a, m.Ver, m.Lease, false)
		c.cDeadFwds.Inc()
		c.pool.Put(m)
		return
	}
	l := c.installLine(a, m.Lease, true, m.Ver)
	if l == nil {
		c.eng.Schedule(1, func(uint64) { c.receiveForward(m) })
		return
	}
	l.Dirty = true
	l.State = cache.Shared // marks an imported line: never re-forward it
	c.cFwdIn.Inc()
	// A miss may already be outstanding for this line (the consumer raced
	// ahead of the push). The forward satisfies it; the L1X's eventual
	// grant, if any, arrives with no transaction and is ignored by fill.
	if slot := c.mshr.Slot(a); slot >= 0 {
		t := c.txns[slot]
		c.txns[slot] = nil
		c.mshr.Free(a)
		c.eng.Progress()
		for _, w := range t.waiters {
			if w.kind == mem.Store {
				if c.mut == nil || !c.mut.LostStore {
					l.Ver++
				}
				if c.obsv != nil {
					c.observe(obs.Store, w.va, l.Ver, l.WTime)
				}
			} else if c.obsv != nil {
				c.observe(obs.Load, w.va, l.Ver, maxU64(l.LTime, l.WTime))
			}
			c.eng.Schedule(c.cfg.HitLatency, w.done)
		}
		c.freeTxn(t)
	}
	c.pool.Put(m)
}

// Drain writes back (or forwards) every dirty line and releases epochs —
// the accelerator calls this when an invocation completes, which is the
// "self-eviction" moment of Figures 3 and 5.
func (c *L0X) Drain() {
	c.arr.ForEach(func(l *cache.Line) {
		if !l.Valid {
			return
		}
		if l.Dirty {
			c.flushLine(l)
			*l = cache.Line{}
		} else if l.WTime > c.eng.Now() {
			// Unwritten or written-through epoch: release the L1X lock.
			c.sendWB(l.Addr, l.Ver, l.WTime, false)
			*l = cache.Line{}
		}
	})
}

// DumpState summarizes in-flight work for watchdog/failure diagnostics.
// Empty when the cache is idle.
func (c *L0X) DumpState() string {
	if c.mshr.Len() == 0 {
		return ""
	}
	addrs := c.mshr.Outstanding()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d open txns, %d/%d MSHRs\n",
		c.name, c.mshr.Len(), c.mshr.Len(), c.cfg.MSHRs)
	for _, a := range addrs {
		t := c.txns[c.mshr.Slot(a)]
		kind := "GetL"
		if t.write {
			kind = "GetW"
		}
		fmt.Fprintf(&b, "  %#x %s waiters=%d\n", a, kind, len(t.waiters))
	}
	return b.String()
}

// InvalidateAll clears the cache without writebacks (tests only).
func (c *L0X) InvalidateAll() { c.arr.InvalidateAll() }

// Outstanding reports open transactions (drain checks).
func (c *L0X) Outstanding() int { return c.mshr.Len() }

// Peek exposes a line for tests.
func (c *L0X) Peek(va mem.VAddr) *cache.Line {
	return c.arr.Peek(uint64(va.LineAddr()))
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
