package acc

// HYDRA cacheability-filter tests: the L1X allocation-bypass decision
// (reuse and deadline terms), the one-shot NoAlloc service path through the
// L0X, the store-waiter retry that keeps writes on the real ownership path,
// and the DMA-write invalidation of a dirty tile owner (the version-merge
// handshake the mixed-placement systems depend on).

import (
	"testing"

	"fusion/internal/mem"
	"fusion/internal/scratchpad"
)

func TestBypassFilterLowReuse(t *testing.T) {
	h := newHarness(t, 1, false)
	h.tile.L1X.EnableBypassFilter(2, 0.1)

	// First touch: one touch < threshold 2, the fetch bypasses allocation.
	h.axcDo(t, 0, mem.Load, 0x1000)
	if got := h.st.Get("l1x.bypass_alloc"); got != 1 {
		t.Fatalf("bypass_alloc = %d, want 1", got)
	}
	if h.tile.L1X.Peek(0x1000, 1) != nil {
		t.Fatal("bypassed fetch allocated an L1X line")
	}

	// Second touch crosses the reuse threshold: allocate normally.
	h.axcDo(t, 0, mem.Load, 0x1000)
	if got := h.st.Get("l1x.bypass_alloc"); got != 1 {
		t.Fatalf("bypass_alloc after retouch = %d, want still 1", got)
	}
	if h.tile.L1X.Peek(0x1000, 1) == nil {
		t.Fatal("second touch did not allocate")
	}
}

func TestBypassFilterDeadline(t *testing.T) {
	h := newHarness(t, 1, false)
	h.tile.L1X.EnableBypassFilter(2, 0.1)
	h.tile.L1X.SetDeadline(1) // every fill completes past the deadline

	// Even a re-touched (high-reuse) line bypasses: the deadline term is
	// consulted first.
	h.axcDo(t, 0, mem.Load, 0x2000)
	h.axcDo(t, 0, mem.Load, 0x2000)
	if got := h.st.Get("l1x.bypass_deadline"); got != 2 {
		t.Fatalf("bypass_deadline = %d, want 2", got)
	}
	if got := h.st.Get("l1x.bypass_alloc"); got != 0 {
		t.Fatalf("bypass_alloc = %d, want 0 (deadline term owns both)", got)
	}
	if h.tile.L1X.Peek(0x2000, 1) != nil {
		t.Fatal("deadline-critical fetch allocated")
	}
}

func TestBypassFilterIgnoreDeadlineMutation(t *testing.T) {
	h := newHarness(t, 1, false)
	h.tile.L1X.EnableBypassFilter(2, 0.1)
	h.tile.L1X.SetDeadline(1)
	h.tile.L1X.SetMutations(&Mutations{IgnoreDeadline: true})

	// The mutation drops the deadline term, so the bypass is re-attributed
	// to the reuse term — exactly the signature the ignore-deadline litmus
	// mutant is killed by.
	h.axcDo(t, 0, mem.Load, 0x3000)
	if got := h.st.Get("l1x.bypass_deadline"); got != 0 {
		t.Fatalf("bypass_deadline = %d, want 0 under IgnoreDeadline", got)
	}
	if got := h.st.Get("l1x.bypass_alloc"); got != 1 {
		t.Fatalf("bypass_alloc = %d, want 1", got)
	}
}

func TestBypassStoreWaiterRetries(t *testing.T) {
	h := newHarness(t, 1, false)
	h.tile.L1X.EnableBypassFilter(2, 0.1)

	// Queue a store behind a load's in-flight fetch of the same line. The
	// load's fetch bypasses (all L1X waiters are reads); the store waiter
	// must then retry as a real write-ownership request and allocate —
	// NoAlloc never weakens the single-writer path.
	l0 := h.tile.L0Xs[0]
	var loadDone, storeDone bool
	if !l0.Access(mem.Load, 0x4000, func(uint64) { loadDone = true }) {
		t.Fatal("load rejected on idle cache")
	}
	if !l0.Access(mem.Store, 0x4008, func(uint64) { storeDone = true }) {
		t.Fatal("store rejected on idle cache")
	}
	h.run(t, 200000, func() bool { return loadDone && storeDone })
	if got := h.st.Get("l1x.bypass_alloc"); got != 1 {
		t.Fatalf("bypass_alloc = %d, want 1", got)
	}
	if h.tile.L1X.Peek(0x4000, 1) == nil {
		t.Fatal("store retry did not allocate the line")
	}
}

func TestDMAWriteInvalidatesDirtyOwner(t *testing.T) {
	h := newHarness(t, 1, false)

	// The tile dirties a line it owns dirE (v1). A DMA delta write must
	// invalidate the owner, merge the dirty version carried on the InvAck,
	// and commit the delta on top — v1 + 1 = v2.
	h.axcDo(t, 0, mem.Store, 0x5000)
	dma := scratchpad.NewDMA(h.fab, 9, 1, 0, h.st)
	pa := h.pt.Translate(1, 0x5000).LineAddr()
	done := false
	dma.WriteLine(pa, 1, true, func(uint64) { done = true })
	h.run(t, 400000, func() bool { return done })
	if h.tile.L1X.Peek(0x5000, 1) != nil {
		t.Fatal("invalidated owner still holds the line")
	}

	var ver uint64
	got := false
	dma.ReadLine(pa, func(v uint64) { ver, got = v, true })
	h.run(t, 400000, func() bool { return got })
	if ver != 2 {
		t.Fatalf("post-invalidate version = %d, want 2 (dirty v1 + delta)", ver)
	}
}
