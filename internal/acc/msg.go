// Package acc implements the paper's primary contribution: the ACC
// (ACcelerator Coherence) protocol and the FUSION accelerator-tile cache
// hierarchy — per-accelerator private L0X caches kept coherent with a
// shared, banked L1X through timestamp leases (Section 3).
//
// ACC is a self-invalidation protocol in the lineage of Library Cache
// Coherence and GPU temporal coherence [22, 31, 32]:
//
//   - An L0X line carries LTIME, the absolute cycle its read lease expires;
//     a line whose lease has passed is invalid — no invalidation messages
//     ever travel to an L0X.
//   - A write needs a write epoch: the L1X implicitly locks the line until
//     the epoch expires and the writeback arrives; other requesters stall
//     at the L1X, never at the L0X.
//   - The L1X line's GTIME records the latest lease granted to any L0X, so
//     the L1X alone can answer host MESI forwards: it stalls the response
//     in a writeback buffer until GTIME passes, then relinquishes with an
//     eviction notice (the tile maps onto a 3-state MEI protocol and is
//     never a MESI sharer).
//
// Two write optimizations distinguish ACC from its ancestors (Section 3.2):
// write caching (dirty lines live in the L0X and write back once — compare
// Table 4's write-through bandwidth) and write forwarding (FUSION-Dx: a
// producer L0X pushes a dirty line straight to the consumer L0X over a
// cheap 0.1 pJ/B link, skipping the L1X round trip).
package acc

import (
	"fmt"

	"fusion/internal/mem"
)

// AXCID identifies an accelerator (and its private L0X) within a tile.
type AXCID int

// TileMsgType enumerates L0X<->L1X and L0X<->L0X messages.
type TileMsgType uint8

const (
	// L0X -> L1X requests.
	MsgGetL TileMsgType = iota // read-lease request (carries desired expiry)
	MsgGetW                    // write-epoch request
	MsgWB                      // writeback: dirty data returning to the L1X
	// L1X -> L0X responses.
	MsgLease // data + granted lease (read or write per Write flag)
	// L0X -> L0X (FUSION-Dx only).
	MsgFwdData // pushed dirty line with the remaining lease lifetime
)

var tileMsgNames = map[TileMsgType]string{
	MsgGetL: "GetL", MsgGetW: "GetW", MsgWB: "WB",
	MsgLease: "Lease", MsgFwdData: "FwdData",
}

func (t TileMsgType) String() string {
	if s, ok := tileMsgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TileMsgType(%d)", uint8(t))
}

// TileMsg is one message inside the accelerator tile. Addresses are virtual:
// the tile translates only on the L1X miss path.
type TileMsg struct {
	Type TileMsgType
	Addr mem.VAddr // line-aligned virtual address
	PID  mem.PID
	Src  AXCID // issuing accelerator (or -1 from the L1X)
	// Lease is a duration on GetL/GetW requests (the L1X converts it to an
	// absolute expiry at grant time, so a request stalled behind a write
	// epoch still receives a usable lease) and an absolute expiry cycle on
	// MsgLease grants and MsgFwdData pushes.
	Lease uint64
	Write bool   // on MsgLease: this grants a write epoch
	Dirty bool   // on MsgFwdData: line carries modified data (always true)
	Ver   uint64 // modeled payload version for data-carrying messages
	// Through marks a write-through store's WB: it updates the L1X data but
	// leaves the write epoch open (the final drain WB closes it).
	Through bool
	// NoAlloc marks a MsgLease that carries data but no lease at all
	// (Lease is zero): the HYDRA cacheability filter bypassed L1X
	// allocation, so the L0X must serve its waiting loads one-shot and
	// install nothing. Pending stores re-request a real write epoch.
	NoAlloc bool

	// pooled marks a message sitting in a TileMsgPool free list; the pool's
	// double-release guard checks it.
	pooled bool
}

// Bytes implements interconnect.Message: requests are single control flits;
// lease responses, writebacks, and forwards carry a line.
func (m *TileMsg) Bytes() int {
	switch m.Type {
	case MsgGetL, MsgGetW:
		return 8
	case MsgWB, MsgLease, MsgFwdData:
		return 8 + mem.LineBytes
	}
	return 8 // poisoned/unknown: sized as control, caught by the pool guard
}

func (m *TileMsg) String() string {
	return fmt.Sprintf("%s %s axc%d lease=%d v%d", m.Type, m.Addr, m.Src, m.Lease, m.Ver)
}
