package acc

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"fusion/internal/cache"
	"fusion/internal/energy"
	"fusion/internal/flat"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/obs"
	"fusion/internal/ptrace"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// L1XConfig sizes the shared tile cache.
type L1XConfig struct {
	Cache     cache.Params // Table 2: 64 KB (or 256 KB), 8-way
	Banks     int          // Table 2: 16 banks
	MSHRs     int
	AccessLat uint64 // bank access latency
	AccessPJ  float64
	// LeaseSlack pads retries when waiting for epochs to lapse.
	LeaseSlack uint64
	// StatPrefix distinguishes multiple tiles' counters ("" keeps the
	// canonical "l1x." names).
	StatPrefix string
}

// l1txn is one outstanding host-side (MESI) fetch. Completed txns recycle
// through a free list (waiters capacity included).
type l1txn struct {
	va         uint64 // virtual line address
	pa         mem.PAddr
	pid        mem.PID
	waiters    []*TileMsg // lease requests to replay once data arrives
	arrived    bool
	ver        uint64
	acksNeeded int // -1 until the data response reports the count
	acksGot    int
}

const (
	holderAbsent   = -3 // no lease interaction since the line was installed
	holderNone     = -2
	holderMultiple = -1
)

// L1X HandleEvent opcodes.
const (
	opL1XProcess  = 0 // process the TileMsg parked in slot arg
	opL1XSendGetM = 1 // send GetM for the physical line address in arg
)

// L1X is the shared accelerator-tile cache: the ACC ordering point, the
// tile's single MESI agent (MEI states), and the home of the AX-TLB and
// AX-RMAP. It is indexed by PID-tagged virtual addresses; translation
// happens only on its miss path (Section 3.2).
type L1X struct {
	name string
	cfg  L1XConfig
	arr  *cache.Array
	mshr *cache.MSHR

	eng    *sim.Engine
	fabric *mesi.Fabric
	agent  mesi.AgentID
	tlb    Translator
	rmap   ReverseMap

	// toL0X is indexed by AXCID (dense within a tile).
	toL0X []*interconnect.Link

	// txns is keyed by MSHR slot (the file is keyed by virtual line
	// address); a pending fetch's physical address lives on the txn, so
	// the PA->VA question is a walk of the MSHR occupancy bitmap.
	txns     []*l1txn
	freeTxns []*l1txn // recycled fetch records
	// waiting and holder are per-(set, way) line-slot arrays parallel to
	// the tag array (cache.Array.SlotOf): the stall list and sole
	// read-lease holder belong to the line currently in the slot. A line
	// can only leave the array with no open write epoch, hence with an
	// empty stall list (evictLine checks), so slot reuse is safe.
	waiting [][]*TileMsg
	holder  []int
	evict   []evictEntry // awaiting PutAck; can serve host Fwds

	tilePool TileMsgPool
	mesiPool mesi.MsgPool
	// parked holds TileMsgs between scheduling and processing; the
	// closure-free event carries the slot index.
	parked    []*TileMsg
	freeSlots []uint32

	meter  *energy.Meter
	tracer ptrace.Tracer
	obsv   obs.Observer
	st     *stats.Set
	mut    *Mutations

	// HYDRA cacheability filter (nil/zero when disarmed — see
	// EnableBypassFilter). touches counts lease requests per virtual line;
	// a fetch whose demand stays below bypassThreshold, or that completes
	// past the task deadline, is served to its waiting loads without
	// allocating.
	filterOn        bool
	bypassThreshold int
	bypassPJ        float64
	deadline        uint64
	touches         *flat.Map[uint32]

	cAccesses   *stats.Counter
	cStallWLock *stats.Counter
	cStallGTime *stats.Counter
	cGrantsW    *stats.Counter
	cGrantsR    *stats.Counter
	cWBOrphan   *stats.Counter
	cWBIn       *stats.Counter
	cMSHRFull   *stats.Counter
	cMisses     *stats.Counter
	cSynEvict   *stats.Counter
	cEvictions  *stats.Counter
	cHostFwds   *stats.Counter
	cFwdStalled *stats.Counter
	// Created by EnableBypassFilter so non-HYDRA systems' stat dumps are
	// undisturbed.
	cBypassAlloc    *stats.Counter
	cBypassDeadline *stats.Counter
}

// SetMutations arms test-only protocol mutations at the L1X (nil disarms).
// Only IgnoreDeadline is interpreted here; the L0X mutations ride on the
// same struct.
func (x *L1X) SetMutations(m *Mutations) { x.mut = m }

// EnableBypassFilter arms the HYDRA cacheability filter: a fetch serving
// only loads is examined before allocation, and bypassed — data handed to
// the waiting L0Xs one-shot, ownership relinquished immediately — when the
// line's request count is below threshold (low expected reuse) or the
// fill completes past the task deadline set by SetDeadline. Every
// examination is metered at checkPJ under energy.CatPolicy.
func (x *L1X) EnableBypassFilter(threshold int, checkPJ float64) {
	x.filterOn = true
	x.bypassThreshold = threshold
	x.bypassPJ = checkPJ
	x.touches = flat.New[uint32](4096)
	x.cBypassAlloc = x.st.Counter(x.name + ".bypass_alloc")
	x.cBypassDeadline = x.st.Counter(x.name + ".bypass_deadline")
}

// SetDeadline sets the absolute cycle after which the filter treats every
// fill as deadline-critical (zero disables the deadline term).
func (x *L1X) SetDeadline(d uint64) { x.deadline = d }

// SetTracer attaches a protocol tracer (nil disables tracing).
func (x *L1X) SetTracer(t ptrace.Tracer) { x.tracer = t }

// SetObserver attaches a litmus observer (nil disables observation). L1X
// grants are recorded as diagnostics: the value checker keys on L0X and
// host-side observations, but a grant pinpoints where a stale version
// entered the tile.
func (x *L1X) SetObserver(o obs.Observer) { x.obsv = o }

func (x *L1X) emit(k ptrace.Kind, addr uint64, detail string) {
	if x.tracer != nil {
		x.tracer.Emit(ptrace.Event{Cycle: x.eng.Now(), Source: x.name, Kind: k,
			Addr: addr, Detail: detail})
	}
}

type evictBuf struct {
	ver   uint64
	dirty bool
}

// evictEntry is one writeback awaiting the directory's PutAck. The handful
// in flight live in a linear list: shorter than a map bucket walk, and
// deletion is a swap with the tail.
type evictEntry struct {
	pa mem.PAddr
	evictBuf
}

// evictFind returns the index of pa's eviction buffer, or -1.
func (x *L1X) evictFind(pa mem.PAddr) int {
	for i := range x.evict {
		if x.evict[i].pa == pa {
			return i
		}
	}
	return -1
}

// evictPut records (or refreshes) the eviction buffer for pa.
func (x *L1X) evictPut(pa mem.PAddr, b evictBuf) {
	if i := x.evictFind(pa); i >= 0 {
		x.evict[i].evictBuf = b
		return
	}
	x.evict = append(x.evict, evictEntry{pa: pa, evictBuf: b})
}

// evictRemove drops entry i by swapping the tail in.
func (x *L1X) evictRemove(i int) {
	last := len(x.evict) - 1
	x.evict[i] = x.evict[last]
	x.evict = x.evict[:last]
}

// Translator is the AX-TLB interface (satisfied by *vm.TLB).
type Translator interface {
	Translate(pid mem.PID, va mem.VAddr) (mem.PAddr, uint64)
}

// ReverseMap is the AX-RMAP interface (satisfied by *vm.RMAP).
type ReverseMap interface {
	Insert(pa mem.PAddr, ptr ReversePointer) (prev ReversePointer, dup bool)
	Lookup(pa mem.PAddr) (ReversePointer, bool)
	Remove(pa mem.PAddr)
}

// ReversePointer locates an L1X line for a forwarded physical request.
type ReversePointer struct {
	VAddr mem.VAddr
	PID   mem.PID
}

// NewL1X builds the shared tile cache and registers it as agent on the
// fabric.
func NewL1X(eng *sim.Engine, fabric *mesi.Fabric, agent mesi.AgentID,
	cfg L1XConfig, tlb Translator, rmap ReverseMap,
	meter *energy.Meter, st *stats.Set) *L1X {
	name := cfg.StatPrefix + "l1x"
	arr := cache.NewArray(cfg.Cache)
	holder := make([]int, arr.NumLines())
	for i := range holder {
		holder[i] = holderAbsent
	}
	x := &L1X{
		name:        name,
		cfg:         cfg,
		arr:         arr,
		mshr:        cache.NewMSHR(cfg.MSHRs),
		eng:         eng,
		fabric:      fabric,
		agent:       agent,
		tlb:         tlb,
		rmap:        rmap,
		txns:        make([]*l1txn, cfg.MSHRs),
		waiting:     make([][]*TileMsg, arr.NumLines()),
		holder:      holder,
		meter:       meter,
		st:          st,
		cAccesses:   st.Counter(name + ".accesses"),
		cStallWLock: st.Counter(name + ".stall_wlock"),
		cStallGTime: st.Counter(name + ".stall_gtime"),
		cGrantsW:    st.Counter(name + ".grants_write"),
		cGrantsR:    st.Counter(name + ".grants_read"),
		cWBOrphan:   st.Counter(name + ".wb_orphan"),
		cWBIn:       st.Counter(name + ".writebacks_in"),
		cMSHRFull:   st.Counter(name + ".mshr_full"),
		cMisses:     st.Counter(name + ".misses"),
		cSynEvict:   st.Counter(name + ".synonym_evictions"),
		cEvictions:  st.Counter(name + ".evictions"),
		cHostFwds:   st.Counter(name + ".host_fwds"),
		cFwdStalled: st.Counter(name + ".fwd_stalled"),
	}
	if cfg.LeaseSlack == 0 {
		x.cfg.LeaseSlack = 1
	}
	fabric.Register(agent, x.HandleMESI)
	return x
}

// ConnectL0X attaches the downlink to one accelerator's private cache.
func (x *L1X) ConnectL0X(id AXCID, l *interconnect.Link) {
	for int(id) >= len(x.toL0X) {
		x.toL0X = append(x.toL0X, nil)
	}
	x.toL0X[id] = l
}

// Agent returns the tile's MESI agent ID.
func (x *L1X) Agent() mesi.AgentID { return x.agent }

func (x *L1X) access() {
	if x.meter != nil {
		x.meter.Add(energy.CatL1X, x.cfg.AccessPJ)
	}
	x.cAccesses.Inc()
}

// park stores m and returns its slot for a closure-free process event.
func (x *L1X) park(m *TileMsg) uint64 {
	if n := len(x.freeSlots); n > 0 {
		s := x.freeSlots[n-1]
		x.freeSlots = x.freeSlots[:n-1]
		x.parked[s] = m
		return uint64(s)
	}
	x.parked = append(x.parked, m)
	return uint64(len(x.parked) - 1)
}

func (x *L1X) scheduleProcess(delay uint64, m *TileMsg) {
	x.eng.ScheduleCall(delay, x, opL1XProcess, x.park(m))
}

func (x *L1X) scheduleProcessAt(at uint64, m *TileMsg) {
	x.eng.ScheduleCallAt(at, x, opL1XProcess, x.park(m))
}

// HandleEvent dispatches the L1X's closure-free events.
func (x *L1X) HandleEvent(now uint64, op uint8, arg uint64) {
	switch op {
	case opL1XProcess:
		m := x.parked[arg]
		x.parked[arg] = nil
		x.freeSlots = append(x.freeSlots, uint32(arg))
		x.process(m)
	case opL1XSendGetM:
		g := x.mesiPool.Get()
		g.Type, g.Addr, g.Src, g.Dst = mesi.MsgGetM, mem.PAddr(arg), x.agent, mesi.DirID
		x.fabric.Send(g)
	}
}

// HandleTile receives a message from an L0X, paying the bank latency.
func (x *L1X) HandleTile(msg interconnect.Message) {
	m, ok := msg.(*TileMsg)
	if !ok {
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "foreign message %v", msg)
	}
	x.scheduleProcess(x.cfg.AccessLat, m)
}

func (x *L1X) process(m *TileMsg) {
	switch m.Type {
	case MsgGetL, MsgGetW:
		x.lease(m)
	case MsgWB:
		x.writeback(m)
		x.tilePool.Put(m)
	default:
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "unexpected tile %s", m)
	}
}

// lease serves a read-lease or write-epoch request. Granted requests release
// m; stalled or missing ones retain it for replay.
func (x *L1X) lease(m *TileMsg) {
	a := uint64(m.Addr.LineAddr())
	x.access()

	if x.filterOn {
		// Demand tracking for the cacheability filter. Replayed waiters
		// recount, but only after the allocate/bypass decision for their
		// fetch was made, so the inflation never flips a decision.
		if p := x.touches.Ptr(a); p != nil {
			*p++
		} else {
			x.touches.Put(a, 1)
		}
	}

	l := x.arr.LookupPID(a, m.PID)
	if l == nil {
		x.missFetch(a, m)
		return
	}
	now := x.eng.Now()
	slot := x.arr.SlotOf(a, l)
	if l.WLock {
		// An outstanding write epoch: everyone stalls at the L1X until the
		// writeback lands (Section 3.2, Figure 4).
		x.waiting[slot] = append(x.waiting[slot], m)
		x.cStallWLock.Inc()
		if x.tracer != nil {
			x.emit(ptrace.WLockStall, a, fmt.Sprintf("axc%d %s", m.Src, m.Type))
		}
		return
	}
	// Requests carry a lease duration; anchor it now so a request that
	// stalled behind an epoch still gets a full-length lease.
	expiry := now + m.Lease
	if m.Type == MsgGetW {
		h := x.holder[slot]
		if h == holderAbsent {
			h = 0 // the address-keyed table read absent entries as zero
		}
		soleOK := h == int(m.Src) || l.GTime <= now
		if !soleOK {
			// Another accelerator may still be reading under its lease;
			// the write epoch cannot open until GTIME passes.
			x.cStallGTime.Inc()
			if x.tracer != nil {
				x.emit(ptrace.GTimeStall, a, fmt.Sprintf("axc%d until %d", m.Src, l.GTime))
			}
			x.scheduleProcessAt(l.GTime+x.cfg.LeaseSlack, m)
			return
		}
		l.WLock = true
		x.holder[slot] = int(m.Src)
		if expiry > l.GTime {
			l.GTime = expiry
		}
		x.grant(m, l, true, expiry)
		x.tilePool.Put(m)
		return
	}
	// Read lease. If every previously granted lease has lapsed (GTIME in
	// the past), this requester becomes the sole holder — stale holdership
	// from long-expired leases must not pin the line as "shared".
	if h := x.holder[slot]; h == holderAbsent || h == holderNone || l.GTime <= now {
		x.holder[slot] = int(m.Src)
	} else if h != int(m.Src) {
		x.holder[slot] = holderMultiple
	}
	if expiry > l.GTime {
		l.GTime = expiry
	}
	x.grant(m, l, false, expiry)
	x.tilePool.Put(m)
}

// grant sends a lease response back to the requesting L0X.
func (x *L1X) grant(m *TileMsg, l *cache.Line, write bool, expiry uint64) {
	var link *interconnect.Link
	if int(m.Src) < len(x.toL0X) {
		link = x.toL0X[m.Src]
	}
	if link == nil {
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "no downlink to axc %d", m.Src)
	}
	if write {
		x.cGrantsW.Inc()
	} else {
		x.cGrantsR.Inc()
	}
	if x.tracer != nil {
		kind := ptrace.LeaseGrant
		if write {
			kind = ptrace.EpochGrant
		}
		x.emit(kind, uint64(m.Addr.LineAddr()), fmt.Sprintf("axc%d until %d", m.Src, expiry))
	}
	if x.obsv != nil {
		x.obsv.Record(obs.Observation{Cycle: x.eng.Now(), Agent: x.name,
			Addr: uint64(m.Addr.LineAddr()), Ver: l.Ver, Lease: expiry,
			Kind: obs.Grant})
	}
	g := x.tilePool.Get()
	g.Type, g.Addr, g.PID, g.Src = MsgLease, m.Addr, m.PID, -1
	g.Lease, g.Write, g.Ver = expiry, write, l.Ver
	link.Send(g)
}

// writeback accepts dirty data (or an epoch release) from an L0X.
func (x *L1X) writeback(m *TileMsg) {
	a := uint64(m.Addr.LineAddr())
	x.access()
	l := x.arr.LookupPID(a, m.PID)
	if l == nil {
		// The line was reclaimed by a host forward while the L0X held it;
		// the data must still reach the host side. Rare but legal.
		x.cWBOrphan.Inc()
		pa, _ := x.tlb.Translate(m.PID, m.Addr)
		put := x.mesiPool.Get()
		put.Type, put.Addr, put.Src, put.Dst, put.Ver =
			mesi.MsgPutM, pa.LineAddr(), x.agent, mesi.DirID, m.Ver
		x.fabric.Send(put)
		return
	}
	if m.Ver > l.Ver {
		l.Ver = m.Ver
		l.Dirty = true
	}
	// Any non-through writeback closes the epoch. The holder identity is
	// deliberately not checked: under FUSION-Dx the lease migrates to the
	// consumer L0X without informing the L1X (Section 3.2).
	slot := x.arr.SlotOf(a, l)
	if l.WLock && !m.Through {
		l.WLock = false
		x.holder[slot] = holderNone
	}
	x.cWBIn.Inc()
	if !m.Through {
		x.wake(slot)
	}
}

// wake replays stalled lease requests for a line after an epoch closes.
func (x *L1X) wake(slot int) {
	q := x.waiting[slot]
	if len(q) == 0 {
		return
	}
	x.waiting[slot] = q[:0] // keep the capacity for the next epoch
	for i, m := range q {
		x.scheduleProcess(1, m)
		q[i] = nil
	}
}

// newTxn returns a zeroed fetch record, reusing a recycled one if possible.
func (x *L1X) newTxn() *l1txn {
	if n := len(x.freeTxns); n > 0 {
		t := x.freeTxns[n-1]
		x.freeTxns[n-1] = nil
		x.freeTxns = x.freeTxns[:n-1]
		w := t.waiters[:0]
		*t = l1txn{waiters: w}
		return t
	}
	return &l1txn{}
}

// missFetch starts (or joins) a host-side fetch. The tile always requests
// exclusive (GetM): the L1X caches every block in E/M regardless of the
// accelerator operation (Section 3.2).
func (x *L1X) missFetch(a uint64, m *TileMsg) {
	if slot := x.mshr.Slot(a); slot >= 0 {
		t := x.txns[slot]
		t.waiters = append(t.waiters, m)
		return
	}
	if x.mshr.Full() {
		// Retry the request later rather than dropping it.
		x.scheduleProcess(4, m)
		x.cMSHRFull.Inc()
		return
	}
	// AX-TLB sits here, on the miss path (Lesson 8).
	pa, walk := x.tlb.Translate(m.PID, mem.VAddr(a))
	pa = pa.LineAddr()

	// Synonym check (appendix): if the tile already caches this physical
	// line under a different virtual address, evict the duplicate locally —
	// the tile still owns the line, so no host transaction is needed — and
	// rehome the data under the new alias.
	if ptr, ok := x.rmap.Lookup(pa); ok {
		if x.resolveSynonym(a, m, pa, ptr) {
			return
		}
	}

	x.cMisses.Inc()
	t := x.newTxn()
	t.va, t.pa, t.pid, t.acksNeeded = a, pa, m.PID, -1
	t.waiters = append(t.waiters, m)
	x.txns[x.mshr.Allocate(a)] = t
	if x.tracer != nil {
		x.emit(ptrace.L1XFetch, a, fmt.Sprintf("pa=%#x", uint64(pa)))
	}
	x.eng.ScheduleCall(walk+1, x, opL1XSendGetM, uint64(pa))
}

// resolveSynonym rehomes a physical line cached under another virtual alias.
// It returns true when the request was handled (served or rescheduled).
func (x *L1X) resolveSynonym(a uint64, m *TileMsg, pa mem.PAddr, ptr ReversePointer) bool {
	oldVA := uint64(ptr.VAddr.LineAddr())
	if oldVA == a && ptr.PID == m.PID {
		return false // same line; a plain miss race, fall through to fetch
	}
	old := x.arr.LookupPID(oldVA, ptr.PID)
	if old == nil {
		return false
	}
	oldSlot := x.arr.SlotOf(oldVA, old)
	if old.WLock {
		// A write epoch is open under the old alias; retry after it drains.
		x.waiting[oldSlot] = append(x.waiting[oldSlot], m)
		return true
	}
	x.cSynEvict.Inc()
	ver, dirty, gtime := old.Ver, old.Dirty, old.GTime
	x.rmap.Remove(pa)
	x.holder[oldSlot] = holderAbsent
	*old = cache.Line{}

	l := x.install(a, m.PID, pa, ver)
	if l == nil {
		x.scheduleProcess(2, m)
		return true
	}
	l.Dirty = dirty
	if gtime > l.GTime {
		l.GTime = gtime // stale leases on the old alias must still be honored
	}
	x.scheduleProcess(1, m)
	return true
}

// HandleMESI is the tile's endpoint on the host fabric. Messages consumed
// synchronously are released here; forwards hand ownership to respondHost.
func (x *L1X) HandleMESI(m *mesi.Msg) {
	switch m.Type {
	case mesi.MsgData, mesi.MsgDataE, mesi.MsgDataM:
		x.fillFromHost(m)
		x.mesiPool.Put(m)
	case mesi.MsgFwdGetS, mesi.MsgFwdGetM:
		x.hostForward(m)
	case mesi.MsgInv:
		// A DMA write targeting a line the tile owns (mixed placements, see
		// internal/systems ADAPTIVE): relinquish for real — the ack carries
		// the dirty version back to the directory.
		x.hostInvalidate(m)
	case mesi.MsgPutAck:
		if i := x.evictFind(m.Addr.LineAddr()); i >= 0 {
			x.evictRemove(i)
		}
		x.mesiPool.Put(m)
	case mesi.MsgInvAck:
		// GetM with requester-collected acks: the tile counts them like any
		// other requester. Tracked on the txn below.
		x.invAck(m)
		x.mesiPool.Put(m)
	default:
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "unexpected host %s", m)
	}
}

// slotByPA finds the pending fetch for a physical line by walking the MSHR
// occupancy bitmap (the txn records the translation).
func (x *L1X) slotByPA(pa mem.PAddr) int {
	for w := x.mshr.Occupied(); w != 0; w &= w - 1 {
		s := bits.TrailingZeros64(w)
		if t := x.txns[s]; t != nil && t.pa == pa {
			return s
		}
	}
	return -1
}

// invAck notes one invalidation ack for a pending exclusive fetch.
func (x *L1X) invAck(m *mesi.Msg) {
	slot := x.slotByPA(m.Addr.LineAddr())
	if slot < 0 {
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "InvAck with no fetch: %s", m)
	}
	t := x.txns[slot]
	t.acksGot++
	x.maybeFill(t)
}

// fillFromHost completes a fetch once data (and acks) arrive.
func (x *L1X) fillFromHost(m *mesi.Msg) {
	pa := m.Addr.LineAddr()
	slot := x.slotByPA(pa)
	if slot < 0 {
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "data with no fetch: %s", m)
	}
	t := x.txns[slot]
	t.arrived = true
	t.ver = m.Ver
	if t.acksNeeded == -1 {
		t.acksNeeded = m.AckCount
	}
	x.maybeFill(t)
}

func (x *L1X) maybeFill(t *l1txn) {
	if !t.arrived || t.acksGot < t.acksNeeded {
		return
	}
	if x.filterOn && x.bypassDecision(t) {
		x.bypassFill(t)
		return
	}
	l := x.install(t.va, t.pid, t.pa, t.ver)
	if l == nil {
		x.eng.Schedule(2, func(uint64) { x.maybeFill(t) })
		return
	}
	x.txns[x.mshr.Free(t.va)] = nil
	x.eng.Progress() // host fetch resolved: heartbeat
	unb := x.mesiPool.Get()
	unb.Type, unb.Addr, unb.Src, unb.Dst, unb.Excl =
		mesi.MsgUnblock, t.pa, x.agent, mesi.DirID, true
	x.fabric.Send(unb)
	for _, w := range t.waiters {
		x.scheduleProcess(1, w)
	}
	x.freeTxns = append(x.freeTxns, t)
}

// bypassDecision reports whether the completed fetch t should skip
// allocation. Only pure-load fetches are eligible — a waiting store needs
// a write epoch, which only an installed line can host. The deadline term
// wins over the reuse term so deadline bypasses are attributed to it.
func (x *L1X) bypassDecision(t *l1txn) bool {
	if len(t.waiters) == 0 {
		return false
	}
	for _, w := range t.waiters {
		if w.Type != MsgGetL {
			return false
		}
	}
	if x.meter != nil {
		x.meter.Add(energy.CatPolicy, x.bypassPJ)
	}
	if x.deadline != 0 && x.eng.Now() >= x.deadline &&
		(x.mut == nil || !x.mut.IgnoreDeadline) {
		x.cBypassDeadline.Inc()
		return true
	}
	if n, _ := x.touches.Get(t.va); int(n) < x.bypassThreshold {
		x.cBypassAlloc.Inc()
		return true
	}
	return false
}

// bypassFill completes a filtered fetch without allocating: every waiting
// load receives the fetched data one-shot (MsgLease with NoAlloc set and a
// zero lease), the directory transaction is unblocked, and ownership is
// relinquished immediately — the clean line never enters the array. The
// eviction buffer holds the data until PutAck so a racing host forward is
// still served.
func (x *L1X) bypassFill(t *l1txn) {
	for _, w := range t.waiters {
		var link *interconnect.Link
		if int(w.Src) < len(x.toL0X) {
			link = x.toL0X[w.Src]
		}
		if link == nil {
			sim.Failf(x.name, x.eng.Now(), x.DumpState(), "no downlink to axc %d", w.Src)
		}
		g := x.tilePool.Get()
		g.Type, g.Addr, g.PID, g.Src = MsgLease, w.Addr, w.PID, -1
		g.Ver, g.NoAlloc = t.ver, true
		link.Send(g)
		x.tilePool.Put(w)
	}
	x.txns[x.mshr.Free(t.va)] = nil
	x.eng.Progress() // host fetch resolved: heartbeat
	unb := x.mesiPool.Get()
	unb.Type, unb.Addr, unb.Src, unb.Dst, unb.Excl =
		mesi.MsgUnblock, t.pa, x.agent, mesi.DirID, true
	x.fabric.Send(unb)
	x.evictPut(t.pa, evictBuf{ver: t.ver})
	put := x.mesiPool.Get()
	put.Type, put.Addr, put.Src, put.Dst = mesi.MsgPutE, t.pa, x.agent, mesi.DirID
	x.fabric.Send(put)
	x.freeTxns = append(x.freeTxns, t)
}

// install places a host-fetched line in the array.
func (x *L1X) install(va uint64, pid mem.PID, pa mem.PAddr, ver uint64) *cache.Line {
	v := x.pickVictim(va)
	if v == nil {
		return nil
	}
	x.evictLine(v)
	x.arr.Fill(v, va, pid)
	x.access()
	v.State = cache.Exclusive
	v.PAddr = pa
	v.Ver = ver
	if prev, dup := x.rmap.Insert(pa, ReversePointer{VAddr: mem.VAddr(va), PID: pid}); dup {
		// Synonym: only one virtual alias may live in the tile (appendix).
		if old := x.arr.Peek(uint64(prev.VAddr.LineAddr())); old != nil && old.PAddr == pa {
			x.evictNoNotice(old)
		}
		x.cSynEvict.Inc()
	}
	return v
}

// pickVictim avoids lines with live leases, open write epochs, or pending
// transactions — evicting a leased line would break the GTIME contract.
func (x *L1X) pickVictim(va uint64) *cache.Line {
	now := x.eng.Now()
	for i := 0; i < x.arr.Params().Ways; i++ {
		v := x.arr.Victim(va)
		if !v.Valid {
			return v
		}
		if x.mshr.Slot(v.Addr) < 0 && !v.WLock && v.GTime <= now {
			return v
		}
		x.arr.Touch(v)
	}
	return nil
}

// evictLine pushes a victim back to the host: PutM when dirty, otherwise an
// explicit eviction notice (the tile never drops silently — the directory
// keeps perfect information, Section 3.2).
func (x *L1X) evictLine(v *cache.Line) {
	if !v.Valid {
		return
	}
	x.cEvictions.Inc()
	x.rmap.Remove(v.PAddr)
	x.holder[x.arr.SlotOf(v.Addr, v)] = holderAbsent
	put := x.mesiPool.Get()
	if v.Dirty {
		x.evictPut(v.PAddr, evictBuf{ver: v.Ver, dirty: true})
		put.Type, put.Addr, put.Src, put.Dst, put.Ver =
			mesi.MsgPutM, v.PAddr, x.agent, mesi.DirID, v.Ver
	} else {
		x.evictPut(v.PAddr, evictBuf{ver: v.Ver})
		put.Type, put.Addr, put.Src, put.Dst = mesi.MsgPutE, v.PAddr, x.agent, mesi.DirID
	}
	x.fabric.Send(put)
	*v = cache.Line{}
}

// evictNoNotice drops a synonym duplicate, writing back dirty data.
func (x *L1X) evictNoNotice(v *cache.Line) {
	if v.Dirty {
		put := x.mesiPool.Get()
		put.Type, put.Addr, put.Src, put.Dst, put.Ver =
			mesi.MsgPutM, v.PAddr, x.agent, mesi.DirID, v.Ver
		x.fabric.Send(put)
	}
	x.rmap.Remove(v.PAddr)
	x.holder[x.arr.SlotOf(v.Addr, v)] = holderAbsent
	*v = cache.Line{}
}

// hostInvalidate answers a directory invalidation (a DMA write to a line
// the tile may own). Like a host forward, the response waits until every
// L0X lease has lapsed and any write epoch has drained; the line is then
// dropped and the InvAck returns its version so the directory can merge
// the tile's stores before committing the DMA data. Consumes m.
func (x *L1X) hostInvalidate(m *mesi.Msg) {
	pa := m.Addr.LineAddr()
	ptr, ok := x.rmap.Lookup(pa)
	if !ok {
		// Not resident: either never cached here, or an eviction is in
		// flight — the buffered copy still carries the version the
		// directory must not lose.
		var buf evictBuf
		if i := x.evictFind(pa); i >= 0 {
			buf = x.evict[i].evictBuf
		}
		x.invAckHost(m, buf.ver, buf.dirty)
		return
	}
	x.tryInvalidate(m, ptr, true)
}

// tryInvalidate drops an invalidated line once its leases have lapsed
// (the Inv counterpart of tryRelinquish).
func (x *L1X) tryInvalidate(m *mesi.Msg, ptr ReversePointer, first bool) {
	pa := m.Addr.LineAddr()
	va := uint64(ptr.VAddr.LineAddr())
	l := x.arr.LookupPID(va, ptr.PID)
	if l == nil {
		var buf evictBuf
		if i := x.evictFind(pa); i >= 0 {
			buf = x.evict[i].evictBuf
		}
		x.invAckHost(m, buf.ver, buf.dirty)
		return
	}
	now := x.eng.Now()
	if l.GTime > now || l.WLock {
		if first {
			x.cFwdStalled.Inc()
			if x.tracer != nil {
				x.emit(ptrace.FwdParked, va, fmt.Sprintf("inv until GTIME %d", l.GTime))
			}
		}
		wake := l.GTime + x.cfg.LeaseSlack
		if wake <= now {
			wake = now + x.cfg.LeaseSlack
		}
		x.eng.ScheduleAt(wake, func(uint64) { x.tryInvalidate(m, ptr, false) })
		return
	}
	x.access()
	ver, dirty := l.Ver, l.Dirty
	x.rmap.Remove(pa)
	x.holder[x.arr.SlotOf(va, l)] = holderAbsent
	*l = cache.Line{}
	x.invAckHost(m, ver, dirty)
}

// invAckHost sends the invalidation ack (with the dropped line's version,
// if any) and releases the consumed Inv request.
func (x *L1X) invAckHost(m *mesi.Msg, ver uint64, dirty bool) {
	ack := x.mesiPool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = mesi.MsgInvAck, m.Addr, x.agent, m.Requester
	ack.Dirty, ack.Ver = dirty, ver
	x.fabric.Send(ack)
	x.mesiPool.Put(m)
}

// hostForward answers a MESI Fwd from the host directory. The AX-RMAP
// resolves the physical address to the virtually-indexed line; the response
// stalls in the writeback buffer until GTIME expires and any write epoch
// has drained (Figure 4, right).
func (x *L1X) hostForward(m *mesi.Msg) {
	pa := m.Addr.LineAddr()
	x.cHostFwds.Inc()
	x.emit(ptrace.HostFwdIn, uint64(pa), m.Type.String())
	ptr, ok := x.rmap.Lookup(pa)
	if !ok {
		if i := x.evictFind(pa); i >= 0 {
			// Eviction raced with the forward: serve from the buffer.
			buf := x.evict[i].evictBuf
			x.evictRemove(i)
			x.respondHost(m, buf.ver, buf.dirty)
			return
		}
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "host fwd for unmapped line %s", m)
	}
	x.tryRelinquish(m, ptr, true)
}

// tryRelinquish answers a host forward once the line's leases have lapsed.
// Retries reuse the already-resolved pointer (no extra RMAP lookups).
func (x *L1X) tryRelinquish(m *mesi.Msg, ptr ReversePointer, first bool) {
	pa := m.Addr.LineAddr()
	va := uint64(ptr.VAddr.LineAddr())
	l := x.arr.LookupPID(va, ptr.PID)
	if l == nil {
		if i := x.evictFind(pa); i >= 0 {
			buf := x.evict[i].evictBuf
			x.evictRemove(i)
			x.respondHost(m, buf.ver, buf.dirty)
			return
		}
		sim.Failf(x.name, x.eng.Now(), x.DumpState(), "rmap points at absent line %s", m)
	}
	now := x.eng.Now()
	if l.GTime > now || l.WLock {
		// L0X leases outstanding: park the response until they lapse. The
		// L1X alone absorbs the stall; no message ever disturbs an L0X
		// (Figure 4, right: the writeback buffer).
		if first {
			x.cFwdStalled.Inc()
			if x.tracer != nil {
				x.emit(ptrace.FwdParked, va, fmt.Sprintf("until GTIME %d", l.GTime))
			}
		}
		wake := l.GTime + x.cfg.LeaseSlack
		if wake <= now {
			wake = now + x.cfg.LeaseSlack
		}
		x.eng.ScheduleAt(wake, func(uint64) { x.tryRelinquish(m, ptr, false) })
		return
	}
	x.access()
	ver, dirty := l.Ver, l.Dirty
	x.rmap.Remove(pa)
	x.holder[x.arr.SlotOf(va, l)] = holderAbsent
	*l = cache.Line{}
	x.respondHost(m, ver, dirty)
}

// respondHost relinquishes a line to the host requester: data directly to
// the requester, an eviction notice (OwnerAck, dropped) to the directory.
// It consumes (releases) the forwarded request m.
func (x *L1X) respondHost(m *mesi.Msg, ver uint64, dirty bool) {
	if x.tracer != nil {
		x.emit(ptrace.Relinquish, uint64(m.Addr.LineAddr()),
			fmt.Sprintf("to agent%d dirty=%v", m.Requester, dirty))
	}
	dt := mesi.MsgData
	if m.Type == mesi.MsgFwdGetM {
		dt = mesi.MsgDataM
	}
	data := x.mesiPool.Get()
	data.Type, data.Addr, data.Src, data.Dst, data.Ver = dt, m.Addr, x.agent, m.Requester, ver
	x.fabric.Send(data)
	ack := x.mesiPool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = mesi.MsgOwnerAck, m.Addr, x.agent, mesi.DirID
	ack.Dirty, ack.Dropped, ack.Ver = dirty, true, ver
	x.fabric.Send(ack)
	x.mesiPool.Put(m)
}

// FlushAll writes every dirty line back to the host and invalidates the
// tile (end of workload).
func (x *L1X) FlushAll() {
	x.arr.ForEach(func(l *cache.Line) {
		x.evictLine(l)
	})
}

// Outstanding reports in-flight host fetches plus eviction buffers.
func (x *L1X) Outstanding() int { return x.mshr.Len() + len(x.evict) }

// DumpState summarizes in-flight host fetches, stalled lease requests, and
// eviction buffers for watchdog/failure diagnostics. Empty when idle.
func (x *L1X) DumpState() string {
	stalled := 0
	for slot := range x.waiting {
		if len(x.waiting[slot]) > 0 {
			stalled++
		}
	}
	if x.mshr.Len() == 0 && stalled == 0 && len(x.evict) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d host fetches, %d wlock queues, %d evict buffers, %d/%d MSHRs\n",
		x.name, x.mshr.Len(), stalled, len(x.evict), x.mshr.Len(), x.cfg.MSHRs)
	for _, va := range x.mshr.Outstanding() {
		t := x.txns[x.mshr.Slot(va)]
		fmt.Fprintf(&b, "  fetch va=%#x pa=%#x arrived=%v acks=%d/%d waiters=%d\n",
			t.va, uint64(t.pa), t.arrived, t.acksGot, t.acksNeeded, len(t.waiters))
	}
	type stall struct {
		va uint64
		n  int
	}
	var stalls []stall
	for slot := range x.waiting {
		if n := len(x.waiting[slot]); n > 0 {
			stalls = append(stalls, stall{x.arr.LineAt(slot).Addr, n})
		}
	}
	sort.Slice(stalls, func(i, j int) bool { return stalls[i].va < stalls[j].va })
	for _, s := range stalls {
		fmt.Fprintf(&b, "  wlock-stalled va=%#x waiters=%d\n", s.va, s.n)
	}
	return b.String()
}

// Peek exposes a line for tests.
func (x *L1X) Peek(va mem.VAddr, pid mem.PID) *cache.Line {
	l := x.arr.Peek(uint64(va.LineAddr()))
	if l != nil && l.PID != pid {
		return nil
	}
	return l
}
