package acc

import (
	"errors"
	"strings"
	"testing"

	"fusion/internal/energy"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// TestWatchdogCatchesDroppedGrant wires an L0X to an uplink that silently
// drops every message — the deterministic stand-in for a wedged L1X. The
// miss never resolves; the watchdog must halt the run and name the stuck
// cache in its dump.
func TestWatchdogCatchesDroppedGrant(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	cfg := SmallTileConfig(1, model)

	l0 := NewL0X(eng, 0, 1, cfg.L0X, mt, st)
	blackhole := interconnect.NewLink(eng, interconnect.Config{
		Name: "link.dead", Latency: 2,
		Deliver: func(interconnect.Message) {}, // the GetL vanishes here
	})
	l0.ConnectL1X(blackhole)

	wd := sim.NewWatchdog(eng, 100)
	wd.AddDump("l0x.0", l0.DumpState)

	if ok := l0.Access(mem.Load, 0x1000, func(uint64) {}); !ok {
		t.Fatal("access rejected")
	}
	_, done, err := eng.RunE(100_000, nil)
	if done {
		t.Fatal("run completed despite the dropped grant")
	}
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("watchdog did not fire: err=%v", err)
	}
	if pe.Component != "watchdog" {
		t.Fatalf("component = %q, want watchdog", pe.Component)
	}
	if !strings.Contains(pe.State, "l0x.0") || !strings.Contains(pe.State, "0x1000") {
		t.Errorf("dump does not name the stuck cache and line:\n%s", pe.State)
	}
	// The hang is caught promptly: within the window plus slack, not after
	// burning the full cycle budget.
	if pe.Cycle > 1000 {
		t.Errorf("watchdog fired at cycle %d, want shortly after the %d-cycle window",
			pe.Cycle, wd.Window())
	}
}

// TestL0XUnexpectedMessageIsProtocolError sends the L0X a message type it
// never receives; the failure must surface through RunE as a structured
// ProtocolError, not a panic.
func TestL0XUnexpectedMessageIsProtocolError(t *testing.T) {
	h := newHarness(t, 1, false)
	l0 := h.tile.L0Xs[0]
	h.eng.Schedule(1, func(uint64) {
		l0.Handle(&TileMsg{Type: MsgGetL, Addr: 0x40, PID: 1})
	})
	_, _, err := h.eng.RunE(100, nil)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Component != "l0x.0" {
		t.Errorf("component = %q, want l0x.0", pe.Component)
	}
	if !strings.Contains(pe.Message, "unexpected") {
		t.Errorf("message = %q, want an 'unexpected' diagnosis", pe.Message)
	}
}

// TestL1XForeignMessageIsProtocolError delivers a non-TileMsg to the L1X's
// tile-side handler.
type bogusMsg struct{}

func (bogusMsg) Bytes() int { return 8 }

func TestL1XForeignMessageIsProtocolError(t *testing.T) {
	h := newHarness(t, 1, false)
	h.eng.Schedule(1, func(uint64) {
		h.tile.L1X.HandleTile(bogusMsg{})
	})
	_, _, err := h.eng.RunE(100, nil)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Component != "l1x" {
		t.Errorf("component = %q, want l1x", pe.Component)
	}
}

// TestDumpStateNamesOpenTransactions exercises the diagnostic surface the
// watchdog dump is built from.
func TestDumpStateNamesOpenTransactions(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	cfg := SmallTileConfig(1, model)
	l0 := NewL0X(eng, 0, 1, cfg.L0X, mt, st)
	l0.ConnectL1X(interconnect.NewLink(eng, interconnect.Config{
		Name: "link.dead", Latency: 2, Deliver: func(interconnect.Message) {}}))

	if got := l0.DumpState(); got != "" {
		t.Errorf("idle DumpState = %q, want empty", got)
	}
	l0.Access(mem.Store, 0x2000, func(uint64) {})
	dump := l0.DumpState()
	if !strings.Contains(dump, "GetW") || !strings.Contains(dump, "0x2000") {
		t.Errorf("DumpState missing the open store txn: %q", dump)
	}
}
