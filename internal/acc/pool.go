package acc

import "fusion/internal/sim"

// tileMsgPoison overwrites a released message's Type so use-after-release is
// caught by the receiving controller's unexpected-message diagnostics.
const tileMsgPoison TileMsgType = 0xFD

// TileMsgPool is a free list of intra-tile messages. Each controller (every
// L0X and the L1X) owns one: it draws the messages it creates from its own
// pool and releases the messages it consumes into it. Messages migrate
// between pools — a GetL allocated by an L0X is released by the L1X — which
// is fine: the engine is single-threaded and a pooled TileMsg carries no
// owner state. The double-release guard (one flag check) is always on; see
// mesi.MsgPool for the same design on the host fabric.
type TileMsgPool struct {
	free []*TileMsg
}

// Get returns a zeroed message. A nil pool degrades to plain allocation.
func (p *TileMsgPool) Get() *TileMsg {
	if p == nil || len(p.free) == 0 {
		return &TileMsg{}
	}
	n := len(p.free) - 1
	m := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	*m = TileMsg{}
	return m
}

// Put releases m for reuse, failing loudly (sim.Failf) on a double release
// and poisoning the Type so retained aliases are caught.
func (p *TileMsgPool) Put(m *TileMsg) {
	if m.pooled {
		sim.Failf("acc.pool", 0, "", "double release of %s", m)
	}
	m.pooled = true
	m.Type = tileMsgPoison
	if p == nil {
		return
	}
	p.free = append(p.free, m)
}
