package acc

import (
	"fmt"
	"strings"

	"fusion/internal/cache"
	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/obs"
	"fusion/internal/ptrace"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/vm"
)

// TileConfig assembles a FUSION accelerator tile.
type TileConfig struct {
	NumAXCs int
	PID     mem.PID
	Agent   mesi.AgentID // the tile's MESI agent ID on the host fabric
	// StatPrefix distinguishes multiple tiles' counters ("" for the first
	// tile keeps the canonical names; "t1." etc. for additional tiles).
	StatPrefix string

	L0X L0XConfig
	L1X L1XConfig

	// Link parameters within the tile (Table 2: 0.4 pJ/B L0X<->L1X; the
	// direct forwarding path costs 0.1 pJ/B, Section 5.4).
	L0XL1XLatency uint64
	FwdLatency    uint64
	// EnableDx creates the direct L0X<->L0X links (FUSION-Dx).
	EnableDx bool

	TLBEntries int
	TLBWalkLat uint64

	// Injector, when non-nil, perturbs every intra-tile link with the
	// deterministic order-preserving faults of its plan.
	Injector *faults.Injector
}

// SmallTileConfig is the paper's baseline: 4 KB L0X, 64 KB L1X.
func SmallTileConfig(numAXCs int, model energy.Model) TileConfig {
	return TileConfig{
		NumAXCs: numAXCs,
		PID:     1,
		L0X: L0XConfig{
			Cache:      cache.Params{SizeBytes: 4 << 10, Ways: 4, LineBytes: mem.LineBytes},
			MSHRs:      8,
			HitLatency: 1,
			LeaseTime:  500,
			AccessPJ:   model.WithTimestamp(model.L0XAccessSmall),
		},
		L1X: L1XConfig{
			Cache:     cache.Params{SizeBytes: 64 << 10, Ways: 8, LineBytes: mem.LineBytes},
			Banks:     16,
			MSHRs:     16,
			AccessLat: 2,
			AccessPJ:  model.L1XAccessSmall,
		},
		L0XL1XLatency: 2,
		FwdLatency:    2,
		TLBEntries:    32,
		TLBWalkLat:    40,
	}
}

// LargeTileConfig is the AXC-Large configuration of Section 5.5: 8 KB L0X
// and a 256 KB L1X with higher access energy and latency.
func LargeTileConfig(numAXCs int, model energy.Model) TileConfig {
	cfg := SmallTileConfig(numAXCs, model)
	cfg.L0X.Cache.SizeBytes = 8 << 10
	cfg.L0X.AccessPJ = model.WithTimestamp(model.L0XAccessLarge)
	cfg.L1X.Cache.SizeBytes = 256 << 10
	cfg.L1X.AccessPJ = model.L1XAccessLarge
	cfg.L1X.AccessLat = 4 // "2 cycles more than L1X-Small"
	return cfg
}

// Tile is an assembled FUSION accelerator tile.
type Tile struct {
	L0Xs []*L0X
	L1X  *L1X
	TLB  *vm.TLB
	RMAP *vm.RMAP
}

// rmapAdapter narrows *vm.RMAP to the acc.ReverseMap interface.
type rmapAdapter struct{ r *vm.RMAP }

func (a rmapAdapter) Insert(pa mem.PAddr, ptr ReversePointer) (ReversePointer, bool) {
	prev, dup := a.r.Insert(pa, vm.Pointer{VAddr: ptr.VAddr, PID: ptr.PID})
	return ReversePointer{VAddr: prev.VAddr, PID: prev.PID}, dup
}

func (a rmapAdapter) Lookup(pa mem.PAddr) (ReversePointer, bool) {
	p, ok := a.r.Lookup(pa)
	return ReversePointer{VAddr: p.VAddr, PID: p.PID}, ok
}

func (a rmapAdapter) Remove(pa mem.PAddr) { a.r.Remove(pa) }

// NewTile builds the tile: one L0X per accelerator, the shared L1X, the
// AX-TLB and AX-RMAP, and all intra-tile links. The tile registers as
// cfg.Agent on the host fabric.
func NewTile(eng *sim.Engine, fabric *mesi.Fabric, pt *vm.PageTable,
	cfg TileConfig, model energy.Model, meter *energy.Meter, st *stats.Set) *Tile {

	tlb := vm.NewTLB(cfg.StatPrefix+"axtlb", cfg.TLBEntries, cfg.TLBWalkLat, pt, model, meter, st)
	rmap := vm.NewRMAP(cfg.StatPrefix+"axrmap", model, meter, st)

	// Sub-configs inherit the tile's stat prefix so counters intern with
	// their final names at construction.
	l1cfg := cfg.L1X
	l1cfg.StatPrefix = cfg.StatPrefix
	l0cfg := cfg.L0X
	l0cfg.StatPrefix = cfg.StatPrefix

	l1x := NewL1X(eng, fabric, cfg.Agent, l1cfg, tlb, rmapAdapter{rmap}, meter, st)

	t := &Tile{L1X: l1x, TLB: tlb, RMAP: rmap}

	for i := 0; i < cfg.NumAXCs; i++ {
		l0 := NewL0X(eng, AXCID(i), cfg.PID, l0cfg, meter, st)
		// Uplink: L0X -> L1X.
		up := interconnect.NewLink(eng, interconnect.Config{
			Name:          fmt.Sprintf("%slink.l0x%d.up", cfg.StatPrefix, i),
			Latency:       cfg.L0XL1XLatency,
			PJPerByte:     model.LinkL0XL1X,
			Meter:         meter,
			MeterCategory: energy.CatLinkTile,
			Stats:         st,
			Deliver:       l1x.HandleTile,
			Injector:      cfg.Injector,
		})
		l0.ConnectL1X(up)
		// Downlink: L1X -> L0X.
		down := interconnect.NewLink(eng, interconnect.Config{
			Name:          fmt.Sprintf("%slink.l0x%d.down", cfg.StatPrefix, i),
			Latency:       cfg.L0XL1XLatency,
			PJPerByte:     model.LinkL0XL1X,
			Meter:         meter,
			MeterCategory: energy.CatLinkTile,
			Stats:         st,
			Deliver:       l0.Handle,
			Injector:      cfg.Injector,
		})
		l1x.ConnectL0X(AXCID(i), down)
		t.L0Xs = append(t.L0Xs, l0)
	}

	if cfg.EnableDx {
		for i := 0; i < cfg.NumAXCs; i++ {
			for j := 0; j < cfg.NumAXCs; j++ {
				if i == j {
					continue
				}
				dst := t.L0Xs[j]
				fwd := interconnect.NewLink(eng, interconnect.Config{
					Name:          fmt.Sprintf("%slink.fwd.%d.%d", cfg.StatPrefix, i, j),
					Latency:       cfg.FwdLatency,
					PJPerByte:     model.LinkL0XL0X,
					Meter:         meter,
					MeterCategory: energy.CatLinkFwd,
					Stats:         st,
					Deliver:       dst.Handle,
					Injector:      cfg.Injector,
				})
				t.L0Xs[i].ConnectPeer(AXCID(j), fwd)
			}
		}
	}
	return t
}

// SetTracer attaches a protocol tracer to every controller in the tile.
func (t *Tile) SetTracer(tr ptrace.Tracer) {
	t.L1X.SetTracer(tr)
	for _, l0 := range t.L0Xs {
		l0.SetTracer(tr)
	}
}

// SetObserver attaches a litmus observer to every controller in the tile
// (nil disables observation).
func (t *Tile) SetObserver(o obs.Observer) {
	t.L1X.SetObserver(o)
	for _, l0 := range t.L0Xs {
		l0.SetObserver(o)
	}
}

// SetMutations arms test-only protocol mutations on every controller in
// the tile (nil disables them; see Mutations).
func (t *Tile) SetMutations(m *Mutations) {
	t.L1X.SetMutations(m)
	for _, l0 := range t.L0Xs {
		l0.SetMutations(m)
	}
}

// Drain flushes every L0X (invocation end for all accelerators).
func (t *Tile) Drain() {
	for _, l0 := range t.L0Xs {
		l0.Drain()
	}
}

// DumpState concatenates the tile controllers' diagnostics (watchdog dumps).
func (t *Tile) DumpState() string {
	var b strings.Builder
	b.WriteString(t.L1X.DumpState())
	for _, l0 := range t.L0Xs {
		b.WriteString(l0.DumpState())
	}
	return b.String()
}

// Outstanding sums in-flight transactions across the tile.
func (t *Tile) Outstanding() int {
	n := t.L1X.Outstanding()
	for _, l0 := range t.L0Xs {
		n += l0.Outstanding()
	}
	return n
}
