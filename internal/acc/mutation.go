package acc

// Mutations are deliberate, test-only protocol breakers used by the litmus
// mutation-kill validator (internal/litmus): each one models a specific
// coherence bug and the harness must report a visibility violation when it
// is enabled. The pointer is nil — and every field false — in all real
// runs; the hot path pays only a nil check.
type Mutations struct {
	// SkipSelfInvalidate serves L0X load hits from lines whose lease has
	// lapsed instead of self-invalidating and re-requesting — the classic
	// self-invalidation bug: a reader keeps consuming a value past the
	// expiry that made the writer's update globally visible.
	SkipSelfInvalidate bool

	// StaleForward pushes a Dx forward carrying the line's previous
	// version, modeling a forwarding path that drops the producer's last
	// store. (Dropping the whole MsgFwdData message would leave the write
	// epoch open at the L1X forever and trip the forward-progress watchdog
	// — a liveness failure, not the silent value corruption this mutant
	// exists to prove the checker catches.)
	StaleForward bool

	// LostStore drops the version increment of every L0X store hit: the
	// store retires but its write never lands in the modeled payload.
	LostStore bool

	// IgnoreDeadline makes the HYDRA cacheability filter skip its deadline
	// term: fills requested after the task deadline allocate normally
	// instead of bypassing. The deadline-bypass litmus case's counter
	// floor kills it.
	IgnoreDeadline bool
}
