package acc

// Edge-case and interaction tests for the ACC protocol beyond the core
// flows in acc_test.go: PID isolation, eviction-during-epoch, host stores
// stealing tile lines, cross-AXC miss merging, and interleaved host/tile
// traffic checked against sequential semantics.

import (
	"math/rand"
	"testing"

	"fusion/internal/cache"
	"fusion/internal/mem"
	"fusion/internal/mesi"
)

func TestPIDIsolationInTile(t *testing.T) {
	// Two processes' lines at the same virtual address must not alias in
	// the PID-tagged L1X. Build a harness whose L0X PIDs differ.
	h := newHarness(t, 2, false)
	// Rewire AXC1's L0X to PID 2 (the tile normally shares one PID).
	h.tile.L0Xs[1].pid = 2

	h.axcDo(t, 0, mem.Store, 0x4000) // PID 1 writes v1
	h.tile.L0Xs[0].Drain()
	h.advance(20)
	h.axcDo(t, 1, mem.Store, 0x4000) // PID 2 writes its own copy
	h.tile.L0Xs[1].Drain()
	h.advance(20)

	l1 := h.tile.L1X.Peek(0x4000, 1)
	l2 := h.tile.L1X.Peek(0x4000, 2)
	if l1 == nil && l2 == nil {
		t.Fatal("no lines cached")
	}
	// The two processes map to different physical frames.
	pa1 := h.pt.Translate(1, 0x4000)
	pa2 := h.pt.Translate(2, 0x4000)
	if pa1.PageNumber() == pa2.PageNumber() {
		t.Fatal("PIDs share a physical frame")
	}
}

func TestDirtyEvictionDuringEpochClosesLock(t *testing.T) {
	// Fill one L0X set beyond capacity with dirty lines under live epochs:
	// the evictions must write back early and release the L1X locks so a
	// second accelerator can proceed.
	h := newHarness(t, 2, false)
	// L0X: 4KB/4-way/64B = 16 sets; same-set stride = 16*64 = 1024.
	for i := 0; i < 6; i++ {
		h.axcDo(t, 0, mem.Store, mem.VAddr(0x8000+i*1024))
	}
	// Two of the six were evicted (4 ways); their L1X lines must be
	// unlocked and readable by AXC1 without waiting a full lease.
	start := h.eng.Now()
	h.axcDo(t, 1, mem.Load, 0x8000) // oldest line, evicted first
	if d := h.eng.Now() - start; d > 120 {
		t.Fatalf("read of early-evicted line took %d cycles; its epoch should have closed at eviction", d)
	}
	l0 := h.tile.L0Xs[1].Peek(0x8000)
	if l0 == nil || l0.Ver != 1 {
		t.Fatalf("reader got %+v, want v1", l0)
	}
}

func TestHostStoreStealsTileLine(t *testing.T) {
	// The host writing a line the tile caches triggers FwdGetM -> the tile
	// relinquishes (MEI), and a subsequent tile access refetches the new
	// version.
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Store, 0x5000) // tile v1
	h.advance(700)                   // epoch lapses, WB lands in L1X
	h.hostDo(t, mem.Store, 0x5000)   // host takes M, writes v2
	if h.tile.L1X.Peek(0x5000, 1) != nil {
		t.Fatal("tile retained the line after FwdGetM")
	}
	h.axcDo(t, 0, mem.Load, 0x5000) // tile refetches: host forwarded v2
	l0 := h.tile.L0Xs[0].Peek(0x5000)
	if l0 == nil || l0.Ver != 2 {
		t.Fatalf("tile reloaded %+v, want v2", l0)
	}
}

func TestTwoL0XMissesMergeAtL1X(t *testing.T) {
	// Two accelerators missing on the same line concurrently: one host
	// fetch, two grants.
	h := newHarness(t, 2, false)
	done := 0
	h.tile.L0Xs[0].Access(mem.Load, 0x6000, func(uint64) { done++ })
	h.tile.L0Xs[1].Access(mem.Load, 0x6000, func(uint64) { done++ })
	h.run(t, 100000, func() bool { return done == 2 })
	if got := h.st.Get("dir.GetM"); got != 1 {
		t.Fatalf("host fetches = %d, want 1 (merged at the L1X MSHR)", got)
	}
	if got := h.st.Get("l1x.grants_read"); got != 2 {
		t.Fatalf("grants = %d, want 2", got)
	}
}

func TestWriteThroughGolden(t *testing.T) {
	// Write-through mode must preserve data correctness end to end.
	h := newHarness(t, 2, false)
	for _, l0 := range h.tile.L0Xs {
		l0.cfg.WriteThrough = true
	}
	rng := rand.New(rand.NewSource(23))
	golden := map[uint64]uint64{}
	lines := []mem.VAddr{0x0, 0x1000}
	for i := 0; i < 80; i++ {
		axc := rng.Intn(2)
		va := lines[rng.Intn(2)]
		h.axcDo(t, axc, mem.Store, va)
		golden[uint64(va)]++
		if rng.Intn(6) == 0 {
			h.tile.L0Xs[axc].Drain()
		}
	}
	h.tile.Drain()
	h.run(t, 400000, func() bool { return h.tile.Outstanding() == 0 })
	h.advance(2000) // epochs lapse
	h.tile.L1X.FlushAll()
	h.run(t, 400000, func() bool { return h.tile.Outstanding() == 0 })
	for _, va := range lines {
		pa := h.pt.Translate(1, va).LineAddr()
		if got := h.dir.Version(pa); got != golden[uint64(va)] {
			t.Errorf("write-through: line %#x v%d, golden v%d", uint64(va), got, golden[uint64(va)])
		}
	}
}

func TestStalledWriterGetsFullLease(t *testing.T) {
	// A GetW parked behind a foreign read lease must still receive a
	// full-length epoch once granted (leases anchor at grant time).
	h := newHarness(t, 2, false)
	h.axcDo(t, 0, mem.Load, 0x7000) // read lease ~500 cycles
	var grantedAt uint64
	fired := false
	h.tile.L0Xs[1].Access(mem.Store, 0x7000, func(now uint64) {
		grantedAt = now
		fired = true
	})
	h.run(t, 10000, func() bool { return fired })
	l := h.tile.L0Xs[1].Peek(0x7000)
	if l == nil {
		t.Fatal("writer has no line")
	}
	if l.WTime <= grantedAt || l.WTime-grantedAt < 400 {
		t.Fatalf("write epoch [%d..%d] not a full lease after the stall", grantedAt, l.WTime)
	}
}

func TestInterleavedHostAndTileSequential(t *testing.T) {
	// Serialized alternation of host and accelerator accesses to the same
	// lines must behave exactly like sequential execution — the MESI/ACC
	// boundary crossing in both directions, repeatedly.
	h := newHarness(t, 2, false)
	rng := rand.New(rand.NewSource(31))
	golden := map[uint64]uint64{}
	lines := []mem.VAddr{0x0, 0x1000, 0x2000}
	for i := 0; i < 120; i++ {
		va := lines[rng.Intn(len(lines))]
		isStore := rng.Intn(2) == 0
		kind := mem.Load
		if isStore {
			kind = mem.Store
			golden[uint64(va)]++
		}
		if rng.Intn(3) == 0 {
			h.hostDo(t, kind, va)
		} else {
			axc := rng.Intn(2)
			h.axcDo(t, axc, kind, va)
			if rng.Intn(4) == 0 {
				h.tile.L0Xs[axc].Drain()
			}
		}
		// Leases must lapse often enough that host stores don't stall the
		// run away; advance occasionally.
		if rng.Intn(10) == 0 {
			h.advance(200)
		}
	}
	h.tile.Drain()
	h.run(t, 500000, func() bool { return h.tile.Outstanding() == 0 })
	h.advance(1600)
	h.tile.L1X.FlushAll()
	h.run(t, 500000, func() bool { return h.tile.Outstanding() == 0 })
	h.host.FlushAll()
	h.run(t, 500000, func() bool { return h.host.Outstanding() == 0 })
	for _, va := range lines {
		pa := h.pt.Translate(1, va).LineAddr()
		if got := h.dir.Version(pa); got != golden[uint64(va)] {
			t.Errorf("line %#x: v%d, golden v%d", uint64(va), got, golden[uint64(va)])
		}
	}
}

func TestL0XStoreMergedBehindReadMissUpgrades(t *testing.T) {
	// A store arriving while a GetL is outstanding must end with a write
	// epoch and the store applied.
	h := newHarness(t, 1, false)
	l0 := h.tile.L0Xs[0]
	loads, stores := 0, 0
	l0.Access(mem.Load, 0x9000, func(uint64) { loads++ })
	l0.Access(mem.Store, 0x9000, func(uint64) { stores++ }) // merges into the txn
	h.run(t, 100000, func() bool { return loads == 1 && stores == 1 })
	l := l0.Peek(0x9000)
	if l == nil || l.Ver != 1 || !l.Dirty {
		t.Fatalf("line = %+v, want dirty v1 after merged upgrade", l)
	}
}

func TestHostForwardToCleanTileLine(t *testing.T) {
	// A host read of a line the tile holds CLEAN (fetched, never written)
	// relinquishes without a dirty writeback.
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Load, 0xa000)
	h.advance(700) // lease lapses
	h.hostDo(t, mem.Load, 0xa000)
	pa := h.pt.Translate(1, 0xa000).LineAddr()
	if l := h.host.Peek(pa); l == nil {
		t.Fatal("host did not get the line")
	}
	state, owner, _ := h.dir.Sharers(pa)
	if state == "E" && owner == tileAgent {
		t.Fatal("tile still owns the line after relinquish")
	}
}

func TestL1XPeekRespectsState(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Load, 0xb000)
	l := h.tile.L1X.Peek(0xb000, 1)
	if l == nil || l.State != cache.Exclusive {
		t.Fatalf("L1X line = %+v, want Exclusive (MEI: always E/M)", l)
	}
}

// A tiny helper exercising the tile's drain with a foreign message type
// panics (defensive programming check).
func TestL0XForeignMessagePanics(t *testing.T) {
	h := newHarness(t, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign message did not panic")
		}
	}()
	h.tile.L0Xs[0].Handle(&mesi.Msg{})
}

// Paranoid-mode sweep: run traffic and check tile invariants every few
// cycles throughout.
func TestInvariantsHoldUnderTraffic(t *testing.T) {
	h := newHarness(t, 3, true)
	h.tile.L0Xs[0].MarkForward(0x8000, 1)
	rng := rand.New(rand.NewSource(71))
	lines := []mem.VAddr{0x0, 0x1000, 0x8000, 0x9000}
	pending := 0
	steps := 0
	check := func() {
		if steps%16 == 0 {
			if bad := h.tile.CheckInvariants(h.eng.Now()); len(bad) > 0 {
				t.Fatalf("cycle %d: %v", h.eng.Now(), bad)
			}
		}
		steps++
	}
	for i := 0; i < 150; i++ {
		axc := rng.Intn(3)
		va := lines[rng.Intn(len(lines))]
		kind := mem.Load
		if rng.Intn(2) == 0 {
			kind = mem.Store
		}
		pending++
		for !h.tile.L0Xs[axc].Access(kind, va, func(uint64) { pending-- }) {
			h.eng.Step()
			check()
		}
		for j := rng.Intn(12); j > 0; j-- {
			h.eng.Step()
			check()
		}
		if rng.Intn(5) == 0 {
			h.tile.L0Xs[axc].Drain()
		}
	}
	h.run(t, 500000, func() bool { check(); return pending == 0 })
	if bad := h.tile.CheckInvariants(h.eng.Now()); len(bad) > 0 {
		t.Fatalf("final: %v", bad)
	}
}
