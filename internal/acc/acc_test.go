package acc

import (
	"math/rand"
	"testing"

	"fusion/internal/cache"
	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/mesi"
	"fusion/internal/sim"
	"fusion/internal/stats"
	"fusion/internal/vm"
)

const tileAgent mesi.AgentID = 2

type harness struct {
	eng  *sim.Engine
	fab  *mesi.Fabric
	dir  *mesi.Directory
	tile *Tile
	host *mesi.Client
	pt   *vm.PageTable
	st   *stats.Set
	mt   *energy.Meter
}

func newHarness(t *testing.T, numAXCs int, dx bool) *harness {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := mesi.NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	dir := mesi.NewDirectory(fab, mesi.DefaultDirConfig(), d, model, mt, st)
	dir.TileAgent = tileAgent
	host := mesi.NewClient(fab, 1, mesi.DefaultHostL1Config(model), model, mt, st)
	pt := vm.NewPageTable()
	cfg := SmallTileConfig(numAXCs, model)
	cfg.Agent = tileAgent
	cfg.EnableDx = dx
	tile := NewTile(eng, fab, pt, cfg, model, mt, st)
	return &harness{eng: eng, fab: fab, dir: dir, tile: tile, host: host,
		pt: pt, st: st, mt: mt}
}

func (h *harness) run(t *testing.T, max uint64, pred func() bool) {
	t.Helper()
	if _, done := h.eng.Run(max, pred); !done {
		t.Fatalf("did not converge in %d cycles (now=%d)", max, h.eng.Now())
	}
}

func (h *harness) axcDo(t *testing.T, axc int, kind mem.AccessKind, va mem.VAddr) {
	t.Helper()
	fired := false
	l0 := h.tile.L0Xs[axc]
	if !l0.Access(kind, va, func(uint64) { fired = true }) {
		t.Fatal("L0X MSHR full on idle cache")
	}
	h.run(t, 200000, func() bool { return fired })
}

func (h *harness) hostDo(t *testing.T, kind mem.AccessKind, va mem.VAddr) {
	t.Helper()
	pa := h.pt.Translate(1, va)
	fired := false
	if !h.host.Access(kind, pa.LineAddr(), func(uint64) { fired = true }) {
		t.Fatal("host MSHR full")
	}
	h.run(t, 200000, func() bool { return fired })
}

func (h *harness) advance(cycles uint64) {
	for i := uint64(0); i < cycles; i++ {
		h.eng.Step()
	}
}

func TestColdLoadThroughFullStack(t *testing.T) {
	h := newHarness(t, 2, false)
	h.axcDo(t, 0, mem.Load, 0x1000)

	l0 := h.tile.L0Xs[0].Peek(0x1000)
	if l0 == nil || l0.LTime <= h.eng.Now() {
		t.Fatalf("L0X line = %+v, want live lease", l0)
	}
	l1 := h.tile.L1X.Peek(0x1000, 1)
	if l1 == nil || l1.State != cache.Exclusive {
		t.Fatalf("L1X line = %+v, want Exclusive", l1)
	}
	// The tile appears as the exclusive MESI owner.
	pa := h.pt.Translate(1, 0x1000).LineAddr()
	state, owner, _ := h.dir.Sharers(pa)
	if state != "E" || owner != tileAgent {
		t.Fatalf("dir = %s/%d, want E/tile", state, owner)
	}
	// Exactly one AX-TLB lookup (the miss path), RMAP populated.
	if h.st.Get("axtlb.lookups") != 1 {
		t.Fatalf("axtlb.lookups = %d, want 1", h.st.Get("axtlb.lookups"))
	}
	if h.tile.RMAP.Len() != 1 {
		t.Fatalf("rmap len = %d, want 1", h.tile.RMAP.Len())
	}
}

func TestL0XHitNoTileTraffic(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Load, 0x1000)
	l1acc := h.st.Get("l1x.accesses")
	h.axcDo(t, 0, mem.Load, 0x1010) // same line, live lease
	if h.st.Get("l1x.accesses") != l1acc {
		t.Fatal("L0X hit reached the L1X")
	}
	if h.st.Get("l0x.0.hits") != 1 {
		t.Fatalf("l0x hits = %d, want 1", h.st.Get("l0x.0.hits"))
	}
}

func TestLeaseExpirySelfInvalidates(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Load, 0x2000)
	h.advance(600) // default lease is 500
	misses := h.st.Get("l0x.0.misses")
	h.axcDo(t, 0, mem.Load, 0x2000)
	if h.st.Get("l0x.0.misses") != misses+1 {
		t.Fatal("expired lease did not miss")
	}
	if h.st.Get("l0x.0.self_invalidations") == 0 {
		t.Fatal("no self-invalidation recorded")
	}
	// Crucially, zero invalidation messages were needed.
	if h.st.Get("l0x.0.invalidations") != 0 {
		t.Fatal("self-invalidation protocol sent invalidations")
	}
}

func TestStoreTakesWriteEpochAndWritesBack(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Store, 0x3000)
	l0 := h.tile.L0Xs[0].Peek(0x3000)
	if l0 == nil || !l0.Dirty || l0.WTime <= h.eng.Now() || l0.Ver != 1 {
		t.Fatalf("L0X line = %+v, want dirty v1 with live epoch", l0)
	}
	l1 := h.tile.L1X.Peek(0x3000, 1)
	if !l1.WLock {
		t.Fatal("L1X not write-locked during epoch")
	}
	// Let the epoch expire: self-downgrade writes back.
	h.advance(600)
	if h.tile.L0Xs[0].Peek(0x3000) != nil {
		t.Fatal("line survived its write epoch")
	}
	l1 = h.tile.L1X.Peek(0x3000, 1)
	if l1 == nil || l1.WLock || !l1.Dirty || l1.Ver != 1 {
		t.Fatalf("L1X after WB = %+v, want unlocked dirty v1", l1)
	}
	if h.st.Get("l0x.0.self_downgrades") != 1 {
		t.Fatalf("self_downgrades = %d", h.st.Get("l0x.0.self_downgrades"))
	}
}

func TestInterAXCSharingStaysInTile(t *testing.T) {
	h := newHarness(t, 2, false)
	h.axcDo(t, 0, mem.Store, 0x4000) // producer writes v1
	h.tile.L0Xs[0].Drain()           // invocation ends: WB to L1X
	h.advance(20)
	hostGets := h.st.Get("dir.GetM")
	h.axcDo(t, 1, mem.Load, 0x4000) // consumer reads
	l0 := h.tile.L0Xs[1].Peek(0x4000)
	if l0 == nil || l0.Ver != 1 {
		t.Fatalf("consumer line = %+v, want v1", l0)
	}
	if h.st.Get("dir.GetM") != hostGets {
		t.Fatal("inter-AXC transfer escaped to the host (the DMA ping-pong FUSION eliminates)")
	}
}

func TestReaderStallsOnWriteEpochUntilWriteback(t *testing.T) {
	h := newHarness(t, 2, false)
	h.axcDo(t, 0, mem.Store, 0x5000) // AXC0 holds write epoch
	var readerDone uint64
	h.tile.L0Xs[1].Access(mem.Load, 0x5000, func(now uint64) { readerDone = now })
	// Reader must not complete while the epoch is open.
	h.advance(100)
	if readerDone != 0 {
		t.Fatal("reader completed during another AXC's write epoch")
	}
	if h.st.Get("l1x.stall_wlock") == 0 {
		t.Fatal("no WLock stall recorded")
	}
	// Drain the producer: the writeback should release the reader.
	h.tile.L0Xs[0].Drain()
	h.run(t, 10000, func() bool { return readerDone != 0 })
	l0 := h.tile.L0Xs[1].Peek(0x5000)
	if l0 == nil || l0.Ver != 1 {
		t.Fatalf("reader line = %+v, want v1", l0)
	}
}

func TestWriterStallsOnForeignReadLease(t *testing.T) {
	h := newHarness(t, 2, false)
	h.axcDo(t, 0, mem.Load, 0x6000) // AXC0 read lease until ~now+500
	var writeDone uint64
	h.tile.L0Xs[1].Access(mem.Store, 0x6000, func(now uint64) { writeDone = now })
	h.advance(100)
	if writeDone != 0 {
		t.Fatal("write epoch opened under a foreign read lease")
	}
	if h.st.Get("l1x.stall_gtime") == 0 {
		t.Fatal("no GTIME stall recorded")
	}
	h.run(t, 10000, func() bool { return writeDone != 0 })
}

func TestSameAXCUpgradeDoesNotStall(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Load, 0x6100)
	start := h.eng.Now()
	h.axcDo(t, 0, mem.Store, 0x6100) // Figure 4: R lease then W epoch, same AXC
	if h.eng.Now()-start > 50 {
		t.Fatalf("sole-holder upgrade took %d cycles", h.eng.Now()-start)
	}
	if h.st.Get("l1x.stall_gtime") != 0 {
		t.Fatal("sole-holder upgrade stalled on its own lease")
	}
}

func TestHostForwardWaitsForGTime(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Store, 0x7000) // tile holds write epoch (≈500 cycles)
	start := h.eng.Now()
	h.hostDo(t, mem.Load, 0x7000) // host read: Fwd stalls until lease lapses
	elapsed := h.eng.Now() - start
	if elapsed < 300 {
		t.Fatalf("host read completed in %d cycles; it should have stalled on GTIME", elapsed)
	}
	if h.st.Get("l1x.fwd_stalled") == 0 {
		t.Fatal("no stalled-forward recorded")
	}
	pa := h.pt.Translate(1, 0x7000).LineAddr()
	if l := h.host.Peek(pa); l == nil || l.Ver != 1 {
		t.Fatalf("host line = %+v, want v1", l)
	}
	// Tile relinquished: MEI, no shared state.
	if h.tile.L1X.Peek(0x7000, 1) != nil {
		t.Fatal("tile kept the line after a host forward")
	}
	if h.tile.RMAP.Len() != 0 {
		t.Fatal("RMAP entry leaked after relinquish")
	}
	if h.st.Get("axrmap.lookups") == 0 {
		t.Fatal("forward did not consult the AX-RMAP")
	}
}

func TestHostForwardFastWhenLeaseExpired(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Store, 0x7100)
	h.advance(700) // epoch over, data back in L1X
	start := h.eng.Now()
	h.hostDo(t, mem.Load, 0x7100)
	if e := h.eng.Now() - start; e > 200 {
		t.Fatalf("host read took %d cycles after lease expiry", e)
	}
}

func TestNoFwdMessagesReachL0X(t *testing.T) {
	h := newHarness(t, 1, false)
	h.axcDo(t, 0, mem.Store, 0x7200)
	h.hostDo(t, mem.Load, 0x7200)
	// The L0X never participates in host coherence: its only inbound
	// messages are lease grants and Dx forwards. The line self-invalidated
	// by lease expiry; no message count exists to check beyond grants.
	if got := h.st.Get("l1x.host_fwds"); got != 1 {
		t.Fatalf("host_fwds = %d, want 1", got)
	}
	if h.st.Get("l0x.0.invalidations") != 0 {
		t.Fatal("an invalidation reached an L0X")
	}
}

func TestDxForwardProducerToConsumer(t *testing.T) {
	h := newHarness(t, 2, true)
	// Post-processing marks the store for forwarding (Section 3.2).
	h.tile.L0Xs[0].MarkForward(0x8000, 1)
	h.axcDo(t, 0, mem.Store, 0x8000)
	h.tile.L0Xs[0].Drain() // producer done: pushes to consumer's L0X
	h.run(t, 10000, func() bool { return h.st.Get("l0x.1.fwd_in") == 1 })

	if h.st.Get("l0x.0.fwd_out") != 1 {
		t.Fatal("producer did not forward")
	}
	// Consumer hits locally without an L1X grant.
	grants := h.st.Get("l1x.grants_read")
	h.axcDo(t, 1, mem.Load, 0x8000)
	if h.st.Get("l1x.grants_read") != grants {
		t.Fatal("consumer load needed an L1X grant despite the forward")
	}
	l0 := h.tile.L0Xs[1].Peek(0x8000)
	if l0 == nil || l0.Ver != 1 || !l0.Dirty {
		t.Fatalf("consumer line = %+v, want dirty v1", l0)
	}
	// The consumer eventually writes back; the L1X regains the data.
	h.advance(700)
	l1 := h.tile.L1X.Peek(0x8000, 1)
	if l1 == nil || l1.Ver != 1 || l1.WLock {
		t.Fatalf("L1X after consumer WB = %+v, want v1 unlocked", l1)
	}
}

func TestDxSavesTileLinkEnergy(t *testing.T) {
	run := func(dx bool) (tile, fwd float64) {
		h := newHarness(t, 2, dx)
		if dx {
			h.tile.L0Xs[0].MarkForward(0x8000, 1)
		}
		h.axcDo(t, 0, mem.Store, 0x8000)
		h.tile.L0Xs[0].Drain()
		h.advance(50)
		h.axcDo(t, 1, mem.Load, 0x8000)
		return h.mt.Get(energy.CatLinkTile), h.mt.Get(energy.CatLinkFwd)
	}
	tileNoDx, fwdNoDx := run(false)
	tileDx, fwdDx := run(true)
	if fwdNoDx != 0 {
		t.Fatal("forwarding energy without Dx")
	}
	if !(tileDx < tileNoDx) {
		t.Fatalf("Dx tile-link energy %v not below baseline %v", tileDx, tileNoDx)
	}
	if fwdDx == 0 {
		t.Fatal("no forwarding-link energy under Dx")
	}
	// The forward path is far cheaper than what it replaced.
	if fwdDx >= (tileNoDx - tileDx) {
		t.Fatalf("forward cost %v should be well under the saved %v", fwdDx, tileNoDx-tileDx)
	}
}

func TestWriteThroughBandwidth(t *testing.T) {
	countFlits := func(wt bool) int64 {
		eng := sim.NewEngine()
		st := stats.NewSet()
		mt := energy.NewMeter()
		model := energy.Default()
		fab := mesi.NewFabric(eng, mt, st)
		d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
		mesi.NewDirectory(fab, mesi.DefaultDirConfig(), d, model, mt, st)
		pt := vm.NewPageTable()
		cfg := SmallTileConfig(1, model)
		cfg.Agent = tileAgent
		cfg.L0X.WriteThrough = wt
		tile := NewTile(eng, fab, pt, cfg, model, mt, st)
		done := 0
		var issue func(i int)
		issue = func(i int) {
			if i >= 64 {
				return
			}
			va := mem.VAddr(0x9000) // same line: 64 stores
			tile.L0Xs[0].Access(mem.Store, va, func(uint64) { done++; issue(i + 1) })
		}
		issue(0)
		eng.Run(100000, func() bool { return done == 64 })
		tile.L0Xs[0].Drain()
		eng.Run(10000, nil)
		return st.Get("link.l0x0.up.flits")
	}
	wb := countFlits(false)
	wt := countFlits(true)
	if wt < 10*wb {
		t.Fatalf("write-through flits %d not ≫ writeback flits %d (Table 4 shape)", wt, wb)
	}
}

func TestL1XEvictionNotifiesDirectory(t *testing.T) {
	h := newHarness(t, 1, false)
	// L1X: 64KB/8-way/64B = 128 sets; same-set stride = 128*64 = 8192.
	h.tile.L0Xs[0].SetLeaseTime(10) // short leases so lines become evictable
	for i := 0; i < 10; i++ {
		h.axcDo(t, 0, mem.Load, mem.VAddr(0x10000+i*8192))
		h.advance(20) // let each lease lapse
	}
	h.run(t, 200000, func() bool { return h.tile.Outstanding() == 0 })
	if h.st.Get("l1x.evictions") < 2 {
		t.Fatalf("evictions = %d, want ≥ 2", h.st.Get("l1x.evictions"))
	}
	// Evictions are explicit: dir received PutE/PutM notices from the tile.
	if h.st.Get("dir.PutE")+h.st.Get("dir.PutM") < 2 {
		t.Fatal("tile evicted silently")
	}
}

func TestSequentialGoldenVersions(t *testing.T) {
	h := newHarness(t, 2, false)
	rng := rand.New(rand.NewSource(11))
	golden := map[uint64]uint64{}
	lines := []mem.VAddr{0x0, 0x1000, 0x2000, 0x8000}
	for i := 0; i < 200; i++ {
		axc := rng.Intn(2)
		va := lines[rng.Intn(len(lines))]
		if rng.Intn(2) == 0 {
			h.axcDo(t, axc, mem.Store, va)
			golden[uint64(va)]++
		} else {
			h.axcDo(t, axc, mem.Load, va)
			l := h.tile.L0Xs[axc].Peek(va)
			if l == nil {
				t.Fatalf("op %d: loaded line %#x missing", i, uint64(va))
			}
			if l.Ver != golden[uint64(va)] {
				t.Fatalf("op %d: axc%d line %#x v%d, golden v%d",
					i, axc, uint64(va), l.Ver, golden[uint64(va)])
			}
		}
		if rng.Intn(8) == 0 {
			h.tile.L0Xs[axc].Drain()
			h.advance(5)
		}
	}
}

// End-to-end write visibility: everything the accelerators wrote must reach
// the host backing store after the tile flushes.
func TestNoLostWritesThroughFullHierarchy(t *testing.T) {
	h := newHarness(t, 3, false)
	rng := rand.New(rand.NewSource(13))
	golden := map[uint64]uint64{}
	lines := []mem.VAddr{0x0, 0x1000, 0x2000}
	for i := 0; i < 150; i++ {
		axc := rng.Intn(3)
		va := lines[rng.Intn(len(lines))]
		h.axcDo(t, axc, mem.Store, va)
		golden[uint64(va)]++
		if rng.Intn(5) == 0 {
			h.tile.L0Xs[axc].Drain()
		}
	}
	h.tile.Drain()
	h.run(t, 400000, func() bool { return h.tile.Outstanding() == 0 })
	h.tile.L1X.FlushAll()
	h.run(t, 400000, func() bool { return h.tile.Outstanding() == 0 })
	for _, va := range lines {
		pa := h.pt.Translate(1, va).LineAddr()
		if got := h.dir.Version(pa); got != golden[uint64(va)] {
			t.Errorf("line %#x: host sees v%d, golden v%d", uint64(va), got, golden[uint64(va)])
		}
	}
}

// Single-writer invariant: at no time do two L0Xs hold open write epochs on
// the same line.
func TestSingleWriterInvariant(t *testing.T) {
	h := newHarness(t, 3, false)
	rng := rand.New(rand.NewSource(17))
	lines := []mem.VAddr{0x0, 0x1000}
	pending := 0
	violation := false
	check := func() {
		now := h.eng.Now()
		for _, va := range lines {
			writers := 0
			for _, l0 := range h.tile.L0Xs {
				if l := l0.Peek(va); l != nil && l.WTime > now && l.Dirty {
					writers++
				}
			}
			if writers > 1 {
				violation = true
			}
		}
	}
	for i := 0; i < 120; i++ {
		axc := rng.Intn(3)
		va := lines[rng.Intn(len(lines))]
		kind := mem.Load
		if rng.Intn(2) == 0 {
			kind = mem.Store
		}
		pending++
		for !h.tile.L0Xs[axc].Access(kind, va, func(uint64) { pending-- }) {
			h.eng.Step()
			check()
		}
		for j := 0; j < rng.Intn(20); j++ {
			h.eng.Step()
			check()
		}
		if rng.Intn(6) == 0 {
			h.tile.L0Xs[axc].Drain()
		}
	}
	h.run(t, 500000, func() bool { check(); return pending == 0 })
	if violation {
		t.Fatal("two L0Xs held simultaneous write epochs on one line")
	}
}

func TestSynonymEvictedInTile(t *testing.T) {
	// Two virtual lines aliasing one physical line: only one may stay.
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := mesi.NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	mesi.NewDirectory(fab, mesi.DefaultDirConfig(), d, model, mt, st)
	cfg := SmallTileConfig(1, model)

	rmap := vm.NewRMAP("axrmap", model, mt, st)
	l1x := NewL1X(eng, fab, tileAgent, cfg.L1X, aliasTranslator{}, rmapAdapter{rmap}, mt, st)
	// Minimal up/down links for grants.
	sink := NewL0X(eng, 0, 1, cfg.L0X, mt, st)
	sink.ConnectL1X(interconnect.NewLink(eng, interconnect.Config{
		Name: "up", Latency: 1, Deliver: l1x.HandleTile,
	}))
	l1x.ConnectL0X(0, interconnect.NewLink(eng, interconnect.Config{
		Name: "down", Latency: 1, Deliver: sink.Handle,
	}))

	done := 0
	sink.Access(mem.Load, 0x0000, func(uint64) { done++ })
	eng.Run(100000, func() bool { return done == 1 })
	sink.Access(mem.Load, 0x100000, func(uint64) { done++ }) // same PA
	eng.Run(100000, func() bool { return done == 2 })

	if st.Get("l1x.synonym_evictions") != 1 {
		t.Fatalf("synonym_evictions = %d, want 1", st.Get("l1x.synonym_evictions"))
	}
	// Only the new alias remains.
	if l1x.Peek(0x0000, 1) != nil {
		t.Fatal("old synonym still cached")
	}
	if l1x.Peek(0x100000, 1) == nil {
		t.Fatal("new synonym not cached")
	}
}

// aliasTranslator maps every virtual address onto the low 20 bits: two
// distinct VAs 1 MiB apart become synonyms.
type aliasTranslator struct{}

func (aliasTranslator) Translate(pid mem.PID, va mem.VAddr) (mem.PAddr, uint64) {
	return mem.PAddr(uint64(va)&0xFFFFF | 0x400000), 0
}
