// Package flat provides a dense open-addressing hash map from uint64 keys,
// the replacement for map[uint64]V in simulator hot paths. Versus the
// runtime map it offers: no per-operation hashing interface overhead, an
// occupancy bitmap so Clear is a handful of word stores instead of a
// reallocation, and deterministic slot-order iteration.
//
// The map intentionally has no Delete: every hot-path table it backs (the
// MESI directory, the Dx forward table, scratchpad lines) only ever
// inserts, updates, or clears wholesale, and omitting deletion means no
// tombstones and a trivially correct linear probe.
package flat

import "math/bits"

const minSize = 16

// Map is an open-addressing hash table with uint64 keys and linear
// probing. The zero value is not ready; use New.
type Map[V any] struct {
	keys []uint64
	vals []V
	occ  []uint64 // occupancy bitmap: bit i set when slot i holds a key
	mask uint64
	n    int
	max  int // grow when n reaches max (3/4 load)
}

// New returns a map pre-sized to hold at least capHint entries without
// growing.
func New[V any](capHint int) *Map[V] {
	size := minSize
	for size*3/4 < capHint {
		size *= 2
	}
	return &Map[V]{
		keys: make([]uint64, size),
		vals: make([]V, size),
		occ:  make([]uint64, size/64+1),
		mask: uint64(size - 1),
		max:  size * 3 / 4,
	}
}

// hash is a splitmix64-style finalizer: full-avalanche, so line addresses
// (low bits zero) spread across the table.
func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

func (m *Map[V]) occupied(i uint64) bool { return m.occ[i>>6]&(1<<(i&63)) != 0 }

// Ptr returns a pointer to the value stored under k, or nil. The pointer
// is invalidated by the next Put (growth may move the backing array);
// callers must not retain it across inserts.
func (m *Map[V]) Ptr(k uint64) *V {
	for i := hash(k) & m.mask; m.occupied(i); i = (i + 1) & m.mask {
		if m.keys[i] == k {
			return &m.vals[i]
		}
	}
	return nil
}

// Get returns the value stored under k and whether it was present.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if p := m.Ptr(k); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Put stores v under k, replacing any existing value, and returns a
// pointer to the stored slot (same invalidation rule as Ptr).
func (m *Map[V]) Put(k uint64, v V) *V {
	if m.n >= m.max {
		m.grow()
	}
	i := hash(k) & m.mask
	for ; m.occupied(i); i = (i + 1) & m.mask {
		if m.keys[i] == k {
			m.vals[i] = v
			return &m.vals[i]
		}
	}
	m.keys[i] = k
	m.vals[i] = v
	m.occ[i>>6] |= 1 << (i & 63)
	m.n++
	return &m.vals[i]
}

func (m *Map[V]) grow() {
	old := *m
	size := int(m.mask+1) * 2
	m.keys = make([]uint64, size)
	m.vals = make([]V, size)
	m.occ = make([]uint64, size/64+1)
	m.mask = uint64(size - 1)
	m.max = size * 3 / 4
	m.n = 0
	for w, word := range old.occ {
		for ; word != 0; word &= word - 1 {
			i := uint64(w<<6 + bits.TrailingZeros64(word))
			m.Put(old.keys[i], old.vals[i])
		}
	}
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return m.n }

// Clear removes every entry without releasing storage: it zeroes the
// occupancy words, so a steady-state clear-and-refill cycle never
// allocates. Cleared values stay in the backing array until overwritten;
// do not store values whose liveness matters past a Clear.
func (m *Map[V]) Clear() {
	if m.n == 0 {
		return
	}
	for i := range m.occ {
		m.occ[i] = 0
	}
	m.n = 0
}

// ForEach visits every entry in slot order — deterministic for a given
// insertion history, but not sorted; callers that need key order must
// collect and sort.
func (m *Map[V]) ForEach(fn func(k uint64, v *V)) {
	for w, word := range m.occ {
		for ; word != 0; word &= word - 1 {
			i := uint64(w<<6 + bits.TrailingZeros64(word))
			fn(m.keys[i], &m.vals[i])
		}
	}
}
