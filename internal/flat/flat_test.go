package flat

import (
	"math/rand"
	"testing"
)

func TestPutGetGrow(t *testing.T) {
	m := New[int](4)
	const n = 1000
	for i := 0; i < n; i++ {
		m.Put(uint64(i)*64, i)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(uint64(i) * 64)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*64, v, ok)
		}
	}
	if _, ok := m.Get(uint64(n) * 64); ok {
		t.Fatal("Get of absent key reported present")
	}
}

func TestZeroKey(t *testing.T) {
	m := New[string](0)
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map claims key 0")
	}
	m.Put(0, "zero")
	if v, ok := m.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q,%v", v, ok)
	}
}

func TestPutReplaces(t *testing.T) {
	m := New[int](0)
	m.Put(7, 1)
	m.Put(7, 2)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after double put, want 1", m.Len())
	}
	if v, _ := m.Get(7); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestPtrMutation(t *testing.T) {
	m := New[int](0)
	m.Put(42, 10)
	*m.Ptr(42)++
	if v, _ := m.Get(42); v != 11 {
		t.Fatalf("Get = %d after Ptr mutation, want 11", v)
	}
	if m.Ptr(43) != nil {
		t.Fatal("Ptr of absent key non-nil")
	}
}

func TestClearDoesNotAllocate(t *testing.T) {
	m := New[int](64)
	fill := func() {
		for i := 0; i < 64; i++ {
			m.Put(uint64(i)*64, i)
		}
	}
	fill()
	allocs := testing.AllocsPerRun(100, func() {
		m.Clear()
		fill()
	})
	if allocs != 0 {
		t.Fatalf("clear-and-refill allocates %v/op, want 0", allocs)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len = %d after Clear", m.Len())
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("cleared map still claims a key")
	}
}

func TestForEachCoversAll(t *testing.T) {
	m := New[uint64](0)
	want := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := rng.Uint64()
		m.Put(k, k*2)
		want[k] = k * 2
	}
	got := map[uint64]uint64{}
	m.ForEach(func(k uint64, v *uint64) { got[k] = *v })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach got[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// Differential check against the runtime map under random insert/update
// workloads.
func TestDifferentialVsRuntimeMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New[int](0)
	ref := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(2000)) * 64
		switch rng.Intn(3) {
		case 0, 1:
			m.Put(k, i)
			ref[k] = i
		case 2:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || v != rv {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, m.Len(), len(ref))
		}
	}
}
