package sim

import (
	"fmt"
	"strings"
)

// Watchdog is a forward-progress monitor: a registered Ticker fed by
// per-component heartbeats (accelerator op retirement, MSHR frees, link
// deliveries — any event that represents real protocol progress, as opposed
// to a retry spinning in place). If no heartbeat arrives for a full window
// of cycles the watchdog halts the run with a ProtocolError whose State
// carries a diagnostic dump collected from every registered provider, so a
// wedged coherence protocol is caught and named instead of silently burning
// the remaining cycle budget.
//
// Deadlocks (nothing scheduled, nothing delivered) and livelocks (retry
// loops that keep the event queue busy without retiring work) both trip it,
// because heartbeats are tied to completions, not to event activity.
type Watchdog struct {
	eng    *Engine
	window uint64
	last   uint64 // cycle of the most recent heartbeat

	dumps []dumpProvider
}

type dumpProvider struct {
	name string
	fn   func() string
}

// NewWatchdog registers a watchdog on eng with the given window (cycles of
// silence tolerated before the run is declared stuck). It installs itself as
// the engine's progress listener, so components that call Engine.Progress
// feed it without knowing it exists.
func NewWatchdog(eng *Engine, window uint64) *Watchdog {
	w := &Watchdog{eng: eng, window: window, last: eng.Now()}
	eng.SetProgressListener(w.Beat)
	eng.Register(w)
	return w
}

// Name implements Ticker.
func (w *Watchdog) Name() string { return "watchdog" }

// Idle implements IdleTicker: the watchdog's Tick only compares cycle
// numbers, so it never blocks a quiescence fast-forward on its own.
func (w *Watchdog) Idle() bool { return true }

// WakeAt implements Waker: the engine must not fast-forward past the cycle
// at which the current silence would exceed the window, so a wedged run
// trips at exactly the same cycle under skipping as under per-cycle
// stepping. A heartbeat during the event phase moves the deadline forward
// before the next skip is computed.
func (w *Watchdog) WakeAt(uint64) (uint64, bool) {
	if w.window == 0 {
		return 0, false
	}
	return w.last + w.window + 1, true
}

// Window returns the configured stall window in cycles.
func (w *Watchdog) Window() uint64 { return w.window }

// Beat records forward progress at the current cycle.
func (w *Watchdog) Beat() { w.last = w.eng.now }

// AddDump registers a diagnostic provider queried when the watchdog fires
// (and by Dump). Providers returning "" are omitted from the dump, so
// components with nothing outstanding stay silent.
func (w *Watchdog) AddDump(name string, fn func() string) {
	w.dumps = append(w.dumps, dumpProvider{name: name, fn: fn})
}

// Tick implements Ticker: it trips once the silence exceeds the window.
func (w *Watchdog) Tick(now uint64) {
	if w.window == 0 || now-w.last <= w.window {
		return
	}
	Failf("watchdog", now, w.Dump(),
		"no forward progress for %d cycles (last heartbeat at cycle %d)",
		now-w.last, w.last)
}

// Dump collects the diagnostic state of every registered provider plus the
// engine's own view (current cycle, pending event count).
func (w *Watchdog) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d pending_events=%d last_heartbeat=%d\n",
		w.eng.Now(), w.eng.Pending(), w.last)
	for _, d := range w.dumps {
		s := d.fn()
		if s == "" {
			continue
		}
		fmt.Fprintf(&b, "[%s]\n%s", d.name, s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
