//go:build !race

// Allocation-discipline tests, excluded under the race detector (the race
// runtime instruments allocations and makes AllocsPerRun counts meaningless).
package sim

import "testing"

type nopHandler struct{ fired int }

func (h *nopHandler) HandleEvent(now uint64, op uint8, arg uint64) { h.fired++ }

func TestScheduleCallZeroAlloc(t *testing.T) {
	eng := NewEngine()
	h := &nopHandler{}

	// Warm the event heap so steady-state runs never grow it.
	for i := 0; i < 64; i++ {
		eng.ScheduleCall(1, h, 0, uint64(i))
	}
	eng.Step()
	eng.Step()

	if avg := testing.AllocsPerRun(1000, func() {
		eng.ScheduleCall(1, h, 0, 7)
		eng.Step()
		eng.Step()
	}); avg != 0 {
		t.Fatalf("ScheduleCall steady state allocated %.1f per op, want 0", avg)
	}
	if h.fired == 0 {
		t.Fatal("handler never fired")
	}
}
