package sim

import (
	"errors"
	"testing"
)

// TestInterruptPollCadence: the interrupt hook is polled at most once every
// `every` cycles, and a nil return never disturbs the run.
func TestInterruptPollCadence(t *testing.T) {
	e := NewEngine()
	e.Register(&countTicker{name: "busy"}) // opaque ticker: forces per-cycle stepping
	polls := 0
	e.SetInterrupt(100, func() error { polls++; return nil })
	cycles, done, err := e.RunE(1000, nil)
	if err != nil || cycles != 1000 || done {
		t.Fatalf("RunE = (%d, %v, %v), want a clean 1000-cycle run", cycles, done, err)
	}
	// Polls land at cycles 100..900; the run ends at 1000 before the next
	// poll is due, so a completed run is never aborted retroactively.
	if polls != 9 {
		t.Errorf("hook polled %d times over 1000 cycles at every=100, want 9", polls)
	}
}

// TestInterruptAbortSurfacesError: a non-nil poll result stops the run at
// the current cycle and RunE returns exactly that error; the engine stays
// usable afterwards.
func TestInterruptAbortSurfacesError(t *testing.T) {
	e := NewEngine()
	e.Register(&countTicker{name: "busy"}) // per-cycle stepping for an exact abort cycle
	boom := errors.New("host asked us to stop")
	calls := 0
	e.SetInterrupt(50, func() error {
		calls++
		if calls == 3 {
			return boom
		}
		return nil
	})
	cycles, done, err := e.RunE(10_000, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("RunE error = %v, want the interrupt's error", err)
	}
	if done {
		t.Error("done = true on an aborted run")
	}
	if cycles != 150 {
		t.Errorf("aborted after %d cycles, want 150 (third poll at every=50)", cycles)
	}
	// The parked error is consumed: a later run is clean.
	e.SetInterrupt(0, nil)
	if _, _, err := e.RunE(10, nil); err != nil {
		t.Fatalf("post-abort RunE returned stale error %v", err)
	}
}

// TestInterruptPolledAcrossFastForward: a quiescence jump must not starve
// the interrupt poll — an idle engine with a far-future event still
// observes the abort within one jump.
func TestInterruptPolledAcrossFastForward(t *testing.T) {
	e := NewEngine()
	e.Schedule(1_000_000, func(uint64) {})
	boom := errors.New("abort during quiescence")
	e.SetInterrupt(4096, func() error { return boom })
	cycles, _, err := e.RunE(2_000_000, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("RunE error = %v, want the interrupt's error", err)
	}
	// The engine may fast-forward between polls, but never past the run:
	// the abort lands no later than the scheduled event's cycle.
	if cycles > 1_000_000 {
		t.Errorf("abort landed after %d cycles, past the only event", cycles)
	}
}

// TestInterruptDoesNotChangeResults: arming a never-firing interrupt poll
// leaves a run's cycle count identical to the unarmed run (the poll is
// observation-only).
func TestInterruptDoesNotChangeResults(t *testing.T) {
	run := func(armed bool) uint64 {
		e := NewEngine()
		hits := 0
		var step func(uint64)
		step = func(uint64) {
			hits++
			if hits < 20 {
				e.Schedule(37, step)
			}
		}
		e.Schedule(1, step)
		if armed {
			e.SetInterrupt(10, func() error { return nil })
		}
		cycles, _, err := e.RunE(5_000, func() bool { return hits == 20 })
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("armed poll changed the run: %d vs %d cycles", a, b)
	}
}
