package sim

// Tests for the event sequence counter: seq exists only to FIFO-order
// events that coexist in the heap, rebases whenever the heap drains (so it
// cannot creep toward wraparound over a long simulation), and keeps the
// FIFO tie-break correct even when its value sits near the top of the
// uint64 range.

import (
	"math"
	"testing"
)

func TestSeqRebasesWhenHeapDrains(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 100; i++ {
		e.Schedule(0, func(uint64) {})
	}
	if e.seq != 100 {
		t.Fatalf("seq = %d after 100 schedules, want 100", e.seq)
	}
	e.Step() // drains all 100
	if e.Pending() != 0 {
		t.Fatalf("heap not drained: %d pending", e.Pending())
	}
	e.Schedule(1, func(uint64) {})
	if e.seq != 1 {
		t.Fatalf("seq = %d after drain+schedule, want rebase to 1", e.seq)
	}
}

// TestSeqOrderingNearMax plants the counter just below 2^64 and verifies
// FIFO ordering among same-cycle events survives: the batch stays below the
// wrap (rebasing means a wrap would need 2^64 events in the heap at once),
// and the next drain rebases the counter away from the edge.
func TestSeqOrderingNearMax(t *testing.T) {
	e := NewEngine()
	var order []int
	// First event occupies the heap (seq rebases to 1 here), then the
	// counter is planted just below the edge for the rest of the batch.
	e.Schedule(2, func(uint64) { order = append(order, 0) })
	e.seq = math.MaxUint64 - 7
	for i := 1; i < 8; i++ {
		i := i
		e.Schedule(2, func(uint64) { order = append(order, i) })
	}
	if e.seq != math.MaxUint64 {
		t.Fatalf("seq = %d, want MaxUint64", e.seq)
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of FIFO order near MaxUint64: %v", order)
		}
	}
	e.Schedule(1, func(uint64) {})
	if e.seq != 1 {
		t.Fatalf("seq = %d after drain, want rebase to 1", e.seq)
	}
}

// TestZeroDelayFIFODuringEventPhase is the heap-rewrite regression the
// original container/heap version was also subject to: events scheduled
// with zero delay while the event phase is draining must run this cycle, in
// scheduling order, interleaved after the already-queued same-cycle events.
func TestZeroDelayFIFODuringEventPhase(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(1, func(uint64) {
		for i := 0; i < 5; i++ {
			i := i
			e.Schedule(0, func(uint64) { order = append(order, 10+i) })
		}
	})
	e.Schedule(1, func(uint64) { order = append(order, 0) })
	for i := 0; i < 3; i++ {
		e.Step()
	}
	want := []int{0, 10, 11, 12, 13, 14}
	if len(order) != len(want) {
		t.Fatalf("drained %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("zero-delay drain order %v, want %v", order, want)
		}
	}
}

// TestPopZeroesSlot guards the GC-ability property for both schedulers:
// after an event runs, no backing array (heap slots or wheel buckets)
// still references its closure.
func TestPopZeroesSlot(t *testing.T) {
	for _, kind := range []string{SchedulerHeap, SchedulerWheel} {
		e := NewEngine()
		e.SetScheduler(kind)
		for i := 0; i < 4; i++ {
			e.Schedule(0, func(uint64) {})
		}
		e.Step()
		checkSlice := func(q []event, where string) {
			for i := range q[:cap(q)] {
				if ev := q[:cap(q)][i]; ev.fn != nil {
					t.Fatalf("%s: %s slot %d still references a retired closure", kind, where, i)
				}
			}
		}
		switch s := e.sched.(type) {
		case *heapScheduler:
			checkSlice(s.h, "heap")
		case *wheelScheduler:
			checkSlice(s.overflow, "overflow")
			for b := range s.buckets {
				checkSlice(s.buckets[b], "bucket")
			}
		}
	}
}
