package sim

// Tests for the time-wheel scheduler: FIFO among equal-cycle events,
// far-future overflow promotion (including promotion into a bucket that
// still holds stragglers for a previous lap), drain-rebase of the seq
// counter, fast-forward jumps across empty buckets, and a randomized
// heap-vs-wheel differential.

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestWheelEqualCycleFIFO schedules a same-cycle batch from three origins
// — directly within the horizon, via the overflow heap, and with zero
// delay while that cycle's event phase is draining — and requires strict
// scheduling order.
func TestWheelEqualCycleFIFO(t *testing.T) {
	e := NewEngine()
	const at = wheelSize * 2 // beyond the horizon at schedule time
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.ScheduleAt(at, func(uint64) {
			order = append(order, i)
			if i == 3 {
				// Zero-delay events land after the queued batch, in order.
				for j := 0; j < 3; j++ {
					j := j
					e.Schedule(0, func(uint64) { order = append(order, 100+j) })
				}
			}
		})
	}
	e.Run(at+1, nil)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 100, 101, 102}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("equal-cycle order = %v, want %v", order, want)
	}
}

// TestWheelOverflowPromotion checks that events parked beyond the horizon
// fire at exactly their cycle once the wheel reaches them, and that a
// promoted event that shares a bucket with stragglers from one lap earlier
// runs after those stragglers but at its own, later cycle.
func TestWheelOverflowPromotion(t *testing.T) {
	e := NewEngine()
	fired := map[string]uint64{}
	// Far-future events, scheduled out of cycle order.
	e.ScheduleAt(3*wheelSize+5, func(now uint64) { fired["far2"] = now })
	e.ScheduleAt(2*wheelSize+5, func(now uint64) { fired["far1"] = now })
	if got := e.sched.(*wheelScheduler); len(got.overflow) != 2 {
		t.Fatalf("overflow holds %d events, want 2", len(got.overflow))
	}
	// A straggler for cycle 9, scheduled during cycle 9's tick phase (an
	// event callback would drain in the same cycle; only a Ticker runs
	// after the event phase), plus a promoted event one lap later in the
	// same bucket (cycle 9+wheelSize).
	e.ScheduleAt(9+wheelSize, func(now uint64) { fired["lap"] = now })
	e.Register(&tickScheduler{eng: e, at: 9, fn: func(now uint64) { fired["straggler"] = now }})
	e.Run(4*wheelSize, nil)
	want := map[string]uint64{
		"far1": 2*wheelSize + 5, "far2": 3*wheelSize + 5,
		"straggler": 10, "lap": 9 + wheelSize,
	}
	for k, w := range want {
		if fired[k] != w {
			t.Fatalf("%s fired at %d, want %d (all: %v)", k, fired[k], w, fired)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

// TestWheelDrainRebase is the wheel twin of TestSeqRebasesWhenHeapDrains:
// the seq counter rebases when the wheel (including its overflow heap)
// fully drains, and not while overflow events are still pending.
func TestWheelDrainRebase(t *testing.T) {
	e := NewEngine()
	e.ScheduleAt(wheelSize*2, func(uint64) {}) // overflow resident
	for i := 0; i < 10; i++ {
		e.Schedule(0, func(uint64) {})
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want the one overflow event", e.Pending())
	}
	e.Schedule(1, func(uint64) {})
	if e.seq == 1 {
		t.Fatal("seq rebased while an overflow event was pending")
	}
	e.Run(wheelSize*2+2, nil)
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", e.Pending())
	}
	e.Schedule(1, func(uint64) {})
	if e.seq != 1 {
		t.Fatalf("seq = %d after full drain, want rebase to 1", e.seq)
	}
}

// TestWheelFastForwardJump verifies Run's quiescence jump lands exactly on
// the next event even when that event is several empty buckets — or a
// whole wheel lap — away, with no tickers to pin the clock.
func TestWheelFastForwardJump(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	for _, at := range []uint64{7, 700, wheelSize + 3, 5 * wheelSize} {
		e.ScheduleAt(at, func(now uint64) { fired = append(fired, now) })
	}
	cycles, _ := e.Run(6*wheelSize, nil)
	if cycles != 6*wheelSize {
		t.Fatalf("ran %d cycles, want %d", cycles, 6*wheelSize)
	}
	want := []uint64{7, 700, wheelSize + 3, 5 * wheelSize}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

// tickScheduler schedules fn with zero delay during the tick phase of
// cycle at, producing a bucket straggler: the event's cycle has already
// drained, so it runs at the head of the next cycle's event phase.
type tickScheduler struct {
	eng *Engine
	at  uint64
	fn  func(now uint64)
}

func (ts *tickScheduler) Name() string { return "tickScheduler" }

func (ts *tickScheduler) Tick(now uint64) {
	if now == ts.at {
		ts.eng.Schedule(0, ts.fn)
	}
}

// diffTicker drives the differential test below: each Tick it may schedule
// events at pseudo-random delays (drawn from its own generator, so both
// engines see the same sequence). Once its event budget is spent it goes
// idle, so the tail of the run exercises fast-forwarding over the
// far-future events it left behind.
type diffTicker struct {
	eng *Engine
	rng *rand.Rand
	log *[]string
	n   int
}

func (d *diffTicker) Name() string { return "diff" }
func (d *diffTicker) Idle() bool   { return d.n >= 200 }

func (d *diffTicker) Tick(now uint64) {
	if d.n >= 200 || d.rng.Intn(4) != 0 {
		return
	}
	d.schedule(now, 0)
}

func (d *diffTicker) schedule(now uint64, depth int) {
	d.n++
	id := d.n
	// Delays cover same-cycle (0), near-wheel, bucket-collision (exactly
	// one lap), and deep-overflow cases.
	delay := [...]uint64{0, 1, 3, 50, wheelSize, wheelSize + 1, 3 * wheelSize}[d.rng.Intn(7)]
	d.eng.Schedule(delay, func(at uint64) {
		*d.log = append(*d.log, fmt.Sprintf("%d@%d", id, at))
		if depth < 3 && d.rng.Intn(3) == 0 {
			d.schedule(at, depth+1)
		}
	})
}

// TestHeapWheelDifferential runs the same randomized workload — a ticker
// scheduling events at mixed delays, events rescheduling recursively,
// quiescent stretches fast-forwarded — under both schedulers and requires
// the complete (id, cycle) firing logs to match.
func TestHeapWheelDifferential(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		logs := map[string][]string{}
		for _, kind := range []string{SchedulerHeap, SchedulerWheel} {
			e := NewEngine()
			e.SetScheduler(kind)
			var log []string
			e.Register(&diffTicker{eng: e, rng: rand.New(rand.NewSource(seed)), log: &log})
			e.Run(20*wheelSize, nil)
			if e.Pending() != 0 {
				t.Fatalf("seed %d %s: %d events still pending", seed, kind, e.Pending())
			}
			logs[kind] = log
		}
		h, w := logs[SchedulerHeap], logs[SchedulerWheel]
		if len(h) == 0 {
			t.Fatalf("seed %d: empty firing log", seed)
		}
		if fmt.Sprint(h) != fmt.Sprint(w) {
			for i := range h {
				if i >= len(w) || h[i] != w[i] {
					t.Fatalf("seed %d: firing logs diverge at %d: heap %q vs wheel %q", seed, i, h[i], w[i])
				}
			}
			t.Fatalf("seed %d: wheel log longer than heap log (%d vs %d)", seed, len(w), len(h))
		}
	}
}
