package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestStopBeforeRunHonored(t *testing.T) {
	e := NewEngine()
	e.Stop()
	cycles, done := e.Run(100, nil)
	if cycles != 0 || done {
		t.Fatalf("Run after Stop: cycles=%d done=%v, want 0,false", cycles, done)
	}
	// The stop is consumed: the next Run proceeds normally.
	cycles, _ = e.Run(10, nil)
	if cycles != 10 {
		t.Fatalf("Run after consumed stop advanced %d cycles, want 10", cycles)
	}
}

func TestRunERecoversProtocolError(t *testing.T) {
	e := NewEngine()
	e.Schedule(3, func(now uint64) {
		Failf("testcomp", now, "state excerpt", "bad message %d", 7)
	})
	cycles, done, err := e.RunE(100, nil)
	if err == nil {
		t.Fatal("RunE returned no error")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *ProtocolError", err)
	}
	if pe.Component != "testcomp" || pe.Cycle != 3 {
		t.Errorf("ProtocolError = %q at cycle %d, want testcomp at 3", pe.Component, pe.Cycle)
	}
	if !strings.Contains(pe.Error(), "bad message 7") || !strings.Contains(pe.Error(), "state excerpt") {
		t.Errorf("Error() missing message or state: %q", pe.Error())
	}
	if done {
		t.Error("done = true on a failed run")
	}
	if cycles != 3 {
		t.Errorf("cycles = %d, want 3", cycles)
	}
	// The engine stays usable after recovery.
	if c, _ := e.Run(5, nil); c != 5 {
		t.Errorf("post-recovery Run advanced %d cycles, want 5", c)
	}
}

func TestRunEPropagatesForeignPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(uint64) { panic("not a protocol error") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic was swallowed")
		}
	}()
	e.RunE(100, nil)
}

func TestWatchdogFiresOnSilence(t *testing.T) {
	e := NewEngine()
	w := NewWatchdog(e, 50)
	w.AddDump("stuckcomp", func() string { return "txn pending on 0xbeef" })
	w.AddDump("idlecomp", func() string { return "" })
	_, _, err := e.RunE(1000, nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("watchdog did not fire: err=%v", err)
	}
	if pe.Component != "watchdog" {
		t.Errorf("component = %q, want watchdog", pe.Component)
	}
	if !strings.Contains(pe.State, "stuckcomp") || !strings.Contains(pe.State, "0xbeef") {
		t.Errorf("dump missing stuck component: %q", pe.State)
	}
	if strings.Contains(pe.State, "idlecomp") {
		t.Errorf("dump includes idle component: %q", pe.State)
	}
}

func TestWatchdogStaysQuietWithHeartbeats(t *testing.T) {
	e := NewEngine()
	NewWatchdog(e, 50)
	// A component that makes progress every 40 cycles.
	var beat func(uint64)
	beat = func(uint64) {
		e.Progress()
		e.Schedule(40, beat)
	}
	e.Schedule(1, beat)
	if _, _, err := e.RunE(10_000, nil); err != nil {
		t.Fatalf("watchdog fired despite heartbeats: %v", err)
	}
}
