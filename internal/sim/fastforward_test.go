package sim

// Unit tests for the quiescence fast-forward: the jump must be observably
// identical to per-cycle stepping — same cycle counts, same predicate
// observation points, same Stop and watchdog semantics — while actually
// skipping the tickers' no-op cycles.

import (
	"errors"
	"testing"
)

// idleProbe is a Ticker/IdleTicker with a controllable idle answer that
// records every Tick it receives.
type idleProbe struct {
	name  string
	busy  bool
	ticks []uint64
}

func (p *idleProbe) Name() string    { return p.name }
func (p *idleProbe) Tick(now uint64) { p.ticks = append(p.ticks, now) }
func (p *idleProbe) Idle() bool      { return !p.busy }

func TestFastForwardSkipsIdleCycles(t *testing.T) {
	e := NewEngine()
	p := &idleProbe{name: "p"}
	e.Register(p)
	fired := uint64(0)
	e.Schedule(1000, func(now uint64) { fired = now })
	cycles, done := e.Run(2000, func() bool { return fired != 0 })
	if !done || cycles != 1001 {
		t.Fatalf("Run = (%d,%v), want (1001,true) — stepping semantics", cycles, done)
	}
	if fired != 1000 {
		t.Fatalf("event fired at %d, want 1000", fired)
	}
	// The only Tick the probe may see is at cycle 1000 (the event's cycle);
	// cycles 0..999 are quiescent and skipped.
	if len(p.ticks) != 1 || p.ticks[0] != 1000 {
		t.Fatalf("probe ticked at %v, want [1000]", p.ticks)
	}
}

func TestFastForwardPredObservedAtSkippedToCycle(t *testing.T) {
	e := NewEngine()
	e.Register(&idleProbe{name: "p"})
	hit := false
	e.Schedule(1000, func(uint64) { hit = true })
	var observed []uint64
	_, done := e.Run(2000, func() bool {
		observed = append(observed, e.Now())
		return hit
	})
	if !done {
		t.Fatal("predicate never satisfied")
	}
	want := []uint64{0, 1000, 1001}
	if len(observed) != len(want) {
		t.Fatalf("pred observed at %v, want %v", observed, want)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("pred observed at %v, want %v", observed, want)
		}
	}
}

func TestFastForwardStopMidQuiescence(t *testing.T) {
	e := NewEngine()
	e.Register(&idleProbe{name: "p"})
	e.Schedule(5, func(uint64) { e.Stop() })
	e.Schedule(1000, func(uint64) {})
	cycles, done := e.Run(2000, nil)
	if done || cycles != 6 {
		// Identical to TestStopEndsRun: the stop is honored at the end of
		// the cycle that requested it, not at the far event the skip was
		// heading toward.
		t.Fatalf("Run = (%d,%v), want (6,false)", cycles, done)
	}
	// The engine must be immediately runnable again, resuming the skip.
	cycles, _ = e.Run(2000, nil)
	if e.Now() != 2006 || cycles != 2000 {
		t.Fatalf("second Run ended at cycle %d after %d cycles, want 2006 after 2000",
			e.Now(), cycles)
	}
}

func TestFastForwardRespectsMaxCycles(t *testing.T) {
	e := NewEngine()
	e.Register(&idleProbe{name: "p"})
	cycles, done := e.Run(100, nil)
	if done || cycles != 100 || e.Now() != 100 {
		t.Fatalf("Run = (%d,%v) now=%d, want (100,false) now=100", cycles, done, e.Now())
	}
}

func TestFastForwardBlockedByBusyTicker(t *testing.T) {
	e := NewEngine()
	p := &idleProbe{name: "p", busy: true}
	e.Register(p)
	e.Run(50, nil)
	if len(p.ticks) != 50 {
		t.Fatalf("busy ticker saw %d ticks, want 50", len(p.ticks))
	}
}

func TestFastForwardBlockedByOpaqueTicker(t *testing.T) {
	e := NewEngine()
	e.Register(&idleProbe{name: "idle"})
	n := 0
	e.Register(tickFunc(func(uint64) { n++ })) // no IdleTicker: counts as busy
	e.Run(50, nil)
	if n != 50 {
		t.Fatalf("opaque ticker saw %d ticks, want 50", n)
	}
}

func TestFastForwardDisabled(t *testing.T) {
	e := NewEngine()
	p := &idleProbe{name: "p"}
	e.Register(p)
	e.SetIdleSkip(false)
	e.Run(50, nil)
	if len(p.ticks) != 50 {
		t.Fatalf("with idle-skip disabled the ticker saw %d ticks, want 50", len(p.ticks))
	}
}

// TestFastForwardWatchdogTripCycle: with no heartbeats, the watchdog must
// trip at exactly last+window+1 — the same cycle as under stepping — even
// though the next event lies far beyond it.
func TestFastForwardWatchdogTripCycle(t *testing.T) {
	e := NewEngine()
	NewWatchdog(e, 50)
	e.Register(&idleProbe{name: "p"})
	e.Schedule(100_000, func(uint64) {})
	_, _, err := e.RunE(1_000_000, nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Component != "watchdog" {
		t.Fatalf("expected watchdog trip, got %v", err)
	}
	if pe.Cycle != 51 {
		t.Fatalf("watchdog tripped at cycle %d, want 51 (last=0, window=50)", pe.Cycle)
	}
}

// TestFastForwardWatchdogHeartbeats: periodic Progress beats inside the
// skipped region move the trip deadline forward, and the eventual trip
// lands at exactly the stepped-semantics cycle.
func TestFastForwardWatchdogHeartbeats(t *testing.T) {
	e := NewEngine()
	NewWatchdog(e, 50)
	e.Register(&idleProbe{name: "p"})
	for _, at := range []uint64{40, 80, 120, 160, 200} {
		e.ScheduleAt(at, func(uint64) { e.Progress() })
	}
	_, _, err := e.RunE(1_000_000, nil)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Component != "watchdog" {
		t.Fatalf("expected watchdog trip, got %v", err)
	}
	if pe.Cycle != 251 {
		t.Fatalf("watchdog tripped at cycle %d, want 251 (last beat at 200)", pe.Cycle)
	}
}

// TestFastForwardHealthyWatchdogRun: a run whose heartbeats always arrive
// inside the window completes without tripping, with skips between beats.
func TestFastForwardHealthyWatchdogRun(t *testing.T) {
	e := NewEngine()
	NewWatchdog(e, 100)
	p := &idleProbe{name: "p"}
	e.Register(p)
	done := false
	for at := uint64(50); at <= 500; at += 50 {
		at := at
		e.ScheduleAt(at, func(uint64) {
			e.Progress()
			if at == 500 {
				done = true
			}
		})
	}
	cycles, ok, err := e.RunE(10_000, func() bool { return done })
	if err != nil || !ok {
		t.Fatalf("RunE = (%d,%v,%v), want clean completion", cycles, ok, err)
	}
	if cycles != 501 {
		t.Fatalf("completed after %d cycles, want 501", cycles)
	}
	// Ticks only at event cycles (50,100,...,500), never in between.
	if len(p.ticks) != 10 {
		t.Fatalf("probe saw %d ticks, want 10 (one per heartbeat event)", len(p.ticks))
	}
}
