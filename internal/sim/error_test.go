package sim

// Direct coverage of the host-side error surface: cancellation
// classification, cause unwrapping, and the panic-to-ProtocolError
// conversion used at job boundaries (the fusiond scheduler).

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestIsCancellation(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"raw-canceled", context.Canceled, true},
		{"raw-deadline", context.DeadlineExceeded, true},
		{"wrapped-canceled", &ProtocolError{Component: ComponentCanceled, Cycle: 9,
			Message: "canceled", Cause: context.Canceled}, true},
		{"wrapped-deadline", &ProtocolError{Component: ComponentDeadline, Cycle: 9,
			Message: "deadline", Cause: context.DeadlineExceeded}, true},
		{"budget", &ProtocolError{Component: ComponentBudget, Cycle: 9,
			Message: "out of cycles"}, false},
		{"protocol", &ProtocolError{Component: "l1x", Cycle: 9,
			Message: "bad state"}, false},
		{"fmt-wrapped", fmt.Errorf("cell: %w", &ProtocolError{
			Component: ComponentCanceled, Message: "canceled"}), true},
	} {
		if got := IsCancellation(tc.err); got != tc.want {
			t.Errorf("%s: IsCancellation(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestProtocolErrorUnwrap(t *testing.T) {
	pe := &ProtocolError{Component: ComponentDeadline, Cycle: 5,
		Message: "deadline", Cause: context.DeadlineExceeded}
	if !errors.Is(pe, context.DeadlineExceeded) {
		t.Fatal("wrapped cause not reachable via errors.Is")
	}
	bare := &ProtocolError{Component: "l0x", Cycle: 5, Message: "bad"}
	if bare.Unwrap() != nil {
		t.Fatal("cause-less error unwraps non-nil")
	}
}

func TestPanicError(t *testing.T) {
	// An already-structured failure passes through untouched.
	orig := &ProtocolError{Component: "mesi dir", Cycle: 7, Message: "bad state"}
	if got := PanicError("worker", 0, orig, "stack"); got != orig {
		t.Fatalf("structured panic value rewrapped: %v", got)
	}

	// A plain error becomes the cause, reachable via errors.Is.
	cause := errors.New("index out of range")
	pe := PanicError("worker", 3, cause, "goroutine 1 [running]")
	if pe.Component != "worker" || pe.Cycle != 3 {
		t.Fatalf("component/cycle = %q/%d", pe.Component, pe.Cycle)
	}
	if !errors.Is(pe, cause) {
		t.Fatal("panic cause not reachable via errors.Is")
	}
	if pe.State != "goroutine 1 [running]" {
		t.Fatalf("stack not preserved: %q", pe.State)
	}

	// A non-error value is formatted into the message.
	pe = PanicError("worker", 0, 42, "stack")
	if pe.Message != "panic: 42" {
		t.Fatalf("message = %q", pe.Message)
	}
	if pe.Unwrap() != nil {
		t.Fatal("valueless panic has a cause")
	}
}
