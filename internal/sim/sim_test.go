package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type countTicker struct {
	name  string
	ticks []uint64
}

func (c *countTicker) Name() string    { return c.name }
func (c *countTicker) Tick(now uint64) { c.ticks = append(c.ticks, now) }

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestStepAdvancesClock(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want 5", e.Now())
	}
}

func TestTickersRunEveryCycleInOrder(t *testing.T) {
	e := NewEngine()
	a := &countTicker{name: "a"}
	b := &countTicker{name: "b"}
	var order []string
	e.Register(tickFunc(func(uint64) { order = append(order, "a") }))
	e.Register(tickFunc(func(uint64) { order = append(order, "b") }))
	e.Register(a)
	e.Register(b)
	e.Step()
	e.Step()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
	if len(a.ticks) != 2 || a.ticks[0] != 0 || a.ticks[1] != 1 {
		t.Fatalf("ticker a saw %v, want [0 1]", a.ticks)
	}
}

type tickFunc func(uint64)

func (f tickFunc) Name() string    { return "tickFunc" }
func (f tickFunc) Tick(now uint64) { f(now) }

func TestScheduleDelivery(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	e.Schedule(3, func(now uint64) { fired = append(fired, now) })
	e.Schedule(1, func(now uint64) { fired = append(fired, now) })
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired at %v, want [1 3]", fired)
	}
}

func TestZeroDelayEventRunsSameCycleDuringEventPhase(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	e.Schedule(1, func(now uint64) {
		e.Schedule(0, func(n2 uint64) { fired = append(fired, n2) })
	})
	for i := 0; i < 3; i++ {
		e.Step()
	}
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("chained zero-delay fired at %v, want [1]", fired)
	}
}

func TestEventsBeforeTicksWithinCycle(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Register(tickFunc(func(uint64) { order = append(order, "tick") }))
	e.Schedule(0, func(uint64) { order = append(order, "event") })
	e.Step()
	if len(order) != 2 || order[0] != "event" || order[1] != "tick" {
		t.Fatalf("order = %v, want [event tick]", order)
	}
}

func TestSameCycleEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(2, func(uint64) { order = append(order, i) })
	}
	for i := 0; i < 3; i++ {
		e.Step()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of order: %v", order)
		}
	}
}

func TestScheduleAtPanicsInPast(t *testing.T) {
	e := NewEngine()
	e.Step()
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	e.ScheduleAt(1, func(uint64) {})
}

func TestRunPredicate(t *testing.T) {
	e := NewEngine()
	hit := false
	e.Schedule(10, func(uint64) { hit = true })
	cycles, done := e.Run(100, func() bool { return hit })
	if !done {
		t.Fatal("Run did not report done")
	}
	if cycles != 11 { // event fires during cycle 10; pred observed at start of cycle 11
		t.Fatalf("cycles = %d, want 11", cycles)
	}
}

func TestRunMaxCycles(t *testing.T) {
	e := NewEngine()
	cycles, done := e.Run(25, func() bool { return false })
	if done || cycles != 25 {
		t.Fatalf("Run = (%d,%v), want (25,false)", cycles, done)
	}
}

func TestStopEndsRun(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(uint64) { e.Stop() })
	cycles, done := e.Run(1000, nil)
	if done {
		t.Fatal("done should be false after Stop")
	}
	if cycles != 6 {
		t.Fatalf("cycles = %d, want 6", cycles)
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func(uint64) {})
	e.Schedule(2, func(uint64) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	e.Step()
	e.Step()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// Property: regardless of the (possibly duplicated, unsorted) set of delays
// scheduled up front, events fire in nondecreasing time order and each at its
// requested cycle.
func TestEventOrderingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%50) + 1
		delays := make([]uint64, count)
		var fired []uint64
		for i := range delays {
			delays[i] = uint64(rng.Intn(200))
			d := delays[i]
			e.Schedule(d, func(now uint64) {
				if now != d {
					t.Errorf("event scheduled for %d fired at %d", d, now)
				}
				fired = append(fired, now)
			})
		}
		for i := 0; i < 201; i++ {
			e.Step()
		}
		if len(fired) != count {
			return false
		}
		sorted := append([]uint64(nil), fired...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine()
	e.Register(tickFunc(func(uint64) {}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, func(uint64) {})
		e.Step()
	}
}
