package sim

import "math/bits"

// scheduler is the event-queue abstraction behind the engine. Two
// implementations exist: the monomorphic binary heap (SchedulerHeap) and a
// hierarchical time-wheel (SchedulerWheel, the default). Both order events
// by (at, seq) — absolute cycle, then schedule order — so they are
// observationally identical; the A/B knob exists to prove it.
type scheduler interface {
	// push inserts an event. ev.at must not be in the past (the engine's
	// Schedule* entry points enforce this).
	push(ev event)
	// popDue removes and returns the earliest event whose cycle is <= now,
	// in (at, seq) order. ok=false means nothing is due.
	popDue(now uint64) (ev event, ok bool)
	// next reports the cycle of the earliest pending event.
	next() (at uint64, ok bool)
	// len reports the number of pending events.
	len() int
	// advance tells the scheduler the engine clock reached now. The engine
	// calls it at the top of every Step and monotonically: now never
	// decreases across calls.
	advance(now uint64)
}

// Scheduler knob values accepted by Engine.SetScheduler.
const (
	SchedulerHeap  = "heap"
	SchedulerWheel = "wheel"
)

// heapScheduler adapts the monomorphic eventHeap to the scheduler
// interface. It is the reference implementation: O(log n) push/pop, O(1)
// peek, no notion of a clock (advance is a no-op).
type heapScheduler struct {
	h eventHeap
}

func (s *heapScheduler) push(ev event) { s.h.push(ev) }

func (s *heapScheduler) popDue(now uint64) (event, bool) {
	if len(s.h) == 0 || s.h[0].at > now {
		return event{}, false
	}
	return s.h.pop(), true
}

func (s *heapScheduler) next() (uint64, bool) {
	if len(s.h) == 0 {
		return 0, false
	}
	return s.h[0].at, true
}

func (s *heapScheduler) len() int       { return len(s.h) }
func (s *heapScheduler) advance(uint64) {}

// Time-wheel geometry. The near wheel covers wheelSize consecutive cycles
// at one bucket per cycle; events at or beyond the horizon wait in a
// sorted overflow heap and are promoted as the clock approaches.
const (
	wheelBits  = 10
	wheelSize  = 1 << wheelBits // cycles covered by the near wheel
	wheelMask  = wheelSize - 1
	wheelWords = wheelSize / 64 // occupancy bitmap words
	wordMask   = wheelWords - 1
)

// wheelScheduler is a calendar queue: a near wheel of wheelSize one-cycle
// buckets plus an overflow heap for far-future events (lease expiries,
// watchdog deadlines). Invariants:
//
//   - Every wheel-resident event has at in [now, now+wheelSize), where now
//     is the last advance()d cycle (pushes between engine steps may use a
//     one-cycle-stale now; the horizon check and the promotion loop share
//     it, so an event is never wheel-resident while an earlier same-cycle
//     event hides in overflow — FIFO within a cycle is append order).
//   - Each bucket therefore holds events of exactly one absolute cycle at
//     a time, except that a bucket being refilled for cycle T+wheelSize
//     may still hold undrained stragglers for cycle T scheduled during
//     cycle T's tick phase; popDue checks the previous cycle's bucket
//     first, so those stragglers still run before cycle-T+1 events, in
//     (at, seq) order, exactly as the heap would run them.
//   - occ bit b is set iff buckets[b] has undrained events; finding the
//     next pending cycle is a circular bits.TrailingZeros64 scan from the
//     current cycle's word, at most wheelWords+1 word tests.
//
// A drained bucket keeps its backing array (heads[b] rewinds to 0), so a
// warmed-up wheel schedules without allocating, like the warmed-up heap.
type wheelScheduler struct {
	now      uint64 // last advance()d engine cycle
	wcount   int    // events resident in the near wheel
	buckets  [wheelSize][]event
	heads    [wheelSize]int32 // per-bucket pop cursor
	occ      [wheelWords]uint64
	overflow eventHeap // events with at >= now+wheelSize
}

func newWheelScheduler() *wheelScheduler { return &wheelScheduler{} }

func (s *wheelScheduler) push(ev event) {
	if ev.at >= s.now+wheelSize {
		s.overflow.push(ev)
		return
	}
	s.appendBucket(uint64(ev.at)&wheelMask, ev)
}

func (s *wheelScheduler) appendBucket(b uint64, ev event) {
	s.buckets[b] = append(s.buckets[b], ev)
	s.occ[b>>6] |= 1 << (b & 63)
	s.wcount++
}

// popBucket removes the head event of bucket b, resetting the bucket (and
// its occupancy bit) once the last event leaves.
func (s *wheelScheduler) popBucket(b uint64) event {
	q := s.buckets[b]
	h := s.heads[b]
	ev := q[h]
	q[h] = event{} // zero the slot so the retired closure is GC-able
	h++
	if int(h) == len(q) {
		s.buckets[b] = q[:0]
		s.heads[b] = 0
		s.occ[b>>6] &^= 1 << (b & 63)
	} else {
		s.heads[b] = h
	}
	s.wcount--
	return ev
}

func (s *wheelScheduler) popDue(now uint64) (event, bool) {
	if s.wcount == 0 {
		return event{}, false
	}
	// Stragglers first: events scheduled for cycle now-1 during that
	// cycle's tick phase sit in the previous bucket and sort before
	// anything due at now. The bucket may already hold promoted events for
	// cycle now-1+wheelSize, so check the head's cycle, not just
	// occupancy.
	pb := (now - 1) & wheelMask
	if s.occ[pb>>6]&(1<<(pb&63)) != 0 && s.buckets[pb][s.heads[pb]].at <= now {
		return s.popBucket(pb), true
	}
	cb := now & wheelMask
	if s.occ[cb>>6]&(1<<(cb&63)) != 0 {
		return s.popBucket(cb), true
	}
	return event{}, false
}

func (s *wheelScheduler) next() (uint64, bool) {
	at, ok := s.wheelNext()
	if n := len(s.overflow); n > 0 && (!ok || s.overflow[0].at < at) {
		// Overflow can undercut the wheel only after a fast-forward jump
		// outran the promotion horizon; advance() reconciles at the next
		// step.
		at, ok = s.overflow[0].at, true
	}
	return at, ok
}

// wheelNext scans the occupancy bitmap circularly from the current cycle's
// bit: the first set bit at circular distance d marks an event at cycle
// now+d (each bucket holds exactly one cycle's events, modulo the
// straggler case, where the straggler's cycle now-1 is reported as
// now-1+wheelSize; that only happens mid-step, after which the stragglers
// are drained, and never where next() is consulted).
func (s *wheelScheduler) wheelNext() (uint64, bool) {
	if s.wcount == 0 {
		return 0, false
	}
	start := s.now & wheelMask
	wi := start >> 6
	off := start & 63
	if w := s.occ[wi] &^ (1<<off - 1); w != 0 {
		b := wi<<6 + uint64(bits.TrailingZeros64(w))
		return s.now + (b-start)&wheelMask, true
	}
	for k := uint64(1); k < wheelWords; k++ {
		i := (wi + k) & wordMask
		if w := s.occ[i]; w != 0 {
			b := i<<6 + uint64(bits.TrailingZeros64(w))
			return s.now + (b-start)&wheelMask, true
		}
	}
	if w := s.occ[wi] & (1<<off - 1); w != 0 {
		b := wi<<6 + uint64(bits.TrailingZeros64(w))
		return s.now + (b-start)&wheelMask, true
	}
	return 0, false
}

func (s *wheelScheduler) len() int { return s.wcount + len(s.overflow) }

// advance moves the horizon to now+wheelSize and promotes every overflow
// event that now fits into the wheel. Promotion pops the overflow heap in
// (at, seq) order and appends, preserving FIFO within each bucket.
func (s *wheelScheduler) advance(now uint64) {
	s.now = now
	horizon := now + wheelSize
	for len(s.overflow) > 0 && s.overflow[0].at < horizon {
		ev := s.overflow.pop()
		s.appendBucket(uint64(ev.at)&wheelMask, ev)
	}
}
