package sim

import (
	"context"
	"errors"
	"fmt"
)

// ProtocolError is a structured, diagnosable protocol failure. Controllers
// raise one (via Failf) instead of a bare panic when they receive a message
// their state machine cannot legally see; the Engine.RunE boundary recovers
// it and hands it to the caller as an error, so a protocol bug surfaces as a
// report — component, cycle, offending message, state excerpt — rather than
// a process crash. The same shape carries host-side aborts (cancellation,
// deadlines, budget exhaustion, recovered job panics), distinguished by the
// Component* constants below.
type ProtocolError struct {
	// Component names the controller that detected the violation
	// ("l1x", "mesi dir", "watchdog", ...), or one of the Component*
	// abort classes.
	Component string
	// Cycle is the simulation cycle at which the violation was detected.
	Cycle uint64
	// Message describes the violation, usually quoting the offending
	// protocol message.
	Message string
	// State is an optional excerpt of the component's (or system's)
	// state at the point of failure — transaction tables, queue depths,
	// transient directory entries, or a watchdog diagnostic dump.
	State string
	// Cause, when non-nil, is the host-side error that provoked the
	// abort (a context cancellation, typically), reachable via errors.Is
	// through Unwrap.
	Cause error
}

// Host-side abort classes carried in ProtocolError.Component. They let
// callers (sweep runners, the fusiond job scheduler) distinguish "the
// protocol broke" from "the host gave up on the run".
const (
	// ComponentBudget marks a run that exhausted its cycle budget.
	ComponentBudget = "cycle-budget"
	// ComponentDeadline marks a run aborted by a wall-clock deadline.
	ComponentDeadline = "deadline"
	// ComponentCanceled marks a run aborted by caller cancellation.
	ComponentCanceled = "canceled"
	// ComponentPanic marks a run that panicked and was recovered at a
	// job boundary (see PanicError).
	ComponentPanic = "panic"
)

// Error implements the error interface.
func (e *ProtocolError) Error() string {
	s := fmt.Sprintf("%s: protocol failure at cycle %d: %s", e.Component, e.Cycle, e.Message)
	if e.State != "" {
		s += "\nstate:\n" + e.State
	}
	return s
}

// Unwrap exposes the host-side cause (if any) to errors.Is/errors.As.
func (e *ProtocolError) Unwrap() error { return e.Cause }

// IsCancellation reports whether err is a caller-initiated abort — a
// context cancellation or deadline, either raw or wrapped in a
// *ProtocolError — as opposed to a genuine simulation failure.
func IsCancellation(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return pe.Component == ComponentCanceled || pe.Component == ComponentDeadline
	}
	return false
}

// Failf aborts the current simulation step with a *ProtocolError. It panics;
// the panic is converted to an error at the Engine.RunE boundary. state may
// be empty when the component has no useful excerpt to attach.
func Failf(component string, cycle uint64, state string, format string, args ...interface{}) {
	panic(&ProtocolError{
		Component: component,
		Cycle:     cycle,
		Message:   fmt.Sprintf(format, args...),
		State:     state,
	})
}

// PanicError converts a value recovered from a panic into a structured
// *ProtocolError, preserving an already-structured one unchanged. Job
// boundaries (the fusiond scheduler) use it so an escaped simulator failure
// becomes a diagnosable job result instead of a daemon crash; stack is the
// goroutine stack captured at the recovery point.
func PanicError(component string, cycle uint64, recovered interface{}, stack string) *ProtocolError {
	if pe, ok := recovered.(*ProtocolError); ok {
		return pe
	}
	if err, ok := recovered.(error); ok {
		return &ProtocolError{
			Component: component, Cycle: cycle,
			Message: "panic: " + err.Error(), State: stack, Cause: err,
		}
	}
	return &ProtocolError{
		Component: component, Cycle: cycle,
		Message: fmt.Sprintf("panic: %v", recovered), State: stack,
	}
}
