package sim

import "fmt"

// ProtocolError is a structured, diagnosable protocol failure. Controllers
// raise one (via Failf) instead of a bare panic when they receive a message
// their state machine cannot legally see; the Engine.RunE boundary recovers
// it and hands it to the caller as an error, so a protocol bug surfaces as a
// report — component, cycle, offending message, state excerpt — rather than
// a process crash.
type ProtocolError struct {
	// Component names the controller that detected the violation
	// ("l1x", "mesi dir", "watchdog", ...).
	Component string
	// Cycle is the simulation cycle at which the violation was detected.
	Cycle uint64
	// Message describes the violation, usually quoting the offending
	// protocol message.
	Message string
	// State is an optional excerpt of the component's (or system's)
	// state at the point of failure — transaction tables, queue depths,
	// transient directory entries.
	State string
}

// Error implements the error interface.
func (e *ProtocolError) Error() string {
	s := fmt.Sprintf("%s: protocol failure at cycle %d: %s", e.Component, e.Cycle, e.Message)
	if e.State != "" {
		s += "\nstate:\n" + e.State
	}
	return s
}

// Failf aborts the current simulation step with a *ProtocolError. It panics;
// the panic is converted to an error at the Engine.RunE boundary. state may
// be empty when the component has no useful excerpt to attach.
func Failf(component string, cycle uint64, state string, format string, args ...interface{}) {
	panic(&ProtocolError{
		Component: component,
		Cycle:     cycle,
		Message:   fmt.Sprintf(format, args...),
		State:     state,
	})
}
