// Package sim provides the discrete, cycle-driven simulation kernel used by
// every timed component in the Fusion simulator.
//
// The kernel advances a global clock one cycle at a time. Each cycle has two
// phases:
//
//  1. The event phase: callbacks scheduled for the current cycle run in
//     scheduling order (stable FIFO among events that share a cycle).
//  2. The tick phase: every registered Ticker runs once, in registration
//     order.
//
// Both orderings are fully deterministic, which matters for a coherence
// simulator: two runs with the same inputs produce bit-identical message
// interleavings and statistics.
package sim

import (
	"container/heap"
)

// Ticker is a component that does work every cycle: drains its inbound
// queues, advances its pipeline, and sends messages.
type Ticker interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Tick performs one cycle of work at time now.
	Tick(now uint64)
}

// event is a scheduled callback.
type event struct {
	at  uint64
	seq uint64 // tie-break: schedule order
	fn  func(now uint64)
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is the simulation clock and event queue. It is not safe for
// concurrent use; the whole simulator is single-threaded by design.
type Engine struct {
	now     uint64
	seq     uint64
	events  eventHeap
	tickers []Ticker

	// Stopped is set by Stop; Run returns at the end of the current cycle.
	stopped bool

	// progress, when set, is invoked by Progress — the heartbeat sink for
	// a forward-progress Watchdog.
	progress func()
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Register adds a Ticker. Tick order is registration order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
}

// Schedule runs fn delay cycles from now. A delay of zero runs fn later in
// the current cycle's event phase if that phase is still draining, otherwise
// at the start of the next cycle's event phase.
func (e *Engine) Schedule(delay uint64, fn func(now uint64)) {
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at absolute cycle at, which must not be in the past.
func (e *Engine) ScheduleAt(at uint64, fn func(now uint64)) {
	if at < e.now {
		Failf("sim.engine", e.now, "", "ScheduleAt(%d) is in the past", at)
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Stop makes Run return at the end of the current cycle. A Stop issued
// before Run is honored: the next Run returns immediately, consuming the
// stop (so a subsequent Run proceeds normally).
func (e *Engine) Stop() { e.stopped = true }

// SetProgressListener installs the heartbeat sink invoked by Progress
// (typically a Watchdog's Beat). Passing nil disables forwarding.
func (e *Engine) SetProgressListener(fn func()) { e.progress = fn }

// Progress marks forward progress. Components call it at completion points —
// an op retiring, an MSHR freeing, a link delivering — never from retry
// loops, so a livelock does not masquerade as progress. It is a no-op unless
// a listener is installed.
func (e *Engine) Progress() {
	if e.progress != nil {
		e.progress()
	}
}

// Step advances the clock by exactly one cycle.
func (e *Engine) Step() {
	// Event phase: drain everything scheduled for the current cycle,
	// including events scheduled with zero delay while draining.
	for len(e.events) > 0 && e.events[0].at <= e.now {
		ev := heap.Pop(&e.events).(event)
		ev.fn(e.now)
	}
	// Tick phase.
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// Run steps the clock until pred returns true, the engine is stopped, or
// maxCycles elapse. It returns the number of cycles executed and whether the
// predicate was satisfied. A stop requested before Run (or during it) is
// consumed on return, so the engine is immediately runnable again.
func (e *Engine) Run(maxCycles uint64, pred func() bool) (cycles uint64, done bool) {
	start := e.now
	for e.now-start < maxCycles {
		if pred != nil && pred() {
			return e.now - start, true
		}
		if e.stopped {
			e.stopped = false
			return e.now - start, false
		}
		e.Step()
	}
	if pred != nil && pred() {
		return e.now - start, true
	}
	return e.now - start, false
}

// RunE is Run with structured failure recovery: a *ProtocolError raised by
// any event callback or ticker (protocol controllers via Failf, the
// Watchdog) stops the clock at the failing cycle and is returned as err
// instead of unwinding through the caller. Any other panic propagates
// unchanged — only diagnosed protocol failures are converted.
func (e *Engine) RunE(maxCycles uint64, pred func() bool) (cycles uint64, done bool, err error) {
	start := e.now
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProtocolError)
			if !ok {
				panic(r)
			}
			cycles, done, err = e.now-start, false, pe
			e.stopped = false
		}
	}()
	cycles, done = e.Run(maxCycles, pred)
	return cycles, done, nil
}

// Pending reports the number of outstanding scheduled events.
func (e *Engine) Pending() int { return len(e.events) }
