// Package sim provides the discrete, cycle-driven simulation kernel used by
// every timed component in the Fusion simulator.
//
// The kernel advances a global clock one cycle at a time. Each cycle has two
// phases:
//
//  1. The event phase: callbacks scheduled for the current cycle run in
//     scheduling order (stable FIFO among events that share a cycle).
//  2. The tick phase: every registered Ticker runs once, in registration
//     order.
//
// Both orderings are fully deterministic, which matters for a coherence
// simulator: two runs with the same inputs produce bit-identical message
// interleavings and statistics.
//
// Run additionally fast-forwards over quiescent stretches: when every
// registered Ticker declares itself idle (see IdleTicker) and no event is
// due, the clock jumps straight to the next event instead of executing
// empty cycles. The jump is invisible to components — cycle counts, event
// ordering, predicate observation points, and watchdog trip cycles are all
// identical to per-cycle stepping.
package sim

// Ticker is a component that does work every cycle: drains its inbound
// queues, advances its pipeline, and sends messages.
type Ticker interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Tick performs one cycle of work at time now.
	Tick(now uint64)
}

// IdleTicker is optionally implemented by Tickers that can prove their Tick
// is a no-op until some scheduled event changes their state. While Idle
// reports true, Tick must neither mutate state nor observe the passage of
// cycles (no counters, no timeouts) — the engine is then free to skip the
// ticker's Tick calls entirely during a quiescence fast-forward. Tickers
// that do not implement the interface conservatively count as always busy,
// which disables fast-forwarding for the whole engine.
type IdleTicker interface {
	Idle() bool
}

// Waker is optionally implemented by tickers that, even while idle, must be
// ticked again no later than a specific future cycle (the watchdog's trip
// deadline is the canonical case). WakeAt returns that cycle; ok=false
// means the ticker imposes no deadline. A quiescence fast-forward never
// jumps past any waker's deadline.
type Waker interface {
	WakeAt(now uint64) (at uint64, ok bool)
}

// EventHandler is the closure-free event target. Hot components (link
// delivery, fabric delivery, directory request intake, lease expiry)
// implement it once; ScheduleCall then carries only an interface pointer, a
// handler-private opcode, and one integer argument — no func allocation per
// event. Cold paths keep using Schedule with closures.
type EventHandler interface {
	HandleEvent(now uint64, op uint8, arg uint64)
}

// event is a scheduled callback: either a closure (fn) or a closure-free
// handler dispatch (h/op/arg) — exactly one of fn and h is non-nil.
type event struct {
	at  uint64
	seq uint64 // tie-break: schedule order
	fn  func(now uint64)
	h   EventHandler
	op  uint8
	arg uint64
}

// eventHeap is a binary min-heap of events ordered by (at, seq). It is
// monomorphic on purpose: the previous container/heap implementation boxed
// every event into an interface{} on Push and Pop, which both allocated and
// kept retired closures reachable. Pop zeroes the vacated slot so the
// popped event's fn is collectable as soon as it has run.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !hh.less(i, parent) {
			break
		}
		hh[i], hh[parent] = hh[parent], hh[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	hh := *h
	top := hh[0]
	n := len(hh) - 1
	hh[0] = hh[n]
	hh[n] = event{} // zero the slot so the retired closure is GC-able
	hh = hh[:n]
	*h = hh
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && hh.less(l, smallest) {
			smallest = l
		}
		if r < n && hh.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		hh[i], hh[smallest] = hh[smallest], hh[i]
		i = smallest
	}
	return top
}

// Engine is the simulation clock and event queue. It is not safe for
// concurrent use; each simulation is single-threaded by design (a sweep
// parallelizes across engines, never within one).
type Engine struct {
	now     uint64
	seq     uint64
	sched   scheduler
	tickers []Ticker

	// idlers[i] is tickers[i]'s IdleTicker view, nil if not implemented.
	// busyTickers counts the nil entries: fast-forwarding requires every
	// ticker to be able to prove idleness, so one opaque ticker pins the
	// engine to per-cycle stepping.
	idlers      []IdleTicker
	busyTickers int
	wakers      []Waker
	noIdleSkip  bool

	// Stopped is set by Stop; Run returns at the end of the current cycle.
	stopped bool

	// progress, when set, is invoked by Progress — the heartbeat sink for
	// a forward-progress Watchdog.
	progress func()

	// interrupt, when set, is polled by Run at most once every
	// interruptEvery cycles; a non-nil return aborts the run with that
	// error (surfaced by RunE). This is how host-side control — context
	// cancellation, wall-clock deadlines — reaches into a simulation
	// without the simulation itself ever reading the wall clock.
	interrupt      func() error
	interruptEvery uint64
	interruptNext  uint64
	interruptErr   error
}

// NewEngine returns an engine with the clock at cycle 0, using the default
// time-wheel scheduler (see SetScheduler).
func NewEngine() *Engine {
	return &Engine{sched: newWheelScheduler()}
}

// SetScheduler selects the event-queue implementation: SchedulerWheel (the
// default — O(1) push/pop through a calendar of cycle buckets) or
// SchedulerHeap (the reference binary heap). The two are observationally
// identical; the knob exists for A/B validation and as an escape hatch.
// It must be called before any event is scheduled.
func (e *Engine) SetScheduler(kind string) {
	if e.sched.len() != 0 {
		Failf("sim.engine", e.now, "", "SetScheduler(%q) with %d events pending", kind, e.sched.len())
	}
	switch kind {
	case SchedulerHeap:
		e.sched = &heapScheduler{}
	case SchedulerWheel:
		e.sched = newWheelScheduler()
	default:
		Failf("sim.engine", e.now, "", "unknown scheduler %q (want %q or %q)", kind, SchedulerHeap, SchedulerWheel)
	}
	e.sched.advance(e.now)
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Register adds a Ticker. Tick order is registration order.
func (e *Engine) Register(t Ticker) {
	e.tickers = append(e.tickers, t)
	it, ok := t.(IdleTicker)
	if !ok {
		e.busyTickers++
	}
	e.idlers = append(e.idlers, it)
	if w, ok := t.(Waker); ok {
		e.wakers = append(e.wakers, w)
	}
}

// SetIdleSkip enables or disables quiescence fast-forwarding in Run. It is
// on by default; disabling it forces per-cycle stepping, which is useful
// for A/B-validating that a skip never changes simulation results.
func (e *Engine) SetIdleSkip(enabled bool) { e.noIdleSkip = !enabled }

// bumpSeq returns the next event sequence number. seq only ever needs to
// order events that coexist in the queue, so it rebases to zero whenever
// the queue drains. Wraparound would otherwise (after 2^64 schedules)
// violate the FIFO tie-break; with rebasing, a wrap requires 2^64 events
// pending at once, which cannot be represented in memory. See
// TestSeqRebasesWhenHeapDrains / TestSeqOrderingNearMax.
func (e *Engine) bumpSeq() uint64 {
	if e.sched.len() == 0 {
		e.seq = 0
	}
	e.seq++
	return e.seq
}

// Schedule runs fn delay cycles from now. A delay of zero runs fn later in
// the current cycle's event phase if that phase is still draining, otherwise
// at the start of the next cycle's event phase.
func (e *Engine) Schedule(delay uint64, fn func(now uint64)) {
	e.sched.push(event{at: e.now + delay, seq: e.bumpSeq(), fn: fn})
}

// ScheduleAt runs fn at absolute cycle at, which must not be in the past.
func (e *Engine) ScheduleAt(at uint64, fn func(now uint64)) {
	if at < e.now {
		Failf("sim.engine", e.now, "", "ScheduleAt(%d) is in the past", at)
	}
	e.sched.push(event{at: at, seq: e.bumpSeq(), fn: fn})
}

// ScheduleCall runs h.HandleEvent(now, op, arg) delay cycles from now. It is
// the closure-free twin of Schedule: the event carries no func value, so a
// steady-state schedule allocates nothing once the heap's backing array has
// warmed up. op and arg are opaque to the engine.
func (e *Engine) ScheduleCall(delay uint64, h EventHandler, op uint8, arg uint64) {
	e.sched.push(event{at: e.now + delay, seq: e.bumpSeq(), h: h, op: op, arg: arg})
}

// ScheduleCallAt is ScheduleCall with an absolute cycle, which must not be
// in the past.
func (e *Engine) ScheduleCallAt(at uint64, h EventHandler, op uint8, arg uint64) {
	if at < e.now {
		Failf("sim.engine", e.now, "", "ScheduleCallAt(%d) is in the past", at)
	}
	e.sched.push(event{at: at, seq: e.bumpSeq(), h: h, op: op, arg: arg})
}

// Stop makes Run return at the end of the current cycle. A Stop issued
// before Run is honored: the next Run returns immediately, consuming the
// stop (so a subsequent Run proceeds normally).
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs fn as Run's abort poll, invoked at most once every
// `every` cycles (0 means every cycle). A non-nil return stops the run at
// the current cycle; RunE then surfaces that error to the caller. The poll
// only ever aborts — it must not mutate simulation state — so arming it
// cannot change the results of a run that completes. Passing a nil fn
// disarms the poll.
func (e *Engine) SetInterrupt(every uint64, fn func() error) {
	if every == 0 {
		every = 1
	}
	e.interrupt = fn
	e.interruptEvery = every
	e.interruptNext = e.now + every
}

// checkInterrupt polls the interrupt hook when its cycle quota has elapsed.
// It reports true when the run must abort (the error is parked in
// interruptErr for RunE to pick up).
func (e *Engine) checkInterrupt() bool {
	if e.interrupt == nil || e.now < e.interruptNext {
		return false
	}
	e.interruptNext = e.now + e.interruptEvery
	if err := e.interrupt(); err != nil {
		e.interruptErr = err
		return true
	}
	return false
}

// SetProgressListener installs the heartbeat sink invoked by Progress
// (typically a Watchdog's Beat). Passing nil disables forwarding.
func (e *Engine) SetProgressListener(fn func()) { e.progress = fn }

// Progress marks forward progress. Components call it at completion points —
// an op retiring, an MSHR freeing, a link delivering — never from retry
// loops, so a livelock does not masquerade as progress. It is a no-op unless
// a listener is installed.
func (e *Engine) Progress() {
	if e.progress != nil {
		e.progress()
	}
}

// Step advances the clock by exactly one cycle. It never fast-forwards;
// manual Step loops retain strict per-cycle semantics.
func (e *Engine) Step() {
	// Let the scheduler catch up with the clock (the wheel promotes
	// overflow events that entered the near horizon; the heap ignores it).
	e.sched.advance(e.now)
	// Event phase: drain everything scheduled for the current cycle,
	// including events scheduled with zero delay while draining.
	for {
		ev, ok := e.sched.popDue(e.now)
		if !ok {
			break
		}
		if ev.fn != nil {
			ev.fn(e.now)
		} else {
			ev.h.HandleEvent(e.now, ev.op, ev.arg)
		}
	}
	// Tick phase.
	for _, t := range e.tickers {
		t.Tick(e.now)
	}
	e.now++
}

// skipTarget reports the cycle Run may jump to without executing the
// intervening cycles, and whether such a jump is possible. A jump is legal
// only when no event is due at the current cycle and every ticker proves
// itself idle; it lands on the earliest of the next event, any waker's
// deadline, and limit (Run's cycle budget).
func (e *Engine) skipTarget(limit uint64) (uint64, bool) {
	if e.noIdleSkip || e.busyTickers > 0 {
		return 0, false
	}
	target := limit
	if at, ok := e.sched.next(); ok {
		if at <= e.now {
			return 0, false // work is due this cycle
		} else if at < target {
			target = at
		}
	}
	if target <= e.now {
		return 0, false
	}
	for _, it := range e.idlers {
		if !it.Idle() {
			return 0, false
		}
	}
	for _, w := range e.wakers {
		if at, ok := w.WakeAt(e.now); ok && at < target {
			if at <= e.now {
				return 0, false
			}
			target = at
		}
	}
	return target, true
}

// Run steps the clock until pred returns true, the engine is stopped, or
// maxCycles elapse. It returns the number of cycles executed and whether the
// predicate was satisfied. A stop requested before Run (or during it) is
// consumed on return, so the engine is immediately runnable again.
//
// Quiescent stretches — every ticker idle, no event due — are
// fast-forwarded: the clock jumps to the next event (or waker deadline, or
// the cycle budget) in one assignment. Skipped cycles count toward
// maxCycles exactly as if they had been stepped, and pred is next observed
// at the skipped-to cycle; since no component state can change during a
// quiescent stretch, pred could not have flipped at any skipped cycle.
func (e *Engine) Run(maxCycles uint64, pred func() bool) (cycles uint64, done bool) {
	start := e.now
	limit := start + maxCycles
	for e.now < limit {
		if pred != nil && pred() {
			return e.now - start, true
		}
		if e.stopped {
			e.stopped = false
			return e.now - start, false
		}
		if e.checkInterrupt() {
			return e.now - start, false
		}
		if target, ok := e.skipTarget(limit); ok {
			e.now = target
			continue
		}
		e.Step()
	}
	if pred != nil && pred() {
		return e.now - start, true
	}
	return e.now - start, false
}

// RunE is Run with structured failure recovery: a *ProtocolError raised by
// any event callback or ticker (protocol controllers via Failf, the
// Watchdog) stops the clock at the failing cycle and is returned as err
// instead of unwinding through the caller, as is an abort requested by the
// interrupt poll (SetInterrupt). Any other panic propagates unchanged —
// only diagnosed protocol failures are converted.
func (e *Engine) RunE(maxCycles uint64, pred func() bool) (cycles uint64, done bool, err error) {
	start := e.now
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*ProtocolError)
			if !ok {
				panic(r)
			}
			cycles, done, err = e.now-start, false, pe
			e.stopped = false
		}
	}()
	cycles, done = e.Run(maxCycles, pred)
	if e.interruptErr != nil {
		err = e.interruptErr
		e.interruptErr = nil
	}
	return cycles, done, err
}

// Pending reports the number of outstanding scheduled events.
func (e *Engine) Pending() int { return e.sched.len() }
