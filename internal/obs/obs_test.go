package obs

import "testing"

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Load:  "LD",
		Store: "ST",
		Fill:  "FILL",
		Grant: "GRANT",
	}
	for k := Load; k <= Grant; k++ {
		if k.String() != want[k] {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want[k])
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}
