// Package obs defines the lightweight observation hook the litmus harness
// (internal/litmus) threads through every agent-facing data port: L0X and
// L1X in the accelerator tile, mesi.Client on the host side, and the
// SCRATCH scratchpad. Each load or store an agent performs is reported as
// one Observation; the checker replays the stream against the system's
// declared visibility model.
//
// The hook is designed for a zero-cost off state: components hold a nil
// Observer by default and guard every Record call with a nil check, so the
// per-cycle hot path stays within the allocation budgets (BENCH_BUDGET.json)
// when tracing is off. Observation is passed by value — recording never
// allocates in the component; the Observer owns any buffering.
package obs

import "fmt"

// Kind classifies an observation.
type Kind uint8

const (
	// Load is an agent-visible read; Ver is the version the agent observed.
	Load Kind = iota
	// Store is an agent-visible write; Ver is the version it produced.
	Store
	// Fill is data installed into an agent-local store from the backing
	// hierarchy (scratchpad DMA-in); Ver is the version installed.
	Fill
	// Grant is an L1X lease grant (diagnostic only; not value-checked).
	Grant
)

var kindNames = [...]string{"LD", "ST", "FILL", "GRANT"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Observation records one agent-visible data event: who touched which
// address at which cycle, the modeled payload version involved, and — for
// leased (L0X) reads — the lease under which the value was readable.
type Observation struct {
	Cycle uint64
	Agent string // stable component name, e.g. "l0x.1", "hostl1"
	// Addr is the full accessed address; line = Addr &^ (LineBytes-1),
	// offset = Addr & (LineBytes-1). Virtual for tile-side agents,
	// physical (Phys=true) for host-side MESI agents.
	Addr uint64
	// Ver is the modeled payload version: observed on Load/Fill, produced
	// on Store.
	Ver uint64
	// Lease is the absolute expiry the value was readable until, for reads
	// and writes performed under an ACC lease. Zero marks a strict
	// (invalidation-coherent) agent, which must always observe the latest
	// globally-ordered write.
	Lease uint64
	// Epoch is the synchronization epoch (phase index) the access belongs
	// to. Components leave it zero; the recorder stamps it.
	Epoch int32
	Kind  Kind
	// Phys marks Addr as a physical address (host-side agents observe
	// post-translation addresses).
	Phys bool
	// Delta marks a scratchpad store to a write-allocated line whose base
	// version is unknown; Ver is a within-window delta, not absolute.
	Delta bool
}

// Observer receives the observation stream. Implementations must be cheap:
// Record runs on cache hit paths.
type Observer interface {
	// Record reports one observation. The Epoch field is unset by callers.
	Record(o Observation)
	// Epoch marks the start of synchronization epoch n at the given cycle;
	// the runner calls it at every phase boundary.
	Epoch(n int, cycle uint64)
}
