package ptrace

import (
	"strings"
	"testing"
)

func ev(k Kind, cycle uint64) Event {
	return Event{Cycle: cycle, Source: "l1x", Kind: k, Addr: 0x1000}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, Source: "l0x.1", Kind: LeaseGrant, Addr: 0x40, Detail: "axc1 until 542"}
	s := e.String()
	for _, want := range []string{"42", "l0x.1", "lease-grant", "0x40", "until 542"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestWriterCapsOutput(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb, Max: 2}
	for i := 0; i < 5; i++ {
		w.Emit(ev(Writeback, uint64(i)))
	}
	out := sb.String()
	if strings.Count(out, "writeback") != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", strings.Count(out, "writeback"), out)
	}
	if !strings.Contains(out, "capped") {
		t.Fatal("no cap notice")
	}
}

func TestWriterUnlimited(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	for i := 0; i < 10; i++ {
		w.Emit(ev(SelfInvalidate, uint64(i)))
	}
	if strings.Count(sb.String(), "self-invalidate") != 10 {
		t.Fatal("unlimited writer dropped events")
	}
}

func TestCollectorFilterAndCount(t *testing.T) {
	c := &Collector{}
	c.Emit(ev(LeaseGrant, 1))
	c.Emit(ev(EpochGrant, 2))
	c.Emit(ev(LeaseGrant, 3))
	if c.Count(LeaseGrant) != 2 || c.Count(EpochGrant) != 1 || c.Count(Writeback) != 0 {
		t.Fatalf("counts wrong: %d/%d/%d",
			c.Count(LeaseGrant), c.Count(EpochGrant), c.Count(Writeback))
	}
	grants := c.Filter(LeaseGrant)
	if len(grants) != 2 || grants[0].Cycle != 1 || grants[1].Cycle != 3 {
		t.Fatalf("Filter = %+v", grants)
	}
}

func TestCollectorCap(t *testing.T) {
	c := &Collector{Max: 3}
	for i := 0; i < 10; i++ {
		c.Emit(ev(DirRead, uint64(i)))
	}
	if len(c.Events) != 3 {
		t.Fatalf("collected %d, want 3", len(c.Events))
	}
}
