// Package ptrace provides message-level protocol tracing: the simulator's
// coherence controllers emit typed events at every protocol transition, so
// a run can be inspected the way the paper's Figures 4 and 5 present the
// ACC/MESI message sequences.
//
// Tracing is opt-in and zero-cost when disabled (controllers hold a nil
// Tracer).
package ptrace

import (
	"fmt"
	"io"
)

// Kind classifies a protocol event.
type Kind string

// ACC-protocol events (accelerator tile).
const (
	L0XMiss        Kind = "l0x-miss"        // lease/epoch request leaves an L0X
	LeaseGrant     Kind = "lease-grant"     // L1X grants a read lease
	EpochGrant     Kind = "epoch-grant"     // L1X grants a write epoch
	SelfInvalidate Kind = "self-invalidate" // L0X drops an expired line (no message)
	SelfDowngrade  Kind = "self-downgrade"  // write epoch expiry forces a writeback
	Writeback      Kind = "writeback"       // dirty line returns to the L1X
	DxForward      Kind = "dx-forward"      // producer pushes a line to a consumer L0X
	WLockStall     Kind = "wlock-stall"     // request parked behind a write epoch
	GTimeStall     Kind = "gtime-stall"     // write parked behind foreign read leases
	L1XFetch       Kind = "l1x-fetch"       // L1X miss goes to the host (via AX-TLB)
	HostFwdIn      Kind = "host-fwd"        // MESI Fwd arrives at the tile (AX-RMAP)
	FwdParked      Kind = "fwd-parked"      // response waits for GTIME in the WB buffer
	Relinquish     Kind = "relinquish"      // tile gives the line back to the host
)

// Host-MESI events (directory).
const (
	DirRead     Kind = "dir-gets"
	DirWrite    Kind = "dir-getm"
	DirForward  Kind = "dir-fwd"
	DirPut      Kind = "dir-put"
	DirDMARead  Kind = "dir-dma-read"
	DirDMAWrite Kind = "dir-dma-write"
)

// Event is one protocol transition.
type Event struct {
	Cycle  uint64
	Source string // emitting component ("l0x.1", "l1x", "dir")
	Kind   Kind
	Addr   uint64 // line address (virtual in the tile, physical host-side)
	Detail string // free-form context ("lease=1520", "to axc2")
}

func (e Event) String() string {
	s := fmt.Sprintf("%8d  %-8s %-16s %#x", e.Cycle, e.Source, e.Kind, e.Addr)
	if e.Detail != "" {
		s += "  " + e.Detail
	}
	return s
}

// Tracer receives protocol events.
type Tracer interface {
	Emit(Event)
}

// Writer streams formatted events to an io.Writer, optionally stopping
// after Max events (0 = unlimited).
type Writer struct {
	W   io.Writer
	Max int
	n   int
}

// Emit implements Tracer.
func (t *Writer) Emit(e Event) {
	if t.Max > 0 && t.n >= t.Max {
		return
	}
	t.n++
	fmt.Fprintln(t.W, e.String())
	if t.Max > 0 && t.n == t.Max {
		fmt.Fprintf(t.W, "... (trace capped at %d events)\n", t.Max)
	}
}

// Collector accumulates events in memory, optionally bounded by Max.
type Collector struct {
	Max    int
	Events []Event
}

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	if c.Max > 0 && len(c.Events) >= c.Max {
		return
	}
	c.Events = append(c.Events, e)
}

// Count returns how many events of kind k were collected.
func (c *Collector) Count(k Kind) int {
	n := 0
	for _, e := range c.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Filter returns the collected events of kind k.
func (c *Collector) Filter(k Kind) []Event {
	var out []Event
	for _, e := range c.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
