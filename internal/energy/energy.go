// Package energy implements the dynamic-energy model of the Fusion paper's
// evaluation (Section 4, "Energy Model").
//
// The paper models cache energy with CACTI (45 nm ITRS HP), link energy at
// 1 pJ/mm/byte with wire lengths derived from component areas, and
// fixed-function datapath energy with Aladdin-style activity counts. CACTI
// is not reproducible offline, so this package embeds per-access energies
// chosen to match every ratio the paper states:
//
//   - a 4 KB L0X access is 1.5x cheaper than a heavily banked 64 KB L1X
//     access (Section 5.2, Lesson 3);
//   - the 256 KB L1X costs 2x the 64 KB L1X per access (Section 5.5);
//   - L0X tag checks carry a 32-bit timestamp compare, accounted as a 15%
//     energy overhead on the access (Section 4);
//   - link energies: accelerator<->L1X 0.4 pJ/B, L1X<->host L2 6 pJ/B
//     (Table 2), and L0X<->L0X direct forwarding 0.1 pJ/B (Section 5.4);
//   - compute: ~0.5 pJ per integer op (Dally [2]); FP ops cost several x
//     more.
//
// Absolute joule figures in this simulator are therefore indicative; the
// relative comparisons (the paper's actual results) are preserved.
package energy

import (
	"fmt"
	"io"
	"sort"
)

// Model holds every per-event energy parameter, in picojoules.
type Model struct {
	// Accelerator-tile storage.
	L0XAccessSmall float64 // 4 KB private L0X cache, per access (incl. tag)
	L0XAccessLarge float64 // 8 KB L0X
	L1XAccessSmall float64 // 64 KB 16-bank shared L1X
	L1XAccessLarge float64 // 256 KB L1X
	ScratchSmall   float64 // 4 KB scratchpad RAM (no tags)
	ScratchLarge   float64 // 8 KB scratchpad RAM

	// TimestampOverhead is the fractional energy added to ACC-protocol cache
	// accesses for the 32-bit timestamp field check (paper: 15%).
	TimestampOverhead float64

	// Host-side storage.
	HostL1Access float64 // 64 KB 4-way host L1D
	L2Access     float64 // 4 MB 16-way NUCA LLC, per bank access
	DRAMAccess   float64 // per 64 B DRAM line transfer (activation amortized)

	// Address translation.
	TLBLookup  float64 // AX-TLB lookup on the L1X miss path
	RMAPLookup float64 // AX-RMAP reverse-map lookup on forwarded requests

	// Interconnect, per byte.
	LinkL0XL1X float64 // accelerator <-> shared L1X (Table 2: 0.4 pJ/B)
	LinkL1XL2  float64 // L1X <-> host L2 (Table 2: 6 pJ/B)
	LinkL0XL0X float64 // direct L0X <-> L0X forwarding (Section 5.4: 0.1 pJ/B)
	LinkL2DRAM float64 // LLC <-> memory controller

	// Datapath activity.
	IntOp float64 // integer ALU op
	FPOp  float64 // floating-point op

	// PolicyCheck is one placement/cacheability decision: an ADAPTIVE
	// per-task policy evaluation or a HYDRA per-fill filter check — a
	// counter compare against a small table, far cheaper than a cache
	// access.
	PolicyCheck float64
}

// Default returns the calibrated model described in the package comment.
func Default() Model {
	return Model{
		L0XAccessSmall:    4.2,
		L0XAccessLarge:    5.6,
		L1XAccessSmall:    6.3,  // 1.5x the 4K L0X
		L1XAccessLarge:    12.6, // 2x the small L1X
		ScratchSmall:      3.5,  // RAM, no tag array
		ScratchLarge:      4.7,
		TimestampOverhead: 0.15,
		HostL1Access:      8.1,
		L2Access:          38.0,
		DRAMAccess:        2100.0,
		TLBLookup:         1.4,
		RMAPLookup:        1.7,
		LinkL0XL1X:        0.4,
		LinkL1XL2:         6.0,
		LinkL0XL0X:        0.1,
		LinkL2DRAM:        12.0,
		// Per-op energies include operand delivery within the datapath
		// (registers/muxes), not just the bare ALU (~0.5 pJ [2]).
		IntOp: 2.0,
		FPOp:  8.0,
		// A handful of counter compares and a table read.
		PolicyCheck: 0.5,
	}
}

// Cat is a meter category: a dense index into the meter's accumulator
// array. The meter is bumped on every cache access, link transfer, and
// datapath op, so categories are small integers, not strings — a string
// key would pay a map hash per event (the hot-path discipline of
// DESIGN.md §4c).
type Cat uint8

// Standard meter categories. Figure 6a stacks energy by these components.
// CatNone is the zero value, "unmetered": Add ignores it, so components
// whose config leaves the category unset stay free.
const (
	CatNone     Cat = iota // unmetered
	CatL0X                 // private L0X cache accesses
	CatL1X                 // shared L1X cache accesses
	CatScratch             // scratchpad RAM accesses
	CatL2                  // host LLC accesses
	CatDRAM                // main memory
	CatHostL1              // host L1D
	CatLinkTile            // L0X<->L1X link (msgs + data)
	CatLinkHost            // L1X<->L2 link (and scratchpad DMA path)
	CatLinkFwd             // L0X<->L0X direct forwarding
	CatLinkMem             // L2<->DRAM
	CatVM                  // AX-TLB + AX-RMAP
	CatCompute             // accelerator datapath ops
	CatPolicy              // ADAPTIVE placement / HYDRA cacheability decisions
	numCats
)

var catNames = [numCats]string{
	CatNone:     "",
	CatL0X:      "l0x",
	CatL1X:      "l1x",
	CatScratch:  "scratch",
	CatL2:       "l2",
	CatDRAM:     "dram",
	CatHostL1:   "hostl1",
	CatLinkTile: "link.tile",
	CatLinkHost: "link.host",
	CatLinkFwd:  "link.fwd",
	CatLinkMem:  "link.mem",
	CatVM:       "vm",
	CatCompute:  "compute",
	CatPolicy:   "policy",
}

// String returns the category's report name.
func (c Cat) String() string { return catNames[c] }

// Meter accumulates picojoules by category, preserving insertion order.
// The accumulators are a dense array indexed by Cat, so Add on the hot
// path is two array stores and no hashing.
type Meter struct {
	order []Cat
	seen  [numCats]bool
	pJ    [numCats]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Add accumulates pj picojoules under category cat (CatNone is ignored).
func (m *Meter) Add(cat Cat, pj float64) {
	if cat == CatNone {
		return
	}
	if !m.seen[cat] {
		m.seen[cat] = true
		m.order = append(m.order, cat)
	}
	m.pJ[cat] += pj
}

// Get returns the picojoules accumulated under cat.
func (m *Meter) Get(cat Cat) float64 { return m.pJ[cat] }

// Total returns the sum over all categories. Summation follows insertion
// order: float addition is not associative, and a fixed array-order sweep
// would change totals in the last bits relative to the order categories
// first appeared in.
func (m *Meter) Total() float64 {
	var t float64
	for _, c := range m.order {
		t += m.pJ[c]
	}
	return t
}

// Categories returns the category names in insertion order.
func (m *Meter) Categories() []string {
	out := make([]string, len(m.order))
	for i, c := range m.order {
		out[i] = catNames[c]
	}
	return out
}

// Merge adds every category of other into m.
func (m *Meter) Merge(other *Meter) {
	for _, c := range other.order {
		m.Add(c, other.pJ[c])
	}
}

// Reset clears the meter.
func (m *Meter) Reset() {
	m.order = m.order[:0]
	m.seen = [numCats]bool{}
	m.pJ = [numCats]float64{}
}

// Dump writes "category picojoules" lines sorted by category name.
func (m *Meter) Dump(w io.Writer) {
	cats := append([]Cat(nil), m.order...)
	sort.Slice(cats, func(i, j int) bool { return catNames[cats[i]] < catNames[cats[j]] })
	for _, c := range cats {
		fmt.Fprintf(w, "%-16s %18.1f pJ\n", catNames[c], m.pJ[c])
	}
	fmt.Fprintf(w, "%-16s %18.1f pJ\n", "TOTAL", m.Total())
}

// WithTimestamp returns the access energy pj inflated by the ACC timestamp
// check overhead.
func (mo Model) WithTimestamp(pj float64) float64 {
	return pj * (1 + mo.TimestampOverhead)
}
