package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultModelRatios(t *testing.T) {
	m := Default()
	// Lesson 3: L0X is 1.5x more energy efficient than the banked L1X.
	if r := m.L1XAccessSmall / m.L0XAccessSmall; math.Abs(r-1.5) > 0.01 {
		t.Errorf("L1X/L0X ratio = %.2f, want 1.5", r)
	}
	// Section 5.5: large L1X costs 2x the small L1X.
	if r := m.L1XAccessLarge / m.L1XAccessSmall; math.Abs(r-2.0) > 0.01 {
		t.Errorf("L1X large/small ratio = %.2f, want 2.0", r)
	}
	// Table 2 / Section 5.4 link energies.
	if m.LinkL0XL1X != 0.4 || m.LinkL1XL2 != 6.0 || m.LinkL0XL0X != 0.1 {
		t.Errorf("link energies = %v/%v/%v, want 0.4/6.0/0.1",
			m.LinkL0XL1X, m.LinkL1XL2, m.LinkL0XL0X)
	}
	// Section 4: 15% timestamp tag-check overhead.
	if m.TimestampOverhead != 0.15 {
		t.Errorf("timestamp overhead = %v, want 0.15", m.TimestampOverhead)
	}
	// Op energies: a couple of pJ per int op (ALU + operand delivery); FP
	// costs several times more.
	if m.IntOp < 0.5 || m.IntOp > 5 || m.FPOp <= m.IntOp {
		t.Errorf("op energies int=%v fp=%v", m.IntOp, m.FPOp)
	}
	// Scratchpad (no tags) must be cheaper than the same-size L0X cache.
	if m.ScratchSmall >= m.L0XAccessSmall {
		t.Error("scratchpad should be cheaper than L0X cache")
	}
	// Hierarchy must be monotone: L0X < L1X < L2 < DRAM.
	if !(m.L0XAccessSmall < m.L1XAccessSmall && m.L1XAccessSmall < m.L2Access && m.L2Access < m.DRAMAccess) {
		t.Error("per-access energy not monotone up the hierarchy")
	}
}

func TestWithTimestamp(t *testing.T) {
	m := Default()
	got := m.WithTimestamp(100)
	if math.Abs(got-115) > 1e-9 {
		t.Fatalf("WithTimestamp(100) = %v, want 115", got)
	}
}

func TestMeterAddGetTotal(t *testing.T) {
	mt := NewMeter()
	mt.Add(CatL0X, 10)
	mt.Add(CatL0X, 5)
	mt.Add(CatL1X, 2)
	if mt.Get(CatL0X) != 15 {
		t.Fatalf("Get(l0x) = %v, want 15", mt.Get(CatL0X))
	}
	if mt.Total() != 17 {
		t.Fatalf("Total = %v, want 17", mt.Total())
	}
}

func TestMeterMerge(t *testing.T) {
	a, b := NewMeter(), NewMeter()
	a.Add(CatL2, 1)
	b.Add(CatL2, 2)
	b.Add(CatDRAM, 3)
	a.Merge(b)
	if a.Get(CatL2) != 3 || a.Get(CatDRAM) != 3 {
		t.Fatalf("merge wrong: l2=%v dram=%v", a.Get(CatL2), a.Get(CatDRAM))
	}
}

func TestMeterCategoriesOrderAndReset(t *testing.T) {
	mt := NewMeter()
	mt.Add(CatVM, 1)
	mt.Add(CatCompute, 1)
	mt.Add(CatVM, 1)
	cats := mt.Categories()
	if len(cats) != 2 || cats[0] != "vm" || cats[1] != "compute" {
		t.Fatalf("Categories = %v", cats)
	}
	mt.Reset()
	if mt.Total() != 0 || len(mt.Categories()) != 0 {
		t.Fatal("Reset did not clear")
	}
	// CatNone is the "unmetered" sink: adding under it must be invisible.
	mt.Add(CatNone, 7)
	if mt.Total() != 0 || len(mt.Categories()) != 0 {
		t.Fatal("CatNone was metered")
	}
}

func TestMeterDump(t *testing.T) {
	mt := NewMeter()
	mt.Add(CatCompute, 42)
	var sb strings.Builder
	mt.Dump(&sb)
	if !strings.Contains(sb.String(), "compute") || !strings.Contains(sb.String(), "TOTAL") {
		t.Fatalf("dump missing fields:\n%s", sb.String())
	}
}

// Property: Total always equals the sum of per-category Gets.
func TestMeterTotalProperty(t *testing.T) {
	f := func(adds []uint8) bool {
		mt := NewMeter()
		var want float64
		cats := []Cat{CatL0X, CatL1X, CatL2, CatDRAM}
		for i, v := range adds {
			mt.Add(cats[i%len(cats)], float64(v))
			want += float64(v)
		}
		return math.Abs(mt.Total()-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
