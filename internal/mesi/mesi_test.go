package mesi

import (
	"math/rand"
	"testing"

	"fusion/internal/cache"
	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

type harness struct {
	eng     *sim.Engine
	fab     *Fabric
	dir     *Directory
	st      *stats.Set
	mt      *energy.Meter
	clients []*Client
}

func newHarness(t *testing.T, nClients int) *harness {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	dir := NewDirectory(fab, DefaultDirConfig(), d, model, mt, st)
	h := &harness{eng: eng, fab: fab, dir: dir, st: st, mt: mt}
	for i := 0; i < nClients; i++ {
		cfg := DefaultHostL1Config(model)
		cfg.Name = "l1." + string(rune('a'+i))
		h.clients = append(h.clients, NewClient(fab, AgentID(1+i), cfg, model, mt, st))
	}
	return h
}

func (h *harness) run(t *testing.T, max uint64, pred func() bool) {
	t.Helper()
	if _, done := h.eng.Run(max, pred); !done {
		t.Fatalf("simulation did not converge within %d cycles", max)
	}
}

// do performs one access and waits for it to retire.
func (h *harness) do(t *testing.T, c *Client, kind mem.AccessKind, addr mem.PAddr) {
	t.Helper()
	fired := false
	if !c.Access(kind, addr, func(uint64) { fired = true }) {
		t.Fatal("MSHR full on idle cache")
	}
	h.run(t, 100000, func() bool { return fired })
}

func TestColdLoadFillsExclusive(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Load, 0x1000)
	l := c.Peek(0x1000)
	if l == nil || l.State != cache.Exclusive {
		t.Fatalf("line = %+v, want Exclusive", l)
	}
	state, owner, _ := h.dir.Sharers(0x1000)
	if state != "E" || owner != c.ID() {
		t.Fatalf("dir = %s owner %d, want E owner %d", state, owner, c.ID())
	}
}

func TestLoadHitIsFast(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Load, 0x1000)
	start := h.eng.Now()
	h.do(t, c, mem.Load, 0x1000)
	if d := h.eng.Now() - start; d > 6 {
		t.Fatalf("hit took %d cycles, want ~3", d)
	}
	if h.st.Get("l1.a.hits") != 1 {
		t.Fatalf("hits = %d, want 1", h.st.Get("l1.a.hits"))
	}
}

func TestStoreMakesModifiedAndBumpsVersion(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Store, 0x2000)
	l := c.Peek(0x2000)
	if l == nil || l.State != cache.Modified || l.Ver != 1 {
		t.Fatalf("line = %+v, want Modified v1", l)
	}
	h.do(t, c, mem.Store, 0x2000)
	if l.Ver != 2 {
		t.Fatalf("Ver = %d after second store, want 2", l.Ver)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Load, 0x3000) // fills E
	before := h.st.Get("dir.GetM")
	h.do(t, c, mem.Store, 0x3000) // silent upgrade
	if h.st.Get("dir.GetM") != before {
		t.Fatal("E->M upgrade issued a GetM")
	}
	if l := c.Peek(0x3000); l.State != cache.Modified {
		t.Fatalf("state = %v, want M", l.State)
	}
}

func TestFwdGetSDowngradesOwnerAndDeliversData(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.clients[0], h.clients[1]
	h.do(t, a, mem.Store, 0x4000) // a owns M, v1
	h.do(t, b, mem.Load, 0x4000)  // b reads: 3-hop forward
	la, lb := a.Peek(0x4000), b.Peek(0x4000)
	if la == nil || la.State != cache.Shared {
		t.Fatalf("owner line = %+v, want Shared", la)
	}
	if lb == nil || lb.State != cache.Shared || lb.Ver != 1 {
		t.Fatalf("reader line = %+v, want Shared v1", lb)
	}
	state, _, n := h.dir.Sharers(0x4000)
	if state != "S" || n != 2 {
		t.Fatalf("dir = %s/%d sharers, want S/2", state, n)
	}
	// The dirty data also returned to the LLC.
	if h.dir.Version(0x4000) != 1 {
		t.Fatalf("LLC version = %d, want 1", h.dir.Version(0x4000))
	}
}

func TestFwdGetMTransfersOwnership(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.clients[0], h.clients[1]
	h.do(t, a, mem.Store, 0x5000) // a: M v1
	h.do(t, b, mem.Store, 0x5000) // b: M v2 via FwdGetM
	if l := a.Peek(0x5000); l != nil {
		t.Fatalf("previous owner still holds %+v", l)
	}
	lb := b.Peek(0x5000)
	if lb == nil || lb.State != cache.Modified || lb.Ver != 2 {
		t.Fatalf("new owner = %+v, want M v2", lb)
	}
	state, owner, _ := h.dir.Sharers(0x5000)
	if state != "E" || owner != b.ID() {
		t.Fatalf("dir = %s owner %d", state, owner)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 3)
	a, b, c := h.clients[0], h.clients[1], h.clients[2]
	h.do(t, a, mem.Load, 0x6000)
	h.do(t, b, mem.Load, 0x6000)
	h.do(t, c, mem.Load, 0x6000)
	// a upgrades: b and c must be invalidated.
	h.do(t, a, mem.Store, 0x6000)
	if b.Peek(0x6000) != nil || c.Peek(0x6000) != nil {
		t.Fatal("sharers not invalidated on upgrade")
	}
	la := a.Peek(0x6000)
	if la == nil || la.State != cache.Modified || la.Ver != 1 {
		t.Fatalf("upgrader = %+v, want M v1", la)
	}
	if h.st.Get("l1.b.invalidations") != 1 || h.st.Get("l1.c.invalidations") != 1 {
		t.Fatal("invalidation stats missing")
	}
}

func TestUpgradeReusesWayNoAliasing(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.clients[0], h.clients[1]
	h.do(t, a, mem.Load, 0x7000)
	h.do(t, b, mem.Load, 0x7000) // both S
	h.do(t, a, mem.Store, 0x7000)
	// Exactly one valid copy of the line in a's cache.
	count := 0
	a.arr.ForEach(func(l *cache.Line) {
		if l.Valid && l.Addr == 0x7000 {
			count++
		}
	})
	if count != 1 {
		t.Fatalf("line cached %d times after upgrade, want 1", count)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Store, 0x8000)
	// Fill the set until 0x8000 is evicted. Host L1: 64KB/4-way/64B =
	// 256 sets; same set stride = 256*64 = 16384.
	for i := 1; i <= 4; i++ {
		h.do(t, c, mem.Load, mem.PAddr(0x8000+i*16384))
	}
	if c.Peek(0x8000) != nil {
		t.Fatal("line survived 4 conflicting fills")
	}
	h.run(t, 100000, func() bool { return c.Outstanding() == 0 })
	if h.dir.Version(0x8000) != 1 {
		t.Fatalf("writeback lost: LLC version %d, want 1", h.dir.Version(0x8000))
	}
	state, _, _ := h.dir.Sharers(0x8000)
	if state != "I" {
		t.Fatalf("dir state after PutM = %s, want I", state)
	}
}

func TestCleanEvictionSendsNotice(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.do(t, c, mem.Load, 0x8000) // E, clean
	for i := 1; i <= 4; i++ {
		h.do(t, c, mem.Load, mem.PAddr(0x8000+i*16384))
	}
	h.run(t, 100000, func() bool { return c.Outstanding() == 0 })
	if h.st.Get("dir.PutE") == 0 {
		t.Fatal("no PutE notice for clean-exclusive eviction")
	}
	state, _, _ := h.dir.Sharers(0x8000)
	if state != "I" {
		t.Fatalf("dir state = %s, want I", state)
	}
}

func TestVersionFlowsThroughChain(t *testing.T) {
	h := newHarness(t, 3)
	a, b, c := h.clients[0], h.clients[1], h.clients[2]
	h.do(t, a, mem.Store, 0x9000) // v1
	h.do(t, a, mem.Store, 0x9000) // v2
	h.do(t, b, mem.Store, 0x9000) // v3 (fwd from a)
	h.do(t, c, mem.Load, 0x9000)  // reads v3 (fwd from b)
	if l := c.Peek(0x9000); l == nil || l.Ver != 3 {
		t.Fatalf("reader sees v%d, want v3", l.Ver)
	}
}

type dmaEndpoint struct {
	gotVer map[uint64]uint64
	acks   int
}

func (d *dmaEndpoint) handle(m *Msg) {
	switch m.Type {
	case MsgDMAReadResp, MsgData, MsgDataE, MsgDataM:
		d.gotVer[uint64(m.Addr)] = m.Ver
	case MsgDMAWriteAck:
		d.acks++
	}
}

func TestDMAReadSeesOwnerData(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	dma := &dmaEndpoint{gotVer: map[uint64]uint64{}}
	h.fab.Register(AgentID(9), dma.handle)
	h.do(t, c, mem.Store, 0xa000) // owner M v1
	h.fab.Send(&Msg{Type: MsgDMARead, Addr: 0xa000, Src: 9, Dst: DirID})
	h.run(t, 100000, func() bool { _, ok := dma.gotVer[0xa000]; return ok })
	if dma.gotVer[0xa000] != 1 {
		t.Fatalf("DMA read v%d, want v1", dma.gotVer[0xa000])
	}
	// Owner was downgraded, not invalidated.
	if l := c.Peek(0xa000); l == nil || l.State != cache.Shared {
		t.Fatalf("owner after DMA read = %+v, want Shared", l)
	}
}

func TestDMAWriteInvalidatesAndCommits(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.clients[0], h.clients[1]
	dma := &dmaEndpoint{gotVer: map[uint64]uint64{}}
	h.fab.Register(AgentID(9), dma.handle)
	h.do(t, a, mem.Load, 0xb000)
	h.do(t, b, mem.Load, 0xb000) // two sharers
	h.fab.Send(&Msg{Type: MsgDMAWrite, Addr: 0xb000, Src: 9, Dst: DirID, Ver: 42})
	h.run(t, 100000, func() bool { return dma.acks == 1 })
	if a.Peek(0xb000) != nil || b.Peek(0xb000) != nil {
		t.Fatal("sharers survived DMA write")
	}
	if h.dir.Version(0xb000) != 42 {
		t.Fatalf("LLC version = %d, want 42", h.dir.Version(0xb000))
	}
	// A subsequent load observes the DMA data.
	h.do(t, a, mem.Load, 0xb000)
	if l := a.Peek(0xb000); l.Ver != 42 {
		t.Fatalf("post-DMA load sees v%d, want 42", l.Ver)
	}
}

func TestDMAWriteOverM(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	dma := &dmaEndpoint{gotVer: map[uint64]uint64{}}
	h.fab.Register(AgentID(9), dma.handle)
	h.do(t, c, mem.Store, 0xc000) // M v1
	h.fab.Send(&Msg{Type: MsgDMAWrite, Addr: 0xc000, Src: 9, Dst: DirID, Ver: 7})
	h.run(t, 100000, func() bool { return dma.acks == 1 })
	if c.Peek(0xc000) != nil {
		t.Fatal("M owner survived DMA write")
	}
	if h.dir.Version(0xc000) != 7 {
		t.Fatalf("version = %d, want 7", h.dir.Version(0xc000))
	}
}

// Sequential random walk: every load must observe exactly the golden version.
func TestSequentialConsistencyRandomWalk(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(1))
	golden := map[uint64]uint64{}
	lines := []mem.PAddr{0x0, 0x1000, 0x2000, 0x4000, 0x10000, 0x14000}
	for i := 0; i < 300; i++ {
		c := h.clients[rng.Intn(3)]
		addr := lines[rng.Intn(len(lines))]
		if rng.Intn(2) == 0 {
			h.do(t, c, mem.Store, addr)
			golden[uint64(addr)]++
		} else {
			h.do(t, c, mem.Load, addr)
			l := c.Peek(addr)
			if l == nil {
				// Evicted between completion and peek is impossible here
				// (sequential), so this is a protocol bug.
				t.Fatalf("op %d: loaded line %#x not present", i, addr)
			}
			if l.Ver != golden[uint64(addr)] {
				t.Fatalf("op %d: line %#x v%d, golden v%d", i, addr, l.Ver, golden[uint64(addr)])
			}
		}
	}
}

// Concurrent stress: fire many overlapping ops, then drain and flush. The
// final backing-store version of each line must equal the number of stores
// issued to it — no write may be lost or duplicated.
func TestConcurrentStressNoLostWrites(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(7))
	golden := map[uint64]uint64{}
	lines := []mem.PAddr{0x0, 0x1000, 0x2000, 0x3000}
	pending := 0
	for i := 0; i < 400; i++ {
		c := h.clients[rng.Intn(3)]
		addr := lines[rng.Intn(len(lines))]
		kind := mem.Load
		if rng.Intn(2) == 0 {
			kind = mem.Store
			golden[uint64(addr)]++
		}
		pending++
		for !c.Access(kind, addr, func(uint64) { pending-- }) {
			h.eng.Step()
		}
		// Occasionally let the system drain a little.
		if rng.Intn(4) == 0 {
			h.eng.Step()
		}
	}
	h.run(t, 2000000, func() bool { return pending == 0 })
	for _, c := range h.clients {
		c.FlushAll()
	}
	h.run(t, 2000000, func() bool {
		for _, c := range h.clients {
			if c.Outstanding() > 0 {
				return false
			}
		}
		return true
	})
	for _, addr := range lines {
		if got := h.dir.Version(addr); got != golden[uint64(addr)] {
			t.Errorf("line %#x: backing store v%d, golden v%d", addr, got, golden[uint64(addr)])
		}
	}
}

func TestEnergyAccounted(t *testing.T) {
	h := newHarness(t, 2)
	h.do(t, h.clients[0], mem.Store, 0x1000)
	h.do(t, h.clients[1], mem.Load, 0x1000)
	if h.mt.Get(energy.CatHostL1) == 0 {
		t.Error("no host L1 energy")
	}
	if h.mt.Get(energy.CatL2) == 0 {
		t.Error("no L2 energy")
	}
	if h.mt.Get(energy.CatLinkHost) == 0 {
		t.Error("no host link energy")
	}
	if h.mt.Get(energy.CatDRAM) == 0 {
		t.Error("no DRAM energy")
	}
}
