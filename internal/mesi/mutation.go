package mesi

// DirMutations are deliberate, test-only directory protocol breakers used
// by the litmus mutation-kill validator (internal/litmus). The pointer is
// nil — and every field false — in all real runs.
type DirMutations struct {
	// SkipSharerInvalidate makes the directory grant M on a shared line
	// without sending MsgInv to the other sharers (and report zero pending
	// acks), reordering the grant ahead of the invalidations it must wait
	// for. Stale sharers then keep satisfying loads from copies the new
	// owner has already overwritten.
	SkipSharerInvalidate bool
}
