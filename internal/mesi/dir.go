package mesi

import (
	"fmt"
	"sort"
	"strings"

	"fusion/internal/cache"
	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/flat"
	"fusion/internal/interconnect"
	"fusion/internal/mem"
	"fusion/internal/ptrace"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// sharerSet is a bitmask over AgentIDs (at most 32 agents).
type sharerSet uint32

func (s sharerSet) has(id AgentID) bool { return s&(1<<id) != 0 }
func (s *sharerSet) add(id AgentID)     { *s |= 1 << id }
func (s *sharerSet) remove(id AgentID)  { *s &^= 1 << id }
func (s sharerSet) count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}
func (s sharerSet) forEach(fn func(AgentID)) {
	for id := AgentID(0); id < 32; id++ {
		if s.has(id) {
			fn(id)
		}
	}
}

// dirState is the directory's view of a line.
type dirState uint8

const (
	dirI dirState = iota // no cached copies
	dirS                 // one or more clean sharers
	dirE                 // one owner holds E or M
)

// dirEntry is the directory record for one line. The directory is blocking:
// one transaction per line at a time; requests arriving while busy queue in
// FIFO order.
type dirEntry struct {
	state   dirState
	owner   AgentID
	sharers sharerSet

	busy         bool
	waitUnblock  bool
	waitOwnerAck bool
	waitInvAcks  int
	// pendingDMA holds a directory-collected DMA transaction to finish once
	// invalidations complete.
	pendingDMA *Msg
	queue      []*Msg
}

// dirOpRequest is the Directory's sole HandleEvent opcode: admit the request
// parked in slot arg after its NUCA ring latency.
const dirOpRequest = 0

// Directory is the shared L2: a NUCA LLC data array plus the MESI directory,
// backed by DRAM. It registers as agent DirID on the fabric.
type Directory struct {
	fabric *Fabric
	llc    *cache.Array
	dram   *dram.DRAM
	ring   interconnect.Ring

	// ver is the golden backing store: the latest version written back for
	// every line. It stands in for both LLC data and DRAM contents. Absent
	// lines read as version 0, which flat.Map's zero-value Get preserves.
	ver *flat.Map[uint64]

	// entries stores pointers so records stay stable across map growth —
	// readData continuations capture *dirEntry.
	entries *flat.Map[*dirEntry]

	model energy.Model
	meter *energy.Meter
	pool  MsgPool

	// deferred parks requests between fabric delivery and ring-latency
	// admission; the closure-free admission event carries the slot index.
	deferred []*Msg
	freeDef  []uint32

	cQueued   *stats.Counter
	cPutStale *stats.Counter
	cFwd      *stats.Counter
	cFwdTile  *stats.Counter
	cL2Acc    *stats.Counter
	cL2Hits   *stats.Counter
	cL2Misses *stats.Counter
	cByType   [256]*stats.Counter // "dir.<MsgType>" per request type

	// TileAgent, when nonzero, marks which agent is the accelerator tile so
	// forwarded-request counts (Section 3.2: "up to ~800 forwarded requests")
	// can be reported separately.
	TileAgent AgentID

	tracer ptrace.Tracer
	mut    *DirMutations
}

// SetTracer attaches a protocol tracer (nil disables tracing).
func (dir *Directory) SetTracer(t ptrace.Tracer) { dir.tracer = t }

// SetMutations arms test-only protocol mutations (nil disables them; see
// DirMutations).
func (dir *Directory) SetMutations(m *DirMutations) { dir.mut = m }

func (dir *Directory) emit(k ptrace.Kind, addr mem.PAddr, detail string) {
	if dir.tracer != nil {
		dir.tracer.Emit(ptrace.Event{Cycle: dir.fabric.Now(), Source: "dir",
			Kind: k, Addr: uint64(addr), Detail: detail})
	}
}

// DirConfig sizes the shared L2.
type DirConfig struct {
	LLC  cache.Params      // Table 2: 4 MB, 16-way
	Ring interconnect.Ring // Table 2: 8-tile NUCA ring, ~20-cycle average
}

// DefaultDirConfig matches Table 2.
func DefaultDirConfig() DirConfig {
	return DirConfig{
		LLC:  cache.Params{SizeBytes: 4 << 20, Ways: 16, LineBytes: mem.LineBytes},
		Ring: interconnect.Ring{Stops: 8, PerHop: 4, BankAccess: 6},
	}
}

// NewDirectory builds the L2 controller and registers it on the fabric.
func NewDirectory(f *Fabric, cfg DirConfig, d *dram.DRAM,
	model energy.Model, meter *energy.Meter, st *stats.Set) *Directory {
	dir := &Directory{
		fabric:    f,
		llc:       cache.NewArray(cfg.LLC),
		dram:      d,
		ring:      cfg.Ring,
		ver:       flat.New[uint64](1024),
		entries:   flat.New[*dirEntry](1024),
		model:     model,
		meter:     meter,
		cQueued:   st.Counter("dir.queued"),
		cPutStale: st.Counter("dir.put_stale"),
		cFwd:      st.Counter("dir.fwd"),
		cFwdTile:  st.Counter("dir.fwd_to_tile"),
		cL2Acc:    st.Counter("l2.accesses"),
		cL2Hits:   st.Counter("l2.hits"),
		cL2Misses: st.Counter("l2.misses"),
	}
	for _, t := range []MsgType{MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgDMARead, MsgDMAWrite} {
		dir.cByType[t] = st.Counter("dir." + t.String())
	}
	f.Register(DirID, dir.Handle)
	return dir
}

// Preload installs version v for a line directly in the backing store and
// LLC, modeling data the host wrote before offload began.
func (dir *Directory) Preload(addr mem.PAddr, v uint64) {
	a := uint64(addr.LineAddr())
	dir.ver.Put(a, v)
	if dir.llc.Peek(a) == nil {
		dir.llc.Fill(dir.llc.Victim(a), a, 0)
	}
}

// Version returns the backing-store version of a line (0 if never written).
func (dir *Directory) Version(addr mem.PAddr) uint64 {
	return dir.verOf(uint64(addr.LineAddr()))
}

// verOf reads the golden store; absent lines are version 0.
func (dir *Directory) verOf(a uint64) uint64 {
	v, _ := dir.ver.Get(a)
	return v
}

// entry fetches or creates the directory record for a line address.
func (dir *Directory) entry(a uint64) *dirEntry {
	if e, ok := dir.entries.Get(a); ok {
		return e
	}
	e := &dirEntry{}
	dir.entries.Put(a, e)
	return e
}

func (dir *Directory) bank(a uint64) int {
	return int((a >> mem.LineShift) % uint64(dir.ring.Stops))
}

// Handle is the fabric endpoint: routes message types to handlers. Requests
// pay the NUCA ring latency to their bank before processing; acks complete
// synchronously and are released here.
func (dir *Directory) Handle(m *Msg) {
	switch m.Type {
	case MsgGetS, MsgGetM, MsgPutM, MsgPutE, MsgDMARead, MsgDMAWrite:
		lat := dir.ring.Latency(0, dir.bank(uint64(m.Addr)))
		var slot uint32
		if n := len(dir.freeDef); n > 0 {
			slot = dir.freeDef[n-1]
			dir.freeDef = dir.freeDef[:n-1]
			dir.deferred[slot] = m
		} else {
			slot = uint32(len(dir.deferred))
			dir.deferred = append(dir.deferred, m)
		}
		dir.fabric.Engine().ScheduleCall(lat, dir, dirOpRequest, uint64(slot))
	case MsgOwnerAck:
		dir.ownerAck(m)
		dir.pool.Put(m)
	case MsgUnblock:
		dir.unblock(m)
		dir.pool.Put(m)
	case MsgInvAck:
		dir.invAck(m)
		dir.pool.Put(m)
	default:
		sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "unexpected %s", m)
	}
}

// HandleEvent admits the ring-delayed request parked in slot arg.
func (dir *Directory) HandleEvent(now uint64, op uint8, arg uint64) {
	m := dir.deferred[arg]
	dir.deferred[arg] = nil
	dir.freeDef = append(dir.freeDef, uint32(arg))
	dir.request(m)
}

// request admits a request to the blocking directory.
func (dir *Directory) request(m *Msg) {
	a := uint64(m.Addr.LineAddr())
	e := dir.entry(a)
	if e.busy {
		e.queue = append(e.queue, m)
		dir.cQueued.Inc()
		return
	}
	dir.start(e, m)
}

// start runs one transaction. The entry is not busy. Handlers consume the
// message synchronously (continuations capture field copies, never m), so
// start releases it on the way out — except DMAWrite, whose handler keeps
// ownership until commitDMAWrite.
func (dir *Directory) start(e *dirEntry, m *Msg) {
	a := uint64(m.Addr.LineAddr())
	if c := dir.cByType[m.Type]; c != nil {
		c.Inc()
	}
	if dir.tracer != nil {
		var k ptrace.Kind
		switch m.Type {
		case MsgGetS:
			k = ptrace.DirRead
		case MsgGetM:
			k = ptrace.DirWrite
		case MsgPutM, MsgPutE:
			k = ptrace.DirPut
		case MsgDMARead:
			k = ptrace.DirDMARead
		case MsgDMAWrite:
			k = ptrace.DirDMAWrite
		default:
			// Only request types reach start; the dispatch below Failf-s
			// anything else, so an unknown type here is the same bug.
			sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "start trace %s", m)
		}
		dir.emit(k, m.Addr, fmt.Sprintf("from agent%d", m.Src))
	}
	dir.accessL2() // directory tag/state access

	switch m.Type {
	case MsgGetS:
		dir.handleGetS(e, m, a)
	case MsgGetM:
		dir.handleGetM(e, m, a)
	case MsgPutM:
		dir.handlePutM(e, m, a)
	case MsgPutE:
		dir.handlePutE(e, m, a)
	case MsgDMARead:
		dir.handleDMARead(e, m, a)
	case MsgDMAWrite:
		dir.handleDMAWrite(e, m, a)
		return // released by commitDMAWrite (possibly after inv acks)
	default:
		sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "start %s", m)
	}
	dir.pool.Put(m)
}

func (dir *Directory) handleGetS(e *dirEntry, m *Msg, a uint64) {
	addr, src := m.Addr, m.Src
	switch e.state {
	case dirI:
		e.busy, e.waitUnblock = true, true
		dir.readData(a, func(ver uint64) {
			d := dir.pool.Get()
			d.Type, d.Addr, d.Src, d.Dst, d.Ver = MsgDataE, addr, DirID, src, ver
			dir.send(d)
			e.state, e.owner = dirE, src
		})
	case dirS:
		e.busy, e.waitUnblock = true, true
		dir.readData(a, func(ver uint64) {
			d := dir.pool.Get()
			d.Type, d.Addr, d.Src, d.Dst, d.Ver = MsgData, addr, DirID, src, ver
			dir.send(d)
			e.sharers.add(src)
		})
	case dirE:
		e.busy, e.waitUnblock, e.waitOwnerAck = true, true, true
		dir.forward(MsgFwdGetS, e.owner, m)
		// State settles when OwnerAck arrives (owner may drop or keep S).
		e.sharers.add(src)
	}
}

func (dir *Directory) handleGetM(e *dirEntry, m *Msg, a uint64) {
	addr, src := m.Addr, m.Src
	switch e.state {
	case dirI:
		e.busy, e.waitUnblock = true, true
		dir.readData(a, func(ver uint64) {
			d := dir.pool.Get()
			d.Type, d.Addr, d.Src, d.Dst, d.Ver = MsgDataM, addr, DirID, src, ver
			dir.send(d)
			e.state, e.owner, e.sharers = dirE, src, 0
		})
	case dirS:
		e.busy, e.waitUnblock = true, true
		others := e.sharers
		others.remove(src)
		n := others.count()
		if dir.mut != nil && dir.mut.SkipSharerInvalidate {
			// Mutant: grant M without invalidating the other sharers — they
			// keep serving stale copies while the new owner writes.
			others, n = 0, 0
		}
		dir.readData(a, func(ver uint64) {
			d := dir.pool.Get()
			d.Type, d.Addr, d.Src, d.Dst, d.AckCount, d.Ver = MsgData, addr, DirID, src, n, ver
			dir.send(d)
			others.forEach(func(s AgentID) {
				inv := dir.pool.Get()
				inv.Type, inv.Addr, inv.Src, inv.Dst, inv.Requester = MsgInv, addr, DirID, s, src
				dir.send(inv)
			})
			e.state, e.owner, e.sharers = dirE, src, 0
		})
	case dirE:
		if e.owner == src {
			// Cannot happen in MESI: E->M upgrades are silent, and an M
			// owner never requests. Guard anyway.
			sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "GetM from current owner agent%d", src)
		}
		e.busy, e.waitUnblock, e.waitOwnerAck = true, true, true
		dir.forward(MsgFwdGetM, e.owner, m)
		e.state, e.owner, e.sharers = dirE, src, 0
	}
}

func (dir *Directory) handlePutM(e *dirEntry, m *Msg, a uint64) {
	stale := !(e.state == dirE && e.owner == m.Src)
	if stale {
		dir.cPutStale.Inc()
	} else {
		e.state, e.owner = dirI, 0
	}
	// Accept the data only if it is not older than what we already hold
	// (a stale PutM races with a completed forward).
	if m.Ver >= dir.verOf(a) {
		dir.ver.Put(a, m.Ver)
		dir.fillLLC(a, true)
	}
	ack := dir.pool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = MsgPutAck, m.Addr, DirID, m.Src
	dir.send(ack)
	// Puts complete synchronously and never mark the line busy; when this
	// one was popped from the queue, the requests behind it must continue
	// draining or they would sit on a non-busy line forever.
	dir.finish(e)
}

func (dir *Directory) handlePutE(e *dirEntry, m *Msg, a uint64) {
	if e.state == dirE && e.owner == m.Src {
		e.state, e.owner = dirI, 0
	} else {
		dir.cPutStale.Inc()
	}
	ack := dir.pool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = MsgPutAck, m.Addr, DirID, m.Src
	dir.send(ack)
	dir.finish(e) // see handlePutM: keep draining the queue
}

func (dir *Directory) handleDMARead(e *dirEntry, m *Msg, a uint64) {
	addr, src := m.Addr, m.Src
	switch e.state {
	case dirI, dirS:
		e.busy = true // block the line only for the duration of the fetch
		dir.readData(a, func(ver uint64) {
			d := dir.pool.Get()
			d.Type, d.Addr, d.Src, d.Dst, d.Ver = MsgDMAReadResp, addr, DirID, src, ver
			dir.send(d)
			dir.finish(e)
		})
	case dirE:
		// Owner supplies data straight to the DMA engine; the directory
		// waits only for the owner's ack (the DMA never unblocks).
		e.busy, e.waitOwnerAck = true, true
		dir.forward(MsgFwdGetS, e.owner, m)
		e.sharers.add(e.owner) // provisional; OwnerAck fixes it up
	}
}

func (dir *Directory) handleDMAWrite(e *dirEntry, m *Msg, a uint64) {
	// Invalidate every cached copy, then commit the DMA data.
	var targets sharerSet
	switch e.state {
	case dirI:
		// Line uncached: nothing to invalidate, commit immediately below.
	case dirS:
		targets = e.sharers
	case dirE:
		targets.add(e.owner)
	}
	n := targets.count()
	e.state, e.owner, e.sharers = dirI, 0, 0
	if n == 0 {
		dir.commitDMAWrite(e, m, a)
		return
	}
	e.busy = true
	e.waitInvAcks = n
	e.pendingDMA = m
	targets.forEach(func(s AgentID) {
		inv := dir.pool.Get()
		inv.Type, inv.Addr, inv.Src, inv.Dst, inv.Requester = MsgInv, m.Addr, DirID, s, DirID
		dir.send(inv)
	})
}

// commitDMAWrite finishes a DMA write and releases the request message it
// owned (handed over either directly or via pendingDMA).
func (dir *Directory) commitDMAWrite(e *dirEntry, m *Msg, a uint64) {
	if m.Delta {
		dir.ver.Put(a, dir.verOf(a)+m.Ver)
	} else if m.Ver >= dir.verOf(a) {
		dir.ver.Put(a, m.Ver)
	}
	dir.fillLLC(a, true)
	ack := dir.pool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = MsgDMAWriteAck, m.Addr, DirID, m.Src
	dir.send(ack)
	dir.pool.Put(m)
	dir.finish(e)
}

// ownerAck arrives from the previous owner after a Fwd.
func (dir *Directory) ownerAck(m *Msg) {
	a := uint64(m.Addr.LineAddr())
	e := dir.entry(a)
	if !e.waitOwnerAck {
		sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "unexpected OwnerAck %s", m)
	}
	e.waitOwnerAck = false
	if m.Dirty {
		if m.Ver >= dir.verOf(a) {
			dir.ver.Put(a, m.Ver)
		}
		dir.fillLLC(a, true)
	}
	if m.Dropped {
		e.sharers.remove(m.Src)
		if e.state == dirE && e.owner == m.Src {
			// FwdGetS target dropped instead of keeping S (the accelerator
			// tile always does). Ownership question resolves below.
			e.state = dirS
		}
	} else if e.state == dirE && e.owner != m.Src {
		// FwdGetM path already reassigned the owner; nothing to do.
	} else if e.state == dirE {
		// FwdGetS with owner keeping a shared copy.
		e.state = dirS
		e.sharers.add(m.Src)
	}
	if e.state == dirS && e.sharers.count() == 0 {
		e.state = dirI
	}
	dir.maybeFinish(e)
}

// unblock completes a requester-collected transaction.
func (dir *Directory) unblock(m *Msg) {
	a := uint64(m.Addr.LineAddr())
	e := dir.entry(a)
	if !e.waitUnblock {
		sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "unexpected Unblock %s", m)
	}
	e.waitUnblock = false
	dir.maybeFinish(e)
}

// invAck is a directory-collected invalidation ack (DMA writes only). An
// invalidated owner (the accelerator tile) returns its dirty version on the
// ack; it must merge before the pending DMA write commits, or a delta write
// would accumulate on top of a stale base.
func (dir *Directory) invAck(m *Msg) {
	a := uint64(m.Addr.LineAddr())
	e := dir.entry(a)
	if e.waitInvAcks <= 0 {
		sim.Failf("dir", dir.fabric.Now(), dir.DumpState(), "unexpected InvAck %s", m)
	}
	if m.Dirty && m.Ver >= dir.verOf(a) {
		dir.ver.Put(a, m.Ver)
		dir.fillLLC(a, true)
	}
	e.waitInvAcks--
	if e.waitInvAcks == 0 && e.pendingDMA != nil {
		m2 := e.pendingDMA
		e.pendingDMA = nil
		dir.commitDMAWrite(e, m2, a)
	}
}

func (dir *Directory) maybeFinish(e *dirEntry) {
	if e.busy && !e.waitUnblock && !e.waitOwnerAck && e.waitInvAcks == 0 && e.pendingDMA == nil {
		dir.finish(e)
	}
}

// finish releases the line and admits the next queued request.
func (dir *Directory) finish(e *dirEntry) {
	e.busy = false
	if len(e.queue) == 0 {
		return
	}
	next := e.queue[0]
	e.queue = e.queue[1:]
	dir.start(e, next)
}

// forward sends a Fwd to the current owner on behalf of requester req.
func (dir *Directory) forward(t MsgType, owner AgentID, req *Msg) {
	dir.cFwd.Inc()
	if owner == dir.TileAgent && dir.TileAgent != 0 {
		dir.cFwdTile.Inc()
	}
	if dir.tracer != nil {
		dir.emit(ptrace.DirForward, req.Addr,
			fmt.Sprintf("%s to agent%d for agent%d", t, owner, req.Src))
	}
	fwd := dir.pool.Get()
	fwd.Type, fwd.Addr, fwd.Src, fwd.Dst, fwd.Requester = t, req.Addr, DirID, owner, req.Src
	dir.send(fwd)
}

func (dir *Directory) send(m *Msg) { dir.fabric.Send(m) }

// accessL2 accounts one L2 bank access.
func (dir *Directory) accessL2() {
	if dir.meter != nil {
		dir.meter.Add(energy.CatL2, dir.model.L2Access)
	}
	dir.cL2Acc.Inc()
}

// readData obtains the line's data: LLC hit continues after a cycle; a miss
// fetches from DRAM (retrying submission under back-pressure) and fills.
func (dir *Directory) readData(a uint64, cont func(ver uint64)) {
	dir.accessL2()
	if dir.llc.Lookup(a) != nil {
		dir.cL2Hits.Inc()
		dir.fabric.Engine().Schedule(1, func(uint64) { cont(dir.verOf(a)) })
		return
	}
	dir.cL2Misses.Inc()
	dir.fetchDRAM(a, cont)
}

func (dir *Directory) fetchDRAM(a uint64, cont func(ver uint64)) {
	ok := dir.dram.Submit(dram.Request{
		Addr: mem.PAddr(a),
		Done: func(uint64) {
			dir.fillLLC(a, false)
			cont(dir.verOf(a))
		},
	})
	if !ok {
		dir.fabric.Engine().Schedule(4, func(uint64) { dir.fetchDRAM(a, cont) })
	}
}

// fillLLC installs a line in the LLC data array, writing back a dirty victim
// to DRAM (data itself already lives in the golden store).
func (dir *Directory) fillLLC(a uint64, dirty bool) {
	if l := dir.llc.Peek(a); l != nil {
		l.Dirty = l.Dirty || dirty
		dir.accessL2() // write hit
		return
	}
	v := dir.llc.Victim(a)
	if v.Valid && v.Dirty {
		dir.dram.Submit(dram.Request{Addr: mem.PAddr(v.Addr), Write: true})
	}
	dir.llc.Fill(v, a, 0)
	v.Dirty = dirty
	dir.accessL2()
}

// DumpState lists every directory entry with a transient state (busy /
// waiting on Unblock, OwnerAck, or InvAcks / queued requests) — the lines a
// hung protocol is stuck on. Empty when everything is quiescent.
func (dir *Directory) DumpState() string {
	addrs := make([]uint64, 0)
	dir.entries.ForEach(func(a uint64, ep **dirEntry) {
		e := *ep
		if e.busy || e.waitUnblock || e.waitOwnerAck || e.waitInvAcks > 0 ||
			e.pendingDMA != nil || len(e.queue) > 0 {
			addrs = append(addrs, a)
		}
	})
	if len(addrs) == 0 {
		return ""
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "dir: %d transient entries\n", len(addrs))
	for _, a := range addrs {
		e, _ := dir.entries.Get(a)
		st := [...]string{"I", "S", "E"}[e.state]
		fmt.Fprintf(&b, "  %#x state=%s owner=%d busy=%v waitUnblock=%v waitOwnerAck=%v waitInvAcks=%d queued=%d\n",
			a, st, e.owner, e.busy, e.waitUnblock, e.waitOwnerAck, e.waitInvAcks, len(e.queue))
	}
	return b.String()
}

// Sharers reports the directory's view of a line (for tests).
func (dir *Directory) Sharers(addr mem.PAddr) (state string, owner AgentID, n int) {
	e := dir.entry(uint64(addr.LineAddr()))
	switch e.state {
	case dirI:
		state = "I"
	case dirS:
		state = "S"
	case dirE:
		state = "E"
	}
	return state, e.owner, e.sharers.count()
}
