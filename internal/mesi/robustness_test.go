package mesi

import (
	"errors"
	"strings"
	"testing"

	"fusion/internal/mem"
	"fusion/internal/sim"
)

// TestDirUnexpectedOwnerAckIsProtocolError injects an OwnerAck for a line
// with no transaction in flight; the directory must fail the run with a
// structured error rather than a bare panic.
func TestDirUnexpectedOwnerAckIsProtocolError(t *testing.T) {
	h := newHarness(t, 1)
	h.eng.Schedule(1, func(uint64) {
		h.fab.Send(&Msg{Type: MsgOwnerAck, Addr: 0x1000, Src: 1, Dst: DirID})
	})
	_, _, err := h.eng.RunE(1000, nil)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Component != "dir" {
		t.Errorf("component = %q, want dir", pe.Component)
	}
	if !strings.Contains(pe.Message, "OwnerAck") {
		t.Errorf("message = %q, want OwnerAck diagnosis", pe.Message)
	}
}

// TestDirUnexpectedUnblockIsProtocolError does the same for a spurious
// Unblock.
func TestDirUnexpectedUnblockIsProtocolError(t *testing.T) {
	h := newHarness(t, 1)
	h.eng.Schedule(1, func(uint64) {
		h.fab.Send(&Msg{Type: MsgUnblock, Addr: 0x2000, Src: 1, Dst: DirID})
	})
	_, _, err := h.eng.RunE(1000, nil)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Component != "dir" {
		t.Errorf("component = %q, want dir", pe.Component)
	}
}

// TestClientUnexpectedDataIsProtocolError hands a client a data response it
// never requested.
func TestClientUnexpectedDataIsProtocolError(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	h.eng.Schedule(1, func(uint64) {
		c.Handle(&Msg{Type: MsgData, Addr: 0x3000, Src: DirID, Dst: c.id})
	})
	_, _, err := h.eng.RunE(1000, nil)
	var pe *sim.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ProtocolError, got %v", err)
	}
	if pe.Component != c.name {
		t.Errorf("component = %q, want %q", pe.Component, c.name)
	}
}

// TestDirDumpStateShowsTransientEntries verifies the directory's diagnostic
// dump surfaces in-flight transactions (and only those).
func TestDirDumpStateShowsTransientEntries(t *testing.T) {
	h := newHarness(t, 1)
	if got := h.dir.DumpState(); got != "" {
		t.Errorf("quiescent DumpState = %q, want empty", got)
	}
	// Start a GetS and freeze mid-transaction: the entry waits for Unblock.
	addr := mem.PAddr(0x4000)
	done := false
	h.clients[0].Access(mem.Load, addr, func(uint64) { done = true })
	h.run(t, 100_000, func() bool { return done })
	// After completion everything is quiescent again.
	h.run(t, 100_000, func() bool { return h.dir.Quiesced() })
	if got := h.dir.DumpState(); got != "" {
		t.Errorf("post-run DumpState = %q, want empty", got)
	}
}
