package mesi

import (
	"fmt"

	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/interconnect"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// Endpoint receives messages addressed to one agent.
type Endpoint func(*Msg)

// MaxAgents bounds the fabric's dense route table. It matches sharerSet's
// 32-agent bitmask cap, so the bound is already a protocol-wide invariant.
const MaxAgents = 32

// Route describes the wire between a pair of agents.
type Route struct {
	Latency   uint64
	PJPerByte float64
	// FlitsPerCycle bounds the route's bandwidth; back-to-back messages
	// serialize (a 72-byte data message occupies 9 cycles at 1 flit/cycle).
	// Zero means unlimited.
	FlitsPerCycle uint64
	// Category is the energy.Meter bucket this route's traffic lands in.
	Category energy.Cat
	// StatName, when non-empty, counts msgs/bytes/flits under this name.
	StatName string
}

// routeState is one dense-table cell: the route itself plus its
// serialization clock, FIFO floor, and interned traffic counters. Cells are
// indexed by src*MaxAgents+dst, replacing three map[[2]AgentID] lookups per
// Send with one slice index.
type routeState struct {
	route      Route
	nextFree   uint64 // bandwidth serialization
	lastArrive uint64 // FIFO floor under fault-injected jitter
	init       bool
	cMsgs      *stats.Counter
	cBytes     *stats.Counter
	cFlits     *stats.Counter
	cCtrl      *stats.Counter
	cData      *stats.Counter
}

// Fabric is the host-side message network: a full crossbar with per-pair
// routes. Delivery preserves per-pair FIFO order (all messages on a route
// share one latency and the engine's event queue is stable).
type Fabric struct {
	eng     *sim.Engine
	meter   *energy.Meter
	stats   *stats.Set
	cFaults *stats.Counter

	endpoints [MaxAgents]Endpoint
	rs        []routeState // MaxAgents*MaxAgents cells

	inj *faults.Injector
	// DefaultRoute applies to pairs without an explicit route. It is
	// snapshotted into the dense table the first time such a pair sends, so
	// set it before traffic starts.
	DefaultRoute Route

	// pending holds in-flight messages; a delivery event carries its slot
	// index instead of a closure. Unlike a link's FIFO, fabric arrivals
	// interleave across routes, so slots are addressed, not ordered.
	pending  []*Msg
	freeSlot []uint32
}

// NewFabric builds an empty fabric.
func NewFabric(eng *sim.Engine, meter *energy.Meter, st *stats.Set) *Fabric {
	return &Fabric{
		eng:          eng,
		meter:        meter,
		stats:        st,
		cFaults:      st.Counter("fabric.faults"),
		rs:           make([]routeState, MaxAgents*MaxAgents),
		DefaultRoute: Route{Latency: 8, PJPerByte: 6.0, Category: energy.CatLinkHost},
	}
}

// SetInjector attaches (or clears) a fault injector; every route's delivery
// is then perturbed by the plan's order-preserving link faults.
func (f *Fabric) SetInjector(inj *faults.Injector) { f.inj = inj }

func (f *Fabric) checkID(id AgentID) {
	if id >= MaxAgents {
		sim.Failf("mesi.fabric", f.eng.Now(), "",
			"agent %d exceeds the %d-agent fabric cap", id, MaxAgents)
	}
}

// Register attaches an endpoint for agent id.
func (f *Fabric) Register(id AgentID, ep Endpoint) {
	f.checkID(id)
	if f.endpoints[id] != nil {
		sim.Failf("mesi.fabric", f.eng.Now(), "", "agent %d registered twice", id)
	}
	f.endpoints[id] = ep
}

// SetRoute installs a route for src->dst (directional).
func (f *Fabric) SetRoute(src, dst AgentID, r Route) {
	f.checkID(src)
	f.checkID(dst)
	f.initCell(&f.rs[int(src)*MaxAgents+int(dst)], r)
}

// SetRoutePair installs the same route in both directions.
func (f *Fabric) SetRoutePair(a, b AgentID, r Route) {
	f.SetRoute(a, b, r)
	f.SetRoute(b, a, r)
}

// initCell snapshots r into the cell and interns its traffic counters.
// Counters are keyed by StatName, so both directions of a SetRoutePair (and
// any routes sharing a name) feed the same cells, exactly as the string API
// did.
func (f *Fabric) initCell(rs *routeState, r Route) {
	rs.route = r
	rs.init = true
	name := r.StatName
	if name == "" {
		name = "fabric"
	}
	rs.cMsgs = f.stats.Counter(name + ".msgs")
	rs.cBytes = f.stats.Counter(name + ".bytes")
	rs.cFlits = f.stats.Counter(name + ".flits")
	rs.cCtrl = f.stats.Counter(name + ".ctrl")
	rs.cData = f.stats.Counter(name + ".data")
}

// Send accounts energy/traffic for m and schedules its delivery.
func (f *Fabric) Send(m *Msg) {
	f.checkID(m.Src)
	f.checkID(m.Dst)
	rs := &f.rs[int(m.Src)*MaxAgents+int(m.Dst)]
	if !rs.init {
		f.initCell(rs, f.DefaultRoute)
	}
	bytes := m.Bytes()
	if f.meter != nil && rs.route.Category != energy.CatNone {
		f.meter.Add(rs.route.Category, rs.route.PJPerByte*float64(bytes))
	}
	rs.cMsgs.Inc()
	rs.cBytes.Add(int64(bytes))
	rs.cFlits.Add(int64(interconnect.Flits(bytes)))
	if bytes <= interconnect.ControlBytes {
		rs.cCtrl.Inc()
	} else {
		rs.cData.Inc()
	}
	if f.endpoints[m.Dst] == nil {
		sim.Failf("mesi.fabric", f.eng.Now(), "",
			"no endpoint for agent %d (msg %s)", m.Dst, m)
	}
	now := f.eng.Now()
	start := now
	if f.inj != nil {
		site := rs.route.StatName
		if site == "" {
			site = fmt.Sprintf("fabric.%d.%d", m.Src, m.Dst)
		}
		if extra := f.inj.LinkDelay(site, now); extra > 0 {
			start += extra
			f.cFaults.Inc()
		}
	}
	if r := &rs.route; r.FlitsPerCycle > 0 {
		if rs.nextFree > start {
			start = rs.nextFree
		}
		flits := uint64(interconnect.Flits(bytes))
		occupancy := (flits + r.FlitsPerCycle - 1) / r.FlitsPerCycle
		if occupancy == 0 {
			occupancy = 1
		}
		rs.nextFree = start + occupancy
	}
	arrive := start + rs.route.Latency
	if arrive <= now {
		arrive = now + 1
	}
	// Per-route FIFO floor (see interconnect.Link): jitter delays, never
	// reorders.
	if arrive < rs.lastArrive {
		arrive = rs.lastArrive
	}
	rs.lastArrive = arrive

	var slot uint32
	if n := len(f.freeSlot); n > 0 {
		slot = f.freeSlot[n-1]
		f.freeSlot = f.freeSlot[:n-1]
		f.pending[slot] = m
	} else {
		slot = uint32(len(f.pending))
		f.pending = append(f.pending, m)
	}
	f.eng.ScheduleCallAt(arrive, f, 0, uint64(slot))
}

// HandleEvent delivers the in-flight message parked in slot arg. A delivery
// is forward progress: it feeds the watchdog's heartbeat.
func (f *Fabric) HandleEvent(now uint64, op uint8, arg uint64) {
	m := f.pending[arg]
	f.pending[arg] = nil
	f.freeSlot = append(f.freeSlot, uint32(arg))
	f.eng.Progress()
	f.endpoints[m.Dst](m)
}

// Now exposes the engine clock to protocol controllers.
func (f *Fabric) Now() uint64 { return f.eng.Now() }

// Engine returns the underlying simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }
