package mesi

import (
	"fmt"

	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/interconnect"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// Endpoint receives messages addressed to one agent.
type Endpoint func(*Msg)

// Route describes the wire between a pair of agents.
type Route struct {
	Latency   uint64
	PJPerByte float64
	// FlitsPerCycle bounds the route's bandwidth; back-to-back messages
	// serialize (a 72-byte data message occupies 9 cycles at 1 flit/cycle).
	// Zero means unlimited.
	FlitsPerCycle uint64
	// Category is the energy.Meter bucket this route's traffic lands in.
	Category string
	// StatName, when non-empty, counts msgs/bytes/flits under this name.
	StatName string
}

// Fabric is the host-side message network: a full crossbar with per-pair
// routes. Delivery preserves per-pair FIFO order (all messages on a route
// share one latency and the engine's event queue is stable).
type Fabric struct {
	eng       *sim.Engine
	meter     *energy.Meter
	stats     *stats.Set
	endpoints map[AgentID]Endpoint
	routes    map[[2]AgentID]Route
	nextFree  map[[2]AgentID]uint64 // bandwidth serialization per route
	// lastArrive is the per-route FIFO floor: with fault-injected delay
	// jitter, a later message must never overtake an earlier one.
	lastArrive map[[2]AgentID]uint64
	inj        *faults.Injector
	// DefaultRoute applies to pairs without an explicit route.
	DefaultRoute Route
}

// NewFabric builds an empty fabric.
func NewFabric(eng *sim.Engine, meter *energy.Meter, st *stats.Set) *Fabric {
	return &Fabric{
		eng:          eng,
		meter:        meter,
		stats:        st,
		endpoints:    make(map[AgentID]Endpoint),
		routes:       make(map[[2]AgentID]Route),
		nextFree:     make(map[[2]AgentID]uint64),
		lastArrive:   make(map[[2]AgentID]uint64),
		DefaultRoute: Route{Latency: 8, PJPerByte: 6.0, Category: energy.CatLinkHost},
	}
}

// SetInjector attaches (or clears) a fault injector; every route's delivery
// is then perturbed by the plan's order-preserving link faults.
func (f *Fabric) SetInjector(inj *faults.Injector) { f.inj = inj }

// Register attaches an endpoint for agent id.
func (f *Fabric) Register(id AgentID, ep Endpoint) {
	if _, dup := f.endpoints[id]; dup {
		sim.Failf("mesi.fabric", f.eng.Now(), "", "agent %d registered twice", id)
	}
	f.endpoints[id] = ep
}

// SetRoute installs a route for src->dst (directional).
func (f *Fabric) SetRoute(src, dst AgentID, r Route) {
	f.routes[[2]AgentID{src, dst}] = r
}

// SetRoutePair installs the same route in both directions.
func (f *Fabric) SetRoutePair(a, b AgentID, r Route) {
	f.SetRoute(a, b, r)
	f.SetRoute(b, a, r)
}

// Send accounts energy/traffic for m and schedules its delivery.
func (f *Fabric) Send(m *Msg) {
	route, ok := f.routes[[2]AgentID{m.Src, m.Dst}]
	if !ok {
		route = f.DefaultRoute
	}
	bytes := m.Bytes()
	if f.meter != nil && route.Category != "" {
		f.meter.Add(route.Category, route.PJPerByte*float64(bytes))
	}
	if f.stats != nil {
		name := route.StatName
		if name == "" {
			name = "fabric"
		}
		f.stats.Inc(name + ".msgs")
		f.stats.Add(name+".bytes", int64(bytes))
		f.stats.Add(name+".flits", int64(interconnect.Flits(bytes)))
		if bytes <= interconnect.ControlBytes {
			f.stats.Inc(name + ".ctrl")
		} else {
			f.stats.Inc(name + ".data")
		}
	}
	ep, ok := f.endpoints[m.Dst]
	if !ok {
		sim.Failf("mesi.fabric", f.eng.Now(), "",
			"no endpoint for agent %d (msg %s)", m.Dst, m)
	}
	now := f.eng.Now()
	start := now
	key := [2]AgentID{m.Src, m.Dst}
	if f.inj != nil {
		site := route.StatName
		if site == "" {
			site = fmt.Sprintf("fabric.%d.%d", m.Src, m.Dst)
		}
		if extra := f.inj.LinkDelay(site, now); extra > 0 {
			start += extra
			if f.stats != nil {
				f.stats.Inc("fabric.faults")
			}
		}
	}
	if route.FlitsPerCycle > 0 {
		if nf := f.nextFree[key]; nf > start {
			start = nf
		}
		flits := uint64(interconnect.Flits(bytes))
		occupancy := (flits + route.FlitsPerCycle - 1) / route.FlitsPerCycle
		if occupancy == 0 {
			occupancy = 1
		}
		f.nextFree[key] = start + occupancy
	}
	arrive := start + route.Latency
	if arrive <= now {
		arrive = now + 1
	}
	// Per-route FIFO floor (see interconnect.Link): jitter delays, never
	// reorders.
	if arrive < f.lastArrive[key] {
		arrive = f.lastArrive[key]
	}
	f.lastArrive[key] = arrive
	f.eng.ScheduleAt(arrive, func(uint64) { f.eng.Progress(); ep(m) })
}

// Now exposes the engine clock to protocol controllers.
func (f *Fabric) Now() uint64 { return f.eng.Now() }

// Engine returns the underlying simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }
