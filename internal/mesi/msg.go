// Package mesi implements the host-side coherence substrate of the Fusion
// system: a blocking, directory-based, 3-hop MESI protocol at the shared L2
// (8-bank NUCA, Table 2), the host L1D controller that speaks it, and the
// message fabric connecting the agents.
//
// The accelerator tile's shared L1X joins this protocol as one more agent —
// restricted to the MEI subset, always requesting exclusive — via the
// Responder interface; its implementation lives in internal/acc. The oracle
// DMA engine of the SCRATCH baseline uses the dedicated DMARead/DMAWrite
// transactions, which the directory completes itself (invalidating or
// downgrading caches as needed) without making the DMA a caching agent.
package mesi

import (
	"fmt"

	"fusion/internal/mem"
)

// AgentID names an endpoint on the coherence fabric. The directory is
// always agent 0.
type AgentID uint8

// DirID is the directory/L2 controller's agent ID.
const DirID AgentID = 0

// MsgType enumerates the protocol messages.
type MsgType uint8

const (
	// Requests to the directory.
	MsgGetS MsgType = iota // read miss
	MsgGetM                // write miss or S->M upgrade
	MsgPutM                // dirty eviction, carries data
	MsgPutE                // clean-exclusive eviction notice
	// Directory to caches.
	MsgFwdGetS // downgrade owner, send data to requester
	MsgFwdGetM // invalidate owner, transfer M to requester
	MsgInv     // invalidate a sharer; ack goes to Msg.Requester
	MsgPutAck  // eviction acknowledged
	// Data responses.
	MsgData  // shared data (may carry AckCount for GetM)
	MsgDataE // exclusive clean data (no other sharers)
	MsgDataM // modified data with ownership transfer
	// Acks.
	MsgInvAck   // sharer -> requester after MsgInv
	MsgOwnerAck // previous owner -> directory after a Fwd (may carry data)
	MsgUnblock  // requester -> directory: transaction complete
	// Oracle-DMA transactions (directory-collected).
	MsgDMARead
	MsgDMAReadResp
	MsgDMAWrite
	MsgDMAWriteAck
)

var msgNames = map[MsgType]string{
	MsgGetS: "GetS", MsgGetM: "GetM", MsgPutM: "PutM", MsgPutE: "PutE",
	MsgFwdGetS: "FwdGetS", MsgFwdGetM: "FwdGetM", MsgInv: "Inv",
	MsgPutAck: "PutAck", MsgData: "Data", MsgDataE: "DataE", MsgDataM: "DataM",
	MsgInvAck: "InvAck", MsgOwnerAck: "OwnerAck", MsgUnblock: "Unblock",
	MsgDMARead: "DMARead", MsgDMAReadResp: "DMAReadResp",
	MsgDMAWrite: "DMAWrite", MsgDMAWriteAck: "DMAWriteAck",
}

func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// HasData reports whether this message type carries a cache line.
func (t MsgType) HasData() bool {
	switch t {
	case MsgPutM, MsgData, MsgDataE, MsgDataM, MsgDMAReadResp, MsgDMAWrite:
		return true
	case MsgOwnerAck:
		// OwnerAck carries data only when the owner was dirty; that case is
		// flagged per message (Msg.Dirty), not per type.
		return false
	default:
		// Requests, forwards, and acks are control-only.
		return false
	}
}

// Msg is one coherence message.
type Msg struct {
	Type MsgType
	Addr mem.PAddr // line-aligned physical address
	Src  AgentID
	Dst  AgentID
	// Requester is the agent a third party must answer: Inv carries the
	// GetM requester so the sharer's InvAck goes straight there (3-hop).
	Requester AgentID
	// AckCount, on a Data response to GetM, is the number of InvAcks the
	// requester must collect before writing.
	AckCount int
	// Excl, on Unblock, reports the requester ended in M/E rather than S.
	Excl bool
	// Dirty, on OwnerAck, means the previous owner had modified data which
	// this message carries back to the directory.
	Dirty bool
	// Dropped, on OwnerAck, means the previous owner invalidated its copy
	// (the accelerator tile always does; a host L1 keeps S on FwdGetS).
	Dropped bool
	// Ver is the modeled payload version for messages that carry data.
	Ver uint64
	// Delta, on DMAWrite, means Ver is an increment to accumulate onto the
	// backing store rather than an absolute version. The oracle DMA uses it
	// for write-allocated scratchpad lines whose base version was never
	// fetched (only read data is DMA'd in, Section 4).
	Delta bool

	// pooled marks a message currently sitting in a MsgPool free list; the
	// pool's double-release guard checks it.
	pooled bool
}

// Bytes implements interconnect.Message: one 8-byte control flit, plus a
// 64-byte line when data rides along.
func (m *Msg) Bytes() int {
	if m.Type.HasData() || (m.Type == MsgOwnerAck && m.Dirty) {
		return 8 + mem.LineBytes
	}
	return 8
}

func (m *Msg) String() string {
	return fmt.Sprintf("%s %s %d->%d v%d", m.Type, m.Addr, m.Src, m.Dst, m.Ver)
}
