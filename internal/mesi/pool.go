package mesi

import "fusion/internal/sim"

// msgTypePoison overwrites a released message's Type so any use-after-release
// trips the receiving controller's unexpected-message diagnostics instead of
// silently replaying a stale transaction.
const msgTypePoison MsgType = 0xFD

// MsgPool is a free list of coherence messages. Every hot sender (client,
// directory, tile L1X, oracle DMA) owns one and draws fresh messages from it
// instead of allocating; the receiver releases a message into its own pool
// once the handler is done with it. Pool identity does not matter — a Msg
// may be created by one pool and released into another (messages migrate
// between agents' free lists), because the engine is single-threaded and a
// pooled Msg carries no owner state.
//
// Put panics (via sim.Failf, a *ProtocolError) on double release — the guard
// is a single flag check, cheap enough to stay on in every build, not just
// under -paranoid.
type MsgPool struct {
	free []*Msg
}

// Get returns a zeroed message. A nil pool degrades to plain allocation.
func (p *MsgPool) Get() *Msg {
	if p == nil || len(p.free) == 0 {
		return &Msg{}
	}
	n := len(p.free) - 1
	m := p.free[n]
	p.free[n] = nil
	p.free = p.free[:n]
	*m = Msg{}
	return m
}

// Put releases m for reuse. Releasing the same message twice is a protocol
// bug (two handlers both believed they owned it) and fails loudly. The
// released message's Type is poisoned so a retained alias is caught the next
// time anything inspects it. A nil pool accepts the release (the message
// falls back to the garbage collector) but still enforces the guard.
func (p *MsgPool) Put(m *Msg) {
	if m.pooled {
		sim.Failf("mesi.pool", 0, "", "double release of %s", m)
	}
	m.pooled = true
	m.Type = msgTypePoison
	if p == nil {
		return
	}
	p.free = append(p.free, m)
}
