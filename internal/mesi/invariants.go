package mesi

// Runtime invariant checking for the host MESI protocol, mirroring the ACC
// checker in internal/acc: CheckInvariants cross-examines the directory's
// view against the actual cache contents of a set of clients.

import (
	"fmt"
	"sort"

	"fusion/internal/cache"
	"fusion/internal/mem"
)

// CheckInvariants compares the directory's records with the clients'
// caches and returns every inconsistency found (empty means clean). Lines
// with in-flight transactions (busy at the directory, outstanding at a
// client, or in an eviction buffer) are skipped — transient states are
// allowed to disagree.
//
// Checked invariants on quiescent lines:
//
//  1. Single owner: at most one client holds a line in E or M.
//  2. Owner tracking: a client in E/M is the directory's recorded owner.
//  3. Exclusivity: no client holds S while another holds E/M.
//  4. Sharer soundness: a client holding S appears in the directory's
//     sharer set (the converse does not hold — S lines drop silently).
func CheckInvariants(dir *Directory, clients []*Client) []string {
	var bad []string

	type holder struct {
		id    AgentID
		state cache.State
	}
	holders := make(map[uint64][]holder)
	skip := make(map[uint64]bool)

	for _, c := range clients {
		c := c
		for _, a := range c.mshr.Outstanding() {
			skip[a] = true
		}
		for i := range c.evicting {
			skip[c.evicting[i].addr] = true
		}
		c.arr.ForEach(func(l *cache.Line) {
			if l.Valid {
				holders[l.Addr] = append(holders[l.Addr], holder{c.id, l.State})
			}
		})
	}
	dir.entries.ForEach(func(a uint64, ep **dirEntry) {
		if e := *ep; e.busy || len(e.queue) > 0 {
			skip[a] = true
		}
	})

	// Sorted scan order keeps the violation report reproducible across runs.
	addrs := make([]uint64, 0, len(holders))
	for addr := range holders {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		hs := holders[addr]
		if skip[addr] {
			continue
		}
		e, _ := dir.entries.Get(addr)
		var owners, sharers []holder
		for _, h := range hs {
			switch h.state {
			case cache.Invalid:
				// An invalid way holds nothing; it is not a holder.
			case cache.Exclusive, cache.Modified:
				owners = append(owners, h)
			case cache.Shared:
				sharers = append(sharers, h)
			}
		}
		if len(owners) > 1 {
			bad = append(bad, fmt.Sprintf("line %#x has %d owners", addr, len(owners)))
		}
		if len(owners) == 1 && len(sharers) > 0 {
			bad = append(bad, fmt.Sprintf(
				"line %#x owned by agent %d while %d sharers hold S",
				addr, owners[0].id, len(sharers)))
		}
		if len(owners) == 1 {
			if e == nil || e.state != dirE || e.owner != owners[0].id {
				bad = append(bad, fmt.Sprintf(
					"line %#x: agent %d holds %v but the directory disagrees",
					addr, owners[0].id, owners[0].state))
			}
		}
		for _, sh := range sharers {
			if e == nil || e.state != dirS || !e.sharers.has(sh.id) {
				bad = append(bad, fmt.Sprintf(
					"line %#x: agent %d holds S but is not a recorded sharer",
					addr, sh.id))
			}
		}
	}
	return bad
}

// Quiesced reports whether the directory has no busy or queued lines (used
// by tests to decide when a full invariant sweep is meaningful).
func (dir *Directory) Quiesced() bool {
	quiet := true
	dir.entries.ForEach(func(_ uint64, ep **dirEntry) {
		if e := *ep; e.busy || len(e.queue) > 0 {
			quiet = false
		}
	})
	return quiet
}

// LineAddrFor exposes line alignment for test helpers.
func LineAddrFor(a mem.PAddr) uint64 { return uint64(a.LineAddr()) }
