package mesi

// Stress and race-focused tests: tiny caches force constant evictions so
// writeback/forward races (the evicting-buffer path) happen organically,
// and the golden version check proves none of them lose data.

import (
	"fmt"
	"math/rand"
	"testing"

	"fusion/internal/cache"
	"fusion/internal/dram"
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// tinyHarness builds clients with 512-byte caches: 8 lines, 2 ways.
func tinyHarness(t *testing.T, nClients int) *harness {
	t.Helper()
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	model := energy.Default()
	fab := NewFabric(eng, mt, st)
	d := dram.New(eng, dram.DefaultConfig(), model, mt, st)
	dir := NewDirectory(fab, DefaultDirConfig(), d, model, mt, st)
	h := &harness{eng: eng, fab: fab, dir: dir, st: st, mt: mt}
	for i := 0; i < nClients; i++ {
		cfg := ClientConfig{
			Name:           "tiny." + string(rune('a'+i)),
			Cache:          cache.Params{SizeBytes: 512, Ways: 2, LineBytes: 64},
			MSHRs:          4,
			HitLatency:     2,
			EnergyCategory: energy.CatHostL1,
			AccessPJ:       model.HostL1Access,
		}
		h.clients = append(h.clients, NewClient(fab, AgentID(1+i), cfg, model, mt, st))
	}
	return h
}

// Constant-eviction stress: 3 tiny caches over 32 lines with concurrent
// issue. Evicting-buffer forwards, stale PutMs, and upgrade races all fire;
// the backing store must still end at the golden version of every line.
func TestEvictionForwardRaceStress(t *testing.T) {
	for _, seed := range []int64{41, 53, 97, 131, 263} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			evictionStress(t, seed)
		})
	}
}

func evictionStress(t *testing.T, seed int64) {
	h := tinyHarness(t, 3)
	rng := rand.New(rand.NewSource(seed))
	golden := map[uint64]uint64{}
	lines := make([]mem.PAddr, 32)
	for i := range lines {
		lines[i] = mem.PAddr(i * 64)
	}
	pending := 0
	for i := 0; i < 600; i++ {
		c := h.clients[rng.Intn(3)]
		addr := lines[rng.Intn(len(lines))]
		kind := mem.Load
		if rng.Intn(2) == 0 {
			kind = mem.Store
			golden[uint64(addr)]++
		}
		pending++
		for !c.Access(kind, addr, func(uint64) { pending-- }) {
			h.eng.Step()
		}
		for s := rng.Intn(5); s > 0; s-- {
			h.eng.Step()
		}
	}
	h.run(t, 5_000_000, func() bool { return pending == 0 })
	for _, c := range h.clients {
		c.FlushAll()
	}
	h.run(t, 5_000_000, func() bool {
		for _, c := range h.clients {
			if c.Outstanding() > 0 {
				return false
			}
		}
		return true
	})
	for _, addr := range lines {
		if got := h.dir.Version(addr); got != golden[uint64(addr)] {
			t.Errorf("line %#x: v%d, golden v%d", uint64(addr), got, golden[uint64(addr)])
		}
	}
	// The stress should actually have exercised evictions.
	if h.st.Get("tiny.a.writebacks") == 0 {
		t.Error("no writebacks — stress did not stress")
	}
	if bad := CheckInvariants(h.dir, h.clients); len(bad) > 0 {
		t.Errorf("invariants after flush: %v", bad)
	}
}

// A store while another client holds M, immediately followed by a read from
// a third: ownership must chain correctly through back-to-back forwards.
func TestBackToBackOwnershipTransfers(t *testing.T) {
	h := newHarness(t, 3)
	a, b, c := h.clients[0], h.clients[1], h.clients[2]
	for round := 0; round < 10; round++ {
		h.do(t, a, mem.Store, 0x100)
		h.do(t, b, mem.Store, 0x100)
		h.do(t, c, mem.Store, 0x100)
	}
	if l := c.Peek(0x100); l == nil || l.Ver != 30 {
		t.Fatalf("after 30 chained stores, owner sees %+v, want v30", l)
	}
}

// Silent S-drops leave stale sharer state at the directory; invalidations
// to now-empty caches must still be acked (no hang, no miscount).
func TestStaleSharerInvalidation(t *testing.T) {
	h := newHarness(t, 3)
	a, b, c := h.clients[0], h.clients[1], h.clients[2]
	h.do(t, a, mem.Load, 0x200)
	h.do(t, b, mem.Load, 0x200)
	h.do(t, c, mem.Load, 0x200)
	// Force b to silently drop its S copy via conflicting fills.
	for i := 1; i <= 4; i++ {
		h.do(t, b, mem.Load, mem.PAddr(0x200+i*16384))
	}
	if b.Peek(0x200) != nil {
		t.Fatal("line survived set pressure")
	}
	// a upgrades: dir still thinks b shares; b must ack for a line it no
	// longer has.
	h.do(t, a, mem.Store, 0x200)
	if l := a.Peek(0x200); l == nil || l.State != cache.Modified {
		t.Fatalf("upgrade failed: %+v", l)
	}
}

// Fabric route bandwidth: data messages on a 1-flit/cycle route serialize.
func TestFabricBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, nil, nil)
	var arrivals []uint64
	fab.Register(1, func(*Msg) { arrivals = append(arrivals, eng.Now()) })
	fab.Register(2, func(*Msg) {})
	fab.SetRoute(2, 1, Route{Latency: 5, FlitsPerCycle: 1})
	// Two 72-byte data messages: the second is delayed 9 cycles.
	fab.Send(&Msg{Type: MsgData, Addr: 0, Src: 2, Dst: 1})
	fab.Send(&Msg{Type: MsgData, Addr: 64, Src: 2, Dst: 1})
	for i := 0; i < 40; i++ {
		eng.Step()
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[1]-arrivals[0] != 9 {
		t.Fatalf("serialization gap = %d, want 9 flit-cycles", arrivals[1]-arrivals[0])
	}
}

// Unknown-destination messages panic (wiring bugs die loudly).
func TestFabricUnknownEndpointPanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown endpoint")
		}
	}()
	fab.Send(&Msg{Type: MsgGetS, Src: 1, Dst: 9})
}

// Double registration panics.
func TestFabricDoubleRegisterPanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, nil, nil)
	fab.Register(1, func(*Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for double register")
		}
	}()
	fab.Register(1, func(*Msg) {})
}

// Directory Preload makes data LLC-resident: a subsequent load must not
// touch DRAM.
func TestPreloadAvoidsDRAM(t *testing.T) {
	h := newHarness(t, 1)
	h.dir.Preload(0x300, 5)
	before := h.st.Get("dram.reads")
	h.do(t, h.clients[0], mem.Load, 0x300)
	if h.st.Get("dram.reads") != before {
		t.Fatal("preloaded line went to DRAM")
	}
	if l := h.clients[0].Peek(0x300); l == nil || l.Ver != 5 {
		t.Fatalf("line = %+v, want v5", l)
	}
}

// MSHR merging on the client: many loads to one missing line cost one
// directory transaction.
func TestClientMSHRMergingSingleFetch(t *testing.T) {
	h := newHarness(t, 1)
	c := h.clients[0]
	done := 0
	for i := 0; i < 10; i++ {
		if !c.Access(mem.Load, mem.PAddr(0x400+i*4), func(uint64) { done++ }) {
			t.Fatal("MSHR rejected a merged access")
		}
	}
	h.run(t, 100000, func() bool { return done == 10 })
	if got := h.st.Get("dir.GetS"); got != 1 {
		t.Fatalf("GetS = %d, want 1 (merged)", got)
	}
}

// Invariant sweeps during the eviction stress: whenever the system
// quiesces, the directory and caches must agree exactly.
func TestInvariantsDuringStress(t *testing.T) {
	h := tinyHarness(t, 3)
	rng := rand.New(rand.NewSource(53))
	lines := make([]mem.PAddr, 24)
	for i := range lines {
		lines[i] = mem.PAddr(i * 64)
	}
	pending := 0
	sweeps := 0
	for i := 0; i < 300; i++ {
		c := h.clients[rng.Intn(3)]
		addr := lines[rng.Intn(len(lines))]
		kind := mem.Load
		if rng.Intn(2) == 0 {
			kind = mem.Store
		}
		pending++
		for !c.Access(kind, addr, func(uint64) { pending-- }) {
			h.eng.Step()
		}
		for s := rng.Intn(6); s > 0; s-- {
			h.eng.Step()
		}
		if pending == 0 && h.dir.Quiesced() {
			sweeps++
			if bad := CheckInvariants(h.dir, h.clients); len(bad) > 0 {
				t.Fatalf("op %d: %v", i, bad)
			}
		}
	}
	h.run(t, 5_000_000, func() bool { return pending == 0 })
	h.run(t, 5_000_000, h.dir.Quiesced)
	if bad := CheckInvariants(h.dir, h.clients); len(bad) > 0 {
		t.Fatalf("final: %v", bad)
	}
	if sweeps == 0 {
		t.Log("note: no mid-run quiescent points (fine, final sweep ran)")
	}
}
