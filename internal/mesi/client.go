package mesi

import (
	"fmt"
	"strings"

	"fusion/internal/cache"
	"fusion/internal/energy"
	"fusion/internal/mem"
	"fusion/internal/obs"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// txn tracks one outstanding miss transaction at a client. Completed txns
// are recycled through a per-client free list (waiters capacity included),
// so steady-state misses allocate nothing.
type txn struct {
	addr        uint64
	write       bool // GetM (vs GetS)
	dataArrived bool
	dataState   cache.State
	ver         uint64
	acksNeeded  int // -1 until the Data response reports the count
	acksGot     int
	waiters     []waiter
}

type waiter struct {
	kind mem.AccessKind
	addr mem.PAddr // original (offset-carrying) address, for observations
	done func(now uint64)
}

// evicting tracks a dirty or exclusive line between PutM/PutE and PutAck; the
// client can still answer forwarded requests from this buffer, which resolves
// the eviction/forward race without extra directory states. Stored by value:
// entries are immutable after insert, so no heap object is needed.
type evicting struct {
	ver   uint64
	dirty bool
}

// evictEntry is one slot of the linear eviction-buffer list. The buffer is
// bounded by the ways of a set times in-flight evictions (always a handful),
// so a scanned slice beats a map.
type evictEntry struct {
	addr uint64
	evicting
}

// Client is a MESI L1 cache controller: the host core's L1D. It exposes a
// processor-side Access API and speaks the directory protocol on the fabric.
type Client struct {
	id     AgentID
	name   string
	fabric *Fabric
	arr    *cache.Array
	mshr   *cache.MSHR

	hitLatency uint64

	txns     []*txn // parallel to MSHR slots
	freeTxns []*txn
	evicting []evictEntry
	pool     MsgPool

	model     energy.Model
	meter     *energy.Meter
	energyCat energy.Cat
	accessPJ  float64
	obsv      obs.Observer

	cAccesses  *stats.Counter
	cMerges    *stats.Counter
	cMSHRFull  *stats.Counter
	cMisses    *stats.Counter
	cHits      *stats.Counter
	cInvals    *stats.Counter
	cFwdServed *stats.Counter
	cWBs       *stats.Counter
	cDrops     *stats.Counter
}

// ClientConfig sizes a client cache.
type ClientConfig struct {
	Name       string
	Cache      cache.Params // Table 2 host L1: 64 KB, 4-way
	MSHRs      int
	HitLatency uint64 // Table 2: 3 cycles
	// EnergyCategory and AccessPJ define where and how much each array
	// access costs.
	EnergyCategory energy.Cat
	AccessPJ       float64
}

// DefaultHostL1Config matches Table 2.
func DefaultHostL1Config(model energy.Model) ClientConfig {
	return ClientConfig{
		Name:           "hostl1",
		Cache:          cache.Params{SizeBytes: 64 << 10, Ways: 4, LineBytes: mem.LineBytes},
		MSHRs:          16,
		HitLatency:     3,
		EnergyCategory: energy.CatHostL1,
		AccessPJ:       model.HostL1Access,
	}
}

// NewClient builds a client and registers it as agent id on the fabric.
func NewClient(f *Fabric, id AgentID, cfg ClientConfig,
	model energy.Model, meter *energy.Meter, st *stats.Set) *Client {
	c := &Client{
		id:         id,
		name:       cfg.Name,
		fabric:     f,
		arr:        cache.NewArray(cfg.Cache),
		mshr:       cache.NewMSHR(cfg.MSHRs),
		hitLatency: cfg.HitLatency,
		txns:       make([]*txn, cfg.MSHRs),
		model:      model,
		meter:      meter,
		energyCat:  cfg.EnergyCategory,
		accessPJ:   cfg.AccessPJ,
		cAccesses:  st.Counter(cfg.Name + ".accesses"),
		cMerges:    st.Counter(cfg.Name + ".mshr_merge"),
		cMSHRFull:  st.Counter(cfg.Name + ".mshr_full"),
		cMisses:    st.Counter(cfg.Name + ".misses"),
		cHits:      st.Counter(cfg.Name + ".hits"),
		cInvals:    st.Counter(cfg.Name + ".invalidations"),
		cFwdServed: st.Counter(cfg.Name + ".fwd_served"),
		cWBs:       st.Counter(cfg.Name + ".writebacks"),
		cDrops:     st.Counter(cfg.Name + ".silent_drops"),
	}
	f.Register(id, c.Handle)
	return c
}

// ID returns the client's agent ID.
func (c *Client) ID() AgentID { return c.id }

// SetObserver attaches a litmus observer (nil disables observation; the
// hot path then pays only a nil check). A MESI client is a strict agent:
// every recorded load must observe the latest globally-ordered write.
func (c *Client) SetObserver(o obs.Observer) { c.obsv = o }

// observe reports one agent-visible load or store to the attached observer.
func (c *Client) observe(k obs.Kind, addr mem.PAddr, ver uint64) {
	c.obsv.Record(obs.Observation{Cycle: c.fabric.Now(), Agent: c.name,
		Addr: uint64(addr), Ver: ver, Kind: k, Phys: true})
}

func (c *Client) access() {
	if c.meter != nil {
		c.meter.Add(c.energyCat, c.accessPJ)
	}
	c.cAccesses.Inc()
}

// evictFind returns the index of addr's eviction buffer, or -1.
func (c *Client) evictFind(addr uint64) int {
	for i := range c.evicting {
		if c.evicting[i].addr == addr {
			return i
		}
	}
	return -1
}

// evictPut appends (or overwrites) addr's eviction buffer.
func (c *Client) evictPut(addr uint64, ev evicting) {
	if i := c.evictFind(addr); i >= 0 {
		c.evicting[i].evicting = ev
		return
	}
	c.evicting = append(c.evicting, evictEntry{addr, ev})
}

// evictRemove drops entry i by swapping the tail in (order is irrelevant:
// lookups are by address).
func (c *Client) evictRemove(i int) {
	last := len(c.evicting) - 1
	c.evicting[i] = c.evicting[last]
	c.evicting = c.evicting[:last]
}

// newTxn returns a zeroed transaction from the free list (retaining waiter
// capacity) or a fresh one.
func (c *Client) newTxn(a uint64, write bool) *txn {
	var t *txn
	if n := len(c.freeTxns); n > 0 {
		t = c.freeTxns[n-1]
		c.freeTxns[n-1] = nil
		c.freeTxns = c.freeTxns[:n-1]
		w := t.waiters[:0]
		*t = txn{waiters: w}
	} else {
		t = &txn{}
	}
	t.addr = a
	t.write = write
	t.acksNeeded = -1
	return t
}

// Access performs a processor load or store. done fires when the access
// retires. It returns false when the MSHR is full and the access must be
// retried (back-pressure into the core's load/store queue).
func (c *Client) Access(kind mem.AccessKind, addr mem.PAddr, done func(now uint64)) bool {
	a := uint64(addr.LineAddr())
	c.access()

	if l := c.arr.Lookup(a); l != nil {
		switch {
		case kind == mem.Load:
			if c.obsv != nil {
				c.observe(obs.Load, addr, l.Ver)
			}
			c.hit(done)
			return true
		case l.State == cache.Modified:
			l.Ver++
			if c.obsv != nil {
				c.observe(obs.Store, addr, l.Ver)
			}
			c.hit(done)
			return true
		case l.State == cache.Exclusive:
			l.State = cache.Modified // silent E->M upgrade
			l.Dirty = true
			l.Ver++
			if c.obsv != nil {
				c.observe(obs.Store, addr, l.Ver)
			}
			c.hit(done)
			return true
		default:
			// Store to a Shared line: S->M upgrade via GetM.
		}
	}

	// Miss (or upgrade). Merge into an existing transaction when possible.
	if slot := c.mshr.Slot(a); slot >= 0 {
		t := c.txns[slot]
		if kind == mem.Store && !t.write {
			// A store behind a pending GetS: replay after the fill; the
			// replay will find S/E and upgrade.
		}
		t.waiters = append(t.waiters, waiter{kind, addr, done})
		c.cMerges.Inc()
		return true
	}
	if c.mshr.Full() {
		c.cMSHRFull.Inc()
		return false
	}
	t := c.newTxn(a, kind == mem.Store)
	t.waiters = append(t.waiters, waiter{kind, addr, done})
	c.txns[c.mshr.Allocate(a)] = t
	c.cMisses.Inc()
	mt := MsgGetS
	if t.write {
		mt = MsgGetM
	}
	req := c.pool.Get()
	req.Type, req.Addr, req.Src, req.Dst = mt, mem.PAddr(a), c.id, DirID
	c.fabric.Send(req)
	return true
}

func (c *Client) hit(done func(uint64)) {
	c.cHits.Inc()
	c.fabric.Engine().Schedule(c.hitLatency, done)
}

// Handle is the fabric endpoint for protocol messages. Every message is
// consumed synchronously, so it is released into the client's pool on the
// way out.
func (c *Client) Handle(m *Msg) {
	a := uint64(m.Addr.LineAddr())
	switch m.Type {
	case MsgData, MsgDataE, MsgDataM:
		slot := c.mshr.Slot(a)
		if slot < 0 {
			sim.Failf(c.name, c.fabric.Now(), c.DumpState(), "data with no txn: %s", m)
		}
		t := c.txns[slot]
		t.dataArrived = true
		t.ver = m.Ver
		switch m.Type {
		case MsgDataE:
			t.dataState = cache.Exclusive
		case MsgDataM:
			t.dataState = cache.Modified
		default:
			t.dataState = cache.Shared
		}
		if m.AckCount > 0 || t.acksNeeded == -1 {
			t.acksNeeded = m.AckCount
		}
		c.maybeComplete(t)

	case MsgInvAck:
		slot := c.mshr.Slot(a)
		if slot < 0 {
			sim.Failf(c.name, c.fabric.Now(), c.DumpState(), "InvAck with no txn: %s", m)
		}
		t := c.txns[slot]
		t.acksGot++
		c.maybeComplete(t)

	case MsgInv:
		// Invalidate a cached copy (it may already be gone: S lines drop
		// silently). Ack whoever the directory says is waiting. A DMA write
		// can invalidate a Modified owner; its version rides the ack so the
		// directory merges the stores before committing the DMA data.
		ack := c.pool.Get()
		ack.Type, ack.Addr, ack.Src, ack.Dst = MsgInvAck, m.Addr, c.id, m.Requester
		if l := c.arr.Peek(a); l != nil {
			if l.State == cache.Modified {
				ack.Dirty, ack.Ver = true, l.Ver
			}
			*l = cache.Line{}
			c.access()
		} else if i := c.evictFind(a); i >= 0 {
			// An eviction racing with an invalidation: the buffered data is
			// superseded, but its version must still reach the directory —
			// the in-flight PutM will be stale-acked.
			ev := c.evicting[i].evicting
			if ev.dirty {
				ack.Dirty, ack.Ver = true, ev.ver
			}
			c.evictRemove(i)
		}
		c.cInvals.Inc()
		c.fabric.Send(ack)

	case MsgFwdGetS:
		c.handleFwd(m, a, false)

	case MsgFwdGetM:
		c.handleFwd(m, a, true)

	case MsgPutAck:
		if i := c.evictFind(a); i >= 0 {
			c.evictRemove(i)
		}

	default:
		sim.Failf(c.name, c.fabric.Now(), c.DumpState(), "unexpected %s", m)
	}
	c.pool.Put(m)
}

// handleFwd answers a forwarded request as the current owner.
func (c *Client) handleFwd(m *Msg, a uint64, exclusive bool) {
	c.cFwdServed.Inc()
	var ver uint64
	var dirty bool
	dropped := false

	if l := c.arr.Peek(a); l != nil && (l.State == cache.Modified || l.State == cache.Exclusive) {
		ver = l.Ver
		dirty = l.State == cache.Modified
		c.access()
		if exclusive {
			*l = cache.Line{}
			dropped = true
		} else {
			l.State = cache.Shared
			l.Dirty = false
		}
	} else if i := c.evictFind(a); i >= 0 {
		// Serve from the eviction buffer; the line is gone either way.
		ev := c.evicting[i].evicting
		ver = ev.ver
		dirty = ev.dirty
		dropped = true
		c.evictRemove(i)
	} else {
		sim.Failf(c.name, c.fabric.Now(), c.DumpState(), "Fwd for line %#x not owned", a)
	}

	dt := MsgData
	if exclusive {
		dt = MsgDataM
	}
	data := c.pool.Get()
	data.Type, data.Addr, data.Src, data.Dst, data.Ver = dt, m.Addr, c.id, m.Requester, ver
	c.fabric.Send(data)
	ack := c.pool.Get()
	ack.Type, ack.Addr, ack.Src, ack.Dst = MsgOwnerAck, m.Addr, c.id, DirID
	ack.Dirty, ack.Dropped, ack.Ver = dirty, dropped, ver
	c.fabric.Send(ack)
}

// maybeComplete fills the line and replays waiters once data and all
// invalidation acks have arrived.
func (c *Client) maybeComplete(t *txn) {
	if !t.dataArrived || t.acksNeeded < 0 || t.acksGot < t.acksNeeded {
		return
	}
	a := t.addr

	// An upgrade (store to a line held in S) must reuse the existing way;
	// filling a second way would alias the line within the set.
	v := c.arr.Peek(a)
	if v == nil {
		v = c.pickVictim(a)
		if v == nil {
			// Every way in the set is tied up by pending transactions; retry.
			c.fabric.Engine().Schedule(1, func(uint64) { c.maybeComplete(t) })
			return
		}
		c.evict(v)
		c.arr.Fill(v, a, 0)
	}
	c.access()
	v.Ver = t.ver
	state := t.dataState
	if t.write {
		state = cache.Modified
	}
	v.State = state
	v.Dirty = state == cache.Modified

	c.txns[c.mshr.Free(a)] = nil
	c.fabric.Engine().Progress() // miss resolved: heartbeat
	unb := c.pool.Get()
	unb.Type, unb.Addr, unb.Src, unb.Dst = MsgUnblock, mem.PAddr(a), c.id, DirID
	unb.Excl = state == cache.Exclusive || state == cache.Modified
	c.fabric.Send(unb)

	// Replay waiters: stores on a non-M fill re-enter Access and upgrade.
	waiters := t.waiters
	lat := c.hitLatency
	for _, w := range waiters {
		w := w
		if w.kind == mem.Store && state != cache.Modified {
			c.fabric.Engine().Schedule(1, func(uint64) {
				c.retryAccess(w.kind, w.addr, w.done)
			})
			continue
		}
		if w.kind == mem.Store {
			v.Ver++
			if c.obsv != nil {
				c.observe(obs.Store, w.addr, v.Ver)
			}
		} else if c.obsv != nil {
			c.observe(obs.Load, w.addr, v.Ver)
		}
		c.fabric.Engine().Schedule(lat, w.done)
	}
	c.freeTxns = append(c.freeTxns, t)
}

// retryAccess re-issues an access until the MSHR accepts it.
func (c *Client) retryAccess(kind mem.AccessKind, addr mem.PAddr, done func(uint64)) {
	if !c.Access(kind, addr, done) {
		c.fabric.Engine().Schedule(2, func(uint64) { c.retryAccess(kind, addr, done) })
	}
}

// pickVictim finds a fillable way for addr, skipping lines with outstanding
// transactions (an upgrading S line must not be displaced mid-transaction).
func (c *Client) pickVictim(a uint64) *cache.Line {
	for i := 0; i < c.arr.Params().Ways; i++ {
		v := c.arr.Victim(a)
		if !v.Valid {
			return v
		}
		if c.mshr.Slot(v.Addr) < 0 {
			return v
		}
		c.arr.Touch(v) // rotate past the busy line
	}
	return nil
}

// evict writes back or drops a victim line.
func (c *Client) evict(v *cache.Line) {
	if !v.Valid {
		return
	}
	switch v.State {
	case cache.Modified:
		c.evictPut(v.Addr, evicting{ver: v.Ver, dirty: true})
		put := c.pool.Get()
		put.Type, put.Addr, put.Src, put.Dst, put.Ver =
			MsgPutM, mem.PAddr(v.Addr), c.id, DirID, v.Ver
		c.fabric.Send(put)
		c.cWBs.Inc()
	case cache.Exclusive:
		c.evictPut(v.Addr, evicting{ver: v.Ver, dirty: false})
		put := c.pool.Get()
		put.Type, put.Addr, put.Src, put.Dst = MsgPutE, mem.PAddr(v.Addr), c.id, DirID
		c.fabric.Send(put)
	default:
		// Shared lines drop silently.
		c.cDrops.Inc()
	}
	*v = cache.Line{}
}

// FlushAll writes back every dirty line and invalidates the cache, e.g. at
// the end of a program phase. Writebacks are fire-and-forget.
func (c *Client) FlushAll() {
	c.arr.ForEach(func(l *cache.Line) {
		c.evict(l)
	})
}

// DumpState summarizes in-flight transactions and eviction buffers for
// watchdog/failure diagnostics. Empty when idle.
func (c *Client) DumpState() string {
	if c.mshr.Len() == 0 && len(c.evicting) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d txns, %d evicting\n", c.name, c.mshr.Len(), len(c.evicting))
	for _, a := range c.mshr.Outstanding() {
		t := c.txns[c.mshr.Slot(a)]
		kind := "GetS"
		if t.write {
			kind = "GetM"
		}
		fmt.Fprintf(&b, "  %#x %s data=%v acks=%d/%d waiters=%d\n",
			a, kind, t.dataArrived, t.acksGot, t.acksNeeded, len(t.waiters))
	}
	return b.String()
}

// Outstanding reports in-flight transactions (for drain checks in tests).
func (c *Client) Outstanding() int { return c.mshr.Len() + len(c.evicting) }

// Peek exposes line state for tests.
func (c *Client) Peek(addr mem.PAddr) *cache.Line {
	return c.arr.Peek(uint64(addr.LineAddr()))
}
