// Package interconnect models the on-chip links of the Fusion system: the
// accelerator<->L1X connections inside a tile, the tile<->host-L2 link, the
// direct L0X<->L0X forwarding path of FUSION-Dx, and the ring that joins the
// LLC's NUCA banks.
//
// Links impose latency, serialize messages onto a finite flit bandwidth, and
// attribute energy per byte to an energy.Meter category. Message and flit
// counts feed Figure 6c (link traffic breakdown) and Table 4 (write-through
// vs writeback bandwidth in 8-byte flits).
package interconnect

import (
	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// FlitBytes is the flit width used throughout the paper (Table 4).
const FlitBytes = 8

// ControlBytes is the size of a control (request/ack) message: an address,
// a type, and a lease timestamp fit in one flit.
const ControlBytes = 8

// DataBytes is the size of a data-carrying message: one flit of header plus
// a 64-byte cache line.
const DataBytes = 8 + 64

// Message is anything that can travel over a Link.
type Message interface {
	// Bytes is the on-wire size, used for flit counting and link energy.
	Bytes() int
}

// Flits returns the number of 8-byte flits needed for n bytes.
func Flits(n int) int {
	return (n + FlitBytes - 1) / FlitBytes
}

// Link is a unidirectional point-to-point connection. Messages arrive at the
// receiver `latency` cycles after Send, in send order; a finite bandwidth
// (flits per cycle) serializes back-to-back messages.
type Link struct {
	name      string
	eng       *sim.Engine
	latency   uint64
	bwFlits   uint64 // flits per cycle; 0 means infinite
	pJPerByte float64
	meter     *energy.Meter
	meterCat  energy.Cat
	deliver   func(Message)
	inj       *faults.Injector

	// Interned counter handles, resolved once at construction so Send does
	// no string concatenation or map hashing per message.
	cMsgs   *stats.Counter
	cBytes  *stats.Counter
	cFlits  *stats.Counter
	cCtrl   *stats.Counter
	cData   *stats.Counter
	cFaults *stats.Counter

	nextFree   uint64 // first cycle the head of the link is free
	lastArrive uint64 // latest delivery scheduled so far (FIFO floor)

	// In-flight messages awaiting delivery, in send order. Arrival cycles
	// are non-decreasing (lastArrive floor) and the event queue is stable,
	// so delivery events fire in push order: a plain FIFO replaces one
	// closure allocation per Send.
	pending []Message
	phead   int
}

// Config holds Link construction parameters.
type Config struct {
	Name          string
	Latency       uint64
	FlitsPerCycle uint64 // 0 = unlimited
	PJPerByte     float64
	Meter         *energy.Meter
	MeterCategory energy.Cat
	Stats         *stats.Set
	// Deliver is invoked at the receiver when a message arrives.
	Deliver func(Message)
	// Injector, when non-nil, perturbs delivery with the deterministic,
	// order-preserving faults of its plan (delay jitter, stall windows).
	Injector *faults.Injector
}

// NewLink builds a link on the given engine.
func NewLink(eng *sim.Engine, cfg Config) *Link {
	if cfg.Deliver == nil {
		sim.Failf("interconnect", 0, "", "link %q needs a Deliver callback", cfg.Name)
	}
	return &Link{
		name:      cfg.Name,
		eng:       eng,
		latency:   cfg.Latency,
		bwFlits:   cfg.FlitsPerCycle,
		pJPerByte: cfg.PJPerByte,
		meter:     cfg.Meter,
		meterCat:  cfg.MeterCategory,
		deliver:   cfg.Deliver,
		inj:       cfg.Injector,
		cMsgs:     cfg.Stats.Counter(cfg.Name + ".msgs"),
		cBytes:    cfg.Stats.Counter(cfg.Name + ".bytes"),
		cFlits:    cfg.Stats.Counter(cfg.Name + ".flits"),
		cCtrl:     cfg.Stats.Counter(cfg.Name + ".ctrl"),
		cData:     cfg.Stats.Counter(cfg.Name + ".data"),
		cFaults:   cfg.Stats.Counter(cfg.Name + ".faults"),
	}
}

// SetInjector attaches (or clears) a fault injector after construction.
func (l *Link) SetInjector(inj *faults.Injector) { l.inj = inj }

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Send queues m for delivery. Energy and traffic are accounted immediately;
// delivery happens after the link latency plus any serialization delay.
func (l *Link) Send(m Message) {
	bytes := m.Bytes()
	flits := uint64(Flits(bytes))

	l.cMsgs.Inc()
	l.cBytes.Add(int64(bytes))
	l.cFlits.Add(int64(flits))
	if bytes <= ControlBytes {
		l.cCtrl.Inc()
	} else {
		l.cData.Inc()
	}
	if l.meter != nil {
		l.meter.Add(l.meterCat, l.pJPerByte*float64(bytes))
	}

	now := l.eng.Now()
	start := now
	if extra := l.inj.LinkDelay(l.name, now); extra > 0 {
		start += extra
		l.cFaults.Inc()
	}
	if l.bwFlits > 0 {
		if l.nextFree > start {
			start = l.nextFree
		}
		occupancy := (flits + l.bwFlits - 1) / l.bwFlits
		if occupancy == 0 {
			occupancy = 1
		}
		l.nextFree = start + occupancy
	}
	arrive := start + l.latency
	if arrive <= now {
		arrive = now + 1 // a link always takes at least one cycle
	}
	// FIFO floor: injected jitter must never let a later message overtake
	// an earlier one (equal arrival cycles keep send order — the event
	// queue is stable).
	if arrive < l.lastArrive {
		arrive = l.lastArrive
	}
	l.lastArrive = arrive
	if l.phead == len(l.pending) {
		l.pending = l.pending[:0]
		l.phead = 0
	}
	l.pending = append(l.pending, m)
	l.eng.ScheduleCallAt(arrive, l, 0, 0)
}

// HandleEvent delivers the oldest in-flight message. Delivery events fire in
// send order (non-decreasing arrival cycles, stable event queue), so the
// head of the pending FIFO is always the message this event was scheduled
// for. A delivery is forward progress: it feeds the watchdog's heartbeat.
func (l *Link) HandleEvent(now uint64, op uint8, arg uint64) {
	m := l.pending[l.phead]
	l.pending[l.phead] = nil // release for GC / pool reuse
	l.phead++
	if l.phead == len(l.pending) {
		l.pending = l.pending[:0]
		l.phead = 0
	} else if l.phead > 64 && l.phead*2 > len(l.pending) {
		n := copy(l.pending, l.pending[l.phead:])
		l.pending = l.pending[:n]
		l.phead = 0
	}
	l.eng.Progress()
	l.deliver(m)
}

// Ring computes NUCA ring-hop latencies between the LLC banks. The paper's
// LLC is an 8-tile NUCA on a ring with ~20-cycle average access (Table 2).
type Ring struct {
	Stops      int
	PerHop     uint64 // cycles per ring hop
	BankAccess uint64 // cycles inside the bank itself
}

// Latency returns the cycles from stop a to stop b plus the bank access
// time, taking the shorter ring direction.
func (r Ring) Latency(a, b int) uint64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if other := r.Stops - d; other < d {
		d = other
	}
	return uint64(d)*r.PerHop + r.BankAccess
}

// AvgLatency returns the average access latency from stop 0 over all banks,
// used to check the configuration against the paper's 20-cycle figure.
func (r Ring) AvgLatency() float64 {
	var total uint64
	for b := 0; b < r.Stops; b++ {
		total += r.Latency(0, b)
	}
	return float64(total) / float64(r.Stops)
}
