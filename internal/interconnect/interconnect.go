// Package interconnect models the on-chip links of the Fusion system: the
// accelerator<->L1X connections inside a tile, the tile<->host-L2 link, the
// direct L0X<->L0X forwarding path of FUSION-Dx, and the ring that joins the
// LLC's NUCA banks.
//
// Links impose latency, serialize messages onto a finite flit bandwidth, and
// attribute energy per byte to an energy.Meter category. Message and flit
// counts feed Figure 6c (link traffic breakdown) and Table 4 (write-through
// vs writeback bandwidth in 8-byte flits).
package interconnect

import (
	"fusion/internal/energy"
	"fusion/internal/faults"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// FlitBytes is the flit width used throughout the paper (Table 4).
const FlitBytes = 8

// ControlBytes is the size of a control (request/ack) message: an address,
// a type, and a lease timestamp fit in one flit.
const ControlBytes = 8

// DataBytes is the size of a data-carrying message: one flit of header plus
// a 64-byte cache line.
const DataBytes = 8 + 64

// Message is anything that can travel over a Link.
type Message interface {
	// Bytes is the on-wire size, used for flit counting and link energy.
	Bytes() int
}

// Flits returns the number of 8-byte flits needed for n bytes.
func Flits(n int) int {
	return (n + FlitBytes - 1) / FlitBytes
}

// Link is a unidirectional point-to-point connection. Messages arrive at the
// receiver `latency` cycles after Send, in send order; a finite bandwidth
// (flits per cycle) serializes back-to-back messages.
type Link struct {
	name      string
	eng       *sim.Engine
	latency   uint64
	bwFlits   uint64 // flits per cycle; 0 means infinite
	pJPerByte float64
	meter     *energy.Meter
	meterCat  string
	stats     *stats.Set
	deliver   func(Message)
	inj       *faults.Injector

	nextFree   uint64 // first cycle the head of the link is free
	lastArrive uint64 // latest delivery scheduled so far (FIFO floor)
}

// Config holds Link construction parameters.
type Config struct {
	Name          string
	Latency       uint64
	FlitsPerCycle uint64 // 0 = unlimited
	PJPerByte     float64
	Meter         *energy.Meter
	MeterCategory string
	Stats         *stats.Set
	// Deliver is invoked at the receiver when a message arrives.
	Deliver func(Message)
	// Injector, when non-nil, perturbs delivery with the deterministic,
	// order-preserving faults of its plan (delay jitter, stall windows).
	Injector *faults.Injector
}

// NewLink builds a link on the given engine.
func NewLink(eng *sim.Engine, cfg Config) *Link {
	if cfg.Deliver == nil {
		sim.Failf("interconnect", 0, "", "link %q needs a Deliver callback", cfg.Name)
	}
	return &Link{
		name:      cfg.Name,
		eng:       eng,
		latency:   cfg.Latency,
		bwFlits:   cfg.FlitsPerCycle,
		pJPerByte: cfg.PJPerByte,
		meter:     cfg.Meter,
		meterCat:  cfg.MeterCategory,
		stats:     cfg.Stats,
		deliver:   cfg.Deliver,
		inj:       cfg.Injector,
	}
}

// SetInjector attaches (or clears) a fault injector after construction.
func (l *Link) SetInjector(inj *faults.Injector) { l.inj = inj }

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Send queues m for delivery. Energy and traffic are accounted immediately;
// delivery happens after the link latency plus any serialization delay.
func (l *Link) Send(m Message) {
	bytes := m.Bytes()
	flits := uint64(Flits(bytes))

	if l.stats != nil {
		l.stats.Inc(l.name + ".msgs")
		l.stats.Add(l.name+".bytes", int64(bytes))
		l.stats.Add(l.name+".flits", int64(flits))
		if bytes <= ControlBytes {
			l.stats.Inc(l.name + ".ctrl")
		} else {
			l.stats.Inc(l.name + ".data")
		}
	}
	if l.meter != nil {
		l.meter.Add(l.meterCat, l.pJPerByte*float64(bytes))
	}

	now := l.eng.Now()
	start := now
	if extra := l.inj.LinkDelay(l.name, now); extra > 0 {
		start += extra
		if l.stats != nil {
			l.stats.Inc(l.name + ".faults")
		}
	}
	if l.bwFlits > 0 {
		if l.nextFree > start {
			start = l.nextFree
		}
		occupancy := (flits + l.bwFlits - 1) / l.bwFlits
		if occupancy == 0 {
			occupancy = 1
		}
		l.nextFree = start + occupancy
	}
	arrive := start + l.latency
	if arrive <= now {
		arrive = now + 1 // a link always takes at least one cycle
	}
	// FIFO floor: injected jitter must never let a later message overtake
	// an earlier one (equal arrival cycles keep send order — the event
	// queue is stable).
	if arrive < l.lastArrive {
		arrive = l.lastArrive
	}
	l.lastArrive = arrive
	// A delivery is forward progress: it feeds the watchdog's heartbeat.
	l.eng.ScheduleAt(arrive, func(uint64) { l.eng.Progress(); l.deliver(m) })
}

// Ring computes NUCA ring-hop latencies between the LLC banks. The paper's
// LLC is an 8-tile NUCA on a ring with ~20-cycle average access (Table 2).
type Ring struct {
	Stops      int
	PerHop     uint64 // cycles per ring hop
	BankAccess uint64 // cycles inside the bank itself
}

// Latency returns the cycles from stop a to stop b plus the bank access
// time, taking the shorter ring direction.
func (r Ring) Latency(a, b int) uint64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if other := r.Stops - d; other < d {
		d = other
	}
	return uint64(d)*r.PerHop + r.BankAccess
}

// AvgLatency returns the average access latency from stop 0 over all banks,
// used to check the configuration against the paper's 20-cycle figure.
func (r Ring) AvgLatency() float64 {
	var total uint64
	for b := 0; b < r.Stops; b++ {
		total += r.Latency(0, b)
	}
	return float64(total) / float64(r.Stops)
}
