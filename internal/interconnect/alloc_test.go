//go:build !race

// Allocation-discipline tests, excluded under the race detector (the race
// runtime instruments allocations and makes AllocsPerRun counts meaningless).
package interconnect

import (
	"testing"

	"fusion/internal/sim"
	"fusion/internal/stats"
)

// TestLinkSendZeroAlloc pins the steady-state cost of delivering a control
// message over a Link at zero heap allocations: the pending slice and the
// engine's event heap are warmed once and then reused forever.
func TestLinkSendZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.NewSet()
	link := NewLink(eng, Config{
		Name:    "hot",
		Latency: 1,
		Stats:   st,
		Deliver: func(m Message) {},
	})

	step := func() {
		link.Send(testMsg(8))
		eng.Step()
		eng.Step()
	}
	for i := 0; i < 64; i++ { // warm pending slice + event heap
		step()
	}

	if avg := testing.AllocsPerRun(1000, step); avg != 0 {
		t.Fatalf("Link.Send steady state allocated %.1f per op, want 0", avg)
	}
}
