package interconnect

import (
	"testing"

	"fusion/internal/faults"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

// TestLinkBackToBackOccupancy checks nextFree bookkeeping directly: N
// back-to-back data messages at 1 flit/cycle serialize head-to-tail, so
// deliveries land exactly one occupancy apart.
func TestLinkBackToBackOccupancy(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []uint64
	l := NewLink(eng, Config{
		Name: "bw", Latency: 4, FlitsPerCycle: 1,
		Deliver: func(Message) { arrivals = append(arrivals, eng.Now()) },
	})
	const n = 5
	for i := 0; i < n; i++ {
		l.Send(testMsg(72)) // 9 flits -> 9 cycles of occupancy each
	}
	for i := 0; i < 100; i++ {
		eng.Step()
	}
	if len(arrivals) != n {
		t.Fatalf("delivered %d messages, want %d", len(arrivals), n)
	}
	for i, at := range arrivals {
		want := uint64(i*9 + 4)
		if at != want {
			t.Errorf("message %d arrived at %d, want %d", i, at, want)
		}
	}
}

// TestLinkZeroLatencyFloor: even a zero-latency, unlimited-bandwidth link
// must deliver strictly after the send cycle (arrive <= now is floored to
// now+1), or a same-cycle delivery could re-enter the sender mid-cycle.
func TestLinkZeroLatencyFloor(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []uint64
	l := NewLink(eng, Config{
		Name: "zero", Latency: 0,
		Deliver: func(Message) { arrivals = append(arrivals, eng.Now()) },
	})
	eng.Schedule(3, func(uint64) { l.Send(testMsg(8)) })
	for i := 0; i < 10; i++ {
		eng.Step()
	}
	if len(arrivals) != 1 || arrivals[0] != 4 {
		t.Fatalf("zero-latency delivery at %v, want [4]", arrivals)
	}
}

// TestLinkJitterPreservesOrder floods a jittered link and requires FIFO
// delivery: injected delay may slow messages but never reorder them.
func TestLinkJitterPreservesOrder(t *testing.T) {
	plan := faults.Plan{Seed: 3,
		LinkJitterProb: 0.8, LinkJitterMax: 12,
		LinkStallProb: 0.5, LinkStallEvery: 64, LinkStallLen: 16}
	eng := sim.NewEngine()
	var got []int
	l := NewLink(eng, Config{
		Name: "jitter", Latency: 2, FlitsPerCycle: 1,
		Injector: faults.NewInjector(plan),
		Deliver:  func(m Message) { got = append(got, int(m.(testMsg))) },
	})
	const n = 200
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(uint64(i*3), func(uint64) { l.Send(testMsg(i)) })
	}
	for eng.Now() < 5000 {
		eng.Step()
	}
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery %d carried message %d: jitter reordered the link", i, v)
		}
	}
}

// TestLinkJitterDeterministic runs the same traffic over the same plan twice
// and requires identical delivery times.
func TestLinkJitterDeterministic(t *testing.T) {
	run := func() []uint64 {
		plan := faults.RandomPlan(17)
		eng := sim.NewEngine()
		var arrivals []uint64
		l := NewLink(eng, Config{
			Name: "det", Latency: 3, FlitsPerCycle: 1,
			Injector: faults.NewInjector(plan),
			Deliver:  func(Message) { arrivals = append(arrivals, eng.Now()) },
		})
		for i := 0; i < 100; i++ {
			eng.Schedule(uint64(i*2), func(uint64) { l.Send(testMsg(72)) })
		}
		for eng.Now() < 5000 {
			eng.Step()
		}
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at cycle %d vs %d: jitter not deterministic", i, a[i], b[i])
		}
	}
}

// TestLinkFaultsCountedInStats: injected link faults are observable.
func TestLinkFaultsCountedInStats(t *testing.T) {
	plan := faults.Plan{Seed: 1, LinkJitterProb: 1.0, LinkJitterMax: 4}
	eng := sim.NewEngine()
	st := stats.NewSet()
	l := NewLink(eng, Config{
		Name: "cnt", Latency: 1, Stats: st,
		Injector: faults.NewInjector(plan),
		Deliver:  func(Message) {},
	})
	for i := 0; i < 10; i++ {
		l.Send(testMsg(8))
		eng.Step()
	}
	if st.Get("cnt.faults") == 0 {
		t.Fatal("no cnt.faults recorded despite 100% jitter probability")
	}
}
