package interconnect

import (
	"testing"
	"testing/quick"

	"fusion/internal/energy"
	"fusion/internal/sim"
	"fusion/internal/stats"
)

type testMsg int

func (m testMsg) Bytes() int { return int(m) }

func TestFlits(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {64, 8}, {72, 9},
	}
	for _, c := range cases {
		if got := Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLinkDeliversAfterLatency(t *testing.T) {
	eng := sim.NewEngine()
	var got []uint64
	l := NewLink(eng, Config{
		Name: "test", Latency: 5,
		Deliver: func(m Message) { got = append(got, eng.Now()) },
	})
	l.Send(testMsg(8))
	for i := 0; i < 10; i++ {
		eng.Step()
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("delivered at %v, want [5]", got)
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	eng := sim.NewEngine()
	var got []Message
	l := NewLink(eng, Config{
		Name: "test", Latency: 3,
		Deliver: func(m Message) { got = append(got, m) },
	})
	l.Send(testMsg(8))
	l.Send(testMsg(72))
	for i := 0; i < 10; i++ {
		eng.Step()
	}
	if len(got) != 2 || got[0] != testMsg(8) || got[1] != testMsg(72) {
		t.Fatalf("got %v", got)
	}
}

func TestLinkBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	var at []uint64
	l := NewLink(eng, Config{
		Name: "bw", Latency: 2, FlitsPerCycle: 1,
		Deliver: func(m Message) { at = append(at, eng.Now()) },
	})
	// Two 9-flit data messages back to back: second waits 9 cycles.
	l.Send(testMsg(DataBytes))
	l.Send(testMsg(DataBytes))
	for i := 0; i < 30; i++ {
		eng.Step()
	}
	if len(at) != 2 {
		t.Fatalf("delivered %d messages", len(at))
	}
	if at[1]-at[0] != 9 {
		t.Fatalf("serialization gap = %d cycles, want 9 (at=%v)", at[1]-at[0], at)
	}
}

func TestLinkStatsAndEnergy(t *testing.T) {
	eng := sim.NewEngine()
	st := stats.NewSet()
	mt := energy.NewMeter()
	l := NewLink(eng, Config{
		Name: "tile", Latency: 1, PJPerByte: 0.4,
		Meter: mt, MeterCategory: energy.CatLinkTile, Stats: st,
		Deliver: func(Message) {},
	})
	l.Send(testMsg(ControlBytes)) // 8B control
	l.Send(testMsg(DataBytes))    // 72B data
	if st.Get("tile.msgs") != 2 {
		t.Fatalf("msgs = %d", st.Get("tile.msgs"))
	}
	if st.Get("tile.bytes") != 80 {
		t.Fatalf("bytes = %d, want 80", st.Get("tile.bytes"))
	}
	if st.Get("tile.flits") != 10 {
		t.Fatalf("flits = %d, want 10", st.Get("tile.flits"))
	}
	if st.Get("tile.ctrl") != 1 || st.Get("tile.data") != 1 {
		t.Fatalf("ctrl/data = %d/%d", st.Get("tile.ctrl"), st.Get("tile.data"))
	}
	want := 0.4 * 80
	if got := mt.Get(energy.CatLinkTile); got != want {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestLinkMinimumOneCycle(t *testing.T) {
	eng := sim.NewEngine()
	delivered := false
	l := NewLink(eng, Config{
		Name: "zero", Latency: 0,
		Deliver: func(Message) { delivered = true },
	})
	l.Send(testMsg(8))
	eng.Step()
	if delivered {
		t.Fatal("zero-latency link delivered same cycle")
	}
	eng.Step()
	if !delivered {
		t.Fatal("message never arrived")
	}
}

func TestRingLatency(t *testing.T) {
	r := Ring{Stops: 8, PerHop: 4, BankAccess: 6}
	if got := r.Latency(0, 0); got != 6 {
		t.Fatalf("same-stop latency = %d, want 6", got)
	}
	if got := r.Latency(0, 4); got != 22 { // 4 hops max distance
		t.Fatalf("opposite latency = %d, want 22", got)
	}
	// Wrap-around: 0 -> 7 is one hop, not seven.
	if got := r.Latency(0, 7); got != 10 {
		t.Fatalf("wrap latency = %d, want 10", got)
	}
	// Table 2: ~20-cycle average access.
	avg := r.AvgLatency()
	if avg < 12 || avg > 24 {
		t.Fatalf("avg ring latency %.1f outside plausible range", avg)
	}
}

// Property: ring latency is symmetric and bounded by half the ring.
func TestRingSymmetryProperty(t *testing.T) {
	r := Ring{Stops: 8, PerHop: 4, BankAccess: 6}
	f := func(a, b uint8) bool {
		x, y := int(a%8), int(b%8)
		lat := r.Latency(x, y)
		return lat == r.Latency(y, x) && lat <= uint64(4)*4+6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery order always matches send order irrespective of sizes.
func TestOrderProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		eng := sim.NewEngine()
		var got []int
		l := NewLink(eng, Config{
			Name: "p", Latency: 2, FlitsPerCycle: 2,
			Deliver: func(m Message) { got = append(got, m.Bytes()) },
		})
		want := make([]int, 0, len(sizes))
		for _, s := range sizes {
			b := int(s%72) + 1
			want = append(want, b)
			l.Send(testMsg(b))
		}
		for i := 0; i < len(sizes)*40+10; i++ {
			eng.Step()
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
