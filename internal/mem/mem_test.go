package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {127, 64}, {128, 128},
		{0xdeadbeef, 0xdeadbec0}, // 0xdeadbeef &^ 63
	}
	for _, c := range cases {
		if got := VAddr(c.in).LineAddr(); uint64(got) != c.want {
			t.Errorf("VAddr(%#x).LineAddr() = %#x, want %#x", c.in, uint64(got), c.want)
		}
		if got := PAddr(c.in).LineAddr(); uint64(got) != c.want {
			t.Errorf("PAddr(%#x).LineAddr() = %#x, want %#x", c.in, uint64(got), c.want)
		}
	}
}

func TestLineID(t *testing.T) {
	if VAddr(0).LineID() != 0 || VAddr(64).LineID() != 1 || VAddr(640).LineID() != 10 {
		t.Fatal("LineID arithmetic wrong")
	}
}

func TestPageAddrAndOffset(t *testing.T) {
	a := VAddr(0x12345)
	if a.PageAddr() != 0x12000 {
		t.Fatalf("PageAddr = %#x, want 0x12000", uint64(a.PageAddr()))
	}
	if a.PageOffset() != 0x345 {
		t.Fatalf("PageOffset = %#x, want 0x345", a.PageOffset())
	}
	if a.PageNumber() != 0x12 {
		t.Fatalf("PageNumber = %#x, want 0x12", a.PageNumber())
	}
}

func TestAccessKindString(t *testing.T) {
	if Load.String() != "LD" || Store.String() != "ST" {
		t.Fatal("AccessKind strings wrong")
	}
}

func TestLinesIn(t *testing.T) {
	cases := []struct {
		addr, size, want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{63, 1, 1},
		{64, 128, 2},
		{100, 64, 2},
	}
	for _, c := range cases {
		if got := LinesIn(c.addr, c.size); got != c.want {
			t.Errorf("LinesIn(%d,%d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

// Property: line alignment is idempotent, never increases the address, and
// the result differs from the input by less than one line.
func TestLineAlignProperty(t *testing.T) {
	f := func(a uint64) bool {
		la := VAddr(a).LineAddr()
		return la.LineAddr() == la && uint64(la) <= a && a-uint64(la) < LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: page number and offset recompose to the original address.
func TestPageDecomposeProperty(t *testing.T) {
	f := func(a uint64) bool {
		v := VAddr(a)
		return v.PageNumber()<<PageShift|v.PageOffset() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrStrings(t *testing.T) {
	if VAddr(0x40).String() != "v0x40" {
		t.Fatalf("VAddr string = %q", VAddr(0x40).String())
	}
	if PAddr(0x40).String() != "p0x40" {
		t.Fatalf("PAddr string = %q", PAddr(0x40).String())
	}
}

func TestPAddrPageHelpers(t *testing.T) {
	a := PAddr(0x12345)
	if a.PageAddr() != 0x12000 || a.PageOffset() != 0x345 || a.PageNumber() != 0x12 {
		t.Fatalf("PAddr page helpers wrong: %v %v %v",
			a.PageAddr(), a.PageOffset(), a.PageNumber())
	}
	if a.LineID() != 0x12345>>6 {
		t.Fatalf("LineID = %v", a.LineID())
	}
}
