// Package mem defines the address types and cache-line geometry shared by
// every level of the simulated memory hierarchy.
//
// The accelerator tile operates on virtual addresses (VAddr); the host tile
// and everything below the shared L2 operates on physical addresses (PAddr).
// Translation between the two happens exactly once, at the AX-TLB on the
// shared L1X miss path (see internal/vm), mirroring the paper's design.
package mem

import "fmt"

// VAddr is a virtual address as issued by an accelerator or the host program.
type VAddr uint64

// PAddr is a physical address as used by the host MESI hierarchy and DRAM.
type PAddr uint64

// Cache-line and page geometry. The paper (and GEMS defaults) use 64-byte
// lines; pages are 4 KiB.
const (
	LineBytes = 64
	LineShift = 6
	PageBytes = 4096
	PageShift = 12
)

// LineAddr returns a with the line-offset bits cleared.
func (a VAddr) LineAddr() VAddr { return a &^ (LineBytes - 1) }

// LineAddr returns a with the line-offset bits cleared.
func (a PAddr) LineAddr() PAddr { return a &^ (LineBytes - 1) }

// LineID returns the line number (address >> LineShift).
func (a VAddr) LineID() uint64 { return uint64(a) >> LineShift }

// LineID returns the line number (address >> LineShift).
func (a PAddr) LineID() uint64 { return uint64(a) >> LineShift }

// PageAddr returns a with the page-offset bits cleared.
func (a VAddr) PageAddr() VAddr { return a &^ (PageBytes - 1) }

// PageAddr returns a with the page-offset bits cleared.
func (a PAddr) PageAddr() PAddr { return a &^ (PageBytes - 1) }

// PageOffset returns the offset of a within its page.
func (a VAddr) PageOffset() uint64 { return uint64(a) & (PageBytes - 1) }

// PageOffset returns the offset of a within its page.
func (a PAddr) PageOffset() uint64 { return uint64(a) & (PageBytes - 1) }

// PageNumber returns the virtual page number.
func (a VAddr) PageNumber() uint64 { return uint64(a) >> PageShift }

// PageNumber returns the physical page (frame) number.
func (a PAddr) PageNumber() uint64 { return uint64(a) >> PageShift }

func (a VAddr) String() string { return fmt.Sprintf("v%#x", uint64(a)) }
func (a PAddr) String() string { return fmt.Sprintf("p%#x", uint64(a)) }

// AccessKind distinguishes reads from writes at every hierarchy level.
type AccessKind uint8

const (
	Load AccessKind = iota
	Store
)

func (k AccessKind) String() string {
	if k == Store {
		return "ST"
	}
	return "LD"
}

// PID identifies the owning process of an accelerator-tile cache line. The
// L0X and L1X tags carry a PID so accelerators executing functions from
// different processes can share a tile (Section 3.2).
type PID uint16

// LinesIn returns the number of cache lines spanned by [addr, addr+size).
func LinesIn(addr uint64, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := addr >> LineShift
	last := (addr + size - 1) >> LineShift
	return last - first + 1
}
