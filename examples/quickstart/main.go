// Quickstart: run one of the paper's benchmarks on each of the four
// systems and compare cycles and energy — a one-screen version of the
// paper's Figure 6.
package main

import (
	"fmt"

	"fusion"
)

func main() {
	const bench = "fft"
	b := fusion.LoadBenchmark(bench)
	_, ws := b.Program.WorkingSet()
	fmt.Printf("benchmark %s: %d phases on %d accelerators, %.0f kB working set\n\n",
		bench, len(b.Program.Phases), b.Program.NumAXCs(), float64(ws)/1024)

	fmt.Printf("%-10s %12s %10s %14s %12s\n",
		"system", "cycles", "speedup", "energy (uJ)", "vs SCRATCH")

	var baseCycles, baseEnergy float64
	for _, sys := range []fusion.System{
		fusion.ScratchSystem, fusion.SharedSystem,
		fusion.FusionSystem, fusion.FusionDxSystem,
	} {
		res, err := fusion.Run(b, fusion.DefaultConfig(sys))
		if err != nil {
			panic(err)
		}
		if sys == fusion.ScratchSystem {
			baseCycles = float64(res.Cycles)
			baseEnergy = res.OnChipPJ()
		}
		fmt.Printf("%-10s %12d %9.2fx %14.2f %11.3fx\n",
			res.System, res.Cycles, baseCycles/float64(res.Cycles),
			res.OnChipPJ()/1e6, res.OnChipPJ()/baseEnergy)
	}

	fmt.Println("\nFUSION eliminates the DMA ping-pong between accelerators that")
	fmt.Println("dominates SCRATCH on FFT (the paper's Section 5.2), while its")
	fmt.Println("private L0X caches keep the energy below the SHARED design.")
}
