// Imagepipeline reproduces the paper's running example (Figure 1): an
// image-processing program whose three steps migrate across the chip —
// step1() and step2() are offloaded to accelerators AXC-1 and AXC-2, while
// step3() stays on the host core. The intermediate buffers tmp_1[] and
// tmp_2[] are what the competing memory systems move around.
//
// The program is built from scratch through the public API, demonstrating
// how to define custom workloads rather than using the paper's benchmark
// suite.
package main

import (
	"fmt"

	"fusion"
)

const (
	lineBytes = 64
	imgKB     = 24 // in_img, tmp_1, tmp_2, out_img are each 24 kB
)

// stream builds word-granularity accesses over [base, base+sizeKB*1024).
func stream(base fusion.VAddr, sizeKB int) []fusion.VAddr {
	var out []fusion.VAddr
	for off := 0; off < sizeKB<<10; off += 8 {
		out = append(out, base+fusion.VAddr(off))
	}
	return out
}

// stage builds one pipeline step: read the input buffer, compute, write the
// output buffer.
func stage(name string, axc int, in, out fusion.VAddr) fusion.Invocation {
	inv := fusion.Invocation{Function: name, AXC: axc, LeaseTime: 500}
	reads := stream(in, imgKB)
	writes := stream(out, imgKB)
	// 4 loads, 1 store, 6 int ops, 1 FP op per iteration.
	wi := 0
	for i := 0; i+4 <= len(reads); i += 4 {
		it := fusion.Iteration{Loads: reads[i : i+4], IntOps: 6, FPOps: 1}
		if wi < len(writes) {
			it.Stores = []fusion.VAddr{writes[wi]}
			wi += 4
		}
		inv.Iterations = append(inv.Iterations, it)
	}
	return inv
}

func main() {
	const (
		inImg  = fusion.VAddr(0x100000)
		tmp1   = fusion.VAddr(0x200000)
		tmp2   = fusion.VAddr(0x300000)
		outImg = fusion.VAddr(0x400000)
	)

	// step3 runs on the host: it reads tmp_2 and writes out_img.
	step3 := stage("step3", -1, tmp2, outImg)

	prog := &fusion.Program{
		Name: "imagepipeline",
		Phases: []fusion.Phase{
			{Kind: fusion.PhaseAccel, Inv: stage("step1", 0, inImg, tmp1)},
			{Kind: fusion.PhaseAccel, Inv: stage("step2", 1, tmp1, tmp2)},
			{Kind: fusion.PhaseHost, Inv: step3},
		},
	}

	// The host produced in_img[] before offload: preload it.
	b := &fusion.Benchmark{
		Program:    prog,
		LeaseTimes: map[string]uint64{"step1": 500, "step2": 500},
		MLP:        map[string]int{"step1": 4, "step2": 4},
	}
	for off := 0; off < imgKB<<10; off += lineBytes {
		b.InputLines = append(b.InputLines, inImg+fusion.VAddr(off))
	}
	// Trace post-processing: find the producer-consumer stores FUSION-Dx
	// should forward (Section 3.2).
	fusion.ComputeForwards(b)

	fmt.Println("Figure 1: in_img -> step1 (AXC-1) -> tmp_1 -> step2 (AXC-2) -> tmp_2 -> step3 (host)")
	fmt.Printf("\n%-10s %10s %16s %18s %14s\n",
		"system", "cycles", "tmp_1 transfers", "on-chip energy", "verified")

	for _, sys := range []fusion.System{
		fusion.ScratchSystem, fusion.SharedSystem,
		fusion.FusionSystem, fusion.FusionDxSystem,
	} {
		res, err := fusion.Run(b, fusion.DefaultConfig(sys))
		if err != nil {
			panic(err)
		}
		// How did tmp_1 travel from AXC-1 to AXC-2?
		how := "via tile L1X"
		switch sys {
		case fusion.ScratchSystem:
			how = fmt.Sprintf("%d DMA ops", res.DMATransfers)
		case fusion.SharedSystem:
			how = "via shared L1X"
		case fusion.FusionDxSystem:
			how = fmt.Sprintf("%d fwd + L1X", res.ForwardedBlocks)
		}
		ok := "ok"
		want := fusion.ExpectedVersions(b)
		for va, wv := range want {
			if res.FinalVersions[va] != wv {
				ok = "FAILED"
			}
		}
		fmt.Printf("%-10s %10d %16s %15.2f uJ %14s\n",
			res.System, res.Cycles, how, res.OnChipPJ()/1e6, ok)
	}

	fmt.Println("\nSCRATCH must DMA tmp_1 out of AXC-1's scratchpad to the LLC and back")
	fmt.Println("into AXC-2's — the ping-pong of Section 2.1. FUSION keeps tmp_1")
	fmt.Println("inside the tile; FUSION-Dx pushes the freshest lines straight from")
	fmt.Println("AXC-1's L0X to AXC-2's over the 0.1 pJ/B forwarding link.")
}
