// Designspace sweeps the accelerator-cache design space of Sections 5.3 and
// 5.5: the Small (4 KB L0X / 64 KB L1X) versus AXC-Large (8 KB / 256 KB)
// configurations and writeback versus write-through L0X policies, across
// all seven benchmarks — the paper's Figure 7 and Table 4 combined into one
// sweep.
package main

import (
	"fmt"

	"fusion"
)

func main() {
	fmt.Println("Cache design space on FUSION (ratios vs Small/writeback baseline):")
	fmt.Printf("\n%-7s | %12s %12s | %12s %12s\n",
		"bench", "large cyc", "large en", "wthru cyc", "wthru en")

	for _, name := range fusion.Benchmarks() {
		b := fusion.LoadBenchmark(name)

		base, err := fusion.Run(b, fusion.DefaultConfig(fusion.FusionSystem))
		if err != nil {
			panic(err)
		}

		largeCfg := fusion.DefaultConfig(fusion.FusionSystem)
		largeCfg.Large = true
		large, err := fusion.Run(b, largeCfg)
		if err != nil {
			panic(err)
		}

		wtCfg := fusion.DefaultConfig(fusion.FusionSystem)
		wtCfg.WriteThrough = true
		wt, err := fusion.Run(b, wtCfg)
		if err != nil {
			panic(err)
		}

		rc := func(r *fusion.Result) float64 { return float64(r.Cycles) / float64(base.Cycles) }
		re := func(r *fusion.Result) float64 { return r.OnChipPJ() / base.OnChipPJ() }
		fmt.Printf("%-7s | %11.3fx %11.3fx | %11.3fx %11.3fx\n",
			name, rc(large), re(large), rc(wt), re(wt))
	}

	fmt.Println(`
Lesson 7 (Figure 7): doubling the caches buys little — small-working-set
benchmarks (adpcm, susan, filt) pay the 2x L1X access energy for nothing,
and only benchmarks whose footprint newly fits (disp) see miss-rate gains,
largely offset by the slower large L1X.

Lesson 5 (Table 4): write-through floods the L0X<->L1X link; write caching
is what lets fixed-function accelerators exploit their store locality.`)
}
