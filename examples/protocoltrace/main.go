// Protocoltrace walks through the ACC coherence protocol's mechanics on a
// tiny producer-consumer workload and prints the protocol-level event
// counters: lease grants, write epochs, self-invalidations, self-downgrades,
// writebacks, and the stalls and host forwards that the timestamp scheme
// resolves without ever sending an invalidation to an L0X.
//
// It mirrors the message sequences of the paper's Figures 4 and 5.
package main

import (
	"fmt"

	"fusion"
)

func main() {
	const base = fusion.VAddr(0x100000)

	// AXC-0 writes 32 lines; AXC-1 reads them back four times. The
	// consumer is Serial (a loop-carried dependence), so a pass takes
	// hundreds of cycles: the 800-cycle leases survive into the second
	// pass (hits) but lapse by the third (silent self-invalidation +
	// re-lease).
	producer := fusion.Invocation{Function: "producer", AXC: 0, LeaseTime: 800}
	consumer := fusion.Invocation{Function: "consumer", AXC: 1, LeaseTime: 800, Serial: true}
	for pass := 0; pass < 1; pass++ {
		for i := 0; i < 32; i++ {
			a := base + fusion.VAddr(i*64)
			producer.Iterations = append(producer.Iterations, fusion.Iteration{
				Loads: []fusion.VAddr{a}, Stores: []fusion.VAddr{a}, IntOps: 4,
			})
		}
	}
	for pass := 0; pass < 4; pass++ {
		for i := 0; i < 32; i++ {
			a := base + fusion.VAddr(i*64)
			consumer.Iterations = append(consumer.Iterations, fusion.Iteration{
				Loads: []fusion.VAddr{a}, IntOps: 32, // slow serial compute
			})
		}
	}
	// A final host phase reads everything back through MESI, exercising the
	// AX-RMAP / GTIME-stall path of Figure 4 (right).
	host := fusion.Invocation{Function: "host_readback", AXC: -1}
	for i := 0; i < 32; i++ {
		host.Iterations = append(host.Iterations, fusion.Iteration{
			Loads: []fusion.VAddr{base + fusion.VAddr(i*64)}, IntOps: 1,
		})
	}

	b := &fusion.Benchmark{
		Program: &fusion.Program{Name: "prototrace", Phases: []fusion.Phase{
			{Kind: fusion.PhaseAccel, Inv: producer},
			{Kind: fusion.PhaseAccel, Inv: consumer},
			{Kind: fusion.PhaseHost, Inv: host},
		}},
		LeaseTimes: map[string]uint64{"producer": 800, "consumer": 800},
		MLP:        map[string]int{"producer": 4, "consumer": 4},
	}
	for i := 0; i < 32; i++ {
		b.InputLines = append(b.InputLines, base+fusion.VAddr(i*64))
	}

	// Collect the full message-level protocol trace alongside the counters.
	collector := &fusion.TraceCollector{}
	cfg := fusion.DefaultConfig(fusion.FusionSystem)
	cfg.Tracer = collector
	res, err := fusion.Run(b, cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("First 24 protocol events (the message sequences of Figures 4/5):")
	for i, e := range collector.Events {
		if i == 24 {
			fmt.Printf("   ... %d more\n", len(collector.Events)-24)
			break
		}
		fmt.Println("  ", e)
	}
	fmt.Println()

	st := res.Stats
	fmt.Println("ACC protocol activity (32 shared lines, producer -> consumer -> host):")
	fmt.Println()
	show := func(label, counter string) {
		fmt.Printf("  %-46s %6d\n", label, st.Get(counter))
	}
	fmt.Println("producer (AXC-0):")
	show("L0X accesses", "l0x.0.accesses")
	show("read-lease + write-epoch misses", "l0x.0.misses")
	show("self-downgrades (epoch expiry writeback)", "l0x.0.self_downgrades")
	show("writebacks to L1X", "l0x.0.writebacks")
	fmt.Println("consumer (AXC-1):")
	show("L0X accesses", "l0x.1.accesses")
	show("hits under live leases", "l0x.1.hits")
	show("self-invalidations (lease lapsed, no message!)", "l0x.1.self_invalidations")
	fmt.Println("shared L1X (ordering point):")
	show("read leases granted", "l1x.grants_read")
	show("write epochs granted", "l1x.grants_write")
	show("requests stalled on a write epoch", "l1x.stall_wlock")
	show("writes stalled on foreign read leases (GTIME)", "l1x.stall_gtime")
	show("writebacks received", "l1x.writebacks_in")
	fmt.Println("host MESI integration:")
	show("forwarded host requests (via AX-RMAP)", "l1x.host_fwds")
	show("responses parked until GTIME expired", "l1x.fwd_stalled")
	show("AX-TLB lookups (miss path only)", "axtlb.lookups")
	show("AX-RMAP lookups", "axrmap.lookups")
	fmt.Println()
	fmt.Printf("total: %d cycles; no invalidation message ever reached an L0X.\n", res.Cycles)

	// And the data is right.
	want := fusion.ExpectedVersions(b)
	for va, wv := range want {
		if res.FinalVersions[va] != wv {
			fmt.Printf("DATA MISMATCH at %#x: v%d != v%d\n", uint64(va), res.FinalVersions[va], wv)
			return
		}
	}
	fmt.Println("final memory state matches sequential execution exactly.")
}
