GO ?= go

.PHONY: tier1 build vet lint test race bench bench-smoke allocbudget soak-smoke soak clean

# tier1 is the gate every change must pass.
tier1: vet lint build race allocbudget

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: fusionlint, the in-tree determinism & protocol-discipline analyzers
# (see cmd/fusionlint). Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/fusionlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench: time every artifact's regeneration (plus the full set) and write
# the per-artifact wall-clock/alloc report to BENCH_<date>.json. J bounds
# the sweep's worker pool (empty: GOMAXPROCS); worker count never changes
# artifact bytes, only wall-clock.
J ?= 0
bench:
	$(GO) run ./cmd/fusionbench -j $(J) -benchout BENCH_$$(date +%F).json

# bench-smoke: one iteration of each Go benchmark — compile/run smoke, not
# a measurement — plus the allocation-budget gate.
bench-smoke: allocbudget
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# allocbudget: regenerate the budgeted artifacts and fail if any one's
# allocs/op or bytes/op exceeds BENCH_BUDGET.json by more than its
# tolerance. After an intentional allocation change, refresh the budget
# from a fresh `make bench` report.
allocbudget:
	$(GO) run ./cmd/fusionbench -j 1 -allocbudget BENCH_BUDGET.json

# soak-smoke: the short-mode fault-injection sweep (a subset of cells).
soak-smoke:
	$(GO) test -short -run 'TestSoak|TestFaulted|TestWatchdog' ./internal/systems/

# soak: the full randomized fault-injection sweep across all four systems.
soak:
	$(GO) test -run 'TestSoak|TestFaulted|TestWatchdog' -timeout 30m ./internal/systems/

clean:
	$(GO) clean ./...
