GO ?= go

.PHONY: tier1 build vet lint test race bench bench-smoke allocbudget soak-smoke soak fuzz-smoke daemon-smoke cover cover-baseline litmus waivers waivers-baseline clean

# tier1 is the gate every change must pass.
tier1: vet lint build race allocbudget

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint: fusionlint, the in-tree determinism & protocol-discipline analyzers
# (see cmd/fusionlint). Exits nonzero on any finding.
lint:
	$(GO) run ./cmd/fusionlint ./...

# -shuffle=on randomizes test (and subtest) execution order so hidden
# inter-test state dependence fails loudly instead of by luck of ordering.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# bench: time every artifact's regeneration (plus the full set) and write
# the per-artifact wall-clock/alloc report to BENCH_<date>.json. J bounds
# the sweep's worker pool (empty: GOMAXPROCS); worker count never changes
# artifact bytes, only wall-clock.
J ?= 0
bench:
	$(GO) run ./cmd/fusionbench -j $(J) -benchout BENCH_$$(date +%F).json

# bench-smoke: one iteration of each Go benchmark — compile/run smoke, not
# a measurement — plus the allocation-budget gate.
bench-smoke: allocbudget
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# allocbudget: regenerate the budgeted artifacts and fail if any one's
# allocs/op or bytes/op exceeds BENCH_BUDGET.json by more than its
# tolerance. After an intentional allocation change, refresh the budget
# from a fresh `make bench` report.
allocbudget:
	$(GO) run ./cmd/fusionbench -j 1 -allocbudget BENCH_BUDGET.json

# soak-smoke: the short-mode fault-injection sweep (a subset of cells).
soak-smoke:
	$(GO) test -short -run 'TestSoak|TestFaulted|TestWatchdog' ./internal/systems/

# soak: the full randomized fault-injection sweep across every registered
# system (ADAPTIVE and HYDRA included).
soak:
	$(GO) test -run 'TestSoak|TestFaulted|TestWatchdog' -timeout 30m ./internal/systems/

# daemon-smoke: end-to-end fusiond check — start the daemon, require the
# committed golden response bytes (cold and cache-served), SIGTERM, and
# require a clean exit with a persisted cache. REGEN=1 refreshes the
# golden after a deliberate result change.
daemon-smoke:
	./scripts/daemon_smoke.sh

# fuzz-smoke: run each native fuzzer briefly. The committed seed corpora
# (testdata/fuzz/) replay on every plain `go test`; this target additionally
# explores new seeds for ~10s per fuzzer.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRandomWorkloadGolden -fuzztime $(FUZZTIME) ./internal/systems/
	$(GO) test -run '^$$' -fuzz FuzzLitmusRandom -fuzztime $(FUZZTIME) ./internal/litmus/

# cover: per-package statement coverage gated against COVERAGE_BASELINE
# (fail on a >2-point regression in any package; see cmd/covergate).
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) run ./cmd/covergate -profile cover.out -baseline COVERAGE_BASELINE

# cover-baseline: refresh the checked-in baseline after a deliberate
# coverage change (new package, added/removed tests).
cover-baseline:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	$(GO) run ./cmd/covergate -profile cover.out -baseline COVERAGE_BASELINE -write

# litmus: the directed coherence litmus suite via the CLI (the same cases
# run as tests in internal/litmus; this prints the per-run table).
litmus:
	$(GO) run ./cmd/fusionsim -litmus all

# waivers: inventory every //lint: suppression in the tree with its reason
# (the lint-debt ledger). CI compares the count against .lint-waivers and
# fails when debt grows without the commit touching ISSUE/docs.
waivers:
	$(GO) run ./cmd/fusionlint -waivers ./...

# waivers-baseline: refresh the committed waiver-count baseline after a
# deliberate, documented waiver change.
waivers-baseline:
	$(GO) run ./cmd/fusionlint -waivers -format json ./... | grep -c '"file"' > .lint-waivers
	@echo "baseline: $$(cat .lint-waivers) waiver(s)"

clean:
	$(GO) clean ./...
